// Mesh link-utilization dump: run one paper workload on the cycle-level
// 3D-mesh network and emit per-directed-link traffic as CSV — coordinates
// of both endpoints, dimension, direction, total flit traversals, peak
// buffered occupancy, and utilization (flits / network cycles).  Pipe it
// into a plotting tool to see where traffic concentrates as the ensemble
// grows, or eyeball the hottest rows directly.
//
// With --buckets R the run is traced with the causal sampler on an
// R-round cadence (obs::FlowTracer) and a second CSV section follows the
// totals: per-link flit counts per time bucket, so the same links can be
// plotted over time instead of only summed — where does the hot spot
// form, and when.
//
// With --agg dest|relay the run goes through the software aggregation
// layer (net/aggregate) and the CSV grows two columns: packets (bundle
// packets the link carried — head-flit count) and flits_per_packet (mean
// wire words per bundle, the on-the-wire coalescing factor).  The stderr
// summary then also prints the aggregation block (bundles, payloads per
// bundle, flush causes).
//
// Usage:  ./build/examples/mesh_viz [workload] [--nodes N] [--backend md|am]
//                                   [--buckets R] [--net mesh|ideal]
//                                   [--agg off|dest|relay] [--agg-bytes N]
//                                   [--agg-timeout N]
//         workload: mmt|qs|dtw|paraffins|wavefront|ss   (default mmt)
// CSV goes to stdout; a human summary goes to stderr.  --net ideal runs
// the constant-latency wire instead: it has no links, so there is nothing
// to visualize and the tool says so rather than emitting an empty table.

#include <algorithm>
#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "net/topology.h"
#include "obs/flow.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  std::string which = "mmt";
  int nodes = 8;
  long buckets = 0;  // --buckets R: sample link traffic every R rounds
  rt::BackendKind backend = rt::BackendKind::MessageDriven;
  net::NetKind kind = net::NetKind::Mesh;
  net::AggMode agg = net::AggMode::Off;
  std::uint32_t agg_bytes = 256;
  std::uint32_t agg_timeout = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (a == "--buckets" && i + 1 < argc) {
      buckets = std::atol(argv[++i]);
    } else if (a == "--backend" && i + 1 < argc) {
      backend = std::string(argv[++i]) == "am"
                    ? rt::BackendKind::ActiveMessages
                    : rt::BackendKind::MessageDriven;
    } else if (a == "--net" && i + 1 < argc) {
      kind = std::string(argv[++i]) == "ideal" ? net::NetKind::Ideal
                                               : net::NetKind::Mesh;
    } else if (a == "--agg" && i + 1 < argc) {
      const std::string m = argv[++i];
      agg = m == "dest"    ? net::AggMode::Dest
            : m == "relay" ? net::AggMode::Relay
                           : net::AggMode::Off;
    } else if (a == "--agg-bytes" && i + 1 < argc) {
      agg_bytes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--agg-timeout" && i + 1 < argc) {
      agg_timeout = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a[0] != '-') {
      which = a;
    }
  }
  const bool agg_on = agg != net::AggMode::Off;

  programs::Scale scale;
  programs::Workload w = [&] {
    if (which == "mmt") return programs::make_mmt(scale.mmt_n);
    if (which == "qs") return programs::make_quicksort(scale.qs_n);
    if (which == "dtw") return programs::make_dtw(scale.dtw_n);
    if (which == "paraffins") return programs::make_paraffins(scale.paraffins_n);
    if (which == "wavefront") {
      return programs::make_wavefront(scale.wavefront_n,
                                      scale.wavefront_steps);
    }
    if (which == "ss") return programs::make_selection_sort(scale.ss_n);
    std::cerr << "unknown workload '" << which
              << "' (mmt|qs|dtw|paraffins|wavefront|ss)\n";
    std::exit(2);
  }();

  driver::RunOptions opts;
  opts.backend = backend;
  driver::MultiOptions mo;
  mo.num_nodes = nodes;
  mo.net = kind;
  mo.agg = agg;
  mo.agg_bytes = agg_bytes;
  mo.agg_timeout = agg_timeout;
  if (buckets > 0) {
    mo.flow.enabled = true;
    mo.flow.sample_every = static_cast<std::uint64_t>(buckets);
  }
  driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
  if (!r.ok()) {
    std::cerr << which << " failed: " << r.check_error << "\n";
    return 1;
  }

  const net::Shape shape = net::Shape::for_nodes(nodes);
  std::cerr << which << " / " << rt::backend_name(backend) << " on "
            << shape.x << "x" << shape.y << "x" << shape.z << " "
            << net::net_kind_name(kind) << ": "
            << text::with_commas(r.rounds) << " rounds, "
            << text::with_commas(r.messages) << " messages, hops "
            << r.hops.summary() << ", latency " << r.msg_latency.summary()
            << ", " << text::with_commas(r.injection_stall_cycles)
            << " injection-stall cycles\n";
  if (agg_on) std::cerr << "  agg: " << r.net_stats.agg.summary() << "\n";

  if (kind == net::NetKind::Ideal) {
    // The constant-latency wire delivers point-to-point with no routed
    // links at all — there is no utilization to plot.  Say so instead of
    // printing a header over zero rows.
    std::cerr << "ideal network has no links — nothing to visualize "
                 "(rerun with --net mesh for the link CSV)\n";
    return 0;
  }

  std::cout << "src,dst,src_x,src_y,src_z,dst_x,dst_y,dst_z,dim,dir,"
               "flits,peak_occupancy,utilization";
  if (agg_on) std::cout << ",packets,flits_per_packet";
  std::cout << "\n";
  std::vector<net::LinkStats> links = r.links;
  std::sort(links.begin(), links.end(),
            [](const net::LinkStats& a, const net::LinkStats& b) {
              return a.flits > b.flits;
            });
  for (const net::LinkStats& l : links) {
    const net::Coord s = shape.coord_of(l.src);
    const net::Coord d = shape.coord_of(l.dst);
    const double util =
        r.net_cycles > 0
            ? static_cast<double>(l.flits) / static_cast<double>(r.net_cycles)
            : 0.0;
    std::cout << l.src << "," << l.dst << "," << s.x << "," << s.y << ","
              << s.z << "," << d.x << "," << d.y << "," << d.z << ","
              << "XYZ"[l.dim] << "," << (l.dir > 0 ? "+" : "-") << ","
              << l.flits << "," << l.peak_occupancy << ","
              << text::fixed(util, 4);
    if (agg_on) {
      std::cout << "," << l.packets << ","
                << (l.packets > 0
                        ? text::fixed(static_cast<double>(l.flits) /
                                          static_cast<double>(l.packets),
                                      2)
                        : std::string("0"));
    }
    std::cout << "\n";
  }

  // Time-bucketed per-link traffic, from the causal sampler's cumulative
  // snapshots: bucket k covers [k*R, (k+1)*R) rounds and reports the flits
  // each link carried within it (difference of consecutive samples; the
  // last bucket closes at the final round).  Links keep their id order
  // here — join on (src, dst) with the totals above.
  if (r.flow != nullptr && !r.flow->samples.empty()) {
    const obs::FlowTrace& tr = *r.flow;
    std::cout << "\nbucket_start,bucket_end,src,dst,flits\n";
    std::vector<std::uint64_t> prev(tr.links.size(), 0);
    for (std::size_t si = 0; si + 1 <= tr.samples.size(); ++si) {
      // The sample at bucket start holds traffic *before* the bucket; its
      // successor (or the end-of-run totals) closes the bucket.
      const obs::FlowSample& s = tr.samples[si];
      const bool last = si + 1 == tr.samples.size();
      const std::uint64_t end =
          last ? tr.final_round : tr.samples[si + 1].round;
      for (std::size_t li = 0; li < tr.links.size(); ++li) {
        const std::uint64_t at_end =
            last ? tr.links[li].flits : tr.samples[si + 1].link_flits[li];
        const std::uint64_t in_bucket = at_end - s.link_flits[li];
        if (in_bucket == 0) continue;
        std::cout << s.round << "," << end << "," << tr.links[li].src << ","
                  << tr.links[li].dst << "," << in_bucket << "\n";
      }
    }
    std::cerr << "  " << tr.samples.size() << " samples every "
              << tr.sample_every << " rounds (time-bucketed link CSV "
              << "appended)\n";
  }
  return 0;
}
