// Scheduling trace: make Figure 1 visible.
//
// Runs a tiny two-frame program under both back-ends with the obs
// collectors attached and narrates the scheduling structure from the
// resulting timeline: thread/inlet/system slices per priority level, plus
// ACTIVATE instants.  Under AM, inlets run immediately at high priority
// and the scheduler groups threads by frame; under MD, inlets wait in the
// queue until the LCV drains and control flows straight from each inlet
// into its thread.
//
// This used to attach a legacy per-event TraceSink via Machine::set_sink;
// it now rides the batched pipeline's timeline builder, which preserves
// the exact fetch/mark interleaving (tests/obs_test.cpp pins that
// SinkReplay caveat down).  Pass a path as the second argument to also
// write the full Chrome/Perfetto trace of both back-ends.
//
// Usage:  ./build/examples/scheduling_trace [max_events] [trace.json]

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "programs/registry.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const int max_events = argc > 1 ? std::stoi(argv[1]) : 40;
  const std::string trace_path = argc > 2 ? argv[2] : "";
  // A 2x2 matrix multiply: main + two concurrent row frames — just enough
  // concurrency to show the interleaving difference.
  programs::Workload w = programs::make_mmt(2);

  std::vector<driver::RunResult> results;
  for (rt::BackendKind backend : {rt::BackendKind::ActiveMessages,
                                  rt::BackendKind::MessageDriven}) {
    driver::RunOptions opts;
    opts.backend = backend;
    opts.with_cache = false;
    opts.obs.timeline = true;

    driver::RunResult r = driver::run_workload(w, opts);
    results.push_back(r);
    const obs::Timeline& tl = *r.obs->timeline;
    std::cout << "=== " << rt::backend_name(backend) << " implementation ("
              << r.gran.inlets << " inlets, " << r.gran.threads
              << " threads, " << r.gran.quanta << " quanta) ===\n"
              << "  first " << max_events << " scheduling events:\n";

    // Merge slices and instants back into time order for narration.
    struct Line {
      std::uint64_t ts;
      std::string text;
    };
    std::vector<Line> lines;
    for (const auto& s : tl.slices) {
      if (s.tid == obs::kTimelineQuantumTrack) continue;
      std::ostringstream os;
      os << "    [" << (s.tid == 1 ? "high" : "low ") << "] " << s.name
         << "  (" << s.dur << " instrs)";
      lines.push_back({s.ts, os.str()});
    }
    for (const auto& in : tl.instants) {
      std::ostringstream os;
      os << "    [" << (in.tid == 1 ? "high" : "low ") << "] ACTIVATE"
         << "  frame=0x" << std::hex << in.frame << std::dec;
      lines.push_back({in.ts, os.str()});
    }
    std::stable_sort(lines.begin(), lines.end(),
                     [](const Line& a, const Line& b) { return a.ts < b.ts; });
    int budget = max_events;
    for (const Line& l : lines) {
      if (budget-- <= 0) break;
      std::cout << l.text << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Under AM, inlets appear at high priority as soon as their "
               "message arrives and the\nscheduler groups threads per "
               "frame (ACTIVATE lines); under MD, each inlet appears\nat "
               "low priority only after the LCV drains, flowing directly "
               "into its thread\n(Figure 1 of the paper).\n";

  if (!trace_path.empty()) {
    std::vector<std::pair<std::string, const obs::Timeline*>> timelines;
    for (const driver::RunResult& r : results) {
      timelines.emplace_back(std::string("mmt / ") +
                                 rt::backend_name(r.backend),
                             &*r.obs->timeline);
    }
    obs::write_file(
        trace_path, "timeline",
        [&](std::ostream& out) { obs::write_chrome_trace(out, timelines); },
        "— open it at https://ui.perfetto.dev");
  }
  return 0;
}
