// Scheduling trace: make Figure 1 visible.
//
// Runs a tiny two-frame program under both back-ends with a TraceSink that
// prints every scheduling event (inlet starts, thread starts, activations,
// system handlers).  Under AM, inlets run immediately at high priority and
// the scheduler groups threads by frame; under MD, inlets wait in the
// queue until the LCV drains and control flows straight from each inlet
// into its thread.
//
// Usage:  ./build/examples/scheduling_trace [max_events]

#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "programs/registry.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

/// Prints one line per scheduling mark, annotated with priority level.
class NarratingSink final : public mdp::TraceSink {
 public:
  explicit NarratingSink(int max_events) : budget_(max_events) {}
  void on_fetch(mem::Addr, mdp::Priority) override {}
  void on_read(mem::Addr, mdp::Priority) override {}
  void on_write(mem::Addr, mdp::Priority) override {}
  void on_mark(mdp::MarkKind kind, std::uint32_t aux,
               mdp::Priority lvl) override {
    if (budget_ <= 0) return;
    const char* what = nullptr;
    switch (kind) {
      case mdp::MarkKind::ThreadStart: what = "thread start  "; break;
      case mdp::MarkKind::InletStart: what = "inlet         "; break;
      case mdp::MarkKind::SysStart: what = "system handler"; break;
      case mdp::MarkKind::Activate: what = "ACTIVATE      "; break;
      case mdp::MarkKind::FpCall: return;  // too noisy
    }
    --budget_;
    std::cout << "    [" << (lvl == mdp::Priority::High ? "high" : "low ")
              << "] " << what;
    if (kind != mdp::MarkKind::SysStart) {
      std::cout << "  frame=0x" << std::hex << aux << std::dec;
    }
    std::cout << "\n";
  }

 private:
  int budget_;
};

}  // namespace

int main(int argc, char** argv) {
  const int max_events = argc > 1 ? std::stoi(argv[1]) : 40;
  // A 2x2 matrix multiply: main + two concurrent row frames — just enough
  // concurrency to show the interleaving difference.
  programs::Workload w = programs::make_mmt(2);

  for (rt::BackendKind backend : {rt::BackendKind::ActiveMessages,
                                  rt::BackendKind::MessageDriven}) {
    driver::RunOptions opts;
    opts.backend = backend;
    opts.with_cache = false;

    driver::RunResult totals = driver::run_workload(w, opts);
    std::cout << "=== " << rt::backend_name(backend) << " implementation ("
              << totals.gran.inlets << " inlets, " << totals.gran.threads
              << " threads, " << totals.gran.quanta << " quanta) ===\n"
              << "  first " << max_events << " scheduling events:\n";

    driver::PreparedRun prep = driver::prepare_run(w, opts);
    NarratingSink sink(max_events);
    prep.machine->set_sink(&sink);
    prep.machine->run();
    std::cout << "\n";
  }
  std::cout << "Under AM, inlets appear at high priority as soon as their "
               "message arrives and the\nscheduler groups threads per "
               "frame (ACTIVATE lines); under MD, each inlet appears\nat "
               "low priority only after the LCV drains, flowing directly "
               "into its thread\n(Figure 1 of the paper).\n";
  return 0;
}
