// Fibonacci: recursive codeblock invocation — the classic fine-grained
// benchmark for dataflow machines.  Demonstrates frame allocation through
// the rt_falloc system handler, dynamic continuations (SendDyn), the
// entry-count join, and frame recycling through the free list.
//
// fib(n) spawns fib(n-1) and fib(n-2) as separate codeblock activations;
// both children are live concurrently, so the machine interleaves an
// exponential number of tiny activations — a stress test of exactly the
// scheduling costs the paper measures.
//
// Build & run:  cmake --build build && ./build/examples/fibonacci [n]

#include <cstdint>
#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "support/error.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

constexpr tam::CbId kCbMain = 0;
constexpr tam::CbId kCbFib = 1;

// fib frame slots
constexpr tam::SlotId kN = 0;
constexpr tam::SlotId kRetI = 1;
constexpr tam::SlotId kRetF = 2;
constexpr tam::SlotId kV1 = 3;
constexpr tam::SlotId kV2 = 4;
constexpr tam::SlotId kChildF = 5;

programs::Workload make_fib(int n) {
  tam::Program prog;
  prog.name = "fibonacci";

  // --- main: boot, spawn the root fib, halt with its answer -------------
  tam::CodeblockBuilder mc(prog, "fib_main", 2);
  tam::ThreadId m_go = mc.declare_thread("go");
  tam::ThreadId m_send = mc.declare_thread("send");
  tam::ThreadId m_halt = mc.declare_thread("halt");
  tam::InletId m_start = mc.declare_inlet("start", 1);
  tam::InletId m_frame = mc.declare_inlet("frame", 1);
  tam::InletId m_done = mc.declare_inlet("done", 1);
  {
    tam::BodyBuilder b = mc.define_inlet(m_start);
    b.frame_store(0, b.msg_load(0));
    b.post(m_go);
  }
  {
    tam::BodyBuilder b = mc.define_inlet(m_frame);
    b.frame_store(1, b.msg_load(0));
    b.post(m_send);
  }
  {
    tam::BodyBuilder b = mc.define_inlet(m_done);
    b.frame_store(0, b.msg_load(0));
    b.post(m_halt);
  }
  {
    tam::BodyBuilder b = mc.define_thread(m_go);
    b.falloc(kCbFib, m_frame);
    b.stop();
  }
  {
    tam::BodyBuilder b = mc.define_thread(m_send);
    tam::VReg f = b.frame_load(1);
    tam::VReg nv = b.frame_load(0);
    tam::VReg reti = b.inlet_addr(m_done);
    tam::VReg self = b.self_frame();
    b.send_msg(kCbFib, /*in_args=*/0, f, {nv, reti, self});
    b.stop();
  }
  {
    tam::BodyBuilder b = mc.define_thread(m_halt);
    tam::VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  mc.finish();

  // --- fib(n) -------------------------------------------------------------
  tam::CodeblockBuilder fc(prog, "fib", 6);
  tam::ThreadId f_start = fc.declare_thread("start");
  tam::ThreadId f_base = fc.declare_thread("base_case");
  tam::ThreadId f_rec = fc.declare_thread("recurse");
  tam::ThreadId f_send1 = fc.declare_thread("send_n1");
  tam::ThreadId f_spawn2 = fc.declare_thread("spawn_n2");
  tam::ThreadId f_send2 = fc.declare_thread("send_n2");
  tam::ThreadId f_join = fc.declare_thread("join", /*entry_count=*/2);
  tam::InletId f_args = fc.declare_inlet("args", 3);
  tam::InletId f_c1 = fc.declare_inlet("child1_frame", 1);
  tam::InletId f_c2 = fc.declare_inlet("child2_frame", 1);
  tam::InletId f_r1 = fc.declare_inlet("result1", 1);
  tam::InletId f_r2 = fc.declare_inlet("result2", 1);
  {
    tam::BodyBuilder b = fc.define_inlet(f_args);
    b.frame_store(kN, b.msg_load(0));
    b.frame_store(kRetI, b.msg_load(1));
    b.frame_store(kRetF, b.msg_load(2));
    b.post(f_start);
  }
  {
    tam::BodyBuilder b = fc.define_inlet(f_c1);
    b.frame_store(kChildF, b.msg_load(0));
    b.post(f_send1);
  }
  {
    tam::BodyBuilder b = fc.define_inlet(f_c2);
    b.frame_store(kChildF, b.msg_load(0));
    b.post(f_send2);
  }
  {
    tam::BodyBuilder b = fc.define_inlet(f_r1);
    b.frame_store(kV1, b.msg_load(0));
    b.post(f_join);
  }
  {
    tam::BodyBuilder b = fc.define_inlet(f_r2);
    b.frame_store(kV2, b.msg_load(0));
    b.post(f_join);
  }
  {
    tam::BodyBuilder b = fc.define_thread(f_start);
    tam::VReg nv = b.frame_load(kN);
    tam::VReg c = b.bini(tam::BinOp::Lt, nv, 2);
    b.cond_forks(c, {f_base}, {f_rec});
  }
  {
    // fib(0) = 0, fib(1) = 1: answer the continuation and free the frame.
    tam::BodyBuilder b = fc.define_thread(f_base);
    tam::VReg nv = b.frame_load(kN);
    tam::VReg reti = b.frame_load(kRetI);
    tam::VReg retf = b.frame_load(kRetF);
    b.send_dyn(reti, retf, {nv});
    b.release();
    b.stop();
  }
  {
    tam::BodyBuilder b = fc.define_thread(f_rec);
    b.falloc(kCbFib, f_c1);
    b.stop();
  }
  {
    tam::BodyBuilder b = fc.define_thread(f_send1);
    tam::VReg cf = b.frame_load(kChildF);
    tam::VReg nv = b.frame_load(kN);
    tam::VReg n1 = b.bini(tam::BinOp::Sub, nv, 1);
    tam::VReg reti = b.inlet_addr(f_r1);
    tam::VReg self = b.self_frame();
    b.send_msg(kCbFib, f_args, cf, {n1, reti, self});
    b.forks({f_spawn2});
  }
  {
    tam::BodyBuilder b = fc.define_thread(f_spawn2);
    b.falloc(kCbFib, f_c2);
    b.stop();
  }
  {
    tam::BodyBuilder b = fc.define_thread(f_send2);
    tam::VReg cf = b.frame_load(kChildF);
    tam::VReg nv = b.frame_load(kN);
    tam::VReg n2 = b.bini(tam::BinOp::Sub, nv, 2);
    tam::VReg reti = b.inlet_addr(f_r2);
    tam::VReg self = b.self_frame();
    b.send_msg(kCbFib, f_args, cf, {n2, reti, self});
    b.stop();
  }
  {
    // Entry count 2: fires when both children have answered.
    tam::BodyBuilder b = fc.define_thread(f_join);
    tam::VReg v1 = b.frame_load(kV1);
    tam::VReg v2 = b.frame_load(kV2);
    tam::VReg s = b.bin(tam::BinOp::Add, v1, v2);
    tam::VReg reti = b.frame_load(kRetI);
    tam::VReg retf = b.frame_load(kRetF);
    b.send_dyn(reti, retf, {s});
    b.release();
    b.stop();
  }
  fc.finish();

  programs::Workload w;
  w.name = "fib";
  w.description = "recursive fibonacci";
  w.program = prog;
  w.setup = [n](programs::SetupCtx& ctx) {
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame, {static_cast<std::uint32_t>(n)});
  };
  w.check = [n](const programs::CheckCtx& ctx) -> std::string {
    std::uint32_t a = 0, b = 1;
    for (int i = 0; i < n; ++i) {
      std::uint32_t t = a + b;
      a = b;
      b = t;
    }
    if (ctx.halt_value != a) {
      return "got " + std::to_string(ctx.halt_value) + ", expected " +
             std::to_string(a);
    }
    return {};
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::stoi(argv[1]) : 12;
  programs::Workload w = make_fib(n);
  std::cout << "fib(" << n << ") by recursive codeblock invocation\n\n";
  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages,
                                  rt::BackendKind::Hybrid}) {
    driver::RunOptions opts;
    opts.backend = backend;
    try {
      driver::RunResult r = driver::run_workload(w, opts);
      std::cout << "[" << rt::backend_name(backend) << "] fib = "
                << r.halt_value << " ("
                << (r.ok() ? "oracle ok" : r.check_error) << "), "
                << text::with_commas(r.instructions) << " instructions, "
                << r.gran.threads << " threads in " << r.gran.quanta
                << " quanta, cycles@8K/4-way/24 = "
                << text::with_commas(r.cycles(8192, 4, 24)) << "\n";
    } catch (const Error& e) {
      // fib's exponential fan-out keeps ~2^depth messages pending — the
      // overflow concern of §2.3 made concrete: "since inlets are not
      // executed at high priority, the message queue has a greater
      // likelihood of overflowing."
      std::cout << "[" << rt::backend_name(backend)
                << "] hardware queue overflow (try a smaller n): "
                << e.what() << "\n";
    }
  }
  return 0;
}
