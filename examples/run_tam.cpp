// Generic runner for textual TAM programs: parse a .tam file, boot its
// first codeblock with one integer argument, and execute it under all three
// back-ends, reporting results and scheduling statistics.
//
// Convention: codeblock 0's inlet 0 receives the argument; the program
// halts with its result.  See examples/programs/*.tam.
//
// Usage:  ./build/examples/run_tam examples/programs/pascal.tam [arg]

#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "programs/registry.h"
#include "support/text.h"
#include "tam/parser.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: run_tam FILE.tam [int-arg]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::uint32_t arg =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 10;

  programs::Workload w;
  w.program = tam::parse_program_file(path);
  w.name = w.program.name;
  w.setup = [arg](programs::SetupCtx& ctx) {
    mem::Addr frame = ctx.alloc_frame(0);
    ctx.send_to_inlet(0, 0, frame, {arg});
  };
  w.check = [](const programs::CheckCtx&) { return std::string{}; };

  std::cout << "program '" << w.name << "' (" << path << "), arg = " << arg
            << "\n\n";
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages,
                            rt::BackendKind::Hybrid}) {
    driver::RunOptions opts;
    opts.backend = b;
    driver::RunResult r = driver::run_workload(w, opts);
    std::cout << "[" << rt::backend_name(b) << "]  "
              << mdp::run_status_name(r.status) << ", result = "
              << r.halt_value << ", "
              << text::with_commas(r.instructions) << " instructions, "
              << r.gran.threads << " threads / " << r.gran.quanta
              << " quanta, cycles@8K/4-way/24 = "
              << text::with_commas(r.cycles(8192, 4, 24)) << "\n";
  }
  return 0;
}
