// Disassembly tool: show the MDP code the compiler generates for a paper
// workload (or a .tam file) under any back-end — runtime kernel included.
// Handy for studying exactly how the two scheduling regimes differ at the
// instruction level (Table 1 made concrete).
//
// Usage:
//   ./build/examples/disasm_tool qs md          # workload + backend
//   ./build/examples/disasm_tool file.tam am    # textual program
//   backends: md | am | am-enabled | oam

#include <iostream>
#include <string>

#include "mdp/disasm.h"
#include "programs/registry.h"
#include "support/error.h"
#include "tam/parser.h"
#include "tamc/lower.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: disasm_tool WORKLOAD|FILE.tam [md|am|am-enabled|oam]\n";
    return 2;
  }
  const std::string which = argv[1];
  const std::string be = argc > 2 ? argv[2] : "md";

  tam::Program prog;
  if (which.size() > 4 && which.substr(which.size() - 4) == ".tam") {
    prog = tam::parse_program_file(which);
  } else {
    programs::Scale tiny{4, 8, 4, 4, 4, 1, 6};
    bool found = false;
    for (programs::Workload& w : programs::paper_workloads(tiny)) {
      if (w.name == which) {
        prog = w.program;
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "unknown workload '" << which
                << "' (mmt|qs|dtw|paraffins|wavefront|ss or a .tam file)\n";
      return 2;
    }
  }

  tamc::CompileOptions opts;
  if (be == "md") {
    opts.backend = rt::BackendKind::MessageDriven;
  } else if (be == "am") {
    opts.backend = rt::BackendKind::ActiveMessages;
  } else if (be == "am-enabled") {
    opts.backend = rt::BackendKind::ActiveMessages;
    opts.am_enabled_variant = true;
  } else if (be == "oam") {
    opts.backend = rt::BackendKind::Hybrid;
  } else {
    std::cerr << "unknown backend '" << be << "'\n";
    return 2;
  }

  tamc::CompiledProgram cp = tamc::compile(prog, opts);
  std::cout << "; program '" << prog.name << "', back-end "
            << rt::backend_name(opts.backend) << "\n"
            << "; " << cp.image.sys_code.size() << " kernel + "
            << cp.image.user_code.size() << " user instructions\n\n"
            << mdp::disasm(cp.image);
  return 0;
}
