// signal_watch: a live dashboard over the online signal bus.
//
//   signal_watch [workload] [--backend=md|am] [--nodes <N>] [--threads <T>]
//                [--publish-every <rounds>] [--interval-ms <n>] [--quick]
//
// Runs one paper workload on a multi-node machine with the signal bus
// attached (driver::MultiOptions::signals) and, from a separate watcher
// thread, polls every node's SignalBoard while the simulation executes —
// the seqlock makes the concurrent reads race-free without a single lock
// or pause of the engine.  Each poll prints one dashboard line of
// fleet-wide telemetry (published round, quantum/inlet totals, streaming
// EWMAs of queue depth and SENDE stall rate); after the run the final
// per-node frames are dumped with their per-codeblock attribution.
//
// The watcher holds the shared_ptr handed to on_signals_ready, so the
// boards outlive the run until it is done reading.  Telemetry is
// observation-only: this run's measured numbers are bit-identical to a
// plain run's (tests/hostobs_test.cpp pins that contract).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "obs/signals.h"
#include "programs/registry.h"
#include "support/error.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

/// One polled line: everything the boards currently agree on.
void print_sample(const obs::SignalHub& hub) {
  std::uint64_t round = 0;
  std::uint64_t publishes = 0;
  std::uint64_t quanta = 0;
  std::uint64_t inlets = 0;
  std::uint64_t instrs = 0;
  double qdepth = 0;
  double stall = 0;
  int published = 0;
  for (int n = 0; n < hub.num_nodes(); ++n) {
    obs::SignalFrame f;
    if (!hub.board(n).read(f)) continue;
    ++published;
    round = std::max(round, f.round);
    publishes += f.seq;
    quanta += f.quanta;
    inlets += f.inlets;
    instrs += f.instructions;
    qdepth += f.queue_depth_ewma[0] + f.queue_depth_ewma[1];
    stall += f.stall_rate_ewma;
  }
  if (published == 0) {
    std::cout << "[watch] no frames published yet\n";
    return;
  }
  std::cout << "[watch] round=" << round << " publishes=" << publishes
            << " instrs=" << instrs << " quanta=" << quanta
            << " inlets=" << inlets
            << " qdepth_ewma=" << qdepth / published
            << " stall_ewma=" << stall / published << " (" << published << "/"
            << hub.num_nodes() << " boards live)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "mmt";
  rt::BackendKind backend = rt::BackendKind::ActiveMessages;
  int nodes = 4;
  unsigned threads = 0;
  std::uint64_t publish_every = 64;
  int interval_ms = 2;
  programs::Scale scale{};
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    for (const char* flag : {"--backend", "--nodes", "--threads",
                             "--publish-every", "--interval-ms"}) {
      if (a == flag && i + 1 < argc) a = a + "=" + argv[++i];
    }
    if (a == "--quick") {
      scale = programs::Scale{12, 60, 10, 10, 12, 2, 40};
    } else if (a.rfind("--backend=", 0) == 0) {
      backend = a.substr(10) == "md" ? rt::BackendKind::MessageDriven
                                     : rt::BackendKind::ActiveMessages;
    } else if (a.rfind("--nodes=", 0) == 0) {
      nodes = std::atoi(a.substr(8).c_str());
    } else if (a.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::atoi(a.substr(10).c_str()));
    } else if (a.rfind("--publish-every=", 0) == 0) {
      publish_every =
          static_cast<std::uint64_t>(std::atoll(a.substr(16).c_str()));
    } else if (a.rfind("--interval-ms=", 0) == 0) {
      interval_ms = std::atoi(a.substr(14).c_str());
    } else if (a.rfind("--", 0) != 0) {
      name = a;
    }
  }

  const programs::Workload* w = nullptr;
  std::vector<programs::Workload> all = programs::paper_workloads(scale);
  for (const programs::Workload& cand : all) {
    if (cand.name == name) w = &cand;
  }
  if (w == nullptr) throw Error("unknown workload: " + name);

  driver::RunOptions opts;
  opts.backend = backend;
  driver::MultiOptions mo;
  mo.num_nodes = nodes;
  mo.threads = threads;
  mo.signals.enabled = true;
  mo.signals.publish_every = publish_every;

  // The watcher: started the moment the hub exists, polling concurrently
  // with the run.  It stops when told the run is over (the final frames
  // are read below, from the snapshot).
  std::atomic<bool> done{false};
  std::thread watcher;
  mo.on_signals_ready = [&](std::shared_ptr<const obs::SignalHub> hub) {
    watcher = std::thread([&done, hub, interval_ms] {
      while (!done.load(std::memory_order_acquire)) {
        print_sample(*hub);
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
      print_sample(*hub);  // one last look at the final frames
    });
  };

  std::cout << "watching " << name << " / " << rt::backend_name(backend)
            << " on " << nodes << " nodes (publish every " << publish_every
            << " rounds, poll every " << interval_ms << " ms)\n";
  driver::MultiRunResult r = driver::run_workload_multi(*w, opts, mo);
  done.store(true, std::memory_order_release);
  if (watcher.joinable()) watcher.join();
  if (!r.ok()) throw Error(name + " failed: " + r.check_error);

  std::cout << "\nrun complete: " << r.rounds << " rounds, "
            << r.total_instructions << " instructions, " << r.messages
            << " messages\n\nfinal frames:\n";
  if (r.signals != nullptr) {
    for (std::size_t n = 0; n < r.signals->nodes.size(); ++n) {
      const obs::SignalFrame& f = r.signals->nodes[n].frame;
      std::cout << "  node " << n << ": seq=" << f.seq
                << " round=" << f.round << " instrs=" << f.instructions
                << " quanta=" << f.quanta << " (len ewma "
                << f.quantum_len_ewma << ") inlets=" << f.inlets
                << " (run ewma " << f.inlet_run_ewma << ") stalls="
                << f.send_stall_cycles << "\n";
      for (std::uint32_t c = 0; c < f.num_codeblocks; ++c) {
        if (f.cb[c].instrs == 0) continue;
        std::cout << "    cb" << c << ": instrs=" << f.cb[c].instrs
                  << " runs=" << f.cb[c].runs << " run_len_ewma="
                  << f.cb[c].run_len_ewma << "\n";
      }
    }
  }
  return 0;
}
