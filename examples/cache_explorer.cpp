// Cache explorer: run one of the paper's workloads under both back-ends
// and dump the entire cache ladder — instruction/data misses and cycle
// ratios for every geometry the paper sweeps, at every paper block size.
// Useful for seeing exactly where the MD/AM trade-off flips for a given
// program.
//
// The whole 4-block-size x 24-geometry grid costs ONE machine pass per
// back-end: driver::run_blocksize_sweep records the reference stream once
// and replays it through a stack-distance ladder per block size, instead
// of re-simulating the machine per configuration (--engine=classic
// restores the one-run-per-size behaviour for comparison).  Accepts the
// common bench flags via bench::CommonArgs: --quick, --engine, --dispatch.
//
// Usage:  cache_explorer [mmt|qs|dtw|paraffins|wavefront|ss] [--quick]

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const bench::CommonArgs args = bench::common_args(argc, argv);
  const std::string which =
      (argc > 1 && argv[1][0] != '-') ? argv[1] : "qs";

  const std::vector<programs::Workload> ws =
      programs::paper_workloads(args.scale);
  const programs::Workload* w = nullptr;
  for (const programs::Workload& cand : ws) {
    if (cand.name == which) w = &cand;
  }
  if (w == nullptr) {
    std::cerr << "unknown workload '" << which
              << "' (mmt|qs|dtw|paraffins|wavefront|ss)\n";
    return 2;
  }
  std::cout << w->description << "\n\n";

  const std::span<const std::uint32_t> blocks = bench::paper_block_sizes();
  std::vector<driver::RunResult> md;
  std::vector<driver::RunResult> am;
  for (rt::BackendKind b :
       {rt::BackendKind::MessageDriven, rt::BackendKind::ActiveMessages}) {
    driver::RunOptions opts = args.run_options();
    opts.backend = b;
    std::vector<driver::RunResult> rs =
        driver::run_blocksize_sweep(*w, opts, blocks);
    (b == rt::BackendKind::MessageDriven ? md : am) = std::move(rs);
  }
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    driver::require_ok({&md[k], &am[k]});
  }

  for (const driver::RunResult* r : {&md[0], &am[0]}) {
    std::cout << "[" << rt::backend_name(r->backend) << "] "
              << text::with_commas(r->instructions) << " instructions, "
              << text::with_commas(r->counts.total_reads()) << " reads, "
              << text::with_commas(r->counts.total_writes()) << " writes\n";
  }

  for (std::size_t k = 0; k < blocks.size(); ++k) {
    driver::BackendPair p;
    p.md = std::move(md[k]);
    p.am = std::move(am[k]);
    std::cout << "\n==== " << blocks[k] << "-byte blocks ====\n";
    text::Table t;
    t.header({"Config", "MD I-miss", "MD D-miss", "AM I-miss", "AM D-miss",
              "MD/AM @12", "@24", "@48"});
    for (const driver::ConfigResult& c : p.md.cache) {
      const auto& cm = p.md.config(c.config.size_bytes, c.config.assoc);
      const auto& ca = p.am.config(c.config.size_bytes, c.config.assoc);
      t.row({c.config.name(), text::with_commas(cm.icache.misses),
             text::with_commas(cm.dcache.misses),
             text::with_commas(ca.icache.misses),
             text::with_commas(ca.dcache.misses),
             text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 12), 3),
             text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 24), 3),
             text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 48),
                         3)});
    }
    t.print(std::cout);
  }
  return 0;
}
