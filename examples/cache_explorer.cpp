// Cache explorer: run one of the paper's workloads under both back-ends
// and dump the entire cache ladder — instruction/data misses and total
// cycles for every geometry the paper sweeps.  Useful for seeing exactly
// where the MD/AM trade-off flips for a given program.
//
// Usage:  ./build/examples/cache_explorer [mmt|qs|dtw|paraffins|wavefront|ss]

#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "driver/report.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "qs";
  programs::Scale scale;
  programs::Workload w = [&] {
    if (which == "mmt") return programs::make_mmt(scale.mmt_n);
    if (which == "qs") return programs::make_quicksort(scale.qs_n);
    if (which == "dtw") return programs::make_dtw(scale.dtw_n);
    if (which == "paraffins") return programs::make_paraffins(scale.paraffins_n);
    if (which == "wavefront") {
      return programs::make_wavefront(scale.wavefront_n,
                                      scale.wavefront_steps);
    }
    if (which == "ss") return programs::make_selection_sort(scale.ss_n);
    std::cerr << "unknown workload '" << which
              << "' (mmt|qs|dtw|paraffins|wavefront|ss)\n";
    std::exit(2);
  }();

  std::cout << w.description << "\n\n";
  driver::BackendPair p = driver::run_both(w, driver::RunOptions{});
  driver::require_ok({&p.md, &p.am});

  for (const driver::RunResult* r : {&p.md, &p.am}) {
    std::cout << "[" << rt::backend_name(r->backend) << "] "
              << text::with_commas(r->instructions) << " instructions, "
              << text::with_commas(r->counts.total_reads()) << " reads, "
              << text::with_commas(r->counts.total_writes()) << " writes\n";
  }
  std::cout << "\n";

  text::Table t;
  t.header({"Config", "MD I-miss", "MD D-miss", "AM I-miss", "AM D-miss",
            "MD/AM @12", "@24", "@48"});
  for (const driver::ConfigResult& c : p.md.cache) {
    const auto& cm = p.md.config(c.config.size_bytes, c.config.assoc);
    const auto& ca = p.am.config(c.config.size_bytes, c.config.assoc);
    t.row({c.config.name(), text::with_commas(cm.icache.misses),
           text::with_commas(cm.dcache.misses),
           text::with_commas(ca.icache.misses),
           text::with_commas(ca.dcache.misses),
           text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 12), 3),
           text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 24), 3),
           text::fixed(p.ratio(c.config.size_bytes, c.config.assoc, 48), 3)});
  }
  t.print(std::cout);
  return 0;
}
