// Quickstart: write a TAM program against the public API, compile it for
// both scheduling back-ends, run it on the simulated J-Machine node, and
// compare granularity and cache behaviour.
//
// The program computes sum(i*i) for i = 1..n with a single codeblock whose
// loop thread re-forks itself — the smallest interesting TAM program.
//
// Build & run:  cmake --build build && ./build/examples/quickstart [n]

#include <cstdint>
#include <iostream>
#include <string>

#include "driver/experiment.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

// Frame slots for our codeblock.
constexpr tam::SlotId kN = 0;
constexpr tam::SlotId kI = 1;
constexpr tam::SlotId kSum = 2;

programs::Workload make_sum_of_squares(int n) {
  tam::Program prog;
  prog.name = "sum_of_squares";

  tam::CodeblockBuilder cb(prog, "sumsq", /*num_data_slots=*/3);
  tam::ThreadId t_init = cb.declare_thread("init");
  tam::ThreadId t_loop = cb.declare_thread("loop");
  tam::ThreadId t_body = cb.declare_thread("body");
  tam::ThreadId t_done = cb.declare_thread("done");
  tam::InletId in_start = cb.declare_inlet("start", /*payload_words=*/1);

  {
    // The boot message delivers n; TAM inlets are short: store and post.
    tam::BodyBuilder b = cb.define_inlet(in_start);
    b.frame_store(kN, b.msg_load(0));
    b.post(t_init);
  }
  {
    tam::BodyBuilder b = cb.define_thread(t_init);
    b.frame_store(kI, b.konst(1));
    b.frame_store(kSum, b.konst(0));
    b.forks({t_loop});
  }
  {
    // Loop head: i <= n ?  Loop state lives in the frame, reloaded every
    // iteration — the frame traffic the two back-ends schedule differently.
    tam::BodyBuilder b = cb.define_thread(t_loop);
    tam::VReg i = b.frame_load(kI);
    tam::VReg nv = b.frame_load(kN);
    tam::VReg c = b.bin(tam::BinOp::Le, i, nv);
    b.cond_forks(c, {t_body}, {t_done});
  }
  {
    tam::BodyBuilder b = cb.define_thread(t_body);
    tam::VReg i = b.frame_load(kI);
    tam::VReg sq = b.bin(tam::BinOp::Mul, i, i);
    tam::VReg sum = b.frame_load(kSum);
    tam::VReg s2 = b.bin(tam::BinOp::Add, sum, sq);
    b.frame_store(kSum, s2);
    tam::VReg i1 = b.bini(tam::BinOp::Add, i, 1);
    b.frame_store(kI, i1);
    b.forks({t_loop});  // tail fork compiles to a branch
  }
  {
    tam::BodyBuilder b = cb.define_thread(t_done);
    tam::VReg sum = b.frame_load(kSum);
    b.send_halt(sum);
    b.stop();
  }
  cb.finish();

  programs::Workload w;
  w.name = "sum_of_squares";
  w.description = "quickstart example";
  w.program = prog;
  w.setup = [n](programs::SetupCtx& ctx) {
    mem::Addr frame = ctx.alloc_frame(0);
    ctx.send_to_inlet(0, 0, frame, {static_cast<std::uint32_t>(n)});
  };
  w.check = [n](const programs::CheckCtx& ctx) -> std::string {
    std::uint32_t want = 0;
    for (int i = 1; i <= n; ++i) want += static_cast<std::uint32_t>(i * i);
    if (ctx.halt_value != want) {
      return "got " + std::to_string(ctx.halt_value) + ", expected " +
             std::to_string(want);
    }
    return {};
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::stoi(argv[1]) : 500;
  programs::Workload w = make_sum_of_squares(n);

  std::cout << "sum of squares 1.." << n
            << " on the simulated J-Machine node\n\n";
  for (rt::BackendKind backend : {rt::BackendKind::MessageDriven,
                                  rt::BackendKind::ActiveMessages}) {
    driver::RunOptions opts;
    opts.backend = backend;
    driver::RunResult r = driver::run_workload(w, opts);
    std::cout << "[" << rt::backend_name(backend) << "] result "
              << r.halt_value << " (" << (r.ok() ? "oracle ok" : r.check_error)
              << "), " << text::with_commas(r.instructions)
              << " instructions, TPQ " << text::fixed(r.gran.tpq(), 1)
              << ", IPT " << text::fixed(r.gran.ipt(), 1) << "\n";
    for (std::uint32_t size : {1024u, 8192u, 65536u}) {
      const driver::ConfigResult& c = r.config(size, 4);
      std::cout << "      " << c.config.name() << ": I-miss "
                << c.icache.misses << ", D-miss " << c.dcache.misses
                << ", cycles@24 "
                << text::with_commas(r.cycles(size, 4, 24)) << "\n";
    }
  }
  std::cout << "\nA single sequential loop favours the MD back-end: no "
               "ready-thread bookkeeping,\nno scheduler — the message "
               "queue is the task queue.\n";
  return 0;
}
