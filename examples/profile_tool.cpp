// profile_tool: the jtam::obs command line.  Runs one paper workload with
// the observability collectors attached and emits the artifacts:
//
//   - a flat profile (instructions/reads/writes/cache misses per TAM
//     thread, inlet, kernel routine, and FP-library entry), as a text
//     table and optionally CSV/JSON;
//   - distribution histograms of quantum length, threads per quantum,
//     thread/inlet run length, and queue occupancy at dispatch;
//   - a Chrome/Perfetto timeline (open the file at ui.perfetto.dev) with
//     both back-ends as separate processes when --backend both;
//   - trace-pipeline self-metrics (simulator throughput).
//
// Usage:
//   profile_tool [workload] [--backend md|am|both] [--quick]
//                [--trace <path>] [--csv <path>] [--json <path>]
//                [--top N] [--cache SIZExASSOC]...
//
// Workloads: mmt qs dtw paraffins wavefront ss.  The measured cache
// ladder is skipped (the profiler simulates its own caches; add
// geometries with --cache, default 8192x4).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/report.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

programs::Workload find_workload(const std::string& name,
                                 const programs::Scale& scale) {
  for (programs::Workload& w : programs::paper_workloads(scale)) {
    if (w.name == name) return w;
  }
  std::cerr << "unknown workload '" << name
            << "' (mmt|qs|dtw|paraffins|wavefront|ss)\n";
  std::exit(2);
}

obs::ProfileCacheConfig parse_cache(const std::string& spec) {
  const auto x = spec.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= spec.size()) {
    std::cerr << "bad --cache spec '" << spec << "' (expected SIZExASSOC, "
              << "e.g. 8192x4)\n";
    std::exit(2);
  }
  obs::ProfileCacheConfig pc;
  pc.size_bytes = static_cast<std::uint32_t>(
      std::strtoul(spec.substr(0, x).c_str(), nullptr, 10));
  pc.assoc = static_cast<std::uint32_t>(
      std::strtoul(spec.substr(x + 1).c_str(), nullptr, 10));
  return pc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "qs";
  std::string backend = "both";
  std::string trace_path;
  std::string csv_path;
  std::string json_path;
  int top_n = 20;
  bool quick = false;
  std::vector<obs::ProfileCacheConfig> caches;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << a << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--backend") {
      backend = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--top") {
      top_n = std::atoi(next().c_str());
    } else if (a == "--cache") {
      caches.push_back(parse_cache(next()));
    } else if (a == "--quick") {
      quick = true;
    } else if (!a.empty() && a[0] != '-') {
      workload = a;
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  if (backend != "md" && backend != "am" && backend != "both") {
    std::cerr << "--backend must be md, am, or both\n";
    return 2;
  }

  const programs::Scale scale =
      quick ? programs::Scale{12, 60, 10, 10, 12, 2, 40} : programs::Scale{};
  const programs::Workload w = find_workload(workload, scale);

  driver::RunOptions opts;
  opts.with_cache = false;  // the profiler simulates its own caches
  opts.obs = obs::Options::all();
  opts.obs.profile_caches = caches;
  if (trace_path.empty()) opts.obs.timeline = false;

  std::vector<rt::BackendKind> backends;
  if (backend != "am") backends.push_back(rt::BackendKind::MessageDriven);
  if (backend != "md") backends.push_back(rt::BackendKind::ActiveMessages);

  std::cout << w.description << "\n";
  std::vector<driver::RunResult> results;
  for (rt::BackendKind b : backends) {
    opts.backend = b;
    results.push_back(driver::run_workload(w, opts));
    driver::require_ok({&results.back()});
  }

  std::ofstream csv;
  std::ofstream json;
  if (!csv_path.empty()) csv.open(csv_path);
  if (!json_path.empty()) json.open(json_path);
  for (const driver::RunResult& r : results) {
    std::cout << "\n== " << w.name << " / " << rt::backend_name(r.backend)
              << " — " << text::with_commas(r.instructions)
              << " instructions ==\n";
    r.obs->write_text(std::cout, top_n);
    if (csv.is_open() && r.obs->profile) {
      csv << "# " << w.name << " / " << rt::backend_name(r.backend) << "\n";
      r.obs->profile->write_csv(csv);
    }
    if (json.is_open() && r.obs->profile && results.size() == 1) {
      r.obs->profile->write_json(json);
    }
  }
  if (json.is_open() && results.size() > 1) {
    // Two backends: wrap the per-run profiles in one object.
    json << "{\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      json << (i == 0 ? "" : ",\n") << "\""
           << rt::backend_name(results[i].backend) << "\": ";
      results[i].obs->profile->write_json(json);
    }
    json << "}\n";
  }
  if (!csv_path.empty()) std::cerr << "wrote " << csv_path << "\n";
  if (!json_path.empty()) std::cerr << "wrote " << json_path << "\n";

  if (!trace_path.empty()) {
    std::vector<std::pair<std::string, const obs::Timeline*>> timelines;
    for (const driver::RunResult& r : results) {
      if (r.obs->timeline) {
        timelines.emplace_back(
            w.name + std::string(" / ") + rt::backend_name(r.backend),
            &*r.obs->timeline);
      }
    }
    obs::write_file(
        trace_path, "timeline",
        [&](std::ostream& out) { obs::write_chrome_trace(out, timelines); },
        "— open it at https://ui.perfetto.dev");
  }
  return 0;
}
