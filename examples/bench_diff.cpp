// bench_diff: compare two bench --json reports (bench_common.h's
// write_json shape) and flag what changed.
//
//   bench_diff <baseline.json> <candidate.json> [--max-wall-regress <pct>]
//
// Metric keys fall into two classes:
//
//   * deterministic counters (rounds, messages, miss counts, signal-bus
//     totals, ...) must match EXACTLY — any difference, or a key present
//     on one side only, is a regression.  These are the numbers the
//     simulator pins bit-identical across engines and observation layers,
//     so a drift here means the measured results changed.
//
//   * timing keys (wall clocks, speedups, host.* observatory sections,
//     run-memo hit rates) are host-dependent noise by nature.  They are
//     reported informationally; with --max-wall-regress <pct> a
//     worse-than-baseline change beyond that percentage becomes a failure
//     too (candidate slower on lower-is-better keys, or slower-than
//     -baseline speedup on higher-is-better ones).
//
// Exit status: 0 = clean, 1 = mismatch/regression, 2 = usage or schema
// error (unreadable file, missing schema_version, different schema
// versions or bench names — diffing those would compare apples to
// oranges).  CI runs this against the committed BENCH_*.json baselines.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/json.h"

namespace {

using jtam::json::Value;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw jtam::Error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Host-dependent keys: compared with tolerance, never exactly.
bool is_timing_key(const std::string& k) {
  for (const char* pat :
       {"wall", "_ms", "speedup", "per_sec", "seconds", "host.", "coverage",
        "imbalance", "run_memo"}) {
    if (k.find(pat) != std::string::npos) return true;
  }
  return false;
}

/// Keys where a larger candidate value is an improvement, not a cost.
bool higher_is_better(const std::string& k) {
  return k.find("speedup") != std::string::npos ||
         k.find("per_sec") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cand_path;
  double max_regress_pct = -1;  // < 0: timing is informational only
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--max-wall-regress" && i + 1 < argc) {
      a = a + "=" + argv[++i];
    }
    if (a.rfind("--max-wall-regress=", 0) == 0) {
      max_regress_pct = std::atof(a.substr(19).c_str());
    } else if (base_path.empty()) {
      base_path = a;
    } else if (cand_path.empty()) {
      cand_path = a;
    } else {
      std::cerr << "usage: bench_diff <baseline.json> <candidate.json> "
                   "[--max-wall-regress <pct>]\n";
      return 2;
    }
  }
  if (cand_path.empty()) {
    std::cerr << "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--max-wall-regress <pct>]\n";
    return 2;
  }

  try {
    const Value base = jtam::json::parse(slurp(base_path));
    const Value cand = jtam::json::parse(slurp(cand_path));

    // Schema gate: refuse to diff documents of different shapes.
    for (const auto* v : {&base, &cand}) {
      if (!v->has("schema_version")) {
        std::cerr << "bench_diff: report lacks schema_version (predates "
                     "the versioned exporters) — regenerate it\n";
        return 2;
      }
    }
    if (base.at("schema_version").as_number() !=
        cand.at("schema_version").as_number()) {
      std::cerr << "bench_diff: schema_version mismatch ("
                << base.at("schema_version").as_number() << " vs "
                << cand.at("schema_version").as_number() << ")\n";
      return 2;
    }
    if (base.at("bench").as_string() != cand.at("bench").as_string()) {
      std::cerr << "bench_diff: different benches (" <<
          base.at("bench").as_string() << " vs "
                << cand.at("bench").as_string() << ")\n";
      return 2;
    }

    const auto& bm = base.at("metrics").as_object();
    const auto& cm = cand.at("metrics").as_object();
    int failures = 0;
    int exact_ok = 0;
    int timing_seen = 0;
    for (const auto& [key, bv] : bm) {
      const auto it = cm.find(key);
      if (it == cm.end()) {
        std::cout << "MISSING  " << key << " (in baseline only)\n";
        ++failures;
        continue;
      }
      const double b = bv.as_number();
      const double c = it->second.as_number();
      if (is_timing_key(key)) {
        ++timing_seen;
        const double worse = higher_is_better(key) ? b - c : c - b;
        const double pct = b != 0 ? 100.0 * worse / std::fabs(b) : 0.0;
        if (max_regress_pct >= 0 && pct > max_regress_pct) {
          std::cout << "SLOWER   " << key << ": " << b << " -> " << c << " (+"
                    << pct << "% worse, limit " << max_regress_pct << "%)\n";
          ++failures;
        }
        continue;
      }
      if (b == c) {
        ++exact_ok;
      } else {
        std::cout << "CHANGED  " << key << ": " << b << " -> " << c << "\n";
        ++failures;
      }
    }
    for (const auto& [key, cv] : cm) {
      if (bm.find(key) == bm.end()) {
        std::cout << "NEW      " << key << " = " << cv.as_number()
                  << " (in candidate only)\n";
        ++failures;
      }
    }
    std::cout << "bench_diff: " << base.at("bench").as_string() << ": "
              << exact_ok << " metrics identical, " << timing_seen
              << " timing keys "
              << (max_regress_pct >= 0
                      ? "checked at " + std::to_string(max_regress_pct) + "%"
                      : std::string("informational"))
              << ", " << failures << " failures\n";
    return failures == 0 ? 0 : 1;
  } catch (const jtam::Error& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
