// locality_explorer: the jtam::obs locality-observatory command line.
// Runs one paper workload under both back-ends with the locality collector
// attached and emits the artifacts:
//
//   - a locality scorecard per run: per-symbol miss-ratio curves over the
//     whole 24-config paper ladder, frame/heap/queue/global access-class
//     breakdown, frame reuse-distance percentiles;
//   - the MD vs AM per-symbol diff at the headline config — which symbols
//     gain or lose locality when the scheduling regime changes;
//   - optional CSV/JSON exports of the full attribution matrix and an
//     optional Chrome/Perfetto trace with the scheduling timeline and the
//     locality counter tracks merged per run.
//
// Everything comes out of ONE machine pass per back-end: the keyed stack
// engine computes every symbol's hit count at all 24 geometries from the
// same recorded reference stream.
//
// Usage:
//   locality_explorer [workload] [--backend md|am|both] [--quick]
//                     [--csv <path>] [--json <path>] [--trace <path>]
//                     [--top N]
//
// Workloads: mmt qs dtw paraffins wavefront ss.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/report.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "programs/registry.h"
#include "support/text.h"

using namespace jtam;  // NOLINT(build/namespaces)

namespace {

programs::Workload find_workload(const std::string& name,
                                 const programs::Scale& scale) {
  for (programs::Workload& w : programs::paper_workloads(scale)) {
    if (w.name == name) return w;
  }
  std::cerr << "unknown workload '" << name
            << "' (mmt|qs|dtw|paraffins|wavefront|ss)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "qs";
  std::string backend = "both";
  std::string csv_path;
  std::string json_path;
  std::string trace_path;
  int top_n = 12;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << a << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--backend") {
      backend = next();
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--top") {
      top_n = std::atoi(next().c_str());
    } else if (a == "--quick") {
      quick = true;
    } else if (!a.empty() && a[0] != '-') {
      workload = a;
    } else {
      std::cerr << "unknown option '" << a << "'\n";
      return 2;
    }
  }
  if (backend != "md" && backend != "am" && backend != "both") {
    std::cerr << "--backend must be md, am, or both\n";
    return 2;
  }

  const programs::Scale scale =
      quick ? programs::Scale{12, 60, 10, 10, 12, 2, 40} : programs::Scale{};
  const programs::Workload w = find_workload(workload, scale);

  driver::RunOptions opts;
  opts.with_cache = false;  // the keyed stack engine is the cache here
  opts.obs.locality = true;
  opts.obs.timeline = !trace_path.empty();

  std::vector<rt::BackendKind> backends;
  if (backend != "am") backends.push_back(rt::BackendKind::MessageDriven);
  if (backend != "md") backends.push_back(rt::BackendKind::ActiveMessages);

  std::cout << w.description << "\n";
  std::vector<driver::RunResult> results;
  for (rt::BackendKind b : backends) {
    opts.backend = b;
    results.push_back(driver::run_workload(w, opts));
    driver::require_ok({&results.back()});
    const driver::RunResult& r = results.back();
    std::cout << "\n== " << w.name << " / " << rt::backend_name(r.backend)
              << " — " << text::with_commas(r.instructions)
              << " instructions ==\n";
    r.obs->locality->write_text(std::cout, top_n);
  }
  if (results.size() == 2) {
    const obs::LocalityReport& md = *results[0].obs->locality;
    const obs::LocalityReport& am = *results[1].obs->locality;
    obs::LocalityReport::diff(md, am, md.headline)
        .write_text(std::cout, top_n);
  }

  if (!csv_path.empty()) {
    obs::write_file(csv_path, "locality CSV", [&](std::ostream& out) {
      for (const driver::RunResult& r : results) {
        out << "# " << w.name << " / " << rt::backend_name(r.backend) << "\n";
        r.obs->locality->write_csv(out);
      }
    });
  }
  if (!json_path.empty()) {
    obs::write_file(json_path, "locality JSON", [&](std::ostream& out) {
      if (results.size() == 1) {
        results[0].obs->locality->write_json(out);
        return;
      }
      out << "{\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        out << (i == 0 ? "" : ",\n") << "\""
            << rt::backend_name(results[i].backend) << "\": ";
        results[i].obs->locality->write_json(out);
      }
      out << "}\n";
    });
  }
  if (!trace_path.empty()) {
    std::vector<obs::LocalityTimelineRun> runs;
    for (const driver::RunResult& r : results) {
      obs::LocalityTimelineRun run;
      run.label = w.name + std::string(" / ") + rt::backend_name(r.backend);
      if (r.obs->timeline) run.timeline = &*r.obs->timeline;
      if (r.obs->locality) run.locality = &*r.obs->locality;
      runs.push_back(run);
    }
    obs::write_file(
        trace_path, "locality trace",
        [&](std::ostream& out) {
          obs::write_locality_chrome_trace(out, runs);
        },
        "— open it at https://ui.perfetto.dev");
  }
  return 0;
}
