# Empty compiler generated dependencies file for scheduling_trace.
# This may be replaced when dependencies are built.
