file(REMOVE_RECURSE
  "CMakeFiles/scheduling_trace.dir/scheduling_trace.cpp.o"
  "CMakeFiles/scheduling_trace.dir/scheduling_trace.cpp.o.d"
  "scheduling_trace"
  "scheduling_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
