file(REMOVE_RECURSE
  "CMakeFiles/run_tam.dir/run_tam.cpp.o"
  "CMakeFiles/run_tam.dir/run_tam.cpp.o.d"
  "run_tam"
  "run_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
