# Empty compiler generated dependencies file for run_tam.
# This may be replaced when dependencies are built.
