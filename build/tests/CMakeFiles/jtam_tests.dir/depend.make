# Empty dependencies file for jtam_tests.
# This may be replaced when dependencies are built.
