
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assembler_test.cpp" "tests/CMakeFiles/jtam_tests.dir/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/assembler_test.cpp.o.d"
  "/root/repo/tests/cache_property_test.cpp" "tests/CMakeFiles/jtam_tests.dir/cache_property_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/cache_property_test.cpp.o.d"
  "/root/repo/tests/cache_test.cpp" "tests/CMakeFiles/jtam_tests.dir/cache_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/cache_test.cpp.o.d"
  "/root/repo/tests/compiler_test.cpp" "tests/CMakeFiles/jtam_tests.dir/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/compiler_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/jtam_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/jtam_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/hybrid_test.cpp" "tests/CMakeFiles/jtam_tests.dir/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/hybrid_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/jtam_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/kernel_test.cpp" "tests/CMakeFiles/jtam_tests.dir/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/kernel_test.cpp.o.d"
  "/root/repo/tests/layout_test.cpp" "tests/CMakeFiles/jtam_tests.dir/layout_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/layout_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/jtam_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/memory_map_test.cpp" "tests/CMakeFiles/jtam_tests.dir/memory_map_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/memory_map_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/jtam_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/multi_test.cpp" "tests/CMakeFiles/jtam_tests.dir/multi_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/multi_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/jtam_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/jtam_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/regalloc_test.cpp" "tests/CMakeFiles/jtam_tests.dir/regalloc_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/regalloc_test.cpp.o.d"
  "/root/repo/tests/runtime_integration_test.cpp" "tests/CMakeFiles/jtam_tests.dir/runtime_integration_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/runtime_integration_test.cpp.o.d"
  "/root/repo/tests/scaling_test.cpp" "tests/CMakeFiles/jtam_tests.dir/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/scaling_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/jtam_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/jtam_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/jtam_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jtam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
