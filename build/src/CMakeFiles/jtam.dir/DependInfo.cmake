
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/jtam.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/cache_bank.cpp" "src/CMakeFiles/jtam.dir/cache/cache_bank.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/cache/cache_bank.cpp.o.d"
  "/root/repo/src/driver/experiment.cpp" "src/CMakeFiles/jtam.dir/driver/experiment.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/driver/experiment.cpp.o.d"
  "/root/repo/src/driver/report.cpp" "src/CMakeFiles/jtam.dir/driver/report.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/driver/report.cpp.o.d"
  "/root/repo/src/mdp/assembler.cpp" "src/CMakeFiles/jtam.dir/mdp/assembler.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mdp/assembler.cpp.o.d"
  "/root/repo/src/mdp/disasm.cpp" "src/CMakeFiles/jtam.dir/mdp/disasm.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mdp/disasm.cpp.o.d"
  "/root/repo/src/mdp/isa.cpp" "src/CMakeFiles/jtam.dir/mdp/isa.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mdp/isa.cpp.o.d"
  "/root/repo/src/mdp/machine.cpp" "src/CMakeFiles/jtam.dir/mdp/machine.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mdp/machine.cpp.o.d"
  "/root/repo/src/mdp/multi.cpp" "src/CMakeFiles/jtam.dir/mdp/multi.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mdp/multi.cpp.o.d"
  "/root/repo/src/mem/memory_map.cpp" "src/CMakeFiles/jtam.dir/mem/memory_map.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/mem/memory_map.cpp.o.d"
  "/root/repo/src/metrics/cycles.cpp" "src/CMakeFiles/jtam.dir/metrics/cycles.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/metrics/cycles.cpp.o.d"
  "/root/repo/src/metrics/granularity.cpp" "src/CMakeFiles/jtam.dir/metrics/granularity.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/metrics/granularity.cpp.o.d"
  "/root/repo/src/programs/dtw.cpp" "src/CMakeFiles/jtam.dir/programs/dtw.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/dtw.cpp.o.d"
  "/root/repo/src/programs/mmt.cpp" "src/CMakeFiles/jtam.dir/programs/mmt.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/mmt.cpp.o.d"
  "/root/repo/src/programs/paraffins.cpp" "src/CMakeFiles/jtam.dir/programs/paraffins.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/paraffins.cpp.o.d"
  "/root/repo/src/programs/quicksort.cpp" "src/CMakeFiles/jtam.dir/programs/quicksort.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/quicksort.cpp.o.d"
  "/root/repo/src/programs/registry.cpp" "src/CMakeFiles/jtam.dir/programs/registry.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/registry.cpp.o.d"
  "/root/repo/src/programs/selection_sort.cpp" "src/CMakeFiles/jtam.dir/programs/selection_sort.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/selection_sort.cpp.o.d"
  "/root/repo/src/programs/wavefront.cpp" "src/CMakeFiles/jtam.dir/programs/wavefront.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/programs/wavefront.cpp.o.d"
  "/root/repo/src/runtime/fplib.cpp" "src/CMakeFiles/jtam.dir/runtime/fplib.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/fplib.cpp.o.d"
  "/root/repo/src/runtime/istructure.cpp" "src/CMakeFiles/jtam.dir/runtime/istructure.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/istructure.cpp.o.d"
  "/root/repo/src/runtime/kernel_am.cpp" "src/CMakeFiles/jtam.dir/runtime/kernel_am.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/kernel_am.cpp.o.d"
  "/root/repo/src/runtime/kernel_common.cpp" "src/CMakeFiles/jtam.dir/runtime/kernel_common.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/kernel_common.cpp.o.d"
  "/root/repo/src/runtime/kernel_md.cpp" "src/CMakeFiles/jtam.dir/runtime/kernel_md.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/kernel_md.cpp.o.d"
  "/root/repo/src/runtime/layout.cpp" "src/CMakeFiles/jtam.dir/runtime/layout.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/runtime/layout.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/jtam.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/support/error.cpp.o.d"
  "/root/repo/src/support/text.cpp" "src/CMakeFiles/jtam.dir/support/text.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/support/text.cpp.o.d"
  "/root/repo/src/tam/ir.cpp" "src/CMakeFiles/jtam.dir/tam/ir.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tam/ir.cpp.o.d"
  "/root/repo/src/tam/parser.cpp" "src/CMakeFiles/jtam.dir/tam/parser.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tam/parser.cpp.o.d"
  "/root/repo/src/tam/validate.cpp" "src/CMakeFiles/jtam.dir/tam/validate.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tam/validate.cpp.o.d"
  "/root/repo/src/tamc/backend_am.cpp" "src/CMakeFiles/jtam.dir/tamc/backend_am.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tamc/backend_am.cpp.o.d"
  "/root/repo/src/tamc/backend_md.cpp" "src/CMakeFiles/jtam.dir/tamc/backend_md.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tamc/backend_md.cpp.o.d"
  "/root/repo/src/tamc/lower.cpp" "src/CMakeFiles/jtam.dir/tamc/lower.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tamc/lower.cpp.o.d"
  "/root/repo/src/tamc/mdopt.cpp" "src/CMakeFiles/jtam.dir/tamc/mdopt.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tamc/mdopt.cpp.o.d"
  "/root/repo/src/tamc/regalloc.cpp" "src/CMakeFiles/jtam.dir/tamc/regalloc.cpp.o" "gcc" "src/CMakeFiles/jtam.dir/tamc/regalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
