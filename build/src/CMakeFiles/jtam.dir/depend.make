# Empty dependencies file for jtam.
# This may be replaced when dependencies are built.
