file(REMOVE_RECURSE
  "libjtam.a"
)
