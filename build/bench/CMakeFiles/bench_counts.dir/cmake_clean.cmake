file(REMOVE_RECURSE
  "CMakeFiles/bench_counts.dir/bench_counts.cpp.o"
  "CMakeFiles/bench_counts.dir/bench_counts.cpp.o.d"
  "bench_counts"
  "bench_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
