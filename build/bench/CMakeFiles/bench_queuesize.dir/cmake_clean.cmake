file(REMOVE_RECURSE
  "CMakeFiles/bench_queuesize.dir/bench_queuesize.cpp.o"
  "CMakeFiles/bench_queuesize.dir/bench_queuesize.cpp.o.d"
  "bench_queuesize"
  "bench_queuesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queuesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
