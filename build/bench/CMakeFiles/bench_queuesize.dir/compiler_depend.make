# Empty compiler generated dependencies file for bench_queuesize.
# This may be replaced when dependencies are built.
