# Empty compiler generated dependencies file for bench_mdopt.
# This may be replaced when dependencies are built.
