file(REMOVE_RECURSE
  "CMakeFiles/bench_mdopt.dir/bench_mdopt.cpp.o"
  "CMakeFiles/bench_mdopt.dir/bench_mdopt.cpp.o.d"
  "bench_mdopt"
  "bench_mdopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
