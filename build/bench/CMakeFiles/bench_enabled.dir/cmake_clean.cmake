file(REMOVE_RECURSE
  "CMakeFiles/bench_enabled.dir/bench_enabled.cpp.o"
  "CMakeFiles/bench_enabled.dir/bench_enabled.cpp.o.d"
  "bench_enabled"
  "bench_enabled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enabled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
