# Empty dependencies file for bench_enabled.
# This may be replaced when dependencies are built.
