# Empty dependencies file for bench_multinode.
# This may be replaced when dependencies are built.
