// Granularity and memory-access accounting.
//
// Reproduces the paper's measurement methodology: the instruction simulator
// produces per-access statistics (§3: "an instruction simulator was used to
// produce more detailed statistics, specifically on memory access and
// granularity"), split into system/user code and data regions (§3.1), plus
// the granularity metrics of Table 2:
//
//   TPQ  threads per quantum — how many threads from a frame are executed
//        before a switch to another frame;
//   IPT  instructions per thread;
//   IPQ  instructions per quantum.
//
// Quantum boundaries follow each back-end's scheduling structure: under AM
// a quantum is one frame activation (delimited by the scheduler's Activate
// mark; pending replies that arrive during the activation extend it), and
// under MD a quantum extends while consecutive dispatched inlets/threads
// belong to the same frame ("this can involve emptying the LCV multiple
// times if subsequent messages are destined for the same frame", §3.2).
#pragma once

#include <cstdint>

#include "cache/cache_bank.h"
#include "mdp/machine.h"
#include "mem/memory_map.h"
#include "runtime/layout.h"

namespace jtam::metrics {

/// Branch-free region classification for hot paths (the address is known
/// to be valid because the machine bounds-checked it).
inline int region_index(mem::Addr a) {
  if (a < mem::kUserCodeBase) return 0;  // system code
  if (a < mem::kSysDataBase) return 1;   // user code
  if (a < mem::kUserDataBase) return 2;  // system data (queues, globals, LCV)
  return 3;                              // user data (frames, heap)
}

inline constexpr int kNumRegions = 4;
inline constexpr int kNumLevels = 2;

/// Raw access counts by [priority level][memory region].
struct AccessCounts {
  std::uint64_t fetch[kNumLevels][kNumRegions] = {};
  std::uint64_t read[kNumLevels][kNumRegions] = {};
  std::uint64_t write[kNumLevels][kNumRegions] = {};

  std::uint64_t total_fetches() const;
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;
  std::uint64_t fetches_in(int region) const;
  std::uint64_t reads_in(int region) const;
  std::uint64_t writes_in(int region) const;
};

struct Granularity {
  std::uint64_t threads = 0;
  std::uint64_t inlets = 0;
  std::uint64_t quanta = 0;
  std::uint64_t activations = 0;  // AM only
  std::uint64_t fp_calls = 0;
  std::uint64_t thread_instrs = 0;   // low-priority, thread context
  std::uint64_t inlet_instrs = 0;    // inlet context (either level)
  std::uint64_t sched_instrs = 0;    // low-priority system context
  std::uint64_t handler_instrs = 0;  // high-priority system handlers
  std::uint64_t quantum_instrs = 0;  // low-priority user work (IPQ numerator)

  double tpq() const {
    return quanta == 0 ? 0.0 : static_cast<double>(threads) / quanta;
  }
  double ipt() const {
    return threads == 0 ? 0.0 : static_cast<double>(thread_instrs) / threads;
  }
  double ipq() const {
    return quanta == 0 ? 0.0
                       : static_cast<double>(quantum_instrs) / quanta;
  }
};

/// TraceSink that accumulates access counts and granularity statistics and
/// (optionally) forwards every reference to a CacheBank.
class StatsSink final : public mdp::TraceSink {
 public:
  StatsSink(rt::BackendKind backend, cache::CacheBank* bank)
      : backend_(backend), bank_(bank) {}

  void on_fetch(mem::Addr a, mdp::Priority lvl) override;
  void on_read(mem::Addr a, mdp::Priority lvl) override;
  void on_write(mem::Addr a, mdp::Priority lvl) override;
  void on_mark(mdp::MarkKind kind, std::uint32_t aux,
               mdp::Priority lvl) override;

  const AccessCounts& counts() const { return counts_; }
  const Granularity& granularity() const { return gran_; }

 private:
  enum class Ctx : std::uint8_t { None, Thread, Inlet, Sys };

  rt::BackendKind backend_;
  cache::CacheBank* bank_;
  AccessCounts counts_;
  Granularity gran_;
  Ctx ctx_[kNumLevels] = {Ctx::None, Ctx::Sys};
  std::uint32_t quantum_frame_ = 0;  // MD quantum tracking
};

}  // namespace jtam::metrics
