// Granularity and memory-access accounting.
//
// Reproduces the paper's measurement methodology: the instruction simulator
// produces per-access statistics (§3: "an instruction simulator was used to
// produce more detailed statistics, specifically on memory access and
// granularity"), split into system/user code and data regions (§3.1), plus
// the granularity metrics of Table 2:
//
//   TPQ  threads per quantum — how many threads from a frame are executed
//        before a switch to another frame;
//   IPT  instructions per thread;
//   IPQ  instructions per quantum.
//
// Quantum boundaries follow each back-end's scheduling structure: under AM
// a quantum is one frame activation (delimited by the scheduler's Activate
// mark; pending replies that arrive during the activation extend it), and
// under MD a quantum extends while consecutive dispatched inlets/threads
// belong to the same frame ("this can involve emptying the LCV multiple
// times if subsequent messages are destined for the same frame", §3.2).
#pragma once

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "cache/cache_bank.h"
#include "mdp/machine.h"
#include "mem/memory_map.h"
#include "runtime/layout.h"

namespace jtam::metrics {

/// Branch-free region classification for hot paths (the address is known
/// to be valid because the machine bounds-checked it).
inline int region_index(mem::Addr a) {
  // 0 = system code, 1 = user code, 2 = system data (queues, globals,
  // LCV), 3 = user data (frames, heap).  Written as a sum of range
  // comparisons so the hot accounting loops stay branch-free: region
  // switches (user code <-> system code, code <-> data) are frequent
  // enough that the branching form mispredicts.
  return static_cast<int>(a >= mem::kUserCodeBase) +
         static_cast<int>(a >= mem::kSysDataBase) +
         static_cast<int>(a >= mem::kUserDataBase);
}

inline constexpr int kNumRegions = 4;
inline constexpr int kNumLevels = 2;

/// Raw access counts by [priority level][memory region].
struct AccessCounts {
  std::uint64_t fetch[kNumLevels][kNumRegions] = {};
  std::uint64_t read[kNumLevels][kNumRegions] = {};
  std::uint64_t write[kNumLevels][kNumRegions] = {};

  std::uint64_t total_fetches() const;
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;
  std::uint64_t fetches_in(int region) const;
  std::uint64_t reads_in(int region) const;
  std::uint64_t writes_in(int region) const;
};

struct Granularity {
  std::uint64_t threads = 0;
  std::uint64_t inlets = 0;
  std::uint64_t quanta = 0;
  std::uint64_t activations = 0;  // AM only
  std::uint64_t fp_calls = 0;
  std::uint64_t thread_instrs = 0;   // low-priority, thread context
  std::uint64_t inlet_instrs = 0;    // inlet context (either level)
  std::uint64_t sched_instrs = 0;    // low-priority system context
  std::uint64_t handler_instrs = 0;  // high-priority system handlers
  std::uint64_t quantum_instrs = 0;  // low-priority user work (IPQ numerator)

  double tpq() const {
    return quanta == 0 ? 0.0 : static_cast<double>(threads) / quanta;
  }
  double ipt() const {
    return threads == 0 ? 0.0 : static_cast<double>(thread_instrs) / threads;
  }
  double ipq() const {
    return quanta == 0 ? 0.0
                       : static_cast<double>(quantum_instrs) / quanta;
  }
};

/// TraceSink that accumulates access counts and granularity statistics and
/// (optionally) forwards every reference to a CacheBank.
class StatsSink final : public mdp::TraceSink {
 public:
  StatsSink(rt::BackendKind backend, cache::CacheBank* bank)
      : backend_(backend), bank_(bank) {}

  void on_fetch(mem::Addr a, mdp::Priority lvl) override;
  void on_read(mem::Addr a, mdp::Priority lvl) override;
  void on_write(mem::Addr a, mdp::Priority lvl) override;
  void on_mark(mdp::MarkKind kind, std::uint32_t aux,
               mdp::Priority lvl) override {
    const int l = static_cast<int>(lvl);
    switch (kind) {
      case mdp::MarkKind::ThreadStart:
        ++gran_.threads;
        ctx_[l] = Ctx::Thread;
        // A quantum is a maximal run of threads from one frame ("how many
        // threads from a frame are executed before a switch to another
        // frame", §3.2) under both back-ends — consecutive AM activations
        // of the same frame continue the quantum, just as consecutive MD
        // messages for the same frame do.
        if (aux != quantum_frame_) {
          ++gran_.quanta;
          quantum_frame_ = aux;
        }
        break;
      case mdp::MarkKind::InletStart:
        ++gran_.inlets;
        ctx_[l] = Ctx::Inlet;
        if (backend_ == rt::BackendKind::MessageDriven &&
            lvl == mdp::Priority::Low && aux != quantum_frame_) {
          ++gran_.quanta;
          quantum_frame_ = aux;
        }
        break;
      case mdp::MarkKind::SysStart:
        ctx_[l] = Ctx::Sys;
        break;
      case mdp::MarkKind::Activate:
        ++gran_.activations;
        break;
      case mdp::MarkKind::FpCall:
        ++gran_.fp_calls;
        // Attribution stays with the calling context: the FP library's
        // instructions count toward the thread that called it, exactly as
        // the inlined software-FP cost did on the MDP.
        break;
      case mdp::MarkKind::Dispatch:
      case mdp::MarkKind::Suspend:
        // Machine-emitted queue samples for the observability layer; they
        // carry no context change and touch no granularity statistic, so
        // the measured numbers are identical with or without observers
        // attached.
        break;
    }
  }

  /// Batched replay of a fetch span in mdp::TraceBuffer encoding (bit 0 =
  /// priority level).  The span must contain no mark boundary, so the
  /// per-level context is constant across it and the context attribution
  /// can be added in bulk; every counter is an order-independent sum, so
  /// the result is bit-identical to n on_fetch calls.
  void on_fetch_span(const std::uint32_t* words, std::size_t n) {
    // Bucket counters indexed (level << 2) | region, flushed once per
    // span; summing locally then adding is the same total.  The region
    // bases are word-aligned and the encoding bits live below bit 2, so
    // the range compares work on the raw words.
    std::uint64_t local[kNumLevels * kNumRegions] = {};
    std::size_t i = 0;
#if defined(__SSE2__)
    const __m128i c1 = _mm_set1_epi32(static_cast<int>(mem::kUserCodeBase) - 1);
    const __m128i c2 = _mm_set1_epi32(static_cast<int>(mem::kSysDataBase) - 1);
    const __m128i c3 = _mm_set1_epi32(static_cast<int>(mem::kUserDataBase) - 1);
    const __m128i one = _mm_set1_epi32(1);
    for (; i + 4 <= n; i += 4) {
      const __m128i w =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
      // Each compare contributes 0 or -1; the sum is -region.
      const __m128i rneg = _mm_add_epi32(
          _mm_add_epi32(_mm_cmpgt_epi32(w, c1), _mm_cmpgt_epi32(w, c2)),
          _mm_cmpgt_epi32(w, c3));
      const __m128i idx = _mm_sub_epi32(
          _mm_slli_epi32(_mm_and_si128(w, one), 2), rneg);
      alignas(16) std::uint32_t ix[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx);
      ++local[ix[0]];
      ++local[ix[1]];
      ++local[ix[2]];
      ++local[ix[3]];
    }
#endif
    for (; i < n; ++i) {
      const std::uint32_t w = words[i];
      local[((w & 1u) << 2) | region_index(w & ~3u)]++;
    }
    if (bank_ != nullptr) {
      for (std::size_t j = 0; j < n; ++j) bank_->on_fetch(words[j] & ~3u);
    }
    for (int l = 0; l < kNumLevels; ++l) {
      std::uint64_t per_level = 0;
      for (int r = 0; r < kNumRegions; ++r) {
        counts_.fetch[l][r] += local[(l << 2) | r];
        per_level += local[(l << 2) | r];
      }
      add_context_instrs(l, per_level);
    }
  }

  /// Batched replay of a data span (bit 0 = is_write, bit 1 = level).
  /// Data events carry no context, so any span is valid.
  void on_data_span(const std::uint32_t* words, std::size_t n) {
    // Buckets indexed (is_write << 3) | (level << 2) | region.
    std::uint64_t local[2 * kNumLevels * kNumRegions] = {};
    std::size_t i = 0;
#if defined(__SSE2__)
    const __m128i c1 = _mm_set1_epi32(static_cast<int>(mem::kUserCodeBase) - 1);
    const __m128i c2 = _mm_set1_epi32(static_cast<int>(mem::kSysDataBase) - 1);
    const __m128i c3 = _mm_set1_epi32(static_cast<int>(mem::kUserDataBase) - 1);
    const __m128i one = _mm_set1_epi32(1);
    const __m128i two = _mm_set1_epi32(2);
    for (; i + 4 <= n; i += 4) {
      const __m128i w =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
      const __m128i rneg = _mm_add_epi32(
          _mm_add_epi32(_mm_cmpgt_epi32(w, c1), _mm_cmpgt_epi32(w, c2)),
          _mm_cmpgt_epi32(w, c3));
      // (is_write << 3) | (level << 2): bits 0 and 1 of w, repositioned.
      const __m128i hi = _mm_add_epi32(
          _mm_slli_epi32(_mm_and_si128(w, one), 3),
          _mm_slli_epi32(_mm_and_si128(w, two), 1));
      const __m128i idx = _mm_sub_epi32(hi, rneg);
      alignas(16) std::uint32_t ix[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx);
      ++local[ix[0]];
      ++local[ix[1]];
      ++local[ix[2]];
      ++local[ix[3]];
    }
#endif
    for (; i < n; ++i) {
      const std::uint32_t w = words[i];
      local[((w & 1u) << 3) | ((w & 2u) << 1) | region_index(w & ~3u)]++;
    }
    if (bank_ != nullptr) {
      for (std::size_t j = 0; j < n; ++j) {
        bank_->on_data(words[j] & ~3u, (words[j] & 1u) != 0);
      }
    }
    for (int l = 0; l < kNumLevels; ++l) {
      for (int r = 0; r < kNumRegions; ++r) {
        counts_.read[l][r] += local[(l << 2) | r];
        counts_.write[l][r] += local[8 | (l << 2) | r];
      }
    }
  }

  const AccessCounts& counts() const { return counts_; }
  const Granularity& granularity() const { return gran_; }

 private:
  enum class Ctx : std::uint8_t { None, Thread, Inlet, Sys };

  /// Attribute `k` fetched instructions at level `l` to the current
  /// context — the bulk form of on_fetch's per-event switch.
  void add_context_instrs(int l, std::uint64_t k) {
    if (k == 0) return;
    switch (ctx_[l]) {
      case Ctx::Thread:
        gran_.thread_instrs += k;
        gran_.quantum_instrs += k;  // thread context is low-priority only
        break;
      case Ctx::Inlet:
        gran_.inlet_instrs += k;
        if (l == static_cast<int>(mdp::Priority::Low)) {
          gran_.quantum_instrs += k;
        }
        break;
      case Ctx::Sys:
      case Ctx::None:
        if (l == static_cast<int>(mdp::Priority::Low)) {
          gran_.sched_instrs += k;
        } else {
          gran_.handler_instrs += k;
        }
        break;
    }
  }

  rt::BackendKind backend_;
  cache::CacheBank* bank_;
  AccessCounts counts_;
  Granularity gran_;
  Ctx ctx_[kNumLevels] = {Ctx::None, Ctx::Sys};
  std::uint32_t quantum_frame_ = 0;  // MD quantum tracking
};

}  // namespace jtam::metrics
