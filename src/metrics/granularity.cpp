#include "metrics/granularity.h"

namespace jtam::metrics {

namespace {
std::uint64_t sum2(const std::uint64_t (&m)[kNumLevels][kNumRegions]) {
  std::uint64_t t = 0;
  for (int l = 0; l < kNumLevels; ++l) {
    for (int r = 0; r < kNumRegions; ++r) t += m[l][r];
  }
  return t;
}
std::uint64_t sum_region(const std::uint64_t (&m)[kNumLevels][kNumRegions],
                         int region) {
  return m[0][region] + m[1][region];
}
}  // namespace

std::uint64_t AccessCounts::total_fetches() const { return sum2(fetch); }
std::uint64_t AccessCounts::total_reads() const { return sum2(read); }
std::uint64_t AccessCounts::total_writes() const { return sum2(write); }
std::uint64_t AccessCounts::fetches_in(int region) const {
  return sum_region(fetch, region);
}
std::uint64_t AccessCounts::reads_in(int region) const {
  return sum_region(read, region);
}
std::uint64_t AccessCounts::writes_in(int region) const {
  return sum_region(write, region);
}

void StatsSink::on_fetch(mem::Addr a, mdp::Priority lvl) {
  const int l = static_cast<int>(lvl);
  ++counts_.fetch[l][region_index(a)];
  if (bank_ != nullptr) bank_->on_fetch(a);
  add_context_instrs(l, 1);
}

void StatsSink::on_read(mem::Addr a, mdp::Priority lvl) {
  ++counts_.read[static_cast<int>(lvl)][region_index(a)];
  if (bank_ != nullptr) bank_->on_data(a, /*is_write=*/false);
}

void StatsSink::on_write(mem::Addr a, mdp::Priority lvl) {
  ++counts_.write[static_cast<int>(lvl)][region_index(a)];
  if (bank_ != nullptr) bank_->on_data(a, /*is_write=*/true);
}

}  // namespace jtam::metrics
