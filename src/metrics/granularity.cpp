#include "metrics/granularity.h"

namespace jtam::metrics {

namespace {
std::uint64_t sum2(const std::uint64_t (&m)[kNumLevels][kNumRegions]) {
  std::uint64_t t = 0;
  for (int l = 0; l < kNumLevels; ++l) {
    for (int r = 0; r < kNumRegions; ++r) t += m[l][r];
  }
  return t;
}
std::uint64_t sum_region(const std::uint64_t (&m)[kNumLevels][kNumRegions],
                         int region) {
  return m[0][region] + m[1][region];
}
}  // namespace

std::uint64_t AccessCounts::total_fetches() const { return sum2(fetch); }
std::uint64_t AccessCounts::total_reads() const { return sum2(read); }
std::uint64_t AccessCounts::total_writes() const { return sum2(write); }
std::uint64_t AccessCounts::fetches_in(int region) const {
  return sum_region(fetch, region);
}
std::uint64_t AccessCounts::reads_in(int region) const {
  return sum_region(read, region);
}
std::uint64_t AccessCounts::writes_in(int region) const {
  return sum_region(write, region);
}

void StatsSink::on_fetch(mem::Addr a, mdp::Priority lvl) {
  const int l = static_cast<int>(lvl);
  ++counts_.fetch[l][region_index(a)];
  if (bank_ != nullptr) bank_->on_fetch(a);
  switch (ctx_[l]) {
    case Ctx::Thread:
      ++gran_.thread_instrs;
      ++gran_.quantum_instrs;  // thread context only exists at low priority
      break;
    case Ctx::Inlet:
      ++gran_.inlet_instrs;
      if (lvl == mdp::Priority::Low) ++gran_.quantum_instrs;
      break;
    case Ctx::Sys:
    case Ctx::None:
      if (lvl == mdp::Priority::Low) {
        ++gran_.sched_instrs;
      } else {
        ++gran_.handler_instrs;
      }
      break;
  }
}

void StatsSink::on_read(mem::Addr a, mdp::Priority lvl) {
  ++counts_.read[static_cast<int>(lvl)][region_index(a)];
  if (bank_ != nullptr) bank_->on_data(a, /*is_write=*/false);
}

void StatsSink::on_write(mem::Addr a, mdp::Priority lvl) {
  ++counts_.write[static_cast<int>(lvl)][region_index(a)];
  if (bank_ != nullptr) bank_->on_data(a, /*is_write=*/true);
}

void StatsSink::on_mark(mdp::MarkKind kind, std::uint32_t aux,
                        mdp::Priority lvl) {
  const int l = static_cast<int>(lvl);
  switch (kind) {
    case mdp::MarkKind::ThreadStart:
      ++gran_.threads;
      ctx_[l] = Ctx::Thread;
      // A quantum is a maximal run of threads from one frame ("how many
      // threads from a frame are executed before a switch to another
      // frame", §3.2) under both back-ends — consecutive AM activations
      // of the same frame continue the quantum, just as consecutive MD
      // messages for the same frame do.
      if (aux != quantum_frame_) {
        ++gran_.quanta;
        quantum_frame_ = aux;
      }
      break;
    case mdp::MarkKind::InletStart:
      ++gran_.inlets;
      ctx_[l] = Ctx::Inlet;
      if (backend_ == rt::BackendKind::MessageDriven &&
          lvl == mdp::Priority::Low && aux != quantum_frame_) {
        ++gran_.quanta;
        quantum_frame_ = aux;
      }
      break;
    case mdp::MarkKind::SysStart:
      ctx_[l] = Ctx::Sys;
      break;
    case mdp::MarkKind::Activate:
      ++gran_.activations;
      break;
    case mdp::MarkKind::FpCall:
      ++gran_.fp_calls;
      // Attribution stays with the calling context: the FP library's
      // instructions count toward the thread that called it, exactly as
      // the inlined software-FP cost did on the MDP.
      break;
    case mdp::MarkKind::Dispatch:
    case mdp::MarkKind::Suspend:
      // Machine-emitted queue samples for the observability layer; they
      // carry no context change and touch no granularity statistic, so the
      // measured numbers are identical with or without observers attached.
      break;
  }
}

}  // namespace jtam::metrics
