// Cycle model and ratio helpers.
//
// §3.3: "Instructions were assumed to uniformly take one cycle, not
// counting memory access time.  Because the number of data and code
// accesses differ between the two implementations, the absolute numbers of
// cycles, not miss percentages, are compared."  Total cycles are therefore
// instructions * 1 + (instruction-cache misses + data-cache misses) *
// penalty, and the paper's headline metric is the MD/AM cycle ratio.
#pragma once

#include <cstdint>
#include <span>

#include "cache/cache.h"

namespace jtam::metrics {

/// Total cycles for one cache configuration under a given miss penalty.
inline std::uint64_t total_cycles(std::uint64_t instructions,
                                  const cache::CacheStats& icache,
                                  const cache::CacheStats& dcache,
                                  std::uint32_t miss_penalty) {
  return instructions + miss_penalty * (icache.misses + dcache.misses);
}

/// Cycle model extended with a write-back cost: dirty evictions consume
/// memory bandwidth too.  The paper's model charges misses only; this is
/// the bench_writeback ablation.
inline std::uint64_t total_cycles_wb(std::uint64_t instructions,
                                     const cache::CacheStats& icache,
                                     const cache::CacheStats& dcache,
                                     std::uint32_t miss_penalty,
                                     std::uint32_t writeback_penalty) {
  return total_cycles(instructions, icache, dcache, miss_penalty) +
         writeback_penalty * dcache.writebacks;
}

/// Geometric mean of a set of ratios (the paper reports geometric means of
/// per-program MD/AM ratios).
double geomean(std::span<const double> values);

}  // namespace jtam::metrics
