#include "metrics/cycles.h"

#include <cmath>

#include "support/error.h"

namespace jtam::metrics {

double geomean(std::span<const double> values) {
  JTAM_CHECK(!values.empty(), "geometric mean of an empty set");
  double log_sum = 0.0;
  for (double v : values) {
    JTAM_CHECK(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace jtam::metrics
