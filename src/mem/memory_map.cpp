#include "mem/memory_map.h"

#include <sstream>

#include "support/error.h"

namespace jtam::mem {

Region classify(Addr a) {
  if (a >= kSysCodeBase && a < kSysCodeLimit) return Region::SysCode;
  if (a >= kUserCodeBase && a < kUserCodeLimit) return Region::UserCode;
  if (a >= kSysDataBase && a < kSysDataLimit) return Region::SysData;
  if (a >= kUserDataBase && a < kUserDataLimit) return Region::UserData;
  std::ostringstream os;
  os << "address 0x" << std::hex << a << " is outside every mapped region";
  throw Error(os.str());
}

bool is_code(Addr a) {
  Region r = classify(a);
  return r == Region::SysCode || r == Region::UserCode;
}

const char* region_name(Region r) {
  switch (r) {
    case Region::SysCode: return "sys-code";
    case Region::UserCode: return "user-code";
    case Region::SysData: return "sys-data";
    case Region::UserData: return "user-data";
  }
  return "?";
}

}  // namespace jtam::mem
