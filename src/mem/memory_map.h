// Memory map of the simulated J-Machine node.
//
// The paper divides memory into *system* and *user* regions for its access
// accounting (§3.1): system code is the runtime kernel plus the software
// floating-point library; system data is the two hardware message queues,
// the operating-system globals, and the LCV; user code is the compiled
// inlets/threads of each program; user data is the frames and the
// I-structure heap.  This module fixes the address layout and classifies
// addresses into those regions.
//
// All addresses are byte addresses; every access is a 4-byte word and must
// be word aligned.
#pragma once

#include <cstdint>
#include <string>

namespace jtam::mem {

using Addr = std::uint32_t;

inline constexpr Addr kWordBytes = 4;

// --- Layout constants -----------------------------------------------------
// Regions are deliberately placed far apart so an out-of-range pointer in a
// runtime kernel trips the machine's bounds checks instead of silently
// landing in another region.

inline constexpr Addr kSysCodeBase = 0x0000'1000;  // runtime kernel, FP lib
inline constexpr Addr kSysCodeLimit = 0x0008'0000;

inline constexpr Addr kUserCodeBase = 0x0010'0000;  // compiled inlets/threads
inline constexpr Addr kUserCodeLimit = 0x0020'0000;

// System data: message queues (4 KB each, as on the MDP), OS globals, LCV.
inline constexpr Addr kQueueBytes = 4 * 1024;
inline constexpr Addr kLowQueueBase = 0x0020'0000;
inline constexpr Addr kHighQueueBase = kLowQueueBase + kQueueBytes;
inline constexpr Addr kOsGlobalsBase = kHighQueueBase + kQueueBytes;
inline constexpr Addr kOsGlobalsBytes = 4 * 1024;
inline constexpr Addr kLcvBase = kOsGlobalsBase + kOsGlobalsBytes;
inline constexpr Addr kLcvBytes = 4 * 1024;
// Static system tables (codeblock descriptors, entry-count templates).
inline constexpr Addr kSysTableBase = kLcvBase + kLcvBytes;
inline constexpr Addr kSysTableLimit = 0x0030'0000;
inline constexpr Addr kSysDataBase = kLowQueueBase;
inline constexpr Addr kSysDataLimit = kSysTableLimit;

// User data: frames, I-structure heap, scratch allocations.
inline constexpr Addr kUserDataBase = 0x0040'0000;
inline constexpr Addr kUserDataLimit = 0x0100'0000;  // 12 MB of user data

inline constexpr Addr kMemoryLimit = kUserDataLimit;

/// Region classification used for the paper's system/user access accounting.
enum class Region : std::uint8_t {
  SysCode = 0,
  UserCode = 1,
  SysData = 2,
  UserData = 3,
};

inline constexpr int kRegionCount = 4;

/// Classify a byte address.  Throws jtam::Error for addresses outside every
/// region (the machine treats that as a fault).
Region classify(Addr a);

/// True if `a` lies in one of the two code regions.
bool is_code(Addr a);

/// Human-readable region name ("sys-code", "user-data", ...).
const char* region_name(Region r);

/// True if `a` falls inside either hardware message queue.
inline bool in_queue(Addr a) {
  return a >= kLowQueueBase && a < kHighQueueBase + kQueueBytes;
}

// --- Multi-node global addressing ----------------------------------------
// A multi-node ensemble packs the owning node id into the high bits of a
// user-data address.  The seed layout uses shift 24: node = a >> 24,
// local = a & 0xFFFFFF, which caps ensembles at 256 nodes (node 255's user
// window must still fit in 32 bits).  J-Machine-scale configs narrow the
// per-node user window instead: with node-field shift `w < 24` a global
// user address is
//
//     g = kUserDataBase + (node << w) + offset,      offset in [0, 2^w)
//
// i.e. node slots of 2^w bytes stacked from kUserDataBase upward, and each
// node's local user window is [kUserDataBase, kUserDataBase + 2^w) — a
// prefix of the seed's [kUserDataBase, kUserDataLimit) region, so the
// system regions, queue addresses, and code layout are untouched.  The
// NodeCodec below unifies both forms: at shift 24 the subtraction term is
// zero and node_of/local_of reduce exactly to the seed's `a >> 24` /
// `a & 0xFFFFFF`.
//
// Narrower shifts must keep kUserDataBase (= 1<<22) divisible by 2^w so
// kernels can extract the node id with a shift and a constant subtract;
// hence the supported set {24, 22, 21, 20, 19} (23 is excluded).

/// Supported node-field shifts, widest window first.
inline constexpr Addr kNodeShiftDefault = 24;  // seed layout, <=256 nodes

/// Max node count addressable at shift `w`.  At the seed shift 24 node
/// slots of 2^24 bytes stack from address 0 (the user window is an offset
/// inside the slot), giving 256; at narrower shifts slots of 2^w stack
/// from kUserDataBase upward.  The bound also makes the codec sound: any
/// address below kUserDataBase underflows node_of to >= this value, so it
/// can never pass a legal node's ownership check.
inline constexpr std::uint64_t max_nodes_for_shift(Addr w) {
  const std::uint64_t sub = w == 24 ? 0 : kUserDataBase;
  return ((std::uint64_t{1} << 32) - sub) >> w;
}

/// Smallest disturbance shift for an ensemble of `nodes`: 24 (the seed
/// layout, bit-identical) whenever it fits, else the widest narrower shift
/// whose address space holds `nodes` slots.  Throws via the caller's range
/// check for nodes > max_nodes_for_shift(19) (= 8184).
inline constexpr Addr node_shift_for_nodes(int nodes) {
  if (nodes <= 256) return 24;
  for (Addr w : {Addr{22}, Addr{21}, Addr{20}, Addr{19}}) {
    if (static_cast<std::uint64_t>(nodes) <= max_nodes_for_shift(w)) return w;
  }
  return 0;  // unrepresentable; callers JTAM_CHECK against this
}

/// Node/local split of a global user-data address at a given shift.
/// All three accessors reduce to the seed formulas at shift 24.
struct NodeCodec {
  Addr shift = kNodeShiftDefault;
  Addr sub = 0;           // kUserDataBase for shift < 24, 0 for seed shift
  Addr mask = 0xFF'FFFF;  // (1 << shift) - 1
  Addr user_limit = kUserDataLimit;  // per-node local user window end

  constexpr NodeCodec() = default;
  explicit constexpr NodeCodec(Addr w)
      : shift(w),
        sub(w == 24 ? 0 : kUserDataBase),
        mask((Addr{1} << w) - 1),
        user_limit(w == 24 ? kUserDataLimit
                           : kUserDataBase + (Addr{1} << w)) {}

  constexpr Addr node_of(Addr g) const { return (g - sub) >> shift; }
  constexpr Addr local_of(Addr g) const { return sub + ((g - sub) & mask); }
  constexpr Addr global_of(Addr node, Addr local) const {
    return (node << shift) + local;
  }
};

}  // namespace jtam::mem
