// Memory map of the simulated J-Machine node.
//
// The paper divides memory into *system* and *user* regions for its access
// accounting (§3.1): system code is the runtime kernel plus the software
// floating-point library; system data is the two hardware message queues,
// the operating-system globals, and the LCV; user code is the compiled
// inlets/threads of each program; user data is the frames and the
// I-structure heap.  This module fixes the address layout and classifies
// addresses into those regions.
//
// All addresses are byte addresses; every access is a 4-byte word and must
// be word aligned.
#pragma once

#include <cstdint>
#include <string>

namespace jtam::mem {

using Addr = std::uint32_t;

inline constexpr Addr kWordBytes = 4;

// --- Layout constants -----------------------------------------------------
// Regions are deliberately placed far apart so an out-of-range pointer in a
// runtime kernel trips the machine's bounds checks instead of silently
// landing in another region.

inline constexpr Addr kSysCodeBase = 0x0000'1000;  // runtime kernel, FP lib
inline constexpr Addr kSysCodeLimit = 0x0008'0000;

inline constexpr Addr kUserCodeBase = 0x0010'0000;  // compiled inlets/threads
inline constexpr Addr kUserCodeLimit = 0x0020'0000;

// System data: message queues (4 KB each, as on the MDP), OS globals, LCV.
inline constexpr Addr kQueueBytes = 4 * 1024;
inline constexpr Addr kLowQueueBase = 0x0020'0000;
inline constexpr Addr kHighQueueBase = kLowQueueBase + kQueueBytes;
inline constexpr Addr kOsGlobalsBase = kHighQueueBase + kQueueBytes;
inline constexpr Addr kOsGlobalsBytes = 4 * 1024;
inline constexpr Addr kLcvBase = kOsGlobalsBase + kOsGlobalsBytes;
inline constexpr Addr kLcvBytes = 4 * 1024;
// Static system tables (codeblock descriptors, entry-count templates).
inline constexpr Addr kSysTableBase = kLcvBase + kLcvBytes;
inline constexpr Addr kSysTableLimit = 0x0030'0000;
inline constexpr Addr kSysDataBase = kLowQueueBase;
inline constexpr Addr kSysDataLimit = kSysTableLimit;

// User data: frames, I-structure heap, scratch allocations.
inline constexpr Addr kUserDataBase = 0x0040'0000;
inline constexpr Addr kUserDataLimit = 0x0100'0000;  // 12 MB of user data

inline constexpr Addr kMemoryLimit = kUserDataLimit;

/// Region classification used for the paper's system/user access accounting.
enum class Region : std::uint8_t {
  SysCode = 0,
  UserCode = 1,
  SysData = 2,
  UserData = 3,
};

inline constexpr int kRegionCount = 4;

/// Classify a byte address.  Throws jtam::Error for addresses outside every
/// region (the machine treats that as a fault).
Region classify(Addr a);

/// True if `a` lies in one of the two code regions.
bool is_code(Addr a);

/// Human-readable region name ("sys-code", "user-data", ...).
const char* region_name(Region r);

/// True if `a` falls inside either hardware message queue.
inline bool in_queue(Addr a) {
  return a >= kLowQueueBase && a < kHighQueueBase + kQueueBytes;
}

}  // namespace jtam::mem
