// Decoded micro-op engine: token-threaded dispatch with superblock chaining.
//
// This is the hot loop of the whole simulator.  It executes the pre-decoded
// Uop stream (src/mdp/decode.h) instead of re-deriving everything from the
// Instr at every dynamic instruction, and it chains straight-line runs —
// *superblocks* — without re-entering the per-step scheduler bookkeeping.
//
// Dispatch is a computed goto on GCC/Clang (each Uop carries the label of
// its handler, so dispatching is one indirect jump with per-site branch
// prediction); define JTAM_NO_COMPUTED_GOTO to build the portable
// switch-threaded fallback instead.  Both forms share one set of handler
// bodies through the OP()/JTAM_DISPATCH() macros below.
//
// Superblock boundaries — the only points where the scheduler can change
// which level runs next — follow from Machine::pick():
//
//   * HALT        (run over),
//   * SUSPEND     (level goes inactive; dispatch pulls the next message),
//   * SENDE       (queues change: a local send can make the high queue
//                  non-empty and preempt, and a stalled remote send burns
//                  the step without executing), and
//   * EINT        (preemption by an already-pending high message becomes
//                  legal mid-handler).
//
// Everything else chains: queues only change through SENDE, preemption
// only becomes possible through EINT, and network deliveries land between
// run_steps calls — so ALU ops, moves, memory ops, branches (direct and
// indirect), MARK, DINT, and message composition are safe to run
// back-to-back.  Every chained instruction still performs exactly the
// classic per-instruction work in the classic order: one fetch event, one
// instruction count, one flow hook, one ip update, one budget charge —
// bit-identical counters, trace streams, and fault state
// (tests/interp_test.cpp).
//
// Faults keep classic timing: a branch to an invalid address faults when
// the *next* fetch would execute, never before the branch itself is charged
// — if the branch exhausts the budget, the run returns Budget and the fault
// waits for the next call, exactly like the seed loop.

#include "mdp/machine.h"
#include "support/error.h"

namespace jtam::mdp {

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(JTAM_NO_COMPUTED_GOTO)
#define JTAM_THREADED_DISPATCH 1
#else
#define JTAM_THREADED_DISPATCH 0
#endif

RunStatus Machine::run_steps_decoded(std::uint64_t n) {
#if JTAM_THREADED_DISPATCH
  // Token-indexed handler labels.  Order must mirror the Op enumerators
  // exactly, with the fetch-fault sentinel last; the static_assert keeps
  // the table in lockstep with the ISA, so adding an Op without a handler
  // fails to compile instead of falling through the dispatch table.
  static const void* const kLabels[] = {
      &&lab_Nop,    &&lab_Halt,   &&lab_Add,    &&lab_Sub,    &&lab_Mul,
      &&lab_Divs,   &&lab_Mods,   &&lab_And,    &&lab_Or,     &&lab_Xor,
      &&lab_Shl,    &&lab_Shr,    &&lab_Slt,    &&lab_Sle,    &&lab_Seq,
      &&lab_Sne,    &&lab_Addi,   &&lab_Subi,   &&lab_Muli,   &&lab_Andi,
      &&lab_Ori,    &&lab_Shli,   &&lab_Shri,   &&lab_Slti,   &&lab_Movi,
      &&lab_Mov,    &&lab_Fadd,   &&lab_Fsub,   &&lab_Fmul,   &&lab_Fdiv,
      &&lab_Flt,    &&lab_Feq,    &&lab_Itof,   &&lab_Ftoi,   &&lab_Ld,
      &&lab_St,     &&lab_Sti,    &&lab_Ldg,    &&lab_Stg,    &&lab_Ldm,
      &&lab_Br,     &&lab_Brz,    &&lab_Brnz,   &&lab_Jmp,    &&lab_Call,
      &&lab_Callr,  &&lab_Ret,    &&lab_SendH,  &&lab_SendL,  &&lab_SendW,
      &&lab_SendWi, &&lab_SendD,  &&lab_SendDr, &&lab_SendE,  &&lab_Suspend,
      &&lab_Eint,   &&lab_Dint,   &&lab_Itagld, &&lab_Itagst, &&lab_Idefer,
      &&lab_Idhead, &&lab_Mark,   &&lab_Fault,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumTokens,
                "dispatch label table out of sync with the Op enum");
  dcache_.ensure(image_, kLabels);
#define OP(name) lab_##name:
#define JTAM_DISPATCH() goto* const_cast<void*>(u->handler)
#else
  dcache_.ensure(image_, nullptr);
#define OP(name) case Op::name:
#define JTAM_DISPATCH() goto dispatch_loop
#endif

  std::uint64_t executed = 0;
  Level* lv = nullptr;
  std::uint32_t* r = nullptr;
  Priority p = Priority::Low;
  const Uop* u = nullptr;
  // The observer attachments cannot change during a run; caching them in
  // const locals lets the compiler keep them in registers across the
  // dispatch loop instead of reloading members through `this` on every
  // instruction.
  TraceBuffer* const tb = tbuf_;
  TraceSink* const sk = sink_;
  FlowProbe* const fl = flow_;
  std::uint64_t* ilvl = nullptr;  // &instr_by_level_[p], refreshed at reenter

// One budget step consumed (instruction, MARK, or injection stall) —
// mirrors the per-exec charge of the classic run_steps loop.
#define JTAM_CHARGE()                                      \
  do {                                                     \
    if (++executed >= n) {                                 \
      return halted_ ? RunStatus::Halted : RunStatus::Budget; \
    }                                                      \
  } while (0)

// Classic pre-op accounting, in the classic order: fetch event, counters,
// flow hook, then the ip advance — all before the op body so a faulting op
// leaves identical state behind.
#define JTAM_ACCT()                                            \
  do {                                                         \
    if (tb != nullptr) {                                       \
      tb->add_fetch(u->addr, p);                               \
    } else if (sk != nullptr) {                                \
      sk->on_fetch(u->addr, p);                                \
    }                                                          \
    ++instr_count_;                                            \
    ++*ilvl;                                                   \
    if (fl != nullptr) fl->on_instruction(cfg_.node_id, p);    \
    lv->ip = u->addr + mem::kWordBytes;                        \
  } while (0)

// Chain to the next straight-line micro-op.
#define JTAM_NEXT() \
  do {              \
    JTAM_CHARGE();  \
    ++u;            \
    JTAM_DISPATCH(); \
  } while (0)

// End the superblock: back through the scheduler (pick / dispatch).
#define JTAM_BOUNDARY() \
  do {                  \
    JTAM_CHARGE();      \
    goto reenter;       \
  } while (0)

// Taken direct branch: lv->ip already holds the target.  The pre-resolved
// target is null when the target address is invalid; the fault fires here —
// at the next fetch — with classic messages and classic budget timing.
#define JTAM_TAKE_DIRECT()                       \
  do {                                           \
    JTAM_CHARGE();                               \
    if (u->targ == nullptr) fault_fetch(lv->ip); \
    u = u->targ;                                 \
    JTAM_DISPATCH();                             \
  } while (0)

// Taken indirect branch (JMP/CALLR/RET): translate the dynamic target.
#define JTAM_TAKE_DYNAMIC()                \
  do {                                     \
    JTAM_CHARGE();                         \
    u = dcache_.lookup(lv->ip);            \
    if (u == nullptr) fault_fetch(lv->ip); \
    JTAM_DISPATCH();                       \
  } while (0)

reenter:
  if (halted_) return RunStatus::Halted;
  lv = pick();
  if (lv == nullptr) return RunStatus::Deadlock;
  p = (lv == &levels_[1]) ? Priority::High : Priority::Low;
  ilvl = &instr_by_level_[static_cast<int>(p)];
  r = lv->regs;
  u = dcache_.lookup(lv->ip);
  if (u == nullptr) fault_fetch(lv->ip);
  JTAM_DISPATCH();

#if !JTAM_THREADED_DISPATCH
dispatch_loop:
  if (u->token == kTokFault) fault_fetch(u->addr);
  // Exhaustive over Op (no default): -Wswitch flags a missing handler.
  switch (static_cast<Op>(u->token)) {
#endif

  OP(Nop) { JTAM_ACCT(); JTAM_NEXT(); }
  OP(Halt) {
    JTAM_ACCT();
    halt_value_ = r[u->rs];
    halted_ = true;
    if (flow_ != nullptr) flow_->on_halt(cfg_.node_id, p);
    JTAM_BOUNDARY();
  }

  OP(Add) { JTAM_ACCT(); r[u->rd] = r[u->rs] + r[u->rt]; JTAM_NEXT(); }
  OP(Sub) { JTAM_ACCT(); r[u->rd] = r[u->rs] - r[u->rt]; JTAM_NEXT(); }
  OP(Mul) { JTAM_ACCT(); r[u->rd] = r[u->rs] * r[u->rt]; JTAM_NEXT(); }
  OP(Divs) {
    JTAM_ACCT();
    JTAM_CHECK(r[u->rt] != 0, "division by zero");
    r[u->rd] = as_u(as_i(r[u->rs]) / as_i(r[u->rt]));
    JTAM_NEXT();
  }
  OP(Mods) {
    JTAM_ACCT();
    JTAM_CHECK(r[u->rt] != 0, "modulo by zero");
    r[u->rd] = as_u(as_i(r[u->rs]) % as_i(r[u->rt]));
    JTAM_NEXT();
  }
  OP(And) { JTAM_ACCT(); r[u->rd] = r[u->rs] & r[u->rt]; JTAM_NEXT(); }
  OP(Or) { JTAM_ACCT(); r[u->rd] = r[u->rs] | r[u->rt]; JTAM_NEXT(); }
  OP(Xor) { JTAM_ACCT(); r[u->rd] = r[u->rs] ^ r[u->rt]; JTAM_NEXT(); }
  OP(Shl) {
    JTAM_ACCT();
    r[u->rd] = r[u->rs] << (r[u->rt] & 31u);
    JTAM_NEXT();
  }
  OP(Shr) {
    JTAM_ACCT();
    r[u->rd] = r[u->rs] >> (r[u->rt] & 31u);
    JTAM_NEXT();
  }
  OP(Slt) {
    JTAM_ACCT();
    r[u->rd] = as_i(r[u->rs]) < as_i(r[u->rt]) ? 1 : 0;
    JTAM_NEXT();
  }
  OP(Sle) {
    JTAM_ACCT();
    r[u->rd] = as_i(r[u->rs]) <= as_i(r[u->rt]) ? 1 : 0;
    JTAM_NEXT();
  }
  OP(Seq) { JTAM_ACCT(); r[u->rd] = r[u->rs] == r[u->rt] ? 1 : 0; JTAM_NEXT(); }
  OP(Sne) { JTAM_ACCT(); r[u->rd] = r[u->rs] != r[u->rt] ? 1 : 0; JTAM_NEXT(); }

  OP(Addi) { JTAM_ACCT(); r[u->rd] = r[u->rs] + u->imm; JTAM_NEXT(); }
  OP(Subi) { JTAM_ACCT(); r[u->rd] = r[u->rs] - u->imm; JTAM_NEXT(); }
  OP(Muli) { JTAM_ACCT(); r[u->rd] = r[u->rs] * u->imm; JTAM_NEXT(); }
  OP(Andi) { JTAM_ACCT(); r[u->rd] = r[u->rs] & u->imm; JTAM_NEXT(); }
  OP(Ori) { JTAM_ACCT(); r[u->rd] = r[u->rs] | u->imm; JTAM_NEXT(); }
  OP(Shli) { JTAM_ACCT(); r[u->rd] = r[u->rs] << (u->imm & 31u); JTAM_NEXT(); }
  OP(Shri) { JTAM_ACCT(); r[u->rd] = r[u->rs] >> (u->imm & 31u); JTAM_NEXT(); }
  OP(Slti) {
    JTAM_ACCT();
    r[u->rd] = as_i(r[u->rs]) < u->imm_s() ? 1 : 0;
    JTAM_NEXT();
  }

  OP(Movi) { JTAM_ACCT(); r[u->rd] = u->imm; JTAM_NEXT(); }
  OP(Mov) { JTAM_ACCT(); r[u->rd] = r[u->rs]; JTAM_NEXT(); }

  OP(Fadd) {
    JTAM_ACCT();
    r[u->rd] = as_u(as_f(r[u->rs]) + as_f(r[u->rt]));
    JTAM_NEXT();
  }
  OP(Fsub) {
    JTAM_ACCT();
    r[u->rd] = as_u(as_f(r[u->rs]) - as_f(r[u->rt]));
    JTAM_NEXT();
  }
  OP(Fmul) {
    JTAM_ACCT();
    r[u->rd] = as_u(as_f(r[u->rs]) * as_f(r[u->rt]));
    JTAM_NEXT();
  }
  OP(Fdiv) {
    JTAM_ACCT();
    r[u->rd] = as_u(as_f(r[u->rs]) / as_f(r[u->rt]));
    JTAM_NEXT();
  }
  OP(Flt) {
    JTAM_ACCT();
    r[u->rd] = as_f(r[u->rs]) < as_f(r[u->rt]) ? 1 : 0;
    JTAM_NEXT();
  }
  OP(Feq) {
    JTAM_ACCT();
    r[u->rd] = as_f(r[u->rs]) == as_f(r[u->rt]) ? 1 : 0;
    JTAM_NEXT();
  }
  OP(Itof) {
    JTAM_ACCT();
    r[u->rd] = as_u(static_cast<float>(as_i(r[u->rs])));
    JTAM_NEXT();
  }
  OP(Ftoi) {
    JTAM_ACCT();
    r[u->rd] = as_u(static_cast<std::int32_t>(as_f(r[u->rs])));
    JTAM_NEXT();
  }

  OP(Ld) {
    JTAM_ACCT();
    r[u->rd] = mem_read(r[u->rs] + u->off, p);
    JTAM_NEXT();
  }
  OP(St) {
    JTAM_ACCT();
    mem_write(r[u->rs] + u->off, r[u->rt], p);
    JTAM_NEXT();
  }
  OP(Sti) {
    JTAM_ACCT();
    mem_write(r[u->rs] + u->off, u->imm, p);
    JTAM_NEXT();
  }
  OP(Ldg) { JTAM_ACCT(); r[u->rd] = mem_read(u->imm, p); JTAM_NEXT(); }
  OP(Stg) { JTAM_ACCT(); mem_write(u->imm, r[u->rs], p); JTAM_NEXT(); }
  OP(Ldm) {
    JTAM_ACCT();
    r[u->rd] = mem_read(lv->mb + u->off, p);
    JTAM_NEXT();
  }

  OP(Br) {
    JTAM_ACCT();
    lv->ip = u->imm;
    JTAM_TAKE_DIRECT();
  }
  OP(Brz) {
    JTAM_ACCT();
    if (r[u->rs] == 0) {
      lv->ip = u->imm;
      JTAM_TAKE_DIRECT();
    }
    JTAM_NEXT();
  }
  OP(Brnz) {
    JTAM_ACCT();
    if (r[u->rs] != 0) {
      lv->ip = u->imm;
      JTAM_TAKE_DIRECT();
    }
    JTAM_NEXT();
  }
  OP(Jmp) {
    JTAM_ACCT();
    lv->ip = r[u->rs];
    JTAM_TAKE_DYNAMIC();
  }
  OP(Call) {
    JTAM_ACCT();
    r[kRegLr] = u->addr + mem::kWordBytes;
    lv->ip = u->imm;
    JTAM_TAKE_DIRECT();
  }
  OP(Callr) {
    JTAM_ACCT();
    r[kRegLr] = u->addr + mem::kWordBytes;
    lv->ip = r[u->rs];
    JTAM_TAKE_DYNAMIC();
  }
  OP(Ret) {
    JTAM_ACCT();
    lv->ip = r[kRegLr];
    JTAM_TAKE_DYNAMIC();
  }

  OP(SendH) {
    JTAM_ACCT();
    JTAM_CHECK(!lv->composing, "SENDH/SENDL while already composing");
    lv->composing = true;
    lv->compose_dest = Priority::High;
    lv->compose_node = cfg_.node_id;
    lv->compose_words.clear();
    JTAM_NEXT();
  }
  OP(SendL) {
    JTAM_ACCT();
    JTAM_CHECK(!lv->composing, "SENDH/SENDL while already composing");
    lv->composing = true;
    lv->compose_dest = Priority::Low;
    lv->compose_node = cfg_.node_id;
    lv->compose_words.clear();
    JTAM_NEXT();
  }
  OP(SendW) {
    JTAM_ACCT();
    JTAM_CHECK(lv->composing, "SENDW outside a message");
    lv->compose_words.push_back(r[u->rs]);
    JTAM_NEXT();
  }
  OP(SendWi) {
    JTAM_ACCT();
    JTAM_CHECK(lv->composing, "SENDWI outside a message");
    lv->compose_words.push_back(u->imm);
    JTAM_NEXT();
  }
  OP(SendD) {
    JTAM_ACCT();
    JTAM_CHECK(lv->composing, "SENDD outside a message");
    {
      const int dest = static_cast<int>(r[u->rs]);
      JTAM_CHECK(dest >= 0 && dest < cfg_.num_nodes,
                 "SENDD destination node out of range");
      lv->compose_node = dest;
    }
    JTAM_NEXT();
  }
  OP(SendDr) {
    JTAM_ACCT();
    JTAM_CHECK(lv->composing, "SENDDR outside a message");
    lv->compose_node = placement_->place(u->imm);
    JTAM_NEXT();
  }
  OP(SendE) {
    // Injection backpressure, checked before any accounting: the step is
    // burned without executing an instruction (no fetch event, no count,
    // ip unchanged) and the SENDE retries after the scheduler re-entry.
    if (lv->composing && net_ != nullptr &&
        lv->compose_node != cfg_.node_id &&
        !net_->can_accept(cfg_.node_id, lv->compose_node,
                          lv->compose_dest)) {
      if (!inj_stalled_) {
        inj_stalled_ = true;
        ++stalled_sends_;
      }
      ++injection_stall_cycles_;
      if (flow_ != nullptr) flow_->on_send_stall(cfg_.node_id, p);
      JTAM_BOUNDARY();
    }
    JTAM_ACCT();
    JTAM_CHECK(lv->composing, "SENDE outside a message");
    lv->composing = false;
    if (lv->compose_node == cfg_.node_id) {
      enqueue(lv->compose_dest, lv->compose_words, p, /*emit_events=*/true);
      if (flow_ != nullptr) {
        flow_->on_local_send(cfg_.node_id, lv->compose_dest, p,
                             lv->compose_words);
      }
    } else {
      JTAM_CHECK(net_ != nullptr, "remote SENDE without a network attached");
      const std::uint64_t flow_id =
          flow_ != nullptr
              ? flow_->on_remote_send(cfg_.node_id, lv->compose_node,
                                      lv->compose_dest, p, lv->compose_words)
              : 0;
      net_->send(cfg_.node_id, lv->compose_node, lv->compose_dest,
                 lv->compose_words, flow_id);
      inj_stalled_ = false;
    }
    JTAM_BOUNDARY();
  }

  OP(Suspend) {
    JTAM_ACCT();
    JTAM_CHECK(lv->active, "SUSPEND at an idle level");
    JTAM_CHECK(!lv->composing, "SUSPEND with a half-composed message");
    consume_current(p);
    lv->active = false;
    if (queue_marks_) emit_queue_sample(MarkKind::Suspend, p);
    JTAM_BOUNDARY();
  }
  OP(Eint) {
    JTAM_ACCT();
    lv->int_enabled = true;
    JTAM_BOUNDARY();
  }
  OP(Dint) {
    JTAM_ACCT();
    lv->int_enabled = false;
    JTAM_NEXT();
  }

  OP(Itagld) {
    JTAM_ACCT();
    {
      const Addr a = r[u->rs];
      r[u->rd] = mem_read(a, p);
      r[u->rt] = tag(a) ? 1 : 0;
    }
    JTAM_NEXT();
  }
  OP(Itagst) {
    JTAM_ACCT();
    {
      const Addr a = r[u->rs];
      mem_write(a, r[u->rt], p);
      set_tag(a, true);
    }
    JTAM_NEXT();
  }
  OP(Idefer) {
    JTAM_ACCT();
    {
      const Addr a = r[u->rs];
      JTAM_CHECK(defer_bump_ != 0, "deferred-read pool not configured");
      JTAM_CHECK(defer_bump_ + 12 <= defer_limit_,
                 "deferred-read pool exhausted");
      const Addr node = defer_bump_;
      defer_bump_ += 12;
      auto it = defer_heads_.find(a);
      const Addr old_head = it == defer_heads_.end() ? 0 : it->second;
      mem_write(node + 0, r[u->rt], p);  // inlet address
      mem_write(node + 4, r[u->rd], p);  // frame pointer
      mem_write(node + 8, old_head, p);  // next
      defer_heads_[a] = node;
    }
    JTAM_NEXT();
  }
  OP(Idhead) {
    JTAM_ACCT();
    {
      const Addr a = r[u->rs];
      auto it = defer_heads_.find(a);
      if (it == defer_heads_.end()) {
        r[u->rd] = 0;
      } else {
        r[u->rd] = it->second;
        defer_heads_.erase(it);
      }
    }
    JTAM_NEXT();
  }

  OP(Mark) {
    // Instrumentation is free: no fetch event, no cycle — but, like the
    // classic loop, it consumes one budget step per exec.
    emit_mark(static_cast<MarkKind>(u->imm_s()), r[u->rs], p);
    if (flow_ != nullptr) {
      flow_->on_probe_mark(cfg_.node_id, static_cast<MarkKind>(u->imm_s()),
                           r[u->rs], p);
    }
    lv->ip = u->addr + mem::kWordBytes;
    JTAM_NEXT();
  }

#if !JTAM_THREADED_DISPATCH
  }
  fault_fetch(u->addr);  // unreachable: kTokFault is filtered above
#else
lab_Fault:
  // Sentinel past the end of a code section, reached by straight-line
  // chaining — the classic unmapped-fetch fault at exactly this address.
  fault_fetch(u->addr);
#endif

#undef OP
#undef JTAM_DISPATCH
#undef JTAM_CHARGE
#undef JTAM_ACCT
#undef JTAM_NEXT
#undef JTAM_BOUNDARY
#undef JTAM_TAKE_DIRECT
#undef JTAM_TAKE_DYNAMIC
}

#undef JTAM_THREADED_DISPATCH

}  // namespace jtam::mdp
