#include "mdp/machine.h"

#include <sstream>

#include "support/error.h"

namespace jtam::mdp {

Machine::Machine(CodeImage image, Config cfg)
    : image_(std::move(image)), cfg_(cfg) {
  JTAM_CHECK(cfg_.queue_bytes >= 64 && cfg_.queue_bytes <= mem::kQueueBytes,
             "queue size must be in [64, 4096] bytes");
  JTAM_CHECK(cfg_.num_nodes >= 1 && cfg_.node_id >= 0 &&
                 cfg_.node_id < cfg_.num_nodes,
             "node id out of range");
  JTAM_CHECK(cfg_.node_shift == 24 ||
                 (cfg_.node_shift >= 19 && cfg_.node_shift <= 22),
             "node-field shift must be 24 (seed layout) or in [19, 22]");
  JTAM_CHECK(static_cast<std::uint64_t>(cfg_.num_nodes) <=
                 mem::max_nodes_for_shift(cfg_.node_shift),
             "node count does not fit the node-field shift");
  codec_ = mem::NodeCodec(cfg_.node_shift);
  // The default round-robin policy staggers by node id so nodes do not
  // all allocate on node 0 (bit-identical to the seed counter).
  placement_ = PlacementPolicy::make(cfg_.placement, cfg_.node_id,
                                     cfg_.num_nodes);
  // Flat memory covers [0, user_limit): at the seed shift this is the full
  // 16 MB kMemoryLimit; narrower shifts shrink the user window (and so the
  // per-node footprint) to kUserDataBase + 2^shift.
  memory_.assign(codec_.user_limit / mem::kWordBytes, 0);
  tags_.assign((codec_.user_limit - mem::kUserDataBase) / mem::kWordBytes,
               false);
  queues_[0] = Queue{mem::kLowQueueBase, cfg_.queue_bytes,
                     mem::kLowQueueBase, mem::kLowQueueBase, 0, 0, {}};
  queues_[1] = Queue{mem::kHighQueueBase, cfg_.queue_bytes,
                     mem::kHighQueueBase, mem::kHighQueueBase, 0, 0, {}};
}

// --- address plumbing -------------------------------------------------------

const Instr& Machine::code_at(Addr a) const {
  JTAM_CHECK((a & 3u) == 0, "instruction address not word aligned");
  if (a >= mem::kSysCodeBase) {
    std::size_t i = (a - mem::kSysCodeBase) / mem::kWordBytes;
    if (i < image_.sys_code.size()) return image_.sys_code[i];
  }
  if (a >= mem::kUserCodeBase) {
    std::size_t i = (a - mem::kUserCodeBase) / mem::kWordBytes;
    if (i < image_.user_code.size()) return image_.user_code[i];
  }
  std::ostringstream os;
  os << "instruction fetch from unmapped address 0x" << std::hex << a;
  throw Error(os.str());
}

void Machine::fault_fetch(Addr a) const {
  JTAM_CHECK((a & 3u) == 0, "instruction address not word aligned");
  std::ostringstream os;
  os << "instruction fetch from unmapped address 0x" << std::hex << a;
  throw Error(os.str());
}

void Machine::patch_code(Addr a, const Instr& in) {
  JTAM_CHECK((a & 3u) == 0, "instruction address not word aligned");
  if (a >= mem::kSysCodeBase) {
    std::size_t i = (a - mem::kSysCodeBase) / mem::kWordBytes;
    if (i < image_.sys_code.size()) {
      image_.sys_code[i] = in;
      dcache_.invalidate();
      return;
    }
  }
  if (a >= mem::kUserCodeBase) {
    std::size_t i = (a - mem::kUserCodeBase) / mem::kWordBytes;
    if (i < image_.user_code.size()) {
      image_.user_code[i] = in;
      dcache_.invalidate();
      return;
    }
  }
  std::ostringstream os;
  os << "code patch outside the loaded image at 0x" << std::hex << a;
  throw Error(os.str());
}

void Machine::load_image(CodeImage image) {
  image_ = std::move(image);
  dcache_.invalidate();
}

void Machine::data_addr_fault(Addr a) const {
  // Cold continuation of the inline check_data_addr: re-derive which rule
  // the address broke and throw the matching diagnosis.
  if ((a & 3u) != 0) {
    std::ostringstream os;
    os << "unaligned data access at 0x" << std::hex << a;
    throw Error(os.str());
  }
  const Addr local = codec_.local_of(a);
  // Seed diagnosis at shift 24: a sys-range local with node bits set.  At
  // narrower shifts sys addresses never alias into a legal node's window
  // (max_nodes_for_shift caps node ids below the underflow range), so the
  // seed wording is kept for the shift-24 case it describes.
  if (cfg_.node_shift == 24 && (a & 0xFFFFFFu) >= mem::kSysDataBase &&
      (a & 0xFFFFFFu) < mem::kSysDataLimit) {
    std::ostringstream os;
    os << "sys-data address with node bits at 0x" << std::hex << a;
    throw Error(os.str());
  }
  if (local >= mem::kUserDataBase && local < codec_.user_limit &&
      (cfg_.node_shift == 24 ||
       codec_.node_of(a) < static_cast<Addr>(cfg_.num_nodes))) {
    std::ostringstream os;
    os << "remote user-data address dereferenced locally: 0x" << std::hex
       << a << " on node " << std::dec << cfg_.node_id
       << " (remote data must travel by message)";
    throw Error(os.str());
  }
  std::ostringstream os;
  os << "data access outside data regions at 0x" << std::hex << a;
  throw Error(os.str());
}

std::uint32_t Machine::load_word(Addr a) const {
  check_data_addr(a);
  return memory_[local_data_addr(a) / mem::kWordBytes];
}

void Machine::store_word(Addr a, std::uint32_t v) {
  check_data_addr(a);
  memory_[local_data_addr(a) / mem::kWordBytes] = v;
}

std::size_t Machine::tag_index(Addr a) const {
  const Addr local = codec_.local_of(a);
  JTAM_CHECK(local >= mem::kUserDataBase && local < codec_.user_limit,
             "presence tags exist only over user data");
  JTAM_CHECK((a & 3u) == 0, "tag access not word aligned");
  return (local - mem::kUserDataBase) / mem::kWordBytes;
}

bool Machine::tag(Addr a) const { return tags_[tag_index(a)]; }

void Machine::set_tag(Addr a, bool present) { tags_[tag_index(a)] = present; }

void Machine::set_defer_pool(Addr base, Addr limit) {
  const Addr lb = codec_.local_of(base);
  const Addr ll = codec_.local_of(limit - 4) + 4;
  JTAM_CHECK(lb >= mem::kUserDataBase && ll <= codec_.user_limit && lb < ll,
             "deferred-read pool must lie inside user data");
  defer_bump_ = base;
  defer_limit_ = limit;
}

// --- queues ------------------------------------------------------------------

void Machine::inject(Priority p, std::span<const std::uint32_t> words) {
  enqueue(p, words, p, /*emit_events=*/false);
  if (flow_ != nullptr) flow_->on_boot(cfg_.node_id, p, words);
}

void Machine::enqueue(Priority p, std::span<const std::uint32_t> words,
                      Priority sender_level, bool emit_events) {
  JTAM_CHECK(!words.empty(), "cannot enqueue an empty message");
  Queue& q = queue(p);
  const std::uint32_t need =
      static_cast<std::uint32_t>(words.size()) * mem::kWordBytes;
  JTAM_CHECK(need <= q.bytes, "message larger than the hardware queue");
  std::uint32_t pad = 0;
  Addr place = q.tail;
  if (q.tail + need > q.base + q.bytes) {
    pad = q.base + q.bytes - q.tail;  // skip the fragmented tail of the ring
    place = q.base;
  }
  if (q.used_bytes + pad + need > q.bytes) {
    std::ostringstream os;
    os << priority_name(p) << "-priority message queue overflow ("
       << q.used_bytes << "B used, message of " << need << "B)"
       << " — the paper only ran programs that fit in the queue (§2.3);"
       << " reduce the problem size or raise Config::queue_bytes";
    throw Error(os.str());
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    mem_write(place + static_cast<Addr>(i) * mem::kWordBytes, words[i],
              sender_level, emit_events);
  }
  q.records.push_back(
      MsgRec{place, static_cast<std::uint32_t>(words.size()), pad});
  q.used_bytes += pad + need;
  q.high_water = std::max(q.high_water, q.used_bytes);
  q.tail = place + need;
  if (q.tail == q.base + q.bytes) q.tail = q.base;
}

void Machine::emit_queue_sample(MarkKind k, Priority p) {
  const Queue& q = queue(p);
  emit_mark(k,
            pack_queue_sample(q.used_bytes,
                              static_cast<std::uint32_t>(q.records.size())),
            p);
}

void Machine::dispatch(Priority p) {
  Queue& q = queue(p);
  JTAM_ASSERT(!q.records.empty(), "dispatch from empty queue");
  Level& lv = level(p);
  // Synthetic observability mark: sample queue occupancy at the moment the
  // dispatch hardware pulls the next message.  Free, like every mark.
  if (queue_marks_) emit_queue_sample(MarkKind::Dispatch, p);
  lv.mb = q.records.front().offset;
  // The dispatch hardware reads the header word (the handler address)
  // from queue memory; that read touches the memory system like any other.
  lv.ip = mem_read(lv.mb, p);
  lv.active = true;
  if (flow_ != nullptr) flow_->on_dispatch(cfg_.node_id, p);
}

void Machine::consume_current(Priority p) {
  Queue& q = queue(p);
  JTAM_ASSERT(!q.records.empty(), "consume with no current message");
  MsgRec rec = q.records.front();
  q.records.pop_front();
  q.used_bytes -= rec.pad + rec.len * mem::kWordBytes;
  q.head = rec.offset + rec.len * mem::kWordBytes;
  if (q.head == q.base + q.bytes) q.head = q.base;
  if (flow_ != nullptr) flow_->on_consume(cfg_.node_id, p);
}

// --- execution ---------------------------------------------------------------

Machine::Level* Machine::pick() {
  Level& hi = levels_[1];
  Level& lo = levels_[0];
  if (hi.active) return &hi;
  if (!queues_[1].empty() && (!lo.active || lo.int_enabled)) {
    dispatch(Priority::High);
    return &hi;
  }
  if (lo.active) return &lo;
  if (!queues_[0].empty()) {
    dispatch(Priority::Low);
    return &lo;
  }
  return nullptr;
}

RunStatus Machine::run() { return run_steps(cfg_.max_instructions); }

RunStatus Machine::run_steps(std::uint64_t n) {
  return dispatch_ == DispatchKind::Decoded ? run_steps_decoded(n)
                                            : run_steps_classic(n);
}

RunStatus Machine::run_steps_classic(std::uint64_t n) {
  std::uint64_t executed = 0;
  while (!halted_) {
    Level* lv = pick();
    if (lv == nullptr) return RunStatus::Deadlock;
    Priority p = (lv == &levels_[1]) ? Priority::High : Priority::Low;
    exec(*lv, p);
    if (++executed >= n) return halted_ ? RunStatus::Halted : RunStatus::Budget;
  }
  return RunStatus::Halted;
}

void Machine::exec(Level& lv, Priority p) {
  const Instr& in = code_at(lv.ip);
  const Addr next = lv.ip + mem::kWordBytes;
  auto& r = lv.regs;

  if (in.op == Op::Mark) {
    // Instrumentation is free: no fetch event, no cycle, no budget charge.
    emit_mark(static_cast<MarkKind>(in.imm), r[in.rs], p);
    if (flow_ != nullptr) {
      flow_->on_probe_mark(cfg_.node_id, static_cast<MarkKind>(in.imm),
                           r[in.rs], p);
    }
    lv.ip = next;
    return;
  }

  // Injection backpressure: a remote SENDE whose network cannot take the
  // message right now stalls the node — the instruction does not execute
  // (no fetch event, no instruction count, ip unchanged) and the step is
  // burned as an injection-stall cycle.  The SENDE retries next step.
  if (in.op == Op::SendE && lv.composing && net_ != nullptr &&
      lv.compose_node != cfg_.node_id &&
      !net_->can_accept(cfg_.node_id, lv.compose_node, lv.compose_dest)) {
    if (!inj_stalled_) {
      inj_stalled_ = true;
      ++stalled_sends_;
    }
    ++injection_stall_cycles_;
    if (flow_ != nullptr) flow_->on_send_stall(cfg_.node_id, p);
    return;
  }

  if (tbuf_ != nullptr) {
    tbuf_->add_fetch(lv.ip, p);
  } else if (sink_ != nullptr) {
    sink_->on_fetch(lv.ip, p);
  }
  ++instr_count_;
  ++instr_by_level_[static_cast<int>(p)];
  if (flow_ != nullptr) flow_->on_instruction(cfg_.node_id, p);
  lv.ip = next;

  switch (in.op) {
    case Op::Nop:
      break;
    case Op::Halt:
      halt_value_ = r[in.rs];
      halted_ = true;
      if (flow_ != nullptr) flow_->on_halt(cfg_.node_id, p);
      break;

    case Op::Add: r[in.rd] = r[in.rs] + r[in.rt]; break;
    case Op::Sub: r[in.rd] = r[in.rs] - r[in.rt]; break;
    case Op::Mul: r[in.rd] = r[in.rs] * r[in.rt]; break;
    case Op::Divs:
      JTAM_CHECK(r[in.rt] != 0, "division by zero");
      r[in.rd] = as_u(as_i(r[in.rs]) / as_i(r[in.rt]));
      break;
    case Op::Mods:
      JTAM_CHECK(r[in.rt] != 0, "modulo by zero");
      r[in.rd] = as_u(as_i(r[in.rs]) % as_i(r[in.rt]));
      break;
    case Op::And: r[in.rd] = r[in.rs] & r[in.rt]; break;
    case Op::Or: r[in.rd] = r[in.rs] | r[in.rt]; break;
    case Op::Xor: r[in.rd] = r[in.rs] ^ r[in.rt]; break;
    case Op::Shl: r[in.rd] = r[in.rs] << (r[in.rt] & 31u); break;
    case Op::Shr: r[in.rd] = r[in.rs] >> (r[in.rt] & 31u); break;
    case Op::Slt: r[in.rd] = as_i(r[in.rs]) < as_i(r[in.rt]) ? 1 : 0; break;
    case Op::Sle: r[in.rd] = as_i(r[in.rs]) <= as_i(r[in.rt]) ? 1 : 0; break;
    case Op::Seq: r[in.rd] = r[in.rs] == r[in.rt] ? 1 : 0; break;
    case Op::Sne: r[in.rd] = r[in.rs] != r[in.rt] ? 1 : 0; break;

    case Op::Addi: r[in.rd] = r[in.rs] + as_u(in.imm); break;
    case Op::Subi: r[in.rd] = r[in.rs] - as_u(in.imm); break;
    case Op::Muli: r[in.rd] = r[in.rs] * as_u(in.imm); break;
    case Op::Andi: r[in.rd] = r[in.rs] & as_u(in.imm); break;
    case Op::Ori: r[in.rd] = r[in.rs] | as_u(in.imm); break;
    case Op::Shli: r[in.rd] = r[in.rs] << (in.imm & 31); break;
    case Op::Shri: r[in.rd] = r[in.rs] >> (in.imm & 31); break;
    case Op::Slti: r[in.rd] = as_i(r[in.rs]) < in.imm ? 1 : 0; break;

    case Op::Movi: r[in.rd] = as_u(in.imm); break;
    case Op::Mov: r[in.rd] = r[in.rs]; break;

    case Op::Fadd: r[in.rd] = as_u(as_f(r[in.rs]) + as_f(r[in.rt])); break;
    case Op::Fsub: r[in.rd] = as_u(as_f(r[in.rs]) - as_f(r[in.rt])); break;
    case Op::Fmul: r[in.rd] = as_u(as_f(r[in.rs]) * as_f(r[in.rt])); break;
    case Op::Fdiv: r[in.rd] = as_u(as_f(r[in.rs]) / as_f(r[in.rt])); break;
    case Op::Flt: r[in.rd] = as_f(r[in.rs]) < as_f(r[in.rt]) ? 1 : 0; break;
    case Op::Feq: r[in.rd] = as_f(r[in.rs]) == as_f(r[in.rt]) ? 1 : 0; break;
    case Op::Itof: r[in.rd] = as_u(static_cast<float>(as_i(r[in.rs]))); break;
    case Op::Ftoi:
      r[in.rd] = as_u(static_cast<std::int32_t>(as_f(r[in.rs])));
      break;

    case Op::Ld: r[in.rd] = mem_read(r[in.rs] + as_u(in.off), p); break;
    case Op::St: mem_write(r[in.rs] + as_u(in.off), r[in.rt], p); break;
    case Op::Sti:
      mem_write(r[in.rs] + as_u(in.off), as_u(in.imm), p);
      break;
    case Op::Ldg: r[in.rd] = mem_read(as_u(in.imm), p); break;
    case Op::Stg: mem_write(as_u(in.imm), r[in.rs], p); break;
    case Op::Ldm: r[in.rd] = mem_read(lv.mb + as_u(in.off), p); break;

    case Op::Br: lv.ip = as_u(in.imm); break;
    case Op::Brz:
      if (r[in.rs] == 0) lv.ip = as_u(in.imm);
      break;
    case Op::Brnz:
      if (r[in.rs] != 0) lv.ip = as_u(in.imm);
      break;
    case Op::Jmp: lv.ip = r[in.rs]; break;
    case Op::Call:
      r[kRegLr] = next;
      lv.ip = as_u(in.imm);
      break;
    case Op::Callr:
      r[kRegLr] = next;
      lv.ip = r[in.rs];
      break;
    case Op::Ret: lv.ip = r[kRegLr]; break;

    case Op::SendH:
    case Op::SendL:
      JTAM_CHECK(!lv.composing, "SENDH/SENDL while already composing");
      lv.composing = true;
      lv.compose_dest =
          in.op == Op::SendH ? Priority::High : Priority::Low;
      lv.compose_node = cfg_.node_id;
      lv.compose_words.clear();
      break;
    case Op::SendW:
      JTAM_CHECK(lv.composing, "SENDW outside a message");
      lv.compose_words.push_back(r[in.rs]);
      break;
    case Op::SendWi:
      JTAM_CHECK(lv.composing, "SENDWI outside a message");
      lv.compose_words.push_back(as_u(in.imm));
      break;
    case Op::SendD: {
      JTAM_CHECK(lv.composing, "SENDD outside a message");
      const int dest = static_cast<int>(r[in.rs]);
      JTAM_CHECK(dest >= 0 && dest < cfg_.num_nodes,
                 "SENDD destination node out of range");
      lv.compose_node = dest;
      break;
    }
    case Op::SendDr:
      JTAM_CHECK(lv.composing, "SENDDR outside a message");
      lv.compose_node = placement_->place(as_u(in.imm));
      break;
    case Op::SendE: {
      JTAM_CHECK(lv.composing, "SENDE outside a message");
      lv.composing = false;
      if (lv.compose_node == cfg_.node_id) {
        enqueue(lv.compose_dest, lv.compose_words, p, /*emit_events=*/true);
        if (flow_ != nullptr) {
          flow_->on_local_send(cfg_.node_id, lv.compose_dest, p,
                               lv.compose_words);
        }
      } else {
        JTAM_CHECK(net_ != nullptr,
                   "remote SENDE without a network attached");
        const std::uint64_t flow_id =
            flow_ != nullptr
                ? flow_->on_remote_send(cfg_.node_id, lv.compose_node,
                                        lv.compose_dest, p, lv.compose_words)
                : 0;
        net_->send(cfg_.node_id, lv.compose_node, lv.compose_dest,
                   lv.compose_words, flow_id);
        inj_stalled_ = false;
      }
      break;
    }

    case Op::Suspend: {
      JTAM_CHECK(lv.active, "SUSPEND at an idle level");
      JTAM_CHECK(!lv.composing, "SUSPEND with a half-composed message");
      consume_current(p);
      lv.active = false;
      // Synthetic observability mark: the handler is over; sample the
      // post-consume queue occupancy for the occupancy timeline.
      if (queue_marks_) emit_queue_sample(MarkKind::Suspend, p);
      break;
    }
    case Op::Eint: lv.int_enabled = true; break;
    case Op::Dint: lv.int_enabled = false; break;

    case Op::Itagld: {
      Addr a = r[in.rs];
      r[in.rd] = mem_read(a, p);
      r[in.rt] = tag(a) ? 1 : 0;
      break;
    }
    case Op::Itagst: {
      Addr a = r[in.rs];
      mem_write(a, r[in.rt], p);
      set_tag(a, true);
      break;
    }
    case Op::Idefer: {
      Addr a = r[in.rs];
      JTAM_CHECK(defer_bump_ != 0, "deferred-read pool not configured");
      JTAM_CHECK(defer_bump_ + 12 <= defer_limit_,
                 "deferred-read pool exhausted");
      Addr node = defer_bump_;
      defer_bump_ += 12;
      auto it = defer_heads_.find(a);
      Addr old_head = it == defer_heads_.end() ? 0 : it->second;
      mem_write(node + 0, r[in.rt], p);   // inlet address
      mem_write(node + 4, r[in.rd], p);   // frame pointer
      mem_write(node + 8, old_head, p);   // next
      defer_heads_[a] = node;
      break;
    }
    case Op::Idhead: {
      Addr a = r[in.rs];
      auto it = defer_heads_.find(a);
      if (it == defer_heads_.end()) {
        r[in.rd] = 0;
      } else {
        r[in.rd] = it->second;
        defer_heads_.erase(it);
      }
      break;
    }

    case Op::Mark:
      break;  // handled above
  }
}

}  // namespace jtam::mdp
