// Two-section symbolic assembler for the MDP ISA.
//
// The runtime kernel is emitted into the system-code section and compiled
// TAM inlets/threads into the user-code section; labels are global, so user
// code can call runtime entry points (rt_post, the FP library, ...) and the
// runtime can reference user handlers.  `link()` resolves all label fixups
// and produces a CodeImage that the Machine loads.
//
// Emission style: each emit_* method appends one instruction at the current
// section cursor and returns its address.  Immediate operands may be plain
// integers or `LabelRef`s, which are patched at link time.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "mdp/isa.h"
#include "mem/memory_map.h"

namespace jtam::mdp {

using mem::Addr;

enum class Section : std::uint8_t { SysCode = 0, UserCode = 1 };

/// Opaque label handle.  Obtain via Assembler::label(); bind with bind().
struct LabelRef {
  std::uint32_t id = 0;
};

/// An immediate operand: either a literal or a label to resolve.
class ImmOrLabel {
 public:
  ImmOrLabel(std::int32_t v) : v_(v) {}          // NOLINT(runtime/explicit)
  ImmOrLabel(LabelRef l) : v_(l) {}              // NOLINT(runtime/explicit)
  bool is_label() const { return std::holds_alternative<LabelRef>(v_); }
  std::int32_t imm() const { return std::get<std::int32_t>(v_); }
  LabelRef label() const { return std::get<LabelRef>(v_); }

 private:
  std::variant<std::int32_t, LabelRef> v_;
};

/// Result of linking: both code sections plus the symbol table.
struct CodeImage {
  std::vector<Instr> sys_code;   // starts at mem::kSysCodeBase
  std::vector<Instr> user_code;  // starts at mem::kUserCodeBase
  std::unordered_map<std::string, Addr> symbols;

  Addr sys_code_limit() const {
    return mem::kSysCodeBase +
           static_cast<Addr>(sys_code.size()) * mem::kWordBytes;
  }
  Addr user_code_limit() const {
    return mem::kUserCodeBase +
           static_cast<Addr>(user_code.size()) * mem::kWordBytes;
  }
  /// Address of a named label; throws if unknown.
  Addr symbol(const std::string& name) const;
};

class Assembler {
 public:
  Assembler();

  // --- labels ---------------------------------------------------------
  /// Create a fresh label.  `name` is optional; named labels appear in the
  /// linked symbol table and must be unique.
  LabelRef label(std::string name = {});
  /// Bind `l` to the current cursor of the current section.
  void bind(LabelRef l);
  /// label() + bind() in one step.
  LabelRef here(std::string name = {});

  // --- sections -------------------------------------------------------
  void section(Section s) { cur_ = s; }
  Section current_section() const { return cur_; }
  /// Address the next instruction will occupy.
  Addr cursor() const;

  // --- raw emission ---------------------------------------------------
  Addr emit(Instr i, ImmOrLabel imm, const char* comment = nullptr);
  Addr emit(Instr i, const char* comment = nullptr);

  // --- convenience emitters (one per opcode family) --------------------
  Addr nop() { return emit({Op::Nop}); }
  Addr halt(Reg rs) { return emit({Op::Halt, 0, rs}); }
  Addr alu(Op op, Reg rd, Reg rs, Reg rt, const char* c = nullptr) {
    return emit({op, rd, rs, rt}, c);
  }
  Addr alui(Op op, Reg rd, Reg rs, ImmOrLabel imm, const char* c = nullptr) {
    return emit({op, rd, rs}, imm, c);
  }
  Addr movi(Reg rd, ImmOrLabel imm, const char* c = nullptr) {
    return emit({Op::Movi, rd}, imm, c);
  }
  Addr mov(Reg rd, Reg rs, const char* c = nullptr) {
    return emit({Op::Mov, rd, rs}, c);
  }
  Addr ld(Reg rd, Reg rs, std::int32_t off, const char* c = nullptr) {
    return emit({Op::Ld, rd, rs, 0, 0, off}, c);
  }
  Addr st(Reg rs_addr, std::int32_t off, Reg rt_val,
          const char* c = nullptr) {
    return emit({Op::St, 0, rs_addr, rt_val, 0, off}, c);
  }
  /// M[rs + off] = imm (imm may be a label, e.g. a thread address).
  Addr sti(Reg rs_addr, std::int32_t off, ImmOrLabel imm,
           const char* c = nullptr) {
    return emit({Op::Sti, 0, rs_addr, 0, 0, off}, imm, c);
  }
  /// rd = M[abs] (absolute address, typically an OS global).
  Addr ldg(Reg rd, ImmOrLabel abs, const char* c = nullptr) {
    return emit({Op::Ldg, rd}, abs, c);
  }
  /// M[abs] = rs.
  Addr stg(Reg rs, ImmOrLabel abs, const char* c = nullptr) {
    return emit({Op::Stg, 0, rs}, abs, c);
  }
  Addr ldm(Reg rd, std::int32_t off, const char* c = nullptr) {
    return emit({Op::Ldm, rd, 0, 0, 0, off}, c);
  }
  Addr br(ImmOrLabel target, const char* c = nullptr) {
    return emit({Op::Br}, target, c);
  }
  Addr brz(Reg rs, ImmOrLabel target, const char* c = nullptr) {
    return emit({Op::Brz, 0, rs}, target, c);
  }
  Addr brnz(Reg rs, ImmOrLabel target, const char* c = nullptr) {
    return emit({Op::Brnz, 0, rs}, target, c);
  }
  Addr jmp(Reg rs, const char* c = nullptr) {
    return emit({Op::Jmp, 0, rs}, c);
  }
  Addr call(ImmOrLabel target, const char* c = nullptr) {
    return emit({Op::Call}, target, c);
  }
  Addr callr(Reg rs, const char* c = nullptr) {
    return emit({Op::Callr, 0, rs}, c);
  }
  Addr ret() { return emit({Op::Ret}); }
  Addr sendh() { return emit({Op::SendH}); }
  Addr sendl() { return emit({Op::SendL}); }
  Addr sendw(Reg rs, const char* c = nullptr) {
    return emit({Op::SendW, 0, rs}, c);
  }
  Addr sendwi(ImmOrLabel imm, const char* c = nullptr) {
    return emit({Op::SendWi}, imm, c);
  }
  Addr sendd(Reg rs, const char* c = nullptr) {
    return emit({Op::SendD, 0, rs}, c);
  }
  Addr senddr(const char* c = nullptr) { return emit({Op::SendDr}, c); }
  /// SENDDR with a placement key: the immediate is handed to the node's
  /// frame-placement policy (mdp/placement.h).  The lowered FAlloc passes
  /// the codeblock id so owner-computes placement can key on it; policies
  /// that do not use a key (round-robin, nearest, cluster) ignore it.
  Addr senddr(ImmOrLabel key, const char* c = nullptr) {
    return emit({Op::SendDr}, key, c);
  }
  Addr sende() { return emit({Op::SendE}); }
  Addr suspend() { return emit({Op::Suspend}); }
  Addr eint() { return emit({Op::Eint}); }
  Addr dint() { return emit({Op::Dint}); }
  Addr itagld(Reg rd, Reg rs_addr, Reg rt_tag, const char* c = nullptr) {
    return emit({Op::Itagld, rd, rs_addr, rt_tag}, c);
  }
  Addr itagst(Reg rs_addr, Reg rt_val, const char* c = nullptr) {
    return emit({Op::Itagst, 0, rs_addr, rt_val}, c);
  }
  Addr idefer(Reg rs_addr, Reg rt_inlet, Reg rd_frame,
              const char* c = nullptr) {
    return emit({Op::Idefer, rd_frame, rs_addr, rt_inlet}, c);
  }
  Addr idhead(Reg rd, Reg rs_addr, const char* c = nullptr) {
    return emit({Op::Idhead, rd, rs_addr}, c);
  }
  Addr mark(MarkKind k, Reg aux = R0) {
    return emit({Op::Mark, 0, aux, 0, static_cast<std::int32_t>(k)});
  }

  // --- linking ----------------------------------------------------------
  /// Resolve fixups and return the image.  Throws on unbound labels.
  CodeImage link() const;

  std::size_t sys_size() const { return sys_[0].size(); }
  std::size_t user_size() const { return sys_[1].size(); }

 private:
  struct Pending {
    Instr instr;
    bool has_fixup = false;
    std::uint32_t label_id = 0;
  };
  struct LabelInfo {
    std::string name;
    bool bound = false;
    Addr addr = 0;
  };

  Addr base_of(Section s) const;
  std::vector<Pending>& code_of(Section s) { return sys_[static_cast<int>(s)]; }
  const std::vector<Pending>& code_of(Section s) const {
    return sys_[static_cast<int>(s)];
  }

  Section cur_ = Section::SysCode;
  std::vector<Pending> sys_[2];  // indexed by Section
  std::vector<LabelInfo> labels_;
};

}  // namespace jtam::mdp
