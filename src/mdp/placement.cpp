#include "mdp/placement.h"

#include <algorithm>
#include <vector>

#include "net/topology.h"
#include "support/error.h"

namespace jtam::mdp {

const char* placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::RoundRobin: return "rr";
    case PlacementKind::Nearest: return "near";
    case PlacementKind::Owner: return "owner";
    case PlacementKind::Cluster: return "cluster";
  }
  return "?";
}

namespace {

/// The seed counter, verbatim: start at this node's id (staggering the
/// nodes' allocation streams), advance by one per SENDDR, wrap.
class RoundRobinPolicy final : public PlacementPolicy {
 public:
  RoundRobinPolicy(int node_id, int num_nodes)
      : next_(node_id), num_nodes_(num_nodes) {}
  int place(std::uint32_t key) override {
    (void)key;
    const int n = next_;
    next_ = (next_ + 1) % num_nodes_;
    return n;
  }

 private:
  int next_;
  int num_nodes_;
};

/// Cycle the nodes sorted by (hop distance from this node, id) on the
/// mesh shape a J-Machine of num_nodes would be wired as — the same
/// Shape::for_nodes the mesh network model uses, so "near" means near on
/// the actual wires.  Self (distance 0) comes first: allocations stay
/// local until the neighbourhood ring fills.
class NearestPolicy final : public PlacementPolicy {
 public:
  NearestPolicy(int node_id, int num_nodes) {
    const net::Shape s = net::Shape::for_nodes(num_nodes);
    ring_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n) ring_.push_back(n);
    std::sort(ring_.begin(), ring_.end(), [&](int a, int b) {
      const int da = net::hop_distance(s, node_id, a);
      const int db = net::hop_distance(s, node_id, b);
      return da != db ? da < db : a < b;
    });
  }
  int place(std::uint32_t key) override {
    (void)key;
    const int n = ring_[cursor_];
    cursor_ = (cursor_ + 1) % ring_.size();
    return n;
  }

 private:
  std::vector<int> ring_;
  std::size_t cursor_ = 0;
};

/// Owner-computes: every sender hashes the placement key the same way, so
/// all activations of one codeblock share a home node regardless of who
/// allocates them.  Knuth multiplicative hash spreads the small dense
/// codeblock ids across the node range.
class OwnerPolicy final : public PlacementPolicy {
 public:
  explicit OwnerPolicy(int num_nodes) : num_nodes_(num_nodes) {}
  int place(std::uint32_t key) override {
    return static_cast<int>((key * 2654435761u) %
                            static_cast<std::uint32_t>(num_nodes_));
  }

 private:
  int num_nodes_;
};

/// Stick with the current target until `budget` placements land on it,
/// then advance round-robin — consecutive allocations (which tend to
/// communicate) cluster on one node.
class ClusterPolicy final : public PlacementPolicy {
 public:
  ClusterPolicy(int node_id, int num_nodes, std::uint32_t budget)
      : current_(node_id),
        num_nodes_(num_nodes),
        budget_(budget == 0 ? 1 : budget) {}
  int place(std::uint32_t key) override {
    (void)key;
    if (placed_ >= budget_) {
      current_ = (current_ + 1) % num_nodes_;
      placed_ = 0;
    }
    ++placed_;
    return current_;
  }

 private:
  int current_;
  int num_nodes_;
  std::uint32_t budget_;
  std::uint32_t placed_ = 0;
};

}  // namespace

std::unique_ptr<PlacementPolicy> PlacementPolicy::make(
    const PlacementConfig& cfg, int node_id, int num_nodes) {
  JTAM_CHECK(num_nodes >= 1, "placement needs at least one node");
  JTAM_CHECK(node_id >= 0 && node_id < num_nodes,
             "placement node id out of range");
  switch (cfg.kind) {
    case PlacementKind::RoundRobin:
      return std::make_unique<RoundRobinPolicy>(node_id, num_nodes);
    case PlacementKind::Nearest:
      return std::make_unique<NearestPolicy>(node_id, num_nodes);
    case PlacementKind::Owner:
      return std::make_unique<OwnerPolicy>(num_nodes);
    case PlacementKind::Cluster:
      return std::make_unique<ClusterPolicy>(node_id, num_nodes,
                                             cfg.cluster_budget);
  }
  throw Error("unknown placement kind");
}

}  // namespace jtam::mdp
