// Instruction set of the simulated Message-Driven Processor (MDP).
//
// This is a word-oriented RISC-like ISA modelled on the mechanisms of the
// MIT J-Machine's MDP that matter for the paper's experiment:
//
//  * two complete priority levels, each with its own register bank and a
//    4 KB hardware message queue buffered directly into memory;
//  * message dispatch on suspend: a handler ends with SUSPEND, which
//    consumes the current message and dispatches the next one;
//  * arrival of a high-priority message preempts low-priority computation
//    (unless the low level has disabled interrupts with DINT);
//  * SEND composes a message in an internal (per-level) buffer and SENDE
//    injects it, writing the words into the destination queue's memory —
//    modelling the paper's observation that hardware buffering consumes
//    cache space and memory bandwidth;
//  * tagged memory: I-structure presence tags are held alongside words
//    (free, as the MDP's tag bits were part of its 36-bit words), with
//    assist ops for deferred-read lists.
//
// Instructions uniformly occupy one 4-byte word for instruction-cache
// purposes and take one cycle plus memory access time (§3.3: "instructions
// were assumed to uniformly take one cycle, not counting memory access
// time").  MARK is a zero-cost instrumentation op that produces no fetch
// event and no cycle; the compiler and runtime use it to delimit threads,
// inlets, and quanta for the granularity statistics of Table 2.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace jtam::mdp {

// --- Value reinterpretation -------------------------------------------------
// One shared definition for the register-file bit reinterpretations the
// interpreter, the micro-op decoder, the assembler's label fixups, and the
// disassembler all perform.  Registers hold raw 32-bit words; signed
// arithmetic, IEEE-754 singles, and code addresses are views of those bits.

inline constexpr std::int32_t as_i(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}
inline constexpr std::uint32_t as_u(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}
inline constexpr float as_f(std::uint32_t v) { return std::bit_cast<float>(v); }
inline constexpr std::uint32_t as_u(float f) {
  return std::bit_cast<std::uint32_t>(f);
}

/// General-purpose registers.  Each priority level has its own bank of
/// eight, so switching level moves no state through memory.
enum Reg : std::uint8_t {
  R0 = 0,
  R1 = 1,
  R2 = 2,
  R3 = 3,
  R4 = 4,
  R5 = 5,  // scratch register used by control sequences (LCV pop/push)
  R6 = 6,  // frame pointer during thread/inlet execution (kRegFp)
  R7 = 7,  // link register for CALL/RET (kRegLr)
};

inline constexpr Reg kRegScratch = R5;
inline constexpr Reg kRegFp = R6;
inline constexpr Reg kRegLr = R7;
inline constexpr int kNumRegs = 8;

enum class Priority : std::uint8_t { Low = 0, High = 1 };

inline constexpr const char* priority_name(Priority p) {
  return p == Priority::Low ? "low" : "high";
}

enum class Op : std::uint8_t {
  Nop,
  Halt,  // stop the machine; halt value taken from reg rs

  // ALU, register-register: rd = rs OP rt
  Add, Sub, Mul, Divs, Mods, And, Or, Xor, Shl, Shr,
  Slt,  // rd = (int)rs <  (int)rt
  Sle,  // rd = (int)rs <= (int)rt
  Seq,  // rd = rs == rt
  Sne,  // rd = rs != rt

  // ALU, register-immediate: rd = rs OP imm
  Addi, Subi, Muli, Andi, Ori, Shli, Shri,
  Slti,  // rd = (int)rs < imm

  // Moves
  Movi,  // rd = imm (imm may be a label address after assembly)
  Mov,   // rd = rs

  // IEEE-754 single precision on register bit patterns.  Only the software
  // floating-point library in system code issues these; user threads call
  // the library, paying its instruction cost, as on the FPU-less MDP.
  Fadd, Fsub, Fmul, Fdiv,
  Flt,   // rd = (float)rs < (float)rt
  Feq,
  Itof,  // rd = (float)(int)rs
  Ftoi,  // rd = (int)(float)rs

  // Memory (word accesses; addresses must be word aligned)
  Ld,   // rd = M[rs + off]
  St,   // M[rs + off] = rt
  Sti,  // M[rs + off] = imm (store constant: thread addresses, entry counts)
  Ldg,  // rd = M[imm]  (absolute: OS globals such as the LCV top pointer)
  Stg,  // M[imm] = rs  (absolute store)
  Ldm,  // rd = M[MB + off]; fetch an operand of the current message straight
        // out of the hardware queue (a data read in the sys-data region)

  // Control
  Br,    // pc = imm
  Brz,   // if rs == 0: pc = imm
  Brnz,  // if rs != 0: pc = imm
  Jmp,   // pc = rs
  Call,  // LR = return addr; pc = imm
  Callr, // LR = return addr; pc = rs
  Ret,   // pc = LR

  // Messaging
  SendH,   // begin composing a message bound for the high-priority queue
  SendL,   // begin composing a message bound for the low-priority queue
  SendW,   // append register rs to the composing message
  SendWi,  // append immediate (typically a handler label) to it
  SendD,   // set the composing message's destination node from rs
           // (multi-node only; default is the local node)
  SendDr,  // set the destination from the node's frame-placement policy
           // (mdp/placement.h; round-robin by default).  imm carries an
           // optional placement key — the codeblock id for FAlloc — that
           // key-driven policies (owner-computes) hash; others ignore it.
           // (multi-node frame placement assist)
  SendE,   // inject: write the words into the destination queue's memory
           // (or hand them to the network when the destination is remote)

  // Scheduling
  Suspend,  // end handler: consume current message, dispatch next
  Eint,     // allow high-priority arrivals to preempt low-priority code
  Dint,     // forbid it (thread control sections, §2.1 atomicity)

  // Tagged-memory assists (I-structure support; see runtime/istructure.h).
  Itagld,  // rd = M[rs]; rt = presence tag of that word (one data read)
  Itagst,  // M[rs] = rt and set the presence tag (one data write)
  Idefer,  // append deferred-read record {inlet=rt, frame=rd} to the list
           // for address rs; allocates a 3-word node (three data writes)
  Idhead,  // rd = address of first deferred node for address rs (0 if none)
           // and detach the list (tag-side operation, no memory event)

  // Instrumentation: no fetch event, no cycle.  imm = MarkKind,
  // rs = auxiliary register (frame pointer for thread/inlet marks).
  Mark,
};

/// Number of opcodes.  Mark is the last enumerator by construction; the
/// decoded-dispatch label table and the decoder are sized against this so a
/// new Op fails to compile rather than silently falling through a dispatch
/// table (see src/mdp/dispatch.cpp).
inline constexpr int kNumOps = static_cast<int>(Op::Mark) + 1;

/// How the machine executes instructions.  `Decoded` (default) runs the
/// pre-decoded micro-op engine with token-threaded dispatch and superblock
/// chaining (src/mdp/dispatch.cpp); `Classic` is the seed's per-step
/// fetch/decode/switch loop, kept as the equivalence baseline.  Both produce
/// bit-identical architectural state, trace streams, and counters
/// (tests/interp_test.cpp), so drivers exclude this knob from result
/// memoization keys.
enum class DispatchKind : std::uint8_t { Decoded, Classic };

inline constexpr const char* dispatch_kind_name(DispatchKind d) {
  return d == DispatchKind::Decoded ? "decoded" : "classic";
}

/// Why a run stopped (Machine::run / MultiMachine::run).
enum class RunStatus {
  Halted,    // a HALT instruction executed
  Deadlock,  // both levels idle, both queues empty, no HALT seen
  Budget,    // instruction budget exhausted
};

const char* run_status_name(RunStatus s);

/// Marker kinds used for granularity accounting.  ThreadStart..FpCall are
/// emitted by MARK instructions the compiler/runtime plant in the code;
/// Dispatch and Suspend are synthetic — the machine itself emits them at
/// message dispatch and handler suspension so observers can sample queue
/// occupancy and close scheduling intervals.  All marks are free: no fetch
/// event, no cycle, no effect on any measured statistic.
enum class MarkKind : std::int32_t {
  ThreadStart = 1,  // aux = frame pointer
  InletStart = 2,   // aux = frame pointer
  SysStart = 3,     // scheduler / idle / system code at low priority
  Activate = 4,     // AM scheduler activated a frame (aux = frame pointer)
  FpCall = 5,       // entry into the floating-point library
  Dispatch = 6,     // machine dispatched a message; aux = queue sample
  Suspend = 7,      // handler suspended (message consumed); aux = queue sample
};

/// Aux encoding for Dispatch/Suspend marks: queue occupancy in bytes in the
/// upper half (the hardware queue is at most 4 KB, so it fits), message
/// count in the lower half (saturating).
inline constexpr std::uint32_t pack_queue_sample(std::uint32_t used_bytes,
                                                 std::uint32_t records) {
  return (used_bytes << 16) | (records > 0xFFFFu ? 0xFFFFu : records);
}
inline constexpr std::uint32_t queue_sample_bytes(std::uint32_t aux) {
  return aux >> 16;
}
inline constexpr std::uint32_t queue_sample_depth(std::uint32_t aux) {
  return aux & 0xFFFFu;
}

/// One decoded instruction.  `comment` points at a static string written by
/// the code generators and is used only by the disassembler.
struct Instr {
  Op op = Op::Nop;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::int32_t imm = 0;  // immediate value / branch target / absolute addr
  std::int32_t off = 0;  // byte offset for Ld/St/Sti/Ldm
  const char* comment = nullptr;
};

/// Mnemonic for an opcode ("add", "sendw", ...).
const char* op_name(Op op);

/// True for ops that read M[] (used by tests over trace invariants).
bool op_reads_memory(Op op);

/// True for ops that write M[].
bool op_writes_memory(Op op);

}  // namespace jtam::mdp
