// Multi-node J-Machine: N MDP nodes joined by a constant-latency FIFO
// network.  The paper's systems "can run on multiple processors" but all
// of its measurements are uniprocessor; this module carries the stated
// future work ("our work would extend to multiple processors") — runs are
// validated by the same workload oracles, with per-node instruction counts
// and a parallel-rounds clock for speedup estimates.
//
// Addressing: user-data addresses carry the owning node in bits 24+, so a
// frame or heap pointer is globally meaningful.  SENDs name their
// destination node (SENDD from an address's node field, SENDDR for
// round-robin frame placement); messages to remote nodes traverse the
// network and are buffered into the destination's hardware queue exactly
// like local sends.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mdp/machine.h"

namespace jtam::mdp {

class MultiMachine : public NetworkPort {
 public:
  struct Config {
    int num_nodes = 4;
    std::uint32_t latency = 16;  // network rounds from SENDE to delivery
    std::uint32_t queue_bytes = mem::kQueueBytes;
    std::uint64_t max_rounds = 600'000'000ULL;
  };

  MultiMachine(const CodeImage& image, Config cfg);

  Machine& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  int num_nodes() const { return cfg_.num_nodes; }

  /// Round-robin interleaved execution: every live node runs one
  /// instruction per round; in-flight messages deliver after `latency`
  /// rounds.  Stops at the first HALT, at global deadlock (all nodes idle,
  /// nothing in flight), or when max_rounds expires.
  RunStatus run();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint32_t halt_value() const { return halt_value_; }
  int halted_node() const { return halted_node_; }
  std::uint64_t total_instructions() const;

  // NetworkPort
  void send(int dest_node, Priority p,
            std::span<const std::uint32_t> words) override;

 private:
  struct InFlight {
    std::uint64_t deliver_round;
    int dest;
    Priority p;
    std::vector<std::uint32_t> words;
  };

  Config cfg_;
  std::vector<std::unique_ptr<Machine>> nodes_;
  std::deque<InFlight> wire_;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t halt_value_ = 0;
  int halted_node_ = -1;
};

}  // namespace jtam::mdp
