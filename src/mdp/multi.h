// Multi-node J-Machine: N MDP nodes joined by a pluggable network model
// (src/net).  The paper's systems "can run on multiple processors" but all
// of its measurements are uniprocessor; this module carries the stated
// future work ("our work would extend to multiple processors") — runs are
// validated by the same workload oracles, with per-node instruction counts
// and a parallel-rounds clock for speedup estimates.
//
// The network behind NetworkPort is one of
//   net::IdealNetwork  constant-latency FIFO wire (default; bit-identical
//                      to the seed MultiMachine, optionally bounded to
//                      Config::max_inflight_messages in flight), or
//   net::MeshNetwork   a cycle-level 3D-mesh wormhole simulator with
//                      finite link buffers and two virtual networks,
// advanced one network cycle per round.  Either can refuse an injection
// (can_accept == false), which stalls the sending node's SENDE — counted
// per node as injection-stall cycles.
//
// Addressing: user-data addresses carry the owning node in bits 24+, so a
// frame or heap pointer is globally meaningful.  SENDs name their
// destination node (SENDD from an address's node field, SENDDR for
// round-robin frame placement); messages to remote nodes traverse the
// network and are buffered into the destination's hardware queue exactly
// like local sends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdp/machine.h"
#include "mdp/placement.h"
#include "net/aggregate.h"
#include "net/network.h"

namespace jtam::mdp {

class MultiMachine;

/// Per-round observation hook (obs::FlowTracer's clock and time-series
/// sampler).  Called at the top of every MultiMachine round, before the
/// network steps and before any node executes, so samples are consistent
/// start-of-round snapshots.  Zero-cost when absent.
class RoundHook {
 public:
  virtual ~RoundHook() = default;
  virtual void on_round(const MultiMachine& mm, std::uint64_t round) = 0;
};

class MultiMachine : public NetworkPort, private net::DeliverySink {
 public:
  struct Config {
    int num_nodes = 4;
    net::NetKind net = net::NetKind::Ideal;
    std::uint32_t latency = 16;  // ideal wire: rounds from SENDE to delivery
    /// Ideal wire: how many messages may be in flight at once before
    /// injection backpressures (0 = unbounded, the seed model).  The mesh
    /// is always finite — its bound is the link buffering itself.
    std::uint32_t max_inflight_messages = 0;
    std::uint32_t link_buffer_flits = 4;  // mesh: per-VN flit FIFO per link
    /// Software message aggregation in front of the network model
    /// (net::AggregateNetwork).  Off (the default) constructs the bare
    /// model and is bit-identical to the pre-aggregation simulator.
    net::AggMode agg = net::AggMode::Off;
    std::uint32_t agg_bytes = 256;    // aggregation: seal threshold
    std::uint32_t agg_timeout = 64;   // aggregation: max buffer wait, cycles
    /// SENDDR frame-placement policy for every node (mdp::PlacementPolicy).
    /// The default round-robin is bit-identical to the seed counter.
    PlacementConfig placement;
    std::uint32_t queue_bytes = mem::kQueueBytes;
    std::uint64_t max_rounds = 600'000'000ULL;
    /// Interpreter engine for every node (perf knob; bit-identical results
    /// either way — see mdp::DispatchKind).
    DispatchKind dispatch = DispatchKind::Decoded;
  };

  MultiMachine(const CodeImage& image, Config cfg);

  Machine& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  const Machine& node(int i) const {
    return *nodes_[static_cast<std::size_t>(i)];
  }
  int num_nodes() const { return cfg_.num_nodes; }

  /// Round-robin interleaved execution: every live node runs one
  /// instruction per round and the network advances one cycle.  Stops at
  /// the first HALT, at global deadlock (all nodes idle, nothing in
  /// flight) — reported as RunStatus::Deadlock, distinct from max_rounds
  /// expiry (RunStatus::Budget), with deadlock_report() describing the
  /// per-node state — or when max_rounds expires.
  RunStatus run();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint32_t halt_value() const { return halt_value_; }
  int halted_node() const { return halted_node_; }
  std::uint64_t total_instructions() const;
  std::uint64_t total_injection_stalls() const;

  const net::NetworkModel& network() const { return *net_; }
  /// Mutable network access, for attaching a net::FlowObserver.
  net::NetworkModel& network() { return *net_; }
  /// Attach a per-round hook (null detaches).  Observation only: it runs
  /// before the round's network cycle and node steps and must not mutate
  /// the ensemble.
  void set_round_hook(RoundHook* hook) { round_hook_ = hook; }
  /// Per-node idle/queue state captured when run() stopped on global
  /// deadlock; empty otherwise.
  const std::string& deadlock_report() const { return deadlock_report_; }

  // NetworkPort
  bool can_accept(int src_node, int dest_node, Priority p) override;
  void send(int src_node, int dest_node, Priority p,
            std::span<const std::uint32_t> words,
            std::uint64_t flow_id) override;

 private:
  // net::DeliverySink — arrivals go into the destination's hardware queue.
  void deliver(int dest_node, Priority p,
               std::span<const std::uint32_t> words) override;

  std::string describe_stuck_state() const;

  Config cfg_;
  std::vector<std::unique_ptr<Machine>> nodes_;
  std::unique_ptr<net::NetworkModel> net_;
  RoundHook* round_hook_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t halt_value_ = 0;
  int halted_node_ = -1;
  std::string deadlock_report_;
};

}  // namespace jtam::mdp
