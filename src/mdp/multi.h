// Multi-node J-Machine: N MDP nodes joined by a pluggable network model
// (src/net).  The paper's systems "can run on multiple processors" but all
// of its measurements are uniprocessor; this module carries the stated
// future work ("our work would extend to multiple processors") — runs are
// validated by the same workload oracles, with per-node instruction counts
// and a parallel-rounds clock for speedup estimates.
//
// The network behind NetworkPort is one of
//   net::IdealNetwork  constant-latency FIFO wire (default; bit-identical
//                      to the seed MultiMachine, optionally bounded to
//                      Config::max_inflight_messages in flight), or
//   net::MeshNetwork   a cycle-level 3D-mesh wormhole simulator with
//                      finite link buffers and two virtual networks,
// advanced one network cycle per round.  Either can refuse an injection
// (can_accept == false), which stalls the sending node's SENDE — counted
// per node as injection-stall cycles.
//
// Addressing: user-data addresses carry the owning node in their high bits
// (mem::NodeCodec; the seed layout puts it in bits 24+ and is the
// bit-identical default for <= 256 nodes, narrower node-field shifts admit
// up to 8184 nodes), so a frame or heap pointer is globally meaningful.
// SENDs name their destination node (SENDD from an address's node field,
// SENDDR for round-robin frame placement); messages to remote nodes
// traverse the network and are buffered into the destination's hardware
// queue exactly like local sends.
//
// Execution engines: the classic loop steps every node serially each round
// (Config::threads == 0).  Config::threads >= 1 selects the windowed
// parallel engine (mdp/parmulti.cpp): nodes are sharded across workers and
// advance through conservative lookahead windows bounded by the network's
// minimum end-to-end latency, with cross-shard messages exchanged only at
// window barriers — results bit-identical to the serial loop
// (tests/parmulti_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdp/machine.h"
#include "mdp/placement.h"
#include "net/aggregate.h"
#include "net/network.h"

namespace jtam::mdp {

class MultiMachine;

/// Per-round observation hook (obs::FlowTracer's clock and time-series
/// sampler).  Called at the top of a MultiMachine round, before the
/// network steps and before any node executes, so samples are consistent
/// start-of-round snapshots.  Zero-cost when absent.
///
/// Cadence contract (tests/parmulti_test.cpp): on_round fires for rounds
/// that are multiples of round_interval(), in strictly increasing round
/// order, always from the thread that called MultiMachine::run() — never
/// from a shard worker.  Under the windowed parallel engine those rounds
/// are window boundaries (the engine shrinks lookahead windows so every
/// hook round starts a window), and the ensemble state the hook observes
/// is exactly the serial start-of-round state, so an interval-1 hook sees
/// the identical snapshot sequence under both engines.
class RoundHook {
 public:
  virtual ~RoundHook() = default;
  virtual void on_round(const MultiMachine& mm, std::uint64_t round) = 0;
  /// Rounds between on_round calls (default: every round).  A coarser
  /// interval lets the parallel engine keep full-size lookahead windows
  /// instead of opening a barrier at every round.  Must be >= 1 and
  /// constant for the duration of a run.
  virtual std::uint64_t round_interval() const { return 1; }
};

class MultiMachine : public NetworkPort, private net::DeliverySink {
 public:
  struct Config {
    int num_nodes = 4;
    net::NetKind net = net::NetKind::Ideal;
    std::uint32_t latency = 16;  // ideal wire: rounds from SENDE to delivery
    /// Ideal wire: how many messages may be in flight at once before
    /// injection backpressures (0 = unbounded, the seed model).  The mesh
    /// is always finite — its bound is the link buffering itself.
    std::uint32_t max_inflight_messages = 0;
    std::uint32_t link_buffer_flits = 4;  // mesh: per-VN flit FIFO per link
    /// Software message aggregation in front of the network model
    /// (net::AggregateNetwork).  Off (the default) constructs the bare
    /// model and is bit-identical to the pre-aggregation simulator.
    net::AggMode agg = net::AggMode::Off;
    std::uint32_t agg_bytes = 256;    // aggregation: seal threshold
    std::uint32_t agg_timeout = 64;   // aggregation: max buffer wait, cycles
    /// SENDDR frame-placement policy for every node (mdp::PlacementPolicy).
    /// The default round-robin is bit-identical to the seed counter.
    PlacementConfig placement;
    std::uint32_t queue_bytes = mem::kQueueBytes;
    std::uint64_t max_rounds = 600'000'000ULL;
    /// Interpreter engine for every node (perf knob; bit-identical results
    /// either way — see mdp::DispatchKind).
    DispatchKind dispatch = DispatchKind::Decoded;
    /// Node-field shift of global user addresses (mem::NodeCodec).  0
    /// auto-selects: the seed layout (24) for <= 256 nodes, the widest
    /// narrower shift that fits otherwise.  Explicit values must admit
    /// num_nodes (mem::max_nodes_for_shift).
    std::uint32_t node_shift = 0;
    /// Shard workers for the conservatively-synchronized parallel engine
    /// (mdp/parmulti.cpp).  0 (default) runs the classic serial loop —
    /// the bit-identical baseline.  >= 1 runs lookahead windows with that
    /// many workers; results are bit-identical to serial.  Falls back to
    /// the serial loop (parallel_stats().engaged == false) when the
    /// network has no lookahead or a flow probe / trace sink is attached
    /// to any node.
    unsigned threads = 0;
  };

  /// What the windowed engine did during run() (all zero after a serial
  /// run).  barriers counts worker rendezvous points (two per window);
  /// window_limit is the network lookahead bound the windows were cut to.
  struct ParallelStats {
    bool engaged = false;
    unsigned threads = 0;
    std::uint64_t windows = 0;
    std::uint64_t barriers = 0;
    std::uint64_t window_limit = 0;
  };

  MultiMachine(const CodeImage& image, Config cfg);

  Machine& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  const Machine& node(int i) const {
    return *nodes_[static_cast<std::size_t>(i)];
  }
  int num_nodes() const { return cfg_.num_nodes; }

  /// Round-robin interleaved execution: every live node runs one
  /// instruction per round and the network advances one cycle.  Stops at
  /// the first HALT, at global deadlock (all nodes idle, nothing in
  /// flight) — reported as RunStatus::Deadlock, distinct from max_rounds
  /// expiry (RunStatus::Budget), with deadlock_report() describing the
  /// per-node state — or when max_rounds expires.
  RunStatus run();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint32_t halt_value() const { return halt_value_; }
  int halted_node() const { return halted_node_; }
  std::uint64_t total_instructions() const;
  std::uint64_t total_injection_stalls() const;

  const net::NetworkModel& network() const { return *net_; }
  /// Mutable network access, for attaching a net::FlowObserver.
  net::NetworkModel& network() { return *net_; }
  /// Attach a per-round hook (null detaches).  Observation only: it runs
  /// before the round's network cycle and node steps and must not mutate
  /// the ensemble.
  void set_round_hook(RoundHook* hook) { round_hook_ = hook; }
  /// Per-node idle/queue state captured when run() stopped on global
  /// deadlock; empty otherwise.
  const std::string& deadlock_report() const { return deadlock_report_; }
  /// Windowed-engine execution report (all zero after a serial run).
  const ParallelStats& parallel_stats() const { return par_stats_; }
  /// The node-field shift the ensemble actually runs under (resolved from
  /// Config::node_shift, 0 = auto).
  std::uint32_t node_shift() const { return node_shift_; }

  // NetworkPort
  bool can_accept(int src_node, int dest_node, Priority p) override;
  void send(int src_node, int dest_node, Priority p,
            std::span<const std::uint32_t> words,
            std::uint64_t flow_id) override;

 private:
  // net::DeliverySink — arrivals go into the destination's hardware queue.
  void deliver(int dest_node, Priority p,
               std::span<const std::uint32_t> words) override;

  std::string describe_stuck_state() const;

  /// The classic serial round loop (the equivalence baseline).
  RunStatus run_serial();
  /// The conservatively-synchronized windowed engine (mdp/parmulti.cpp).
  /// Bit-identical to run_serial in every MultiRunResult-visible respect;
  /// requires net_->lookahead() >= 1 and no per-node trace attachments.
  RunStatus run_parallel();
  /// True when run() may use the windowed engine under this configuration.
  bool parallel_eligible() const;

  /// One SENDE captured during a parallel node phase, committed to the
  /// network at the window barrier in serial (round, src) order.
  struct StagedSend {
    std::uint64_t round = 0;
    int src = 0;
    int dest = 0;
    Priority p = Priority::Low;
    std::uint64_t flow_id = 0;
    std::vector<std::uint32_t> words;
  };

  Config cfg_;
  std::uint32_t node_shift_ = mem::kNodeShiftDefault;
  std::vector<std::unique_ptr<Machine>> nodes_;
  std::unique_ptr<net::NetworkModel> net_;
  RoundHook* round_hook_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t halt_value_ = 0;
  int halted_node_ = -1;
  std::string deadlock_report_;
  ParallelStats par_stats_;
  // Windowed-engine staging state (owned by run_parallel).  While a node
  // phase runs, send() appends to the sender's per-node staging lane
  // (each node is owned by exactly one worker, so lanes are race-free)
  // instead of injecting; staging_round_ carries the round the owning
  // worker is executing for that node.
  bool staging_ = false;
  std::vector<std::vector<StagedSend>> staged_;
  std::vector<std::uint64_t> staging_round_;
};

}  // namespace jtam::mdp
