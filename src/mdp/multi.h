// Multi-node J-Machine: N MDP nodes joined by a pluggable network model
// (src/net).  The paper's systems "can run on multiple processors" but all
// of its measurements are uniprocessor; this module carries the stated
// future work ("our work would extend to multiple processors") — runs are
// validated by the same workload oracles, with per-node instruction counts
// and a parallel-rounds clock for speedup estimates.
//
// The network behind NetworkPort is one of
//   net::IdealNetwork  constant-latency FIFO wire (default; bit-identical
//                      to the seed MultiMachine, optionally bounded to
//                      Config::max_inflight_messages in flight), or
//   net::MeshNetwork   a cycle-level 3D-mesh wormhole simulator with
//                      finite link buffers and two virtual networks,
// advanced one network cycle per round.  Either can refuse an injection
// (can_accept == false), which stalls the sending node's SENDE — counted
// per node as injection-stall cycles.
//
// Addressing: user-data addresses carry the owning node in their high bits
// (mem::NodeCodec; the seed layout puts it in bits 24+ and is the
// bit-identical default for <= 256 nodes, narrower node-field shifts admit
// up to 8184 nodes), so a frame or heap pointer is globally meaningful.
// SENDs name their destination node (SENDD from an address's node field,
// SENDDR for round-robin frame placement); messages to remote nodes
// traverse the network and are buffered into the destination's hardware
// queue exactly like local sends.
//
// Execution engines: the classic loop steps every node serially each round
// (Config::threads == 0).  Config::threads >= 1 selects the windowed
// parallel engine (mdp/parmulti.cpp): nodes are sharded across workers and
// advance through conservative lookahead windows bounded by the network's
// minimum end-to-end latency, with cross-shard messages exchanged only at
// window barriers — results bit-identical to the serial loop
// (tests/parmulti_test.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdp/machine.h"
#include "mdp/placement.h"
#include "net/aggregate.h"
#include "net/network.h"

namespace jtam::mdp {

class MultiMachine;

/// Per-round observation hook (obs::FlowTracer's clock and time-series
/// sampler).  Called at the top of a MultiMachine round, before the
/// network steps and before any node executes, so samples are consistent
/// start-of-round snapshots.  Zero-cost when absent.
///
/// Cadence contract (tests/parmulti_test.cpp): on_round fires for rounds
/// that are multiples of round_interval(), in strictly increasing round
/// order, always from the thread that called MultiMachine::run() — never
/// from a shard worker.  Under the windowed parallel engine those rounds
/// are window boundaries (the engine shrinks lookahead windows so every
/// hook round starts a window), and the ensemble state the hook observes
/// is exactly the serial start-of-round state, so an interval-1 hook sees
/// the identical snapshot sequence under both engines.
class RoundHook {
 public:
  virtual ~RoundHook() = default;
  virtual void on_round(const MultiMachine& mm, std::uint64_t round) = 0;
  /// Rounds between on_round calls (default: every round).  A coarser
  /// interval lets the parallel engine keep full-size lookahead windows
  /// instead of opening a barrier at every round.  Must be >= 1 and
  /// constant for the duration of a run.
  virtual std::uint64_t round_interval() const { return 1; }
};

/// Wall-clock self-profiling seam for the execution engines (implemented
/// by obs::HostProfiler).  The engines time their own phases with chained
/// steady-clock timestamps — each phase's end stamp is the next phase's
/// start — so within one run the reported durations partition the
/// engine's wall time by construction.  Every callback fires on the
/// thread that called MultiMachine::run(); per-shard busy times are
/// measured by the owning worker and handed over at the window barrier.
/// Host-time observation only: nothing here may read or depend on any
/// simulated quantity beyond the round/window numbers passed in, and runs
/// are bit-identical with a profiler attached (tests/hostobs_test.cpp).
class EngineProfiler {
 public:
  enum class Phase : std::uint8_t {
    Setup = 0,     // parallel: shard grids + worker pool construction
    Hook,          // RoundHook::on_round
    Plan,          // parallel: plan_window / W==1 collector step
    NodePhase,     // parallel: the coordinator's own shard sweep
    BarrierWait,   // parallel: spinning for the last worker
    StagingMerge,  // parallel: error/halt scan + staged-lane merge + sort
    Commit,        // parallel: rollback + commit_window + staged injection
    NetStep,       // serial: the per-round network step
    NodeStep,      // serial: the per-round node sweep
    Publish,       // telemetry flush/publish at boundaries (either engine)
  };
  static constexpr int kNumPhases = 10;

  virtual ~EngineProfiler() = default;
  virtual void on_run_begin(bool parallel, unsigned shards,
                            std::uint64_t window_limit) = 0;
  /// One phase segment completed, `ns` steady-clock nanoseconds long.
  virtual void on_phase(Phase p, std::uint64_t ns) = 0;
  /// Parallel engine, once per window after its serial resolution: the
  /// window extent and each shard's busy time inside the node phase
  /// (`shard_busy_ns[0..shards)`, coordinator's own shard first).
  virtual void on_window(std::uint64_t round_from, std::uint64_t rounds,
                         const std::uint64_t* shard_busy_ns,
                         unsigned shards) = 0;
  virtual void on_run_end(std::uint64_t rounds, std::uint64_t windows) = 0;
};

/// Chained phase stopwatch over an EngineProfiler: lap(p) charges the
/// wall time since the previous lap (or construction) to phase `p`, so a
/// sequence of laps partitions the elapsed time exactly — the property
/// behind the HostReport's "phases sum to the engine wall clock"
/// guarantee.  Every call is a no-op when no profiler is attached.
class PhaseClock {
 public:
  explicit PhaseClock(EngineProfiler* host) : host_(host) {
    if (host_ != nullptr) last_ = std::chrono::steady_clock::now();
  }
  void lap(EngineProfiler::Phase p) {
    if (host_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    host_->on_phase(p, static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               now - last_)
                               .count()));
    last_ = now;
  }

 private:
  EngineProfiler* host_;
  std::chrono::steady_clock::time_point last_{};
};

/// Engine-driven per-node telemetry seam (implemented by
/// obs::SignalHub).  When attached, MultiMachine::run() — *after* the
/// serial/parallel eligibility decision, so telemetry never forces the
/// serial loop — attaches node_buffer(n) to each node as its batched
/// trace buffer, enables queue-occupancy marks, and calls publish() on
/// the run() caller's thread at round boundaries at least
/// publish_interval() apart (window barriers under the parallel engine)
/// and once more when the run stops.  Between publishes each node's
/// buffer is touched only by the worker that owns the node, so the
/// implementation may keep per-node accumulation state without locks.
/// Observation only: buffers record the trace stream without changing
/// any measured number, and runs with telemetry attached are
/// bit-identical to plain runs (tests/hostobs_test.cpp).
class NodeTelemetry {
 public:
  virtual ~NodeTelemetry() = default;
  /// Trace buffer to attach to node `n` for the duration of the run
  /// (owned by the telemetry; nullptr = leave the node unattached).
  virtual TraceBuffer* node_buffer(int n) = 0;
  /// Minimum rounds between publish points (>= 1, constant per run).
  virtual std::uint64_t publish_interval() const = 0;
  /// Publish point on the run() caller's thread: every round below
  /// `round` has been executed and every node buffer is quiescent.  The
  /// implementation flushes the buffers it owns.  `final` marks the
  /// last publish of the run (after halt/deadlock/budget resolution).
  virtual void publish(const MultiMachine& mm, std::uint64_t round,
                       bool final) = 0;
};

class MultiMachine : public NetworkPort, private net::DeliverySink {
 public:
  struct Config {
    int num_nodes = 4;
    net::NetKind net = net::NetKind::Ideal;
    std::uint32_t latency = 16;  // ideal wire: rounds from SENDE to delivery
    /// Ideal wire: how many messages may be in flight at once before
    /// injection backpressures (0 = unbounded, the seed model).  The mesh
    /// is always finite — its bound is the link buffering itself.
    std::uint32_t max_inflight_messages = 0;
    std::uint32_t link_buffer_flits = 4;  // mesh: per-VN flit FIFO per link
    /// Software message aggregation in front of the network model
    /// (net::AggregateNetwork).  Off (the default) constructs the bare
    /// model and is bit-identical to the pre-aggregation simulator.
    net::AggMode agg = net::AggMode::Off;
    std::uint32_t agg_bytes = 256;    // aggregation: seal threshold
    std::uint32_t agg_timeout = 64;   // aggregation: max buffer wait, cycles
    /// SENDDR frame-placement policy for every node (mdp::PlacementPolicy).
    /// The default round-robin is bit-identical to the seed counter.
    PlacementConfig placement;
    std::uint32_t queue_bytes = mem::kQueueBytes;
    std::uint64_t max_rounds = 600'000'000ULL;
    /// Interpreter engine for every node (perf knob; bit-identical results
    /// either way — see mdp::DispatchKind).
    DispatchKind dispatch = DispatchKind::Decoded;
    /// Node-field shift of global user addresses (mem::NodeCodec).  0
    /// auto-selects: the seed layout (24) for <= 256 nodes, the widest
    /// narrower shift that fits otherwise.  Explicit values must admit
    /// num_nodes (mem::max_nodes_for_shift).
    std::uint32_t node_shift = 0;
    /// Shard workers for the conservatively-synchronized parallel engine
    /// (mdp/parmulti.cpp).  0 (default) runs the classic serial loop —
    /// the bit-identical baseline.  >= 1 runs lookahead windows with that
    /// many workers; results are bit-identical to serial.  Falls back to
    /// the serial loop (parallel_stats().engaged == false) when the
    /// network has no lookahead or a flow probe / trace sink is attached
    /// to any node.
    unsigned threads = 0;
  };

  /// What the windowed engine did during run() (all zero after a serial
  /// run).  barriers counts worker rendezvous points (two per window);
  /// window_limit is the network lookahead bound the windows were cut to.
  struct ParallelStats {
    bool engaged = false;
    unsigned threads = 0;
    std::uint64_t windows = 0;
    std::uint64_t barriers = 0;
    std::uint64_t window_limit = 0;

    /// Exact equality of every field — so parallel-engine stats
    /// participate in run-equivalence checks the same way NetStats and
    /// AggStats do.
    bool operator==(const ParallelStats& o) const;
    /// One-line rendering ("serial" / "parallel threads=.. windows=..").
    std::string summary() const;
  };

  MultiMachine(const CodeImage& image, Config cfg);

  Machine& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  const Machine& node(int i) const {
    return *nodes_[static_cast<std::size_t>(i)];
  }
  int num_nodes() const { return cfg_.num_nodes; }

  /// Round-robin interleaved execution: every live node runs one
  /// instruction per round and the network advances one cycle.  Stops at
  /// the first HALT, at global deadlock (all nodes idle, nothing in
  /// flight) — reported as RunStatus::Deadlock, distinct from max_rounds
  /// expiry (RunStatus::Budget), with deadlock_report() describing the
  /// per-node state — or when max_rounds expires.
  RunStatus run();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint32_t halt_value() const { return halt_value_; }
  int halted_node() const { return halted_node_; }
  std::uint64_t total_instructions() const;
  std::uint64_t total_injection_stalls() const;

  const net::NetworkModel& network() const { return *net_; }
  /// Mutable network access, for attaching a net::FlowObserver.
  net::NetworkModel& network() { return *net_; }
  /// Attach a per-round hook (null detaches).  Observation only: it runs
  /// before the round's network cycle and node steps and must not mutate
  /// the ensemble.
  void set_round_hook(RoundHook* hook) { round_hook_ = hook; }
  /// Attach a wall-clock engine profiler (null detaches).  Host-time
  /// observation only — simulated results are bit-identical either way.
  void set_host_profiler(EngineProfiler* p) { host_ = p; }
  /// Attach a per-node telemetry hub (null detaches).  Buffers attach at
  /// run() after the engine choice, so telemetry runs under whichever
  /// engine the configuration selects.
  void set_telemetry(NodeTelemetry* t) { telemetry_ = t; }
  /// Per-node idle/queue state captured when run() stopped on global
  /// deadlock; empty otherwise.
  const std::string& deadlock_report() const { return deadlock_report_; }
  /// Windowed-engine execution report (all zero after a serial run).
  const ParallelStats& parallel_stats() const { return par_stats_; }
  /// The node-field shift the ensemble actually runs under (resolved from
  /// Config::node_shift, 0 = auto).
  std::uint32_t node_shift() const { return node_shift_; }

  // NetworkPort
  bool can_accept(int src_node, int dest_node, Priority p) override;
  void send(int src_node, int dest_node, Priority p,
            std::span<const std::uint32_t> words,
            std::uint64_t flow_id) override;

 private:
  // net::DeliverySink — arrivals go into the destination's hardware queue.
  void deliver(int dest_node, Priority p,
               std::span<const std::uint32_t> words) override;

  std::string describe_stuck_state() const;

  /// The classic serial round loop (the equivalence baseline).
  RunStatus run_serial();
  /// The conservatively-synchronized windowed engine (mdp/parmulti.cpp).
  /// Bit-identical to run_serial in every MultiRunResult-visible respect;
  /// requires net_->lookahead() >= 1 and no per-node trace attachments.
  RunStatus run_parallel();
  /// True when run() may use the windowed engine under this configuration.
  bool parallel_eligible() const;

  /// One SENDE captured during a parallel node phase, committed to the
  /// network at the window barrier in serial (round, src) order.
  struct StagedSend {
    std::uint64_t round = 0;
    int src = 0;
    int dest = 0;
    Priority p = Priority::Low;
    std::uint64_t flow_id = 0;
    std::vector<std::uint32_t> words;
  };

  Config cfg_;
  std::uint32_t node_shift_ = mem::kNodeShiftDefault;
  std::vector<std::unique_ptr<Machine>> nodes_;
  std::unique_ptr<net::NetworkModel> net_;
  RoundHook* round_hook_ = nullptr;
  EngineProfiler* host_ = nullptr;
  NodeTelemetry* telemetry_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t halt_value_ = 0;
  int halted_node_ = -1;
  std::string deadlock_report_;
  ParallelStats par_stats_;
  // Windowed-engine staging state (owned by run_parallel).  While a node
  // phase runs, send() appends to the sender's per-node staging lane
  // (each node is owned by exactly one worker, so lanes are race-free)
  // instead of injecting; staging_round_ carries the round the owning
  // worker is executing for that node.
  bool staging_ = false;
  std::vector<std::vector<StagedSend>> staged_;
  std::vector<std::uint64_t> staging_round_;
};

}  // namespace jtam::mdp
