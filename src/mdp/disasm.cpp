#include "mdp/disasm.h"

#include <iomanip>
#include <map>
#include <sstream>

namespace jtam::mdp {

namespace {

std::string reg_name(std::uint8_t r) { return "r" + std::to_string(r); }

}  // namespace

std::string disasm(const Instr& in) {
  std::ostringstream os;
  os << op_name(in.op);
  switch (in.op) {
    case Op::Nop: case Op::Ret: case Op::SendH: case Op::SendL:
    case Op::SendE: case Op::Suspend: case Op::Eint: case Op::Dint:
      break;
    case Op::Halt:
      os << " " << reg_name(in.rs);
      break;
    case Op::Add: case Op::Sub: case Op::Mul: case Op::Divs: case Op::Mods:
    case Op::And: case Op::Or: case Op::Xor: case Op::Shl: case Op::Shr:
    case Op::Slt: case Op::Sle: case Op::Seq: case Op::Sne:
    case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
    case Op::Flt: case Op::Feq:
      os << " " << reg_name(in.rd) << ", " << reg_name(in.rs) << ", "
         << reg_name(in.rt);
      break;
    case Op::Itof: case Op::Ftoi: case Op::Mov:
      os << " " << reg_name(in.rd) << ", " << reg_name(in.rs);
      break;
    case Op::Addi: case Op::Subi: case Op::Muli: case Op::Andi: case Op::Ori:
    case Op::Shli: case Op::Shri: case Op::Slti:
      os << " " << reg_name(in.rd) << ", " << reg_name(in.rs) << ", "
         << in.imm;
      break;
    case Op::Movi:
      os << " " << reg_name(in.rd) << ", " << in.imm;
      break;
    case Op::Ld:
      os << " " << reg_name(in.rd) << ", [" << reg_name(in.rs) << "+"
         << in.off << "]";
      break;
    case Op::St:
      os << " [" << reg_name(in.rs) << "+" << in.off << "], "
         << reg_name(in.rt);
      break;
    case Op::Sti:
      os << " [" << reg_name(in.rs) << "+" << in.off << "], 0x" << std::hex
         << in.imm;
      break;
    case Op::Ldg:
      os << " " << reg_name(in.rd) << ", [0x" << std::hex << in.imm << "]";
      break;
    case Op::Stg:
      os << " [0x" << std::hex << in.imm << "], " << std::dec
         << reg_name(in.rs);
      break;
    case Op::Ldm:
      os << " " << reg_name(in.rd) << ", [MB+" << in.off << "]";
      break;
    case Op::Br:
      os << " 0x" << std::hex << in.imm;
      break;
    case Op::Brz: case Op::Brnz:
      os << " " << reg_name(in.rs) << ", 0x" << std::hex << in.imm;
      break;
    case Op::Jmp: case Op::Callr:
      os << " " << reg_name(in.rs);
      break;
    case Op::Call:
      os << " 0x" << std::hex << in.imm;
      break;
    case Op::SendW:
    case Op::SendD:
      os << " " << reg_name(in.rs);
      break;
    case Op::SendDr:
      if (in.imm != 0) os << " key=0x" << std::hex << in.imm;
      break;
    case Op::SendWi:
      os << " 0x" << std::hex << in.imm;
      break;
    case Op::Itagld:
      os << " " << reg_name(in.rd) << ", [" << reg_name(in.rs) << "], tag->"
         << reg_name(in.rt);
      break;
    case Op::Itagst:
      os << " [" << reg_name(in.rs) << "], " << reg_name(in.rt);
      break;
    case Op::Idefer:
      os << " [" << reg_name(in.rs) << "], inlet=" << reg_name(in.rt)
         << ", frame=" << reg_name(in.rd);
      break;
    case Op::Idhead:
      os << " " << reg_name(in.rd) << ", [" << reg_name(in.rs) << "]";
      break;
    case Op::Mark:
      os << " kind=" << in.imm << ", aux=" << reg_name(in.rs);
      break;
  }
  if (in.comment != nullptr) os << "  ; " << in.comment;
  return os.str();
}

std::string disasm(const CodeImage& img) {
  // Invert the symbol table so each address shows its labels.
  std::multimap<Addr, std::string> by_addr;
  for (const auto& [name, addr] : img.symbols) by_addr.emplace(addr, name);

  std::ostringstream os;
  auto dump = [&](const std::vector<Instr>& code, Addr base,
                  const char* title) {
    os << "; --- " << title << " ---\n";
    for (std::size_t i = 0; i < code.size(); ++i) {
      Addr a = base + static_cast<Addr>(i) * mem::kWordBytes;
      auto [lo, hi] = by_addr.equal_range(a);
      for (auto it = lo; it != hi; ++it) os << it->second << ":\n";
      os << "  0x" << std::hex << std::setw(6) << std::setfill('0') << a
         << std::dec << std::setfill(' ') << "  " << disasm(code[i]) << "\n";
    }
  };
  dump(img.sys_code, mem::kSysCodeBase, "system code");
  dump(img.user_code, mem::kUserCodeBase, "user code");
  return os.str();
}

}  // namespace jtam::mdp
