// Disassembler for debugging generated code.
#pragma once

#include <string>

#include "mdp/assembler.h"
#include "mdp/isa.h"

namespace jtam::mdp {

/// Render one instruction ("add r1, r2, r3  ; comment").
std::string disasm(const Instr& in);

/// Render a whole image with addresses and symbol annotations.
std::string disasm(const CodeImage& img);

}  // namespace jtam::mdp
