// Frame-placement policies for SENDDR.
//
// The MDP's SENDDR instruction names "the allocator's next node": the seed
// hard-coded a per-machine round-robin counter into mdp::Machine.  This
// seam extracts that decision into a PlacementPolicy so the multi-node
// experiments can ask where locality-aware placement moves the MD/AM
// story — the J-Machine placed frames blindly, real machines do not.
//
// Policies:
//   RoundRobin  the seed behaviour, bit-identical (counter starts at the
//               node's own id, wraps modulo the node count) — the default,
//               pinned by tests/aggregate_test.cpp and the golden numbers
//               in tests/net_test.cpp;
//   Nearest     topology-aware: cycle nodes in increasing net::Shape hop
//               distance from this node (self first), so successive
//               allocations fill the neighbourhood before spilling;
//   Owner       owner-computes: hash the SENDDR placement key (the
//               lowered codeblock id of the FAlloc being placed) so every
//               activation of a codeblock lands on that codeblock's home
//               node — deterministic and agreed on by every sender;
//   Cluster     locality-clustering: keep placing on the current target
//               until a per-node budget fills, then advance round-robin —
//               batches of collaborating frames share a node.
//
// The policy is consulted once per SENDDR, with the instruction's
// placement-key immediate (see tamc/lower.cpp: FAlloc lowers the
// codeblock id into SENDDR's imm field).  Every policy is deterministic
// pure state-machine code: same instruction stream, same placements.
#pragma once

#include <cstdint>
#include <memory>

namespace jtam::mdp {

enum class PlacementKind : std::uint8_t {
  RoundRobin = 0,
  Nearest = 1,
  Owner = 2,
  Cluster = 3,
};

const char* placement_kind_name(PlacementKind k);

struct PlacementConfig {
  PlacementKind kind = PlacementKind::RoundRobin;
  /// Cluster: allocations placed on a node before advancing to the next.
  std::uint32_t cluster_budget = 4;
};

/// One per machine (policies keep per-node state, e.g. the round-robin
/// cursor).  `place` returns the destination node for one SENDDR.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Decide the destination node of one SENDDR.  `key` is the
  /// instruction's placement-key immediate: the codeblock id for FAlloc
  /// messages, 0 when the emitter had no key.  Must return a node id in
  /// [0, num_nodes).
  virtual int place(std::uint32_t key) = 0;

  static std::unique_ptr<PlacementPolicy> make(const PlacementConfig& cfg,
                                               int node_id, int num_nodes);
};

}  // namespace jtam::mdp
