// The conservatively-synchronized windowed parallel engine behind
// MultiMachine::run() (Config::threads >= 1): the tentpole path that turns
// the serial round loop into a parallel discrete-event simulation while
// staying bit-identical to it in every MultiRunResult-visible respect.
//
// Structure of one lookahead window [T, T+W):
//
//   coordinator   fire the RoundHook (T is always a hook boundary), then
//                 materialize every network delivery due inside the window
//                 — plan_window for models with lookahead > 1, a plain
//                 step(T) into a collector when W == 1 — and open the
//                 window barrier;
//   node phase    each shard (a contiguous node range owned by one worker;
//                 the coordinator runs shard 0 itself) sweeps rounds T,
//                 T+1, ...: applies its nodes' due deliveries in the
//                 planned order, then steps each non-idle node one
//                 instruction, snapshotting its counters first.  SENDEs
//                 are parked in per-node staging lanes (MultiMachine::send)
//                 instead of touching the network;
//   barrier       workers rendezvous; the coordinator then resolves the
//                 window serially: pick the halt winner (smallest
//                 (round, node) — exactly the node the serial sweep sees
//                 first), roll overrun nodes back to their snapshots,
//                 detect global deadlock, commit network stats
//                 (commit_window) and inject the surviving staged sends in
//                 serial (round, src) order with their staged round as
//                 `now`.
//
// W is bounded by the network's conservative lookahead (net::NetworkModel::
// lookahead), by the distance to the next RoundHook boundary, and by the
// remaining round budget, so every delivery inside a window is determined
// before it opens and hooks only ever observe exact serial start-of-round
// states from the run() caller's thread.
//
// What "bit-identical" covers — and what it deliberately does not: rounds,
// halt value and node, message count, per-node instruction and stall
// counters, and the network's NetStats all match the serial loop exactly
// (tests/parmulti_test.cpp).  Nodes that overran a mid-window halt are
// rolled back through their counter snapshots; their memory words and
// queue contents may retain traces of the discarded rounds, which is
// invisible to results because the workloads' I-structure discipline makes
// data words write-once and nothing reads ensemble state after a halt.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "mdp/multi.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace jtam::mdp {

namespace {

constexpr std::uint64_t kNoHalt = ~std::uint64_t{0};

/// Windows larger than this gain nothing (node work dominates) but cost
/// snapshot-grid memory, so very high-latency ideal wires are clamped.
constexpr std::uint64_t kMaxWindowRounds = 1024;

/// Spin briefly, then yield: barriers are microseconds apart when shards
/// are balanced, but on an oversubscribed host (or a 1-CPU one) the yield
/// keeps the spinners from starving the shard that is still working.
template <typename Pred>
void spin_until(const Pred& pred) {
  unsigned spins = 0;
  while (!pred()) {
    if (++spins >= 64) std::this_thread::yield();
  }
}

/// Adapts one serial net step into the planned-delivery form the node
/// phase applies.  Used when W == 1: the model keeps its own stats inside
/// step(), so the hop/latency fields here are never read.
struct RoundCollector final : net::DeliverySink {
  std::uint64_t round = 0;
  std::vector<net::NetworkModel::PlannedDelivery>* out = nullptr;
  void deliver(int dest, Priority p,
               std::span<const std::uint32_t> words) override {
    out->push_back(net::NetworkModel::PlannedDelivery{
        round, dest, p, {words.begin(), words.end()}, 0, 0, 0});
  }
};

/// Per-shard working state.  Cache-line aligned so one worker's snapshot
/// and progress writes never false-share with a sibling's.
struct alignas(64) Shard {
  int begin = 0;  // node id range [begin, end)
  int end = 0;
  /// (round-in-window, node) grids; `ran` marks which snapshot cells hold
  /// the pre-execution counters a halt rollback may need.
  std::vector<Machine::CounterSnapshot> snap;
  std::vector<std::uint8_t> ran;
  std::vector<std::uint8_t> progress;  // any node stepped, per round
  std::uint64_t halt_round = kNoHalt;  // this shard's halt candidate
  int halt_node = -1;
  std::exception_ptr error;
  /// Wall time the owning worker spent inside this window's node phase,
  /// written before the arrival barrier and read by the coordinator after
  /// it (obs::HostReport's shard-imbalance data).  Unused when no
  /// EngineProfiler is attached.
  std::uint64_t busy_ns = 0;
};

/// Barrier + broadcast state shared by the coordinator and the workers.
struct Control {
  std::atomic<std::uint64_t> epoch{0};   // bumped to release a window
  std::atomic<unsigned> arrived{0};      // workers done with the window
  std::atomic<bool> stop{false};
  /// Smallest halt round seen so far, published so sibling shards stop
  /// producing rounds a rollback would discard anyway.  Purely an
  /// optimization: a stale read only costs wasted (rolled-back) work.
  std::atomic<std::uint64_t> halt_hint{kNoHalt};
};

}  // namespace

RunStatus MultiMachine::run_parallel() {
  const int n_nodes = cfg_.num_nodes;
  const unsigned n_shards =
      std::min(cfg_.threads, static_cast<unsigned>(n_nodes));
  const std::uint64_t hook_every =
      round_hook_ != nullptr ? round_hook_->round_interval() : 0;
  JTAM_CHECK(round_hook_ == nullptr || hook_every >= 1,
             "RoundHook::round_interval must be >= 1");
  const std::uint64_t wmax =
      std::min(net_->lookahead(), kMaxWindowRounds);
  const std::uint64_t publish_every =
      telemetry_ != nullptr ? telemetry_->publish_interval() : 0;
  std::uint64_t last_publish = 0;
  PhaseClock clk(host_);
  if (host_ != nullptr) host_->on_run_begin(true, n_shards, wmax);

  par_stats_.engaged = true;
  par_stats_.threads = n_shards;
  par_stats_.window_limit = wmax;

  staged_.assign(static_cast<std::size_t>(n_nodes), {});
  staging_round_.assign(static_cast<std::size_t>(n_nodes), 0);
  staging_ = true;
  struct StagingReset {
    MultiMachine* mm;
    ~StagingReset() {
      mm->staging_ = false;
      mm->staged_.clear();
      mm->staging_round_.clear();
    }
  } staging_reset{this};

  // Contiguous shard ranges, sized within one node of each other.
  std::vector<Shard> shards(n_shards);
  {
    const int base = n_nodes / static_cast<int>(n_shards);
    const int rem = n_nodes % static_cast<int>(n_shards);
    int at = 0;
    for (unsigned s = 0; s < n_shards; ++s) {
      shards[s].begin = at;
      at += base + (static_cast<int>(s) < rem ? 1 : 0);
      shards[s].end = at;
      const std::size_t cells =
          static_cast<std::size_t>(wmax) *
          static_cast<std::size_t>(shards[s].end - shards[s].begin);
      shards[s].snap.resize(cells);
      shards[s].ran.assign(cells, 0);
      shards[s].progress.assign(static_cast<std::size_t>(wmax), 0);
    }
  }

  // Window broadcast: written by the coordinator before the epoch bump
  // (release), read by workers after the acquire — never touched while a
  // node phase is in flight.
  Control ctrl;
  std::uint64_t win_from = 0;
  std::uint64_t win_rounds = 0;
  std::vector<net::NetworkModel::PlannedDelivery> planned;

  auto run_shard = [&](Shard& sh) {
    const std::uint64_t wfrom = win_from;
    const std::uint64_t w = win_rounds;
    const int count = sh.end - sh.begin;
    sh.halt_round = kNoHalt;
    sh.halt_node = -1;
    std::fill(sh.ran.begin(),
              sh.ran.begin() + static_cast<std::ptrdiff_t>(w * count), 0);
    std::fill(sh.progress.begin(),
              sh.progress.begin() + static_cast<std::ptrdiff_t>(w), 0);
    std::size_t cur = 0;  // planned[] is round-ascending: one pass suffices
    for (std::uint64_t r = wfrom; r < wfrom + w; ++r) {
      // A sibling shard halted at an earlier round: everything past it is
      // rolled back at the barrier, so stop producing it.
      if (r > ctrl.halt_hint.load(std::memory_order_relaxed)) break;
      while (cur < planned.size() && planned[cur].round < r) ++cur;
      for (std::size_t i = cur; i < planned.size() && planned[i].round == r;
           ++i) {
        const auto& d = planned[i];
        if (d.dest >= sh.begin && d.dest < sh.end) {
          nodes_[static_cast<std::size_t>(d.dest)]->deliver(d.p, d.words);
        }
      }
      const std::size_t row = static_cast<std::size_t>(r - wfrom) *
                              static_cast<std::size_t>(count);
      bool prog = false;
      for (int n = sh.begin; n < sh.end; ++n) {
        Machine& m = *nodes_[static_cast<std::size_t>(n)];
        if (m.is_idle()) continue;
        prog = true;
        const std::size_t cell = row + static_cast<std::size_t>(n - sh.begin);
        sh.snap[cell] = m.save_counters();
        sh.ran[cell] = 1;
        staging_round_[static_cast<std::size_t>(n)] = r;
        if (m.run_steps(1) == RunStatus::Halted) {
          sh.progress[r - wfrom] = 1;
          sh.halt_round = r;
          sh.halt_node = n;
          std::uint64_t hint = ctrl.halt_hint.load(std::memory_order_relaxed);
          while (r < hint && !ctrl.halt_hint.compare_exchange_weak(
                                 hint, r, std::memory_order_relaxed)) {
          }
          // The serial sweep stops mid-round here: this shard's later
          // nodes and rounds must not run at all.
          return;
        }
      }
      sh.progress[r - wfrom] = prog ? 1 : 0;
    }
  };

  const bool timed = host_ != nullptr;
  auto guarded_shard = [&](Shard& sh) {
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    try {
      run_shard(sh);
    } catch (...) {
      sh.error = std::current_exception();
      // Tell sibling shards to stop wasting the window; the coordinator
      // rethrows before the hint is ever read as a halt.
      ctrl.halt_hint.store(0, std::memory_order_relaxed);
    }
    if (timed) {
      sh.busy_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  };

  const unsigned n_workers = n_shards - 1;
  support::ThreadPool pool(n_workers);
  // Destroyed before `pool`, so its epoch bump releases every parked
  // worker to observe `stop` and return — on normal exit and unwind alike.
  struct WorkerRelease {
    Control* c;
    ~WorkerRelease() {
      c->stop.store(true, std::memory_order_relaxed);
      c->epoch.fetch_add(1, std::memory_order_release);
    }
  } worker_release{&ctrl};
  for (unsigned s = 1; s < n_shards; ++s) {
    pool.submit([&ctrl, &guarded_shard, &shards, s] {
      std::uint64_t seen = 0;
      while (true) {
        spin_until([&] {
          return ctrl.epoch.load(std::memory_order_acquire) != seen;
        });
        seen = ctrl.epoch.load(std::memory_order_acquire);
        if (ctrl.stop.load(std::memory_order_relaxed)) return;
        guarded_shard(shards[s]);
        ctrl.arrived.fetch_add(1, std::memory_order_release);
      }
    });
  }

  RoundCollector collector;
  std::vector<StagedSend> commit;
  std::vector<std::uint64_t> shard_busy(n_shards, 0);
  const auto report_window = [&](std::uint64_t wfrom, std::uint64_t w) {
    if (host_ == nullptr) return;
    for (unsigned s = 0; s < n_shards; ++s) shard_busy[s] = shards[s].busy_ns;
    host_->on_window(wfrom, w, shard_busy.data(), n_shards);
  };
  clk.lap(EngineProfiler::Phase::Setup);

  std::uint64_t from = 0;
  while (from < cfg_.max_rounds) {
    rounds_ = from;
    if (round_hook_ != nullptr && from % hook_every == 0) {
      round_hook_->on_round(*this, from);
      clk.lap(EngineProfiler::Phase::Hook);
    }
    std::uint64_t w = std::min(wmax, cfg_.max_rounds - from);
    if (hook_every > 0) {
      const std::uint64_t next_hook = (from / hook_every + 1) * hook_every;
      w = std::min(w, next_hook - from);
    }

    planned.clear();
    if (w == 1) {
      // One round of lookahead: the model's own step at T is exact — only
      // its deliveries are rerouted through the collector for the shards.
      collector.round = from;
      collector.out = &planned;
      net_->step(from, collector);
    } else {
      net_->plan_window(from, w, planned);
    }
    clk.lap(EngineProfiler::Phase::Plan);

    // --- node phase -----------------------------------------------------
    win_from = from;
    win_rounds = w;
    ctrl.halt_hint.store(kNoHalt, std::memory_order_relaxed);
    if (n_workers > 0) ctrl.epoch.fetch_add(1, std::memory_order_release);
    guarded_shard(shards[0]);
    clk.lap(EngineProfiler::Phase::NodePhase);
    if (n_workers > 0) {
      spin_until([&] {
        return ctrl.arrived.load(std::memory_order_acquire) == n_workers;
      });
      ctrl.arrived.store(0, std::memory_order_relaxed);
      par_stats_.barriers += 2;
    }
    clk.lap(EngineProfiler::Phase::BarrierWait);
    ++par_stats_.windows;

    // --- serial window resolution ---------------------------------------
    for (const Shard& sh : shards) {
      if (sh.error) std::rethrow_exception(sh.error);
    }

    // Halt winner: the smallest (round, node) candidate is exactly the
    // node the serial round-major, node-minor sweep would see halt first.
    std::uint64_t halt_r = kNoHalt;
    int halt_n = -1;
    for (const Shard& sh : shards) {
      if (sh.halt_round < halt_r ||
          (sh.halt_round == halt_r && sh.halt_node < halt_n)) {
        halt_r = sh.halt_round;
        halt_n = sh.halt_node;
      }
    }

    // Merge the staging lanes into serial injection order.  Each lane is
    // already round-ascending and a node stages at most one send per round
    // (one instruction), so (round, src) keys are unique.
    commit.clear();
    for (auto& lane : staged_) {
      for (auto& s : lane) commit.push_back(std::move(s));
      lane.clear();
    }
    std::sort(commit.begin(), commit.end(),
              [](const StagedSend& a, const StagedSend& b) {
                return a.round != b.round ? a.round < b.round : a.src < b.src;
              });
    clk.lap(EngineProfiler::Phase::StagingMerge);

    if (halt_n >= 0) {
      // Rewind every node to its serial stopping point: node halt_n's HALT
      // ends the round sweep mid-pass, so nodes above it rewind to before
      // round halt_r and nodes below it keep that round but nothing later.
      // Restoring the earliest overrun snapshot undoes all later steps at
      // once — the counters are monotonic within the window.
      for (Shard& sh : shards) {
        const std::size_t count = static_cast<std::size_t>(sh.end - sh.begin);
        for (int n = sh.begin; n < sh.end; ++n) {
          const std::uint64_t bad = n > halt_n ? halt_r : halt_r + 1;
          for (std::uint64_t r = bad; r < from + w; ++r) {
            const std::size_t cell =
                static_cast<std::size_t>(r - from) * count +
                static_cast<std::size_t>(n - sh.begin);
            if (sh.ran[cell]) {
              nodes_[static_cast<std::size_t>(n)]->restore_counters(
                  sh.snap[cell]);
              break;
            }
          }
        }
      }
      if (w > 1) net_->commit_window(from, halt_r, planned);
      for (const StagedSend& s : commit) {
        // Sorted order: the first overrun send ends the committed prefix.
        if (s.round > halt_r || (s.round == halt_r && s.src > halt_n)) break;
        ++messages_;
        net_->inject(s.src, s.dest, s.p, s.words, s.round, s.flow_id);
      }
      rounds_ = halt_r;
      halt_value_ = nodes_[static_cast<std::size_t>(halt_n)]->halt_value();
      halted_node_ = halt_n;
      clk.lap(EngineProfiler::Phase::Commit);
      report_window(from, w);
      return RunStatus::Halted;
    }

    // Global deadlock: a round where no shard stepped a node and nothing
    // was in flight — not on the wire, not planned for a later round, not
    // parked in a staging lane.  Idleness is absorbing inside a window
    // (only a delivery can wake a node), so the first such round is where
    // the serial loop would have stopped, and nothing ran after it.
    std::uint64_t dead_r = kNoHalt;
    for (std::uint64_t r = from; r < from + w && dead_r == kNoHalt; ++r) {
      bool busy = false;
      for (const Shard& sh : shards) busy = busy || sh.progress[r - from] != 0;
      busy = busy || !net_->idle();
      busy = busy || (w > 1 && !planned.empty() && planned.back().round > r);
      busy = busy || (!commit.empty() && commit.front().round <= r);
      if (!busy) dead_r = r;
    }
    if (dead_r != kNoHalt) {
      JTAM_CHECK(commit.empty(), "staged sends at global deadlock");
      if (w > 1) net_->commit_window(from, dead_r, planned);
      rounds_ = dead_r;
      deadlock_report_ = describe_stuck_state();
      clk.lap(EngineProfiler::Phase::Commit);
      report_window(from, w);
      return RunStatus::Deadlock;
    }

    // The window completed: charge the network for every round it covered
    // and inject the staged sends in serial (round, src) order, each with
    // the round it was staged in as `now`.
    if (w > 1) net_->commit_window(from, from + w - 1, planned);
    for (const StagedSend& s : commit) {
      ++messages_;
      net_->inject(s.src, s.dest, s.p, s.words, s.round, s.flow_id);
    }
    clk.lap(EngineProfiler::Phase::Commit);
    report_window(from, w);
    from += w;
    if (publish_every > 0 && from - last_publish >= publish_every) {
      // Workers are parked between windows, so every node buffer is
      // quiescent and the hub may read machine counters race-free.
      last_publish = from;
      rounds_ = from;
      telemetry_->publish(*this, from, /*final=*/false);
      clk.lap(EngineProfiler::Phase::Publish);
    }
  }
  rounds_ = cfg_.max_rounds;
  return RunStatus::Budget;
}

}  // namespace jtam::mdp
