#include "mdp/isa.h"

namespace jtam::mdp {

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::Halted: return "halted";
    case RunStatus::Deadlock: return "deadlock";
    case RunStatus::Budget: return "budget-exhausted";
  }
  return "?";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::Halt: return "halt";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Divs: return "divs";
    case Op::Mods: return "mods";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Slt: return "slt";
    case Op::Sle: return "sle";
    case Op::Seq: return "seq";
    case Op::Sne: return "sne";
    case Op::Addi: return "addi";
    case Op::Subi: return "subi";
    case Op::Muli: return "muli";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Shli: return "shli";
    case Op::Shri: return "shri";
    case Op::Slti: return "slti";
    case Op::Movi: return "movi";
    case Op::Mov: return "mov";
    case Op::Fadd: return "fadd";
    case Op::Fsub: return "fsub";
    case Op::Fmul: return "fmul";
    case Op::Fdiv: return "fdiv";
    case Op::Flt: return "flt";
    case Op::Feq: return "feq";
    case Op::Itof: return "itof";
    case Op::Ftoi: return "ftoi";
    case Op::Ld: return "ld";
    case Op::St: return "st";
    case Op::Sti: return "sti";
    case Op::Ldg: return "ldg";
    case Op::Stg: return "stg";
    case Op::Ldm: return "ldm";
    case Op::Br: return "br";
    case Op::Brz: return "brz";
    case Op::Brnz: return "brnz";
    case Op::Jmp: return "jmp";
    case Op::Call: return "call";
    case Op::Callr: return "callr";
    case Op::Ret: return "ret";
    case Op::SendH: return "sendh";
    case Op::SendL: return "sendl";
    case Op::SendW: return "sendw";
    case Op::SendWi: return "sendwi";
    case Op::SendD: return "sendd";
    case Op::SendDr: return "senddr";
    case Op::SendE: return "sende";
    case Op::Suspend: return "suspend";
    case Op::Eint: return "eint";
    case Op::Dint: return "dint";
    case Op::Itagld: return "itagld";
    case Op::Itagst: return "itagst";
    case Op::Idefer: return "idefer";
    case Op::Idhead: return "idhead";
    case Op::Mark: return "mark";
  }
  return "?";
}

bool op_reads_memory(Op op) {
  switch (op) {
    case Op::Ld:
    case Op::Ldg:
    case Op::Ldm:
    case Op::Itagld:
      return true;
    default:
      return false;
  }
}

bool op_writes_memory(Op op) {
  switch (op) {
    case Op::St:
    case Op::Sti:
    case Op::Stg:
    case Op::Itagst:
    case Op::Idefer:  // writes the 3-word deferred node
    case Op::SendE:   // writes the message into queue memory
      return true;
    default:
      return false;
  }
}

}  // namespace jtam::mdp
