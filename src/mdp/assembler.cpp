#include "mdp/assembler.h"

#include "support/error.h"

namespace jtam::mdp {

Addr CodeImage::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  JTAM_CHECK(it != symbols.end(), "unknown symbol '" + name + "'");
  return it->second;
}

Assembler::Assembler() = default;

LabelRef Assembler::label(std::string name) {
  labels_.push_back(LabelInfo{std::move(name), false, 0});
  return LabelRef{static_cast<std::uint32_t>(labels_.size() - 1)};
}

void Assembler::bind(LabelRef l) {
  JTAM_CHECK(l.id < labels_.size(), "bind of unknown label");
  LabelInfo& info = labels_[l.id];
  JTAM_CHECK(!info.bound, "label '" + info.name + "' bound twice");
  info.bound = true;
  info.addr = cursor();
}

LabelRef Assembler::here(std::string name) {
  LabelRef l = label(std::move(name));
  bind(l);
  return l;
}

Addr Assembler::base_of(Section s) const {
  return s == Section::SysCode ? mem::kSysCodeBase : mem::kUserCodeBase;
}

Addr Assembler::cursor() const {
  return base_of(cur_) +
         static_cast<Addr>(code_of(cur_).size()) * mem::kWordBytes;
}

Addr Assembler::emit(Instr i, ImmOrLabel imm, const char* comment) {
  Addr at = cursor();
  Pending p{i, false, 0};
  p.instr.comment = comment;
  if (imm.is_label()) {
    p.has_fixup = true;
    p.label_id = imm.label().id;
  } else {
    p.instr.imm = imm.imm();
  }
  code_of(cur_).push_back(p);
  return at;
}

Addr Assembler::emit(Instr i, const char* comment) {
  return emit(i, ImmOrLabel{i.imm}, comment);
}

CodeImage Assembler::link() const {
  CodeImage img;
  for (std::size_t li = 0; li < labels_.size(); ++li) {
    const LabelInfo& info = labels_[li];
    JTAM_CHECK(info.bound, "label '" +
                               (info.name.empty() ? ("#" + std::to_string(li))
                                                  : info.name) +
                               "' was never bound");
    if (!info.name.empty()) {
      JTAM_CHECK(img.symbols.emplace(info.name, info.addr).second,
                 "duplicate symbol '" + info.name + "'");
    }
  }
  auto resolve = [&](const std::vector<Pending>& src,
                     std::vector<Instr>& dst) {
    dst.reserve(src.size());
    for (const Pending& p : src) {
      Instr i = p.instr;
      if (p.has_fixup) {
        i.imm = as_i(labels_[p.label_id].addr);
      }
      dst.push_back(i);
    }
  };
  resolve(code_of(Section::SysCode), img.sys_code);
  resolve(code_of(Section::UserCode), img.user_code);
  JTAM_CHECK(img.sys_code_limit() <= mem::kSysCodeLimit,
             "system code overflows its region");
  JTAM_CHECK(img.user_code_limit() <= mem::kUserCodeLimit,
             "user code overflows its region");
  return img;
}

}  // namespace jtam::mdp
