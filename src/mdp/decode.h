// Decoded micro-op cache for the MDP interpreter.
//
// The classic interpreter (Machine::exec) pays per *dynamic* instruction for
// work that only depends on the *static* instruction: the two-range bounds
// check of code_at, the Mark/SendE special-case tests, the signed/unsigned
// immediate conversions, and the 60+-case switch dispatch.  This module
// performs that work once per code address: every Instr of the loaded
// CodeImage is decoded into a Uop holding its dispatch token, register
// indices, pre-converted immediates, its own address, a direct handler
// pointer (a computed-goto label on GCC/Clang, see src/mdp/dispatch.cpp),
// and — for direct branches — a pre-resolved pointer to the target Uop.
//
// Layout mirrors the image: one flat Uop array per code section, parallel
// to CodeImage::{sys_code, user_code}, each terminated by a kTokFault
// sentinel whose address is the first word past the section.  Straight-line
// execution is therefore `++u`; falling off the end of a section lands on
// the sentinel, which raises exactly the classic engine's
// "instruction fetch from unmapped address" fault.
//
// Invalidation: data writes can never reach code regions (check_data_addr
// admits only sys-data and user-data), so the steams that can change code
// are host-side only — Machine::patch_code and Machine::load_image — and
// both call invalidate().  The next run_steps re-decodes the whole image;
// stale micro-ops are unreachable (tests/interp_test.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "mdp/assembler.h"
#include "mdp/isa.h"
#include "mem/memory_map.h"

namespace jtam::mdp {

/// Dispatch token: the Op value, plus one out-of-band sentinel.
inline constexpr std::uint16_t kTokFault = kNumOps;
inline constexpr int kNumTokens = kNumOps + 1;

/// One pre-decoded instruction (micro-op).
struct Uop {
  std::uint16_t token = kTokFault;  // Op as an integer, or kTokFault
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  mem::Addr addr = 0;       // this instruction's code address
  std::uint32_t imm = 0;    // as_u(Instr::imm): address/immediate bits
  std::uint32_t off = 0;    // as_u(Instr::off): byte offset for Ld/St/Sti/Ldm
  const void* handler = nullptr;  // threaded-dispatch label (may be null)
  const Uop* targ = nullptr;      // Br/Brz/Brnz/Call target (null = faults)

  std::int32_t imm_s() const { return as_i(imm); }
};

/// The per-machine decoded image.  Rebuilt lazily by ensure(); owners call
/// invalidate() on every seam that can change code.
class DecodedCache {
 public:
  /// Decode `image` if needed.  `labels` is the dispatch label table of the
  /// running engine (kNumTokens entries, indexed by token) or nullptr for
  /// the switch fallback; a label-table change forces a re-decode so Uops
  /// never carry labels of a stale engine instantiation.
  void ensure(const CodeImage& image, const void* const* labels);

  /// Drop all decoded state.  Cheap; the next ensure() re-decodes.
  void invalidate() { valid_ = false; }

  /// Micro-op at code address `a`, or nullptr when `a` is unaligned or
  /// outside the decoded sections — the caller raises the classic fetch
  /// fault (Machine::fault_fetch) with the same message code_at used.
  const Uop* lookup(mem::Addr a) const {
    if ((a & 3u) != 0) return nullptr;
    if (a >= mem::kSysCodeBase) {
      const std::size_t i = (a - mem::kSysCodeBase) / mem::kWordBytes;
      if (i < sys_n_) return &sys_[i];
    }
    if (a >= mem::kUserCodeBase) {
      const std::size_t i = (a - mem::kUserCodeBase) / mem::kWordBytes;
      if (i < user_n_) return &user_[i];
    }
    return nullptr;
  }

 private:
  void decode_section(const std::vector<Instr>& code, mem::Addr base,
                      std::vector<Uop>& out);

  bool valid_ = false;
  const void* const* labels_ = nullptr;
  std::size_t sys_n_ = 0;   // decodable uops, excluding the fault sentinel
  std::size_t user_n_ = 0;
  std::vector<Uop> sys_;
  std::vector<Uop> user_;
};

}  // namespace jtam::mdp
