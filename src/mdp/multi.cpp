#include "mdp/multi.h"

#include <sstream>

#include "net/ideal.h"
#include "net/mesh.h"
#include "support/error.h"

namespace jtam::mdp {

namespace {

std::unique_ptr<net::NetworkModel> make_network(
    const MultiMachine::Config& cfg) {
  std::unique_ptr<net::NetworkModel> base;
  switch (cfg.net) {
    case net::NetKind::Ideal: {
      net::IdealNetwork::Config nc;
      nc.latency = cfg.latency;
      nc.max_inflight_messages = cfg.max_inflight_messages;
      base = std::make_unique<net::IdealNetwork>(nc);
      break;
    }
    case net::NetKind::Mesh: {
      net::MeshNetwork::Config nc;
      nc.shape = net::Shape::for_nodes(cfg.num_nodes);
      nc.link_buffer_flits = cfg.link_buffer_flits;
      base = std::make_unique<net::MeshNetwork>(nc);
      break;
    }
  }
  if (base == nullptr) throw Error("unknown network kind");
  if (cfg.agg == net::AggMode::Off) return base;
  net::AggregateNetwork::Config ac;
  ac.mode = cfg.agg;
  ac.shape = net::Shape::for_nodes(cfg.num_nodes);
  ac.flush_bytes = cfg.agg_bytes;
  ac.flush_timeout = cfg.agg_timeout;
  return std::make_unique<net::AggregateNetwork>(ac, std::move(base));
}

}  // namespace

MultiMachine::MultiMachine(const CodeImage& image, Config cfg) : cfg_(cfg) {
  JTAM_CHECK(cfg_.num_nodes >= 1 && cfg_.num_nodes <= 256,
             "node count must be in [1, 256]");
  net_ = make_network(cfg_);
  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    Machine::Config mc;
    mc.queue_bytes = cfg_.queue_bytes;
    mc.node_id = n;
    mc.num_nodes = cfg_.num_nodes;
    mc.placement = cfg_.placement;
    nodes_.push_back(std::make_unique<Machine>(image, mc));
    nodes_.back()->set_dispatch(cfg_.dispatch);
    nodes_.back()->set_network(this);
  }
}

bool MultiMachine::can_accept(int src_node, int dest_node, Priority p) {
  return net_->can_accept(src_node, dest_node, p);
}

void MultiMachine::send(int src_node, int dest_node, Priority p,
                        std::span<const std::uint32_t> words,
                        std::uint64_t flow_id) {
  JTAM_CHECK(dest_node >= 0 && dest_node < cfg_.num_nodes,
             "network send to nonexistent node");
  ++messages_;
  net_->inject(src_node, dest_node, p, words, rounds_, flow_id);
}

void MultiMachine::deliver(int dest_node, Priority p,
                           std::span<const std::uint32_t> words) {
  nodes_[static_cast<std::size_t>(dest_node)]->deliver(p, words);
}

std::uint64_t MultiMachine::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m->instructions_executed();
  return total;
}

std::uint64_t MultiMachine::total_injection_stalls() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m->injection_stall_cycles();
  return total;
}

std::string MultiMachine::describe_stuck_state() const {
  std::ostringstream os;
  os << "global deadlock after " << rounds_ << " rounds (" << messages_
     << " messages sent, network "
     << (net_->idle() ? "empty" : "still holding traffic") << "):";
  for (const auto& m : nodes_) {
    os << "\n  node " << m->node_id() << ": "
       << (m->is_idle() ? "idle" : "live")
       << ", low " << (m->level_active(Priority::Low) ? "active" : "suspended")
       << "/q" << m->queue_depth(Priority::Low) << ", high "
       << (m->level_active(Priority::High) ? "active" : "suspended") << "/q"
       << m->queue_depth(Priority::High) << ", " << m->instructions_executed()
       << " instrs, " << m->injection_stall_cycles() << " inj-stall cycles";
  }
  return os.str();
}

RunStatus MultiMachine::run() {
  for (rounds_ = 0; rounds_ < cfg_.max_rounds; ++rounds_) {
    if (round_hook_ != nullptr) round_hook_->on_round(*this, rounds_);
    // One network cycle per round: deliveries land in the hardware queues
    // before any node executes, exactly like the seed's wire.
    net_->step(rounds_, *this);
    bool progress = false;
    for (auto& m : nodes_) {
      if (m->is_idle()) continue;
      RunStatus s = m->run_steps(1);
      if (s == RunStatus::Halted) {
        halt_value_ = m->halt_value();
        halted_node_ = m->node_id();
        return RunStatus::Halted;
      }
      // Budget(1) == executed an instruction (or burned an injection-stall
      // cycle); Deadlock == went idle.
      progress = true;
      (void)s;
    }
    if (!progress && net_->idle()) {
      deadlock_report_ = describe_stuck_state();
      return RunStatus::Deadlock;
    }
  }
  return RunStatus::Budget;
}

}  // namespace jtam::mdp
