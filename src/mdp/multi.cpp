#include "mdp/multi.h"

#include <sstream>

#include "net/ideal.h"
#include "net/mesh.h"
#include "support/error.h"

namespace jtam::mdp {

namespace {

std::unique_ptr<net::NetworkModel> make_network(
    const MultiMachine::Config& cfg) {
  std::unique_ptr<net::NetworkModel> base;
  switch (cfg.net) {
    case net::NetKind::Ideal: {
      net::IdealNetwork::Config nc;
      nc.latency = cfg.latency;
      nc.max_inflight_messages = cfg.max_inflight_messages;
      base = std::make_unique<net::IdealNetwork>(nc);
      break;
    }
    case net::NetKind::Mesh: {
      net::MeshNetwork::Config nc;
      nc.shape = net::Shape::for_nodes(cfg.num_nodes);
      nc.link_buffer_flits = cfg.link_buffer_flits;
      base = std::make_unique<net::MeshNetwork>(nc);
      break;
    }
  }
  if (base == nullptr) throw Error("unknown network kind");
  if (cfg.agg == net::AggMode::Off) return base;
  net::AggregateNetwork::Config ac;
  ac.mode = cfg.agg;
  ac.shape = net::Shape::for_nodes(cfg.num_nodes);
  ac.flush_bytes = cfg.agg_bytes;
  ac.flush_timeout = cfg.agg_timeout;
  return std::make_unique<net::AggregateNetwork>(ac, std::move(base));
}

}  // namespace

MultiMachine::MultiMachine(const CodeImage& image, Config cfg) : cfg_(cfg) {
  node_shift_ = cfg_.node_shift == 0
                    ? mem::node_shift_for_nodes(cfg_.num_nodes)
                    : cfg_.node_shift;
  JTAM_CHECK(cfg_.num_nodes >= 1 && node_shift_ != 0 &&
                 static_cast<std::uint64_t>(cfg_.num_nodes) <=
                     mem::max_nodes_for_shift(node_shift_),
             "node count must be in [1, 8184] and fit the node-field shift");
  net_ = make_network(cfg_);
  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    Machine::Config mc;
    mc.queue_bytes = cfg_.queue_bytes;
    mc.node_id = n;
    mc.num_nodes = cfg_.num_nodes;
    mc.node_shift = node_shift_;
    mc.placement = cfg_.placement;
    nodes_.push_back(std::make_unique<Machine>(image, mc));
    nodes_.back()->set_dispatch(cfg_.dispatch);
    nodes_.back()->set_network(this);
  }
}

bool MultiMachine::can_accept(int src_node, int dest_node, Priority p) {
  // During a parallel node phase the network is only read, never written
  // (injections are staged), so this const query is safe from workers.
  // The answer matches the serial loop because every engaged network
  // model answers can_accept(src, ...) from per-source state alone — see
  // net::NetworkModel::lookahead() — and a node can attempt at most one
  // SENDE per round.
  return net_->can_accept(src_node, dest_node, p);
}

void MultiMachine::send(int src_node, int dest_node, Priority p,
                        std::span<const std::uint32_t> words,
                        std::uint64_t flow_id) {
  JTAM_CHECK(dest_node >= 0 && dest_node < cfg_.num_nodes,
             "network send to nonexistent node");
  if (staging_) {
    // Parallel node phase: park the message in the sender's lane; the
    // coordinator injects every staged send in serial (round, src) order
    // at the window barrier, with the round it was staged in as `now`, so
    // the network sees the exact serial injection sequence.
    auto& lane = staged_[static_cast<std::size_t>(src_node)];
    lane.push_back(StagedSend{
        staging_round_[static_cast<std::size_t>(src_node)], src_node,
        dest_node, p, flow_id,
        std::vector<std::uint32_t>(words.begin(), words.end())});
    return;
  }
  ++messages_;
  net_->inject(src_node, dest_node, p, words, rounds_, flow_id);
}

void MultiMachine::deliver(int dest_node, Priority p,
                           std::span<const std::uint32_t> words) {
  nodes_[static_cast<std::size_t>(dest_node)]->deliver(p, words);
}

std::uint64_t MultiMachine::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m->instructions_executed();
  return total;
}

std::uint64_t MultiMachine::total_injection_stalls() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m->injection_stall_cycles();
  return total;
}

std::string MultiMachine::describe_stuck_state() const {
  std::ostringstream os;
  os << "global deadlock after " << rounds_ << " rounds (" << messages_
     << " messages sent, network "
     << (net_->idle() ? "empty" : "still holding traffic") << "):";
  for (const auto& m : nodes_) {
    os << "\n  node " << m->node_id() << ": "
       << (m->is_idle() ? "idle" : "live")
       << ", low " << (m->level_active(Priority::Low) ? "active" : "suspended")
       << "/q" << m->queue_depth(Priority::Low) << ", high "
       << (m->level_active(Priority::High) ? "active" : "suspended") << "/q"
       << m->queue_depth(Priority::High) << ", " << m->instructions_executed()
       << " instrs, " << m->injection_stall_cycles() << " inj-stall cycles";
  }
  return os.str();
}

bool MultiMachine::ParallelStats::operator==(const ParallelStats& o) const {
  return engaged == o.engaged && threads == o.threads &&
         windows == o.windows && barriers == o.barriers &&
         window_limit == o.window_limit;
}

std::string MultiMachine::ParallelStats::summary() const {
  if (!engaged) return "serial";
  std::ostringstream os;
  os << "parallel threads=" << threads << " windows=" << windows
     << " barriers=" << barriers << " window_limit=" << window_limit;
  return os.str();
}

RunStatus MultiMachine::run() {
  par_stats_ = ParallelStats{};
  // The engine choice precedes the telemetry attach: parallel_eligible()
  // rejects *external* trace attachments (they would observe from worker
  // threads they don't expect), but the telemetry hub is built for the
  // windowed engine's ownership discipline, so its buffers must not
  // demote the run to serial.
  const bool parallel = cfg_.threads >= 1 && parallel_eligible();
  struct TelemetryAttach {
    MultiMachine* mm = nullptr;
    ~TelemetryAttach() {
      if (mm == nullptr) return;
      for (auto& m : mm->nodes_) {
        m->set_trace_buffer(nullptr);
        m->set_queue_marks(false);
      }
    }
  } telemetry_attach;
  if (telemetry_ != nullptr) {
    telemetry_attach.mm = this;
    for (int n = 0; n < cfg_.num_nodes; ++n) {
      TraceBuffer* buf = telemetry_->node_buffer(n);
      if (buf != nullptr) {
        nodes_[static_cast<std::size_t>(n)]->set_trace_buffer(buf);
        nodes_[static_cast<std::size_t>(n)]->set_queue_marks(true);
      }
    }
  }
  const RunStatus s = parallel ? run_parallel() : run_serial();
  if (telemetry_ != nullptr) {
    PhaseClock clk(host_);
    telemetry_->publish(*this, rounds_, /*final=*/true);
    clk.lap(EngineProfiler::Phase::Publish);
  }
  if (host_ != nullptr) host_->on_run_end(rounds_, par_stats_.windows);
  return s;
}

bool MultiMachine::parallel_eligible() const {
  // The windowed engine needs at least one round of network lookahead and
  // coordinator-only observation: per-instruction flow probes and trace
  // attachments fire from whichever worker steps the node, which would
  // both race and reorder their event streams, so those runs stay serial.
  if (net_->lookahead() == 0) return false;
  if (net_->has_flow_observer()) return false;
  for (const auto& m : nodes_) {
    if (m->has_flow() || m->has_trace_attachment()) return false;
  }
  return true;
}

RunStatus MultiMachine::run_serial() {
  const std::uint64_t hook_every =
      round_hook_ != nullptr ? round_hook_->round_interval() : 1;
  const std::uint64_t publish_every =
      telemetry_ != nullptr ? telemetry_->publish_interval() : 0;
  std::uint64_t last_publish = 0;
  PhaseClock clk(host_);
  if (host_ != nullptr) host_->on_run_begin(false, 1, 0);
  for (rounds_ = 0; rounds_ < cfg_.max_rounds; ++rounds_) {
    if (round_hook_ != nullptr && rounds_ % hook_every == 0) {
      round_hook_->on_round(*this, rounds_);
      clk.lap(EngineProfiler::Phase::Hook);
    }
    // One network cycle per round: deliveries land in the hardware queues
    // before any node executes, exactly like the seed's wire.
    net_->step(rounds_, *this);
    clk.lap(EngineProfiler::Phase::NetStep);
    bool progress = false;
    for (auto& m : nodes_) {
      if (m->is_idle()) continue;
      RunStatus s = m->run_steps(1);
      if (s == RunStatus::Halted) {
        halt_value_ = m->halt_value();
        halted_node_ = m->node_id();
        clk.lap(EngineProfiler::Phase::NodeStep);
        return RunStatus::Halted;
      }
      // Budget(1) == executed an instruction (or burned an injection-stall
      // cycle); Deadlock == went idle.
      progress = true;
      (void)s;
    }
    if (!progress && net_->idle()) {
      deadlock_report_ = describe_stuck_state();
      clk.lap(EngineProfiler::Phase::NodeStep);
      return RunStatus::Deadlock;
    }
    clk.lap(EngineProfiler::Phase::NodeStep);
    if (publish_every > 0 && rounds_ + 1 - last_publish >= publish_every) {
      last_publish = rounds_ + 1;
      telemetry_->publish(*this, last_publish, /*final=*/false);
      clk.lap(EngineProfiler::Phase::Publish);
    }
  }
  return RunStatus::Budget;
}

}  // namespace jtam::mdp
