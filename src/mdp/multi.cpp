#include "mdp/multi.h"

#include "support/error.h"

namespace jtam::mdp {

MultiMachine::MultiMachine(const CodeImage& image, Config cfg) : cfg_(cfg) {
  JTAM_CHECK(cfg_.num_nodes >= 1 && cfg_.num_nodes <= 256,
             "node count must be in [1, 256]");
  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    Machine::Config mc;
    mc.queue_bytes = cfg_.queue_bytes;
    mc.node_id = n;
    mc.num_nodes = cfg_.num_nodes;
    nodes_.push_back(std::make_unique<Machine>(image, mc));
    nodes_.back()->set_network(this);
  }
}

void MultiMachine::send(int dest_node, Priority p,
                        std::span<const std::uint32_t> words) {
  JTAM_CHECK(dest_node >= 0 && dest_node < cfg_.num_nodes,
             "network send to nonexistent node");
  ++messages_;
  wire_.push_back(InFlight{rounds_ + cfg_.latency, dest_node, p,
                           {words.begin(), words.end()}});
}

std::uint64_t MultiMachine::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& m : nodes_) total += m->instructions_executed();
  return total;
}

RunStatus MultiMachine::run() {
  for (rounds_ = 0; rounds_ < cfg_.max_rounds; ++rounds_) {
    // Deliver everything whose flight time has elapsed (FIFO per wire).
    while (!wire_.empty() && wire_.front().deliver_round <= rounds_) {
      const InFlight& m = wire_.front();
      nodes_[static_cast<std::size_t>(m.dest)]->deliver(m.p, m.words);
      wire_.pop_front();
    }
    bool progress = false;
    for (auto& m : nodes_) {
      if (m->is_idle()) continue;
      RunStatus s = m->run_steps(1);
      if (s == RunStatus::Halted) {
        halt_value_ = m->halt_value();
        halted_node_ = m->node_id();
        return RunStatus::Halted;
      }
      // Budget(1) == executed an instruction; Deadlock == went idle.
      progress = true;
      (void)s;
    }
    if (!progress && wire_.empty()) return RunStatus::Deadlock;
  }
  return RunStatus::Budget;
}

}  // namespace jtam::mdp
