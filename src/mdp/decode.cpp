#include "mdp/decode.h"

namespace jtam::mdp {

void DecodedCache::decode_section(const std::vector<Instr>& code,
                                  mem::Addr base, std::vector<Uop>& out) {
  out.clear();
  out.reserve(code.size() + 1);
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    Uop u;
    u.token = static_cast<std::uint16_t>(in.op);
    u.rd = in.rd;
    u.rs = in.rs;
    u.rt = in.rt;
    u.addr = base + static_cast<mem::Addr>(i) * mem::kWordBytes;
    u.imm = as_u(in.imm);
    u.off = as_u(in.off);
    u.handler = labels_ != nullptr ? labels_[u.token] : nullptr;
    out.push_back(u);
  }
  // Sentinel: executing past the last instruction of the section raises the
  // classic unmapped-fetch fault at exactly this address.
  Uop guard;
  guard.token = kTokFault;
  guard.addr = base + static_cast<mem::Addr>(code.size()) * mem::kWordBytes;
  guard.handler = labels_ != nullptr ? labels_[kTokFault] : nullptr;
  out.push_back(guard);
}

void DecodedCache::ensure(const CodeImage& image, const void* const* labels) {
  if (valid_ && labels_ == labels) return;
  labels_ = labels;
  sys_n_ = image.sys_code.size();
  user_n_ = image.user_code.size();
  decode_section(image.sys_code, mem::kSysCodeBase, sys_);
  decode_section(image.user_code, mem::kUserCodeBase, user_);
  // Second pass: resolve direct branch targets now that both sections are
  // at their final addresses.  An unresolvable target stays null — the
  // fault fires only if the branch is *taken*, matching the classic
  // engine, which only ever faults on the fetch it actually performs.
  for (std::vector<Uop>* sec : {&sys_, &user_}) {
    for (Uop& u : *sec) {
      switch (static_cast<Op>(u.token)) {
        case Op::Br:
        case Op::Brz:
        case Op::Brnz:
        case Op::Call:
          u.targ = lookup(u.imm);
          break;
        default:
          break;
      }
    }
  }
  valid_ = true;
}

}  // namespace jtam::mdp
