// The simulated Message-Driven Processor.
//
// A uniprocessor J-Machine node: two priority levels with banked register
// files, a 4 KB hardware message queue per level living in the sys-data
// region of memory, dispatch-on-suspend, and preemption of low-priority
// computation by high-priority message arrival (gated by EINT/DINT).
//
// Every executed instruction produces a fetch event, and every memory
// access a read/write event, on the attached TraceSink; the experiment
// driver fans these into the cache bank and the granularity metrics.  This
// mirrors the paper's method: "an instruction simulator was used to produce
// more detailed statistics, specifically on memory access and granularity"
// (§3), whose traces feed the cache simulator (§3.3).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "mdp/assembler.h"
#include "mdp/decode.h"
#include "mdp/isa.h"
#include "mdp/placement.h"
#include "mem/memory_map.h"

namespace jtam::mdp {

/// Receives one callback per architectural event.  Implementations must be
/// cheap; they run once per simulated instruction/access.
///
/// This is the exact-interleaving interface: consumers that need the full
/// order of fetches vs data accesses (e.g. examples/scheduling_trace.cpp)
/// attach one with Machine::set_sink.  The experiment pipeline uses the
/// batched TraceBuffer below instead, which the machine appends to without
/// a virtual call per event; driver/trace_buffer.h provides the consumers,
/// including a compatibility adapter that replays blocks into a TraceSink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_fetch(Addr addr, Priority level) = 0;
  virtual void on_read(Addr addr, Priority level) = 0;
  virtual void on_write(Addr addr, Priority level) = 0;
  virtual void on_mark(MarkKind kind, std::uint32_t aux, Priority level) {
    (void)kind; (void)aux; (void)level;
  }
};

class TraceBuffer;

/// Consumes one full TraceBuffer block at a time — a single virtual call
/// per ~2^15 events instead of one per event.
class TraceDrain {
 public:
  virtual ~TraceDrain() = default;
  /// The buffer is cleared by the caller after this returns.
  virtual void on_block(const TraceBuffer& buf) = 0;
};

/// Packed SoA buffer of trace events.  The machine appends events inline;
/// when a stream reaches the block size, the whole block is handed to the
/// drain at once and the buffer restarts empty.  Both code and data
/// addresses are word-aligned, so bits 0-1 carry event metadata:
///
///   fetch word = code addr | level             (bit 0: priority level)
///   data  word = data addr | is_write | level << 1
///
/// Marks (scheduling instrumentation) are rare; each records its position
/// in the fetch stream so a replay can reproduce the exact fetch/mark
/// interleaving that granularity accounting depends on, and its position
/// in the data stream so observability consumers can attribute data
/// accesses to the mark-delimited context they occurred in.  Reads and
/// writes keep their own relative order in `data`; their interleaving with
/// fetches is not preserved (no consumer of the batched path needs it —
/// cache configurations are split I/D and access counting is
/// order-independent).
class TraceBuffer {
 public:
  struct Mark {
    std::uint32_t fetch_pos;  // index into fetch() where the mark occurred
    std::uint32_t data_pos;   // index into data() where the mark occurred
    std::uint32_t aux;
    std::uint8_t kind;        // MarkKind
    std::uint8_t level;       // Priority
  };

  explicit TraceBuffer(TraceDrain* drain, std::size_t block_events = 1u << 15)
      : drain_(drain), block_(block_events) {
    fetch_.reserve(block_);
    data_.reserve(block_);
  }

  void add_fetch(Addr a, Priority p) {
    fetch_.push_back(a | static_cast<std::uint32_t>(p));
    if (fetch_.size() >= block_) flush();
  }
  void add_read(Addr a, Priority p) {
    data_.push_back(a | (static_cast<std::uint32_t>(p) << 1));
    if (data_.size() >= block_) flush();
  }
  void add_write(Addr a, Priority p) {
    data_.push_back(a | 1u | (static_cast<std::uint32_t>(p) << 1));
    if (data_.size() >= block_) flush();
  }
  void add_mark(MarkKind k, std::uint32_t aux, Priority p) {
    marks_.push_back(Mark{static_cast<std::uint32_t>(fetch_.size()),
                          static_cast<std::uint32_t>(data_.size()), aux,
                          static_cast<std::uint8_t>(k),
                          static_cast<std::uint8_t>(p)});
  }

  /// Hand the current block to the drain and restart empty.  The driver
  /// calls this once more after the run for the final partial block.
  void flush() {
    if (drain_ != nullptr &&
        (!fetch_.empty() || !data_.empty() || !marks_.empty())) {
      drain_->on_block(*this);
    }
    fetch_.clear();
    data_.clear();
    marks_.clear();
  }

  const std::vector<std::uint32_t>& fetch() const { return fetch_; }
  const std::vector<std::uint32_t>& data() const { return data_; }
  const std::vector<Mark>& marks() const { return marks_; }

 private:
  TraceDrain* drain_;
  std::size_t block_;
  std::vector<std::uint32_t> fetch_;
  std::vector<std::uint32_t> data_;
  std::vector<Mark> marks_;
};

/// Delivery interface for multi-node configurations: SENDE hands remote
/// messages to the network instead of the local queue.  Implemented by
/// mdp::MultiMachine; single-node machines never touch it.
class NetworkPort {
 public:
  virtual ~NetworkPort() = default;
  /// False when `src_node`'s injection channel for priority `p` toward
  /// `dest_node` is full; the machine then stalls the SENDE (no
  /// instruction executes, the ip does not advance) and retries next step,
  /// counting the step as an injection-stall cycle.  The destination
  /// matters only to aggregating networks (net::AggregateNetwork keys its
  /// coalescing buffers by destination); the wire and mesh ignore it.
  /// Default: never backpressure.
  virtual bool can_accept(int src_node, int dest_node, Priority p) {
    (void)src_node;
    (void)dest_node;
    (void)p;
    return true;
  }
  /// `flow_id` is the causal-trace id assigned by the FlowProbe for this
  /// message (0 when tracing is off); the network carries it with the
  /// packet so transit events can be attributed to the message.
  virtual void send(int src_node, int dest_node, Priority p,
                    std::span<const std::uint32_t> words,
                    std::uint64_t flow_id) = 0;
};

/// Causal-flow instrumentation seam (obs::FlowTracer).  A probe attached
/// with Machine::set_flow observes every message lifecycle event on this
/// node: sends (with stall accounting), dispatches, per-message handler
/// instruction counts, marks, and halt.  Zero-cost when absent — every
/// hook site is a single null-pointer test — and hooks never touch
/// measured state, so results are bit-identical with a probe attached
/// (tests/flow_test.cpp).
class FlowProbe {
 public:
  virtual ~FlowProbe() = default;
  /// Host-side inject before the run (a boot message): a causal root.
  virtual void on_boot(int node, Priority p,
                       std::span<const std::uint32_t> words) = 0;
  /// A SENDE enqueued `words` into this node's own queue for level `p`;
  /// the sender was the handler running at `sender_level`.
  virtual void on_local_send(int node, Priority p, Priority sender_level,
                             std::span<const std::uint32_t> words) = 0;
  /// A SENDE was accepted by the network.  Returns the flow id to carry
  /// with the packet (0 = untracked).
  virtual std::uint64_t on_remote_send(int node, int dest_node, Priority p,
                                       Priority sender_level,
                                       std::span<const std::uint32_t> words)
      = 0;
  /// A step burned waiting for the network to accept a SENDE composed at
  /// `sender_level` (mirrors ++injection_stall_cycles).
  virtual void on_send_stall(int node, Priority sender_level) = 0;
  /// Dispatch pulled the oldest queued message at level `p`.
  virtual void on_dispatch(int node, Priority p) = 0;
  /// SUSPEND consumed the current message at level `p` (handler done).
  virtual void on_consume(int node, Priority p) = 0;
  /// One instruction executed at level `p`, charged to that level's
  /// current message (mirrors ++instr_count_).
  virtual void on_instruction(int node, Priority p) = 0;
  /// A compiler-planted MARK executed while handling the current message.
  virtual void on_probe_mark(int node, MarkKind kind, std::uint32_t aux,
                             Priority p) = 0;
  /// HALT executed at level `p`.
  virtual void on_halt(int node, Priority p) = 0;
};

class Machine {
 public:
  struct Config {
    std::uint32_t queue_bytes = mem::kQueueBytes;  // per priority level
    std::uint64_t max_instructions = 2'000'000'000ULL;
    // Multi-node: this node's id and the machine count.  User-data
    // addresses carry the owning node in the bits at `node_shift` and up
    // (mem::NodeCodec); sys-data and code are per-node private and never
    // carry node bits.  The default shift 24 is the seed layout (node in
    // bits 24+, 12 MB local user window); narrower shifts shrink the
    // per-node window to 2^shift bytes so 512-8184 node ensembles fit in
    // 32-bit addresses.
    int node_id = 0;
    int num_nodes = 1;
    std::uint32_t node_shift = mem::kNodeShiftDefault;
    /// SENDDR frame-placement policy (mdp/placement.h).  The default
    /// round-robin policy is bit-identical to the seed's hard-coded
    /// counter (tests/aggregate_test.cpp pins this).
    PlacementConfig placement;
  };

  explicit Machine(CodeImage image) : Machine(std::move(image), Config{}) {}
  Machine(CodeImage image, Config cfg);

  // --- host (pre-run) operations; no trace events -----------------------
  /// Enqueue a message as if it arrived from the network.
  void inject(Priority p, std::span<const std::uint32_t> words);
  std::uint32_t load_word(Addr a) const;
  void store_word(Addr a, std::uint32_t v);
  bool tag(Addr a) const;
  void set_tag(Addr a, bool present);
  /// Reserve [base, limit) in user data for deferred-read nodes.
  void set_defer_pool(Addr base, Addr limit);
  /// Overwrite one instruction of the loaded image (host-side code write;
  /// data-path stores can never reach code regions).  Invalidates the
  /// decoded micro-op cache so the next step re-decodes.
  void patch_code(Addr a, const Instr& in);
  /// Replace the whole code image (program (re)load).  Invalidates the
  /// decoded micro-op cache; data memory and machine state are untouched.
  void load_image(CodeImage image);

  // --- execution ---------------------------------------------------------
  /// Select the interpreter engine.  Decoded (default) and Classic are
  /// bit-identical in every architectural and measured respect
  /// (tests/interp_test.cpp); Classic is the seed loop kept as the
  /// equivalence baseline.
  void set_dispatch(DispatchKind d) { dispatch_ = d; }
  DispatchKind dispatch() const { return dispatch_; }
  void set_sink(TraceSink* sink) { sink_ = sink; }
  /// Attach a batched trace buffer.  When set, it takes precedence over the
  /// per-event sink: events are appended inline and delivered to the
  /// buffer's drain one block at a time.
  void set_trace_buffer(TraceBuffer* buf) { tbuf_ = buf; }
  /// Emit synthetic Dispatch/Suspend queue-occupancy marks.  Off by
  /// default: only observability consumers read them (they are no-ops for
  /// every measured statistic), so measurement-only runs skip the
  /// per-dispatch work entirely.
  void set_queue_marks(bool on) { queue_marks_ = on; }
  void set_network(NetworkPort* net) { net_ = net; }
  /// Attach a causal-flow probe (obs::FlowTracer).  Must be attached
  /// before boot messages are injected so the causal roots are observed.
  void set_flow(FlowProbe* flow) { flow_ = flow; }
  /// Network delivery of an arriving message (multi-node): buffered into
  /// queue memory with trace events, exactly like a local SENDE.
  void deliver(Priority p, std::span<const std::uint32_t> words) {
    enqueue(p, words, p, /*emit_events=*/true);
  }
  /// True when both levels are suspended with empty queues (nothing to do
  /// until a message arrives).
  bool is_idle() const {
    return !levels_[0].active && !levels_[1].active &&
           queues_[0].records.empty() && queues_[1].records.empty();
  }
  int node_id() const { return cfg_.node_id; }
  RunStatus run();
  /// Execute at most `n` instructions (for unit tests); returns the status
  /// if the machine stopped, or RunStatus::Budget if `n` ran out first.
  RunStatus run_steps(std::uint64_t n);

  // --- inspection ---------------------------------------------------------
  bool halted() const { return halted_; }
  std::uint32_t halt_value() const { return halt_value_; }
  std::uint64_t instructions_executed() const { return instr_count_; }
  std::uint64_t instructions_executed(Priority p) const {
    return instr_by_level_[static_cast<int>(p)];
  }
  /// Steps burned waiting for the network to accept a SENDE (injection
  /// backpressure), and how many distinct sends were rejected at least
  /// once before the network took them.
  std::uint64_t injection_stall_cycles() const {
    return injection_stall_cycles_;
  }
  std::uint64_t stalled_sends() const { return stalled_sends_; }
  /// The node/local address split this machine runs under (seed: shift 24).
  const mem::NodeCodec& node_codec() const { return codec_; }
  /// True when a causal-flow probe / per-event trace attachment is live.
  /// The parallel multi-node engine uses these to fall back to the serial
  /// loop: per-instruction callbacks may not fire from worker threads.
  bool has_flow() const { return flow_ != nullptr; }
  bool has_trace_attachment() const {
    return sink_ != nullptr || tbuf_ != nullptr;
  }

  /// Snapshot of every counter a MultiRunResult can observe per node.  The
  /// windowed parallel engine (mdp/parmulti.cpp) saves one per node per
  /// round and restores it when a mid-window halt means the serial loop
  /// would not have executed that node's later rounds.
  struct CounterSnapshot {
    std::uint64_t instr_count = 0;
    std::uint64_t instr_low = 0;
    std::uint64_t instr_high = 0;
    std::uint64_t injection_stall_cycles = 0;
    std::uint64_t stalled_sends = 0;
    bool inj_stalled = false;
  };
  CounterSnapshot save_counters() const {
    return {instr_count_,    instr_by_level_[0],
            instr_by_level_[1], injection_stall_cycles_,
            stalled_sends_,  inj_stalled_};
  }
  void restore_counters(const CounterSnapshot& s) {
    instr_count_ = s.instr_count;
    instr_by_level_[0] = s.instr_low;
    instr_by_level_[1] = s.instr_high;
    injection_stall_cycles_ = s.injection_stall_cycles;
    stalled_sends_ = s.stalled_sends;
    inj_stalled_ = s.inj_stalled;
  }
  std::uint32_t reg(Priority p, Reg r) const {
    return levels_[static_cast<int>(p)].regs[r];
  }
  void set_reg(Priority p, Reg r, std::uint32_t v) {
    levels_[static_cast<int>(p)].regs[r] = v;
  }
  Addr ip(Priority p) const { return levels_[static_cast<int>(p)].ip; }
  bool level_active(Priority p) const {
    return levels_[static_cast<int>(p)].active;
  }
  bool interrupts_enabled() const { return levels_[0].int_enabled; }
  std::size_t queue_depth(Priority p) const {
    return queues_[static_cast<int>(p)].records.size();
  }
  std::uint32_t queue_used_bytes(Priority p) const {
    return queues_[static_cast<int>(p)].used_bytes;
  }
  /// Peak queue occupancy seen so far (bytes), for overflow-margin reports.
  std::uint32_t queue_high_water(Priority p) const {
    return queues_[static_cast<int>(p)].high_water;
  }
  const CodeImage& image() const { return image_; }

 private:
  struct Level {
    std::uint32_t regs[kNumRegs] = {};
    Addr ip = 0;
    Addr mb = 0;  // message base of the message being handled
    bool active = false;
    bool int_enabled = true;  // meaningful at low priority only
    // Message being composed by SENDH/SENDL ... SENDE.
    bool composing = false;
    Priority compose_dest = Priority::Low;
    int compose_node = 0;  // destination node (multi-node)
    std::vector<std::uint32_t> compose_words;
  };

  struct MsgRec {
    Addr offset = 0;          // address of word 0 in the queue region
    std::uint32_t len = 0;    // words
    std::uint32_t pad = 0;    // bytes skipped before this message
  };

  struct Queue {
    Addr base = 0;
    std::uint32_t bytes = 0;
    Addr head = 0;  // address of the oldest message (absolute)
    Addr tail = 0;  // address where the next message will be placed
    std::uint32_t used_bytes = 0;
    std::uint32_t high_water = 0;
    std::deque<MsgRec> records;
    bool empty() const { return records.empty(); }
  };

  Level& level(Priority p) { return levels_[static_cast<int>(p)]; }
  Queue& queue(Priority p) { return queues_[static_cast<int>(p)]; }

  const Instr& code_at(Addr a) const;
  /// Deliver an instrumentation mark to whichever trace attachment is live.
  void emit_mark(MarkKind k, std::uint32_t aux, Priority p) {
    if (tbuf_ != nullptr) {
      tbuf_->add_mark(k, aux, p);
    } else if (sink_ != nullptr) {
      sink_->on_mark(k, aux, p);
    }
  }
  /// Out-of-line: sample queue occupancy into a Dispatch/Suspend mark.
  /// Kept off the dispatch hot path behind the queue_marks_ test.
  void emit_queue_sample(MarkKind k, Priority p);
  /// Data-address validation, inline fast path: the aligned, in-region,
  /// right-node case falls through; everything else takes the out-of-line
  /// throwing path, which rebuilds the precise diagnosis.
  void check_data_addr(Addr a) const {
    if ((a & 3u) == 0) {
      // Sys-data addresses never carry node bits, so the raw-range test is
      // exact.  (At the seed shift 24 this is provably the seed's
      // `local in sys-range && node == 0` check: sys-data lies below 2^24,
      // so node bits and local split are the identity there.)
      if (a >= mem::kSysDataBase && a < mem::kSysDataLimit) {
        return;
      }
      if (codec_.local_of(a) >= mem::kUserDataBase &&
          codec_.local_of(a) < codec_.user_limit &&
          static_cast<int>(codec_.node_of(a)) == cfg_.node_id) {
        return;
      }
    }
    data_addr_fault(a);
  }
  [[noreturn]] void data_addr_fault(Addr a) const;

  /// Node-local byte address of a validated data address: sys-data is
  /// node-private and carries no node bits; user data goes through the
  /// codec.  At the seed shift 24 both branches equal `a & 0xFFFFFF`.
  Addr local_data_addr(Addr a) const {
    return a < mem::kUserDataBase ? a : codec_.local_of(a);
  }

  std::uint32_t mem_read(Addr a, Priority lvl, bool emit_event = true) {
    check_data_addr(a);
    const Addr local = local_data_addr(a);
    if (emit_event) {
      if (tbuf_ != nullptr) {
        tbuf_->add_read(local, lvl);
      } else if (sink_ != nullptr) {
        sink_->on_read(local, lvl);
      }
    }
    return memory_[local / mem::kWordBytes];
  }
  void mem_write(Addr a, std::uint32_t v, Priority lvl,
                 bool emit_event = true) {
    check_data_addr(a);
    const Addr local = local_data_addr(a);
    if (emit_event) {
      if (tbuf_ != nullptr) {
        tbuf_->add_write(local, lvl);
      } else if (sink_ != nullptr) {
        sink_->on_write(local, lvl);
      }
    }
    memory_[local / mem::kWordBytes] = v;
  }

  void enqueue(Priority p, std::span<const std::uint32_t> words,
               Priority sender_level, bool emit_events);
  void dispatch(Priority p);
  void consume_current(Priority p);

  /// Choose the level to execute next; dispatches as needed.  Returns
  /// nullptr when the machine is idle.
  Level* pick();
  void exec(Level& lv, Priority p);

  /// The seed per-step fetch/decode/switch loop (DispatchKind::Classic).
  RunStatus run_steps_classic(std::uint64_t n);
  /// The decoded micro-op engine with token-threaded dispatch and
  /// superblock chaining (DispatchKind::Decoded, src/mdp/dispatch.cpp).
  RunStatus run_steps_decoded(std::uint64_t n);
  /// Raise the classic instruction-fetch fault for address `a` (alignment
  /// first, then unmapped — same messages as code_at).
  [[noreturn]] void fault_fetch(Addr a) const;

  std::size_t tag_index(Addr a) const;

  CodeImage image_;
  Config cfg_;
  mem::NodeCodec codec_;
  DispatchKind dispatch_ = DispatchKind::Decoded;
  DecodedCache dcache_;
  std::vector<std::uint32_t> memory_;    // word-indexed flat memory
  std::vector<bool> tags_;               // presence tags over user data
  std::unordered_map<Addr, Addr> defer_heads_;
  Addr defer_bump_ = 0;
  Addr defer_limit_ = 0;

  Level levels_[2];  // [0]=Low, [1]=High
  Queue queues_[2];

  TraceSink* sink_ = nullptr;
  TraceBuffer* tbuf_ = nullptr;
  bool queue_marks_ = false;
  NetworkPort* net_ = nullptr;
  FlowProbe* flow_ = nullptr;
  std::unique_ptr<PlacementPolicy> placement_;  // SENDDR destination choice
  bool halted_ = false;
  std::uint32_t halt_value_ = 0;
  std::uint64_t instr_count_ = 0;
  std::uint64_t instr_by_level_[2] = {0, 0};
  std::uint64_t injection_stall_cycles_ = 0;
  std::uint64_t stalled_sends_ = 0;
  bool inj_stalled_ = false;  // current SENDE has been rejected at least once
};

}  // namespace jtam::mdp
