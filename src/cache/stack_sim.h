// Single-pass multi-configuration LRU cache simulation (Mattson stack
// distances with set refinement).
//
// The classic CacheBank fans every reference out to ~24 independent
// SetAssocCache instances, paying O(configs) work per event.  This module
// computes the same counts in one pass per reference stream:
//
//  * All configurations sharing a block size form one *group*.  Within a
//    group every set mapping is a power-of-two mask of the block number, so
//    the mappings are nested: blocks that share a set under S sets also
//    share one under any S' < S ("set refinement").
//  * Per set mapping the simulator keeps true-LRU recency order.  An A-way
//    set of that mapping holds exactly the A most recently used blocks of
//    the set (the LRU inclusion property), so an access at recency position
//    p hits every configuration with assoc > p and misses the rest — one
//    bounded scan (at most max-assoc entries) replaces a probe per
//    configuration, and one `hits_at_pos` histogram per mapping yields the
//    hit count of every ladder size at that mapping.  Because no
//    configuration of the mapping can see deeper than max-assoc, each set
//    stores only its max-assoc most recent blocks, in recency order, as a
//    small flat array — blocks that fall off the end simply drop out, and a
//    returning block is indistinguishable from a brand-new one (it misses
//    everywhere and refills clean on a read / dirty on a write either way).
//    The flat rows replace the per-access hash lookup and the intrusive
//    linked-list walks of the earlier engine with a few contiguous words
//    per mapping, which is where this engine's speed comes from.
//  * Write-backs fall out of the same pass via a per-entry *clean limit*
//    (Thompson & Smith's dirty-level technique): after a write the limit is
//    0; each read at recency position p raises it to max(limit, p), because
//    configurations with assoc <= p just refilled the block clean while
//    larger ones kept the dirty copy.  A block evicted from an A-way
//    configuration (pushed from position A-1 to A) writes back iff
//    A > clean_limit — bit-identical to the classic dirty bit.
//
// Equivalence with SetAssocCache is enforced, not hoped for:
// tests/stacksim_test.cpp pins bit-identical miss/writeback/access counts
// on full workload runs and tests/cache_property_test.cpp cross-checks
// randomized streams, including degenerate single-set geometries.
//
// Sharding: blocks whose numbers differ in the low set bits never share a
// set under any mapping of the group, so the sets can be partitioned by
// low block bits and simulated on separate threads with bit-identical
// results (driver::StackBankConsumer) — the stack analogue of the classic
// engine's shard-by-configuration.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/cache.h"

namespace jtam::cache {

/// Multi-configuration LRU simulator for ONE reference stream (the
/// instruction or the data side) at ONE block size, optionally restricted
/// to a power-of-two shard of the sets.  Feed it every access of the
/// stream; it answers with per-configuration CacheStats identical to a
/// SetAssocCache per configuration.
class StackStream {
 public:
  /// `configs` must be non-empty and share one block size.  `shard` /
  /// `num_shards` restrict this instance to blocks with
  /// (block & (num_shards - 1)) == shard; num_shards must be a power of
  /// two not exceeding the smallest set count of the group.
  StackStream(const std::vector<CacheConfig>& configs, std::uint32_t shard,
              std::uint32_t num_shards);

  /// Simulate one access (no-op when the block is outside this shard).
  void access(std::uint32_t addr, bool is_write) {
    const std::uint32_t block = addr >> block_shift_;
    if ((block & shard_mask_) != shard_) return;
    ++accesses_;
    if (block == mru_block_) {  // hit at recency position 0 of every mapping
      ++mru_repeats_;
      if (is_write && !mru_dirty_) mark_mru_dirty();
      return;
    }
    access_slow(block, is_write);
  }

  /// Batched instruction-fetch stream in mdp::TraceBuffer encoding (bit 0
  /// carries the priority level; the block shift discards it).  The
  /// batched feeds run MRU filtering and the per-mapping updates as two
  /// separate passes (see replay()), bit-identical to per-event access().
  void fetch_block(const std::uint32_t* words, std::size_t n);

  /// Batched data stream in mdp::TraceBuffer encoding (bit 0 = is_write,
  /// bit 1 = priority level).
  void data_block(const std::uint32_t* words, std::size_t n);

  /// Counts for configuration `c` (index into the constructor's vector),
  /// restricted to this shard's accesses.
  CacheStats stats_for(std::size_t c) const;

  const std::vector<CacheConfig>& configs() const { return configs_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// One set mapping (a distinct set count within the group).  `blocks`
  /// holds, per set, the set's amax most recent blocks in recency order
  /// (row stride amax, kNil only at the tail) and `limits` the parallel
  /// clean limits.  The LRU inclusion property makes this window lossless:
  /// a block pushed past position amax-1 can never hit again, and when it
  /// returns its refill state (clean on read, dirty on write) is exactly a
  /// fresh insert's, so forgetting it changes no count.
  struct Mapping {
    std::uint32_t set_mask = 0;  // num_sets - 1
    std::uint32_t amax = 0;      // largest assoc among configs here
    /// Writeback-check pattern for the vector kernel: k in 1..3 means
    /// `assocs` is the last k of {1, 2, 4} (the paper ladder's amax-4
    /// shapes), letting the checks unroll with compile-time ways; 0 means
    /// any other shape (generic loop).
    std::uint32_t pat = 0;
    std::vector<std::uint32_t> assocs;  // ascending, one per config
    std::vector<std::uint32_t> cfg_of;  // config index per `assocs` entry
    /// Per set, one contiguous row of 2*amax words: the amax recency
    /// slots, then their clean limits.  Interleaving keeps each set's
    /// whole state on one cache line (32 bytes for the ladder's amax 4).
    std::vector<std::uint32_t> rows;
    /// [recency position] < amax, plus one trailing dummy slot that
    /// absorbs unconditional increments on misses (never read back).
    std::vector<std::uint64_t> hits_at_pos;
  };

  void apply(Mapping& mp, std::uint32_t block, bool is_write);
  void access_slow(std::uint32_t block, bool is_write);
  void mark_mru_dirty();
  /// Pass 2 over slow_[0..n), starting at maps_[2] — pass 1 keeps the two
  /// coarsest mappings live.  `pos0` is the number of accesses pass 1
  /// filtered at mapping 1's position 0; they are position-0 hits at every
  /// finer mapping too.  RW says whether the batch can contain writes or
  /// dirty marks: the instruction stream never does (fetches are reads),
  /// so its replay compiles without the mark and dirty-conversion logic
  /// entirely.
  template <bool RW>
  void replay(std::size_t n, std::uint64_t pos0);
  /// One mapping's replay pass over slow_[0..n).  Compacts the list in
  /// place (position-0 reads drop out, position-0 writes become marks) and
  /// returns {entries kept, position-0 hits filtered out}.
  std::pair<std::size_t, std::uint64_t> replay_one(Mapping& mp,
                                                   std::size_t n);
  /// Vector variant for amax == 4; PAT is the mapping's `pat`.
  template <int PAT, bool RW>
  std::pair<std::size_t, std::uint64_t> replay_sse4(Mapping& mp,
                                                    std::size_t n);

  std::uint32_t block_shift_ = 0;
  std::uint32_t shard_ = 0;
  std::uint32_t shard_mask_ = 0;
  std::uint32_t mru_block_ = kNil;  // block of the last access in-shard
  bool mru_dirty_ = false;
  std::uint64_t accesses_ = 0;
  std::uint64_t mru_repeats_ = 0;  // position-0 hits taken on the fast path

  std::vector<CacheConfig> configs_;
  struct CfgLoc {
    std::uint32_t map;
    std::uint32_t assoc;
  };
  std::vector<CfgLoc> cfg_loc_;        // per config: its mapping + ways
  std::vector<Mapping> maps_;
  std::vector<std::uint64_t> writebacks_;  // per config
  /// Batched-feed scratch: the accesses that survived the MRU filter, in
  /// order, packed (block << 2) | dirty_mark << 1 | is_write.  Used as a
  /// raw buffer — sized to the largest batch once, entry count passed to
  /// replay() explicitly — so pass 1 appends with a bare pointer instead
  /// of push_back.
  std::vector<std::uint64_t> slow_;
};

/// Drop-in engine behind the cache ladder: same configuration list and
/// per-config CacheStats as a CacheBank, computed by stack simulation.
/// Configurations may span several block sizes; each block size becomes an
/// independent group, so one machine pass can feed a whole block-size
/// sweep (driver::run_blocksize_sweep).
class StackSimBank {
 public:
  /// `shards_hint` bounds the per-group set sharding (rounded down to a
  /// power of two capped by the group's smallest set count); 1 = serial.
  explicit StackSimBank(const std::vector<CacheConfig>& configs,
                        unsigned shards_hint = 1);

  std::size_t size() const { return configs_.size(); }
  const std::vector<CacheConfig>& configs() const { return configs_; }

  /// Counts for configuration i, summed over shards — bit-identical to the
  /// same stream driven through a SetAssocCache pair.
  CacheStats istats(std::size_t i) const;
  CacheStats dstats(std::size_t i) const;

  /// Per-event feeds (tests and single-stepping; the batched path below is
  /// the hot one).
  void on_fetch(std::uint32_t addr);
  void on_data(std::uint32_t addr, bool is_write);

  /// Batched consumption is split into independent tasks, one per
  /// (group, stream, set shard) — disjoint state, so any subset may run on
  /// separate threads with bit-identical results.
  std::size_t num_tasks() const { return tasks_.size(); }
  void run_task(std::size_t t, const std::uint32_t* fetch_words,
                std::size_t nf, const std::uint32_t* data_words,
                std::size_t nd);

 private:
  struct Group {
    std::vector<StackStream> ishards, dshards;
  };
  struct Task {
    std::uint32_t group;
    std::uint32_t shard;
    bool data;
  };

  std::vector<CacheConfig> configs_;
  std::vector<Group> groups_;
  std::vector<Task> tasks_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> loc_;  // (group, local)
};

}  // namespace jtam::cache
