// CacheBank: simulate many cache configurations in a single pass.
//
// The paper runs each (program, implementation) pair once on the instruction
// simulator and feeds the reference stream into a cache simulator at many
// geometries.  Storing multi-million-event traces is wasteful, so the bank
// holds every configuration live and fans each fetch/read/write event out to
// all of them.  Each configuration owns a split instruction/data pair, as in
// the paper ("in all cases, we specified separate instruction and write-back
// data caches").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"

namespace jtam::cache {

/// The paper's full ladder as a plain configuration list: sizes 1K-128K x
/// associativity 1/2/4 at one block size, associativity-major.  Every cache
/// engine (CacheBank, StackSimBank) builds from this one list so their
/// configuration order — and therefore driver::RunResult::cache — matches.
std::vector<CacheConfig> paper_ladder(std::uint32_t block_bytes = 64);

/// One simulated split I/D cache pair.
struct SplitCache {
  explicit SplitCache(const CacheConfig& cfg) : icache(cfg), dcache(cfg) {}
  SetAssocCache icache;
  SetAssocCache dcache;
};

class CacheBank {
 public:
  /// Build a bank with one split pair per configuration.
  explicit CacheBank(const std::vector<CacheConfig>& configs);

  /// The full ladder of the paper: sizes 1K-128K x associativity 1/2/4 at a
  /// given block size (64 B unless overridden — the size at which both
  /// systems performed best, §3.3).
  static CacheBank paper_bank(std::uint32_t block_bytes = 64);

  void on_fetch(std::uint32_t addr) {
    for (auto& c : caches_) c.icache.read(addr);
  }
  void on_data(std::uint32_t addr, bool is_write) {
    for (auto& c : caches_) c.dcache.access(addr, is_write);
  }

  /// Batched consumption for the configurations in [begin, end): each
  /// config's I-cache runs the whole fetch stream, then its D-cache the
  /// whole data stream (mdp::TraceBuffer word encodings).  Block-major
  /// order keeps one cache's metadata hot instead of touching all ~24
  /// configurations per event, and disjoint config ranges share no state,
  /// so ranges can run on separate threads with bit-identical results.
  void consume_block_range(std::size_t begin, std::size_t end,
                           const std::uint32_t* fetch_words, std::size_t nf,
                           const std::uint32_t* data_words, std::size_t nd) {
    for (std::size_t c = begin; c < end; ++c) {
      caches_[c].icache.fetch_block(fetch_words, nf);
      caches_[c].dcache.data_block(data_words, nd);
    }
  }

  std::size_t size() const { return caches_.size(); }
  const SplitCache& at(std::size_t i) const { return caches_[i]; }

  /// Index of the configuration matching (size, assoc); throws if absent.
  /// O(1): the constructor precomputes a (size, assoc) -> index map, since
  /// report code calls this per metric inside sweep loops.
  std::size_t find(std::uint32_t size_bytes, std::uint32_t assoc) const;

  const std::vector<CacheConfig>& configs() const { return configs_; }

 private:
  static std::uint64_t index_key(std::uint32_t size_bytes,
                                 std::uint32_t assoc) {
    return (static_cast<std::uint64_t>(size_bytes) << 32) | assoc;
  }

  std::vector<CacheConfig> configs_;
  std::vector<SplitCache> caches_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace jtam::cache
