#include "cache/cache.h"

#include <bit>
#include <sstream>

#include "support/error.h"

namespace jtam::cache {

namespace {
bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

std::string CacheConfig::name() const {
  std::ostringstream os;
  os << (size_bytes >= 1024 ? size_bytes / 1024 : size_bytes)
     << (size_bytes >= 1024 ? "K" : "B") << "/" << assoc << "-way/"
     << block_bytes << "B";
  return os.str();
}

void CacheConfig::validate() const {
  JTAM_CHECK(is_pow2(size_bytes), "cache size must be a power of two");
  JTAM_CHECK(is_pow2(block_bytes), "block size must be a power of two");
  JTAM_CHECK(block_bytes >= 4, "block must hold at least one word");
  JTAM_CHECK(is_pow2(assoc), "associativity must be a power of two");
  JTAM_CHECK(size_bytes >= block_bytes * assoc,
             "cache too small for one set of " + std::to_string(assoc) +
                 " blocks of " + std::to_string(block_bytes) + " bytes");
}

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  block_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.block_bytes));
  assoc_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.assoc));
  set_mask_ = cfg_.num_sets() - 1;
  ways_.assign(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.assoc, Way{});
}

void SetAssocCache::reset() {
  for (auto& w : ways_) w = Way{};
  stats_ = CacheStats{};
  mru_block_ = kInvalidTag;
  mru_index_ = 0;
  tick_ = 0;
}

bool SetAssocCache::contains(std::uint32_t addr) const {
  const std::uint32_t block = addr >> block_shift_;
  const std::uint32_t set = block & set_mask_;
  const Way* base = ways_.data() + (static_cast<std::size_t>(set) << assoc_shift_);
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].tag == block) return true;
  }
  return false;
}

std::span<const std::uint32_t> paper_cache_sizes() {
  static constexpr std::uint32_t kSizes[] = {1024,  2048,  4096,  8192,
                                             16384, 32768, 65536, 131072};
  return kSizes;
}

std::span<const std::uint32_t> paper_associativities() {
  static constexpr std::uint32_t kAssocs[] = {1, 2, 4};
  return kAssocs;
}

std::span<const std::uint32_t> paper_miss_penalties() {
  static constexpr std::uint32_t kPenalties[] = {12, 24, 48};
  return kPenalties;
}

}  // namespace jtam::cache
