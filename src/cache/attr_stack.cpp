#include "cache/attr_stack.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "support/error.h"

namespace jtam::cache {

AttrStackStream::AttrStackStream(const std::vector<CacheConfig>& configs,
                                 std::uint32_t num_keys,
                                 std::uint32_t rd_window)
    : num_keys_(num_keys), rd_window_(rd_window), configs_(configs) {
  JTAM_CHECK(!configs_.empty(), "attr stack stream needs at least one config");
  JTAM_CHECK(num_keys_ != 0, "attr stack stream needs at least one key");
  for (const CacheConfig& c : configs_) {
    c.validate();
    JTAM_CHECK(c.block_bytes == configs_[0].block_bytes,
               "attr stack stream configs must share one block size");
  }
  block_shift_ =
      static_cast<std::uint32_t>(std::countr_zero(configs_[0].block_bytes));

  // One Mapping per distinct set count, sorted ascending — the same
  // construction as StackStream so the per-access walk visits identical
  // state in identical order.
  std::vector<std::uint32_t> set_counts;
  set_counts.reserve(configs_.size());
  for (const CacheConfig& c : configs_) set_counts.push_back(c.num_sets());
  std::sort(set_counts.begin(), set_counts.end());
  set_counts.erase(std::unique(set_counts.begin(), set_counts.end()),
                   set_counts.end());

  maps_.resize(set_counts.size());
  cfg_loc_.resize(configs_.size());
  for (std::size_t m = 0; m < set_counts.size(); ++m) {
    Mapping& mp = maps_[m];
    mp.set_mask = set_counts[m] - 1;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> here;  // (assoc, cfg)
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      if (configs_[c].num_sets() != set_counts[m]) continue;
      cfg_loc_[c] = CfgLoc{static_cast<std::uint32_t>(m), configs_[c].assoc};
      here.emplace_back(configs_[c].assoc, static_cast<std::uint32_t>(c));
    }
    std::sort(here.begin(), here.end());
    for (const auto& [assoc, cfg] : here) {
      mp.assocs.push_back(assoc);
      mp.cfg_of.push_back(cfg);
      mp.amax = std::max(mp.amax, assoc);
    }
    mp.rows.assign(static_cast<std::size_t>(set_counts[m]) * 2 * mp.amax, 0);
    for (std::size_t s = 0; s < set_counts[m]; ++s) {
      for (std::uint32_t j = 0; j < mp.amax; ++j) {
        mp.rows[s * 2 * mp.amax + j] = kNil;
      }
    }
    mp.hits_at_pos.assign(
        static_cast<std::size_t>(num_keys_) * (mp.amax + 1), 0);
  }
  accesses_.assign(num_keys_, 0);
  mru_repeats_.assign(num_keys_, 0);
  writebacks_.assign(static_cast<std::size_t>(configs_.size()) * num_keys_,
                     0);
  rd_hist_.assign(static_cast<std::size_t>(num_keys_) * kRdBuckets, 0);
  rd_list_.reserve(rd_window_);
}

void AttrStackStream::record_reuse(std::uint32_t block, std::uint32_t key,
                                   bool mru) {
  if (rd_window_ == 0) return;
  std::uint64_t* hist =
      rd_hist_.data() + static_cast<std::size_t>(key) * kRdBuckets;
  if (mru) {  // block is the window's front: distance 0, nothing moves
    ++hist[0];
    return;
  }
  std::uint32_t d = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(rd_list_.size());
  while (d < n && rd_list_[d] != block) ++d;
  if (d == n) {  // cold or pushed beyond the window
    ++hist[kRdBuckets - 1];
    if (n == rd_window_) rd_list_.pop_back();
  } else {
    const std::uint32_t b =
        d == 0 ? 0
               : std::min<std::uint32_t>(
                     1 + static_cast<std::uint32_t>(std::bit_width(d) - 1),
                     kRdBuckets - 2);
    ++hist[b];
    rd_list_.erase(rd_list_.begin() + d);
  }
  rd_list_.insert(rd_list_.begin(), block);
}

void AttrStackStream::access(std::uint32_t addr, bool is_write,
                             std::uint32_t key) {
  const std::uint32_t block = addr >> block_shift_;
  ++accesses_[key];
  if (block == mru_block_) {  // hit at position 0 of every mapping
    ++mru_repeats_[key];
    record_reuse(block, key, /*mru=*/true);
    if (is_write && !mru_dirty_) mark_mru_dirty();
    return;
  }
  record_reuse(block, key, /*mru=*/false);
  access_slow(block, is_write, key);
}

// Same update sequence as StackStream::apply (see stack_sim.cpp for the
// full commentary), with the hit histogram and the write-back charge
// indexed by the accessing key.
void AttrStackStream::apply(Mapping& mp, std::uint32_t block, bool is_write,
                            std::uint32_t key) {
  const std::uint32_t amax = mp.amax;
  const std::size_t base =
      static_cast<std::size_t>(block & mp.set_mask) * 2 * amax;
  std::uint32_t* blk = mp.rows.data() + base;
  std::uint32_t* lim = blk + amax;

  std::uint32_t p = 0;
  while (p < amax && blk[p] != block && blk[p] != kNil) ++p;
  const bool hit = p < amax && blk[p] == block;
  ++mp.hits_at_pos[static_cast<std::size_t>(key) * (amax + 1) +
                   (hit ? p : amax)];

  for (std::size_t a = 0; a < mp.assocs.size(); ++a) {
    const std::uint32_t A = mp.assocs[a];
    if (A > p) break;
    if (A > lim[A - 1]) {
      ++writebacks_[static_cast<std::size_t>(mp.cfg_of[a]) * num_keys_ + key];
    }
  }

  const std::uint32_t limit =
      is_write ? 0 : (hit ? std::max(lim[p], p) : amax);
  for (std::uint32_t j = hit ? p : amax - 1; j > 0; --j) {
    blk[j] = blk[j - 1];
    lim[j] = lim[j - 1];
  }
  blk[0] = block;
  lim[0] = limit;
}

void AttrStackStream::access_slow(std::uint32_t block, bool is_write,
                                  std::uint32_t key) {
  for (Mapping& mp : maps_) apply(mp, block, is_write, key);
  mru_block_ = block;
  mru_dirty_ = is_write;
}

void AttrStackStream::mark_mru_dirty() {
  for (Mapping& mp : maps_) {
    mp.rows[static_cast<std::size_t>(mru_block_ & mp.set_mask) * 2 * mp.amax +
            mp.amax] = 0;
  }
  mru_dirty_ = true;
}

CacheStats AttrStackStream::stats_for(std::size_t c,
                                      std::uint32_t key) const {
  const CfgLoc loc = cfg_loc_[c];
  const Mapping& mp = maps_[loc.map];
  const std::uint64_t* hp =
      mp.hits_at_pos.data() + static_cast<std::size_t>(key) * (mp.amax + 1);
  std::uint64_t hits = mru_repeats_[key];
  for (std::uint32_t p = 0; p < loc.assoc; ++p) hits += hp[p];
  CacheStats s;
  s.accesses = accesses_[key];
  s.misses = accesses_[key] - hits;
  s.writebacks = writebacks_[c * num_keys_ + key];
  return s;
}

CacheStats AttrStackStream::total_for(std::size_t c) const {
  CacheStats sum;
  for (std::uint32_t k = 0; k < num_keys_; ++k) {
    const CacheStats part = stats_for(c, k);
    sum.accesses += part.accesses;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  return sum;
}

}  // namespace jtam::cache
