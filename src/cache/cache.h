// Set-associative cache simulator.
//
// Models the caches of the paper's evaluation (§3.3): separate instruction
// and write-back data caches, LRU replacement, 1/2/4-way associativity,
// block sizes 8-64 bytes, total sizes 1K-128K.  Instructions take one cycle
// plus the miss penalty on a cache miss; because the two TAM back-ends
// execute different numbers of accesses, the paper compares absolute cycle
// counts, never miss ratios — this module therefore reports raw access and
// miss counts and leaves cycle arithmetic to metrics/cycles.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jtam::cache {

/// Geometry of one cache.  Sizes are powers of two; `assoc` divides the
/// number of blocks.
struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t block_bytes = 64;
  std::uint32_t assoc = 4;

  std::uint32_t num_blocks() const { return size_bytes / block_bytes; }
  std::uint32_t num_sets() const { return num_blocks() / assoc; }
  std::string name() const;

  /// Throws jtam::Error when the geometry is not realizable.
  void validate() const;
};

/// Access/miss counters for one simulated cache.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  // dirty blocks evicted (data caches only)

  std::uint64_t hits() const { return accesses - misses; }
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

/// One set-associative, write-back, write-allocate cache with true LRU
/// replacement.  Tags are full block addresses so aliasing is impossible.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Simulate one access.  Returns true on hit.
  bool access(std::uint32_t addr, bool is_write);

  /// Simulate a read access (convenience for instruction fetch).
  bool read(std::uint32_t addr) { return access(addr, /*is_write=*/false); }

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }

  /// Drop all cached blocks and counters.
  void reset();

  /// True if the block containing `addr` is currently resident.
  bool contains(std::uint32_t addr) const;

 private:
  struct Way {
    std::uint32_t tag = 0;   // block address (addr >> block_shift)
    bool valid = false;
    bool dirty = false;
    std::uint32_t lru = 0;   // smaller == more recently used
  };

  CacheConfig cfg_;
  std::uint32_t block_shift_;
  std::uint32_t set_mask_;
  std::vector<Way> ways_;    // num_sets * assoc, set-major
  CacheStats stats_;
};

/// The per-program cache ladder the paper sweeps: 1K..128K in powers of two.
std::vector<std::uint32_t> paper_cache_sizes();

/// The associativities the paper simulates.
std::vector<std::uint32_t> paper_associativities();

/// The miss penalties (cycles) the paper evaluates.
std::vector<std::uint32_t> paper_miss_penalties();

}  // namespace jtam::cache
