// Set-associative cache simulator.
//
// Models the caches of the paper's evaluation (§3.3): separate instruction
// and write-back data caches, LRU replacement, 1/2/4-way associativity,
// block sizes 8-64 bytes, total sizes 1K-128K.  Instructions take one cycle
// plus the miss penalty on a cache miss; because the two TAM back-ends
// execute different numbers of accesses, the paper compares absolute cycle
// counts, never miss ratios — this module therefore reports raw access and
// miss counts and leaves cycle arithmetic to metrics/cycles.h.
//
// The access path is the hottest loop of the whole reproduction (every
// simulated reference visits ~24 configurations), so it is tuned:
//  * LRU is kept as a monotonically increasing access stamp per way; a hit
//    is one store instead of a rank-shuffling loop, and the eviction victim
//    is the minimum stamp.  Stamp order equals true-LRU recency order, so
//    hit/miss/writeback counts are bit-identical with the classic scheme.
//  * The tag probe runs with a compile-time trip count for the paper's
//    associativities (1/2/4), letting the compiler unroll it.
//  * The most recently touched block short-circuits: consecutive accesses
//    to one block (16 sequential fetches per 64 B block) skip the probe
//    entirely.  Recency order is unchanged — the block is already the MRU
//    way of its set — so eviction behaviour is untouched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jtam::cache {

/// Geometry of one cache.  Sizes are powers of two; `assoc` divides the
/// number of blocks.
struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t block_bytes = 64;
  std::uint32_t assoc = 4;

  std::uint32_t num_blocks() const { return size_bytes / block_bytes; }
  std::uint32_t num_sets() const { return num_blocks() / assoc; }
  std::string name() const;

  /// Throws jtam::Error when the geometry is not realizable.
  void validate() const;
};

/// Access/miss counters for one simulated cache.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  // dirty blocks evicted (data caches only)

  std::uint64_t hits() const { return accesses - misses; }
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

/// One set-associative, write-back, write-allocate cache with true LRU
/// replacement.  Tags are full block addresses so aliasing is impossible.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Simulate one access.  Returns true on hit.
  bool access(std::uint32_t addr, bool is_write) {
    const std::uint32_t block = addr >> block_shift_;
    if (block == mru_block_) {  // repeat access to the last block touched
      ++stats_.accesses;
      if (is_write) ways_[mru_index_].dirty = 1;
      return true;
    }
    return access_slow(block, is_write);
  }

  /// Simulate a read access (convenience for instruction fetch).
  bool read(std::uint32_t addr) { return access(addr, /*is_write=*/false); }

  /// Batched instruction-fetch stream in mdp::TraceBuffer encoding (bit 0
  /// carries the priority level; the block shift discards it).
  void fetch_block(const std::uint32_t* words, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      access(words[i] & ~3u, /*is_write=*/false);
    }
  }

  /// Batched data stream in mdp::TraceBuffer encoding (bit 0 = is_write,
  /// bit 1 = priority level).
  void data_block(const std::uint32_t* words, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      access(words[i] & ~3u, (words[i] & 1u) != 0);
    }
  }

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }

  /// Drop all cached blocks and counters.
  void reset();

  /// True if the block containing `addr` is currently resident.
  bool contains(std::uint32_t addr) const;

 private:
  // Addresses are 24-bit and blocks at least 4 bytes, so real block
  // numbers never reach the sentinel.
  static constexpr std::uint32_t kInvalidTag = 0xFFFFFFFFu;

  struct Way {
    std::uint32_t tag = kInvalidTag;  // block address (addr >> block_shift)
    std::uint32_t dirty = 0;
    std::uint64_t stamp = 0;  // larger == more recently used; unique per way
  };

  bool access_slow(std::uint32_t block, bool is_write);

  template <unsigned A>
  bool probe(Way* set_base, std::size_t base_index, std::uint32_t block,
             bool is_write, unsigned assoc);

  CacheConfig cfg_;
  std::uint32_t block_shift_;
  std::uint32_t assoc_shift_;
  std::uint32_t set_mask_;
  std::uint32_t mru_block_ = kInvalidTag;  // block of the last access
  std::size_t mru_index_ = 0;              // its way's index in ways_
  std::uint64_t tick_ = 0;                 // access stamp source
  std::vector<Way> ways_;                  // num_sets * assoc, set-major
  CacheStats stats_;
};

template <unsigned A>
inline bool SetAssocCache::probe(Way* w, std::size_t base_index,
                                 std::uint32_t block, bool is_write,
                                 unsigned assoc) {
  // A == 0 selects the runtime-trip fallback for exotic associativities.
  const unsigned n = A == 0 ? assoc : A;

  for (unsigned i = 0; i < n; ++i) {
    if (w[i].tag == block) {
      w[i].stamp = ++tick_;
      if (is_write) w[i].dirty = 1;
      mru_block_ = block;
      mru_index_ = base_index + i;
      return true;
    }
  }

  // Miss: fill the first invalid way if any, else evict the minimum stamp
  // (the least recently used way).  Invalid ways carry the sentinel tag.
  ++stats_.misses;
  unsigned victim = 0;
  bool filling = false;
  for (unsigned i = 0; i < n; ++i) {
    if (w[i].tag == kInvalidTag) {
      victim = i;
      filling = true;
      break;
    }
  }
  if (!filling) {
    std::uint64_t oldest = w[0].stamp;
    for (unsigned i = 1; i < n; ++i) {
      if (w[i].stamp < oldest) {
        oldest = w[i].stamp;
        victim = i;
      }
    }
    if (w[victim].dirty != 0) ++stats_.writebacks;
  }
  w[victim].tag = block;
  w[victim].dirty = is_write ? 1 : 0;
  w[victim].stamp = ++tick_;
  mru_block_ = block;
  mru_index_ = base_index + victim;
  return false;
}

inline bool SetAssocCache::access_slow(std::uint32_t block, bool is_write) {
  ++stats_.accesses;
  const std::uint32_t set = block & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) << assoc_shift_;
  Way* w = ways_.data() + base;
  switch (assoc_shift_) {
    case 0: return probe<1>(w, base, block, is_write, 1);
    case 1: return probe<2>(w, base, block, is_write, 2);
    case 2: return probe<4>(w, base, block, is_write, 4);
    default: return probe<0>(w, base, block, is_write, cfg_.assoc);
  }
}

// The paper's sweep parameters.  Views over static storage: the benches
// call these inside nested sweep loops, so they must not allocate.

/// The per-program cache ladder the paper sweeps: 1K..128K in powers of two.
std::span<const std::uint32_t> paper_cache_sizes();

/// The associativities the paper simulates.
std::span<const std::uint32_t> paper_associativities();

/// The miss penalties (cycles) the paper evaluates.
std::span<const std::uint32_t> paper_miss_penalties();

}  // namespace jtam::cache
