// Attributed single-pass multi-configuration cache simulation.
//
// AttrStackStream is the keyed sibling of StackStream (stack_sim.h): the
// same Mattson stack-distance automaton with set refinement and
// Thompson & Smith clean limits, but every access carries a small integer
// *attribution key* (the locality observatory uses codeblock-symbol rows
// crossed with frame/heap/queue/global access classes) and every counter
// the engine keeps is partitioned by that key:
//
//  * `hits_at_pos` becomes a per-key histogram per mapping, so one pass
//    yields a full miss-ratio curve per key across every configuration of
//    the group,
//  * write-backs are charged to the key of the *evicting* access (the one
//    that pushed the victim out), and
//  * per-key access counts close the books: for any configuration,
//    summing hits/misses/write-backs over keys is bit-identical to the
//    unkeyed StackStream, because the keys only partition the increments —
//    the LRU state and every update to it are key-blind.
//
// The engine also folds in a bounded *temporal reuse-distance* profile: a
// move-to-front window of the last `rd_window` distinct blocks gives each
// access its reuse distance (number of distinct blocks touched since the
// previous access to this block), log2-bucketed per key, with one overflow
// bucket for cold/beyond-window references.  This is the fully-associative
// stack distance the per-mapping rows cannot provide, and it is what the
// frame reuse-distance percentiles in obs::LocalityReport are built from.
//
// This class is deliberately the *slow twin*: per-event, serial, no SSE
// kernels, no batching — it runs only when `--locality` observability is
// requested, as a TraceConsumer alongside (never instead of) the measured
// engines, so it can favour clarity and exactness over throughput.
// tests/locality_test.cpp pins the conservation property against both
// SetAssocCache and StackStream on randomized streams and full workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"

namespace jtam::cache {

/// Keyed multi-configuration LRU simulator for one reference stream at one
/// block size.  `configs` must be non-empty and share one block size (the
/// StackStream group invariant); `key < num_keys` on every access.
class AttrStackStream {
 public:
  /// Reuse-distance histogram shape: bucket 0 is distance 0 (immediate
  /// reuse), bucket b in [1, kRdBuckets-2] covers distances
  /// [2^(b-1), 2^b - 1], and the last bucket is beyond-window/cold.
  static constexpr std::uint32_t kRdBuckets = 12;

  AttrStackStream(const std::vector<CacheConfig>& configs,
                  std::uint32_t num_keys, std::uint32_t rd_window = 512);

  /// Simulate one access attributed to `key`.
  void access(std::uint32_t addr, bool is_write, std::uint32_t key);

  /// Counts for configuration `c` restricted to accesses tagged `key`.
  CacheStats stats_for(std::size_t c, std::uint32_t key) const;

  /// Counts for configuration `c` summed over all keys — bit-identical to
  /// an unkeyed StackStream fed the same stream.
  CacheStats total_for(std::size_t c) const;

  std::uint64_t accesses_of(std::uint32_t key) const {
    return accesses_[key];
  }

  /// Reuse-distance histogram of `key`: kRdBuckets counters.
  const std::uint64_t* rd_hist(std::uint32_t key) const {
    return rd_hist_.data() + static_cast<std::size_t>(key) * kRdBuckets;
  }

  /// Smallest reuse distance that lands in bucket `b`.
  static std::uint64_t rd_bucket_floor(std::uint32_t b) {
    return b == 0 ? 0 : 1ull << (b - 1);
  }

  const std::vector<CacheConfig>& configs() const { return configs_; }
  std::uint32_t num_keys() const { return num_keys_; }
  std::uint32_t rd_window() const { return rd_window_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// One set mapping, laid out exactly like StackStream::Mapping except
  /// that hits_at_pos carries one (amax + 1)-slot histogram per key.
  struct Mapping {
    std::uint32_t set_mask = 0;
    std::uint32_t amax = 0;
    std::vector<std::uint32_t> assocs;  // ascending, one per config
    std::vector<std::uint32_t> cfg_of;  // config index per `assocs` entry
    std::vector<std::uint32_t> rows;    // per set: amax blocks, amax limits
    std::vector<std::uint64_t> hits_at_pos;  // [key * (amax+1) + pos]
  };

  void apply(Mapping& mp, std::uint32_t block, bool is_write,
             std::uint32_t key);
  void access_slow(std::uint32_t block, bool is_write, std::uint32_t key);
  void mark_mru_dirty();
  void record_reuse(std::uint32_t block, std::uint32_t key, bool mru);

  std::uint32_t block_shift_ = 0;
  std::uint32_t num_keys_ = 0;
  std::uint32_t rd_window_ = 0;
  std::uint32_t mru_block_ = kNil;
  bool mru_dirty_ = false;

  std::vector<CacheConfig> configs_;
  struct CfgLoc {
    std::uint32_t map;
    std::uint32_t assoc;
  };
  std::vector<CfgLoc> cfg_loc_;
  std::vector<Mapping> maps_;
  std::vector<std::uint64_t> accesses_;     // per key
  std::vector<std::uint64_t> mru_repeats_;  // per key, position-0 fast path
  std::vector<std::uint64_t> writebacks_;   // [config * num_keys + key]
  std::vector<std::uint64_t> rd_hist_;      // [key * kRdBuckets + bucket]
  std::vector<std::uint32_t> rd_list_;      // MTF window, most recent first
};

}  // namespace jtam::cache
