#include "cache/cache_bank.h"

#include "support/error.h"

namespace jtam::cache {

std::vector<CacheConfig> paper_ladder(std::uint32_t block_bytes) {
  std::vector<CacheConfig> cfgs;
  for (std::uint32_t assoc : paper_associativities()) {
    for (std::uint32_t size : paper_cache_sizes()) {
      cfgs.push_back(CacheConfig{size, block_bytes, assoc});
    }
  }
  return cfgs;
}

CacheBank::CacheBank(const std::vector<CacheConfig>& configs)
    : configs_(configs) {
  JTAM_CHECK(!configs.empty(), "cache bank needs at least one configuration");
  caches_.reserve(configs.size());
  for (const auto& cfg : configs_) caches_.emplace_back(cfg);
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    // First appearance wins, matching the old linear scan on duplicates.
    index_.emplace(index_key(configs_[i].size_bytes, configs_[i].assoc), i);
  }
}

CacheBank CacheBank::paper_bank(std::uint32_t block_bytes) {
  return CacheBank(paper_ladder(block_bytes));
}

std::size_t CacheBank::find(std::uint32_t size_bytes,
                            std::uint32_t assoc) const {
  const auto it = index_.find(index_key(size_bytes, assoc));
  if (it == index_.end()) {
    throw Error("cache bank has no configuration " +
                std::to_string(size_bytes) + "B/" + std::to_string(assoc) +
                "-way");
  }
  return it->second;
}

}  // namespace jtam::cache
