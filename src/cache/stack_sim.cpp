#include "cache/stack_sim.h"

#include <algorithm>
#include <bit>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "support/error.h"

namespace jtam::cache {


StackStream::StackStream(const std::vector<CacheConfig>& configs,
                         std::uint32_t shard, std::uint32_t num_shards)
    : configs_(configs) {
  JTAM_CHECK(!configs_.empty(), "stack stream needs at least one config");
  std::uint32_t min_sets = 0xFFFFFFFFu;
  for (const CacheConfig& c : configs_) {
    c.validate();
    JTAM_CHECK(c.block_bytes == configs_[0].block_bytes,
               "stack stream configs must share one block size");
    min_sets = std::min(min_sets, c.num_sets());
  }
  JTAM_CHECK(num_shards != 0 && (num_shards & (num_shards - 1)) == 0,
             "shard count must be a power of two");
  JTAM_CHECK(num_shards <= min_sets,
             "more shards than sets in the coarsest mapping");
  JTAM_CHECK(shard < num_shards, "shard index out of range");
  block_shift_ =
      static_cast<std::uint32_t>(std::countr_zero(configs_[0].block_bytes));
  shard_ = shard;
  shard_mask_ = num_shards - 1;

  // One Mapping per distinct set count; sorted ascending for determinism.
  std::vector<std::uint32_t> set_counts;
  set_counts.reserve(configs_.size());
  for (const CacheConfig& c : configs_) set_counts.push_back(c.num_sets());
  std::sort(set_counts.begin(), set_counts.end());
  set_counts.erase(std::unique(set_counts.begin(), set_counts.end()),
                   set_counts.end());

  maps_.resize(set_counts.size());
  cfg_loc_.resize(configs_.size());
  for (std::size_t m = 0; m < set_counts.size(); ++m) {
    Mapping& mp = maps_[m];
    mp.set_mask = set_counts[m] - 1;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> here;  // (assoc, cfg)
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      if (configs_[c].num_sets() != set_counts[m]) continue;
      cfg_loc_[c] = CfgLoc{static_cast<std::uint32_t>(m), configs_[c].assoc};
      here.emplace_back(configs_[c].assoc, static_cast<std::uint32_t>(c));
    }
    std::sort(here.begin(), here.end());
    for (const auto& [assoc, cfg] : here) {
      mp.assocs.push_back(assoc);
      mp.cfg_of.push_back(cfg);
      mp.amax = std::max(mp.amax, assoc);
    }
    // Interleaved rows: [amax recency slots][amax clean limits] per set.
    mp.rows.assign(static_cast<std::size_t>(set_counts[m]) * 2 * mp.amax, 0);
    for (std::size_t s = 0; s < set_counts[m]; ++s) {
      for (std::uint32_t j = 0; j < mp.amax; ++j) {
        mp.rows[s * 2 * mp.amax + j] = kNil;
      }
    }
    mp.hits_at_pos.assign(mp.amax + 1, 0);
    if (mp.amax == 4 && mp.assocs.size() <= 3) {
      // Recognize the ladder's amax-4 shapes — assocs a suffix of
      // {1, 2, 4} — so the vector kernel can unroll the writeback checks.
      static constexpr std::uint32_t kLadder[3] = {1, 2, 4};
      const std::size_t k = mp.assocs.size();
      bool suffix = true;
      for (std::size_t a = 0; a < k; ++a) {
        suffix = suffix && mp.assocs[a] == kLadder[3 - k + a];
      }
      if (suffix) mp.pat = static_cast<std::uint32_t>(k);
    }
  }
  writebacks_.assign(configs_.size(), 0);
}

inline void StackStream::apply(Mapping& mp, std::uint32_t block,
                               bool is_write) {
  const std::uint32_t amax = mp.amax;
  const std::size_t base =
      static_cast<std::size_t>(block & mp.set_mask) * 2 * amax;
  std::uint32_t* blk = mp.rows.data() + base;
  std::uint32_t* lim = blk + amax;

  // Scan the set's recency window.  kNil appears only at the tail, so the
  // scan stops at the block (hit at position p), at the first empty slot
  // (p = number of resident blocks), or at the window's end.
  std::uint32_t p = 0;
  while (p < amax && blk[p] != block && blk[p] != kNil) ++p;
  const bool hit = p < amax && blk[p] == block;
  ++mp.hits_at_pos[hit ? p : amax];  // the trailing slot absorbs misses

  // Evictions: an A-way configuration misses iff the block sits at recency
  // position >= A, and evicts iff its set is full — at least A other
  // blocks precede this one.  Both reduce to A <= p here (on a hit p
  // counts the preceding blocks; on a miss p counts the residents).  The
  // victim is the LRU way, slot A-1, whose clean limit says which
  // configurations still hold it dirty.
  for (std::size_t a = 0; a < mp.assocs.size(); ++a) {
    const std::uint32_t A = mp.assocs[a];
    if (A > p) break;  // assocs ascending: later ones fail too
    if (A > lim[A - 1]) ++writebacks_[mp.cfg_of[a]];
  }

  // Dirty-level update: a write dirties the block in every configuration;
  // a read at position p refills it clean in the configurations that
  // missed (assoc <= p) and leaves the rest alone.  A miss is a fresh
  // insert — clean everywhere means limit amax — which also covers a
  // block returning from beyond the window: it misses every
  // configuration, so its stale limit is irrelevant.
  const std::uint32_t limit =
      is_write ? 0 : (hit ? std::max(lim[p], p) : amax);

  // Shift the preceding blocks down one slot and install at the front.
  // On a miss the whole window shifts; the former slot amax-1 falls off.
  for (std::uint32_t j = hit ? p : amax - 1; j > 0; --j) {
    blk[j] = blk[j - 1];
    lim[j] = lim[j - 1];
  }
  blk[0] = block;
  lim[0] = limit;
}

void StackStream::access_slow(std::uint32_t block, bool is_write) {
  for (Mapping& mp : maps_) apply(mp, block, is_write);
  mru_block_ = block;
  mru_dirty_ = is_write;
}

void StackStream::mark_mru_dirty() {
  // The most recent access put mru_block_ at slot 0 of its set in every
  // mapping; dirtying it is one store per mapping.
  for (Mapping& mp : maps_) {
    mp.rows[static_cast<std::size_t>(mru_block_ & mp.set_mask) * 2 * mp.amax +
            mp.amax] = 0;
  }
  mru_dirty_ = true;
}

std::pair<std::size_t, std::uint64_t> StackStream::replay_one(Mapping& mp,
                                                              std::size_t n) {
  const std::uint32_t set_mask = mp.set_mask;
  const std::uint32_t amax = mp.amax;
  std::uint64_t* ev = slow_.data();
  std::size_t out = 0;
  std::uint64_t filtered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = ev[i];
    const std::uint32_t block = static_cast<std::uint32_t>(e >> 2);
    const std::size_t base =
        static_cast<std::size_t>(block & set_mask) * 2 * amax;
    if (e & 2u) {  // dirty mark: the block sits at slot 0 of its set
      mp.rows[base + amax] = 0;
      ev[out++] = e;
      continue;
    }
    if (mp.rows[base] == block) {
      // Position-0 hit: no recency change, no eviction — and by position
      // monotonicity it stays a position-0 hit at every finer mapping, so
      // it leaves the list (writes stay behind as plain dirty marks).
      ++mp.hits_at_pos[0];
      ++filtered;
      if (e & 1u) {
        mp.rows[base + amax] = 0;
        ev[out++] = e | 2u;
      }
      continue;
    }
    apply(mp, block, (e & 1u) != 0);
    ev[out++] = e;
  }
  return {out, filtered};
}

#if defined(__SSE2__)
namespace {

// Blend masks for the recency shift: lane j takes the shifted row iff
// j <= shift_from.
alignas(16) constexpr std::uint32_t kKeep[4][4] = {
    {~0u, 0u, 0u, 0u},
    {~0u, ~0u, 0u, 0u},
    {~0u, ~0u, ~0u, 0u},
    {~0u, ~0u, ~0u, ~0u},
};

/// Branchless single-access update of one 4-slot set (the paper ladder's
/// assoc-4 sizes make amax == 4 at most set counts).  One vector compare
/// finds the hit position, the recency shift is a fixed shuffle blended
/// under a per-position mask, and the writeback checks are unconditional
/// flag arithmetic — no data-dependent branches for the predictor to miss.
/// Same updates as StackStream::apply(), in the same order, so counts are
/// bit-identical.  `hits` has 5 slots; [4] is the miss dummy.  PAT is the
/// mapping's writeback pattern (Mapping::pat): for 1..3 the assocs are the
/// last PAT of {1, 2, 4} and the checks unroll with the ways as
/// constants; 0 runs the generic loop.
/// Returns 1 on a position-0 hit (the caller's cascade filter), else 0.
template <int PAT>
inline std::uint32_t sse4_step(std::uint32_t* blk, std::uint32_t* lim,
                               std::uint64_t* hits, const std::uint32_t* as,
                               const std::uint32_t* co, std::size_t ncfg,
                               std::uint64_t* wb, std::uint32_t block,
                               bool is_write) {
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blk));
  const __m128i l = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lim));
  const __m128i key = _mm_set1_epi32(static_cast<int>(block));
  const __m128i nil = _mm_set1_epi32(-1);
  const int meq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(b, key)));
  const int mnil = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(b, nil)));
  // Hit position, or on a miss the resident count (kNil fills the tail).
  const std::uint32_t p =
      meq ? static_cast<std::uint32_t>(__builtin_ctz(meq))
          : (mnil ? static_cast<std::uint32_t>(__builtin_ctz(mnil)) : 4u);
  ++hits[meq ? p : 4u];
  if constexpr (PAT == 0) {
    for (std::size_t a = 0; a < ncfg; ++a) {
      const std::uint32_t A = as[a];
      wb[co[a]] += static_cast<std::uint64_t>((A <= p) & (A > lim[A - 1]));
    }
  } else {
    // A <= p && A > lim[A-1] with A in the tail of {1, 2, 4}.
    if constexpr (PAT >= 3) {
      wb[co[0]] += static_cast<std::uint64_t>((p >= 1) & (lim[0] < 1));
    }
    if constexpr (PAT >= 2) {
      wb[co[PAT - 2]] += static_cast<std::uint64_t>((p >= 2) & (lim[1] < 2));
    }
    wb[co[PAT - 1]] += static_cast<std::uint64_t>((p >= 4) & (lim[3] < 4));
  }
  const std::uint32_t limit =
      is_write ? 0 : (meq ? std::max(lim[p & 3u], p) : 4u);
  const std::uint32_t s = meq ? p : 3u;
  const __m128i keep =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kKeep[s]));
  // Row shifted down one lane (lane 0 is overwritten below).
  const __m128i bs = _mm_shuffle_epi32(b, _MM_SHUFFLE(2, 1, 0, 0));
  const __m128i ls = _mm_shuffle_epi32(l, _MM_SHUFFLE(2, 1, 0, 0));
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(blk),
      _mm_or_si128(_mm_and_si128(bs, keep), _mm_andnot_si128(keep, b)));
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(lim),
      _mm_or_si128(_mm_and_si128(ls, keep), _mm_andnot_si128(keep, l)));
  blk[0] = block;
  lim[0] = limit;
  return static_cast<std::uint32_t>(meq & 1);
}

}  // namespace

/// Replay pass over the 4-slot mappings using the branchless kernel.  With
/// RW false (instruction stream) every entry is a plain read: the dirty
/// mark and write-conversion paths compile out.
template <int PAT, bool RW>
std::pair<std::size_t, std::uint64_t> StackStream::replay_sse4(
    Mapping& mp, std::size_t n) {
  const std::uint32_t set_mask = mp.set_mask;
  std::uint32_t* rows = mp.rows.data();
  std::uint64_t* hits = mp.hits_at_pos.data();
  const std::uint32_t* as = mp.assocs.data();
  const std::uint32_t* co = mp.cfg_of.data();
  const std::size_t ncfg = mp.assocs.size();
  std::uint64_t* wb = writebacks_.data();
  std::uint64_t* ev = slow_.data();
  std::size_t out = 0;
  std::uint64_t filtered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e = ev[i];
    if (i + 8 < n) {
      // The entry stream is sequential but the set rows it lands on are
      // not; get the row a few entries ahead moving toward L1.
      const std::uint32_t nb = static_cast<std::uint32_t>(ev[i + 8] >> 2);
      _mm_prefetch(reinterpret_cast<const char*>(
                       rows + static_cast<std::size_t>(nb & set_mask) * 8),
                   _MM_HINT_T0);
    }
    const std::uint32_t block = static_cast<std::uint32_t>(e >> 2);
    const std::size_t base = static_cast<std::size_t>(block & set_mask) * 8;
    std::uint32_t* blk = rows + base;
    std::uint32_t* lim = blk + 4;
    if (RW && (e & 2u)) {  // dirty mark: the block sits at slot 0
      lim[0] = 0;
      ev[out++] = e;
      continue;
    }
    // The kernel handles a position-0 hit with exactly the cascade
    // filter's state updates (hit counted at 0, no writeback, limit
    // preserved on a read / zeroed on a write, recency unchanged), so it
    // runs unconditionally and just reports the flag; the drop/convert
    // decision below is branch-free — the p0-hit pattern is data-dependent
    // and mispredicts when tested.
    const std::uint32_t w1 = RW ? static_cast<std::uint32_t>(e & 1u) : 0u;
    const std::uint32_t p0 =
        sse4_step<PAT>(blk, lim, hits, as, co, ncfg, wb, block, w1 != 0);
    filtered += p0;
    // p0 reads leave the list; p0 writes stay behind as dirty marks.
    ev[out] = e | (static_cast<std::uint64_t>(p0) << 1);
    out += 1u - (p0 & (1u - w1));
  }
  return {out, filtered};
}
#endif  // __SSE2__

// The batched feeds split the work the per-event access() interleaves:
// pass 1 runs the MRU and position-0 filters over the whole batch (keeping
// the coarsest mapping live as it goes), recording the surviving accesses
// — and the clean->dirty transitions of filtered hits, which must land in
// order — in `slow_`; pass 2 replays that list once per remaining mapping.
// Same updates in the same order per mapping, so counts are bit-identical
// to per-event feeding — but the per-mapping state stays hot in registers
// and cache across the batch instead of being revisited per access.
template <bool RW>
void StackStream::replay(std::size_t n, std::uint64_t pos0) {
  std::uint64_t pos0_cum = pos0;  // entries filtered by coarser mappings
  for (std::size_t m = 2; m < maps_.size(); ++m) {
    Mapping& mp = maps_[m];
    // Everything a coarser mapping filtered was a position-0 hit here too.
    mp.hits_at_pos[0] += pos0_cum;
    std::pair<std::size_t, std::uint64_t> r;
#if defined(__SSE2__)
    if (mp.amax == 4) {
      switch (mp.pat) {
        case 1: r = replay_sse4<1, RW>(mp, n); break;
        case 2: r = replay_sse4<2, RW>(mp, n); break;
        case 3: r = replay_sse4<3, RW>(mp, n); break;
        default: r = replay_sse4<0, RW>(mp, n); break;
      }
    } else {
      r = replay_one(mp, n);
    }
#else
    r = replay_one(mp, n);
#endif
    n = r.first;
    pos0_cum += r.second;
  }
}

// Pass 1 keeps the two coarsest mappings live.  Set refinement makes
// recency positions monotone across mappings (the blocks preceding an
// access in a finer mapping's set are a subset of those in a coarser
// one's, so p_fine <= p_coarse), hence a block at the front of its set in
// a coarse mapping sits at position 0 in *every* finer mapping — a
// universal hit that changes no recency order and evicts nothing:
//
//  * At maps_[0] such a hit needs no per-mapping work at all:
//    mru_repeats_ already feeds position 0 of every configuration in
//    stats_for(), and a write only needs the ordered dirty-mark.
//  * At maps_[1] the hit is recorded in its own histogram and counted in
//    `pos0`, which replay() bulk-credits to the finer mappings.
//
// Entries filtered at either level never touch the scratch list, and
// replay() starts at maps_[2] — the two longest per-mapping passes are
// folded into this single walk over the words.
void StackStream::fetch_block(const std::uint32_t* words, std::size_t n) {
  if (slow_.size() < n) slow_.resize(n);  // grown once to the batch bound
  std::uint64_t* dst = slow_.data();
  Mapping& m0 = maps_.front();
  Mapping* m1 = maps_.size() > 1 ? &maps_[1] : nullptr;
  std::uint64_t pos0 = 0;
  // Hot members and mapping fields cached in locals for the walk: the row
  // stores could alias *this for all the compiler knows, so the member
  // forms would reload and re-store them on every word.
  const std::uint32_t bshift = block_shift_;
  const std::uint32_t smask = shard_mask_, shard = shard_;
  std::uint32_t mru = mru_block_;
  std::uint64_t acc = 0, rep = 0;
  const std::uint32_t mask0 = m0.set_mask, amax0 = m0.amax;
  std::uint32_t* const rows0 = m0.rows.data();
  std::uint64_t* const h0 = m0.hits_at_pos.data();
  const std::uint32_t* const as0 = m0.assocs.data();
  const std::uint32_t* const co0 = m0.cfg_of.data();
  const std::size_t nc0 = m0.assocs.size();
  const std::uint32_t mask1 = m1 != nullptr ? m1->set_mask : 0;
  const std::uint32_t amax1 = m1 != nullptr ? m1->amax : 0;
  std::uint32_t* const rows1 = m1 != nullptr ? m1->rows.data() : nullptr;
  std::uint64_t* const h1 = m1 != nullptr ? m1->hits_at_pos.data() : nullptr;
  const std::uint32_t* const as1 = m1 != nullptr ? m1->assocs.data() : nullptr;
  const std::uint32_t* const co1 = m1 != nullptr ? m1->cfg_of.data() : nullptr;
  const std::size_t nc1 = m1 != nullptr ? m1->assocs.size() : 0;
  std::uint64_t* const wb = writebacks_.data();
  // Read-only pass 1: fetches never dirty anything, so the filters reduce
  // to their hit counts — no dirty-state tracking, no mark entries, and
  // every recorded entry is a plain read.  Block sizes are at least one
  // word, so the shift alone discards the metadata bits.
  for (std::size_t i = 0; i < n;) {
    const std::uint32_t block = words[i] >> bshift;
    ++i;
    if ((block & smask) != shard) continue;
    ++acc;
    if (block == mru) {
      ++rep;
      if (smask == 0) {
        // Serial shard: the MRU block is simply the previous word's
        // block, so repeats form runs of equal block numbers — sequential
        // code fetches many instructions per block.  Skip the run with a
        // compare-only scan; nothing but the counters changes.
#if defined(__SSE2__)
        const __m128i key = _mm_set1_epi32(static_cast<int>(block));
        const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(bshift));
        while (i + 4 <= n) {
          const __m128i w =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
          const __m128i b4 = _mm_srl_epi32(w, sh);
          if (_mm_movemask_ps(
                  _mm_castsi128_ps(_mm_cmpeq_epi32(b4, key))) != 0xF) {
            break;
          }
          i += 4;
          rep += 4;
          acc += 4;
        }
#endif
        while (i < n && (words[i] >> bshift) == block) {
          ++i;
          ++rep;
          ++acc;
        }
      }
      continue;
    }
    const std::size_t base0 =
        static_cast<std::size_t>(block & mask0) * 2 * amax0;
    mru = block;
    if (rows0[base0] == block) {
      ++rep;  // position-0 hit in every mapping
      continue;
    }
#if defined(__SSE2__)
    if (amax0 == 4) {
      sse4_step<0>(rows0 + base0, rows0 + base0 + 4, h0, as0, co0, nc0, wb,
                   block, false);
    } else {
      apply(m0, block, false);
    }
#else
    apply(m0, block, false);
#endif
    if (m1 == nullptr) continue;
    const std::size_t base1 =
        static_cast<std::size_t>(block & mask1) * 2 * amax1;
    if (rows1[base1] == block) {
      ++h1[0];  // position-0 hit at mapping 1 and finer
      ++pos0;
      continue;
    }
#if defined(__SSE2__)
    if (amax1 == 4) {
      sse4_step<0>(rows1 + base1, rows1 + base1 + 4, h1, as1, co1, nc1, wb,
                   block, false);
    } else {
      apply(*m1, block, false);
    }
#else
    apply(*m1, block, false);
#endif
    *dst++ = static_cast<std::uint64_t>(block) << 2;
  }
  accesses_ += acc;
  mru_repeats_ += rep;
  mru_block_ = mru;
  replay<false>(static_cast<std::size_t>(dst - slow_.data()), pos0);
}

void StackStream::data_block(const std::uint32_t* words, std::size_t n) {
  if (slow_.size() < n) slow_.resize(n);
  std::uint64_t* dst = slow_.data();
  Mapping& m0 = maps_.front();
  Mapping* m1 = maps_.size() > 1 ? &maps_[1] : nullptr;
  std::uint64_t pos0 = 0;
  // Same local caching as fetch_block, plus the MRU dirty bit.
  const std::uint32_t bshift = block_shift_;
  const std::uint32_t smask = shard_mask_, shard = shard_;
  std::uint32_t mru = mru_block_;
  bool mdirty = mru_dirty_;
  std::uint64_t acc = 0, rep = 0;
  const std::uint32_t mask0 = m0.set_mask, amax0 = m0.amax;
  std::uint32_t* const rows0 = m0.rows.data();
  std::uint64_t* const h0 = m0.hits_at_pos.data();
  const std::uint32_t* const as0 = m0.assocs.data();
  const std::uint32_t* const co0 = m0.cfg_of.data();
  const std::size_t nc0 = m0.assocs.size();
  const std::uint32_t mask1 = m1 != nullptr ? m1->set_mask : 0;
  const std::uint32_t amax1 = m1 != nullptr ? m1->amax : 0;
  std::uint32_t* const rows1 = m1 != nullptr ? m1->rows.data() : nullptr;
  std::uint64_t* const h1 = m1 != nullptr ? m1->hits_at_pos.data() : nullptr;
  const std::uint32_t* const as1 = m1 != nullptr ? m1->assocs.data() : nullptr;
  const std::uint32_t* const co1 = m1 != nullptr ? m1->cfg_of.data() : nullptr;
  const std::size_t nc1 = m1 != nullptr ? m1->assocs.size() : 0;
  std::uint64_t* const wb = writebacks_.data();
  for (std::size_t i = 0; i < n;) {
    const std::uint32_t block = words[i] >> bshift;
    const bool is_write = (words[i] & 1u) != 0;
    ++i;
    if ((block & smask) != shard) continue;
    ++acc;
    if (block == mru) {
      ++rep;
      if (is_write && !mdirty) {
        // Clean->dirty transition of the block at the front of every set:
        // the live mappings take the limit store now, the finer ones get
        // an ordered dirty-mark.
        mdirty = true;
        rows0[static_cast<std::size_t>(block & mask0) * 2 * amax0 + amax0] =
            0;
        if (m1 != nullptr) {
          rows1[static_cast<std::size_t>(block & mask1) * 2 * amax1 +
                amax1] = 0;
        }
        *dst++ = (static_cast<std::uint64_t>(block) << 2) | 3u;
      }
      if (smask == 0) {
        // Serial-shard run skip, as in fetch_block — but a run may only
        // be consumed while no state change is due, so it stops at the
        // first clean write (the outer iteration then takes the
        // transition through the branch above).
        while (i < n && (words[i] >> bshift) == block &&
               (mdirty || (words[i] & 1u) == 0)) {
          ++i;
          ++rep;
          ++acc;
        }
      }
      continue;
    }
    const std::size_t base0 =
        static_cast<std::size_t>(block & mask0) * 2 * amax0;
    mru = block;
    mdirty = is_write;
    if (rows0[base0] == block) {
      ++rep;  // position-0 hit in every mapping
      if (is_write) {
        rows0[base0 + amax0] = 0;
        if (m1 != nullptr) {
          rows1[static_cast<std::size_t>(block & mask1) * 2 * amax1 +
                amax1] = 0;
        }
        *dst++ = (static_cast<std::uint64_t>(block) << 2) | 3u;
      }
      continue;
    }
#if defined(__SSE2__)
    if (amax0 == 4) {
      sse4_step<0>(rows0 + base0, rows0 + base0 + 4, h0, as0, co0, nc0, wb,
                   block, is_write);
    } else {
      apply(m0, block, is_write);
    }
#else
    apply(m0, block, is_write);
#endif
    if (m1 == nullptr) continue;
    const std::size_t base1 =
        static_cast<std::size_t>(block & mask1) * 2 * amax1;
    if (rows1[base1] == block) {
      ++h1[0];  // position-0 hit at mapping 1 and finer
      ++pos0;
      if (is_write) {
        rows1[base1 + amax1] = 0;
        *dst++ = (static_cast<std::uint64_t>(block) << 2) | 3u;
      }
      continue;
    }
#if defined(__SSE2__)
    if (amax1 == 4) {
      sse4_step<0>(rows1 + base1, rows1 + base1 + 4, h1, as1, co1, nc1, wb,
                   block, is_write);
    } else {
      apply(*m1, block, is_write);
    }
#else
    apply(*m1, block, is_write);
#endif
    *dst++ = (static_cast<std::uint64_t>(block) << 2) | (is_write ? 1u : 0u);
  }
  accesses_ += acc;
  mru_repeats_ += rep;
  mru_block_ = mru;
  mru_dirty_ = mdirty;
  replay<true>(static_cast<std::size_t>(dst - slow_.data()), pos0);
}

CacheStats StackStream::stats_for(std::size_t c) const {
  const CfgLoc loc = cfg_loc_[c];
  const Mapping& mp = maps_[loc.map];
  std::uint64_t hits = mru_repeats_;
  for (std::uint32_t p = 0; p < loc.assoc; ++p) hits += mp.hits_at_pos[p];
  CacheStats s;
  s.accesses = accesses_;
  s.misses = accesses_ - hits;
  s.writebacks = writebacks_[c];
  return s;
}

StackSimBank::StackSimBank(const std::vector<CacheConfig>& configs,
                           unsigned shards_hint)
    : configs_(configs) {
  JTAM_CHECK(!configs_.empty(), "stack bank needs at least one config");
  loc_.resize(configs_.size());

  // Group by block size, preserving first-appearance order.
  std::vector<std::uint32_t> group_block;
  std::vector<std::vector<CacheConfig>> group_cfgs;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const std::uint32_t bb = configs_[i].block_bytes;
    std::size_t g = 0;
    while (g < group_block.size() && group_block[g] != bb) ++g;
    if (g == group_block.size()) {
      group_block.push_back(bb);
      group_cfgs.emplace_back();
    }
    loc_[i] = {static_cast<std::uint32_t>(g),
               static_cast<std::uint32_t>(group_cfgs[g].size())};
    group_cfgs[g].push_back(configs_[i]);
  }

  groups_.resize(group_cfgs.size());
  for (std::size_t g = 0; g < group_cfgs.size(); ++g) {
    std::uint32_t min_sets = 0xFFFFFFFFu;
    for (const CacheConfig& c : group_cfgs[g]) {
      min_sets = std::min(min_sets, c.num_sets());
    }
    std::uint32_t shards = 1;
    while (shards * 2 <= shards_hint && shards * 2 <= min_sets) shards *= 2;
    for (std::uint32_t s = 0; s < shards; ++s) {
      groups_[g].ishards.emplace_back(group_cfgs[g], s, shards);
      groups_[g].dshards.emplace_back(group_cfgs[g], s, shards);
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      tasks_.push_back(Task{static_cast<std::uint32_t>(g), s, false});
      tasks_.push_back(Task{static_cast<std::uint32_t>(g), s, true});
    }
  }
}

CacheStats StackSimBank::istats(std::size_t i) const {
  const auto [g, local] = loc_[i];
  CacheStats sum;
  for (const StackStream& s : groups_[g].ishards) {
    const CacheStats part = s.stats_for(local);
    sum.accesses += part.accesses;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  return sum;
}

CacheStats StackSimBank::dstats(std::size_t i) const {
  const auto [g, local] = loc_[i];
  CacheStats sum;
  for (const StackStream& s : groups_[g].dshards) {
    const CacheStats part = s.stats_for(local);
    sum.accesses += part.accesses;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  return sum;
}

void StackSimBank::on_fetch(std::uint32_t addr) {
  for (Group& g : groups_) {
    for (StackStream& s : g.ishards) s.access(addr & ~3u, /*is_write=*/false);
  }
}

void StackSimBank::on_data(std::uint32_t addr, bool is_write) {
  for (Group& g : groups_) {
    for (StackStream& s : g.dshards) s.access(addr & ~3u, is_write);
  }
}

void StackSimBank::run_task(std::size_t t, const std::uint32_t* fetch_words,
                            std::size_t nf, const std::uint32_t* data_words,
                            std::size_t nd) {
  const Task& tk = tasks_[t];
  Group& g = groups_[tk.group];
  if (tk.data) {
    g.dshards[tk.shard].data_block(data_words, nd);
  } else {
    g.ishards[tk.shard].fetch_block(fetch_words, nf);
  }
}

}  // namespace jtam::cache
