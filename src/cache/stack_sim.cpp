#include "cache/stack_sim.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "support/error.h"

namespace jtam::cache {

namespace {

// Fibonacci hashing; block numbers are 24-bit addresses shifted right, so
// the sentinel 0xFFFFFFFF never collides with a real key.
std::uint32_t hash_block(std::uint32_t block) { return block * 2654435761u; }

}  // namespace

StackStream::StackStream(const std::vector<CacheConfig>& configs,
                         std::uint32_t shard, std::uint32_t num_shards)
    : configs_(configs) {
  JTAM_CHECK(!configs_.empty(), "stack stream needs at least one config");
  std::uint32_t min_sets = 0xFFFFFFFFu;
  for (const CacheConfig& c : configs_) {
    c.validate();
    JTAM_CHECK(c.block_bytes == configs_[0].block_bytes,
               "stack stream configs must share one block size");
    min_sets = std::min(min_sets, c.num_sets());
  }
  JTAM_CHECK(num_shards != 0 && (num_shards & (num_shards - 1)) == 0,
             "shard count must be a power of two");
  JTAM_CHECK(num_shards <= min_sets,
             "more shards than sets in the coarsest mapping");
  JTAM_CHECK(shard < num_shards, "shard index out of range");
  block_shift_ =
      static_cast<std::uint32_t>(std::countr_zero(configs_[0].block_bytes));
  shard_ = shard;
  shard_mask_ = num_shards - 1;

  // One Mapping per distinct set count; sorted ascending for determinism.
  std::vector<std::uint32_t> set_counts;
  set_counts.reserve(configs_.size());
  for (const CacheConfig& c : configs_) set_counts.push_back(c.num_sets());
  std::sort(set_counts.begin(), set_counts.end());
  set_counts.erase(std::unique(set_counts.begin(), set_counts.end()),
                   set_counts.end());

  maps_.resize(set_counts.size());
  cfg_loc_.resize(configs_.size());
  std::uint32_t max_amax = 0;
  for (std::size_t m = 0; m < set_counts.size(); ++m) {
    Mapping& mp = maps_[m];
    mp.set_mask = set_counts[m] - 1;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> here;  // (assoc, cfg)
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      if (configs_[c].num_sets() != set_counts[m]) continue;
      cfg_loc_[c] = CfgLoc{static_cast<std::uint32_t>(m), configs_[c].assoc};
      here.emplace_back(configs_[c].assoc, static_cast<std::uint32_t>(c));
    }
    std::sort(here.begin(), here.end());
    for (const auto& [assoc, cfg] : here) {
      mp.assocs.push_back(assoc);
      mp.cfg_of.push_back(cfg);
      mp.amax = std::max(mp.amax, assoc);
    }
    mp.heads.assign(set_counts[m], kNil);
    mp.hits_at_pos.assign(mp.amax, 0);
    max_amax = std::max(max_amax, mp.amax);
  }
  walk_.resize(max_amax);
  writebacks_.assign(configs_.size(), 0);
  h_keys_.assign(1024, kNil);
  h_vals_.assign(1024, 0);
}

void StackStream::access_slow(std::uint32_t block, bool is_write) {
  std::uint32_t idx = find_entry(block);
  const bool is_new = idx == kNil;
  if (is_new) idx = new_entry(block);

  for (Mapping& mp : maps_) {
    const std::uint32_t set = block & mp.set_mask;

    // Walk the set's recency list from the MRU end, at most amax nodes —
    // beyond that every configuration of this mapping misses anyway.
    std::uint32_t cur = mp.heads[set];
    std::uint32_t n = 0;
    while (cur != kNil && cur != idx && n < mp.amax) {
      walk_[n++] = cur;
      cur = mp.next[cur];
    }
    // Recency position of the accessed block, saturated at amax.  Entries
    // are never unlinked, so a pool entry not found within the cap is
    // simply deeper than every configuration's ways.
    const std::uint32_t p = (!is_new && cur == idx) ? n : mp.amax;
    if (p < mp.amax) ++mp.hits_at_pos[p];

    // Evictions: an A-way configuration misses iff p >= A, and evicts iff
    // its set is full, i.e. at least A other blocks precede this one
    // (n >= A).  The victim is the LRU way — the walked node at A-1.
    for (std::size_t a = 0; a < mp.assocs.size(); ++a) {
      const std::uint32_t A = mp.assocs[a];
      if (A > p || A > n) break;  // assocs ascending: later ones fail too
      const std::uint32_t victim = walk_[A - 1];
      if (A > mp.clean_limit[victim]) ++writebacks_[mp.cfg_of[a]];
    }

    if (is_new) {
      const std::uint32_t h = mp.heads[set];
      mp.next.push_back(h);
      mp.prev.push_back(kNil);
      mp.clean_limit.push_back(is_write ? 0 : mp.amax);
      if (h != kNil) mp.prev[h] = idx;
      mp.heads[set] = idx;
    } else {
      // Splice to the front (p > 0 always: the head is the globally most
      // recent block, and the MRU fast path already filtered repeats).
      const std::uint32_t pr = mp.prev[idx];
      const std::uint32_t nx = mp.next[idx];
      if (pr == kNil) {
        mp.heads[set] = nx;
      } else {
        mp.next[pr] = nx;
      }
      if (nx != kNil) mp.prev[nx] = pr;
      const std::uint32_t h = mp.heads[set];
      mp.next[idx] = h;
      mp.prev[idx] = kNil;
      if (h != kNil) mp.prev[h] = idx;
      mp.heads[set] = idx;
      // Dirty-level update: a write dirties the block in every
      // configuration; a read at position p refills it clean in the
      // configurations that missed (assoc <= p) and leaves the rest alone.
      if (is_write) {
        mp.clean_limit[idx] = 0;
      } else if (p > mp.clean_limit[idx]) {
        mp.clean_limit[idx] = p;
      }
    }
  }

  mru_block_ = block;
  mru_entry_ = idx;
  mru_dirty_ = is_write;
}

void StackStream::mark_mru_dirty() {
  for (Mapping& mp : maps_) mp.clean_limit[mru_entry_] = 0;
  mru_dirty_ = true;
}

std::uint32_t StackStream::find_entry(std::uint32_t block) const {
  const std::uint32_t mask = static_cast<std::uint32_t>(h_keys_.size()) - 1;
  std::uint32_t i = hash_block(block) & mask;
  while (h_keys_[i] != kNil) {
    if (h_keys_[i] == block) return h_vals_[i];
    i = (i + 1) & mask;
  }
  return kNil;
}

std::uint32_t StackStream::new_entry(std::uint32_t block) {
  if ((h_used_ + 1) * 2 > h_keys_.size()) grow_table();
  const std::uint32_t idx = static_cast<std::uint32_t>(blocks_.size());
  blocks_.push_back(block);
  const std::uint32_t mask = static_cast<std::uint32_t>(h_keys_.size()) - 1;
  std::uint32_t i = hash_block(block) & mask;
  while (h_keys_[i] != kNil) i = (i + 1) & mask;
  h_keys_[i] = block;
  h_vals_[i] = idx;
  ++h_used_;
  return idx;
}

void StackStream::grow_table() {
  std::vector<std::uint32_t> keys(h_keys_.size() * 2, kNil);
  std::vector<std::uint32_t> vals(h_vals_.size() * 2, 0);
  const std::uint32_t mask = static_cast<std::uint32_t>(keys.size()) - 1;
  for (std::size_t i = 0; i < h_keys_.size(); ++i) {
    if (h_keys_[i] == kNil) continue;
    std::uint32_t j = hash_block(h_keys_[i]) & mask;
    while (keys[j] != kNil) j = (j + 1) & mask;
    keys[j] = h_keys_[i];
    vals[j] = h_vals_[i];
  }
  h_keys_ = std::move(keys);
  h_vals_ = std::move(vals);
}

CacheStats StackStream::stats_for(std::size_t c) const {
  const CfgLoc loc = cfg_loc_[c];
  const Mapping& mp = maps_[loc.map];
  std::uint64_t hits = mru_repeats_;
  for (std::uint32_t p = 0; p < loc.assoc; ++p) hits += mp.hits_at_pos[p];
  CacheStats s;
  s.accesses = accesses_;
  s.misses = accesses_ - hits;
  s.writebacks = writebacks_[c];
  return s;
}

StackSimBank::StackSimBank(const std::vector<CacheConfig>& configs,
                           unsigned shards_hint)
    : configs_(configs) {
  JTAM_CHECK(!configs_.empty(), "stack bank needs at least one config");
  loc_.resize(configs_.size());

  // Group by block size, preserving first-appearance order.
  std::vector<std::uint32_t> group_block;
  std::vector<std::vector<CacheConfig>> group_cfgs;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const std::uint32_t bb = configs_[i].block_bytes;
    std::size_t g = 0;
    while (g < group_block.size() && group_block[g] != bb) ++g;
    if (g == group_block.size()) {
      group_block.push_back(bb);
      group_cfgs.emplace_back();
    }
    loc_[i] = {static_cast<std::uint32_t>(g),
               static_cast<std::uint32_t>(group_cfgs[g].size())};
    group_cfgs[g].push_back(configs_[i]);
  }

  groups_.resize(group_cfgs.size());
  for (std::size_t g = 0; g < group_cfgs.size(); ++g) {
    std::uint32_t min_sets = 0xFFFFFFFFu;
    for (const CacheConfig& c : group_cfgs[g]) {
      min_sets = std::min(min_sets, c.num_sets());
    }
    std::uint32_t shards = 1;
    while (shards * 2 <= shards_hint && shards * 2 <= min_sets) shards *= 2;
    for (std::uint32_t s = 0; s < shards; ++s) {
      groups_[g].ishards.emplace_back(group_cfgs[g], s, shards);
      groups_[g].dshards.emplace_back(group_cfgs[g], s, shards);
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      tasks_.push_back(Task{static_cast<std::uint32_t>(g), s, false});
      tasks_.push_back(Task{static_cast<std::uint32_t>(g), s, true});
    }
  }
}

CacheStats StackSimBank::istats(std::size_t i) const {
  const auto [g, local] = loc_[i];
  CacheStats sum;
  for (const StackStream& s : groups_[g].ishards) {
    const CacheStats part = s.stats_for(local);
    sum.accesses += part.accesses;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  return sum;
}

CacheStats StackSimBank::dstats(std::size_t i) const {
  const auto [g, local] = loc_[i];
  CacheStats sum;
  for (const StackStream& s : groups_[g].dshards) {
    const CacheStats part = s.stats_for(local);
    sum.accesses += part.accesses;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  return sum;
}

void StackSimBank::on_fetch(std::uint32_t addr) {
  for (Group& g : groups_) {
    for (StackStream& s : g.ishards) s.access(addr & ~3u, /*is_write=*/false);
  }
}

void StackSimBank::on_data(std::uint32_t addr, bool is_write) {
  for (Group& g : groups_) {
    for (StackStream& s : g.dshards) s.access(addr & ~3u, is_write);
  }
}

void StackSimBank::run_task(std::size_t t, const std::uint32_t* fetch_words,
                            std::size_t nf, const std::uint32_t* data_words,
                            std::size_t nd) {
  const Task& tk = tasks_[t];
  Group& g = groups_[tk.group];
  if (tk.data) {
    g.dshards[tk.shard].data_block(data_words, nd);
  } else {
    g.ishards[tk.shard].fetch_block(fetch_words, nf);
  }
}

}  // namespace jtam::cache
