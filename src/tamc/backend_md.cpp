// Message-Driven back-end specifics: the inlet -> thread seam.
//
// "Inlets contain branches directly to threads, eliminating the need for
// storing pointers to ready threads in the frame.  Because control can be
// transferred directly from an inlet to a thread, both run at low
// priority." (§2.2)

#include "tamc/backend.h"

namespace jtam::tamc::detail {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

bool md_inlet_epilogue(LowerEnv& env, tam::CbId cb, const tam::Inlet& inlet,
                       const rt::FrameLayout& fl, bool inline_target) {
  Assembler& a = env.a;
  if (!inlet.post.has_value()) {
    a.suspend();
    return false;
  }
  const tam::ThreadId t = *inlet.post;
  if (fl.thread_is_sync(t)) {
    // Decrement the entry count; only the enabling post gains control.
    LabelRef fire = a.label();
    a.ld(R5, kRegFp, fl.ec_byte_off(t), "post: entry count");
    a.alui(Op::Subi, R5, R5, 1);
    a.brz(R5, fire);
    a.st(kRegFp, fl.ec_byte_off(t), R5);
    a.suspend();
    a.bind(fire);
    a.sti(kRegFp, fl.ec_byte_off(t),
          env.prog.codeblocks[cb].threads[t].entry_count, "re-arm");
  }
  if (inline_target) {
    return true;  // thread body is emitted right here (fall-through)
  }
  a.br(env.thread_labels[cb][t], "post: branch directly to thread");
  return false;
}

}  // namespace jtam::tamc::detail
