#include "tamc/regalloc.h"

#include <array>
#include <string>

#include "support/error.h"

namespace jtam::tamc {

using tam::VOp;
using tam::VOpKind;
using tam::VReg;

bool is_fp_call(const VOp& op) {
  return (op.kind == VOpKind::Bin || op.kind == VOpKind::BinI) &&
         tam::is_float_op(op.bop);
}

void collect_uses(const VOp& op, std::vector<VReg>& out) {
  auto add = [&](VReg v) {
    if (v >= 0) out.push_back(v);
  };
  switch (op.kind) {
    case VOpKind::Const:
    case VOpKind::MsgLoad:
    case VOpKind::SelfFrame:
    case VOpKind::InletAddr:
    case VOpKind::FrameLoad:
    case VOpKind::FAlloc:
    case VOpKind::Release:
      break;
    case VOpKind::Bin:
      add(op.a);
      add(op.b);
      break;
    case VOpKind::Copy:
    case VOpKind::SpillStore:
    case VOpKind::BinI:
    case VOpKind::FrameStore:
    case VOpKind::SendHalt:
      add(op.a);
      break;
    case VOpKind::SpillLoad:
      break;
    case VOpKind::Select:
      add(op.c);
      add(op.a);
      add(op.b);
      break;
    case VOpKind::IFetch:
    case VOpKind::GFetch:
    case VOpKind::HAlloc:
      add(op.a);
      break;
    case VOpKind::IStore:
    case VOpKind::GStore:
      add(op.a);
      add(op.b);
      break;
    case VOpKind::SendMsg:
      add(op.a);
      for (VReg v : op.args) add(v);
      break;
    case VOpKind::SendDyn:
      add(op.a);
      add(op.b);
      for (VReg v : op.args) add(v);
      break;
  }
}

namespace {

struct Liveness {
  std::vector<int> def_idx;
  std::vector<int> last_use;
  std::vector<bool> crossing;  // live across an FP-library call
  int num_vregs = 0;
};

Liveness compute_liveness(const std::vector<VOp>& body, VReg term_cond) {
  Liveness lv;
  for (const VOp& op : body) {
    if (op.dst >= 0) lv.num_vregs = std::max(lv.num_vregs, op.dst + 1);
  }
  lv.def_idx.assign(static_cast<std::size_t>(lv.num_vregs), -1);
  lv.last_use.assign(static_cast<std::size_t>(lv.num_vregs), -1);
  std::vector<int> call_sites;
  std::vector<VReg> uses;
  for (int i = 0; i < static_cast<int>(body.size()); ++i) {
    const VOp& op = body[i];
    uses.clear();
    collect_uses(op, uses);
    for (VReg v : uses) {
      JTAM_CHECK(v < lv.num_vregs && lv.def_idx[v] >= 0,
                 "vreg used before definition");
      lv.last_use[v] = i;
    }
    if (op.dst >= 0) lv.def_idx[op.dst] = i;
    if (is_fp_call(op)) call_sites.push_back(i);
  }
  if (term_cond >= 0) {
    JTAM_CHECK(term_cond < lv.num_vregs && lv.def_idx[term_cond] >= 0,
               "terminator condition vreg undefined");
    lv.last_use[term_cond] = static_cast<int>(body.size());
  }
  lv.crossing.assign(static_cast<std::size_t>(lv.num_vregs), false);
  for (int v = 0; v < lv.num_vregs; ++v) {
    for (int c : call_sites) {
      if (lv.def_idx[v] < c && c < lv.last_use[v]) {
        lv.crossing[v] = true;
        break;
      }
    }
  }
  return lv;
}

struct TryResult {
  bool ok = false;
  AllocatedBody alloc;
  int fail_idx = -1;
  bool fail_crossing = false;
};

TryResult try_allocate(const std::vector<VOp>& body, const Liveness& lv) {
  TryResult out;
  out.alloc.reg_of.assign(static_cast<std::size_t>(lv.num_vregs), mdp::R0);
  std::array<VReg, 5> holder;  // which vreg currently occupies R0..R4
  holder.fill(-1);

  auto expire = [&](int now) {
    for (int r = 0; r < 5; ++r) {
      if (holder[r] >= 0 && lv.last_use[holder[r]] < now) holder[r] = -1;
    }
  };

  for (int i = 0; i < static_cast<int>(body.size()); ++i) {
    const VOp& op = body[i];
    if (op.dst < 0) continue;
    expire(i);
    const bool crossing = lv.crossing[op.dst];
    // Prefer the volatile pair for short-lived values so the call-safe
    // registers stay available for values that must survive FP calls.
    static constexpr int kPreferVolatile[] = {0, 1, 2, 3, 4};
    static constexpr int kSafeOnly[] = {2, 3, 4};
    int chosen = -1;
    if (crossing) {
      for (int r : kSafeOnly) {
        if (holder[r] < 0) { chosen = r; break; }
      }
    } else {
      for (int r : kPreferVolatile) {
        if (holder[r] < 0) { chosen = r; break; }
      }
    }
    if (chosen < 0) {
      out.fail_idx = i;
      out.fail_crossing = crossing;
      return out;
    }
    holder[chosen] = op.dst;
    out.alloc.reg_of[op.dst] = static_cast<mdp::Reg>(chosen);
  }
  out.ok = true;
  return out;
}

void replace_uses(VOp& op, VReg from, VReg to) {
  if (op.kind == VOpKind::FrameLoad || op.kind == VOpKind::SpillLoad ||
      op.kind == VOpKind::Const || op.kind == VOpKind::MsgLoad ||
      op.kind == VOpKind::SelfFrame || op.kind == VOpKind::InletAddr) {
    return;  // no register uses
  }
  // `c` and `b` and `a` are uses for every remaining kind except that
  // `dst` is never a use.
  if (op.a == from && op.kind != VOpKind::FAlloc) op.a = to;
  if (op.b == from) op.b = to;
  if (op.c == from) op.c = to;
  for (VReg& v : op.args) {
    if (v == from) v = to;
  }
}

bool op_uses(const VOp& op, VReg v) {
  std::vector<VReg> uses;
  collect_uses(op, uses);
  for (VReg u : uses) {
    if (u == v) return true;
  }
  return false;
}

}  // namespace

AllocatedBody allocate_registers(const std::vector<VOp>& body,
                                 VReg term_cond) {
  Liveness lv = compute_liveness(body, term_cond);
  TryResult tr = try_allocate(body, lv);
  JTAM_CHECK(tr.ok,
             std::string("register pressure too high in body (op ") +
                 std::to_string(tr.fail_idx) +
                 (tr.fail_crossing
                      ? ", value live across an FP call; only R2-R4 "
                        "survive calls)"
                      : ")") +
                 " — use allocate_with_spilling");
  return tr.alloc;
}

SpilledBody allocate_with_spilling(std::vector<VOp> body, VReg term_cond,
                                   int boundary) {
  std::vector<bool> unspillable;  // spill-derived or already-spilled vregs
  int num_spills = 0;

  for (;;) {
    Liveness lv = compute_liveness(body, term_cond);
    unspillable.resize(static_cast<std::size_t>(lv.num_vregs), false);
    TryResult tr = try_allocate(body, lv);
    if (tr.ok) {
      SpilledBody out;
      out.ops = std::move(body);
      out.term_cond = term_cond;
      out.alloc = std::move(tr.alloc);
      out.num_spill_slots = num_spills;
      out.boundary = boundary;
      return out;
    }

    // Choose a spill victim among values live at the failure point: the
    // one whose last use is furthest away (Belady).  When the scarce
    // call-safe class overflowed, prefer a call-crossing victim.
    auto pick = [&](bool require_crossing) {
      int victim = -1;
      int best_last = -1;
      for (int v = 0; v < lv.num_vregs; ++v) {
        if (unspillable[v]) continue;
        if (lv.def_idx[v] < 0 || lv.def_idx[v] > tr.fail_idx) continue;
        if (lv.last_use[v] < tr.fail_idx) continue;
        if (lv.last_use[v] <= lv.def_idx[v]) continue;  // nothing to split
        if (require_crossing && !lv.crossing[v]) continue;
        if (lv.last_use[v] > best_last) {
          best_last = lv.last_use[v];
          victim = v;
        }
      }
      return victim;
    };
    int victim = tr.fail_crossing ? pick(true) : pick(false);
    if (victim < 0) victim = pick(false);
    JTAM_CHECK(victim >= 0,
               "register allocation failed and no spill candidate exists — "
               "an instruction needs more simultaneous operands than the "
               "MDP register file holds");

    // Rewrite: store the victim right after its definition; reload before
    // every later use (and before the terminator, if it is the condition).
    const int slot = num_spills++;
    const int def_at = lv.def_idx[victim];
    std::vector<VOp> out;
    out.reserve(body.size() + 4);
    std::vector<VReg> fresh;  // spill-derived vregs (unspillable)
    int next_tmp = lv.num_vregs;
    int new_boundary = boundary;
    for (int i = 0; i < static_cast<int>(body.size()); ++i) {
      VOp op = body[i];
      if (i > def_at && op_uses(op, victim)) {
        VOp ld;
        ld.kind = VOpKind::SpillLoad;
        ld.dst = next_tmp;
        ld.imm = slot;
        out.push_back(ld);
        fresh.push_back(next_tmp);
        replace_uses(op, victim, next_tmp);
        ++next_tmp;
        if (boundary >= 0 && i < boundary) ++new_boundary;
      }
      out.push_back(op);
      if (op.dst == victim) {
        VOp stp;
        stp.kind = VOpKind::SpillStore;
        stp.a = victim;
        stp.imm = slot;
        out.push_back(stp);
        if (boundary >= 0 && i < boundary) ++new_boundary;
      }
    }
    VReg new_cond = term_cond;
    if (term_cond == victim) {
      VOp ld;
      ld.kind = VOpKind::SpillLoad;
      ld.dst = next_tmp;
      ld.imm = slot;
      out.push_back(ld);
      fresh.push_back(next_tmp);
      new_cond = next_tmp;
      ++next_tmp;
    }

    // Renumber densely (defs appear in order, so a single forward pass
    // assigns and remaps safely).
    std::vector<VReg> remap(static_cast<std::size_t>(next_tmp), -1);
    int next_id = 0;
    for (VOp& op : out) {
      auto m = [&](VReg v) { return v >= 0 ? remap[v] : v; };
      // Remap use fields (only meaningful ones; harmless otherwise since
      // replace_uses-style guards are not needed for a pure renumber —
      // every non-negative register field except dst is a vreg id).
      switch (op.kind) {
        case VOpKind::Const:
        case VOpKind::MsgLoad:
        case VOpKind::SelfFrame:
        case VOpKind::InletAddr:
        case VOpKind::FrameLoad:
        case VOpKind::SpillLoad:
        case VOpKind::FAlloc:
        case VOpKind::Release:
          break;
        default:
          op.a = m(op.a);
          op.b = m(op.b);
          op.c = m(op.c);
          for (VReg& v : op.args) v = m(v);
          break;
      }
      if (op.dst >= 0) {
        remap[op.dst] = next_id;
        op.dst = next_id;
        ++next_id;
      }
    }
    if (new_cond >= 0) new_cond = remap[new_cond];

    std::vector<bool> new_unspillable(static_cast<std::size_t>(next_id),
                                      false);
    for (int v = 0; v < lv.num_vregs; ++v) {
      if (unspillable[v] && remap[v] >= 0) new_unspillable[remap[v]] = true;
    }
    if (remap[victim] >= 0) new_unspillable[remap[victim]] = true;
    for (VReg f : fresh) {
      if (remap[f] >= 0) new_unspillable[remap[f]] = true;
    }

    body = std::move(out);
    term_cond = new_cond;
    boundary = new_boundary;
    unspillable = std::move(new_unspillable);
  }
}

}  // namespace jtam::tamc
