#include "tamc/symbols.h"

#include <algorithm>
#include <cctype>

namespace jtam::tamc {

namespace {

/// Parse "u<cb>_t<t>" / "u<cb>_in<i>" names; returns false for others.
bool parse_user_sym(const std::string& name, SymbolKind* kind, int* cb,
                    int* idx) {
  if (name.size() < 4 || name[0] != 'u' ||
      std::isdigit(static_cast<unsigned char>(name[1])) == 0) {
    return false;
  }
  std::size_t p = 1;
  int cb_v = 0;
  while (p < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[p])) != 0) {
    cb_v = cb_v * 10 + (name[p] - '0');
    ++p;
  }
  if (p + 1 >= name.size() || name[p] != '_') return false;
  ++p;
  SymbolKind k;
  if (name.compare(p, 2, "in") == 0) {
    k = SymbolKind::Inlet;
    p += 2;
  } else if (name[p] == 't') {
    k = SymbolKind::Thread;
    p += 1;
  } else {
    return false;
  }
  if (p >= name.size()) return false;
  int idx_v = 0;
  for (; p < name.size(); ++p) {
    if (std::isdigit(static_cast<unsigned char>(name[p])) == 0) return false;
    idx_v = idx_v * 10 + (name[p] - '0');
  }
  *kind = k;
  *cb = cb_v;
  *idx = idx_v;
  return true;
}

SymbolKind classify(const std::string& name, mem::Addr addr, int* cb,
                    int* idx) {
  *cb = -1;
  *idx = -1;
  if (name.rfind("fp_", 0) == 0) return SymbolKind::FpLib;
  SymbolKind k;
  if (parse_user_sym(name, &k, cb, idx)) return k;
  if (addr < mem::kUserCodeBase) return SymbolKind::Kernel;
  return SymbolKind::Other;
}

}  // namespace

const char* symbol_kind_name(SymbolKind k) {
  switch (k) {
    case SymbolKind::Kernel: return "kernel";
    case SymbolKind::FpLib: return "fplib";
    case SymbolKind::Inlet: return "inlet";
    case SymbolKind::Thread: return "thread";
    case SymbolKind::Other: return "other";
  }
  return "?";
}

SymbolMap SymbolMap::from(const CompiledProgram& cp) {
  return from_image(cp.image);
}

SymbolMap SymbolMap::from_image(const mdp::CodeImage& image) {
  SymbolMap m;
  m.spans_.reserve(image.symbols.size());
  for (const auto& [name, addr] : image.symbols) {
    SymbolSpan s;
    s.begin = addr;
    s.name = name;
    s.kind = classify(name, addr, &s.cb, &s.idx);
    m.spans_.push_back(std::move(s));
  }
  std::sort(m.spans_.begin(), m.spans_.end(),
            [](const SymbolSpan& a, const SymbolSpan& b) {
              return a.begin < b.begin;
            });
  // Close each span at the next symbol or its section's code limit.
  const mem::Addr sys_limit = image.sys_code_limit();
  const mem::Addr user_limit = image.user_code_limit();
  for (std::size_t i = 0; i < m.spans_.size(); ++i) {
    const mem::Addr section_limit =
        m.spans_[i].begin < mem::kUserCodeBase ? sys_limit : user_limit;
    m.spans_[i].end = i + 1 < m.spans_.size()
                          ? std::min(m.spans_[i + 1].begin, section_limit)
                          : section_limit;
  }
  m.begins_.reserve(m.spans_.size());
  for (const SymbolSpan& s : m.spans_) m.begins_.push_back(s.begin);
  return m;
}

const SymbolSpan* SymbolMap::find(mem::Addr a) const {
  auto it = std::upper_bound(begins_.begin(), begins_.end(), a);
  if (it == begins_.begin()) return nullptr;
  const SymbolSpan& s = spans_[static_cast<std::size_t>(
      std::distance(begins_.begin(), it) - 1)];
  return a < s.end ? &s : nullptr;
}

}  // namespace jtam::tamc
