#include "tamc/lower.h"

#include <unordered_map>

#include "support/error.h"
#include "tamc/backend.h"
#include "tamc/regalloc.h"

namespace jtam::tamc {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL
using detail::LowerEnv;
using tam::BinOp;
using tam::CbId;
using tam::InletId;
using tam::SlotId;
using tam::ThreadId;
using tam::VOp;
using tam::VOpKind;
using tam::VReg;

namespace {

Op map_bin(BinOp b) {
  switch (b) {
    case BinOp::Add: return Op::Add;
    case BinOp::Sub: return Op::Sub;
    case BinOp::Mul: return Op::Mul;
    case BinOp::Div: return Op::Divs;
    case BinOp::Mod: return Op::Mods;
    case BinOp::And: return Op::And;
    case BinOp::Or: return Op::Or;
    case BinOp::Xor: return Op::Xor;
    case BinOp::Shl: return Op::Shl;
    case BinOp::Shr: return Op::Shr;
    case BinOp::Lt: return Op::Slt;
    case BinOp::Le: return Op::Sle;
    case BinOp::Eq: return Op::Seq;
    case BinOp::Ne: return Op::Sne;
    default:
      throw Error("map_bin on floating-point operator");
  }
}

/// Integer ops with an immediate form; others materialize via R5.
bool has_imm_form(BinOp b) {
  switch (b) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Shl:
    case BinOp::Shr:
    case BinOp::Lt:
      return true;
    default:
      return false;
  }
}

Op map_bini(BinOp b) {
  switch (b) {
    case BinOp::Add: return Op::Addi;
    case BinOp::Sub: return Op::Subi;
    case BinOp::Mul: return Op::Muli;
    case BinOp::And: return Op::Andi;
    case BinOp::Or: return Op::Ori;
    case BinOp::Shl: return Op::Shli;
    case BinOp::Shr: return Op::Shri;
    case BinOp::Lt: return Op::Slti;
    default:
      throw Error("map_bini on operator without an immediate form");
  }
}

LabelRef fp_label(const rt::KernelRefs& k, BinOp b) {
  switch (b) {
    case BinOp::FAdd: return k.fp_add;
    case BinOp::FSub: return k.fp_sub;
    case BinOp::FMul: return k.fp_mul;
    case BinOp::FDiv: return k.fp_div;
    case BinOp::FLt: return k.fp_lt;
    default:
      throw Error("fp_label on integer operator");
  }
}

/// Shared body code generator (identical in both back-ends; only the queue
/// carrying inlet messages differs).
class BodyGen {
 public:
  BodyGen(LowerEnv& env, CbId cb, const rt::FrameLayout& fl,
          const SpilledBody& prepared)
      : env_(env),
        cb_(cb),
        fl_(fl),
        ops_(prepared.ops),
        alloc_(prepared.alloc) {}

  /// Emit all ops.  `at_boundary` (if given) runs before op `boundary` —
  /// used by the fused inlet+thread path to bind the thread label and emit
  /// its ThreadStart mark at the seam.
  template <typename Fn>
  void emit(int boundary, Fn&& at_boundary) {
    for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
      if (i == boundary) at_boundary();
      emit_op(ops_[i]);
    }
    if (boundary == static_cast<int>(ops_.size())) at_boundary();
  }
  void emit() {
    emit(-1, [] {});
  }

  Reg reg(VReg v) const { return alloc_.reg_of[static_cast<std::size_t>(v)]; }

 private:
  void begin_inlet_send() {
    if (env_.inletq == Priority::High) {
      env_.a.sendh();
    } else {
      env_.a.sendl();
    }
  }

  /// Multi-node: route the composing message to the node owning the
  /// address/frame in `r` (its node field, mem::NodeCodec).  No-op on
  /// single-node builds.
  void route_by(Reg r) {
    if (!env_.opt.multi_node) return;
    rt::emit_node_of(env_.a, R5, r, env_.opt.node_shift, "destination node");
    env_.a.sendd(R5);
  }

  void emit_fp_call(const VOp& op) {
    Assembler& a = env_.a;
    const Reg ra = reg(op.a);
    const Reg rb = reg(op.b);
    // Marshal (ra, rb) into (R0, R1) without clobbering either.
    if (ra == R0) {
      if (rb != R1) a.mov(R1, rb);
    } else if (rb == R1) {
      a.mov(R0, ra);
    } else if (rb == R0) {
      a.mov(R5, rb);
      a.mov(R0, ra);
      a.mov(R1, R5);
    } else {
      a.mov(R0, ra);
      if (rb != R1) a.mov(R1, rb);
    }
    a.call(fp_label(env_.kernel, op.bop), "software FP");
    if (reg(op.dst) != R0) a.mov(reg(op.dst), R0);
  }

  void emit_op(const VOp& op) {
    Assembler& a = env_.a;
    switch (op.kind) {
      case VOpKind::Const:
        a.movi(reg(op.dst), op.imm);
        break;
      case VOpKind::Copy:
        if (reg(op.dst) != reg(op.a)) a.mov(reg(op.dst), reg(op.a));
        break;
      case VOpKind::SpillStore:
        a.st(kRegFp, fl_.spill_byte_off(op.imm), reg(op.a), "spill");
        break;
      case VOpKind::SpillLoad:
        a.ld(reg(op.dst), kRegFp, fl_.spill_byte_off(op.imm), "reload");
        break;
      case VOpKind::Bin:
        if (tam::is_float_op(op.bop)) {
          emit_fp_call(op);
        } else {
          a.alu(map_bin(op.bop), reg(op.dst), reg(op.a), reg(op.b));
        }
        break;
      case VOpKind::BinI:
        if (has_imm_form(op.bop)) {
          a.alui(map_bini(op.bop), reg(op.dst), reg(op.a), op.imm);
        } else {
          a.movi(R5, op.imm);
          a.alu(map_bin(op.bop), reg(op.dst), reg(op.a), R5);
        }
        break;
      case VOpKind::Select: {
        LabelRef lelse = a.label();
        LabelRef lend = a.label();
        a.brz(reg(op.c), lelse);
        if (reg(op.dst) != reg(op.a)) a.mov(reg(op.dst), reg(op.a));
        a.br(lend);
        a.bind(lelse);
        if (reg(op.dst) != reg(op.b)) a.mov(reg(op.dst), reg(op.b));
        a.bind(lend);
        break;
      }
      case VOpKind::FrameLoad:
        a.ld(reg(op.dst), kRegFp, fl_.slot_byte_off(op.imm));
        break;
      case VOpKind::FrameStore:
        a.st(kRegFp, fl_.slot_byte_off(op.imm), reg(op.a));
        break;
      case VOpKind::MsgLoad:
        a.ldm(reg(op.dst), 8 + 4 * op.imm, "message operand");
        break;
      case VOpKind::SelfFrame:
        a.mov(reg(op.dst), kRegFp);
        break;
      case VOpKind::InletAddr:
        a.movi(reg(op.dst), env_.inlet_labels[cb_][op.inlet],
               "continuation inlet");
        break;
      case VOpKind::IFetch:
        a.sendh();
        route_by(reg(op.a));
        a.sendwi(env_.kernel.rt_ifetch);
        a.sendw(reg(op.a), "address");
        a.sendwi(env_.inlet_labels[cb_][op.inlet], "reply inlet");
        a.sendw(kRegFp);
        a.sende();
        break;
      case VOpKind::GFetch:
        a.sendh();
        route_by(reg(op.a));
        a.sendwi(env_.kernel.rt_gfetch);
        a.sendw(reg(op.a), "address");
        a.sendwi(env_.inlet_labels[cb_][op.inlet], "reply inlet");
        a.sendw(kRegFp);
        a.sende();
        break;
      case VOpKind::IStore:
        a.sendh();
        route_by(reg(op.a));
        a.sendwi(env_.kernel.rt_istore);
        a.sendw(reg(op.a), "address");
        a.sendw(reg(op.b), "value");
        a.sende();
        break;
      case VOpKind::GStore:
        a.sendh();
        route_by(reg(op.a));
        a.sendwi(env_.kernel.rt_gstore);
        a.sendw(reg(op.a), "address");
        a.sendw(reg(op.b), "value");
        a.sende();
        break;
      case VOpKind::FAlloc:
        a.sendh();
        // The codeblock id rides in SENDDR's immediate as the placement
        // key, so key-driven policies (owner-computes) can home every
        // activation of a codeblock on one node; the default round-robin
        // policy ignores it (mdp/placement.h).
        if (env_.opt.multi_node) {
          a.senddr(op.cb, "policy frame placement, keyed by codeblock");
        }
        a.sendwi(env_.kernel.rt_falloc);
        a.sendwi(op.cb, "codeblock id");
        a.sendwi(env_.inlet_labels[cb_][op.inlet], "reply inlet");
        a.sendw(kRegFp);
        a.sende();
        break;
      case VOpKind::HAlloc:
        a.sendh();
        a.sendwi(env_.kernel.rt_halloc);
        a.sendw(reg(op.a), "size in bytes");
        a.sendwi(env_.inlet_labels[cb_][op.inlet], "reply inlet");
        a.sendw(kRegFp);
        a.sende();
        break;
      case VOpKind::Release:
        a.sendh();
        a.sendwi(env_.kernel.rt_ffree);
        a.sendwi(cb_, "codeblock id");
        a.sendw(kRegFp);
        a.sende();
        break;
      case VOpKind::SendMsg:
        begin_inlet_send();
        route_by(reg(op.a));
        a.sendwi(env_.inlet_labels[op.cb][op.inlet], "target inlet");
        a.sendw(reg(op.a), "target frame");
        for (VReg v : op.args) a.sendw(reg(v));
        a.sende();
        break;
      case VOpKind::SendDyn:
        begin_inlet_send();
        route_by(reg(op.b));
        a.sendw(reg(op.a), "continuation inlet");
        a.sendw(reg(op.b), "continuation frame");
        for (VReg v : op.args) a.sendw(reg(v));
        a.sende();
        break;
      case VOpKind::SendHalt:
        a.sendh();
        a.sendwi(env_.kernel.rt_halt);
        a.sendw(reg(op.a), "result");
        a.sende();
        break;
    }
  }

  LowerEnv& env_;
  CbId cb_;
  const rt::FrameLayout& fl_;
  const std::vector<VOp>& ops_;
  const AllocatedBody& alloc_;
};

// --- fork / stop emission ----------------------------------------------------

void emit_stop(LowerEnv& env, bool suspend_ok) {
  if (suspend_ok) {
    // MD §2.3: the LCV is statically known to be empty here.
    // Hybrid: handler-runnable threads end their high-priority handler.
    env.a.suspend();
  } else {
    rt::emit_lcv_pop_jmp(env.a);
  }
}

void emit_fork_push(LowerEnv& env, CbId cb, const rt::FrameLayout& fl,
                    ThreadId t) {
  Assembler& a = env.a;
  if (fl.thread_is_sync(t)) {
    LabelRef store = a.label();
    LabelRef done = a.label();
    a.ld(R5, kRegFp, fl.ec_byte_off(t), "fork: entry count");
    a.alui(Op::Subi, R5, R5, 1);
    a.brnz(R5, store);
    a.sti(kRegFp, fl.ec_byte_off(t),
          env.prog.codeblocks[cb].threads[t].entry_count, "re-arm");
    rt::emit_lcv_push_label(a, env.thread_labels[cb][t]);
    a.br(done);
    a.bind(store);
    a.st(kRegFp, fl.ec_byte_off(t), R5);
    a.bind(done);
  } else {
    rt::emit_lcv_push_label(a, env.thread_labels[cb][t]);
  }
}

/// Tail fork: becomes a branch ("when a fork occurs at the end of a thread,
/// it is converted by the compiler into a branch when possible", §1.1.3).
/// Returns true if the not-ready path falls through (caller emits a stop).
bool emit_fork_tail(LowerEnv& env, CbId cb, const rt::FrameLayout& fl,
                    ThreadId t) {
  Assembler& a = env.a;
  if (fl.thread_is_sync(t)) {
    LabelRef store = a.label();
    a.ld(R5, kRegFp, fl.ec_byte_off(t), "tail fork: entry count");
    a.alui(Op::Subi, R5, R5, 1);
    a.brnz(R5, store);
    a.sti(kRegFp, fl.ec_byte_off(t),
          env.prog.codeblocks[cb].threads[t].entry_count, "re-arm");
    a.br(env.thread_labels[cb][t], "tail fork -> branch");
    a.bind(store);
    a.st(kRegFp, fl.ec_byte_off(t), R5);
    return true;
  }
  a.br(env.thread_labels[cb][t], "tail fork -> branch");
  return false;
}

void emit_terminator(LowerEnv& env, CbId cb, const rt::FrameLayout& fl,
                     const tam::Terminator& term, BodyGen& gen,
                     bool suspend_ok) {
  Assembler& a = env.a;
  if (env.opt.backend == rt::BackendKind::ActiveMessages) {
    detail::am_terminator_begin(env);
  }
  auto emit_arm = [&](const std::vector<ThreadId>& forks) {
    if (forks.empty()) {
      emit_stop(env, suspend_ok);
      return;
    }
    for (std::size_t k = 0; k + 1 < forks.size(); ++k) {
      emit_fork_push(env, cb, fl, forks[k]);
    }
    if (emit_fork_tail(env, cb, fl, forks.back())) {
      emit_stop(env, suspend_ok);
    }
  };
  if (term.cond >= 0) {
    LabelRef lelse = a.label();
    a.brz(gen.reg(term.cond), lelse, "conditional forks");
    emit_arm(term.then_forks);
    a.bind(lelse);
    emit_arm(term.else_forks);
  } else {
    emit_arm(term.then_forks);
  }
}

// --- thread / inlet emission ---------------------------------------------------

/// True when `t` executes inside a high-priority handler (Hybrid only).
bool runs_in_handler(const LowerEnv& env, CbId cb, ThreadId t) {
  return env.opt.backend == rt::BackendKind::Hybrid &&
         env.hybrid_runnable[cb][t];
}

void emit_thread(LowerEnv& env, CbId cb, ThreadId t, bool already_bound) {
  Assembler& a = env.a;
  const tam::Thread& th = env.prog.codeblocks[cb].threads[t];
  const rt::FrameLayout& fl = env.layouts[cb];
  const SpilledBody& prepared = env.prep_threads[cb][t];
  const bool in_handler = runs_in_handler(env, cb, t);
  if (!already_bound) a.bind(env.thread_labels[cb][t]);
  a.mark(MarkKind::ThreadStart, kRegFp);
  if (env.opt.backend == rt::BackendKind::ActiveMessages ||
      (env.opt.backend == rt::BackendKind::Hybrid && !in_handler)) {
    detail::am_thread_prolog(env);
  }
  BodyGen gen(env, cb, fl, prepared);
  gen.emit();
  tam::Terminator term = th.term;
  term.cond = prepared.term_cond;  // spill rewrites may renumber it
  const bool suspend_ok =
      (env.opt.backend == rt::BackendKind::MessageDriven &&
       env.mdplan.cbs[cb].suspend_stop[t]) ||
      in_handler;
  emit_terminator(env, cb, fl, term, gen, suspend_ok);
}

/// Build the fused inlet+thread body for the §2.3 elision path.
struct FusedBody {
  std::vector<VOp> ops;
  int boundary = 0;
  VReg term_cond = -1;
};

FusedBody fuse_bodies(const tam::Inlet& in, const tam::Thread& th,
                      const std::vector<SlotId>& elided) {
  FusedBody fb;
  std::unordered_map<SlotId, VReg> slot_src;
  auto is_elided = [&](SlotId s) {
    for (SlotId e : elided) {
      if (e == s) return true;
    }
    return false;
  };
  int n = 0;  // inlet virtual register count
  for (const VOp& op : in.body) {
    if (op.dst >= 0) n = std::max(n, op.dst + 1);
  }
  for (const VOp& op : in.body) {
    if (op.kind == VOpKind::FrameStore && is_elided(op.imm)) {
      slot_src[op.imm] = op.a;  // forwarded in a register instead
      continue;
    }
    fb.ops.push_back(op);
  }
  fb.boundary = static_cast<int>(fb.ops.size());
  auto shift = [n](VReg v) { return v >= 0 ? v + n : v; };
  for (const VOp& op : th.body) {
    VOp c = op;
    c.dst = shift(c.dst);
    c.a = shift(c.a);
    c.b = shift(c.b);
    c.c = shift(c.c);
    for (VReg& v : c.args) v = shift(v);
    if (op.kind == VOpKind::FrameLoad && is_elided(op.imm)) {
      c.kind = VOpKind::Copy;
      c.a = slot_src.at(op.imm);  // un-shifted: defined in the inlet part
      c.imm = 0;
    }
    fb.ops.push_back(c);
  }
  fb.term_cond = shift(th.term.cond);
  return fb;
}

void emit_inlet(LowerEnv& env, CbId cb, InletId i) {
  Assembler& a = env.a;
  const tam::Inlet& in = env.prog.codeblocks[cb].inlets[i];
  const rt::FrameLayout& fl = env.layouts[cb];
  const CbOptPlan& plan = env.mdplan.cbs[cb];

  a.bind(env.inlet_labels[cb][i]);
  a.ldm(kRegFp, 4, "frame pointer");
  a.mark(MarkKind::InletStart, kRegFp);

  const ThreadId inline_t = plan.inline_thread[i];
  const SpilledBody& prepared = env.prep_inlets[cb][i];
  const bool fused = prepared.boundary >= 0;

  if (fused) {
    // Non-synchronizing by construction (mdopt).  Inlet ops flow straight
    // into the thread's ops in one register-allocation scope; elided slots
    // travel in registers.
    const tam::Thread& th = env.prog.codeblocks[cb].threads[inline_t];
    BodyGen gen(env, cb, fl, prepared);
    gen.emit(prepared.boundary, [&] {
      a.bind(env.thread_labels[cb][inline_t]);
      a.mark(MarkKind::ThreadStart, kRegFp);
    });
    tam::Terminator shifted = th.term;
    shifted.cond = prepared.term_cond;
    emit_terminator(env, cb, fl, shifted, gen,
                    plan.suspend_stop[inline_t]);
    return;
  }

  BodyGen gen(env, cb, fl, prepared);
  gen.emit();
  switch (env.opt.backend) {
    case rt::BackendKind::ActiveMessages:
      detail::am_inlet_epilogue(env, cb, in, fl);
      return;
    case rt::BackendKind::Hybrid:
      // Optimistic path: a handler-safe posted thread is entered directly
      // (message-driven style) at high priority; otherwise fall back to the
      // AM scheduling hierarchy through rt_post.
      if (in.post.has_value() && env.hybrid_runnable[cb][*in.post]) {
        detail::md_inlet_epilogue(env, cb, in, fl, /*inline_target=*/false);
      } else {
        detail::am_inlet_epilogue(env, cb, in, fl);
      }
      return;
    case rt::BackendKind::MessageDriven:
      break;
  }
  const bool falls =
      detail::md_inlet_epilogue(env, cb, in, fl, inline_t >= 0);
  if (falls) {
    a.bind(env.thread_labels[cb][inline_t]);
    emit_thread(env, cb, inline_t, /*already_bound=*/true);
  }
}

void emit_codeblock(LowerEnv& env, CbId cb) {
  const tam::Codeblock& block = env.prog.codeblocks[cb];
  for (InletId i = 0; i < static_cast<int>(block.inlets.size()); ++i) {
    emit_inlet(env, cb, i);
  }
  for (ThreadId t = 0; t < static_cast<int>(block.threads.size()); ++t) {
    if (env.mdplan.cbs[cb].thread_inlined[t]) continue;
    emit_thread(env, cb, t, /*already_bound=*/false);
  }
}

}  // namespace

// --- CompiledProgram ---------------------------------------------------------

std::string CompiledProgram::thread_sym(CbId cb, ThreadId t) {
  return "u" + std::to_string(cb) + "_t" + std::to_string(t);
}

std::string CompiledProgram::inlet_sym(CbId cb, InletId i) {
  return "u" + std::to_string(cb) + "_in" + std::to_string(i);
}

mem::Addr CompiledProgram::thread_addr(CbId cb, ThreadId t) const {
  return image.symbol(thread_sym(cb, t));
}

mem::Addr CompiledProgram::inlet_addr(CbId cb, InletId i) const {
  return image.symbol(inlet_sym(cb, i));
}

mem::Addr CompiledProgram::lcv_sentinel() const {
  return options.backend == rt::BackendKind::MessageDriven
             ? image.symbol("md_stub")
             : image.symbol("am_swap");
}

mem::Addr CompiledProgram::kernel_addr(const std::string& name) const {
  return image.symbol(name);
}

// --- compile -------------------------------------------------------------------

CompiledProgram compile(const tam::Program& prog, const CompileOptions& opts) {
  tam::validate(prog);
  JTAM_CHECK(prog.codeblocks.size() <=
                 static_cast<std::size_t>(rt::kMaxCodeblocks),
             "too many codeblocks for the descriptor table");

  Assembler a;
  a.section(Section::SysCode);
  rt::KernelRefs kernel =
      rt::emit_kernel(a, {opts.backend, opts.multi_node, opts.node_shift});

  const MdOptPlan plan = analyze_md_opts(
      prog, opts.backend == rt::BackendKind::MessageDriven ? opts.md
                                                           : MdOptions::none());

  // Allocate registers (with spilling) for every body first: the spill
  // counts feed the frame layouts.
  std::vector<std::vector<SpilledBody>> prep_threads(prog.codeblocks.size());
  std::vector<std::vector<SpilledBody>> prep_inlets(prog.codeblocks.size());
  std::vector<int> max_spills(prog.codeblocks.size(), 0);
  for (CbId c = 0; c < static_cast<int>(prog.codeblocks.size()); ++c) {
    const tam::Codeblock& cb = prog.codeblocks[c];
    for (const tam::Thread& t : cb.threads) {
      prep_threads[c].push_back(allocate_with_spilling(t.body, t.term.cond));
      max_spills[c] = std::max(max_spills[c],
                               prep_threads[c].back().num_spill_slots);
    }
    for (InletId i = 0; i < static_cast<int>(cb.inlets.size()); ++i) {
      const tam::Inlet& in = cb.inlets[i];
      const ThreadId inline_t = plan.cbs[c].inline_thread[i];
      if (inline_t >= 0 && !plan.cbs[c].elided_slots[i].empty()) {
        const tam::Thread& th = cb.threads[inline_t];
        FusedBody fb = fuse_bodies(in, th, plan.cbs[c].elided_slots[i]);
        prep_inlets[c].push_back(
            allocate_with_spilling(fb.ops, fb.term_cond, fb.boundary));
      } else {
        prep_inlets[c].push_back(allocate_with_spilling(in.body, -1));
      }
      max_spills[c] = std::max(max_spills[c],
                               prep_inlets[c].back().num_spill_slots);
    }
  }

  std::vector<rt::FrameLayout> layouts;
  layouts.reserve(prog.codeblocks.size());
  for (CbId c = 0; c < static_cast<int>(prog.codeblocks.size()); ++c) {
    layouts.push_back(rt::compute_frame_layout(prog.codeblocks[c],
                                               opts.backend, max_spills[c]));
  }

  LowerEnv env{a,       prog, opts,
               kernel,  layouts, plan,
               {},      {},   rt::inlet_queue(opts.backend),
               std::move(prep_threads), std::move(prep_inlets), {}};
  if (opts.backend == rt::BackendKind::Hybrid) {
    JTAM_CHECK(!opts.am_enabled_variant,
               "the enabled variant applies to the AM back-end only");
    env.hybrid_runnable = analyze_hybrid_runnable(prog);
  }
  env.thread_labels.resize(prog.codeblocks.size());
  env.inlet_labels.resize(prog.codeblocks.size());
  for (CbId c = 0; c < static_cast<int>(prog.codeblocks.size()); ++c) {
    const tam::Codeblock& cb = prog.codeblocks[c];
    for (ThreadId t = 0; t < static_cast<int>(cb.threads.size()); ++t) {
      env.thread_labels[c].push_back(
          a.label(CompiledProgram::thread_sym(c, t)));
    }
    for (InletId i = 0; i < static_cast<int>(cb.inlets.size()); ++i) {
      env.inlet_labels[c].push_back(a.label(CompiledProgram::inlet_sym(c, i)));
    }
  }

  a.section(Section::UserCode);
  for (CbId c = 0; c < static_cast<int>(prog.codeblocks.size()); ++c) {
    emit_codeblock(env, c);
  }

  CompiledProgram out;
  out.image = a.link();
  out.options = opts;
  out.layouts = std::move(layouts);
  out.source = prog;
  return out;
}

}  // namespace jtam::tamc
