#include "tamc/mdopt.h"

#include <algorithm>

namespace jtam::tamc {

using tam::Codeblock;
using tam::InletId;
using tam::SlotId;
using tam::ThreadId;
using tam::VOp;
using tam::VOpKind;

namespace {

CbOptPlan analyze_cb(const Codeblock& cb, const MdOptions& opts) {
  const int nt = static_cast<int>(cb.threads.size());
  const int ni = static_cast<int>(cb.inlets.size());
  CbOptPlan plan;
  plan.inline_thread.assign(ni, -1);
  plan.thread_inlined.assign(nt, false);
  plan.suspend_stop.assign(nt, false);
  plan.elided_slots.assign(ni, {});

  // Which threads appear in any fork list (tail branches included: a forked
  // thread may start with a non-empty LCV, and a fork target needs its own
  // standalone code).
  std::vector<bool> fork_target(nt, false);
  for (const tam::Thread& t : cb.threads) {
    for (ThreadId f : t.term.then_forks) fork_target[f] = true;
    for (ThreadId f : t.term.else_forks) fork_target[f] = true;
  }

  // How many inlets post each thread.
  std::vector<int> posters(nt, 0);
  for (const tam::Inlet& in : cb.inlets) {
    if (in.post.has_value()) ++posters[*in.post];
  }

  // Frame-slot def/use maps over the whole codeblock.
  struct SlotUse {
    int stores = 0;
    int loads = 0;
    int store_inlet = -1;    // the unique storing inlet, if stores == 1
    int load_thread = -1;    // the unique loading thread (-2 = several)
  };
  std::vector<SlotUse> slots(static_cast<std::size_t>(cb.num_data_slots));
  auto scan_body = [&](const std::vector<VOp>& body, int inlet_idx,
                       int thread_idx) {
    for (const VOp& op : body) {
      if (op.kind == VOpKind::FrameStore) {
        SlotUse& su = slots[static_cast<std::size_t>(op.imm)];
        ++su.stores;
        su.store_inlet = su.stores == 1 ? inlet_idx : -2;
      } else if (op.kind == VOpKind::FrameLoad) {
        SlotUse& su = slots[static_cast<std::size_t>(op.imm)];
        ++su.loads;
        if (su.loads == 1) {
          su.load_thread = thread_idx;
        } else if (su.load_thread != thread_idx) {
          su.load_thread = -2;
        }
      }
    }
  };
  for (int i = 0; i < ni; ++i) scan_body(cb.inlets[i].body, i, -1);
  for (int t = 0; t < nt; ++t) scan_body(cb.threads[t].body, -1, t);

  // 1. inline fall-through.
  if (opts.inline_post_threads) {
    for (int i = 0; i < ni; ++i) {
      const tam::Inlet& in = cb.inlets[i];
      if (!in.post.has_value()) continue;
      ThreadId t = *in.post;
      if (fork_target[t] || posters[t] != 1) continue;
      plan.inline_thread[i] = t;
      plan.thread_inlined[t] = true;
    }
  }

  // 2. frame-traffic elision: only across a non-synchronizing inline edge
  // (a synchronizing thread's first enablings would lose the value).
  if (opts.elide_frame_traffic) {
    for (int i = 0; i < ni; ++i) {
      ThreadId t = plan.inline_thread[i];
      if (t < 0 || cb.threads[t].is_synchronizing()) continue;
      for (SlotId s = 0; s < cb.num_data_slots; ++s) {
        const SlotUse& su = slots[static_cast<std::size_t>(s)];
        if (su.stores == 1 && su.store_inlet == i && su.loads >= 1 &&
            su.load_thread == t) {
          plan.elided_slots[i].push_back(s);
        }
      }
    }
  }

  // 3. stop -> suspend.
  if (opts.stop_to_suspend) {
    for (int t = 0; t < nt; ++t) {
      if (fork_target[t]) continue;
      const tam::Terminator& term = cb.threads[t].term;
      // Every arm must push nothing: at most one fork per arm (the tail
      // fork compiles to a branch, not a push).
      if (term.then_forks.size() > 1 || term.else_forks.size() > 1) continue;
      plan.suspend_stop[t] = true;
    }
  }

  return plan;
}

}  // namespace

std::vector<std::vector<bool>> analyze_hybrid_runnable(
    const tam::Program& prog) {
  std::vector<std::vector<bool>> out;
  out.reserve(prog.codeblocks.size());
  for (const Codeblock& cb : prog.codeblocks) {
    const int nt = static_cast<int>(cb.threads.size());
    std::vector<bool> q(static_cast<std::size_t>(nt), true);
    // Base condition: no terminator arm may push onto the LCV.
    for (int t = 0; t < nt; ++t) {
      const tam::Terminator& term = cb.threads[t].term;
      if (term.then_forks.size() > 1 || term.else_forks.size() > 1) {
        q[t] = false;
      }
    }
    // Fixpoint: a thread leaves Q if a tail target is outside Q (a high
    // thread may not branch into low-style code) or if it is forked by a
    // thread outside Q (it would then also run at low priority).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < nt; ++t) {
        if (!q[t]) continue;
        const tam::Terminator& term = cb.threads[t].term;
        for (ThreadId f : term.then_forks) {
          if (!q[f]) { q[t] = false; changed = true; }
        }
        for (ThreadId f : term.else_forks) {
          if (!q[f]) { q[t] = false; changed = true; }
        }
      }
      for (int s = 0; s < nt; ++s) {
        if (q[s]) continue;
        const tam::Terminator& term = cb.threads[s].term;
        for (ThreadId f : term.then_forks) {
          if (q[f]) { q[f] = false; changed = true; }
        }
        for (ThreadId f : term.else_forks) {
          if (q[f]) { q[f] = false; changed = true; }
        }
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

MdOptPlan analyze_md_opts(const tam::Program& prog, const MdOptions& opts) {
  MdOptPlan plan;
  plan.cbs.reserve(prog.codeblocks.size());
  for (const Codeblock& cb : prog.codeblocks) {
    plan.cbs.push_back(analyze_cb(cb, opts));
  }
  return plan;
}

}  // namespace jtam::tamc
