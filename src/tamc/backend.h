// Internal interface between the shared lowering engine (lower.cpp) and the
// back-end-specific emitters (backend_am.cpp / backend_md.cpp).  Not part
// of the public API.
#pragma once

#include <vector>

#include "mdp/assembler.h"
#include "runtime/kernel.h"
#include "runtime/layout.h"
#include "tam/ir.h"
#include "tamc/lower.h"
#include "tamc/mdopt.h"
#include "tamc/regalloc.h"

namespace jtam::tamc::detail {

struct LowerEnv {
  mdp::Assembler& a;
  const tam::Program& prog;
  const CompileOptions& opt;
  const rt::KernelRefs& kernel;
  const std::vector<rt::FrameLayout>& layouts;
  const MdOptPlan& mdplan;
  // Pre-created labels for every thread/inlet (named, so they appear in
  // the linked symbol table).
  std::vector<std::vector<mdp::LabelRef>> thread_labels;
  std::vector<std::vector<mdp::LabelRef>> inlet_labels;
  mdp::Priority inletq{};  // queue carrying user-inlet messages
  // Register-allocated (possibly spill-rewritten) bodies, indexed like the
  // program's threads/inlets; an inlet entry with boundary >= 0 is a fused
  // inlet+thread body.
  std::vector<std::vector<SpilledBody>> prep_threads;
  std::vector<std::vector<SpilledBody>> prep_inlets;
  // Hybrid back-end only: threads that execute directly in high-priority
  // handlers (analyze_hybrid_runnable); empty otherwise.
  std::vector<std::vector<bool>> hybrid_runnable;
};

/// AM: thread prolog after the ThreadStart mark — the brief interrupt
/// window ("our AM implementation only briefly enables interrupts at the
/// top of each thread"), or EINT alone in the enabled variant.
void am_thread_prolog(LowerEnv& env);

/// AM: start of a thread terminator (enabled variant disables interrupts
/// around continuation-vector access).
void am_terminator_begin(LowerEnv& env);

/// AM: inlet epilogue — load rt_post's arguments and call it, then suspend.
void am_inlet_epilogue(LowerEnv& env, tam::CbId cb, const tam::Inlet& inlet,
                       const rt::FrameLayout& fl);

/// MD: inlet epilogue up to the point where an enabled thread gains
/// control.  Returns true if control falls through (the caller emits the
/// posted thread inline right here); returns false if the epilogue is
/// complete (branched to the thread or suspended).
bool md_inlet_epilogue(LowerEnv& env, tam::CbId cb, const tam::Inlet& inlet,
                       const rt::FrameLayout& fl, bool inline_target);

}  // namespace jtam::tamc::detail
