// Symbol map emitted by the TAM compiler for the observability layer.
//
// The assembler's linked symbol table already names every runtime kernel
// entry point, floating-point library routine, and compiled inlet/thread
// (CompiledProgram::thread_sym / inlet_sym).  This module turns that flat
// name -> address table into sorted, non-overlapping address *spans* so a
// profiler can attribute each instruction fetch to the routine containing
// it with one binary search.
//
// Spans cover [symbol address, next symbol address) within a code section;
// addresses before the first symbol of a section (there are none today,
// but the map does not assume that) fall outside every span and are
// reported as unmapped by find().
#pragma once

#include <string>
#include <vector>

#include "mem/memory_map.h"
#include "tamc/lower.h"

namespace jtam::tamc {

/// Coarse classification of a code symbol, parsed from its name and
/// section: the profiler groups rows and reports by these.
enum class SymbolKind : std::uint8_t {
  Kernel,  // runtime kernel routine (system code, "rt_*", stubs)
  FpLib,   // software floating-point library ("fp_*")
  Inlet,   // compiled TAM inlet ("u<cb>_in<i>")
  Thread,  // compiled TAM thread ("u<cb>_t<t>")
  Other,   // anything else in user code
};

const char* symbol_kind_name(SymbolKind k);

/// One routine's address range.  `cb`/`idx` are the codeblock and
/// thread/inlet ids for Inlet/Thread symbols, -1 otherwise.
struct SymbolSpan {
  mem::Addr begin = 0;
  mem::Addr end = 0;  // exclusive
  std::string name;
  SymbolKind kind = SymbolKind::Other;
  int cb = -1;
  int idx = -1;
};

/// Sorted span table over both code sections.
class SymbolMap {
 public:
  SymbolMap() = default;

  /// Build the map for a compiled program.
  static SymbolMap from(const CompiledProgram& cp);
  /// Build directly from a linked image (what `from` uses internally).
  static SymbolMap from_image(const mdp::CodeImage& image);

  /// The span containing `a`, or nullptr when `a` is not covered.
  const SymbolSpan* find(mem::Addr a) const;

  const std::vector<SymbolSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

 private:
  std::vector<SymbolSpan> spans_;   // sorted by begin
  std::vector<mem::Addr> begins_;   // parallel, for binary search
};

}  // namespace jtam::tamc
