// Virtual-register allocation for thread/inlet bodies.
//
// Bodies are straight-line three-address code, so a single linear scan
// suffices.  The machine conventions are:
//
//   R0..R4  allocatable
//   R5      scratch for control sequences (LCV push/pop, entry counts)
//   R6      frame pointer (live for the whole body)
//   R7      link register
//
// Floating-point BinOps compile to calls into the software FP library,
// which takes its arguments in R0/R1, returns in R0, and clobbers R0, R1
// and R5.  A virtual register whose live range crosses such a call must
// therefore be placed in R2..R4.  The allocator throws jtam::Error when a
// body's register pressure cannot be met — TAM threads are tens of
// instructions long, so in practice this means a workload thread should be
// split, exactly as the TAM compiler's limited register file forced.
#pragma once

#include <vector>

#include "mdp/isa.h"
#include "tam/ir.h"

namespace jtam::tamc {

struct AllocatedBody {
  /// Machine register per virtual register.
  std::vector<mdp::Reg> reg_of;
};

/// Allocate registers for `body`.  `term_cond` (or -1) is the terminator's
/// condition vreg; it stays live through the end of the body.  Throws on
/// excess pressure; allocate_with_spilling below is the forgiving variant.
AllocatedBody allocate_registers(const std::vector<tam::VOp>& body,
                                 tam::VReg term_cond);

/// A body after (possible) spilling: long live ranges that exceeded the
/// register file were split through frame spill slots (SpillStore /
/// SpillLoad ops), exactly as TAM's compiler spilled to frame memory.
struct SpilledBody {
  std::vector<tam::VOp> ops;
  tam::VReg term_cond = -1;
  AllocatedBody alloc;
  int num_spill_slots = 0;
  /// The index in `ops` that corresponded to `boundary` in the input body
  /// (used by the fused inlet+thread path); -1 if no boundary was given.
  int boundary = -1;
};

/// Allocate registers, spilling as needed.  `boundary` (optional) is an op
/// index to track through the rewrite.
SpilledBody allocate_with_spilling(std::vector<tam::VOp> body,
                                   tam::VReg term_cond, int boundary = -1);

/// True if lowering this op calls into the FP library.
bool is_fp_call(const tam::VOp& op);

/// Append each vreg `op` reads to `out`.
void collect_uses(const tam::VOp& op, std::vector<tam::VReg>& out);

}  // namespace jtam::tamc
