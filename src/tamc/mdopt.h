// Analysis for the Message-Driven back-end's peephole optimizations (§2.3).
//
// Because an MD inlet passes control *directly* to the thread it posts, "a
// bigger region of code is open to conventional optimization":
//
//  1. inline fall-through — when only one inlet posts a thread and nothing
//     forks it, the thread's code is placed immediately after the inlet,
//     eliminating the branch ("the code for the thread can be placed
//     immediately after the inlet, eliminating the need for line I3");
//  2. frame-traffic elision — when additionally the thread is
//     non-synchronizing and a frame slot is written only by that inlet and
//     read only by that thread, the store/reload pair travels in a register
//     instead ("the reload of the register in line T1 can be eliminated...
//     if no other threads use frame slot 5, line I2 can be removed");
//  3. stop → suspend — when a thread is never forked (so it always starts
//     with an empty LCV) and pushes nothing onto the LCV, its stop becomes
//     a SUSPEND ("if thread 1 contains no pushes onto the LCV, then the LCV
//     is known to be empty, and the stop can be converted to a suspend").
#pragma once

#include <vector>

#include "tam/ir.h"

namespace jtam::tamc {

struct MdOptions {
  bool inline_post_threads = true;
  bool elide_frame_traffic = true;
  bool stop_to_suspend = true;

  static MdOptions none() { return MdOptions{false, false, false}; }
  static MdOptions all() { return MdOptions{true, true, true}; }
};

/// Per-codeblock optimization plan.
struct CbOptPlan {
  /// Per inlet: thread to emit inline after the inlet's post (or -1).
  std::vector<tam::ThreadId> inline_thread;
  /// Per thread: true if its code is emitted inline inside an inlet (and
  /// must be skipped by the normal thread-emission loop).
  std::vector<bool> thread_inlined;
  /// Per thread: true if its stop may be compiled as SUSPEND.
  std::vector<bool> suspend_stop;
  /// Per inlet: frame slots whose store (in this inlet) and loads (in the
  /// inlined thread) are replaced by a register copy.
  std::vector<std::vector<tam::SlotId>> elided_slots;
};

struct MdOptPlan {
  std::vector<CbOptPlan> cbs;
};

MdOptPlan analyze_md_opts(const tam::Program& prog, const MdOptions& opts);

/// §2.4 hybrid (Optimistic Active Messages) analysis: per codeblock, which
/// threads may execute *directly inside a high-priority handler*.  A thread
/// qualifies when its whole continuation is handler-safe: no LCV pushes
/// (at most one fork per terminator arm), every tail-fork target qualifies,
/// and it is never forked from a disqualified (low-priority) thread — the
/// compile-time analogue of OAM's "run the handler optimistically, fall
/// back to queueing when it would block".
std::vector<std::vector<bool>> analyze_hybrid_runnable(
    const tam::Program& prog);

}  // namespace jtam::tamc
