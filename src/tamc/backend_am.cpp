// Active Messages back-end specifics: interrupt-window management and the
// inlet -> rt_post protocol.

#include "support/error.h"
#include "tamc/backend.h"

namespace jtam::tamc::detail {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

void am_thread_prolog(LowerEnv& env) {
  // Unenabled variant (the paper's measured system): interrupts are enabled
  // only for the instant between these two instructions, so pending
  // high-priority messages are serviced exactly at thread tops (Figure 2a).
  env.a.eint();
  if (!env.opt.am_enabled_variant) env.a.dint();
}

void am_terminator_begin(LowerEnv& env) {
  // In the enabled variant interrupts run during the body and must be shut
  // off around continuation-vector access (Figure 2b); in the unenabled
  // variant they are already off.
  if (env.opt.am_enabled_variant) env.a.dint();
}

void am_inlet_epilogue(LowerEnv& env, tam::CbId cb, const tam::Inlet& inlet,
                       const rt::FrameLayout& fl) {
  Assembler& a = env.a;
  if (inlet.post.has_value()) {
    const tam::ThreadId t = *inlet.post;
    a.movi(R0, env.thread_labels[cb][t], "post: thread address");
    a.mov(R1, kRegFp, "post: frame");
    if (fl.thread_is_sync(t)) {
      a.movi(R2, fl.ec_byte_off(t), "post: entry-count offset");
      a.movi(R3,
             env.prog.codeblocks[cb].threads[t].entry_count,
             "post: re-arm value");
    } else {
      a.movi(R2, 0, "post: non-synchronizing");
    }
    JTAM_ASSERT(env.kernel.backend == rt::BackendKind::ActiveMessages,
                "AM epilogue with non-AM kernel");
    a.call(env.kernel.rt_post);
  }
  a.suspend();
}

}  // namespace jtam::tamc::detail
