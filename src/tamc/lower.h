// The TAM -> MDP compiler.
//
// compile() lowers a validated TAM program to MDP machine code under one of
// the two scheduling regimes the paper compares:
//
//  * BackendKind::ActiveMessages — inlets become high-priority message
//    handlers that call the rt_post library routine; threads run at low
//    priority under the software scheduler, with interrupts enabled only
//    briefly at each thread top (the paper's *unenabled* variant; set
//    am_enabled_variant for the §2.4 alternative that leaves interrupts on
//    except around continuation-vector access).
//
//  * BackendKind::MessageDriven — inlets become low-priority handlers that
//    branch directly into threads; the message queue is the task queue and
//    the optional §2.3 optimizations (MdOptions) shrink the inlet/thread
//    seam further.
//
// Both regimes share the body code generator, the LCV fork/stop protocol
// and the register allocator, so measured differences come only from the
// scheduling hierarchy — the experiment the paper constructs.
#pragma once

#include <string>
#include <vector>

#include "mdp/assembler.h"
#include "runtime/kernel.h"
#include "runtime/layout.h"
#include "tam/ir.h"
#include "tamc/mdopt.h"

namespace jtam::tamc {

struct CompileOptions {
  rt::BackendKind backend = rt::BackendKind::ActiveMessages;
  /// §2.4 "enabled" AM variant: interrupts stay on during thread bodies and
  /// are disabled only around continuation-vector access.
  bool am_enabled_variant = false;
  /// §2.3 Message-Driven peephole optimizations (ignored under AM).
  MdOptions md = MdOptions::all();
  /// Emit node-routing for every send (SENDD from address node fields,
  /// SENDDR for frame placement) so the program runs on mdp::MultiMachine.
  /// Single-node output is bit-identical with this off.
  bool multi_node = false;
  /// Node-field shift of the target ensemble's global user addresses
  /// (mem::NodeCodec).  The default 24 emits the seed's single-SHRI node
  /// extraction; narrower shifts add one SUBI to strip the user-data base
  /// from the node field.  Ignored unless multi_node is set.
  std::uint32_t node_shift = mem::kNodeShiftDefault;
};

struct CompiledProgram {
  mdp::CodeImage image;
  CompileOptions options;
  std::vector<rt::FrameLayout> layouts;
  tam::Program source;

  static std::string thread_sym(tam::CbId cb, tam::ThreadId t);
  static std::string inlet_sym(tam::CbId cb, tam::InletId i);

  mem::Addr thread_addr(tam::CbId cb, tam::ThreadId t) const;
  mem::Addr inlet_addr(tam::CbId cb, tam::InletId i) const;
  /// Address installed in LCV slot 0 by the loader (am_swap / md_stub).
  mem::Addr lcv_sentinel() const;
  /// Kernel entry points, by name ("rt_falloc", "rt_halt", ...).
  mem::Addr kernel_addr(const std::string& name) const;
};

/// Compile `prog`; throws jtam::Error on invalid IR or register pressure.
CompiledProgram compile(const tam::Program& prog, const CompileOptions& opts);

}  // namespace jtam::tamc
