// Active Messages back-end kernel: the two-level scheduling hierarchy.
//
// Inlets run at high priority and call rt_post, which implements TAM's
// scheduling hierarchy in software: decrement the entry count, append the
// enabled thread to its frame's ready list (the RCV), push directly onto
// the LCV when the frame is the one currently activated (this is how
// quanta extend: "this can involve emptying the LCV multiple times if
// subsequent messages are destined for the same frame", §3.2), enqueue
// newly-ready frames on the global frame queue, and wake the low-priority
// scheduler when it is idle.
//
// The scheduler itself runs at low priority.  am_swap is the LCV stop
// sentinel: when a quantum's LCV drains it briefly enables interrupts so
// pending inlets can extend the quantum, then deactivates the frame, pops
// the next ready frame from the frame queue, copies its RCV into the LCV
// ("the frame's list of ready threads is considered the local continuation
// vector", §1.1.3) and jumps to its first thread.

#include "mdp/assembler.h"
#include "mem/memory_map.h"
#include "runtime/kernel.h"

namespace jtam::rt {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

namespace {

// rt_post — called from high-priority inlets.
//   R0 = thread address, R1 = frame, R2 = entry-count byte offset
//   (0 for a non-synchronizing thread), R3 = entry-count reset value.
//   Clobbers R4, R5.  Preserves R0..R3 only as needed internally.
void emit_rt_post(Assembler& a, KernelRefs& refs) {
  refs.rt_post = a.here("rt_post");
  LabelRef ready = a.label();
  LabelRef rearm = a.label();
  LabelRef not_current = a.label();
  LabelRef scan = a.label();
  LabelRef append = a.label();
  LabelRef fq_empty = a.label();
  LabelRef fq_common = a.label();
  LabelRef push_lcv = a.label();
  LabelRef done = a.label();

  a.brz(R2, ready, "non-synchronizing");
  a.alu(Op::Add, R4, R1, R2, "&entry count");
  a.ld(R5, R4, 0);
  a.alui(Op::Subi, R5, R5, 1);
  a.brz(R5, rearm, "count reached zero");
  a.st(R4, 0, R5, "store decremented count");
  a.ret();
  a.bind(rearm);
  a.st(R4, 0, R3, "re-arm for next enabling");

  a.bind(ready);
  a.ldg(R4, static_cast<std::int32_t>(kGlCurFrame));
  a.alu(Op::Seq, R4, R4, R1);
  a.brnz(R4, push_lcv, "posting to the active frame");

  a.bind(not_current);
  // The ready list is a *set*: "a pointer to the thread is placed in the
  // frame, indicating that the thread may run" — a second pointer to an
  // already-ready thread adds nothing, and merging the enables bounds the
  // RCV by the codeblock's thread count (a burst of completions posting
  // the same non-synchronizing collector thread would otherwise overflow
  // it).  Scan before appending.
  a.ld(R4, R1, kAmRcvCntOff, "ready count");
  a.mov(R5, R4, "scan index");
  a.bind(scan);
  a.brz(R5, append);
  a.alui(Op::Subi, R5, R5, 1);
  a.alui(Op::Shli, R2, R5, 2);
  a.alu(Op::Add, R2, R2, R1);
  a.ld(R2, R2, kAmRcvBaseOff, "pending entry");
  a.alu(Op::Sub, R2, R2, R0);
  a.brnz(R2, scan);
  a.ret();  // already pending: this enable merges with it
  a.bind(append);
  // Append to the frame's RCV: frame[rcv_base + 4*count] = thread.
  a.alui(Op::Shli, R5, R4, 2);
  a.alu(Op::Add, R5, R5, R1);
  a.st(R5, kAmRcvBaseOff, R0, "rcv[count] = thread");
  a.alui(Op::Addi, R4, R4, 1);
  a.st(R1, kAmRcvCntOff, R4);
  a.alui(Op::Subi, R4, R4, 1);
  a.brnz(R4, done, "frame already ready/queued");
  // Newly ready: enqueue on the frame queue.
  a.ldg(R4, static_cast<std::int32_t>(kGlFqTail));
  a.brz(R4, fq_empty);
  a.st(R4, kFrameLinkOff, R1, "tail.link = frame");
  a.br(fq_common);
  a.bind(fq_empty);
  a.stg(R1, static_cast<std::int32_t>(kGlFqHead));
  a.bind(fq_common);
  a.stg(R1, static_cast<std::int32_t>(kGlFqTail));
  a.sti(R1, kFrameLinkOff, 0, "frame.link = nil");
  // Wake the scheduler when idle (it suspends with the flag cleared, so a
  // post that observes 0 here is ordered after that clear — no lost wakeup).
  a.ldg(R4, static_cast<std::int32_t>(kGlSchedActive));
  a.brnz(R4, done);
  a.movi(R4, 1);
  a.stg(R4, static_cast<std::int32_t>(kGlSchedActive));
  a.sendl();
  a.sendwi(refs.am_sched_entry, "scheduler wakeup message");
  a.sende();
  a.bind(done);
  a.ret();

  a.bind(push_lcv);
  a.ldg(R4, static_cast<std::int32_t>(kGlLcvTop));
  a.st(R4, 0, R0, "push thread onto active LCV");
  a.alui(Op::Addi, R4, R4, 4);
  a.stg(R4, static_cast<std::int32_t>(kGlLcvTop));
  a.ret();
}

}  // namespace

void emit_am_kernel(Assembler& a, KernelRefs& refs) {
  // Labels referenced before they are bound.
  refs.am_sched_entry = a.label("am_sched_entry");
  refs.am_swap = a.label("am_swap");

  emit_rt_post(a, refs);

  LabelRef have_more = a.label();
  LabelRef copy = a.label();
  LabelRef go = a.label();
  LabelRef idle = a.label();

  // am_sched_entry — handler of the low-priority wakeup message.
  a.bind(refs.am_sched_entry);
  a.dint();
  // Falls through into am_swap.

  // am_swap — LCV stop sentinel; entered with interrupts disabled and the
  // LCV top pointing at the sentinel slot.  The frame is deactivated
  // *before* the service window: an I-structure fetch issued during the
  // quantum "might not be serviced until after the quantum, decreasing
  // granularity" (§2.4, the unenabled variant the paper measures) — its
  // reply posts to the frame's RCV and re-enqueues the frame at the tail
  // of the frame queue rather than extending the current quantum.
  a.bind(refs.am_swap);
  a.mark(MarkKind::SysStart);
  a.movi(R5, static_cast<std::int32_t>(kLcvEmptyTop));
  a.stg(R5, static_cast<std::int32_t>(kGlLcvTop), "reset LCV");
  a.movi(R0, 0);
  a.stg(R0, static_cast<std::int32_t>(kGlCurFrame), "deactivate frame");
  a.eint();
  a.dint();  // service window: posts re-enqueue frames through their RCVs
  a.ldg(R0, static_cast<std::int32_t>(kGlFqHead));
  a.brz(R0, idle);
  // Pop the frame queue.
  a.ld(R1, R0, kFrameLinkOff);
  a.stg(R1, static_cast<std::int32_t>(kGlFqHead));
  a.brnz(R1, have_more);
  a.movi(R2, 0);
  a.stg(R2, static_cast<std::int32_t>(kGlFqTail));
  a.bind(have_more);
  a.stg(R0, static_cast<std::int32_t>(kGlCurFrame), "activate frame");
  a.mov(kRegFp, R0);
  a.mark(MarkKind::Activate, kRegFp);
  // Copy the frame's ready list (RCV) into the LCV.
  a.ld(R2, kRegFp, kAmRcvCntOff, "ready-thread count");
  a.movi(R3, 0);
  a.st(kRegFp, kAmRcvCntOff, R3);
  a.alui(Op::Addi, R3, kRegFp, kAmRcvBaseOff, "rcv cursor");
  a.movi(R4, static_cast<std::int32_t>(kLcvEmptyTop));
  a.bind(copy);
  a.brz(R2, go);
  a.ld(R1, R3, 0);
  a.st(R4, 0, R1);
  a.alui(Op::Addi, R3, R3, 4);
  a.alui(Op::Addi, R4, R4, 4);
  a.alui(Op::Subi, R2, R2, 1);
  a.br(copy);
  a.bind(go);
  a.stg(R4, static_cast<std::int32_t>(kGlLcvTop));
  emit_lcv_pop_jmp(a);  // the copied list is non-empty: run its first thread

  a.bind(idle);
  // Clear the active flag *before* enabling interrupts so a racing post
  // always either sees the flag clear (and sends a wakeup) or is ordered
  // after this suspend.
  a.movi(R0, 0);
  a.stg(R0, static_cast<std::int32_t>(kGlSchedActive));
  a.eint();
  a.suspend();
}

}  // namespace jtam::rt
