// Runtime kernel emission.
//
// The kernel is MDP assembly emitted into the system-code section: frame
// allocation/free handlers, the I-structure and imperative-global handlers,
// the halt handler, the software floating-point library and — per back-end —
// the Active Messages scheduler (frame queue, rt_post, frame swap) or the
// Message-Driven LCV stop stub.  System routines run as high-priority
// message handlers in both implementations ("the only code that runs at
// high priority is that to service system calls, such as allocating frames
// or accessing global data structures", §2.2).
#pragma once

#include "mdp/assembler.h"
#include "runtime/layout.h"

namespace jtam::rt {

/// Labels of kernel entry points user code and the loader reference.
struct KernelRefs {
  // System-call handlers (message word 0 targets).
  mdp::LabelRef rt_falloc;
  mdp::LabelRef rt_ffree;
  mdp::LabelRef rt_halloc;
  mdp::LabelRef rt_ifetch;
  mdp::LabelRef rt_istore;
  mdp::LabelRef rt_gfetch;
  mdp::LabelRef rt_gstore;
  mdp::LabelRef rt_halt;
  // Software floating point (args R0/R1, result R0, clobbers R0/R1/R5).
  mdp::LabelRef fp_add;
  mdp::LabelRef fp_sub;
  mdp::LabelRef fp_mul;
  mdp::LabelRef fp_div;
  mdp::LabelRef fp_lt;
  mdp::LabelRef fp_itof;
  mdp::LabelRef fp_ftoi;
  // Back-end specific (bound only for the matching backend).
  mdp::LabelRef am_sched_entry;  // AM: low-priority scheduler wakeup handler
  mdp::LabelRef am_swap;         // AM: LCV stop sentinel (frame swap)
  mdp::LabelRef rt_post;         // AM: post routine called from inlets
  mdp::LabelRef md_stub;         // MD: LCV stop sentinel (reset + suspend)
  BackendKind backend{};
};

struct KernelOptions {
  BackendKind backend = BackendKind::ActiveMessages;
  bool multi_node = false;  // route replies by the frame's node field
  /// Node-field shift of global user addresses (mem::NodeCodec).  24 (the
  /// seed layout) extracts the node with a single SHRI; narrower shifts
  /// need one extra SUBI (see emit_node_of).
  std::uint32_t node_shift = mem::kNodeShiftDefault;
};

/// Emit "dst = owning node of the global user address in src".  At the
/// seed shift 24 this is the single `SHRI dst, src, 24` the seed kernels
/// used (bit-identical instruction stream); at narrower shifts the user
/// window base shifts into the node field and one SUBI strips it
/// (kUserDataBase is divisible by 2^shift for every supported shift).
inline void emit_node_of(mdp::Assembler& a, mdp::Reg dst, mdp::Reg src,
                         std::uint32_t node_shift, const char* note) {
  a.alui(mdp::Op::Shri, dst, src, static_cast<std::int32_t>(node_shift),
         note);
  if (node_shift != mem::kNodeShiftDefault) {
    a.alui(mdp::Op::Subi, dst, dst,
           static_cast<std::int32_t>(mem::kUserDataBase >> node_shift),
           "strip user-data base from node field");
  }
}

/// Queue that carries messages addressed to user inlets: the high-priority
/// queue under Active Messages (inlets are interrupt-style handlers), the
/// low-priority queue under Message-Driven execution (the queue is the task
/// queue).
mdp::Priority inlet_queue(BackendKind backend);

/// Emit the whole kernel into the assembler's system-code section.
KernelRefs emit_kernel(mdp::Assembler& a, const KernelOptions& opts);

// Internal pieces (exposed for focused unit tests).
void emit_fp_library(mdp::Assembler& a, KernelRefs& refs);
void emit_istructure_handlers(mdp::Assembler& a, KernelRefs& refs,
                              mdp::Priority reply_queue,
                              bool multi_node = false,
                              std::uint32_t node_shift =
                                  mem::kNodeShiftDefault);
void emit_am_kernel(mdp::Assembler& a, KernelRefs& refs);
void emit_md_kernel(mdp::Assembler& a, KernelRefs& refs);

/// The generic 5-instruction thread-stop sequence: pop the LCV into the
/// instruction pointer (§2.3: "the stop statement is implemented as a pop
/// of the LCV into the instruction register").  Clobbers R5.
void emit_lcv_pop_jmp(mdp::Assembler& a);

/// Push a statically-known thread address onto the LCV (4 instructions).
/// Clobbers R5.
void emit_lcv_push_label(mdp::Assembler& a, mdp::ImmOrLabel thread);

}  // namespace jtam::rt
