// Runtime data layout shared by the compiler, the runtime kernels and the
// loader: OS globals, frame layouts, and the codeblock descriptor table the
// frame-allocation handler reads.
//
// Frame layout (all byte offsets from the frame pointer):
//
//   Active Messages backend                Message-Driven backend
//   +0   free/frame-queue link             +0   free-list link
//   +4   RCV count (ready threads)         +4.. data slots
//   +8   RCV entries (fixed position so    ...  entry counts
//        the generic scheduler can copy    ...  spill slots
//        them into the LCV without
//        per-codeblock information)
//   ...  data slots / entry counts / spills
//
// The MD frame omits the ready-thread list entirely ("eliminating the
// remote continuation vector", §3.1) and is therefore smaller — part of the
// locality trade-off the paper measures.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory_map.h"
#include "tam/ir.h"

namespace jtam::rt {

using mem::Addr;

enum class BackendKind : std::uint8_t {
  ActiveMessages,
  MessageDriven,
  // §2.4's cited combination (Optimistic Active Messages [KWW+94]): inlets
  // run at high priority and *handler-safe* thread chains execute directly
  // in the handler, message-driven style; everything else goes through the
  // AM scheduling hierarchy.
  Hybrid,
};

const char* backend_name(BackendKind b);

// --- OS globals (addresses in the sys-data region) -------------------------
inline constexpr Addr kGlLcvTop = mem::kOsGlobalsBase + 0;
inline constexpr Addr kGlCurFrame = mem::kOsGlobalsBase + 4;
inline constexpr Addr kGlSchedActive = mem::kOsGlobalsBase + 8;
inline constexpr Addr kGlFqHead = mem::kOsGlobalsBase + 12;
inline constexpr Addr kGlFqTail = mem::kOsGlobalsBase + 16;
inline constexpr Addr kGlHeapBump = mem::kOsGlobalsBase + 20;
inline constexpr Addr kGlNodeId = mem::kOsGlobalsBase + 24;  // multi-node
inline constexpr Addr kGlFreeHeads = mem::kOsGlobalsBase + 32;
inline constexpr int kMaxCodeblocks = 64;

/// The LCV grows upward from kLcvBase; slot 0 permanently holds the stop
/// sentinel (AM: the frame-swap routine; MD: the reset-and-suspend stub),
/// so an empty LCV has top == kLcvBase + 4 and the generic 5-instruction
/// stop sequence needs no emptiness test.
inline constexpr Addr kLcvEmptyTop = mem::kLcvBase + 4;

// --- frame header ----------------------------------------------------------
inline constexpr std::int32_t kFrameLinkOff = 0;  // both backends
inline constexpr std::int32_t kAmRcvCntOff = 4;   // AM only
inline constexpr std::int32_t kAmRcvBaseOff = 8;  // AM only (fixed position)

// --- codeblock descriptor table (read by the falloc handler) ----------------
// One descriptor per codeblock at kSysTableBase + cb * kCbDescBytes:
//   +0  frame size in bytes
//   +4  byte offset of the entry-count array within the frame
//   +8  number of entry counts
//   +12 address of the entry-count initializer template
inline constexpr std::int32_t kCbDescBytes = 16;

struct FrameLayout {
  BackendKind backend{};
  std::int32_t data_off = 0;   // byte offset of data slot 0
  std::int32_t ec_off = 0;     // byte offset of the entry-count array
  std::int32_t num_ec = 0;
  std::int32_t spill_off = 0;  // byte offset of compiler spill slots
  std::int32_t num_spills = 0;
  std::int32_t rcv_cap = 0;    // AM only: capacity of the RCV list
  std::int32_t frame_bytes = 0;

  /// Per thread: index into the entry-count array, or -1 if the thread is
  /// non-synchronizing.
  std::vector<std::int32_t> ec_index_of_thread;
  /// Initial value for each entry count (== the thread's entry count).
  std::vector<std::int32_t> ec_init;

  std::int32_t ec_byte_off(tam::ThreadId t) const {
    return ec_off + 4 * ec_index_of_thread[static_cast<std::size_t>(t)];
  }
  std::int32_t slot_byte_off(tam::SlotId s) const { return data_off + 4 * s; }
  std::int32_t spill_byte_off(int i) const { return spill_off + 4 * i; }
  bool thread_is_sync(tam::ThreadId t) const {
    return ec_index_of_thread[static_cast<std::size_t>(t)] >= 0;
  }
};

/// Compute the frame layout of `cb` for `backend` with `num_spills`
/// compiler-reserved spill slots.
FrameLayout compute_frame_layout(const tam::Codeblock& cb,
                                 BackendKind backend, int num_spills);

}  // namespace jtam::rt
