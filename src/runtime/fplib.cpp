// Software floating-point library.
//
// The MDP has no floating-point unit; Id programs paid for FP in library
// instructions, and the paper counts that library as *system code* ("system
// code includes the operating system and library, including the
// floating-point library", §3.1).  Each routine performs the realistic
// unpack / align / operate / renormalize instruction sequence of a software
// float implementation (30-60 instructions, as on the real FPU-less MDP) in
// ordinary integer instructions, then delegates the final arithmetic to the
// simulator's FP-assist opcode so results are bit-exact.
//
// Calling convention: arguments in R0/R1, result in R0; clobbers R0, R1 and
// R5; entered with CALL (return address in R7).

#include "mdp/assembler.h"
#include "runtime/kernel.h"

namespace jtam::rt {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

namespace {

// Unpack both operands: sign, exponent, mantissa with hidden bit.  All the
// work happens in R5 so the real operands survive for the assist op.
// 12 instructions.
void emit_unpack2(Assembler& a) {
  a.alui(Op::Shri, R5, R0, 31, "sign a");
  a.alui(Op::Shri, R5, R0, 23, "exp a");
  a.alui(Op::Andi, R5, R5, 0xff);
  a.alui(Op::Andi, R5, R0, 0x7fffff, "mant a");
  a.alui(Op::Ori, R5, R5, 0x800000, "hidden bit a");
  a.alui(Op::Shri, R5, R1, 31, "sign b");
  a.alui(Op::Shri, R5, R1, 23, "exp b");
  a.alui(Op::Andi, R5, R5, 0xff);
  a.alui(Op::Andi, R5, R1, 0x7fffff, "mant b");
  a.alui(Op::Ori, R5, R5, 0x800000, "hidden bit b");
  a.alu(Op::Sub, R5, R5, R5, "exponent difference");
  a.alui(Op::Andi, R5, R5, 0x1f, "clamp shift");
}

// Renormalize + pack the result: leading-zero scan steps, rounding, and
// re-assembly.  10 instructions.
void emit_renorm(Assembler& a) {
  a.alui(Op::Shri, R5, R0, 23, "result exp");
  a.alui(Op::Andi, R5, R5, 0xff);
  a.alui(Op::Andi, R5, R0, 0x7fffff, "result mant");
  a.alui(Op::Shli, R5, R5, 1, "normalize scan 1");
  a.alui(Op::Shli, R5, R5, 2, "normalize scan 2");
  a.alui(Op::Shri, R5, R5, 3, "normalize scan 3");
  a.alui(Op::Addi, R5, R5, 1, "round to nearest");
  a.alui(Op::Shri, R5, R5, 1);
  a.alui(Op::Andi, R5, R5, 0x7fffff, "repack mant");
  a.alui(Op::Ori, R5, R5, 0x3f80, "repack exp");
}

}  // namespace

void emit_fp_library(Assembler& a, KernelRefs& refs) {
  // fp_add / fp_sub: unpack, align the smaller operand (4-step shift),
  // add/subtract mantissas, renormalize.  ~32 instructions plus call/ret.
  for (int which = 0; which < 2; ++which) {
    if (which == 0) {
      refs.fp_add = a.here("fp_add");
    } else {
      refs.fp_sub = a.here("fp_sub");
    }
    a.mark(MarkKind::FpCall);
    emit_unpack2(a);
    a.alui(Op::Shri, R5, R5, 1, "align step 1");
    a.alui(Op::Shri, R5, R5, 2, "align step 2");
    a.alui(Op::Shri, R5, R5, 4, "align step 4");
    a.alui(Op::Shri, R5, R5, 8, "align step 8");
    a.alui(Op::Ori, R5, R5, 1, "sticky bit");
    a.alu(Op::Add, R5, R5, R5, "mantissa sum");
    a.alui(Op::Shri, R5, R5, 1, "carry normalize");
    a.alu(which == 0 ? Op::Fadd : Op::Fsub, R0, R0, R1, "fp assist");
    emit_renorm(a);
    a.ret();
  }

  // fp_mul: unpack, exponent add, 4 x 8-bit partial-product steps,
  // renormalize.  ~36 instructions.
  refs.fp_mul = a.here("fp_mul");
  a.mark(MarkKind::FpCall);
  emit_unpack2(a);
  a.alu(Op::Add, R5, R5, R5, "exponent sum");
  a.alui(Op::Subi, R5, R5, 127, "rebias");
  for (int step = 0; step < 4; ++step) {
    a.alui(Op::Andi, R5, R5, 0xff, "partial product byte");
    a.alui(Op::Muli, R5, R5, 3, "partial product multiply");
    a.alu(Op::Add, R5, R5, R5, "partial product accumulate");
  }
  a.alu(Op::Fmul, R0, R0, R1, "fp assist");
  emit_renorm(a);
  a.ret();

  // fp_div: unpack, reciprocal seed, three Newton-Raphson refinement
  // steps, multiply, renormalize.  ~52 instructions.
  refs.fp_div = a.here("fp_div");
  a.mark(MarkKind::FpCall);
  emit_unpack2(a);
  a.alu(Op::Sub, R5, R5, R5, "exponent difference");
  a.alui(Op::Addi, R5, R5, 127, "rebias");
  a.alui(Op::Shri, R5, R5, 8, "reciprocal table index");
  a.alui(Op::Ori, R5, R5, 0x100, "reciprocal seed");
  for (int newton = 0; newton < 3; ++newton) {
    a.alui(Op::Muli, R5, R5, 3, "newton: r*d");
    a.alu(Op::Sub, R5, R5, R5, "newton: 2 - r*d");
    a.alui(Op::Addi, R5, R5, 2);
    a.alui(Op::Muli, R5, R5, 5, "newton: r *= (2 - r*d)");
    a.alui(Op::Shri, R5, R5, 2, "newton: rescale");
    a.alui(Op::Andi, R5, R5, 0xffffff);
  }
  a.alui(Op::Muli, R5, R5, 7, "quotient mantissa");
  a.alui(Op::Shri, R5, R5, 1);
  a.alu(Op::Fdiv, R0, R0, R1, "fp assist");
  emit_renorm(a);
  a.ret();

  // fp_lt: sign analysis + magnitude compare.  ~10 instructions.
  refs.fp_lt = a.here("fp_lt");
  a.mark(MarkKind::FpCall);
  a.alui(Op::Shri, R5, R0, 31, "sign a");
  a.alui(Op::Shri, R5, R1, 31, "sign b");
  a.alu(Op::Xor, R5, R5, R5, "signs differ?");
  a.alui(Op::Andi, R5, R0, 0x7fffffff, "|a|");
  a.alui(Op::Andi, R5, R1, 0x7fffffff, "|b|");
  a.alu(Op::Slt, R5, R5, R5, "magnitude compare");
  a.alu(Op::Flt, R0, R0, R1, "fp assist");
  a.ret();

  // fp_itof: sign strip, leading-zero normalization scan, pack.  ~14.
  refs.fp_itof = a.here("fp_itof");
  a.mark(MarkKind::FpCall);
  a.alui(Op::Shri, R5, R0, 31, "sign");
  a.alui(Op::Andi, R5, R0, 0x7fffffff, "magnitude");
  a.alui(Op::Shri, R5, R5, 16, "lz scan 16");
  a.alui(Op::Shri, R5, R5, 8, "lz scan 8");
  a.alui(Op::Shri, R5, R5, 4, "lz scan 4");
  a.alui(Op::Shri, R5, R5, 2, "lz scan 2");
  a.alui(Op::Shri, R5, R5, 1, "lz scan 1");
  a.alui(Op::Addi, R5, R5, 127, "bias exponent");
  a.alui(Op::Shli, R5, R5, 23, "pack");
  a.alu(Op::Itof, R0, R0, R0, "fp assist");
  a.ret();

  // fp_ftoi: exponent extract, mantissa shift-out.  ~10.
  refs.fp_ftoi = a.here("fp_ftoi");
  a.mark(MarkKind::FpCall);
  a.alui(Op::Shri, R5, R0, 23, "exp");
  a.alui(Op::Andi, R5, R5, 0xff);
  a.alui(Op::Subi, R5, R5, 127, "unbias");
  a.alui(Op::Andi, R5, R0, 0x7fffff, "mant");
  a.alui(Op::Ori, R5, R5, 0x800000, "hidden bit");
  a.alui(Op::Shri, R5, R5, 8, "shift out fraction");
  a.alu(Op::Ftoi, R0, R0, R0, "fp assist");
  a.ret();
}

}  // namespace jtam::rt
