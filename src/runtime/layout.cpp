#include "runtime/layout.h"

#include "support/error.h"

namespace jtam::rt {

const char* backend_name(BackendKind b) {
  switch (b) {
    case BackendKind::ActiveMessages: return "AM";
    case BackendKind::MessageDriven: return "MD";
    case BackendKind::Hybrid: return "OAM";
  }
  return "?";
}

FrameLayout compute_frame_layout(const tam::Codeblock& cb,
                                 BackendKind backend, int num_spills) {
  JTAM_CHECK(num_spills >= 0, "negative spill count");
  FrameLayout fl;
  fl.backend = backend;

  // Entry-count slots exist only for synchronizing threads.
  fl.ec_index_of_thread.reserve(cb.threads.size());
  for (const tam::Thread& t : cb.threads) {
    if (t.is_synchronizing()) {
      fl.ec_index_of_thread.push_back(fl.num_ec++);
      fl.ec_init.push_back(t.entry_count);
    } else {
      fl.ec_index_of_thread.push_back(-1);
    }
  }

  std::int32_t cursor;
  if (backend != BackendKind::MessageDriven) {
    // link | rcv count | rcv entries | data | ec | spills
    // Capacity bound: every thread can have at most one pending enabling
    // (entry counts re-arm only when the thread fires), plus slack for
    // non-synchronizing threads posted from several inlets in one quantum.
    fl.rcv_cap = static_cast<std::int32_t>(cb.threads.size()) + 4;
    cursor = kAmRcvBaseOff + 4 * fl.rcv_cap;
  } else {
    fl.rcv_cap = 0;
    cursor = 4;  // link only
  }
  fl.data_off = cursor;
  cursor += 4 * cb.num_data_slots;
  fl.ec_off = cursor;
  cursor += 4 * fl.num_ec;
  fl.spill_off = cursor;
  fl.num_spills = num_spills;
  cursor += 4 * num_spills;
  fl.frame_bytes = cursor;
  return fl;
}

}  // namespace jtam::rt
