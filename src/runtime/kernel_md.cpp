// Message-Driven back-end kernel.
//
// The MD implementation needs almost no scheduler: the hardware message
// queue *is* the task queue.  Inlets run at low priority and branch
// directly into threads; the only runtime structure is the LCV, whose stop
// sentinel (md_stub) resets the LCV top and suspends, letting the hardware
// dispatch the next queued message ("messages in the queue are not
// processed until the LCV has been emptied", Figure 1).

#include "mdp/assembler.h"
#include "runtime/kernel.h"

namespace jtam::rt {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

void emit_md_kernel(Assembler& a, KernelRefs& refs) {
  refs.md_stub = a.here("md_stub");
  a.mark(MarkKind::SysStart);
  a.movi(R5, static_cast<std::int32_t>(kLcvEmptyTop));
  a.stg(R5, static_cast<std::int32_t>(kGlLcvTop), "reset LCV");
  a.suspend();
}

}  // namespace jtam::rt
