// I-structure and imperative-global handlers.
//
// Split-phase global access per TAM: a thread sends a request message to
// the high-priority system level; the handler replies with a message to the
// requesting codeblock's inlet, which lands in the back-end's inlet queue
// (high under AM, low under MD).  I-structure words carry presence tags (as
// on the MDP's tagged memory); a read of an empty element is recorded on a
// deferred-read list and answered by the eventual write.
//
// Message formats (word 0 is always the handler address):
//   ifetch:  [rt_ifetch, addr, reply_inlet, reply_frame]
//   istore:  [rt_istore, addr, value]
//   gfetch:  [rt_gfetch, addr, reply_inlet, reply_frame]
//   gstore:  [rt_gstore, addr, value]
//   reply:   [inlet, frame, value]

#include "mdp/assembler.h"
#include "runtime/kernel.h"

namespace jtam::rt {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

void emit_istructure_handlers(Assembler& a, KernelRefs& refs,
                              Priority reply_queue, bool multi_node,
                              std::uint32_t node_shift) {
  // Open a reply message routed to the home node of the frame in `frame`.
  auto begin_reply = [&](Reg frame) {
    if (reply_queue == Priority::High) {
      a.sendh();
    } else {
      a.sendl();
    }
    if (multi_node) {
      emit_node_of(a, R5, frame, node_shift, "reply destination node");
      a.sendd(R5);
    }
  };

  // --- rt_ifetch ---------------------------------------------------------
  refs.rt_ifetch = a.here("rt_ifetch");
  a.mark(MarkKind::SysStart);
  LabelRef defer = a.label();
  a.ldm(R0, 4, "addr");
  a.itagld(R1, R0, R2, "value + presence");
  a.brz(R2, defer, "empty -> defer");
  a.ldm(R2, 8, "reply inlet");
  a.ldm(R3, 12, "reply frame");
  begin_reply(R3);
  a.sendw(R2);
  a.sendw(R3);
  a.sendw(R1, "value");
  a.sende();
  a.suspend();
  a.bind(defer);
  a.ldm(R2, 8, "reply inlet");
  a.ldm(R3, 12, "reply frame");
  a.idefer(R0, R2, R3, "record deferred read");
  a.suspend();

  // --- rt_istore ---------------------------------------------------------
  refs.rt_istore = a.here("rt_istore");
  a.mark(MarkKind::SysStart);
  LabelRef wake_loop = a.label();
  LabelRef wake_done = a.label();
  a.ldm(R0, 4, "addr");
  a.ldm(R1, 8, "value");
  a.itagst(R0, R1, "write + set presence");
  a.idhead(R2, R0, "detach deferred list");
  a.bind(wake_loop);
  a.brz(R2, wake_done);
  a.ld(R3, R2, 0, "deferred inlet");
  a.ld(R4, R2, 4, "deferred frame");
  begin_reply(R4);
  a.sendw(R3);
  a.sendw(R4);
  a.sendw(R1, "value");
  a.sende();
  a.ld(R2, R2, 8, "next deferred node");
  a.br(wake_loop);
  a.bind(wake_done);
  a.suspend();

  // --- rt_gfetch (imperative read: no presence check) ---------------------
  refs.rt_gfetch = a.here("rt_gfetch");
  a.mark(MarkKind::SysStart);
  a.ldm(R0, 4, "addr");
  a.ld(R1, R0, 0, "value");
  a.ldm(R2, 8, "reply inlet");
  a.ldm(R3, 12, "reply frame");
  begin_reply(R3);
  a.sendw(R2);
  a.sendw(R3);
  a.sendw(R1, "value");
  a.sende();
  a.suspend();

  // --- rt_gstore (imperative write: fire and forget; FIFO order of the
  // system queue sequences it against later gfetches) ----------------------
  refs.rt_gstore = a.here("rt_gstore");
  a.mark(MarkKind::SysStart);
  a.ldm(R0, 4, "addr");
  a.ldm(R1, 8, "value");
  a.st(R0, 0, R1);
  a.suspend();
}

}  // namespace jtam::rt
