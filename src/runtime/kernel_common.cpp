// Kernel pieces shared by both back-ends: frame allocation/free, halt, and
// the top-level emit_kernel orchestration.

#include "mdp/assembler.h"
#include "mem/memory_map.h"
#include "runtime/kernel.h"
#include "support/error.h"

namespace jtam::rt {

using namespace mdp;  // NOLINT(build/namespaces) — assembler DSL

Priority inlet_queue(BackendKind backend) {
  // Hybrid inlets are high-priority handlers like AM's.
  return backend == BackendKind::MessageDriven ? Priority::Low
                                               : Priority::High;
}

namespace {

// rt_falloc — high-priority frame allocation handler.
//   message: [rt_falloc, cb_id, reply_inlet, reply_frame]
//   reply:   [reply_inlet, reply_frame, new_frame]
// Pops the codeblock's free list when possible, else bump-allocates; zeroes
// the header; copies the entry-count template from the descriptor table.
void emit_falloc(Assembler& a, KernelRefs& refs, BackendKind backend,
                 Priority reply_queue, bool multi_node,
                 std::uint32_t node_shift) {
  refs.rt_falloc = a.here("rt_falloc");
  a.mark(MarkKind::SysStart);
  LabelRef reuse = a.label();
  LabelRef init = a.label();
  LabelRef copy = a.label();
  LabelRef reply = a.label();

  a.ldm(R0, 4, "cb id");
  a.alui(Op::Shli, R1, R0, 4, "desc = base + cb*16");
  a.alui(Op::Addi, R1, R1, static_cast<std::int32_t>(mem::kSysTableBase));
  a.alui(Op::Shli, R2, R0, 2, "free head = base + cb*4");
  a.alui(Op::Addi, R2, R2, static_cast<std::int32_t>(kGlFreeHeads));
  a.ld(R3, R2, 0, "free-list head");
  a.brnz(R3, reuse);
  // Bump allocation from the frame heap.
  a.ldg(R3, static_cast<std::int32_t>(kGlHeapBump));
  a.ld(R4, R1, 0, "frame bytes");
  a.alu(Op::Add, R4, R4, R3);
  a.stg(R4, static_cast<std::int32_t>(kGlHeapBump));
  a.br(init);
  a.bind(reuse);
  a.ld(R4, R3, kFrameLinkOff, "next free frame");
  a.st(R2, 0, R4);
  a.bind(init);
  a.sti(R3, kFrameLinkOff, 0, "clear link");
  if (backend != BackendKind::MessageDriven) {
    a.sti(R3, kAmRcvCntOff, 0, "clear RCV count");
  }
  // Copy the entry-count template.
  a.ld(R5, R1, 8, "num entry counts");
  a.ld(R4, R1, 12, "template addr");
  a.ld(R2, R1, 4, "ec offset");
  a.alu(Op::Add, R2, R2, R3, "ec dst");
  a.bind(copy);
  a.brz(R5, reply);
  a.ld(R0, R4, 0);
  a.st(R2, 0, R0);
  a.alui(Op::Addi, R4, R4, 4);
  a.alui(Op::Addi, R2, R2, 4);
  a.alui(Op::Subi, R5, R5, 1);
  a.br(copy);
  a.bind(reply);
  a.ldm(R0, 8, "reply inlet");
  a.ldm(R1, 12, "reply frame");
  if (reply_queue == Priority::High) {
    a.sendh();
  } else {
    a.sendl();
  }
  if (multi_node) {
    emit_node_of(a, R5, R1, node_shift, "reply destination node");
    a.sendd(R5);
  }
  a.sendw(R0);
  a.sendw(R1);
  a.sendw(R3, "new frame");
  a.sende();
  a.suspend();
}

// rt_ffree — return a frame to its codeblock's free list.
//   message: [rt_ffree, cb_id, frame]
void emit_ffree(Assembler& a, KernelRefs& refs) {
  refs.rt_ffree = a.here("rt_ffree");
  a.mark(MarkKind::SysStart);
  a.ldm(R0, 4, "cb id");
  a.ldm(R1, 8, "frame");
  a.alui(Op::Shli, R2, R0, 2);
  a.alui(Op::Addi, R2, R2, static_cast<std::int32_t>(kGlFreeHeads));
  a.ld(R3, R2, 0, "old head");
  a.st(R1, kFrameLinkOff, R3, "frame.link = old head");
  a.st(R2, 0, R1, "head = frame");
  a.suspend();
}

// rt_halloc — bump-allocate global heap storage (fresh I-structure arrays,
// as Id's array constructors did).
//   message: [rt_halloc, size_bytes, reply_inlet, reply_frame]
//   reply:   [reply_inlet, reply_frame, base]
void emit_halloc(Assembler& a, KernelRefs& refs, Priority reply_queue,
                 bool multi_node, std::uint32_t node_shift) {
  refs.rt_halloc = a.here("rt_halloc");
  a.mark(MarkKind::SysStart);
  a.ldm(R0, 4, "size in bytes");
  a.ldg(R1, static_cast<std::int32_t>(kGlHeapBump));
  a.alu(Op::Add, R2, R1, R0);
  a.stg(R2, static_cast<std::int32_t>(kGlHeapBump));
  a.ldm(R2, 8, "reply inlet");
  a.ldm(R3, 12, "reply frame");
  if (reply_queue == Priority::High) {
    a.sendh();
  } else {
    a.sendl();
  }
  if (multi_node) {
    emit_node_of(a, R5, R3, node_shift, "reply destination node");
    a.sendd(R5);
  }
  a.sendw(R2);
  a.sendw(R3);
  a.sendw(R1, "base");
  a.sende();
  a.suspend();
}

// rt_halt — deliver the result word to the host and stop the machine.
//   message: [rt_halt, value]
void emit_halt(Assembler& a, KernelRefs& refs) {
  refs.rt_halt = a.here("rt_halt");
  a.mark(MarkKind::SysStart);
  a.ldm(R0, 4, "result");
  a.halt(R0);
}

}  // namespace

void emit_lcv_pop_jmp(Assembler& a) {
  a.ldg(R5, static_cast<std::int32_t>(kGlLcvTop), "stop: pop LCV");
  a.alui(Op::Subi, R5, R5, 4);
  a.stg(R5, static_cast<std::int32_t>(kGlLcvTop));
  a.ld(R5, R5, 0, "next thread (or sentinel)");
  a.jmp(R5);
}

void emit_lcv_push_label(Assembler& a, ImmOrLabel thread) {
  a.ldg(R5, static_cast<std::int32_t>(kGlLcvTop), "fork: push LCV");
  a.sti(R5, 0, thread);
  a.alui(Op::Addi, R5, R5, 4);
  a.stg(R5, static_cast<std::int32_t>(kGlLcvTop));
}

KernelRefs emit_kernel(Assembler& a, const KernelOptions& opts) {
  JTAM_CHECK(a.current_section() == Section::SysCode,
             "kernel must be emitted into the system-code section");
  KernelRefs refs;
  refs.backend = opts.backend;
  const Priority replies = inlet_queue(opts.backend);

  emit_halt(a, refs);
  emit_falloc(a, refs, opts.backend, replies, opts.multi_node,
              opts.node_shift);
  emit_ffree(a, refs);
  emit_halloc(a, refs, replies, opts.multi_node, opts.node_shift);
  emit_istructure_handlers(a, refs, replies, opts.multi_node,
                           opts.node_shift);
  emit_fp_library(a, refs);
  if (opts.backend == BackendKind::MessageDriven) {
    emit_md_kernel(a, refs);
  } else {
    emit_am_kernel(a, refs);  // AM and Hybrid share the scheduler kernel
  }
  return refs;
}

}  // namespace jtam::rt
