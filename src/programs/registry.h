// Workload interface and the registry of the paper's six programs (§3):
//
//   matrix multiply (MMT), quicksort (QS), discrete time warp (DTW),
//   paraffins, wavefront, and selection sort (SS).
//
// Each workload supplies a TAM IR program, a host-side setup hook that
// builds its initial heap (I-structure arrays), allocates the root frame
// and injects the boot messages, and a check hook that validates the final
// machine state against a plain-C++ oracle.  Both back-ends must produce
// identical results ("while both implementations yield the same results,
// their dynamic behaviors differ", §2.3) — the test suite asserts this for
// every workload.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mdp/machine.h"
#include "tamc/lower.h"

namespace jtam::programs {

/// Host-side environment handed to Workload::setup before the run starts.
/// Mirrors what the J-Machine boot loader did: it can place initial data in
/// user memory, build the root frame, and enqueue boot messages.
class SetupCtx {
 public:
  SetupCtx(mdp::Machine& m, const tamc::CompiledProgram& cp);

  /// Allocate `words` words of user data; returns the base address.
  mem::Addr alloc_words(std::uint32_t words);
  /// Plain word write (no presence tag).
  void write(mem::Addr a, std::uint32_t v);
  /// I-structure writes: set the word and its presence tag.
  void write_tagged(mem::Addr a, std::uint32_t v);
  void write_tagged_f(mem::Addr a, float v);
  /// Allocate and initialize a frame for `cb` exactly as rt_falloc would.
  mem::Addr alloc_frame(tam::CbId cb);
  /// Enqueue a boot message to a user inlet (lands in the back-end's inlet
  /// queue, as if sent by the network).
  void send_to_inlet(tam::CbId cb, tam::InletId inlet, mem::Addr frame,
                     const std::vector<std::uint32_t>& args);

  /// First free user-data address (the runtime heap starts here).
  mem::Addr cursor() const { return cursor_; }
  mdp::Machine& machine() { return m_; }
  const tamc::CompiledProgram& compiled() const { return cp_; }

 private:
  mdp::Machine& m_;
  const tamc::CompiledProgram& cp_;
  mem::Addr cursor_;
};

/// Final machine state handed to Workload::check.
struct CheckCtx {
  mdp::Machine& m;
  mdp::RunStatus status;
  std::uint32_t halt_value;
};

struct Workload {
  std::string name;
  std::string description;
  /// Identity key for driver::run_many's result memo: name plus every
  /// problem-size parameter, so the same program at two scales never
  /// aliases.  Leave empty on hand-built workloads to opt out of
  /// memoization.
  std::string key;
  tam::Program program;
  std::function<void(SetupCtx&)> setup;
  /// Returns an empty string on success, else a failure description.
  std::function<std::string(const CheckCtx&)> check;
};

/// Problem sizes.  Defaults are scaled so each run executes 10^5-10^7
/// simulated instructions (the paper's runs were 10^5-10^7+ as well) while
/// the working sets still sweep past the 1K-128K cache ladder.
struct Scale {
  int mmt_n = 40;          // paper: 50 (n x n float matrices)
  int qs_n = 200;          // paper: 100 random integers
  int dtw_n = 32;          // paper: arg 10; FP cost matrix of dtw_n^2
  int paraffins_n = 16;    // paper: 13 (max paraffin size)
  int wavefront_n = 40;    // paper: 40 (matrix edge)
  int wavefront_steps = 5; // successive matrices
  int ss_n = 100;          // paper: 100 integers in reverse order
};

Workload make_mmt(int n);
Workload make_quicksort(int n, std::uint32_t seed = 0x1234abcd);
Workload make_dtw(int n);
Workload make_paraffins(int n);
Workload make_wavefront(int n, int steps);
Workload make_selection_sort(int n);

/// The paper's six programs, in Table 2 order (increasing TPQ).
std::vector<Workload> paper_workloads(const Scale& s = {});

/// Plain-C++ oracle for the paraffins DP: p[m] (isomer count of C_m H_2m+2)
/// for m = 0..n.  Exposed so tests can pin it against the published
/// sequence (p(13) = 802).
std::vector<std::int64_t> paraffins_oracle(int n);

}  // namespace jtam::programs
