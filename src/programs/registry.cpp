#include "programs/registry.h"

#include <bit>

#include "runtime/kernel.h"
#include "support/error.h"

namespace jtam::programs {

SetupCtx::SetupCtx(mdp::Machine& m, const tamc::CompiledProgram& cp)
    : m_(m), cp_(cp), cursor_(mem::kUserDataBase) {}

mem::Addr SetupCtx::alloc_words(std::uint32_t words) {
  mem::Addr base = cursor_;
  cursor_ += words * mem::kWordBytes;
  JTAM_CHECK(cursor_ <= mem::kUserDataLimit, "host heap exhausted in setup");
  return base;
}

void SetupCtx::write(mem::Addr a, std::uint32_t v) { m_.store_word(a, v); }

void SetupCtx::write_tagged(mem::Addr a, std::uint32_t v) {
  m_.store_word(a, v);
  m_.set_tag(a, true);
}

void SetupCtx::write_tagged_f(mem::Addr a, float v) {
  write_tagged(a, std::bit_cast<std::uint32_t>(v));
}

mem::Addr SetupCtx::alloc_frame(tam::CbId cb) {
  const rt::FrameLayout& fl = cp_.layouts[static_cast<std::size_t>(cb)];
  mem::Addr frame =
      alloc_words(static_cast<std::uint32_t>(fl.frame_bytes) / 4);
  m_.store_word(frame + rt::kFrameLinkOff, 0);
  if (fl.backend == rt::BackendKind::ActiveMessages) {
    m_.store_word(frame + rt::kAmRcvCntOff, 0);
  }
  for (int e = 0; e < fl.num_ec; ++e) {
    m_.store_word(frame + static_cast<mem::Addr>(fl.ec_off + 4 * e),
                  static_cast<std::uint32_t>(fl.ec_init[e]));
  }
  return frame;
}

void SetupCtx::send_to_inlet(tam::CbId cb, tam::InletId inlet,
                             mem::Addr frame,
                             const std::vector<std::uint32_t>& args) {
  JTAM_CHECK(static_cast<int>(args.size()) ==
                 cp_.source.codeblocks[cb].inlets[inlet].payload_words,
             "boot message payload does not match inlet arity");
  std::vector<std::uint32_t> words;
  words.reserve(args.size() + 2);
  words.push_back(cp_.inlet_addr(cb, inlet));
  words.push_back(frame);
  for (std::uint32_t a : args) words.push_back(a);
  m_.inject(rt::inlet_queue(cp_.options.backend), words);
}

std::vector<Workload> paper_workloads(const Scale& s) {
  // Table 2 order: TPQ increases down the list.
  return {
      make_mmt(s.mmt_n),
      make_quicksort(s.qs_n),
      make_dtw(s.dtw_n),
      make_paraffins(s.paraffins_n),
      make_wavefront(s.wavefront_n, s.wavefront_steps),
      make_selection_sort(s.ss_n),
  };
}

}  // namespace jtam::programs
