// Quicksort (QS) — "sorts an array of random integers" (§3).
//
// Functional-style quicksort, as the Id original: each activation fetches
// its input array element by element (split-phase), partitions into two
// freshly heap-allocated I-structure arrays, writes the pivot into its
// final position in the shared output array, and recurses through frame
// allocation.  Children signal completion through a dynamic continuation;
// frames are released and recycled through the codeblock free list.  The
// live recursion tree keeps many activations in flight, so quanta stay
// small (Table 2: TPQ 4.5 MD / 5.7 AM).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

// main codeblock slots
constexpr SlotId kMSrc = 0;
constexpr SlotId kMN = 1;
constexpr SlotId kMDst = 2;
constexpr SlotId kMQf = 3;

// qsort codeblock slots
constexpr SlotId kQSrc = 0;
constexpr SlotId kQN = 1;
constexpr SlotId kQDst = 2;
constexpr SlotId kQOff = 3;
constexpr SlotId kQRetI = 4;
constexpr SlotId kQRetF = 5;
constexpr SlotId kQPivot = 6;
constexpr SlotId kQK = 7;
constexpr SlotId kQNl = 8;
constexpr SlotId kQNg = 9;
constexpr SlotId kQLess = 10;
constexpr SlotId kQGeq = 11;
constexpr SlotId kQV = 13;
constexpr SlotId kQChildF = 14;

constexpr CbId kCbMain = 0;
constexpr CbId kCbQsort = 1;

Program build_program() {
  Program prog;
  prog.name = "quicksort";

  // ---- main codeblock --------------------------------------------------
  CodeblockBuilder mc(prog, "qs_main", 4);
  ThreadId t_go = mc.declare_thread("go");
  ThreadId t_send = mc.declare_thread("send_root_args");
  ThreadId t_halt = mc.declare_thread("halt");
  InletId in_start = mc.declare_inlet("start", 3);
  InletId in_qf = mc.declare_inlet("root_frame", 1);
  InletId in_done = mc.declare_inlet("sorted", 1);

  {
    BodyBuilder b = mc.define_inlet(in_start);
    b.frame_store(kMSrc, b.msg_load(0));
    b.frame_store(kMN, b.msg_load(1));
    b.frame_store(kMDst, b.msg_load(2));
    b.post(t_go);
  }
  {
    BodyBuilder b = mc.define_inlet(in_qf);
    b.frame_store(kMQf, b.msg_load(0));
    b.post(t_send);
  }
  {
    BodyBuilder b = mc.define_inlet(in_done);
    b.msg_load(0);  // completion token (ignored)
    b.post(t_halt);
  }
  {
    BodyBuilder b = mc.define_thread(t_go);
    b.falloc(kCbQsort, in_qf);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_send);
    VReg qf = b.frame_load(kMQf);
    VReg src = b.frame_load(kMSrc);
    VReg n = b.frame_load(kMN);
    VReg dst = b.frame_load(kMDst);
    b.send_msg(kCbQsort, /*in_snd=*/0, qf, {src, n, dst});
    VReg off = b.konst(0);
    VReg reti = b.inlet_addr(in_done);
    VReg self = b.self_frame();
    b.send_msg(kCbQsort, /*in_orf=*/1, qf, {off, reti, self});
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_halt);
    VReg n = b.frame_load(kMN);
    b.send_halt(n);
    b.stop();
  }
  mc.finish();

  // ---- qsort codeblock ---------------------------------------------------
  CodeblockBuilder qc(prog, "qsort", 15);
  ThreadId t_start = qc.declare_thread("start", /*entry_count=*/2);
  ThreadId t_ne0 = qc.declare_thread("not_empty");
  ThreadId t_done0 = qc.declare_thread("empty_done");
  ThreadId t_single1 = qc.declare_thread("single_fetch");
  ThreadId t_single2 = qc.declare_thread("single_place");
  ThreadId t_pre = qc.declare_thread("fetch_pivot");
  ThreadId t_alloc1 = qc.declare_thread("alloc_less");
  ThreadId t_alloc2 = qc.declare_thread("alloc_geq");
  ThreadId t_pstart = qc.declare_thread("partition_start");
  ThreadId t_kloop = qc.declare_thread("kloop");
  ThreadId t_fetchk = qc.declare_thread("fetch_elem");
  ThreadId t_part = qc.declare_thread("partition");
  ThreadId t_putl = qc.declare_thread("put_less");
  ThreadId t_putg = qc.declare_thread("put_geq");
  ThreadId t_place = qc.declare_thread("place_pivot");
  ThreadId t_spawnl = qc.declare_thread("spawn_left");
  ThreadId t_fallocl = qc.declare_thread("falloc_left");
  ThreadId t_sendl = qc.declare_thread("send_left");
  ThreadId t_spawnr = qc.declare_thread("spawn_right");
  ThreadId t_fallocr = qc.declare_thread("falloc_right");
  ThreadId t_sendr = qc.declare_thread("send_right");
  ThreadId t_selfl = qc.declare_thread("no_left_child");
  ThreadId t_selfr = qc.declare_thread("no_right_child");
  ThreadId t_alldone = qc.declare_thread("all_done", /*entry_count=*/2);
  InletId in_snd = qc.declare_inlet("src_n_dst", 3);
  InletId in_orf = qc.declare_inlet("off_ret", 3);
  InletId in_pivot = qc.declare_inlet("pivot", 1);
  InletId in_sv = qc.declare_inlet("single_value", 1);
  InletId in_v = qc.declare_inlet("elem", 1);
  InletId in_less = qc.declare_inlet("less_base", 1);
  InletId in_geq = qc.declare_inlet("geq_base", 1);
  InletId in_lf = qc.declare_inlet("left_frame", 1);
  InletId in_rf = qc.declare_inlet("right_frame", 1);
  InletId in_cdone = qc.declare_inlet("child_done", 1);

  {
    BodyBuilder b = qc.define_inlet(in_snd);
    b.frame_store(kQSrc, b.msg_load(0));
    b.frame_store(kQN, b.msg_load(1));
    b.frame_store(kQDst, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = qc.define_inlet(in_orf);
    b.frame_store(kQOff, b.msg_load(0));
    b.frame_store(kQRetI, b.msg_load(1));
    b.frame_store(kQRetF, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = qc.define_inlet(in_pivot);
    b.frame_store(kQPivot, b.msg_load(0));
    b.post(t_alloc1);
  }
  {
    BodyBuilder b = qc.define_inlet(in_sv);
    b.frame_store(kQV, b.msg_load(0));
    b.post(t_single2);
  }
  {
    BodyBuilder b = qc.define_inlet(in_v);
    b.frame_store(kQV, b.msg_load(0));
    b.post(t_part);
  }
  {
    BodyBuilder b = qc.define_inlet(in_less);
    b.frame_store(kQLess, b.msg_load(0));
    b.post(t_alloc2);
  }
  {
    BodyBuilder b = qc.define_inlet(in_geq);
    b.frame_store(kQGeq, b.msg_load(0));
    b.post(t_pstart);
  }
  {
    BodyBuilder b = qc.define_inlet(in_lf);
    b.frame_store(kQChildF, b.msg_load(0));
    b.post(t_sendl);
  }
  {
    BodyBuilder b = qc.define_inlet(in_rf);
    b.frame_store(kQChildF, b.msg_load(0));
    b.post(t_sendr);
  }
  {
    // Every activation receives exactly two child-done messages (absent
    // children send one to self), so the join is a synchronizing thread
    // with entry count 2 — TAM's own exactly-once mechanism.
    BodyBuilder b = qc.define_inlet(in_cdone);
    b.msg_load(0);  // completion token
    b.post(t_alldone);
  }

  {
    BodyBuilder b = qc.define_thread(t_start);
    VReg n = b.frame_load(kQN);
    VReg c = b.bini(BinOp::Lt, n, 1);  // n == 0
    b.cond_forks(c, {t_done0}, {t_ne0});
  }
  {
    BodyBuilder b = qc.define_thread(t_ne0);
    VReg n = b.frame_load(kQN);
    VReg c = b.bini(BinOp::Lt, n, 2);  // n == 1
    b.cond_forks(c, {t_single1}, {t_pre});
  }
  {
    BodyBuilder b = qc.define_thread(t_done0);
    VReg reti = b.frame_load(kQRetI);
    VReg retf = b.frame_load(kQRetF);
    VReg one = b.konst(1);
    b.send_dyn(reti, retf, {one});
    b.release();
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_single1);
    VReg src = b.frame_load(kQSrc);
    b.ifetch(src, in_sv);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_single2);
    VReg dst = b.frame_load(kQDst);
    VReg off = b.frame_load(kQOff);
    VReg o4 = b.bini(BinOp::Shl, off, 2);
    VReg addr = b.bin(BinOp::Add, dst, o4);
    VReg v = b.frame_load(kQV);
    b.istore(addr, v);
    VReg reti = b.frame_load(kQRetI);
    VReg retf = b.frame_load(kQRetF);
    VReg one = b.konst(1);
    b.send_dyn(reti, retf, {one});
    b.release();
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_pre);
    VReg src = b.frame_load(kQSrc);
    b.ifetch(src, in_pivot);  // pivot = src[0]
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_alloc1);
    VReg n = b.frame_load(kQN);
    VReg bytes = b.bini(BinOp::Shl, n, 2);  // n-1 would do; n is simpler
    b.halloc(bytes, in_less);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_alloc2);
    VReg n = b.frame_load(kQN);
    VReg bytes = b.bini(BinOp::Shl, n, 2);
    b.halloc(bytes, in_geq);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_pstart);
    b.frame_store(kQNl, b.konst(0));
    b.frame_store(kQNg, b.konst(0));
    b.frame_store(kQK, b.konst(1));
    b.forks({t_kloop});
  }
  {
    BodyBuilder b = qc.define_thread(t_kloop);
    VReg k = b.frame_load(kQK);
    VReg n = b.frame_load(kQN);
    VReg c = b.bin(BinOp::Lt, k, n);
    b.cond_forks(c, {t_fetchk}, {t_place});
  }
  {
    BodyBuilder b = qc.define_thread(t_fetchk);
    VReg src = b.frame_load(kQSrc);
    VReg k = b.frame_load(kQK);
    VReg o = b.bini(BinOp::Shl, k, 2);
    VReg addr = b.bin(BinOp::Add, src, o);
    b.ifetch(addr, in_v);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_part);
    VReg v = b.frame_load(kQV);
    VReg p = b.frame_load(kQPivot);
    VReg c = b.bin(BinOp::Lt, v, p);
    b.cond_forks(c, {t_putl}, {t_putg});
  }
  {
    BodyBuilder b = qc.define_thread(t_putl);
    VReg la = b.frame_load(kQLess);
    VReg nl = b.frame_load(kQNl);
    VReg o = b.bini(BinOp::Shl, nl, 2);
    VReg addr = b.bin(BinOp::Add, la, o);
    VReg v = b.frame_load(kQV);
    b.istore(addr, v);
    VReg nl1 = b.bini(BinOp::Add, nl, 1);
    b.frame_store(kQNl, nl1);
    VReg k = b.frame_load(kQK);
    VReg k1 = b.bini(BinOp::Add, k, 1);
    b.frame_store(kQK, k1);
    b.forks({t_kloop});
  }
  {
    BodyBuilder b = qc.define_thread(t_putg);
    VReg ga = b.frame_load(kQGeq);
    VReg ng = b.frame_load(kQNg);
    VReg o = b.bini(BinOp::Shl, ng, 2);
    VReg addr = b.bin(BinOp::Add, ga, o);
    VReg v = b.frame_load(kQV);
    b.istore(addr, v);
    VReg ng1 = b.bini(BinOp::Add, ng, 1);
    b.frame_store(kQNg, ng1);
    VReg k = b.frame_load(kQK);
    VReg k1 = b.bini(BinOp::Add, k, 1);
    b.frame_store(kQK, k1);
    b.forks({t_kloop});
  }
  {
    // Pivot lands in its final position; children fill the flanks.
    BodyBuilder b = qc.define_thread(t_place);
    VReg off = b.frame_load(kQOff);
    VReg nl = b.frame_load(kQNl);
    VReg s = b.bin(BinOp::Add, off, nl);
    VReg o4 = b.bini(BinOp::Shl, s, 2);
    VReg dst = b.frame_load(kQDst);
    VReg addr = b.bin(BinOp::Add, dst, o4);
    VReg pv = b.frame_load(kQPivot);
    b.istore(addr, pv);
    b.forks({t_spawnl});
  }
  {
    BodyBuilder b = qc.define_thread(t_spawnl);
    VReg nl = b.frame_load(kQNl);
    VReg zero = b.konst(0);
    VReg c = b.bin(BinOp::Lt, zero, nl);
    b.cond_forks(c, {t_fallocl}, {t_selfl});
  }
  {
    BodyBuilder b = qc.define_thread(t_fallocl);
    b.falloc(kCbQsort, in_lf);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_sendl);
    VReg cf = b.frame_load(kQChildF);
    VReg less = b.frame_load(kQLess);
    VReg nl = b.frame_load(kQNl);
    VReg dst = b.frame_load(kQDst);
    b.send_msg(kCbQsort, in_snd, cf, {less, nl, dst});
    VReg off = b.frame_load(kQOff);
    VReg reti = b.inlet_addr(in_cdone);
    VReg self = b.self_frame();
    b.send_msg(kCbQsort, in_orf, cf, {off, reti, self});
    b.forks({t_spawnr});
  }
  {
    BodyBuilder b = qc.define_thread(t_spawnr);
    VReg ng = b.frame_load(kQNg);
    VReg zero = b.konst(0);
    VReg c = b.bin(BinOp::Lt, zero, ng);
    b.cond_forks(c, {t_fallocr}, {t_selfr});
  }
  {
    BodyBuilder b = qc.define_thread(t_selfl);
    VReg self = b.self_frame();
    VReg one = b.konst(1);
    b.send_msg(kCbQsort, in_cdone, self, {one});
    b.forks({t_spawnr});
  }
  {
    BodyBuilder b = qc.define_thread(t_selfr);
    VReg self = b.self_frame();
    VReg one = b.konst(1);
    b.send_msg(kCbQsort, in_cdone, self, {one});
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_fallocr);
    b.falloc(kCbQsort, in_rf);
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_sendr);
    VReg cf = b.frame_load(kQChildF);
    VReg geq = b.frame_load(kQGeq);
    VReg ng = b.frame_load(kQNg);
    VReg dst = b.frame_load(kQDst);
    b.send_msg(kCbQsort, in_snd, cf, {geq, ng, dst});
    VReg off = b.frame_load(kQOff);
    VReg nl = b.frame_load(kQNl);
    VReg o2 = b.bin(BinOp::Add, off, nl);
    VReg roff = b.bini(BinOp::Add, o2, 1);
    VReg reti = b.inlet_addr(in_cdone);
    VReg self = b.self_frame();
    b.send_msg(kCbQsort, in_orf, cf, {roff, reti, self});
    b.stop();
  }
  {
    BodyBuilder b = qc.define_thread(t_alldone);
    VReg reti = b.frame_load(kQRetI);
    VReg retf = b.frame_load(kQRetF);
    VReg one = b.konst(1);
    b.send_dyn(reti, retf, {one});
    b.release();
    b.stop();
  }
  qc.finish();

  return prog;
}

std::vector<std::uint32_t> random_values(int n, std::uint32_t seed) {
  std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
  std::uint32_t x = seed;
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    v[static_cast<std::size_t>(i)] = (x >> 8) & 0x7fffffffu;
  }
  return v;
}

}  // namespace

Workload make_quicksort(int n, std::uint32_t seed) {
  JTAM_CHECK(n >= 1, "quicksort needs n >= 1");
  struct State {
    mem::Addr src = 0, dst = 0;
  };
  auto st = std::make_shared<State>();

  Workload w;
  w.name = "qs";
  w.key = "qs/" + std::to_string(n) + "/" + std::to_string(seed);
  w.description = "functional quicksort of " + std::to_string(n) +
                  " random integers (paper arg: 100)";
  w.program = build_program();
  w.setup = [st, n, seed](SetupCtx& ctx) {
    st->src = ctx.alloc_words(static_cast<std::uint32_t>(n));
    st->dst = ctx.alloc_words(static_cast<std::uint32_t>(n));
    const std::vector<std::uint32_t> vals = random_values(n, seed);
    for (int i = 0; i < n; ++i) {
      ctx.write_tagged(st->src + static_cast<mem::Addr>(4 * i),
                       vals[static_cast<std::size_t>(i)]);
    }
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame,
                      {st->src, static_cast<std::uint32_t>(n), st->dst});
  };
  w.check = [st, n, seed](const CheckCtx& ctx) -> std::string {
    std::vector<std::uint32_t> want = random_values(n, seed);
    std::sort(want.begin(), want.end());
    for (int i = 0; i < n; ++i) {
      const auto addr = st->dst + static_cast<mem::Addr>(4 * i);
      if (!ctx.m.tag(addr)) {
        return "dst[" + std::to_string(i) + "] never written";
      }
      std::uint32_t got = ctx.m.load_word(addr);
      if (got != want[static_cast<std::size_t>(i)]) {
        return "dst[" + std::to_string(i) + "] = " + std::to_string(got) +
               ", expected " + std::to_string(want[i]);
      }
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
