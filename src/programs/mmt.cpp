// Matrix multiply with trace (MMT) — "multiplies two matrices of
// floating-point numbers and sums the elements of the product" (§3).
//
// Structure: the main codeblock spawns one row codeblock per result row;
// each row computes its n dot products with split-phase I-structure reads
// of A and B, paying the software-FP library for every multiply/add.  All
// rows are live at once, so replies interleave heavily across frames —
// MMT is the finest-grained program in Table 2 (TPQ 4.2 under both
// back-ends) and the only one where AM wins at every miss penalty.

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

// main codeblock slots
constexpr SlotId kMainA = 0;
constexpr SlotId kMainB = 1;
constexpr SlotId kMainC = 2;
constexpr SlotId kMainN = 3;
constexpr SlotId kMainK = 4;
constexpr SlotId kMainRowF = 5;
constexpr SlotId kMainSum = 6;
constexpr SlotId kMainCnt = 7;

// row codeblock slots
constexpr SlotId kRowA = 0;
constexpr SlotId kRowB = 1;
constexpr SlotId kRowC = 2;
constexpr SlotId kRowN = 3;
constexpr SlotId kRowI = 4;
constexpr SlotId kRowMainF = 5;
constexpr SlotId kRowJ = 6;
constexpr SlotId kRowK = 7;
constexpr SlotId kRowAcc = 8;
constexpr SlotId kRowVa = 9;
constexpr SlotId kRowVb = 10;
constexpr SlotId kRowSum = 11;

constexpr CbId kCbMain = 0;
constexpr CbId kCbRow = 1;

Program build_program() {
  Program prog;
  prog.name = "mmt";

  // ---- main codeblock (cb 0) ------------------------------------------
  CodeblockBuilder main_cb(prog, "mmt_main", 8);
  ThreadId t_init = main_cb.declare_thread("init");
  ThreadId t_spawn = main_cb.declare_thread("spawn");
  ThreadId t_falloc = main_cb.declare_thread("falloc_row");
  ThreadId t_sendargs = main_cb.declare_thread("send_row_args");
  ThreadId t_check = main_cb.declare_thread("check_done");
  ThreadId t_finish = main_cb.declare_thread("finish");
  InletId in_start = main_cb.declare_inlet("start", 4);
  InletId in_fr = main_cb.declare_inlet("row_frame", 1);
  InletId in_done = main_cb.declare_inlet("row_done", 1);

  {
    BodyBuilder b = main_cb.define_inlet(in_start);
    b.frame_store(kMainA, b.msg_load(0));
    b.frame_store(kMainB, b.msg_load(1));
    b.frame_store(kMainC, b.msg_load(2));
    b.frame_store(kMainN, b.msg_load(3));
    b.post(t_init);
  }
  {
    BodyBuilder b = main_cb.define_inlet(in_fr);
    b.frame_store(kMainRowF, b.msg_load(0));
    b.post(t_sendargs);
  }
  {
    // Row completion: accumulate the row sum *in the inlet* so concurrent
    // completions cannot interleave between load and store (inlets are
    // atomic at their priority level in both back-ends).
    BodyBuilder b = main_cb.define_inlet(in_done);
    VReg v = b.msg_load(0);
    VReg sum = b.frame_load(kMainSum);
    VReg s2 = b.bin(BinOp::FAdd, sum, v);
    b.frame_store(kMainSum, s2);
    VReg cnt = b.frame_load(kMainCnt);
    VReg c2 = b.bini(BinOp::Add, cnt, 1);
    b.frame_store(kMainCnt, c2);
    b.post(t_check);
  }
  {
    BodyBuilder b = main_cb.define_thread(t_init);
    b.frame_store(kMainK, b.konst(0));
    b.frame_store(kMainSum, b.konst_f(0.0f));
    b.frame_store(kMainCnt, b.konst(0));
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = main_cb.define_thread(t_spawn);
    VReg k = b.frame_load(kMainK);
    VReg n = b.frame_load(kMainN);
    VReg c = b.bin(BinOp::Lt, k, n);
    b.cond_forks(c, {t_falloc}, {});
  }
  {
    BodyBuilder b = main_cb.define_thread(t_falloc);
    b.falloc(kCbRow, in_fr);
    b.stop();
  }
  {
    BodyBuilder b = main_cb.define_thread(t_sendargs);
    VReg rowf = b.frame_load(kMainRowF);
    VReg av = b.frame_load(kMainA);
    VReg bv = b.frame_load(kMainB);
    VReg cv = b.frame_load(kMainC);
    b.send_msg(kCbRow, /*in_abc=*/0, rowf, {av, bv, cv});
    VReg n = b.frame_load(kMainN);
    VReg k = b.frame_load(kMainK);
    VReg self = b.self_frame();
    b.send_msg(kCbRow, /*in_nif=*/1, rowf, {n, k, self});
    VReg k1 = b.bini(BinOp::Add, k, 1);
    b.frame_store(kMainK, k1);
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = main_cb.define_thread(t_check);
    VReg cnt = b.frame_load(kMainCnt);
    VReg n = b.frame_load(kMainN);
    VReg c = b.bin(BinOp::Eq, cnt, n);
    b.cond_forks(c, {t_finish}, {});
  }
  {
    BodyBuilder b = main_cb.define_thread(t_finish);
    VReg sum = b.frame_load(kMainSum);
    b.send_halt(sum);
    b.stop();
  }
  main_cb.finish();

  // ---- row codeblock (cb 1) --------------------------------------------
  CodeblockBuilder row_cb(prog, "mmt_row", 12);
  ThreadId t_start = row_cb.declare_thread("row_start", /*entry_count=*/2);
  ThreadId t_jloop = row_cb.declare_thread("jloop");
  ThreadId t_dotinit = row_cb.declare_thread("dot_init");
  ThreadId t_kloop = row_cb.declare_thread("kloop");
  ThreadId t_fetch2 = row_cb.declare_thread("fetch_ab");
  ThreadId t_acc = row_cb.declare_thread("accumulate", /*entry_count=*/2);
  ThreadId t_dotdone = row_cb.declare_thread("dot_done");
  ThreadId t_rowdone = row_cb.declare_thread("row_done");
  InletId in_abc = row_cb.declare_inlet("abc", 3);
  InletId in_nif = row_cb.declare_inlet("nif", 3);
  InletId in_a = row_cb.declare_inlet("a_elem", 1);
  InletId in_b = row_cb.declare_inlet("b_elem", 1);

  {
    BodyBuilder b = row_cb.define_inlet(in_abc);
    b.frame_store(kRowA, b.msg_load(0));
    b.frame_store(kRowB, b.msg_load(1));
    b.frame_store(kRowC, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = row_cb.define_inlet(in_nif);
    b.frame_store(kRowN, b.msg_load(0));
    b.frame_store(kRowI, b.msg_load(1));
    b.frame_store(kRowMainF, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = row_cb.define_inlet(in_a);
    b.frame_store(kRowVa, b.msg_load(0));
    b.post(t_acc);
  }
  {
    BodyBuilder b = row_cb.define_inlet(in_b);
    b.frame_store(kRowVb, b.msg_load(0));
    b.post(t_acc);
  }
  {
    BodyBuilder b = row_cb.define_thread(t_start);
    b.frame_store(kRowJ, b.konst(0));
    b.frame_store(kRowSum, b.konst_f(0.0f));
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = row_cb.define_thread(t_jloop);
    VReg j = b.frame_load(kRowJ);
    VReg n = b.frame_load(kRowN);
    VReg c = b.bin(BinOp::Lt, j, n);
    b.cond_forks(c, {t_dotinit}, {t_rowdone});
  }
  {
    BodyBuilder b = row_cb.define_thread(t_dotinit);
    b.frame_store(kRowAcc, b.konst_f(0.0f));
    b.frame_store(kRowK, b.konst(0));
    b.forks({t_kloop});
  }
  {
    BodyBuilder b = row_cb.define_thread(t_kloop);
    VReg k = b.frame_load(kRowK);
    VReg n = b.frame_load(kRowN);
    VReg c = b.bin(BinOp::Lt, k, n);
    b.cond_forks(c, {t_fetch2}, {t_dotdone});
  }
  {
    // Issue both split-phase reads: A[i][k] and B[k][j].
    BodyBuilder b = row_cb.define_thread(t_fetch2);
    VReg a0 = b.frame_load(kRowA);
    VReg i = b.frame_load(kRowI);
    VReg n = b.frame_load(kRowN);
    VReg k = b.frame_load(kRowK);
    VReg t1 = b.bin(BinOp::Mul, i, n);
    VReg t2 = b.bin(BinOp::Add, t1, k);
    VReg t3 = b.bini(BinOp::Shl, t2, 2);
    VReg aa = b.bin(BinOp::Add, a0, t3);
    b.ifetch(aa, in_a);
    VReg b0 = b.frame_load(kRowB);
    VReg j = b.frame_load(kRowJ);
    VReg t4 = b.bin(BinOp::Mul, k, n);
    VReg t5 = b.bin(BinOp::Add, t4, j);
    VReg t6 = b.bini(BinOp::Shl, t5, 2);
    VReg ab = b.bin(BinOp::Add, b0, t6);
    b.ifetch(ab, in_b);
    b.stop();
  }
  {
    BodyBuilder b = row_cb.define_thread(t_acc);
    VReg va = b.frame_load(kRowVa);
    VReg vb = b.frame_load(kRowVb);
    VReg p = b.bin(BinOp::FMul, va, vb);
    VReg acc = b.frame_load(kRowAcc);
    VReg a2 = b.bin(BinOp::FAdd, acc, p);
    b.frame_store(kRowAcc, a2);
    VReg k = b.frame_load(kRowK);
    VReg k1 = b.bini(BinOp::Add, k, 1);
    b.frame_store(kRowK, k1);
    b.forks({t_kloop});
  }
  {
    BodyBuilder b = row_cb.define_thread(t_dotdone);
    VReg c0 = b.frame_load(kRowC);
    VReg i = b.frame_load(kRowI);
    VReg n = b.frame_load(kRowN);
    VReg j = b.frame_load(kRowJ);
    VReg t1 = b.bin(BinOp::Mul, i, n);
    VReg t2 = b.bin(BinOp::Add, t1, j);
    VReg t3 = b.bini(BinOp::Shl, t2, 2);
    VReg ac = b.bin(BinOp::Add, c0, t3);
    VReg acc = b.frame_load(kRowAcc);
    b.istore(ac, acc);
    VReg rs = b.frame_load(kRowSum);
    VReg rs2 = b.bin(BinOp::FAdd, rs, acc);
    b.frame_store(kRowSum, rs2);
    VReg j1 = b.bini(BinOp::Add, j, 1);
    b.frame_store(kRowJ, j1);
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = row_cb.define_thread(t_rowdone);
    VReg rs = b.frame_load(kRowSum);
    VReg mainf = b.frame_load(kRowMainF);
    b.send_msg(kCbMain, in_done, mainf, {rs});
    b.release();
    b.stop();
  }
  row_cb.finish();

  return prog;
}

float elem_a(int i, int j) {
  return static_cast<float>((i * 31 + j * 17) % 13) * 0.5f - 3.0f;
}
float elem_b(int i, int j) {
  return static_cast<float>((i * 7 + j * 29) % 11) * 0.25f - 1.25f;
}

/// Plain-C++ oracle: the product matrix with the exact accumulation order
/// the TAM program uses (k ascending per element), so element values match
/// bit for bit.
std::vector<float> oracle_product(int n) {
  std::vector<float> c(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc = acc + elem_a(i, k) * elem_b(k, j);
      }
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

}  // namespace

Workload make_mmt(int n) {
  JTAM_CHECK(n >= 2, "mmt needs n >= 2");
  struct State {
    mem::Addr a = 0, b = 0, c = 0;
  };
  auto st = std::make_shared<State>();

  Workload w;
  w.name = "mmt";
  w.key = "mmt/" + std::to_string(n);
  w.description = "float matrix multiply + trace, n=" + std::to_string(n) +
                  " (paper arg: 50)";
  w.program = build_program();
  w.setup = [st, n](SetupCtx& ctx) {
    const auto words =
        static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
    st->a = ctx.alloc_words(words);
    st->b = ctx.alloc_words(words);
    st->c = ctx.alloc_words(words);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const auto off = static_cast<mem::Addr>(4 * (i * n + j));
        ctx.write_tagged_f(st->a + off, elem_a(i, j));
        ctx.write_tagged_f(st->b + off, elem_b(i, j));
      }
    }
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame,
                      {st->a, st->b, st->c, static_cast<std::uint32_t>(n)});
  };
  w.check = [st, n](const CheckCtx& ctx) -> std::string {
    const std::vector<float> want = oracle_product(n);
    double expect_sum = 0.0;
    for (int i = 0; i < n * n; ++i) {
      const auto addr = st->c + static_cast<mem::Addr>(4 * i);
      if (!ctx.m.tag(addr)) {
        return "C[" + std::to_string(i) + "] never written";
      }
      float got = std::bit_cast<float>(ctx.m.load_word(addr));
      if (got != want[static_cast<std::size_t>(i)]) {
        return "C[" + std::to_string(i) + "] = " + std::to_string(got) +
               ", expected " + std::to_string(want[i]);
      }
      expect_sum += want[static_cast<std::size_t>(i)];
    }
    // Row sums arrive in scheduling order, so the final float reduction can
    // differ between back-ends in the last bits; compare loosely.
    float sum = std::bit_cast<float>(ctx.halt_value);
    if (std::abs(sum - expect_sum) > 1e-3 * (1.0 + std::abs(expect_sum))) {
      return "trace sum " + std::to_string(sum) + " far from oracle " +
             std::to_string(expect_sum);
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
