// Wavefront — "computes successive matrices in which each element depends
// on a function of north and west values of the previous and current
// matrix" (§3).
//
// Structure: one codeblock per matrix row per time step; rows are spawned
// in dependency order (each completion triggers the next), so every
// I-structure read finds its operand present and a row runs to completion
// as one long quantum — wavefront is the second-coarsest program in
// Table 2 (TPQ 43.9 MD / 65.2 AM).  Element recurrence (modular, to stay
// in 32-bit):
//
//   cur[i][j] = (north + west + prev) mod 9973
//   north = i > 0 ? cur[i-1][j] : prev[i][j]
//   west  = j > 0 ? cur[i][j-1] : 1
//   prev  = prev[i][j]

#include <cstdint>
#include <memory>
#include <vector>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

constexpr std::int32_t kMod = 9973;

// main codeblock slots
constexpr SlotId kMBase = 0;
constexpr SlotId kMN = 1;
constexpr SlotId kMSteps = 2;
constexpr SlotId kMR = 3;     // next row index (0 .. steps*n)
constexpr SlotId kMRowF = 4;
constexpr SlotId kMSum = 5;
constexpr SlotId kMI = 6;     // scratch: row-within-step

// row codeblock slots
constexpr SlotId kRPrev = 0;
constexpr SlotId kRCur = 1;
constexpr SlotId kRN = 2;
constexpr SlotId kRI = 3;
constexpr SlotId kRMainF = 4;
constexpr SlotId kRJ = 5;
constexpr SlotId kRWest = 6;
constexpr SlotId kRVn = 7;
constexpr SlotId kRVp = 8;

constexpr CbId kCbMain = 0;
constexpr CbId kCbRow = 1;

Program build_program() {
  Program prog;
  prog.name = "wavefront";

  // ---- main codeblock ----------------------------------------------------
  CodeblockBuilder mc(prog, "wf_main", 7);
  ThreadId t_init = mc.declare_thread("init");
  ThreadId t_spawn = mc.declare_thread("spawn");
  ThreadId t_falloc = mc.declare_thread("falloc_row");
  ThreadId t_sendargs = mc.declare_thread("send_row_args");
  ThreadId t_finish = mc.declare_thread("finish");
  InletId in_start = mc.declare_inlet("start", 3);
  InletId in_fr = mc.declare_inlet("row_frame", 1);
  InletId in_done = mc.declare_inlet("row_done", 1);

  {
    BodyBuilder b = mc.define_inlet(in_start);
    b.frame_store(kMBase, b.msg_load(0));
    b.frame_store(kMN, b.msg_load(1));
    b.frame_store(kMSteps, b.msg_load(2));
    b.post(t_init);
  }
  {
    BodyBuilder b = mc.define_inlet(in_fr);
    b.frame_store(kMRowF, b.msg_load(0));
    b.post(t_sendargs);
  }
  {
    // Row checksum accumulates in the inlet; completion drives the next
    // spawn, keeping the wavefront in dependency order.
    BodyBuilder b = mc.define_inlet(in_done);
    VReg v = b.msg_load(0);
    VReg sum = b.frame_load(kMSum);
    VReg s2 = b.bin(BinOp::Add, sum, v);
    b.frame_store(kMSum, s2);
    b.post(t_spawn);
  }
  {
    BodyBuilder b = mc.define_thread(t_init);
    b.frame_store(kMR, b.konst(0));
    b.frame_store(kMSum, b.konst(0));
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = mc.define_thread(t_spawn);
    VReg r = b.frame_load(kMR);
    VReg n = b.frame_load(kMN);
    VReg steps = b.frame_load(kMSteps);
    VReg total = b.bin(BinOp::Mul, n, steps);
    VReg c = b.bin(BinOp::Lt, r, total);
    b.cond_forks(c, {t_falloc}, {t_finish});
  }
  {
    BodyBuilder b = mc.define_thread(t_falloc);
    b.falloc(kCbRow, in_fr);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_sendargs);
    VReg r = b.frame_load(kMR);
    VReg n = b.frame_load(kMN);
    VReg i = b.bin(BinOp::Mod, r, n);
    b.frame_store(kMI, i);
    VReg tm1 = b.bin(BinOp::Div, r, n);
    VReg r1 = b.bini(BinOp::Add, r, 1);
    b.frame_store(kMR, r1);
    VReg nn = b.bin(BinOp::Mul, n, n);
    VReg sz = b.bini(BinOp::Shl, nn, 2);
    VReg off = b.bin(BinOp::Mul, tm1, sz);
    VReg base = b.frame_load(kMBase);
    VReg prev = b.bin(BinOp::Add, base, off);
    VReg cur = b.bin(BinOp::Add, prev, sz);
    VReg rowf = b.frame_load(kMRowF);
    VReg n2 = b.frame_load(kMN);
    b.send_msg(kCbRow, /*in_abc=*/0, rowf, {prev, cur, n2});
    VReg i2 = b.frame_load(kMI);
    VReg self = b.self_frame();
    b.send_msg(kCbRow, /*in_if=*/1, rowf, {i2, self});
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_finish);
    VReg sum = b.frame_load(kMSum);
    b.send_halt(sum);
    b.stop();
  }
  mc.finish();

  // ---- row codeblock -------------------------------------------------------
  CodeblockBuilder rc(prog, "wf_row", 9);
  ThreadId t_start = rc.declare_thread("row_start", /*entry_count=*/2);
  ThreadId t_jloop = rc.declare_thread("jloop");
  ThreadId t_fetch = rc.declare_thread("fetch_np");
  ThreadId t_elem = rc.declare_thread("elem", /*entry_count=*/2);
  ThreadId t_rowdone = rc.declare_thread("row_done");
  InletId in_abc = rc.declare_inlet("abc", 3);
  InletId in_if = rc.declare_inlet("i_frame", 2);
  InletId in_n = rc.declare_inlet("north", 1);
  InletId in_p = rc.declare_inlet("prev", 1);

  {
    BodyBuilder b = rc.define_inlet(in_abc);
    b.frame_store(kRPrev, b.msg_load(0));
    b.frame_store(kRCur, b.msg_load(1));
    b.frame_store(kRN, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = rc.define_inlet(in_if);
    b.frame_store(kRI, b.msg_load(0));
    b.frame_store(kRMainF, b.msg_load(1));
    b.post(t_start);
  }
  {
    BodyBuilder b = rc.define_inlet(in_n);
    b.frame_store(kRVn, b.msg_load(0));
    b.post(t_elem);
  }
  {
    BodyBuilder b = rc.define_inlet(in_p);
    b.frame_store(kRVp, b.msg_load(0));
    b.post(t_elem);
  }
  {
    BodyBuilder b = rc.define_thread(t_start);
    b.frame_store(kRJ, b.konst(0));
    b.frame_store(kRWest, b.konst(1));
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = rc.define_thread(t_jloop);
    VReg j = b.frame_load(kRJ);
    VReg n = b.frame_load(kRN);
    VReg c = b.bin(BinOp::Lt, j, n);
    b.cond_forks(c, {t_fetch}, {t_rowdone});
  }
  {
    // Split-phase reads of north and prev for element (i, j).
    BodyBuilder b = rc.define_thread(t_fetch);
    VReg i = b.frame_load(kRI);
    VReg n = b.frame_load(kRN);
    VReg j = b.frame_load(kRJ);
    VReg t1 = b.bin(BinOp::Mul, i, n);
    VReg t2 = b.bin(BinOp::Add, t1, j);
    VReg off = b.bini(BinOp::Shl, t2, 2);
    VReg pv = b.frame_load(kRPrev);
    VReg pa = b.bin(BinOp::Add, pv, off);
    VReg cu = b.frame_load(kRCur);
    VReg na2 = b.bin(BinOp::Add, cu, off);
    VReg n4 = b.bini(BinOp::Shl, n, 2);
    VReg na3 = b.bin(BinOp::Sub, na2, n4);
    VReg c0 = b.bini(BinOp::Lt, i, 1);  // i == 0: north is prev[i][j]
    VReg na = b.select(c0, pa, na3);
    b.ifetch(na, in_n);
    b.ifetch(pa, in_p);
    b.stop();
  }
  {
    BodyBuilder b = rc.define_thread(t_elem);
    VReg vn = b.frame_load(kRVn);
    VReg w = b.frame_load(kRWest);
    VReg v1 = b.bin(BinOp::Add, vn, w);
    VReg vp = b.frame_load(kRVp);
    VReg v2 = b.bin(BinOp::Add, v1, vp);
    VReg v = b.bini(BinOp::Mod, v2, kMod);
    b.frame_store(kRWest, v);
    VReg i = b.frame_load(kRI);
    VReg n = b.frame_load(kRN);
    VReg j = b.frame_load(kRJ);
    VReg t1 = b.bin(BinOp::Mul, i, n);
    VReg t2 = b.bin(BinOp::Add, t1, j);
    VReg off = b.bini(BinOp::Shl, t2, 2);
    VReg cu = b.frame_load(kRCur);
    VReg ca = b.bin(BinOp::Add, cu, off);
    b.istore(ca, v);
    VReg j1 = b.bini(BinOp::Add, j, 1);
    b.frame_store(kRJ, j1);
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = rc.define_thread(t_rowdone);
    VReg w = b.frame_load(kRWest);  // last element: the row checksum
    VReg mainf = b.frame_load(kRMainF);
    b.send_msg(kCbMain, in_done, mainf, {w});
    b.release();
    b.stop();
  }
  rc.finish();

  return prog;
}

std::uint32_t m0_elem(int i, int j) {
  return static_cast<std::uint32_t>((i * 13 + j * 7) % 10 + 1);
}

struct Oracle {
  std::vector<std::vector<std::uint32_t>> mats;  // [step][i*n+j]
  std::uint32_t checksum = 0;
};

Oracle oracle(int n, int steps) {
  Oracle o;
  o.mats.resize(static_cast<std::size_t>(steps) + 1,
                std::vector<std::uint32_t>(static_cast<std::size_t>(n) * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      o.mats[0][static_cast<std::size_t>(i) * n + j] = m0_elem(i, j);
    }
  }
  for (int t = 1; t <= steps; ++t) {
    const auto& prev = o.mats[static_cast<std::size_t>(t) - 1];
    auto& cur = o.mats[static_cast<std::size_t>(t)];
    for (int i = 0; i < n; ++i) {
      std::uint32_t west = 1;
      for (int j = 0; j < n; ++j) {
        std::uint32_t p = prev[static_cast<std::size_t>(i) * n + j];
        std::uint32_t north =
            i > 0 ? cur[static_cast<std::size_t>(i - 1) * n + j] : p;
        std::uint32_t v = (north + west + p) % kMod;
        cur[static_cast<std::size_t>(i) * n + j] = v;
        west = v;
      }
      o.checksum += west;
    }
  }
  return o;
}

}  // namespace

Workload make_wavefront(int n, int steps) {
  JTAM_CHECK(n >= 2 && steps >= 1, "wavefront needs n >= 2, steps >= 1");
  struct State {
    mem::Addr base = 0;
  };
  auto st = std::make_shared<State>();

  Workload w;
  w.name = "wavefront";
  w.key = "wavefront/" + std::to_string(n) + "/" + std::to_string(steps);
  w.description = "wavefront relaxation, n=" + std::to_string(n) + ", " +
                  std::to_string(steps) + " steps (paper arg: 40)";
  w.program = build_program();
  w.setup = [st, n, steps](SetupCtx& ctx) {
    const auto nn = static_cast<std::uint32_t>(n) *
                    static_cast<std::uint32_t>(n);
    st->base = ctx.alloc_words(nn * static_cast<std::uint32_t>(steps + 1));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ctx.write_tagged(st->base + static_cast<mem::Addr>(4 * (i * n + j)),
                         m0_elem(i, j));
      }
    }
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame,
                      {st->base, static_cast<std::uint32_t>(n),
                       static_cast<std::uint32_t>(steps)});
  };
  w.check = [st, n, steps](const CheckCtx& ctx) -> std::string {
    Oracle o = oracle(n, steps);
    if (ctx.halt_value != o.checksum) {
      return "checksum " + std::to_string(ctx.halt_value) + ", expected " +
             std::to_string(o.checksum);
    }
    const auto nn = static_cast<mem::Addr>(n) * static_cast<mem::Addr>(n);
    const mem::Addr last = st->base + 4 * nn * static_cast<mem::Addr>(steps);
    for (int i = 0; i < n * n; ++i) {
      std::uint32_t got =
          ctx.m.load_word(last + static_cast<mem::Addr>(4 * i));
      if (got != o.mats[static_cast<std::size_t>(steps)][i]) {
        return "M_last[" + std::to_string(i) + "] mismatch";
      }
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
