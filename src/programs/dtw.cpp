// Discrete time warp (DTW) — "a speech-processing application that
// performs operations on matrices of floating-point numbers" (§3).
//
// Structure: the classic dynamic-time-warp cost recurrence over two
// sequences a and b,
//
//   D[i][j] = |a_i - b_j| + min(D[i-1][j], D[i][j-1], D[i-1][j-1])
//
// with a padded zero row/column so every element is computed uniformly.
// One codeblock per row, ALL spawned up front: each element's north/diag
// reads defer on the row above, so rows advance in a fine-grained
// dataflow ping-pong — DTW sits low in Table 2 (TPQ 5.3 MD / 6.0 AM),
// unlike wavefront whose rows are spawned sequentially.

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

// main codeblock slots
constexpr SlotId kMD = 0;
constexpr SlotId kMA = 1;
constexpr SlotId kMB = 2;
constexpr SlotId kMN = 3;
constexpr SlotId kMR = 4;
constexpr SlotId kMRowF = 5;
constexpr SlotId kMCnt = 6;
constexpr SlotId kMRes = 7;

// row codeblock slots
constexpr SlotId kRD = 0;
constexpr SlotId kRA = 1;
constexpr SlotId kRB = 2;
constexpr SlotId kRN = 3;
constexpr SlotId kRI = 4;
constexpr SlotId kRMainF = 5;
constexpr SlotId kRJ = 6;
constexpr SlotId kRWest = 7;
constexpr SlotId kRVa = 8;
constexpr SlotId kRVb = 9;
constexpr SlotId kRVn = 10;
constexpr SlotId kRVd = 11;

constexpr CbId kCbMain = 0;
constexpr CbId kCbRow = 1;

Program build_program() {
  Program prog;
  prog.name = "dtw";

  // ---- main codeblock -----------------------------------------------------
  CodeblockBuilder mc(prog, "dtw_main", 8);
  ThreadId t_init = mc.declare_thread("init");
  ThreadId t_spawn = mc.declare_thread("spawn");
  ThreadId t_falloc = mc.declare_thread("falloc_row");
  ThreadId t_sendargs = mc.declare_thread("send_row_args");
  ThreadId t_check = mc.declare_thread("check_done");
  ThreadId t_final = mc.declare_thread("fetch_result");
  ThreadId t_halt = mc.declare_thread("halt");
  InletId in_start = mc.declare_inlet("start", 4);
  InletId in_fr = mc.declare_inlet("row_frame", 1);
  InletId in_done = mc.declare_inlet("row_done", 1);
  InletId in_res = mc.declare_inlet("result", 1);

  {
    BodyBuilder b = mc.define_inlet(in_start);
    b.frame_store(kMD, b.msg_load(0));
    b.frame_store(kMA, b.msg_load(1));
    b.frame_store(kMB, b.msg_load(2));
    b.frame_store(kMN, b.msg_load(3));
    b.post(t_init);
  }
  {
    BodyBuilder b = mc.define_inlet(in_fr);
    b.frame_store(kMRowF, b.msg_load(0));
    b.post(t_sendargs);
  }
  {
    BodyBuilder b = mc.define_inlet(in_done);
    VReg cnt = b.frame_load(kMCnt);
    VReg got = b.msg_load(0);
    VReg c2 = b.bin(BinOp::Add, cnt, got);
    b.frame_store(kMCnt, c2);
    b.post(t_check);
  }
  {
    BodyBuilder b = mc.define_inlet(in_res);
    b.frame_store(kMRes, b.msg_load(0));
    b.post(t_halt);
  }
  {
    BodyBuilder b = mc.define_thread(t_init);
    b.frame_store(kMR, b.konst(1));
    b.frame_store(kMCnt, b.konst(0));
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = mc.define_thread(t_spawn);
    VReg r = b.frame_load(kMR);
    VReg n = b.frame_load(kMN);
    VReg c = b.bin(BinOp::Le, r, n);
    b.cond_forks(c, {t_falloc}, {});
  }
  {
    BodyBuilder b = mc.define_thread(t_falloc);
    b.falloc(kCbRow, in_fr);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_sendargs);
    VReg rowf = b.frame_load(kMRowF);
    VReg d = b.frame_load(kMD);
    VReg av = b.frame_load(kMA);
    VReg bv = b.frame_load(kMB);
    b.send_msg(kCbRow, /*in_dab=*/0, rowf, {d, av, bv});
    VReg n = b.frame_load(kMN);
    VReg r = b.frame_load(kMR);
    VReg self = b.self_frame();
    b.send_msg(kCbRow, /*in_nif=*/1, rowf, {n, r, self});
    VReg r1 = b.bini(BinOp::Add, r, 1);
    b.frame_store(kMR, r1);
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = mc.define_thread(t_check);
    VReg cnt = b.frame_load(kMCnt);
    VReg n = b.frame_load(kMN);
    VReg c = b.bin(BinOp::Eq, cnt, n);
    b.cond_forks(c, {t_final}, {});
  }
  {
    // Fetch D[n][n] (the warp distance) and halt with it.
    BodyBuilder b = mc.define_thread(t_final);
    VReg d = b.frame_load(kMD);
    VReg n = b.frame_load(kMN);
    VReg np = b.bini(BinOp::Add, n, 1);
    VReg t1 = b.bin(BinOp::Mul, n, np);
    VReg t2 = b.bin(BinOp::Add, t1, n);
    VReg off = b.bini(BinOp::Shl, t2, 2);
    VReg addr = b.bin(BinOp::Add, d, off);
    b.ifetch(addr, in_res);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_halt);
    VReg res = b.frame_load(kMRes);
    b.send_halt(res);
    b.stop();
  }
  mc.finish();

  // ---- row codeblock --------------------------------------------------------
  CodeblockBuilder rc(prog, "dtw_row", 12);
  ThreadId t_start = rc.declare_thread("row_start", /*entry_count=*/2);
  ThreadId t_fetch_a = rc.declare_thread("fetch_a");
  ThreadId t_jinit = rc.declare_thread("jinit");
  ThreadId t_jloop = rc.declare_thread("jloop");
  ThreadId t_fetch3 = rc.declare_thread("fetch_bnd");
  ThreadId t_elem = rc.declare_thread("elem", /*entry_count=*/3);
  ThreadId t_rowdone = rc.declare_thread("row_done");
  InletId in_dab = rc.declare_inlet("dab", 3);
  InletId in_nif = rc.declare_inlet("nif", 3);
  InletId in_a = rc.declare_inlet("a_i", 1);
  InletId in_b = rc.declare_inlet("b_j", 1);
  InletId in_n = rc.declare_inlet("north", 1);
  InletId in_d = rc.declare_inlet("diag", 1);

  {
    BodyBuilder b = rc.define_inlet(in_dab);
    b.frame_store(kRD, b.msg_load(0));
    b.frame_store(kRA, b.msg_load(1));
    b.frame_store(kRB, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = rc.define_inlet(in_nif);
    b.frame_store(kRN, b.msg_load(0));
    b.frame_store(kRI, b.msg_load(1));
    b.frame_store(kRMainF, b.msg_load(2));
    b.post(t_start);
  }
  {
    BodyBuilder b = rc.define_inlet(in_a);
    b.frame_store(kRVa, b.msg_load(0));
    b.post(t_jinit);
  }
  {
    BodyBuilder b = rc.define_inlet(in_b);
    b.frame_store(kRVb, b.msg_load(0));
    b.post(t_elem);
  }
  {
    BodyBuilder b = rc.define_inlet(in_n);
    b.frame_store(kRVn, b.msg_load(0));
    b.post(t_elem);
  }
  {
    BodyBuilder b = rc.define_inlet(in_d);
    b.frame_store(kRVd, b.msg_load(0));
    b.post(t_elem);
  }
  {
    BodyBuilder b = rc.define_thread(t_start);
    b.forks({t_fetch_a});
  }
  {
    // a_i, fetched once per row.
    BodyBuilder b = rc.define_thread(t_fetch_a);
    VReg a0 = b.frame_load(kRA);
    VReg i = b.frame_load(kRI);
    VReg i1 = b.bini(BinOp::Sub, i, 1);
    VReg off = b.bini(BinOp::Shl, i1, 2);
    VReg addr = b.bin(BinOp::Add, a0, off);
    b.ifetch(addr, in_a);
    b.stop();
  }
  {
    BodyBuilder b = rc.define_thread(t_jinit);
    b.frame_store(kRJ, b.konst(1));
    b.frame_store(kRWest, b.konst_f(0.0f));
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = rc.define_thread(t_jloop);
    VReg j = b.frame_load(kRJ);
    VReg n = b.frame_load(kRN);
    VReg c = b.bin(BinOp::Le, j, n);
    b.cond_forks(c, {t_fetch3}, {t_rowdone});
  }
  {
    // Split-phase reads of b_j, north = D[i-1][j], diag = D[i-1][j-1].
    BodyBuilder b = rc.define_thread(t_fetch3);
    VReg n = b.frame_load(kRN);
    VReg np = b.bini(BinOp::Add, n, 1);
    VReg i = b.frame_load(kRI);
    VReg i1 = b.bini(BinOp::Sub, i, 1);
    VReg t1 = b.bin(BinOp::Mul, i1, np);
    VReg j = b.frame_load(kRJ);
    VReg t2 = b.bin(BinOp::Add, t1, j);
    VReg off = b.bini(BinOp::Shl, t2, 2);
    VReg d0 = b.frame_load(kRD);
    VReg na = b.bin(BinOp::Add, d0, off);
    b.ifetch(na, in_n);
    VReg da = b.bini(BinOp::Sub, na, 4);
    b.ifetch(da, in_d);
    VReg b0 = b.frame_load(kRB);
    VReg j2 = b.frame_load(kRJ);
    VReg j1 = b.bini(BinOp::Sub, j2, 1);
    VReg o2 = b.bini(BinOp::Shl, j1, 2);
    VReg ba = b.bin(BinOp::Add, b0, o2);
    b.ifetch(ba, in_b);
    b.stop();
  }
  {
    BodyBuilder b = rc.define_thread(t_elem);
    VReg va = b.frame_load(kRVa);
    VReg vb = b.frame_load(kRVb);
    VReg diff = b.bin(BinOp::FSub, va, vb);
    VReg ad = b.bini(BinOp::And, diff, 0x7fffffff);  // |x| on float bits
    VReg vn = b.frame_load(kRVn);
    VReg vd = b.frame_load(kRVd);
    VReg c1 = b.bin(BinOp::FLt, vn, vd);
    VReg m1 = b.select(c1, vn, vd);
    VReg w = b.frame_load(kRWest);
    VReg c2 = b.bin(BinOp::FLt, w, m1);
    VReg m2 = b.select(c2, w, m1);
    VReg v = b.bin(BinOp::FAdd, ad, m2);
    b.frame_store(kRWest, v);
    VReg n = b.frame_load(kRN);
    VReg np = b.bini(BinOp::Add, n, 1);
    VReg i = b.frame_load(kRI);
    VReg t1 = b.bin(BinOp::Mul, i, np);
    VReg j = b.frame_load(kRJ);
    VReg t2 = b.bin(BinOp::Add, t1, j);
    VReg off = b.bini(BinOp::Shl, t2, 2);
    VReg d0 = b.frame_load(kRD);
    VReg ca = b.bin(BinOp::Add, d0, off);
    VReg v2 = b.frame_load(kRWest);
    b.istore(ca, v2);
    VReg j1 = b.bini(BinOp::Add, j, 1);
    b.frame_store(kRJ, j1);
    b.forks({t_jloop});
  }
  {
    BodyBuilder b = rc.define_thread(t_rowdone);
    VReg one = b.konst(1);
    VReg mainf = b.frame_load(kRMainF);
    b.send_msg(kCbMain, in_done, mainf, {one});
    b.release();
    b.stop();
  }
  rc.finish();

  return prog;
}

float seq_a(int i) { return static_cast<float>((i * 37) % 19) * 0.3f; }
float seq_b(int j) { return static_cast<float>((j * 23) % 17) * 0.4f; }

/// Bit-exact oracle: identical operation order per element; the dataflow
/// schedule cannot change element values.
float oracle_dtw(int n) {
  const int np = n + 1;
  std::vector<float> d(static_cast<std::size_t>(np) * np, 0.0f);
  for (int i = 1; i <= n; ++i) {
    float west = 0.0f;
    for (int j = 1; j <= n; ++j) {
      float diff = seq_a(i) - seq_b(j);
      float ad = std::bit_cast<float>(
          std::bit_cast<std::uint32_t>(diff) & 0x7fffffffu);
      float vn = d[static_cast<std::size_t>(i - 1) * np + j];
      float vd = d[static_cast<std::size_t>(i - 1) * np + j - 1];
      float m1 = vn < vd ? vn : vd;
      float m2 = west < m1 ? west : m1;
      float v = ad + m2;
      d[static_cast<std::size_t>(i) * np + j] = v;
      west = v;
    }
  }
  return d[static_cast<std::size_t>(n) * np + n];
}

}  // namespace

Workload make_dtw(int n) {
  JTAM_CHECK(n >= 2, "dtw needs n >= 2");
  struct State {
    mem::Addr d = 0, a = 0, b = 0;
  };
  auto st = std::make_shared<State>();

  Workload w;
  w.name = "dtw";
  w.key = "dtw/" + std::to_string(n);
  w.description = "discrete time warp over float sequences of length " +
                  std::to_string(n) + " (paper arg: 10)";
  w.program = build_program();
  w.setup = [st, n](SetupCtx& ctx) {
    const int np = n + 1;
    st->d = ctx.alloc_words(static_cast<std::uint32_t>(np * np));
    st->a = ctx.alloc_words(static_cast<std::uint32_t>(n));
    st->b = ctx.alloc_words(static_cast<std::uint32_t>(n));
    // Padded zero row and column of D are present from the start.
    for (int j = 0; j <= n; ++j) {
      ctx.write_tagged_f(st->d + static_cast<mem::Addr>(4 * j), 0.0f);
    }
    for (int i = 1; i <= n; ++i) {
      ctx.write_tagged_f(st->d + static_cast<mem::Addr>(4 * (i * np)), 0.0f);
    }
    for (int i = 1; i <= n; ++i) {
      ctx.write_tagged_f(st->a + static_cast<mem::Addr>(4 * (i - 1)),
                         seq_a(i));
    }
    for (int j = 1; j <= n; ++j) {
      ctx.write_tagged_f(st->b + static_cast<mem::Addr>(4 * (j - 1)),
                         seq_b(j));
    }
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame,
                      {st->d, st->a, st->b, static_cast<std::uint32_t>(n)});
  };
  w.check = [n](const CheckCtx& ctx) -> std::string {
    float want = oracle_dtw(n);
    float got = std::bit_cast<float>(ctx.halt_value);
    if (got != want) {
      return "warp distance " + std::to_string(got) + ", expected " +
             std::to_string(want);
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
