// Paraffins — "enumerates the distinct isomers of paraffins" [AHN88] (§3).
//
// The classic Id benchmark counts alkane isomers through a dataflow dynamic
// program over *radicals* (rooted trees of degree <= 3):
//
//   r[0] = r[1] = 1
//   r[i] = sum over 0 <= a <= b <= c, a+b+c = i-1 of the number of
//          multisets {A in r[a], B in r[b], C in r[c]}          (i >= 2)
//
// and paraffins of size m as bond-centred pairs plus carbon-centred
// quadruples (subtree sizes <= (m-1)/2 so each molecule is counted once):
//
//   p[m] = [m even] mset2(r[m/2])
//        + sum over a <= b <= c <= d, a+b+c+d = m-1, d <= (m-1)/2
//          of the multiset count of the quadruple
//
// The program result is sum(p[1..n]).  One codeblock per radical size and
// one per paraffin size, all spawned eagerly: every r[x] read is a
// split-phase I-structure fetch that defers until rad(x) writes it, so the
// whole DP self-schedules in dataflow order and activations interleave at
// fine grain (Table 2: TPQ 6.8 MD / 8.7 AM).  Multiset coefficients are
// computed in case-split threads on size equalities — combinations with
// repetition, mset_k(x) = C(x+k-1, k).

#include <cstdint>
#include <memory>
#include <vector>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

constexpr CbId kCbMain = 0;
constexpr CbId kCbRad = 1;
constexpr CbId kCbPara = 2;

// main slots
constexpr SlotId kMR = 0;  // radicals array base
constexpr SlotId kMN = 1;
constexpr SlotId kMS = 2;  // spawn index
constexpr SlotId kMChildF = 3;
constexpr SlotId kMTotal = 4;
constexpr SlotId kMCnt = 5;

// rad slots
constexpr SlotId kRR = 0;
constexpr SlotId kRI = 1;
constexpr SlotId kRAcc = 2;
constexpr SlotId kRA = 3;
constexpr SlotId kRB = 4;
constexpr SlotId kRC = 5;
constexpr SlotId kRRa = 6;
constexpr SlotId kRRb = 7;
constexpr SlotId kRRc = 8;

// para slots
constexpr SlotId kPR = 0;
constexpr SlotId kPM = 1;
constexpr SlotId kPMainF = 2;
constexpr SlotId kPAcc = 3;
constexpr SlotId kPA = 4;
constexpr SlotId kPB = 5;
constexpr SlotId kPC = 6;
constexpr SlotId kPD = 7;
constexpr SlotId kPRa = 8;
constexpr SlotId kPRb = 9;
constexpr SlotId kPRc = 10;
constexpr SlotId kPRd = 11;

// mset_k(x) emission helpers: multiset coefficient C(x+k-1, k).
VReg emit_mset2(BodyBuilder& b, VReg x) {
  VReg x1 = b.bini(BinOp::Add, x, 1);
  VReg p = b.bin(BinOp::Mul, x, x1);
  return b.bini(BinOp::Shr, p, 1);
}
VReg emit_mset3(BodyBuilder& b, VReg x) {
  VReg x1 = b.bini(BinOp::Add, x, 1);
  VReg p = b.bin(BinOp::Mul, x, x1);
  VReg x2 = b.bini(BinOp::Add, x, 2);
  VReg p2 = b.bin(BinOp::Mul, p, x2);
  VReg six = b.konst(6);
  return b.bin(BinOp::Div, p2, six);
}
VReg emit_mset4(BodyBuilder& b, VReg x) {
  VReg x1 = b.bini(BinOp::Add, x, 1);
  VReg p = b.bin(BinOp::Mul, x, x1);
  VReg x2 = b.bini(BinOp::Add, x, 2);
  VReg p2 = b.bin(BinOp::Mul, p, x2);
  VReg x3 = b.bini(BinOp::Add, x, 3);
  VReg p3 = b.bin(BinOp::Mul, p2, x3);
  VReg c24 = b.konst(24);
  return b.bin(BinOp::Div, p3, c24);
}

Program build_program() {
  Program prog;
  prog.name = "paraffins";

  // ---- main codeblock -----------------------------------------------------
  CodeblockBuilder mc(prog, "par_main", 6);
  ThreadId t_init = mc.declare_thread("init");
  ThreadId t_spawn = mc.declare_thread("spawn");
  ThreadId t_which = mc.declare_thread("which");
  ThreadId t_frad = mc.declare_thread("falloc_rad");
  ThreadId t_fpar = mc.declare_thread("falloc_para");
  ThreadId t_sendargs = mc.declare_thread("send_args");
  ThreadId t_srad = mc.declare_thread("send_rad");
  ThreadId t_spar = mc.declare_thread("send_para");
  ThreadId t_checkm = mc.declare_thread("check_done");
  ThreadId t_finish = mc.declare_thread("finish");
  InletId in_start = mc.declare_inlet("start", 2);
  InletId in_fr = mc.declare_inlet("child_frame", 1);
  InletId in_pdone = mc.declare_inlet("para_done", 1);

  {
    BodyBuilder b = mc.define_inlet(in_start);
    b.frame_store(kMR, b.msg_load(0));
    b.frame_store(kMN, b.msg_load(1));
    b.post(t_init);
  }
  {
    BodyBuilder b = mc.define_inlet(in_fr);
    b.frame_store(kMChildF, b.msg_load(0));
    b.post(t_sendargs);
  }
  {
    BodyBuilder b = mc.define_inlet(in_pdone);
    VReg v = b.msg_load(0);
    VReg tot = b.frame_load(kMTotal);
    VReg t2 = b.bin(BinOp::Add, tot, v);
    b.frame_store(kMTotal, t2);
    VReg cnt = b.frame_load(kMCnt);
    VReg c2 = b.bini(BinOp::Add, cnt, 1);
    b.frame_store(kMCnt, c2);
    b.post(t_checkm);
  }
  {
    BodyBuilder b = mc.define_thread(t_init);
    b.frame_store(kMS, b.konst(0));
    b.frame_store(kMTotal, b.konst(0));
    b.frame_store(kMCnt, b.konst(0));
    b.forks({t_spawn});
  }
  {
    // 2n-1 children: rad(2..n) then para(1..n).
    BodyBuilder b = mc.define_thread(t_spawn);
    VReg s = b.frame_load(kMS);
    VReg n = b.frame_load(kMN);
    VReg n2 = b.bini(BinOp::Shl, n, 1);
    VReg lim = b.bini(BinOp::Sub, n2, 1);
    VReg c = b.bin(BinOp::Lt, s, lim);
    b.cond_forks(c, {t_which}, {});
  }
  {
    BodyBuilder b = mc.define_thread(t_which);
    VReg s = b.frame_load(kMS);
    VReg n = b.frame_load(kMN);
    VReg n1 = b.bini(BinOp::Sub, n, 1);
    VReg c = b.bin(BinOp::Lt, s, n1);
    b.cond_forks(c, {t_frad}, {t_fpar});
  }
  {
    BodyBuilder b = mc.define_thread(t_frad);
    b.falloc(kCbRad, in_fr);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_fpar);
    b.falloc(kCbPara, in_fr);
    b.stop();
  }
  {
    BodyBuilder b = mc.define_thread(t_sendargs);
    VReg s = b.frame_load(kMS);
    VReg n = b.frame_load(kMN);
    VReg n1 = b.bini(BinOp::Sub, n, 1);
    VReg c = b.bin(BinOp::Lt, s, n1);
    b.cond_forks(c, {t_srad}, {t_spar});
  }
  {
    BodyBuilder b = mc.define_thread(t_srad);
    VReg cf = b.frame_load(kMChildF);
    VReg rr = b.frame_load(kMR);
    VReg s = b.frame_load(kMS);
    VReg i = b.bini(BinOp::Add, s, 2);
    b.send_msg(kCbRad, /*r_in=*/0, cf, {rr, i});
    VReg s1 = b.bini(BinOp::Add, s, 1);
    b.frame_store(kMS, s1);
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = mc.define_thread(t_spar);
    VReg cf = b.frame_load(kMChildF);
    VReg rr = b.frame_load(kMR);
    VReg s = b.frame_load(kMS);
    VReg n = b.frame_load(kMN);
    VReg t1 = b.bin(BinOp::Sub, s, n);
    VReg m = b.bini(BinOp::Add, t1, 2);  // m = s - (n-1) + 1
    VReg self = b.self_frame();
    b.send_msg(kCbPara, /*p_in=*/0, cf, {rr, m, self});
    VReg s1 = b.bini(BinOp::Add, s, 1);
    b.frame_store(kMS, s1);
    b.forks({t_spawn});
  }
  {
    BodyBuilder b = mc.define_thread(t_checkm);
    VReg cnt = b.frame_load(kMCnt);
    VReg n = b.frame_load(kMN);
    VReg c = b.bin(BinOp::Eq, cnt, n);
    b.cond_forks(c, {t_finish}, {});
  }
  {
    BodyBuilder b = mc.define_thread(t_finish);
    VReg tot = b.frame_load(kMTotal);
    b.send_halt(tot);
    b.stop();
  }
  mc.finish();

  // ---- rad codeblock: compute r[i] ------------------------------------------
  CodeblockBuilder rc(prog, "rad", 9);
  ThreadId r_init = rc.declare_thread("init");
  ThreadId r_aloop = rc.declare_thread("aloop");
  ThreadId r_binit = rc.declare_thread("binit");
  ThreadId r_bloop = rc.declare_thread("bloop");
  ThreadId r_anext = rc.declare_thread("anext");
  ThreadId r_fetch3 = rc.declare_thread("fetch3");
  ThreadId r_term = rc.declare_thread("term", /*entry_count=*/3);
  ThreadId r_e1 = rc.declare_thread("case_ab");
  ThreadId r_d1 = rc.declare_thread("case_a_b");
  ThreadId r_e1e2 = rc.declare_thread("abc_equal");
  ThreadId r_e1d2 = rc.declare_thread("ab_equal");
  ThreadId r_d1e2 = rc.declare_thread("bc_equal");
  ThreadId r_d1d2 = rc.declare_thread("all_diff");
  ThreadId r_fin = rc.declare_thread("finish");
  InletId r_in = rc.declare_inlet("Ri", 2);
  InletId r_ra = rc.declare_inlet("ra", 1);
  InletId r_rb = rc.declare_inlet("rb", 1);
  InletId r_rc = rc.declare_inlet("rc", 1);

  {
    BodyBuilder b = rc.define_inlet(r_in);
    b.frame_store(kRR, b.msg_load(0));
    b.frame_store(kRI, b.msg_load(1));
    b.post(r_init);
  }
  {
    BodyBuilder b = rc.define_inlet(r_ra);
    b.frame_store(kRRa, b.msg_load(0));
    b.post(r_term);
  }
  {
    BodyBuilder b = rc.define_inlet(r_rb);
    b.frame_store(kRRb, b.msg_load(0));
    b.post(r_term);
  }
  {
    BodyBuilder b = rc.define_inlet(r_rc);
    b.frame_store(kRRc, b.msg_load(0));
    b.post(r_term);
  }
  {
    BodyBuilder b = rc.define_thread(r_init);
    b.frame_store(kRAcc, b.konst(0));
    b.frame_store(kRA, b.konst(0));
    b.forks({r_aloop});
  }
  {
    // a <= (i-1)/3
    BodyBuilder b = rc.define_thread(r_aloop);
    VReg a = b.frame_load(kRA);
    VReg i = b.frame_load(kRI);
    VReg i1 = b.bini(BinOp::Sub, i, 1);
    VReg three = b.konst(3);
    VReg lim = b.bin(BinOp::Div, i1, three);
    VReg c = b.bin(BinOp::Le, a, lim);
    b.cond_forks(c, {r_binit}, {r_fin});
  }
  {
    BodyBuilder b = rc.define_thread(r_binit);
    VReg a = b.frame_load(kRA);
    b.frame_store(kRB, a);
    b.forks({r_bloop});
  }
  {
    // b <= (i-1-a)/2
    BodyBuilder b = rc.define_thread(r_bloop);
    VReg bb = b.frame_load(kRB);
    VReg i = b.frame_load(kRI);
    VReg a = b.frame_load(kRA);
    VReg i1 = b.bini(BinOp::Sub, i, 1);
    VReg rem = b.bin(BinOp::Sub, i1, a);
    VReg lim = b.bini(BinOp::Shr, rem, 1);
    VReg c = b.bin(BinOp::Le, bb, lim);
    b.cond_forks(c, {r_fetch3}, {r_anext});
  }
  {
    BodyBuilder b = rc.define_thread(r_anext);
    VReg a = b.frame_load(kRA);
    VReg a1 = b.bini(BinOp::Add, a, 1);
    b.frame_store(kRA, a1);
    b.forks({r_aloop});
  }
  {
    // c = i-1-a-b; fetch r[a], r[b], r[c]
    BodyBuilder b = rc.define_thread(r_fetch3);
    VReg i = b.frame_load(kRI);
    VReg a = b.frame_load(kRA);
    VReg bb = b.frame_load(kRB);
    VReg i1 = b.bini(BinOp::Sub, i, 1);
    VReg t1 = b.bin(BinOp::Sub, i1, a);
    VReg cc = b.bin(BinOp::Sub, t1, bb);
    b.frame_store(kRC, cc);
    VReg rr = b.frame_load(kRR);
    VReg oa = b.bini(BinOp::Shl, a, 2);
    VReg pa = b.bin(BinOp::Add, rr, oa);
    b.ifetch(pa, r_ra);
    VReg ob = b.bini(BinOp::Shl, bb, 2);
    VReg pb = b.bin(BinOp::Add, rr, ob);
    b.ifetch(pb, r_rb);
    VReg oc = b.bini(BinOp::Shl, cc, 2);
    VReg pc = b.bin(BinOp::Add, rr, oc);
    b.ifetch(pc, r_rc);
    b.stop();
  }
  {
    BodyBuilder b = rc.define_thread(r_term);
    VReg a = b.frame_load(kRA);
    VReg bb = b.frame_load(kRB);
    VReg e1 = b.bin(BinOp::Eq, a, bb);
    b.cond_forks(e1, {r_e1}, {r_d1});
  }
  {
    BodyBuilder b = rc.define_thread(r_e1);
    VReg bb = b.frame_load(kRB);
    VReg cc = b.frame_load(kRC);
    VReg e2 = b.bin(BinOp::Eq, bb, cc);
    b.cond_forks(e2, {r_e1e2}, {r_e1d2});
  }
  {
    BodyBuilder b = rc.define_thread(r_d1);
    VReg bb = b.frame_load(kRB);
    VReg cc = b.frame_load(kRC);
    VReg e2 = b.bin(BinOp::Eq, bb, cc);
    b.cond_forks(e2, {r_d1e2}, {r_d1d2});
  }
  // Leaf cases accumulate the multiset term and continue the b loop.
  auto leaf_tail = [&](BodyBuilder& b, VReg term) {
    VReg acc = b.frame_load(kRAcc);
    VReg a2 = b.bin(BinOp::Add, acc, term);
    b.frame_store(kRAcc, a2);
    VReg bb = b.frame_load(kRB);
    VReg b1 = b.bini(BinOp::Add, bb, 1);
    b.frame_store(kRB, b1);
    b.forks({r_bloop});
  };
  {
    BodyBuilder b = rc.define_thread(r_e1e2);  // a == b == c
    VReg ra = b.frame_load(kRRa);
    leaf_tail(b, emit_mset3(b, ra));
  }
  {
    BodyBuilder b = rc.define_thread(r_e1d2);  // a == b < c
    VReg ra = b.frame_load(kRRa);
    VReg m = emit_mset2(b, ra);
    VReg rcv = b.frame_load(kRRc);
    leaf_tail(b, b.bin(BinOp::Mul, m, rcv));
  }
  {
    BodyBuilder b = rc.define_thread(r_d1e2);  // a < b == c
    VReg rb = b.frame_load(kRRb);
    VReg m = emit_mset2(b, rb);
    VReg ra = b.frame_load(kRRa);
    leaf_tail(b, b.bin(BinOp::Mul, ra, m));
  }
  {
    BodyBuilder b = rc.define_thread(r_d1d2);  // all different
    VReg ra = b.frame_load(kRRa);
    VReg rb = b.frame_load(kRRb);
    VReg p = b.bin(BinOp::Mul, ra, rb);
    VReg rcv = b.frame_load(kRRc);
    leaf_tail(b, b.bin(BinOp::Mul, p, rcv));
  }
  {
    BodyBuilder b = rc.define_thread(r_fin);
    VReg rr = b.frame_load(kRR);
    VReg i = b.frame_load(kRI);
    VReg o = b.bini(BinOp::Shl, i, 2);
    VReg addr = b.bin(BinOp::Add, rr, o);
    VReg acc = b.frame_load(kRAcc);
    b.istore(addr, acc);
    b.release();
    b.stop();
  }
  rc.finish();

  // ---- para codeblock: compute p[m] and send it to main ---------------------
  CodeblockBuilder pc(prog, "para", 12);
  ThreadId p_start = pc.declare_thread("start");
  ThreadId p_bcp1 = pc.declare_thread("bcp_fetch");
  ThreadId p_bcp2 = pc.declare_thread("bcp_add");
  ThreadId p_ainit = pc.declare_thread("ainit");
  ThreadId p_aloop = pc.declare_thread("aloop");
  ThreadId p_binit = pc.declare_thread("binit");
  ThreadId p_bloop = pc.declare_thread("bloop");
  ThreadId p_anext = pc.declare_thread("anext");
  ThreadId p_cinit = pc.declare_thread("cinit");
  ThreadId p_cloop = pc.declare_thread("cloop");
  ThreadId p_bnext = pc.declare_thread("bnext");
  ThreadId p_dchk = pc.declare_thread("dcheck");
  ThreadId p_cnext = pc.declare_thread("cnext");
  ThreadId p_fetch4 = pc.declare_thread("fetch4");
  ThreadId p_quad = pc.declare_thread("quad", /*entry_count=*/4);
  ThreadId p_q1 = pc.declare_thread("q_ab");
  ThreadId p_q0 = pc.declare_thread("q_a_b");
  ThreadId p_q11 = pc.declare_thread("q_abc");
  ThreadId p_q10 = pc.declare_thread("q_ab_c");
  ThreadId p_q01 = pc.declare_thread("q_a_bc");
  ThreadId p_q00 = pc.declare_thread("q_a_b_c");
  ThreadId p_q111 = pc.declare_thread("q_abcd");
  ThreadId p_q110 = pc.declare_thread("q_abc_d");
  ThreadId p_q101 = pc.declare_thread("q_ab_cd");
  ThreadId p_q100 = pc.declare_thread("q_ab_c_d");
  ThreadId p_q011 = pc.declare_thread("q_a_bcd");
  ThreadId p_q010 = pc.declare_thread("q_a_bc_d");
  ThreadId p_q001 = pc.declare_thread("q_a_b_cd");
  ThreadId p_q000 = pc.declare_thread("q_all_diff");
  ThreadId p_fin = pc.declare_thread("finish");
  InletId p_in = pc.declare_inlet("init", 3);
  InletId p_bcp = pc.declare_inlet("bcp_half", 1);
  InletId p_ra = pc.declare_inlet("ra", 1);
  InletId p_rb = pc.declare_inlet("rb", 1);
  InletId p_rc = pc.declare_inlet("rc", 1);
  InletId p_rd = pc.declare_inlet("rd", 1);

  {
    BodyBuilder b = pc.define_inlet(p_in);
    b.frame_store(kPR, b.msg_load(0));
    b.frame_store(kPM, b.msg_load(1));
    b.frame_store(kPMainF, b.msg_load(2));
    b.post(p_start);
  }
  {
    BodyBuilder b = pc.define_inlet(p_bcp);
    b.frame_store(kPRa, b.msg_load(0));  // reuse slot; BCP precedes CCP
    b.post(p_bcp2);
  }
  {
    BodyBuilder b = pc.define_inlet(p_ra);
    b.frame_store(kPRa, b.msg_load(0));
    b.post(p_quad);
  }
  {
    BodyBuilder b = pc.define_inlet(p_rb);
    b.frame_store(kPRb, b.msg_load(0));
    b.post(p_quad);
  }
  {
    BodyBuilder b = pc.define_inlet(p_rc);
    b.frame_store(kPRc, b.msg_load(0));
    b.post(p_quad);
  }
  {
    BodyBuilder b = pc.define_inlet(p_rd);
    b.frame_store(kPRd, b.msg_load(0));
    b.post(p_quad);
  }
  {
    // BCP only exists for even m.
    BodyBuilder b = pc.define_thread(p_start);
    b.frame_store(kPAcc, b.konst(0));
    VReg m = b.frame_load(kPM);
    VReg odd = b.bini(BinOp::And, m, 1);
    b.cond_forks(odd, {p_ainit}, {p_bcp1});
  }
  {
    BodyBuilder b = pc.define_thread(p_bcp1);
    VReg rr = b.frame_load(kPR);
    VReg m = b.frame_load(kPM);
    VReg h = b.bini(BinOp::Shr, m, 1);
    VReg o = b.bini(BinOp::Shl, h, 2);
    VReg addr = b.bin(BinOp::Add, rr, o);
    b.ifetch(addr, p_bcp);
    b.stop();
  }
  {
    BodyBuilder b = pc.define_thread(p_bcp2);
    VReg v = b.frame_load(kPRa);
    VReg m = emit_mset2(b, v);
    VReg acc = b.frame_load(kPAcc);
    VReg a2 = b.bin(BinOp::Add, acc, m);
    b.frame_store(kPAcc, a2);
    b.forks({p_ainit});
  }
  {
    BodyBuilder b = pc.define_thread(p_ainit);
    b.frame_store(kPA, b.konst(0));
    b.forks({p_aloop});
  }
  {
    // a <= (m-1)/4
    BodyBuilder b = pc.define_thread(p_aloop);
    VReg a = b.frame_load(kPA);
    VReg m = b.frame_load(kPM);
    VReg m1 = b.bini(BinOp::Sub, m, 1);
    VReg lim = b.bini(BinOp::Shr, m1, 2);
    VReg c = b.bin(BinOp::Le, a, lim);
    b.cond_forks(c, {p_binit}, {p_fin});
  }
  {
    BodyBuilder b = pc.define_thread(p_binit);
    VReg a = b.frame_load(kPA);
    b.frame_store(kPB, a);
    b.forks({p_bloop});
  }
  {
    // b <= (m-1-a)/3
    BodyBuilder b = pc.define_thread(p_bloop);
    VReg bb = b.frame_load(kPB);
    VReg m = b.frame_load(kPM);
    VReg a = b.frame_load(kPA);
    VReg m1 = b.bini(BinOp::Sub, m, 1);
    VReg rem = b.bin(BinOp::Sub, m1, a);
    VReg three = b.konst(3);
    VReg lim = b.bin(BinOp::Div, rem, three);
    VReg c = b.bin(BinOp::Le, bb, lim);
    b.cond_forks(c, {p_cinit}, {p_anext});
  }
  {
    BodyBuilder b = pc.define_thread(p_anext);
    VReg a = b.frame_load(kPA);
    VReg a1 = b.bini(BinOp::Add, a, 1);
    b.frame_store(kPA, a1);
    b.forks({p_aloop});
  }
  {
    BodyBuilder b = pc.define_thread(p_cinit);
    VReg bb = b.frame_load(kPB);
    b.frame_store(kPC, bb);
    b.forks({p_cloop});
  }
  {
    // c <= (m-1-a-b)/2
    BodyBuilder b = pc.define_thread(p_cloop);
    VReg cc = b.frame_load(kPC);
    VReg m = b.frame_load(kPM);
    VReg a = b.frame_load(kPA);
    VReg bb = b.frame_load(kPB);
    VReg m1 = b.bini(BinOp::Sub, m, 1);
    VReg r1 = b.bin(BinOp::Sub, m1, a);
    VReg r2 = b.bin(BinOp::Sub, r1, bb);
    VReg lim = b.bini(BinOp::Shr, r2, 1);
    VReg c = b.bin(BinOp::Le, cc, lim);
    b.cond_forks(c, {p_dchk}, {p_bnext});
  }
  {
    BodyBuilder b = pc.define_thread(p_bnext);
    VReg bb = b.frame_load(kPB);
    VReg b1 = b.bini(BinOp::Add, bb, 1);
    b.frame_store(kPB, b1);
    b.forks({p_bloop});
  }
  {
    // d = m-1-a-b-c; keep the quadruple only if d <= (m-1)/2 (centroid).
    BodyBuilder b = pc.define_thread(p_dchk);
    VReg m = b.frame_load(kPM);
    VReg a = b.frame_load(kPA);
    VReg bb = b.frame_load(kPB);
    VReg cc = b.frame_load(kPC);
    VReg m1 = b.bini(BinOp::Sub, m, 1);
    VReg r1 = b.bin(BinOp::Sub, m1, a);
    VReg r2 = b.bin(BinOp::Sub, r1, bb);
    VReg d = b.bin(BinOp::Sub, r2, cc);
    b.frame_store(kPD, d);
    VReg dmax = b.bini(BinOp::Shr, m1, 1);
    VReg ok = b.bin(BinOp::Le, d, dmax);
    b.cond_forks(ok, {p_fetch4}, {p_cnext});
  }
  {
    BodyBuilder b = pc.define_thread(p_cnext);
    VReg cc = b.frame_load(kPC);
    VReg c1 = b.bini(BinOp::Add, cc, 1);
    b.frame_store(kPC, c1);
    b.forks({p_cloop});
  }
  {
    BodyBuilder b = pc.define_thread(p_fetch4);
    VReg rr = b.frame_load(kPR);
    VReg a = b.frame_load(kPA);
    VReg oa = b.bini(BinOp::Shl, a, 2);
    VReg pa = b.bin(BinOp::Add, rr, oa);
    b.ifetch(pa, p_ra);
    VReg bb = b.frame_load(kPB);
    VReg ob = b.bini(BinOp::Shl, bb, 2);
    VReg pb = b.bin(BinOp::Add, rr, ob);
    b.ifetch(pb, p_rb);
    VReg cc = b.frame_load(kPC);
    VReg oc = b.bini(BinOp::Shl, cc, 2);
    VReg pcc = b.bin(BinOp::Add, rr, oc);
    b.ifetch(pcc, p_rc);
    VReg dd = b.frame_load(kPD);
    VReg od = b.bini(BinOp::Shl, dd, 2);
    VReg pd = b.bin(BinOp::Add, rr, od);
    b.ifetch(pd, p_rd);
    b.stop();
  }
  {
    BodyBuilder b = pc.define_thread(p_quad);
    VReg a = b.frame_load(kPA);
    VReg bb = b.frame_load(kPB);
    VReg e1 = b.bin(BinOp::Eq, a, bb);
    b.cond_forks(e1, {p_q1}, {p_q0});
  }
  {
    BodyBuilder b = pc.define_thread(p_q1);
    VReg bb = b.frame_load(kPB);
    VReg cc = b.frame_load(kPC);
    VReg e2 = b.bin(BinOp::Eq, bb, cc);
    b.cond_forks(e2, {p_q11}, {p_q10});
  }
  {
    BodyBuilder b = pc.define_thread(p_q0);
    VReg bb = b.frame_load(kPB);
    VReg cc = b.frame_load(kPC);
    VReg e2 = b.bin(BinOp::Eq, bb, cc);
    b.cond_forks(e2, {p_q01}, {p_q00});
  }
  auto cd_branch = [&](ThreadId parent, ThreadId if_eq, ThreadId if_ne) {
    BodyBuilder b = pc.define_thread(parent);
    VReg cc = b.frame_load(kPC);
    VReg dd = b.frame_load(kPD);
    VReg e3 = b.bin(BinOp::Eq, cc, dd);
    b.cond_forks(e3, {if_eq}, {if_ne});
  };
  cd_branch(p_q11, p_q111, p_q110);
  cd_branch(p_q10, p_q101, p_q100);
  cd_branch(p_q01, p_q011, p_q010);
  cd_branch(p_q00, p_q001, p_q000);

  auto quad_tail = [&](BodyBuilder& b, VReg term) {
    VReg acc = b.frame_load(kPAcc);
    VReg a2 = b.bin(BinOp::Add, acc, term);
    b.frame_store(kPAcc, a2);
    VReg cc = b.frame_load(kPC);
    VReg c1 = b.bini(BinOp::Add, cc, 1);
    b.frame_store(kPC, c1);
    b.forks({p_cloop});
  };
  {
    BodyBuilder b = pc.define_thread(p_q111);  // a==b==c==d
    VReg ra = b.frame_load(kPRa);
    quad_tail(b, emit_mset4(b, ra));
  }
  {
    BodyBuilder b = pc.define_thread(p_q110);  // a==b==c < d
    VReg ra = b.frame_load(kPRa);
    VReg m = emit_mset3(b, ra);
    VReg rd = b.frame_load(kPRd);
    quad_tail(b, b.bin(BinOp::Mul, m, rd));
  }
  {
    BodyBuilder b = pc.define_thread(p_q101);  // a==b < c==d
    VReg ra = b.frame_load(kPRa);
    VReg m1 = emit_mset2(b, ra);
    VReg rcv = b.frame_load(kPRc);
    VReg m2 = emit_mset2(b, rcv);
    quad_tail(b, b.bin(BinOp::Mul, m1, m2));
  }
  {
    BodyBuilder b = pc.define_thread(p_q100);  // a==b < c < d
    VReg ra = b.frame_load(kPRa);
    VReg m = emit_mset2(b, ra);
    VReg rcv = b.frame_load(kPRc);
    VReg p1 = b.bin(BinOp::Mul, m, rcv);
    VReg rd = b.frame_load(kPRd);
    quad_tail(b, b.bin(BinOp::Mul, p1, rd));
  }
  {
    BodyBuilder b = pc.define_thread(p_q011);  // a < b==c==d
    VReg rb = b.frame_load(kPRb);
    VReg m = emit_mset3(b, rb);
    VReg ra = b.frame_load(kPRa);
    quad_tail(b, b.bin(BinOp::Mul, ra, m));
  }
  {
    BodyBuilder b = pc.define_thread(p_q010);  // a < b==c < d
    VReg rb = b.frame_load(kPRb);
    VReg m = emit_mset2(b, rb);
    VReg ra = b.frame_load(kPRa);
    VReg p1 = b.bin(BinOp::Mul, ra, m);
    VReg rd = b.frame_load(kPRd);
    quad_tail(b, b.bin(BinOp::Mul, p1, rd));
  }
  {
    BodyBuilder b = pc.define_thread(p_q001);  // a < b < c==d
    VReg rcv = b.frame_load(kPRc);
    VReg m = emit_mset2(b, rcv);
    VReg ra = b.frame_load(kPRa);
    VReg rb = b.frame_load(kPRb);
    VReg p1 = b.bin(BinOp::Mul, ra, rb);
    quad_tail(b, b.bin(BinOp::Mul, p1, m));
  }
  {
    BodyBuilder b = pc.define_thread(p_q000);  // all different
    VReg ra = b.frame_load(kPRa);
    VReg rb = b.frame_load(kPRb);
    VReg p1 = b.bin(BinOp::Mul, ra, rb);
    VReg rcv = b.frame_load(kPRc);
    VReg p2 = b.bin(BinOp::Mul, p1, rcv);
    VReg rd = b.frame_load(kPRd);
    quad_tail(b, b.bin(BinOp::Mul, p2, rd));
  }
  {
    BodyBuilder b = pc.define_thread(p_fin);
    VReg acc = b.frame_load(kPAcc);
    VReg mainf = b.frame_load(kPMainF);
    b.send_msg(kCbMain, in_pdone, mainf, {acc});
    b.release();
    b.stop();
  }
  pc.finish();

  return prog;
}

}  // namespace

std::vector<std::int64_t> paraffins_oracle(int n) {
  std::vector<std::int64_t> r(static_cast<std::size_t>(n) + 1, 0);
  r[0] = 1;
  if (n >= 1) r[1] = 1;
  auto ms2 = [](std::int64_t x) { return x * (x + 1) / 2; };
  auto ms3 = [](std::int64_t x) { return x * (x + 1) * (x + 2) / 6; };
  auto ms4 = [](std::int64_t x) {
    return x * (x + 1) * (x + 2) * (x + 3) / 24;
  };
  for (int i = 2; i <= n; ++i) {
    std::int64_t acc = 0;
    for (int a = 0; 3 * a <= i - 1; ++a) {
      for (int b = a; a + 2 * b <= i - 1; ++b) {
        int c = i - 1 - a - b;
        if (a == b && b == c) {
          acc += ms3(r[static_cast<std::size_t>(a)]);
        } else if (a == b) {
          acc += ms2(r[static_cast<std::size_t>(a)]) *
                 r[static_cast<std::size_t>(c)];
        } else if (b == c) {
          acc += r[static_cast<std::size_t>(a)] *
                 ms2(r[static_cast<std::size_t>(b)]);
        } else {
          acc += r[static_cast<std::size_t>(a)] *
                 r[static_cast<std::size_t>(b)] *
                 r[static_cast<std::size_t>(c)];
        }
      }
    }
    r[static_cast<std::size_t>(i)] = acc;
  }
  std::vector<std::int64_t> p(static_cast<std::size_t>(n) + 1, 0);
  for (int m = 1; m <= n; ++m) {
    std::int64_t acc = 0;
    if (m % 2 == 0) acc += ms2(r[static_cast<std::size_t>(m / 2)]);
    const int dmax = (m - 1) / 2;
    for (int a = 0; 4 * a <= m - 1; ++a) {
      for (int b = a; a + 3 * b <= m - 1; ++b) {
        for (int c = b; a + b + 2 * c <= m - 1; ++c) {
          int d = m - 1 - a - b - c;
          if (d > dmax) continue;
          std::int64_t ra = r[static_cast<std::size_t>(a)];
          std::int64_t rb = r[static_cast<std::size_t>(b)];
          std::int64_t rcv = r[static_cast<std::size_t>(c)];
          std::int64_t rd = r[static_cast<std::size_t>(d)];
          std::int64_t term;
          if (a == b && b == c && c == d) {
            term = ms4(ra);
          } else if (a == b && b == c) {
            term = ms3(ra) * rd;
          } else if (b == c && c == d) {
            term = ra * ms3(rb);
          } else if (a == b && c == d) {
            term = ms2(ra) * ms2(rcv);
          } else if (a == b) {
            term = ms2(ra) * rcv * rd;
          } else if (b == c) {
            term = ra * ms2(rb) * rd;
          } else if (c == d) {
            term = ra * rb * ms2(rcv);
          } else {
            term = ra * rb * rcv * rd;
          }
          acc += term;
        }
      }
    }
    p[static_cast<std::size_t>(m)] = acc;
  }
  return p;
}

Workload make_paraffins(int n) {
  JTAM_CHECK(n >= 1 && n <= 24, "paraffins supports 1 <= n <= 24");
  struct State {
    mem::Addr r = 0;
  };
  auto st = std::make_shared<State>();

  Workload w;
  w.name = "paraffins";
  w.key = "paraffins/" + std::to_string(n);
  w.description = "paraffin isomer enumeration up to size " +
                  std::to_string(n) + " (paper arg: 13)";
  w.program = build_program();
  w.setup = [st, n](SetupCtx& ctx) {
    st->r = ctx.alloc_words(static_cast<std::uint32_t>(n) + 1);
    ctx.write_tagged(st->r, 1);      // r[0]
    ctx.write_tagged(st->r + 4, 1);  // r[1]
    mem::Addr frame = ctx.alloc_frame(kCbMain);
    ctx.send_to_inlet(kCbMain, 0, frame,
                      {st->r, static_cast<std::uint32_t>(n)});
  };
  w.check = [n](const CheckCtx& ctx) -> std::string {
    const std::vector<std::int64_t> p = paraffins_oracle(n);
    std::int64_t total = 0;
    for (int m = 1; m <= n; ++m) total += p[static_cast<std::size_t>(m)];
    if (static_cast<std::int64_t>(ctx.halt_value) != total) {
      return "isomer total " + std::to_string(ctx.halt_value) +
             ", expected " + std::to_string(total);
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
