// Selection sort (SS) — "sorts an array of integers that are originally in
// reverse order" (§3).  The paper notes it "makes only 3 procedure calls in
// its entire execution, leading to high locality for frame memory": it is a
// single codeblock whose loop threads re-fork themselves, so the whole run
// is a handful of enormous quanta (Table 2: TPQ ~6400-6900, by far the
// coarsest program).  The array is imperative global data (gfetch/gstore);
// the FIFO system queue orders the in-place swaps.

#include <memory>

#include "programs/registry.h"
#include "support/error.h"

namespace jtam::programs {

using namespace tam;  // NOLINT(build/namespaces) — IR builder DSL

namespace {

constexpr SlotId kBase = 0;
constexpr SlotId kN = 1;
constexpr SlotId kI = 2;
constexpr SlotId kJ = 3;
constexpr SlotId kVi = 4;
constexpr SlotId kBest = 5;
constexpr SlotId kBestIdx = 6;
constexpr SlotId kAj = 7;

Program build_program(int n) {
  JTAM_CHECK(n >= 2, "selection sort needs at least two elements");
  Program prog;
  prog.name = "selection_sort";
  CodeblockBuilder cb(prog, "ss", /*num_data_slots=*/8);

  ThreadId t_init = cb.declare_thread("init");
  ThreadId t_outer = cb.declare_thread("outer");
  ThreadId t_fetch_vi = cb.declare_thread("fetch_vi");
  ThreadId t_inner_init = cb.declare_thread("inner_init");
  ThreadId t_inner = cb.declare_thread("inner");
  ThreadId t_fetch_aj = cb.declare_thread("fetch_aj");
  ThreadId t_cmp = cb.declare_thread("cmp");
  ThreadId t_swap = cb.declare_thread("swap");
  ThreadId t_done = cb.declare_thread("done");

  InletId in_start = cb.declare_inlet("start", 2);
  InletId in_vi = cb.declare_inlet("vi", 1);
  InletId in_aj = cb.declare_inlet("aj", 1);

  {
    BodyBuilder b = cb.define_inlet(in_start);
    b.frame_store(kBase, b.msg_load(0));
    b.frame_store(kN, b.msg_load(1));
    b.post(t_init);
  }
  {
    BodyBuilder b = cb.define_inlet(in_vi);
    b.frame_store(kVi, b.msg_load(0));
    b.post(t_inner_init);
  }
  {
    BodyBuilder b = cb.define_inlet(in_aj);
    b.frame_store(kAj, b.msg_load(0));
    b.post(t_cmp);
  }

  {
    BodyBuilder b = cb.define_thread(t_init);
    b.frame_store(kI, b.konst(0));
    b.forks({t_outer});
  }
  {
    // outer loop head: i < n-1 ?
    BodyBuilder b = cb.define_thread(t_outer);
    VReg i = b.frame_load(kI);
    VReg nv = b.frame_load(kN);
    VReg limit = b.bini(BinOp::Sub, nv, 1);
    VReg c = b.bin(BinOp::Lt, i, limit);
    b.cond_forks(c, {t_fetch_vi}, {t_done});
  }
  {
    // split-phase read of A[i]
    BodyBuilder b = cb.define_thread(t_fetch_vi);
    VReg base = b.frame_load(kBase);
    VReg i = b.frame_load(kI);
    VReg off = b.bini(BinOp::Shl, i, 2);
    VReg addr = b.bin(BinOp::Add, base, off);
    b.gfetch(addr, in_vi);
    b.stop();
  }
  {
    BodyBuilder b = cb.define_thread(t_inner_init);
    VReg vi = b.frame_load(kVi);
    b.frame_store(kBest, vi);
    VReg i = b.frame_load(kI);
    b.frame_store(kBestIdx, i);
    VReg j0 = b.bini(BinOp::Add, i, 1);
    b.frame_store(kJ, j0);
    b.forks({t_inner});
  }
  {
    // inner loop head: j < n ?
    BodyBuilder b = cb.define_thread(t_inner);
    VReg j = b.frame_load(kJ);
    VReg nv = b.frame_load(kN);
    VReg c = b.bin(BinOp::Lt, j, nv);
    b.cond_forks(c, {t_fetch_aj}, {t_swap});
  }
  {
    BodyBuilder b = cb.define_thread(t_fetch_aj);
    VReg base = b.frame_load(kBase);
    VReg j = b.frame_load(kJ);
    VReg off = b.bini(BinOp::Shl, j, 2);
    VReg addr = b.bin(BinOp::Add, base, off);
    b.gfetch(addr, in_aj);
    b.stop();
  }
  {
    // track the minimum seen so far (branchless, as TL0 cmoves would be)
    BodyBuilder b = cb.define_thread(t_cmp);
    VReg aj = b.frame_load(kAj);
    VReg best = b.frame_load(kBest);
    VReg c = b.bin(BinOp::Lt, aj, best);
    VReg nb = b.select(c, aj, best);
    b.frame_store(kBest, nb);
    VReg bi = b.frame_load(kBestIdx);
    VReg j = b.frame_load(kJ);
    VReg nbi = b.select(c, j, bi);
    b.frame_store(kBestIdx, nbi);
    VReg j1 = b.bini(BinOp::Add, j, 1);
    b.frame_store(kJ, j1);
    b.forks({t_inner});
  }
  {
    // swap A[i] <-> A[bestIdx]
    BodyBuilder b = cb.define_thread(t_swap);
    VReg base = b.frame_load(kBase);
    VReg i = b.frame_load(kI);
    VReg offi = b.bini(BinOp::Shl, i, 2);
    VReg ai = b.bin(BinOp::Add, base, offi);
    VReg best = b.frame_load(kBest);
    b.gstore(ai, best);
    VReg bi = b.frame_load(kBestIdx);
    VReg offb = b.bini(BinOp::Shl, bi, 2);
    VReg ab = b.bin(BinOp::Add, base, offb);
    VReg vi = b.frame_load(kVi);
    b.gstore(ab, vi);
    VReg i1 = b.bini(BinOp::Add, i, 1);
    b.frame_store(kI, i1);
    b.forks({t_outer});
  }
  {
    BodyBuilder b = cb.define_thread(t_done);
    VReg nv = b.frame_load(kN);
    b.send_halt(nv);
    b.stop();
  }

  cb.finish();
  return prog;
}

}  // namespace

Workload make_selection_sort(int n) {
  struct State {
    mem::Addr base = 0;
    int n = 0;
  };
  auto st = std::make_shared<State>();
  st->n = n;

  Workload w;
  w.name = "ss";
  w.key = "ss/" + std::to_string(n);
  w.description = "selection sort of " + std::to_string(n) +
                  " reverse-ordered integers (paper arg: 100)";
  w.program = build_program(n);
  w.setup = [st, n](SetupCtx& ctx) {
    st->base = ctx.alloc_words(static_cast<std::uint32_t>(n));
    for (int k = 0; k < n; ++k) {
      // Reverse order: values n..1.
      ctx.write(st->base + static_cast<mem::Addr>(4 * k),
                static_cast<std::uint32_t>(n - k));
    }
    mem::Addr frame = ctx.alloc_frame(0);
    ctx.send_to_inlet(0, 0, frame,
                      {st->base, static_cast<std::uint32_t>(n)});
  };
  w.check = [st, n](const CheckCtx& ctx) -> std::string {
    if (ctx.halt_value != static_cast<std::uint32_t>(n)) {
      return "unexpected halt value";
    }
    for (int k = 0; k < n; ++k) {
      std::uint32_t v =
          ctx.m.load_word(st->base + static_cast<mem::Addr>(4 * k));
      if (v != static_cast<std::uint32_t>(k + 1)) {
        return "A[" + std::to_string(k) + "] = " + std::to_string(v) +
               ", expected " + std::to_string(k + 1);
      }
    }
    return {};
  };
  return w;
}

}  // namespace jtam::programs
