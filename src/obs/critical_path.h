// Critical-path analysis over a causal flow trace.
//
// A run's critical path is the chain of messages from a boot root to the
// message whose handler executed HALT, following each message's causal
// parent.  Along that chain the run's wall-clock (rounds) decomposes into
// four alternating component kinds:
//
//   handler      a handler computing, from its dispatch to the round it
//                issued the next message on the chain (or, for the last
//                link, to the HALT);
//   inject wait  the next message waiting for the network to accept it
//                (injection backpressure; contains its stall cycles);
//   transit      the message in the network (== its net_latency);
//   queue wait   the message buffered in the destination's hardware
//                queue, waiting for dispatch.
//
// These segments are adjacent and non-overlapping, so when the chain
// roots at a Boot message (send = inject = deliver = round 0) they
// partition [0, final_round] exactly: handler + inject_wait + transit +
// queue_wait == final_round, a bit-exact invariant pinned by
// tests/flow_test.cpp.  The split is the locality argument of the paper
// made mechanical: it shows whether a workload's end-to-end time is
// bound by compute (handler), by the wire (transit), or by contention
// (inject/queue wait) — and how that boundary moves between the
// message-driven and TAM back-ends.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace jtam::obs {

struct FlowTrace;

/// One chain link: a message and the durations it contributed.
struct CriticalStep {
  std::uint64_t msg = 0;  // flow id; FlowTrace::msg(msg) for details
  std::uint64_t handler = 0;
  std::uint64_t inject_wait = 0;
  std::uint64_t transit = 0;
  std::uint64_t queue_wait = 0;
  std::uint64_t stall_cycles = 0;  // portion of inject_wait spent stalled
};

struct CriticalPath {
  /// True when the chain runs boot -> HALT with every stage timestamped;
  /// then the component totals partition [0, final_round].  False when
  /// the run ended without a HALT (deadlock / budget) or the halting
  /// handler was untraced.
  bool complete = false;
  std::vector<CriticalStep> steps;  // root first, halting message last

  // Component totals over the chain, in rounds.
  std::uint64_t handler = 0;
  std::uint64_t inject_wait = 0;
  std::uint64_t transit = 0;
  std::uint64_t queue_wait = 0;
  std::uint64_t total() const {
    return handler + inject_wait + transit + queue_wait;
  }
};

/// Walk the causal chain ending at FlowTrace::halt_msg.
CriticalPath analyze_critical_path(const FlowTrace& trace);

/// Human-readable report: component breakdown, then the chain itself with
/// per-link handler names (when attach_symbols ran) and durations.
void write_critical_path(std::ostream& os, const FlowTrace& trace,
                         const CriticalPath& path);

}  // namespace jtam::obs
