// Flat profiler over the batched trace pipeline.
//
// Attributes every instruction fetch to the routine containing it and
// every data access to the mark-delimited context it executed under — the
// reconstruction lives in obs::ContextReplayer (context.h), shared with
// the locality collector.  For each requested cache geometry the profiler
// additionally simulates private I/D caches over the same streams the
// measured CacheBank consumes (bit-identical miss totals, asserted by
// tests/obs_test.cpp) and charges each miss to the same rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "driver/trace_buffer.h"
#include "obs/context.h"
#include "tamc/symbols.h"

namespace jtam::obs {

struct ProfileRow {
  std::string name;
  tamc::SymbolKind kind = tamc::SymbolKind::Other;
  int cb = -1;   // codeblock id for thread/inlet rows
  int idx = -1;  // thread/inlet id
  std::uint64_t fetches = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::vector<std::uint64_t> imisses;  // parallel to Profile::caches
  std::vector<std::uint64_t> dmisses;
};

struct Profile {
  std::vector<cache::CacheConfig> caches;
  std::vector<ProfileRow> rows;  // address order; pseudo rows last
  std::uint64_t total_fetches = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;

  /// Rows sorted by descending fetch count; `n <= 0` returns all.
  std::vector<const ProfileRow*> top(int n) const;
  /// One row per codeblock (thread+inlet rows merged), sorted descending.
  std::vector<ProfileRow> by_codeblock() const;

  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

class Profiler final : public driver::TraceConsumer {
 public:
  /// `map` must outlive the profiler.  `caches` are the geometries to
  /// attribute misses for (may be empty).
  Profiler(const tamc::SymbolMap* map,
           std::vector<cache::CacheConfig> caches);

  void on_block(const mdp::TraceBuffer& buf) override;

  /// Assemble the report (call once, after the final flush).
  Profile finish();

 private:
  struct Cell {
    std::uint64_t fetch = 0;
    std::uint64_t read = 0;
    std::uint64_t write = 0;
  };

  ContextReplayer ctx_;
  std::vector<cache::CacheConfig> cache_cfgs_;
  std::vector<cache::SetAssocCache> icaches_;  // one per config
  std::vector<cache::SetAssocCache> dcaches_;
  std::vector<Cell> cells_;
  std::vector<std::uint64_t> imiss_;  // [config * num_rows + row]
  std::vector<std::uint64_t> dmiss_;
};

}  // namespace jtam::obs
