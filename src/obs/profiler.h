// Flat profiler over the batched trace pipeline.
//
// Attributes every instruction fetch to the routine containing it (via the
// tamc symbol map: TAM threads/inlets, kernel routines, the FP library)
// and every data access to the mark-delimited context it executed under —
// so a thread's profile row includes the reads/writes of the kernel and
// FP-library calls it made, matching the paper's calling-context
// attribution of instruction costs.  For each requested cache geometry the
// profiler additionally simulates private I/D caches over the same streams
// the measured CacheBank consumes (bit-identical miss totals, asserted by
// tests/obs_test.cpp) and charges each miss to the same rows.
//
// Data-context reconstruction: the batched buffer does not preserve the
// interleaving of data events with fetches, but every mark records both
// its fetch and data positions.  A context switch (ThreadStart /
// InletStart / SysStart) takes effect at the mark's data position; its
// *row* is the routine of the next same-level fetch (the first instruction
// of the new context).  Because a level emits no data events between a
// mark and its next fetch, this reconstruction is exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "driver/trace_buffer.h"
#include "tamc/symbols.h"

namespace jtam::obs {

struct ProfileRow {
  std::string name;
  tamc::SymbolKind kind = tamc::SymbolKind::Other;
  int cb = -1;   // codeblock id for thread/inlet rows
  int idx = -1;  // thread/inlet id
  std::uint64_t fetches = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::vector<std::uint64_t> imisses;  // parallel to Profile::caches
  std::vector<std::uint64_t> dmisses;
};

struct Profile {
  std::vector<cache::CacheConfig> caches;
  std::vector<ProfileRow> rows;  // address order; pseudo rows last
  std::uint64_t total_fetches = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;

  /// Rows sorted by descending fetch count; `n <= 0` returns all.
  std::vector<const ProfileRow*> top(int n) const;
  /// One row per codeblock (thread+inlet rows merged), sorted descending.
  std::vector<ProfileRow> by_codeblock() const;

  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;
};

class Profiler final : public driver::TraceConsumer {
 public:
  /// `map` must outlive the profiler.  `caches` are the geometries to
  /// attribute misses for (may be empty).
  Profiler(const tamc::SymbolMap* map,
           std::vector<cache::CacheConfig> caches);

  void on_block(const mdp::TraceBuffer& buf) override;

  /// Assemble the report (call once, after the final flush).
  Profile finish();

 private:
  struct Cell {
    std::uint64_t fetch = 0;
    std::uint64_t read = 0;
    std::uint64_t write = 0;
  };
  struct Switch {
    std::uint32_t data_pos;
    std::uint8_t level;
    std::uint32_t row;
  };

  std::uint32_t row_of(mem::Addr code_addr);

  const tamc::SymbolMap* map_;
  std::vector<cache::CacheConfig> cache_cfgs_;
  std::vector<cache::SetAssocCache> icaches_;  // one per config
  std::vector<cache::SetAssocCache> dcaches_;
  std::size_t nrows_;
  std::uint32_t row_unmapped_;
  std::uint32_t row_dispatch_;
  std::vector<Cell> cells_;
  std::vector<std::uint64_t> imiss_;  // [config * nrows_ + row]
  std::vector<std::uint64_t> dmiss_;
  std::uint32_t cur_data_row_[2];
  std::vector<std::uint32_t> pending_data_pos_[2];  // unresolved switches
  bool pending_carried_[2] = {false, false};  // carried from a prior block
  std::vector<Switch> switches_;              // scratch, rebuilt per block
  const tamc::SymbolSpan* last_span_ = nullptr;  // lookup memo
  std::uint32_t last_row_ = 0;
};

}  // namespace jtam::obs
