// Shared export plumbing for the observability writers.
//
// Every obs artifact writer (profile CSV/JSON, Chrome traces, locality
// reports) and every bench/example that saves one used to carry its own
// copy of the same three fragments: CSV field escaping, the
// open-file/write/warn-on-failure dance, and the comma/newline separator
// state of a hand-rolled JSON array.  This header is the single home for
// all three.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace jtam::obs {

/// Version stamp carried by every machine-readable artifact the repo
/// emits: the bench `--json` reports (bench/bench_common.h), the obs JSON
/// exporters (profile, locality, host report, signal snapshots).  Bump it
/// whenever a field is renamed, removed, or changes meaning — downstream
/// tooling (examples/bench_diff.cpp, the CI baseline gates) refuses to
/// compare documents whose versions disagree, so stale baselines fail
/// loudly instead of producing nonsense diffs.
inline constexpr int kObsSchemaVersion = 1;

/// Escape one CSV field per RFC 4180: fields containing a comma, a quote,
/// or a newline are wrapped in double quotes with embedded quotes doubled;
/// anything else passes through unchanged.
std::string csv_escape(const std::string& field);

/// Open `path`, run `writer` on the stream, and report the outcome on
/// stderr — "  wrote <path>" on success, a warning naming `what` on
/// failure.  Returns false when the file could not be opened or the stream
/// failed.  `note` (optional) is appended to the success line, e.g.
/// "(4 timelines)".
bool write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& writer,
                const std::string& note = {});

/// Separator state for a hand-rolled JSON array: first element gets a
/// newline, the rest ",\n" — the pattern every trace writer repeats.
class JsonListSep {
 public:
  /// Emit the separator for the next element and return the stream.
  std::ostream& next(std::ostream& os);

 private:
  bool first_ = true;
};

}  // namespace jtam::obs
