#include "obs/critical_path.h"

#include <algorithm>
#include <ostream>

#include "obs/flow.h"

namespace jtam::obs {

CriticalPath analyze_critical_path(const FlowTrace& trace) {
  CriticalPath path;
  if (trace.halt_msg == 0) return path;  // no HALT (deadlock / budget)

  // Collect the chain halt -> root, then flip it root-first.
  std::vector<std::uint64_t> chain;
  for (std::uint64_t id = trace.halt_msg; id != 0;
       id = trace.msg(id).parent) {
    chain.push_back(id);
  }
  std::reverse(chain.begin(), chain.end());

  bool complete = trace.msg(chain.front()).kind == FlowMsgKind::Boot;
  path.steps.reserve(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const FlowMessage& m = trace.msg(chain[i]);
    CriticalStep step;
    step.msg = m.id;
    step.stall_cycles = m.stall_cycles;
    if (!m.dispatched()) {
      complete = false;  // chain truncated mid-flight; durations partial
      path.steps.push_back(step);
      continue;
    }
    step.inject_wait = m.inject_wait();
    step.transit = m.transit();
    step.queue_wait = m.queue_wait();
    // The handler segment runs from this dispatch to the moment it handed
    // the chain onward: the next chain message's first send attempt, or
    // the HALT (finish_ts) for the last link.
    const std::uint64_t handoff = i + 1 < chain.size()
                                      ? trace.msg(chain[i + 1]).send_ts
                                      : m.finish_ts;
    if (handoff == kFlowNoTs) {
      complete = false;
    } else {
      step.handler = handoff - m.dispatch_ts;
    }
    path.steps.push_back(step);
  }
  for (const CriticalStep& s : path.steps) {
    path.handler += s.handler;
    path.inject_wait += s.inject_wait;
    path.transit += s.transit;
    path.queue_wait += s.queue_wait;
  }
  path.complete = complete;
  return path;
}

namespace {

void write_component(std::ostream& os, const char* name, std::uint64_t v,
                     std::uint64_t total) {
  os << "  " << name << " " << v << " rounds";
  if (total != 0) {
    os << " (" << (v * 1000 / total) / 10 << "." << (v * 1000 / total) % 10
       << "%)";
  }
  os << "\n";
}

}  // namespace

void write_critical_path(std::ostream& os, const FlowTrace& trace,
                         const CriticalPath& path) {
  if (path.steps.empty()) {
    os << "critical path: none (run ended without a traced HALT)\n";
    return;
  }
  os << "critical path: " << path.steps.size() << " messages, "
     << path.total() << " of " << trace.final_round << " rounds"
     << (path.complete ? "" : " (incomplete chain)") << "\n";
  const std::uint64_t total = path.total();
  write_component(os, "handler     ", path.handler, total);
  write_component(os, "queue wait  ", path.queue_wait, total);
  write_component(os, "transit     ", path.transit, total);
  write_component(os, "inject wait ", path.inject_wait, total);
  os << "chain (root first):\n";
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const CriticalStep& s = path.steps[i];
    const FlowMessage& m = trace.msg(s.msg);
    os << "  #" << (i + 1) << " " << flow_msg_kind_name(m.kind) << " "
       << static_cast<int>(m.src_node);
    if (m.kind == FlowMsgKind::Remote) {
      os << "->" << static_cast<int>(m.dest_node) << " hops " << m.hops;
    }
    const std::string& name = trace.name_of(m);
    if (!name.empty()) os << " " << name;
    os << "  wait " << (s.inject_wait + s.transit + s.queue_wait)
       << " handler " << s.handler << "\n";
  }
}

}  // namespace jtam::obs
