// Scheduling timeline exporter (Chrome trace-event / Perfetto JSON).
//
// Reconstructs the machine's scheduling structure from the mark stream as
// slices on a per-priority-level track, plus a synthetic "quanta" track
// and a queue-occupancy counter per level, and writes the Chrome
// trace-event JSON format (the `traceEvents` array form) that
// ui.perfetto.dev and chrome://tracing load directly.  Timestamps are the
// cumulative simulated instruction index — 1 "microsecond" per
// instruction — so slice widths are directly comparable across runs.
// Several runs (e.g. the MD and AM back-ends of one program) can be
// written into a single file as separate processes.
//
// Slices are named via the tamc symbol map when one is provided (a slice
// opened by ThreadStart/InletStart/SysStart is named after the routine of
// the next same-level fetch — its first instruction); without a map they
// fall back to the generic context names.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "driver/trace_buffer.h"
#include "runtime/layout.h"
#include "tamc/symbols.h"

namespace jtam::obs {

struct FlowTrace;

/// Track ids inside one process: 0/1 are the priority levels, 2 the
/// synthetic quantum track.
inline constexpr int kTimelineQuantumTrack = 2;

struct Timeline {
  struct Slice {
    std::uint64_t ts = 0;   // start, in simulated instructions
    std::uint64_t dur = 0;  // length, in simulated instructions
    std::string name;
    int tid = 0;
    std::uint32_t frame = 0;  // frame argument of the opening mark
  };
  struct Instant {
    std::uint64_t ts = 0;
    std::string name;
    int tid = 0;
    std::uint32_t frame = 0;
  };
  struct QueueSample {
    std::uint64_t ts = 0;
    int level = 0;
    std::uint32_t depth = 0;
    std::uint32_t bytes = 0;
  };

  std::vector<Slice> slices;
  std::vector<Instant> instants;
  std::vector<QueueSample> queue;
  std::uint64_t total_instructions = 0;
  std::uint64_t dropped = 0;  // events past the recording cap

  std::size_t recorded_events() const {
    return slices.size() + instants.size() + queue.size();
  }
};

class TimelineBuilder final : public driver::TraceConsumer {
 public:
  /// `map` may be null (generic slice names).  `max_events` caps recorded
  /// events; past it the builder keeps counting into Timeline::dropped.
  TimelineBuilder(rt::BackendKind backend, const tamc::SymbolMap* map,
                  std::size_t max_events);

  void on_block(const mdp::TraceBuffer& buf) override;

  /// Close open slices and return the result (call once).
  Timeline finish();

 private:
  struct Open {
    bool active = false;
    bool named = false;  // name resolved from the first fetch yet?
    std::uint64_t ts = 0;
    std::string name;
    std::uint32_t frame = 0;
  };

  void open_slice(int level, std::uint64_t ts, const char* fallback,
                  std::uint32_t frame);
  void close_slice(int level, std::uint64_t ts);
  void emit_slice(Timeline::Slice s);

  rt::BackendKind backend_;
  const tamc::SymbolMap* map_;
  std::size_t max_events_;
  Timeline tl_;
  std::uint64_t fetch_base_ = 0;  // instructions before the current block
  Open open_[2];
  Open quantum_;
  std::uint32_t quantum_frame_ = 0;
};

class JsonListSep;

/// Write one or more labelled timelines as a Chrome trace-event JSON
/// document, one process per timeline.
void write_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const Timeline*>>& runs);

/// Emit one timeline's process/thread metadata and events into an open
/// traceEvents array — the per-run body of write_chrome_trace, shared with
/// the locality counter-track merger (obs/locality.h) so both writers
/// produce identical timeline events.
void emit_timeline_process(std::ostream& os, JsonListSep& sep, int pid,
                           const std::string& label, const Timeline& tl);

/// Write one or more causal flow traces (obs::FlowTrace) as a merged
/// multi-node Chrome trace-event JSON document.  Each run contributes one
/// process per node ("<label> node N", tracks = the two priority levels)
/// carrying handler slices, plus a "<label> network" process with the
/// sampler's counters; remote messages draw flow arrows (`s`/`f` events,
/// ids unique across the whole file) from the sender's injection to the
/// receiver's dispatch.  Timestamps are rounds — 1 "microsecond" per
/// round — so node tracks of one run line up on a shared clock.
void write_flow_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const FlowTrace*>>& runs);

/// Emit the flow runs' processes and events into an already-open
/// traceEvents array — the body of write_flow_chrome_trace, shared with
/// the host-clock merger (obs/host.h) so both writers produce identical
/// flow events.  `next_pid` is the first free process id and is advanced
/// past every process this call allocates.
void emit_flow_runs(
    std::ostream& os, JsonListSep& sep, int& next_pid,
    const std::vector<std::pair<std::string, const FlowTrace*>>& runs);

}  // namespace jtam::obs
