// Distribution histograms behind the paper's Table 2 means.
//
// Table 2 reports TPQ/IPT/IPQ as averages; this consumer keeps the whole
// distribution of each quantity, replaying the mark stream with exactly
// the context rules metrics::StatsSink uses so the histograms tie out
// against the measured granularity counters (count and sum of each
// histogram equal the corresponding Granularity numerator/denominator —
// asserted by tests/obs_test.cpp):
//
//   quantum_len.count == quanta    quantum_len.sum == quantum_instrs
//   tpq.count         == quanta    tpq.sum         == threads
//   ipt.count         == threads   ipt.sum         == thread_instrs
//   inlet_len.count   == inlets    inlet_len.sum   == inlet_instrs
//
// Queue occupancy is sampled from the machine-emitted Dispatch marks
// (depth and bytes at the instant each message is dispatched), giving the
// distribution of hardware-queue pressure per priority level.
#pragma once

#include <cstdint>

#include "driver/trace_buffer.h"
#include "obs/histogram.h"
#include "runtime/layout.h"

namespace jtam::obs {

struct Distributions {
  Histogram quantum_len;     // instructions per quantum
  Histogram tpq;             // threads per quantum
  Histogram ipt;             // instructions per thread run
  Histogram inlet_len;       // instructions per inlet run
  Histogram queue_depth[2];  // records queued at dispatch, per level
  Histogram queue_bytes[2];  // bytes queued at dispatch, per level
};

class DistributionBuilder final : public driver::TraceConsumer {
 public:
  explicit DistributionBuilder(rt::BackendKind backend)
      : backend_(backend) {}

  void on_block(const mdp::TraceBuffer& buf) override;

  /// Close any open runs/quantum and return the result (call once).
  Distributions finish();

  /// Mid-stream snapshot: the result finish() would return right now,
  /// without disturbing the live state (the builder is trivially
  /// copyable-by-value, so this copies it and finishes the copy).  Used by
  /// the signal bus to publish streaming aggregates that tie out exactly
  /// against a post-hoc finish().
  Distributions snapshot() const {
    DistributionBuilder copy(*this);
    return copy.finish();
  }

 private:
  enum class Ctx : std::uint8_t { None, Thread, Inlet, Sys };

  void close_run(int level);
  void quantum_boundary();

  rt::BackendKind backend_;
  Distributions d_;
  Ctx ctx_[2] = {Ctx::None, Ctx::Sys};
  std::uint32_t quantum_frame_ = 0;
  bool quantum_open_ = false;
  std::uint64_t q_instrs_ = 0;
  std::uint64_t q_threads_ = 0;
  std::uint64_t run_len_[2] = {0, 0};  // current thread/inlet run, per level
};

}  // namespace jtam::obs
