// jtam::obs — observability over simulated runs.
//
// Bundles the individual collectors (profiler, distribution histograms,
// timeline, pipeline self-metrics) behind one attach/finish pair so the
// experiment driver can wire them into the batched trace pipeline with a
// couple of lines.  Everything here observes the trace stream without
// touching any measured state: a run with collectors attached produces a
// RunResult bit-identical to a plain run (tests/obs_test.cpp), which is
// why obs::Options is excluded from the run-memoization key.
//
// The collectors consume TraceBuffer blocks, so observability requires the
// batched pipeline (RunOptions::batched_trace, the default); on the seed
// per-event path the driver simply produces no report.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>

#include "driver/trace_buffer.h"
#include "obs/distributions.h"
#include "obs/host.h"
#include "obs/locality.h"
#include "obs/options.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "runtime/layout.h"
#include "tamc/lower.h"
#include "tamc/symbols.h"

namespace jtam::obs {

/// Wall-clock self-metrics of the batched trace pipeline.  These measure
/// the *simulator's* throughput, never the simulated program — they are
/// reported alongside RunResult but are not part of it.
struct PipelineMetrics {
  std::uint64_t blocks = 0;
  std::uint64_t fetch_events = 0;
  std::uint64_t data_events = 0;
  std::uint64_t marks = 0;
  double drain_seconds = 0;      // total wall time inside block drains
  double max_block_seconds = 0;  // slowest single block

  std::uint64_t total_events() const {
    return fetch_events + data_events + marks;
  }
  double events_per_second() const {
    return drain_seconds <= 0 ? 0.0
                              : static_cast<double>(total_events()) /
                                    drain_seconds;
  }
};

/// Everything the collectors produced for one run.
struct Report {
  std::optional<Profile> profile;
  std::optional<Distributions> distributions;
  std::optional<Timeline> timeline;
  std::optional<PipelineMetrics> pipeline;
  std::optional<LocalityReport> locality;
  /// Host-time observatory (Options::host_profile): stage/pool wall-clock
  /// attribution for this run.  Filled by the experiment driver, not by
  /// Collectors — the timers live in the pipeline and the pool.
  std::optional<HostReport> host;

  /// Human-readable rendering (profile top-`top_n`, distribution summary,
  /// pipeline throughput).  The timeline is summarized, not dumped — use
  /// write_chrome_trace for the real artifact.
  void write_text(std::ostream& os, int top_n = 20) const;
};

/// TraceDrain wrapper that times every block handed to the inner drain and
/// counts its events.
class MeteredPipeline final : public mdp::TraceDrain {
 public:
  explicit MeteredPipeline(mdp::TraceDrain* inner) : inner_(inner) {}
  void on_block(const mdp::TraceBuffer& buf) override;
  const PipelineMetrics& metrics() const { return m_; }

 private:
  mdp::TraceDrain* inner_;
  PipelineMetrics m_;
};

/// The collectors requested by an obs::Options, ready to attach to a run's
/// TracePipeline.  Owns the symbol map the profiler and timeline share.
class Collectors {
 public:
  /// `frame_heap_base` is the frame heap's start address (the runtime
  /// heap-bump value after program setup), used by the locality collector
  /// to split user data into frame vs heap access classes; pass 0 when
  /// locality is off.
  Collectors(const Options& opts, rt::BackendKind backend,
             const tamc::CompiledProgram& compiled,
             std::uint32_t block_bytes, mem::Addr frame_heap_base);

  /// Append the requested consumers to `pipe` (after the measurement
  /// consumers, so a collector throwing cannot perturb them).
  void attach(driver::TracePipeline& pipe);

  /// Close all collectors and assemble the report.  `pm` is the metered
  /// drain's result when pipeline metrics were requested, else null.
  Report finish(const PipelineMetrics* pm);

 private:
  Options opts_;
  tamc::SymbolMap symbols_;
  std::optional<Profiler> profiler_;
  std::optional<DistributionBuilder> distributions_;
  std::optional<TimelineBuilder> timeline_;
  std::optional<LocalityCollector> locality_;
};

}  // namespace jtam::obs
