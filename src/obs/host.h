// Host-time observatory: wall-clock self-profiling of the simulator.
//
// Everything in this header measures the *simulator* — how long the host
// spent planning windows, sweeping nodes, waiting at barriers, draining
// trace blocks — never the simulated program.  The collection seam is
// mdp::EngineProfiler (mdp/multi.h), implemented here by HostProfiler and
// attached with MultiMachine::set_host_profiler(); because the engine's
// PhaseClock laps partition its wall time exactly, the HostReport's phase
// totals sum to the measured engine wall clock by construction (the >= 95%
// coverage contract is asserted in tests/hostobs_test.cpp).  Attaching a
// profiler changes no measured number: runs with and without one are
// bit-identical in every RunResult/MultiRunResult-visible respect.
//
// A HostReport also carries two driver-side ingredients the engine cannot
// see: per-worker utilization of the support::ThreadPool that shards the
// cache consumers (add_pool_stats) and per-stage drain times of the
// TracePipeline (add_stage_times).  Together they answer "where did the
// host seconds go" for both the multi-node engine and the single-node
// scheduler-lab pipeline.
//
// Clock split: simulated artifacts (timelines, flow traces) tick in
// simulated instructions or rounds; everything here ticks in steady-clock
// nanoseconds.  write_host_chrome_trace merges both into one Perfetto
// document as separate process groups — side-by-side structure, not a
// shared axis (see DESIGN.md, "Two clocks").
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "driver/trace_buffer.h"
#include "mdp/multi.h"
#include "support/thread_pool.h"

namespace jtam::obs {

struct FlowTrace;

/// Where the host's wall clock went during one MultiMachine::run() (or one
/// single-node pipeline run, which uses only the stage/pool sections).
struct HostReport {
  static constexpr int kNumPhases = mdp::EngineProfiler::kNumPhases;

  // --- engine shape -----------------------------------------------------
  bool parallel = false;       // windowed engine vs serial round loop
  unsigned shards = 0;         // worker shards (1 = coordinator only)
  std::uint64_t window_limit = 0;  // lookahead clamp the windows were cut to
  std::uint64_t rounds = 0;
  std::uint64_t windows = 0;

  // --- engine wall clock ------------------------------------------------
  /// steady-clock span from on_run_begin to on_run_end.
  std::uint64_t engine_wall_ns = 0;
  /// Exclusive per-phase totals (indexed by mdp::EngineProfiler::Phase).
  std::array<std::uint64_t, kNumPhases> phase_ns{};

  /// One resolved window of the parallel engine, sampled until the cap.
  /// phase_ns holds only the slice of each phase charged during this
  /// window; shard_busy_ns[s] is the wall time shard s's owning worker
  /// spent inside the node phase (coordinator's own shard first).
  struct WindowSample {
    std::uint64_t round_from = 0;
    std::uint64_t rounds = 0;
    std::uint64_t t_end_ns = 0;  // since on_run_begin, at resolution
    std::array<std::uint64_t, kNumPhases> phase_ns{};
    std::vector<std::uint64_t> shard_busy_ns;
  };
  std::vector<WindowSample> sampled;
  std::uint64_t windows_dropped = 0;  // windows past the sampling cap

  /// Whole-run per-shard node-phase busy time (all windows, dropped ones
  /// included) — the load-imbalance evidence.
  std::vector<std::uint64_t> shard_busy_ns;

  // --- driver-side sections (filled by the experiment driver) -----------
  struct Worker {
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks = 0;
  };
  std::vector<Worker> pool_workers;  // trace-pipeline pool utilization

  struct Stage {
    std::string name;
    std::uint64_t ns = 0;
    std::uint64_t blocks = 0;
  };
  std::vector<Stage> stages;  // TracePipeline per-consumer drain times

  // --- derived ----------------------------------------------------------
  std::uint64_t phase_total_ns() const;
  /// phase_total_ns / engine_wall_ns (0 when no wall was measured).  The
  /// chained-lap design keeps this at ~1.0; the unmeasured residue is pool
  /// teardown and the gaps between the engine's PhaseClock scopes.
  double coverage() const;
  /// max / mean of shard_busy_ns (1.0 = perfectly balanced; 0 if empty).
  double imbalance() const;
  static const char* phase_name(int p);

  /// Record the pipeline pool's per-worker counters for this run as the
  /// difference `after - before` (the shared pool's meters are cumulative
  /// across runs, so callers snapshot around the run).
  void add_pool_stats(const std::vector<support::ThreadPool::WorkerStats>& before,
                      const std::vector<support::ThreadPool::WorkerStats>& after);
  void add_stage_times(const std::vector<driver::TracePipeline::StageTime>& st);

  void write_text(std::ostream& os) const;
  /// `kind,name,ns,count` rows: phases, shards, pool workers, stages.
  void write_csv(std::ostream& os) const;
  /// Carries obs::kObsSchemaVersion; window samples are summarized by
  /// count, not dumped — the Perfetto export is the per-window artifact.
  void write_json(std::ostream& os) const;
};

/// The mdp::EngineProfiler implementation behind the report.  All
/// callbacks fire on the run() caller's thread (the engine contract), so
/// no synchronization is needed; per-shard busy times arrive through
/// on_window already ferried across the window barrier.
class HostProfiler final : public mdp::EngineProfiler {
 public:
  /// `max_window_samples` bounds HostReport::sampled; later windows still
  /// feed every total and count into windows_dropped.
  explicit HostProfiler(std::size_t max_window_samples = 4096);

  void on_run_begin(bool parallel, unsigned shards,
                    std::uint64_t window_limit) override;
  void on_phase(Phase p, std::uint64_t ns) override;
  void on_window(std::uint64_t round_from, std::uint64_t rounds,
                 const std::uint64_t* shard_busy_ns, unsigned shards) override;
  void on_run_end(std::uint64_t rounds, std::uint64_t windows) override;

  const HostReport& report() const { return r_; }
  HostReport& report() { return r_; }

 private:
  HostReport r_;
  std::size_t max_samples_;
  std::chrono::steady_clock::time_point t0_{};
  /// phase_ns accumulators at the previous on_window — the delta is the
  /// per-window phase attribution.
  std::array<std::uint64_t, kNumPhases> window_mark_{};
};

/// One Perfetto document holding the simulated flow traces (rounds as
/// microseconds, exactly as write_flow_chrome_trace emits them) plus one
/// host-clock process per HostReport (steady-clock nanoseconds rendered as
/// fractional microseconds): an "engine phases" track of per-window phase
/// slices (serial runs get their phase totals laid end-to-end), a
/// "windows" track of window-extent slices, and a per-shard busy counter.
/// Either list may be empty.
void write_host_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const FlowTrace*>>& flow_runs,
    const std::vector<std::pair<std::string, const HostReport*>>& host_runs);

}  // namespace jtam::obs
