// Shared symbol/context reconstruction over the batched trace pipeline.
//
// Two obs collectors need the same view of a trace block: every
// instruction fetch attributed to the routine containing it (via the tamc
// symbol map) and every data access attributed to the mark-delimited
// context it executed under — so a thread's row includes the reads/writes
// of the kernel and FP-library calls it made, matching the paper's
// calling-context attribution of instruction costs.  ContextReplayer owns
// that reconstruction once; the Profiler (per-row counts + probe caches)
// and the LocalityCollector (keyed stack simulation) are thin callbacks on
// top of it.
//
// Data-context reconstruction: the batched buffer does not preserve the
// interleaving of data events with fetches, but every mark records both
// its fetch and data positions.  A context switch (ThreadStart /
// InletStart / SysStart) takes effect at the mark's data position; its
// *row* is the routine of the next same-level fetch (the first instruction
// of the new context).  Because a level emits no data events between a
// mark and its next fetch, this reconstruction is exact.  Dispatch and
// Suspend marks switch to a dedicated "(dispatch)" pseudo row immediately,
// covering the machine's inter-handler queue accesses; a second
// "(unmapped)" pseudo row absorbs fetches outside every span and the data
// accesses before the first mark.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/replay.h"
#include "tamc/symbols.h"

namespace jtam::obs {

/// Streaming reconstructor: feed it every trace block in order via walk();
/// it invokes `on_fetch(row, addr)` per instruction fetch and
/// `on_data(row, addr, is_write)` per data access, with `row` in
/// [0, num_rows()) — span index, row_unmapped(), or row_dispatch().
class ContextReplayer {
 public:
  /// `map` must outlive the replayer.
  explicit ContextReplayer(const tamc::SymbolMap* map) : map_(map) {
    nrows_ = map_->spans().size() + 2;
    row_unmapped_ = static_cast<std::uint32_t>(map_->spans().size());
    row_dispatch_ = row_unmapped_ + 1;
    // Before the first mark a level's data accesses belong to whatever
    // routine its first fetch lands in (kernel boot code): model run start
    // as a pending switch carried into the first block.
    cur_data_row_[0] = cur_data_row_[1] = row_unmapped_;
    pending_carried_[0] = pending_carried_[1] = true;
  }

  std::size_t num_rows() const { return nrows_; }
  std::uint32_t row_unmapped() const { return row_unmapped_; }
  std::uint32_t row_dispatch() const { return row_dispatch_; }
  const tamc::SymbolMap& map() const { return *map_; }

  /// Symbol row of a code address (memoized on the last span hit).
  std::uint32_t row_of(mem::Addr code_addr) {
    if (last_span_ != nullptr && code_addr >= last_span_->begin &&
        code_addr < last_span_->end) {
      return last_row_;
    }
    const tamc::SymbolSpan* s = map_->find(code_addr);
    if (s == nullptr) return row_unmapped_;
    last_span_ = s;
    last_row_ = static_cast<std::uint32_t>(s - map_->spans().data());
    return last_row_;
  }

  template <typename FetchFn, typename DataFn>
  void walk(const mdp::TraceBuffer& buf, FetchFn&& on_fetch,
            DataFn&& on_data) {
    // Pass 1: the fetch/mark walk.  Fetches attribute by address; marks
    // become data-context switches — Dispatch/Suspend immediately, context
    // starts at the next same-level fetch.
    switches_.clear();
    std::uint32_t pending_pos[2] = {kNoPending, kNoPending};
    for (int lv = 0; lv < 2; ++lv) {
      if (pending_carried_[lv]) pending_pos[lv] = 0;
    }
    walk_fetches(
        buf,
        [&](const mdp::TraceBuffer::Mark& m) {
          const auto kind = static_cast<mdp::MarkKind>(m.kind);
          switch (kind) {
            case mdp::MarkKind::ThreadStart:
            case mdp::MarkKind::InletStart:
            case mdp::MarkKind::SysStart:
              if (pending_pos[m.level] == kNoPending) {
                pending_pos[m.level] = m.data_pos;
              }
              break;
            case mdp::MarkKind::Dispatch:
            case mdp::MarkKind::Suspend:
              switches_.push_back(Switch{m.data_pos, m.level, row_dispatch_});
              break;
            case mdp::MarkKind::Activate:
            case mdp::MarkKind::FpCall:
              break;
          }
        },
        [&](std::size_t, mem::Addr addr, mdp::Priority p) {
          const std::uint32_t row = row_of(addr);
          on_fetch(row, addr);
          const auto lv = static_cast<std::uint8_t>(p);
          if (pending_pos[lv] != kNoPending) {
            switches_.push_back(Switch{pending_pos[lv], lv, row});
            pending_pos[lv] = kNoPending;
          }
        });
    for (int lv = 0; lv < 2; ++lv) {
      // A pending switch with no resolving fetch in this block carries
      // over; the invariant (no same-level data between a mark and its
      // resolving fetch) means applying it at position 0 of the next block
      // is exact.
      pending_carried_[lv] = pending_pos[lv] != kNoPending;
    }

    // Pass 2: the data walk, applying switches at their recorded
    // positions.
    std::stable_sort(switches_.begin(), switches_.end(),
                     [](const Switch& a, const Switch& b) {
                       return a.data_pos < b.data_pos;
                     });
    const auto& data = buf.data();
    std::size_t si = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      while (si < switches_.size() && switches_[si].data_pos <= i) {
        cur_data_row_[switches_[si].level] = switches_[si].row;
        ++si;
      }
      const std::uint32_t w = data[i];
      on_data(cur_data_row_[(w >> 1) & 1u], w & ~3u, (w & 1u) != 0);
    }
    for (; si < switches_.size(); ++si) {
      cur_data_row_[switches_[si].level] = switches_[si].row;
    }
  }

 private:
  static constexpr std::uint32_t kNoPending = 0xFFFFFFFFu;

  struct Switch {
    std::uint32_t data_pos;
    std::uint8_t level;
    std::uint32_t row;
  };

  const tamc::SymbolMap* map_;
  std::size_t nrows_;
  std::uint32_t row_unmapped_;
  std::uint32_t row_dispatch_;
  std::uint32_t cur_data_row_[2];
  bool pending_carried_[2] = {false, false};
  std::vector<Switch> switches_;  // scratch, rebuilt per block
  const tamc::SymbolSpan* last_span_ = nullptr;  // lookup memo
  std::uint32_t last_row_ = 0;
};

}  // namespace jtam::obs
