#include "obs/distributions.h"

#include "obs/replay.h"

namespace jtam::obs {

void DistributionBuilder::close_run(int level) {
  if (ctx_[level] == Ctx::Thread) {
    d_.ipt.add(run_len_[level]);
  } else if (ctx_[level] == Ctx::Inlet) {
    d_.inlet_len.add(run_len_[level]);
  }
  run_len_[level] = 0;
}

void DistributionBuilder::quantum_boundary() {
  if (quantum_open_) {
    d_.quantum_len.add(q_instrs_);
    d_.tpq.add(q_threads_);
    q_instrs_ = 0;
    q_threads_ = 0;
  } else {
    // First boundary: any low-priority user instructions seen before it
    // (none in practice for either back-end) fold into this quantum so
    // the histogram sum still equals Granularity::quantum_instrs.
    quantum_open_ = true;
  }
}

void DistributionBuilder::on_block(const mdp::TraceBuffer& buf) {
  walk_fetches(
      buf,
      [&](const mdp::TraceBuffer::Mark& m) {
        const int l = m.level;
        switch (static_cast<mdp::MarkKind>(m.kind)) {
          case mdp::MarkKind::ThreadStart:
            close_run(l);
            if (m.aux != quantum_frame_) {
              quantum_boundary();
              quantum_frame_ = m.aux;
            }
            ++q_threads_;
            ctx_[l] = Ctx::Thread;
            break;
          case mdp::MarkKind::InletStart:
            close_run(l);
            if (backend_ == rt::BackendKind::MessageDriven &&
                l == static_cast<int>(mdp::Priority::Low) &&
                m.aux != quantum_frame_) {
              quantum_boundary();
              quantum_frame_ = m.aux;
            }
            ctx_[l] = Ctx::Inlet;
            break;
          case mdp::MarkKind::SysStart:
            close_run(l);
            ctx_[l] = Ctx::Sys;
            break;
          case mdp::MarkKind::Dispatch:
            d_.queue_depth[l].add(mdp::queue_sample_depth(m.aux));
            d_.queue_bytes[l].add(mdp::queue_sample_bytes(m.aux));
            break;
          case mdp::MarkKind::Activate:
          case mdp::MarkKind::Suspend:
          case mdp::MarkKind::FpCall:
            // No context change (matches StatsSink): a dispatched handler
            // keeps the stale context until its own Start mark, and FP
            // library work stays attributed to the caller.
            break;
        }
      },
      [&](std::size_t, mem::Addr, mdp::Priority p) {
        const int l = static_cast<int>(p);
        switch (ctx_[l]) {
          case Ctx::Thread:
            ++run_len_[l];
            ++q_instrs_;  // thread context only exists at low priority
            break;
          case Ctx::Inlet:
            ++run_len_[l];
            if (p == mdp::Priority::Low) ++q_instrs_;
            break;
          case Ctx::Sys:
          case Ctx::None:
            break;
        }
      });
}

Distributions DistributionBuilder::finish() {
  close_run(0);
  close_run(1);
  ctx_[0] = ctx_[1] = Ctx::None;
  if (quantum_open_) {
    d_.quantum_len.add(q_instrs_);
    d_.tpq.add(q_threads_);
    quantum_open_ = false;
    q_instrs_ = 0;
    q_threads_ = 0;
  }
  return d_;
}

}  // namespace jtam::obs
