#include "obs/obs.h"

#include <chrono>
#include <ostream>

#include "cache/cache_bank.h"
#include "support/text.h"

namespace jtam::obs {

void MeteredPipeline::on_block(const mdp::TraceBuffer& buf) {
  const auto t0 = std::chrono::steady_clock::now();
  inner_->on_block(buf);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++m_.blocks;
  m_.fetch_events += buf.fetch().size();
  m_.data_events += buf.data().size();
  m_.marks += buf.marks().size();
  m_.drain_seconds += dt;
  if (dt > m_.max_block_seconds) m_.max_block_seconds = dt;
}

Collectors::Collectors(const Options& opts, rt::BackendKind backend,
                       const tamc::CompiledProgram& compiled,
                       std::uint32_t block_bytes, mem::Addr frame_heap_base)
    : opts_(opts), symbols_(tamc::SymbolMap::from(compiled)) {
  if (opts_.profile) {
    std::vector<cache::CacheConfig> cfgs;
    std::vector<ProfileCacheConfig> want = opts_.profile_caches;
    if (want.empty()) want.push_back(ProfileCacheConfig{});  // 8K 4-way
    for (const ProfileCacheConfig& pc : want) {
      cache::CacheConfig cc;
      cc.size_bytes = pc.size_bytes;
      cc.block_bytes = block_bytes;
      cc.assoc = pc.assoc;
      cc.validate();
      cfgs.push_back(cc);
    }
    profiler_.emplace(&symbols_, std::move(cfgs));
  }
  if (opts_.histograms) distributions_.emplace(backend);
  if (opts_.timeline) {
    timeline_.emplace(backend, &symbols_, opts_.timeline_max_events);
  }
  if (opts_.locality) {
    locality_.emplace(&symbols_, cache::paper_ladder(block_bytes),
                      frame_heap_base);
  }
}

void Collectors::attach(driver::TracePipeline& pipe) {
  if (profiler_) pipe.add(&*profiler_, "obs:profile");
  if (distributions_) pipe.add(&*distributions_, "obs:histograms");
  if (timeline_) pipe.add(&*timeline_, "obs:timeline");
  if (locality_) pipe.add(&*locality_, "obs:locality");
}

Report Collectors::finish(const PipelineMetrics* pm) {
  Report r;
  if (profiler_) r.profile = profiler_->finish();
  if (distributions_) r.distributions = distributions_->finish();
  if (timeline_) r.timeline = timeline_->finish();
  if (locality_) r.locality = locality_->finish();
  if (pm != nullptr) r.pipeline = *pm;
  return r;
}

namespace {

void histogram_row(text::Table& t, const char* name, const Histogram& h) {
  t.row({name, text::with_commas(h.count()), text::with_commas(h.sum()),
         text::fixed(h.mean(), 2), text::fixed(h.p50(), 1),
         text::fixed(h.p95(), 1), text::with_commas(h.max())});
}

}  // namespace

void Report::write_text(std::ostream& os, int top_n) const {
  if (profile) {
    os << "Flat profile (top " << top_n << " of " << profile->rows.size()
       << " rows; instructions = fetches):\n";
    text::Table t;
    std::vector<std::string> head = {"routine", "kind",   "instrs",
                                     "%",       "reads",  "writes"};
    for (const auto& c : profile->caches) head.push_back("imiss " + c.name());
    for (const auto& c : profile->caches) head.push_back("dmiss " + c.name());
    t.header(std::move(head));
    const double total =
        profile->total_fetches == 0
            ? 1.0
            : static_cast<double>(profile->total_fetches);
    for (const ProfileRow* r : profile->top(top_n)) {
      std::vector<std::string> cells = {
          r->name,
          tamc::symbol_kind_name(r->kind),
          text::with_commas(r->fetches),
          text::fixed(100.0 * static_cast<double>(r->fetches) / total, 1),
          text::with_commas(r->reads),
          text::with_commas(r->writes)};
      for (std::uint64_t m : r->imisses) cells.push_back(text::with_commas(m));
      for (std::uint64_t m : r->dmisses) cells.push_back(text::with_commas(m));
      t.row(std::move(cells));
    }
    t.print(os);
    os << "\n";
  }
  if (distributions) {
    os << "Distributions:\n";
    text::Table t;
    t.header({"metric", "count", "sum", "mean", "p50", "p95", "max"});
    histogram_row(t, "instructions / quantum", distributions->quantum_len);
    histogram_row(t, "threads / quantum", distributions->tpq);
    histogram_row(t, "instructions / thread", distributions->ipt);
    histogram_row(t, "instructions / inlet", distributions->inlet_len);
    histogram_row(t, "queue depth @ dispatch (low)",
                  distributions->queue_depth[0]);
    histogram_row(t, "queue depth @ dispatch (high)",
                  distributions->queue_depth[1]);
    histogram_row(t, "queue bytes @ dispatch (low)",
                  distributions->queue_bytes[0]);
    histogram_row(t, "queue bytes @ dispatch (high)",
                  distributions->queue_bytes[1]);
    t.print(os);
    os << "\n";
  }
  if (timeline) {
    os << "Timeline: " << text::with_commas(timeline->slices.size())
       << " slices, " << text::with_commas(timeline->instants.size())
       << " instants, " << text::with_commas(timeline->queue.size())
       << " queue samples over "
       << text::with_commas(timeline->total_instructions)
       << " instructions";
    if (timeline->dropped != 0) {
      os << " (" << text::with_commas(timeline->dropped)
         << " events past the cap were dropped)";
    }
    os << "\n\n";
  }
  if (locality) {
    locality->write_text(os, top_n);
  }
  if (host) {
    host->write_text(os);
    os << "\n";
  }
  if (pipeline) {
    os << "Trace pipeline: " << text::with_commas(pipeline->blocks)
       << " blocks, " << text::with_commas(pipeline->total_events())
       << " events ("
       << text::with_commas(
              static_cast<std::uint64_t>(pipeline->events_per_second()))
       << " events/s in drains; slowest block "
       << text::fixed(pipeline->max_block_seconds * 1e3, 2) << " ms)\n";
  }
}

}  // namespace jtam::obs
