#include "obs/flow.h"

#include <unordered_map>

#include "tamc/symbols.h"

namespace jtam::obs {

namespace {

/// Recording cap for the time-series sampler, mirroring max_hop_records'
/// role for hop records: past it, samples are counted but not stored.
constexpr std::size_t kMaxSamples = 1u << 20;

}  // namespace

const char* flow_msg_kind_name(FlowMsgKind k) {
  switch (k) {
    case FlowMsgKind::Boot:
      return "boot";
    case FlowMsgKind::Local:
      return "local";
    case FlowMsgKind::Remote:
      return "remote";
  }
  return "?";
}

const std::string& FlowTrace::name_of(const FlowMessage& m) const {
  static const std::string kEmpty;
  if (m.name_idx < 0) return kEmpty;
  return names[static_cast<std::size_t>(m.name_idx)];
}

Histogram FlowTrace::hop_histogram(int node) const {
  Histogram h;
  for (const FlowMessage& m : messages) {
    if (m.kind != FlowMsgKind::Remote || !m.delivered()) continue;
    if (node >= 0 && m.dest_node != node) continue;
    h.add(m.hops);
  }
  return h;
}

Histogram FlowTrace::latency_histogram(int node) const {
  Histogram h;
  for (const FlowMessage& m : messages) {
    if (m.kind != FlowMsgKind::Remote || !m.delivered()) continue;
    if (node >= 0 && m.dest_node != node) continue;
    h.add(m.net_latency);
  }
  return h;
}

std::uint64_t FlowTrace::stall_cycles(int node) const {
  std::uint64_t total = pending_stall[static_cast<std::size_t>(node)];
  for (const FlowMessage& m : messages) {
    if (m.kind == FlowMsgKind::Remote && m.src_node == node) {
      total += m.stall_cycles;
    }
  }
  return total;
}

std::uint64_t FlowTrace::handler_instructions(int node) const {
  std::uint64_t total = 0;
  for (const FlowMessage& m : messages) {
    if (m.dest_node == node) total += m.handler_instructions;
  }
  return total;
}

std::uint64_t FlowTrace::threads_started(int node) const {
  std::uint64_t total = 0;
  for (const FlowMessage& m : messages) {
    if (node < 0 || m.dest_node == node) total += m.threads_started;
  }
  return total;
}

std::uint64_t FlowTrace::inlets_started(int node) const {
  std::uint64_t total = 0;
  for (const FlowMessage& m : messages) {
    if (node < 0 || m.dest_node == node) total += m.inlets_started;
  }
  return total;
}

std::uint64_t FlowTrace::activations(int node) const {
  std::uint64_t total = 0;
  for (const FlowMessage& m : messages) {
    if (node < 0 || m.dest_node == node) total += m.activations;
  }
  return total;
}

void FlowTrace::attach_symbols(const tamc::SymbolMap& map) {
  // Resolve each distinct handler address once; messages naming the same
  // routine share one FlowTrace::names entry.
  std::unordered_map<std::uint32_t, std::int32_t> by_addr;
  for (FlowMessage& m : messages) {
    auto it = by_addr.find(m.handler);
    if (it == by_addr.end()) {
      std::int32_t idx = -1;
      if (const tamc::SymbolSpan* s = map.find(m.handler); s != nullptr) {
        idx = static_cast<std::int32_t>(names.size());
        names.push_back(s->name);
      }
      it = by_addr.emplace(m.handler, idx).first;
    }
    m.name_idx = it->second;
  }
}

FlowTracer::FlowTracer(const FlowOptions& opts, int num_nodes)
    : opts_(opts), num_nodes_(num_nodes) {
  levels_.resize(static_cast<std::size_t>(num_nodes) * 2);
  trace_.num_nodes = num_nodes;
  trace_.sample_every = opts.sample_every;
  trace_.pending_stall.assign(static_cast<std::size_t>(num_nodes), 0);
}

FlowMessage& FlowTracer::new_message(FlowMsgKind kind, int src, int dest,
                                     mdp::Priority p,
                                     std::span<const std::uint32_t> words) {
  FlowMessage m;
  m.id = trace_.messages.size() + 1;
  m.kind = kind;
  m.priority = p;
  m.src_node = static_cast<std::int16_t>(src);
  m.dest_node = static_cast<std::int16_t>(dest);
  m.handler = words.empty() ? 0 : words[0];
  m.length_words = static_cast<std::uint32_t>(words.size());
  trace_.messages.push_back(std::move(m));
  return trace_.messages.back();
}

void FlowTracer::on_boot(int node, mdp::Priority p,
                         std::span<const std::uint32_t> words) {
  // Host-side inject: the message materializes in the queue at round 0
  // with no sender, so every span stage up to delivery collapses.
  FlowMessage& m = new_message(FlowMsgKind::Boot, node, node, p, words);
  m.send_ts = now_;
  m.inject_ts = now_;
  m.deliver_ts = now_;
  at(node, p).mirror.push_back(m.id);
}

void FlowTracer::on_local_send(int node, mdp::Priority p,
                               mdp::Priority sender_level,
                               std::span<const std::uint32_t> words) {
  FlowMessage& m = new_message(FlowMsgKind::Local, node, node, p, words);
  m.parent = at(node, sender_level).current;
  m.send_ts = now_;
  m.inject_ts = now_;
  m.deliver_ts = now_;  // straight into the local queue: no transit
  at(node, p).mirror.push_back(m.id);
}

std::uint64_t FlowTracer::on_remote_send(int node, int dest_node,
                                         mdp::Priority p,
                                         mdp::Priority sender_level,
                                         std::span<const std::uint32_t> words) {
  FlowMessage& m = new_message(FlowMsgKind::Remote, node, dest_node, p, words);
  LevelState& ls = at(node, sender_level);
  m.parent = ls.current;
  // A send that had to wait for the network started at its first refused
  // attempt; its stalled rounds (possibly non-contiguous under
  // preemption) were accumulated by on_send_stall.
  m.send_ts = ls.pending_stall != 0 ? ls.pending_send_ts : now_;
  m.stall_cycles = ls.pending_stall;
  ls.pending_stall = 0;
  m.inject_ts = now_;
  return m.id;
}

void FlowTracer::on_send_stall(int node, mdp::Priority sender_level) {
  LevelState& ls = at(node, sender_level);
  if (ls.pending_stall == 0) ls.pending_send_ts = now_;
  ++ls.pending_stall;
}

void FlowTracer::on_dispatch(int node, mdp::Priority p) {
  LevelState& ls = at(node, p);
  if (ls.mirror.empty()) return;  // mirror desync guard; never expected
  ls.current = ls.mirror.front();
  msg(ls.current).dispatch_ts = now_;
}

void FlowTracer::on_consume(int node, mdp::Priority p) {
  LevelState& ls = at(node, p);
  if (ls.current != 0) msg(ls.current).finish_ts = now_;
  if (!ls.mirror.empty()) ls.mirror.pop_front();
  ls.current = 0;
}

void FlowTracer::on_instruction(int node, mdp::Priority p) {
  const std::uint64_t id = at(node, p).current;
  if (id != 0) ++msg(id).handler_instructions;
}

void FlowTracer::on_probe_mark(int node, mdp::MarkKind kind, std::uint32_t aux,
                               mdp::Priority p) {
  (void)aux;
  const std::uint64_t id = at(node, p).current;
  if (id == 0) return;
  FlowMessage& m = msg(id);
  switch (kind) {
    case mdp::MarkKind::ThreadStart:
      ++m.threads_started;
      break;
    case mdp::MarkKind::InletStart:
      ++m.inlets_started;
      break;
    case mdp::MarkKind::Activate:
      ++m.activations;
      break;
    default:
      break;  // SysStart / FpCall are not per-message attributed
  }
}

void FlowTracer::on_halt(int node, mdp::Priority p) {
  const std::uint64_t id = at(node, p).current;
  trace_.halt_msg = id;
  trace_.halt_node = node;
  // The halting handler is never consumed; close its span at the halt
  // round so the critical path's final segment has an end.
  if (id != 0) msg(id).finish_ts = now_;
}

void FlowTracer::on_hop(std::uint64_t flow_id, int link_src, int link_dst,
                        std::uint64_t now) {
  if (flow_id == 0) return;
  if (hop_records_ >= opts_.max_hop_records) {
    ++trace_.dropped_hops;
    return;
  }
  ++hop_records_;
  msg(flow_id).path.push_back(FlowHop{link_src, link_dst, now});
}

void FlowTracer::on_deliver(std::uint64_t flow_id, int dest, mdp::Priority p,
                            std::uint32_t hops, std::uint64_t latency,
                            std::uint64_t now) {
  if (flow_id == 0) return;
  FlowMessage& m = msg(flow_id);
  m.deliver_ts = now;
  m.hops = hops;
  m.net_latency = latency;
  // The model hands the message to its sink (the real queue) right after
  // this callback, so pushing here keeps the mirror in enqueue order.
  at(dest, p).mirror.push_back(flow_id);
}

void FlowTracer::on_round(const mdp::MultiMachine& mm, std::uint64_t round) {
  now_ = round;
  if (opts_.sample_every == 0 || round % opts_.sample_every != 0) return;
  if (trace_.samples.size() >= kMaxSamples) {
    ++trace_.dropped_samples;
    return;
  }
  const net::NetStats& ns = mm.network().stats();
  FlowSample s;
  s.round = round;
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  s.queue_depth_low.reserve(n);
  s.queue_depth_high.reserve(n);
  s.node_instructions.reserve(n);
  s.node_stall_cycles.reserve(n);
  for (int i = 0; i < num_nodes_; ++i) {
    const mdp::Machine& m = mm.node(i);
    s.queue_depth_low.push_back(
        static_cast<std::uint32_t>(m.queue_depth(mdp::Priority::Low)));
    s.queue_depth_high.push_back(
        static_cast<std::uint32_t>(m.queue_depth(mdp::Priority::High)));
    s.node_instructions.push_back(m.instructions_executed());
    s.node_stall_cycles.push_back(m.injection_stall_cycles());
  }
  s.link_flits.reserve(ns.links.size());
  for (const net::LinkStats& l : ns.links) s.link_flits.push_back(l.flits);
  s.messages_delivered = ns.messages;
  s.net_flits = ns.flits;
  trace_.samples.push_back(std::move(s));
}

FlowTrace FlowTracer::finish(const mdp::MultiMachine& mm) {
  trace_.final_round = mm.rounds();
  trace_.links = mm.network().stats().links;
  for (int n = 0; n < num_nodes_; ++n) {
    trace_.pending_stall[static_cast<std::size_t>(n)] =
        at(n, mdp::Priority::Low).pending_stall +
        at(n, mdp::Priority::High).pending_stall;
  }
  return std::move(trace_);
}

}  // namespace jtam::obs
