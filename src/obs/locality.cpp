#include "obs/locality.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/export.h"
#include "support/json.h"
#include "support/text.h"

namespace jtam::obs {

const char* access_class_name(AccessClass c) {
  switch (c) {
    case AccessClass::Frame: return "frame";
    case AccessClass::Heap: return "heap";
    case AccessClass::Queue: return "queue";
    case AccessClass::Global: return "global";
  }
  return "?";
}

namespace {

std::size_t headline_index(const std::vector<cache::CacheConfig>& ladder) {
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].size_bytes == 8 * 1024 && ladder[i].assoc == 4) return i;
  }
  return 0;
}

}  // namespace

LocalityCollector::LocalityCollector(
    const tamc::SymbolMap* map,
    const std::vector<cache::CacheConfig>& ladder, mem::Addr frame_heap_base)
    : ctx_(map),
      frame_base_(frame_heap_base),
      headline_(headline_index(ladder)),
      istream_(ladder, static_cast<std::uint32_t>(map->spans().size() + 2)),
      dstream_(ladder, static_cast<std::uint32_t>(
                           (map->spans().size() + 2) * kNumAccessClasses)) {}

void LocalityCollector::on_block(const mdp::TraceBuffer& buf) {
  ctx_.walk(
      buf,
      [&](std::uint32_t row, mem::Addr addr) {
        istream_.access(addr & ~3u, /*is_write=*/false, row);
      },
      [&](std::uint32_t row, mem::Addr addr, bool is_write) {
        const auto cls = classify_access(addr, frame_base_);
        dstream_.access(addr, is_write,
                        row * kNumAccessClasses +
                            static_cast<std::uint32_t>(cls));
      });
  fetch_cum_ += buf.fetch().size();

  // One cumulative-miss sample per block at the headline config — the
  // Perfetto counter track's resolution.
  LocalityReport::Sample s;
  s.ts = fetch_cum_;
  const std::uint32_t nrows = static_cast<std::uint32_t>(ctx_.num_rows());
  for (std::uint32_t r = 0; r < nrows; ++r) {
    s.imiss += istream_.stats_for(headline_, r).misses;
    for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
      s.dmiss[c] +=
          dstream_.stats_for(headline_, r * kNumAccessClasses + c).misses;
    }
  }
  series_.push_back(s);
}

LocalityReport LocalityCollector::finish() {
  LocalityReport rep;
  rep.configs = istream_.configs();
  rep.headline = headline_;
  rep.rd_window = istream_.rd_window();
  rep.series = std::move(series_);

  const tamc::SymbolMap& map = ctx_.map();
  const std::size_t nrows = ctx_.num_rows();
  rep.rows.resize(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    LocalityReport::Row& row = rep.rows[r];
    if (r < map.spans().size()) {
      const tamc::SymbolSpan& s = map.spans()[r];
      row.name = s.name;
      row.kind = s.kind;
      row.cb = s.cb;
      row.idx = s.idx;
    } else {
      row.name = r == ctx_.row_unmapped() ? "(unmapped)" : "(dispatch)";
    }
  }

  const std::size_t ncfg = rep.configs.size();
  const std::size_t ndkeys = nrows * kNumAccessClasses;
  rep.iacc.resize(nrows);
  rep.imiss.resize(ncfg * nrows);
  rep.ird.resize(nrows * LocalityReport::kRdBuckets);
  rep.dacc.resize(ndkeys);
  rep.dmiss.resize(ncfg * ndkeys);
  rep.dwb.resize(ncfg * ndkeys);
  rep.drd.resize(ndkeys * LocalityReport::kRdBuckets);

  for (std::uint32_t r = 0; r < nrows; ++r) {
    rep.iacc[r] = istream_.accesses_of(r);
    const std::uint64_t* h = istream_.rd_hist(r);
    for (std::uint32_t b = 0; b < LocalityReport::kRdBuckets; ++b) {
      rep.ird[r * LocalityReport::kRdBuckets + b] = h[b];
    }
    for (std::size_t c = 0; c < ncfg; ++c) {
      rep.imiss[c * nrows + r] = istream_.stats_for(c, r).misses;
    }
  }
  for (std::uint32_t k = 0; k < ndkeys; ++k) {
    rep.dacc[k] = dstream_.accesses_of(k);
    const std::uint64_t* h = dstream_.rd_hist(k);
    for (std::uint32_t b = 0; b < LocalityReport::kRdBuckets; ++b) {
      rep.drd[k * LocalityReport::kRdBuckets + b] = h[b];
    }
    for (std::size_t c = 0; c < ncfg; ++c) {
      const cache::CacheStats st = dstream_.stats_for(c, k);
      rep.dmiss[c * ndkeys + k] = st.misses;
      rep.dwb[c * ndkeys + k] = st.writebacks;
    }
  }
  return rep;
}

std::uint64_t LocalityReport::symbol_accesses(std::uint32_t row) const {
  std::uint64_t n = iacc[row];
  for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
    n += dacc[row * kNumAccessClasses + c];
  }
  return n;
}

std::uint64_t LocalityReport::symbol_misses(std::uint32_t row,
                                            std::size_t cfg) const {
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  std::uint64_t n = imiss[cfg * rows.size() + row];
  for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
    n += dmiss[cfg * ndkeys + row * kNumAccessClasses + c];
  }
  return n;
}

std::vector<double> LocalityReport::symbol_mrc(std::uint32_t row) const {
  const std::uint64_t acc = symbol_accesses(row);
  std::vector<double> mrc(configs.size(), 0.0);
  if (acc == 0) return mrc;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    mrc[c] = static_cast<double>(symbol_misses(row, c)) /
             static_cast<double>(acc);
  }
  return mrc;
}

std::uint64_t LocalityReport::class_accesses(AccessClass c) const {
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    n += dacc[r * kNumAccessClasses + static_cast<std::uint32_t>(c)];
  }
  return n;
}

std::uint64_t LocalityReport::class_misses(AccessClass c,
                                           std::size_t cfg) const {
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    n += dmiss[cfg * ndkeys + r * kNumAccessClasses +
               static_cast<std::uint32_t>(c)];
  }
  return n;
}

std::uint64_t LocalityReport::class_writebacks(AccessClass c,
                                               std::size_t cfg) const {
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    n += dwb[cfg * ndkeys + r * kNumAccessClasses +
             static_cast<std::uint32_t>(c)];
  }
  return n;
}

std::vector<std::uint64_t> LocalityReport::class_rd_hist(
    AccessClass c) const {
  std::vector<std::uint64_t> h(kRdBuckets, 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t key = r * kNumAccessClasses +
                            static_cast<std::uint32_t>(c);
    for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
      h[b] += drd[key * kRdBuckets + b];
    }
  }
  return h;
}

cache::CacheStats LocalityReport::itotal(std::size_t cfg) const {
  cache::CacheStats s;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    s.accesses += iacc[r];
    s.misses += imiss[cfg * rows.size() + r];
  }
  return s;
}

cache::CacheStats LocalityReport::dtotal(std::size_t cfg) const {
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  cache::CacheStats s;
  for (std::size_t k = 0; k < ndkeys; ++k) {
    s.accesses += dacc[k];
    s.misses += dmiss[cfg * ndkeys + k];
    s.writebacks += dwb[cfg * ndkeys + k];
  }
  return s;
}

double LocalityReport::rd_percentile(const std::vector<std::uint64_t>& hist,
                                     double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t h : hist) total += h;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
    cum += hist[b];
    if (static_cast<double>(cum) >= target) {
      return b + 1 == kRdBuckets
                 ? static_cast<double>(rd_window)
                 : static_cast<double>(
                       cache::AttrStackStream::rd_bucket_floor(b));
    }
  }
  return static_cast<double>(rd_window);
}

double LocalityReport::frame_rd_percentile(double q) const {
  return rd_percentile(class_rd_hist(AccessClass::Frame), q);
}

void LocalityReport::write_text(std::ostream& os, int top_n) const {
  const cache::CacheConfig& hc = configs[headline];
  const cache::CacheStats it = itotal(headline);
  const cache::CacheStats dt = dtotal(headline);
  os << "Locality attribution (" << configs.size()
     << " configs, headline " << hc.name() << "):\n"
     << "  I-stream: " << text::with_commas(it.accesses) << " fetches, "
     << text::with_commas(it.misses) << " misses @ headline; D-stream: "
     << text::with_commas(dt.accesses) << " accesses, "
     << text::with_commas(dt.misses) << " misses, "
     << text::with_commas(dt.writebacks) << " writebacks\n";

  text::Table cls;
  cls.header({"class", "accesses", "misses", "miss%", "writebacks",
              "rd p50", "rd p95"});
  for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
    const auto ac = static_cast<AccessClass>(c);
    const std::uint64_t acc = class_accesses(ac);
    if (acc == 0) continue;
    const std::uint64_t miss = class_misses(ac, headline);
    const std::vector<std::uint64_t> h = class_rd_hist(ac);
    cls.row({access_class_name(ac), text::with_commas(acc),
             text::with_commas(miss),
             text::fixed(100.0 * static_cast<double>(miss) /
                             static_cast<double>(acc),
                         2),
             text::with_commas(class_writebacks(ac, headline)),
             text::fixed(rd_percentile(h, 0.50), 0),
             text::fixed(rd_percentile(h, 0.95), 0)});
  }
  cls.print(os);
  os << "  frame reuse distance: p50 "
     << text::fixed(frame_rd_percentile(0.50), 0) << ", p90 "
     << text::fixed(frame_rd_percentile(0.90), 0) << ", p99 "
     << text::fixed(frame_rd_percentile(0.99), 0) << " distinct blocks"
     << " (window " << rd_window << ")\n";

  // Symbol scorecard: rows ranked by total misses at the headline config,
  // with the best/worst point of each symbol's miss-ratio curve.
  std::vector<std::uint32_t> order;
  for (std::uint32_t r = 0; r < rows.size(); ++r) {
    if (symbol_accesses(r) != 0) order.push_back(r);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return symbol_misses(a, headline) >
                            symbol_misses(b, headline);
                   });
  if (top_n > 0 && order.size() > static_cast<std::size_t>(top_n)) {
    order.resize(static_cast<std::size_t>(top_n));
  }
  os << "  top symbols by misses @ " << hc.name() << ":\n";
  text::Table t;
  t.header({"symbol", "kind", "refs", "misses", "miss%", "mrc min%",
            "mrc max%"});
  for (std::uint32_t r : order) {
    const std::uint64_t acc = symbol_accesses(r);
    const std::uint64_t miss = symbol_misses(r, headline);
    const std::vector<double> mrc = symbol_mrc(r);
    const auto [lo, hi] = std::minmax_element(mrc.begin(), mrc.end());
    t.row({rows[r].name, tamc::symbol_kind_name(rows[r].kind),
           text::with_commas(acc), text::with_commas(miss),
           text::fixed(100.0 * static_cast<double>(miss) /
                           static_cast<double>(acc),
                       2),
           text::fixed(100.0 * *lo, 2), text::fixed(100.0 * *hi, 2)});
  }
  t.print(os);
  os << "\n";
}

void LocalityReport::write_csv(std::ostream& os) const {
  os << "name,kind,cb,idx,stream,class,accesses,rd_p50,rd_p95";
  for (const auto& c : configs) os << ",miss_" << c.name();
  os << "\n";
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    if (iacc[r] != 0) {
      std::vector<std::uint64_t> h(kRdBuckets);
      for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
        h[b] = ird[r * kRdBuckets + b];
      }
      os << csv_escape(row.name) << ','
         << tamc::symbol_kind_name(row.kind) << ',' << row.cb << ','
         << row.idx << ",I,," << iacc[r] << ','
         << rd_percentile(h, 0.50) << ',' << rd_percentile(h, 0.95);
      for (std::size_t c = 0; c < configs.size(); ++c) {
        os << ',' << imiss[c * rows.size() + r];
      }
      os << "\n";
    }
    for (std::uint32_t cl = 0; cl < kNumAccessClasses; ++cl) {
      const std::size_t key = r * kNumAccessClasses + cl;
      if (dacc[key] == 0) continue;
      std::vector<std::uint64_t> h(kRdBuckets);
      for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
        h[b] = drd[key * kRdBuckets + b];
      }
      os << csv_escape(row.name) << ','
         << tamc::symbol_kind_name(row.kind) << ',' << row.cb << ','
         << row.idx << ",D," << access_class_name(static_cast<AccessClass>(cl))
         << ',' << dacc[key] << ',' << rd_percentile(h, 0.50) << ','
         << rd_percentile(h, 0.95);
      for (std::size_t c = 0; c < configs.size(); ++c) {
        os << ',' << dmiss[c * ndkeys + key];
      }
      os << "\n";
    }
  }
}

void LocalityReport::write_json(std::ostream& os) const {
  const std::size_t ndkeys = rows.size() * kNumAccessClasses;
  os << "{\n  \"schema_version\": " << kObsSchemaVersion
     << ",\n  \"headline\": " << headline
     << ",\n  \"rd_window\": " << rd_window << ",\n  \"configs\": [";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    os << (i == 0 ? "" : ", ") << "{\"name\": \"" << json::escape(c.name())
       << "\", \"size_bytes\": " << c.size_bytes
       << ", \"block_bytes\": " << c.block_bytes
       << ", \"assoc\": " << c.assoc << "}";
  }
  os << "],\n  \"classes\": [";
  for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
    os << (c == 0 ? "" : ", ") << '"'
       << access_class_name(static_cast<AccessClass>(c)) << '"';
  }
  os << "],\n  \"rows\": [";
  JsonListSep sep;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (symbol_accesses(static_cast<std::uint32_t>(r)) == 0) continue;
    const Row& row = rows[r];
    sep.next(os) << "    {\"name\": \"" << json::escape(row.name)
                 << "\", \"kind\": \"" << tamc::symbol_kind_name(row.kind)
                 << "\", \"cb\": " << row.cb << ", \"idx\": " << row.idx
                 << ",\n     \"iacc\": " << iacc[r] << ", \"imiss\": [";
    for (std::size_t c = 0; c < configs.size(); ++c) {
      os << (c == 0 ? "" : ", ") << imiss[c * rows.size() + r];
    }
    os << "],\n     \"ird\": [";
    for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
      os << (b == 0 ? "" : ", ") << ird[r * kRdBuckets + b];
    }
    os << "],\n     \"d\": [";
    bool firstcls = true;
    for (std::uint32_t cl = 0; cl < kNumAccessClasses; ++cl) {
      const std::size_t key = r * kNumAccessClasses + cl;
      if (dacc[key] == 0) continue;
      os << (firstcls ? "" : ", ") << "{\"class\": \""
         << access_class_name(static_cast<AccessClass>(cl))
         << "\", \"acc\": " << dacc[key] << ", \"miss\": [";
      firstcls = false;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        os << (c == 0 ? "" : ", ") << dmiss[c * ndkeys + key];
      }
      os << "], \"wb\": [";
      for (std::size_t c = 0; c < configs.size(); ++c) {
        os << (c == 0 ? "" : ", ") << dwb[c * ndkeys + key];
      }
      os << "], \"rd\": [";
      for (std::uint32_t b = 0; b < kRdBuckets; ++b) {
        os << (b == 0 ? "" : ", ") << drd[key * kRdBuckets + b];
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "\n  ],\n  \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Sample& s = series[i];
    os << (i == 0 ? "" : ", ") << "{\"ts\": " << s.ts
       << ", \"imiss\": " << s.imiss << ", \"dmiss\": [";
    for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
      os << (c == 0 ? "" : ", ") << s.dmiss[c];
    }
    os << "]}";
  }
  os << "]\n}\n";
}

LocalityDiff LocalityReport::diff(const LocalityReport& md,
                                  const LocalityReport& am,
                                  std::size_t cfg) {
  LocalityDiff d;
  d.config = md.configs[cfg];
  // Match symbols by name: the two back-ends lower the same program, but
  // span layout (and even span presence) can differ.
  std::map<std::string, LocalityDiff::Entry> byname;
  for (std::uint32_t r = 0; r < md.rows.size(); ++r) {
    const std::uint64_t acc = md.symbol_accesses(r);
    if (acc == 0) continue;
    LocalityDiff::Entry& e = byname[md.rows[r].name];
    e.name = md.rows[r].name;
    e.kind = md.rows[r].kind;
    e.md_accesses += acc;
    e.md_misses += md.symbol_misses(r, cfg);
  }
  for (std::uint32_t r = 0; r < am.rows.size(); ++r) {
    const std::uint64_t acc = am.symbol_accesses(r);
    if (acc == 0) continue;
    LocalityDiff::Entry& e = byname[am.rows[r].name];
    if (e.name.empty()) {
      e.name = am.rows[r].name;
      e.kind = am.rows[r].kind;
    }
    e.am_accesses += acc;
    e.am_misses += am.symbol_misses(r, cfg);
  }
  d.entries.reserve(byname.size());
  for (auto& [name, e] : byname) d.entries.push_back(std::move(e));
  std::stable_sort(d.entries.begin(), d.entries.end(),
                   [](const LocalityDiff::Entry& a,
                      const LocalityDiff::Entry& b) {
                     const auto mag = [](const LocalityDiff::Entry& e) {
                       const std::int64_t v = e.delta();
                       return v < 0 ? -v : v;
                     };
                     return mag(a) > mag(b);
                   });
  return d;
}

void LocalityDiff::write_text(std::ostream& os, int top_n) const {
  os << "MD vs AM locality diff @ " << config.name()
     << " (+ = MD misses more):\n";
  text::Table t;
  t.header({"symbol", "kind", "MD miss", "AM miss", "delta", "MD miss%",
            "AM miss%"});
  int shown = 0;
  for (const Entry& e : entries) {
    if (top_n > 0 && shown >= top_n) break;
    if (e.delta() == 0 && e.md_misses == 0) continue;
    const std::int64_t delta = e.delta();
    t.row({e.name, tamc::symbol_kind_name(e.kind),
           text::with_commas(e.md_misses), text::with_commas(e.am_misses),
           (delta >= 0 ? "+" : "-") +
               text::with_commas(static_cast<std::uint64_t>(
                   delta >= 0 ? delta : -delta)),
           text::fixed(100.0 * e.md_miss_rate(), 2),
           text::fixed(100.0 * e.am_miss_rate(), 2)});
    ++shown;
  }
  t.print(os);
  os << "\n";
}

void write_locality_chrome_trace(
    std::ostream& os, const std::vector<LocalityTimelineRun>& runs) {
  os << "{\"traceEvents\": [";
  JsonListSep sep;
  int pid = 0;
  for (const LocalityTimelineRun& run : runs) {
    ++pid;
    if (run.timeline != nullptr) {
      emit_timeline_process(os, sep, pid, run.label, *run.timeline);
    } else {
      sep.next(os) << " {\"name\": \"process_name\", \"ph\": \"M\", "
                   << "\"pid\": " << pid << ", \"args\": {\"name\": \""
                   << json::escape(run.label) << "\"}}";
    }
    if (run.locality == nullptr) continue;
    const LocalityReport& loc = *run.locality;
    for (const LocalityReport::Sample& s : loc.series) {
      sep.next(os) << " {\"name\": \"imiss (cum)\", \"ph\": \"C\", "
                   << "\"pid\": " << pid << ", \"ts\": " << s.ts
                   << ", \"args\": {\"misses\": " << s.imiss << "}}";
      sep.next(os) << " {\"name\": \"dmiss by class (cum)\", \"ph\": \"C\", "
                   << "\"pid\": " << pid << ", \"ts\": " << s.ts
                   << ", \"args\": {";
      for (std::uint32_t c = 0; c < kNumAccessClasses; ++c) {
        os << (c == 0 ? "" : ", ") << '"'
           << access_class_name(static_cast<AccessClass>(c))
           << "\": " << s.dmiss[c];
      }
      os << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace jtam::obs
