#include "obs/signals.h"

#include <cstring>
#include <ostream>

#include "obs/export.h"
#include "obs/replay.h"
#include "support/error.h"

namespace jtam::obs {

// --- SignalBoard -----------------------------------------------------------
//
// Seqlock discipline (Boehm, "Can seqlocks get along with programming
// language memory models?"): every shared word is an atomic, so there is
// no formal data race for TSan to flag; the fences give the classic
// odd/even protocol its ordering.

void SignalBoard::publish(const SignalFrame& f) {
  std::uint64_t buf[kWords];
  std::memcpy(buf, &f, sizeof(f));
  const std::uint64_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i) {
    words_[i].store(buf[i], std::memory_order_relaxed);
  }
  seq_.store(s + 2, std::memory_order_release);  // even: frame s/2+1 live
}

bool SignalBoard::read(SignalFrame& out) const {
  std::uint64_t buf[kWords];
  for (;;) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 == 0) return false;
    if ((s1 & 1) != 0) continue;  // writer mid-publish
    for (std::size_t i = 0; i < kWords; ++i) {
      buf[i] = words_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == s1) {
      std::memcpy(&out, buf, sizeof(out));
      return true;
    }
  }
}

// --- SignalAccumulator -----------------------------------------------------

SignalAccumulator::SignalAccumulator(rt::BackendKind backend,
                                     const tamc::SymbolMap* map, double alpha)
    : builder_(backend), map_(map), alpha_(alpha) {}

void SignalAccumulator::close_run(int level) {
  const int cb = run_cb_[level];
  if (cb >= 0 && run_len_[level] > 0) {
    CodeblockSignal& sig = cb_[cb];
    const double len = static_cast<double>(run_len_[level]);
    sig.run_len_ewma = sig.runs <= 1
                           ? len
                           : alpha_ * len + (1.0 - alpha_) * sig.run_len_ewma;
  }
  run_cb_[level] = -1;
  run_len_[level] = 0;
  pending_[level] = false;
}

void SignalAccumulator::on_block(const mdp::TraceBuffer& buf) {
  builder_.on_block(buf);
  walk_fetches(
      buf,
      [&](const mdp::TraceBuffer::Mark& m) {
        switch (static_cast<mdp::MarkKind>(m.kind)) {
          case mdp::MarkKind::ThreadStart:
          case mdp::MarkKind::InletStart:
            close_run(m.level);
            pending_[m.level] = true;
            break;
          case mdp::MarkKind::SysStart:
            close_run(m.level);
            break;
          default:
            break;
        }
      },
      [&](std::size_t, mem::Addr addr, mdp::Priority p) {
        const int l = static_cast<int>(p);
        // Codeblock of this fetch, through a one-span cache (runs execute
        // straight-line code far more often than they cross routines).
        if (last_span_ == nullptr || addr < last_span_->begin ||
            addr >= last_span_->end) {
          last_span_ = map_ != nullptr ? map_->find(addr) : nullptr;
        }
        const int cb =
            last_span_ != nullptr && last_span_->cb >= 0 &&
                    last_span_->cb < rt::kMaxCodeblocks
                ? last_span_->cb
                : -1;
        if (cb >= 0) {
          ++cb_[cb].instrs;
          if (cb + 1 > num_cb_) num_cb_ = cb + 1;
        }
        if (pending_[l]) {
          pending_[l] = false;
          run_cb_[l] = cb;
          run_len_[l] = 0;
          if (cb >= 0) ++cb_[cb].runs;
        }
        if (run_cb_[l] >= 0) ++run_len_[l];
      });
}

void SignalAccumulator::fill_codeblocks(SignalFrame& f) const {
  f.num_codeblocks = static_cast<std::uint32_t>(num_cb_);
  for (int i = 0; i < num_cb_; ++i) f.cb[i] = cb_[i];
}

// --- SignalHub -------------------------------------------------------------

struct SignalHub::PerNode {
  std::unique_ptr<SignalAccumulator> acc;
  std::unique_ptr<mdp::TraceBuffer> buf;
  SignalBoard board;
  SignalFrame prev;  // last published frame (EWMA deltas)
  bool published = false;
};

SignalHub::SignalHub(const SignalOptions& opts, rt::BackendKind backend,
                     const tamc::CompiledProgram& compiled, int num_nodes)
    : opts_(opts), symbols_(tamc::SymbolMap::from(compiled)) {
  JTAM_CHECK(opts_.publish_every >= 1, "signal publish interval must be >= 1");
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    auto pn = std::make_unique<PerNode>();
    pn->acc =
        std::make_unique<SignalAccumulator>(backend, &symbols_, opts_.alpha);
    pn->buf = std::make_unique<mdp::TraceBuffer>(pn->acc.get());
    nodes_.push_back(std::move(pn));
  }
}

SignalHub::~SignalHub() = default;

mdp::TraceBuffer* SignalHub::node_buffer(int n) {
  return nodes_[static_cast<std::size_t>(n)]->buf.get();
}

const SignalBoard& SignalHub::board(int n) const {
  return nodes_[static_cast<std::size_t>(n)]->board;
}

namespace {

/// EWMA step over one publish interval: `count` new samples of total
/// `sum`.  No new samples -> keep; first samples ever -> seed with the
/// interval mean.
double ewma_step(double prev, bool seeded, double alpha, std::uint64_t count,
                 std::uint64_t sum) {
  if (count == 0) return prev;
  const double mean = static_cast<double>(sum) / static_cast<double>(count);
  return seeded ? alpha * mean + (1.0 - alpha) * prev : mean;
}

}  // namespace

void SignalHub::publish(const mdp::MultiMachine& mm, std::uint64_t round,
                        bool final) {
  for (int n = 0; n < num_nodes(); ++n) {
    PerNode& pn = *nodes_[static_cast<std::size_t>(n)];
    pn.buf->flush();
    const Distributions d = pn.acc->distributions();

    SignalFrame f;
    f.seq = pn.prev.seq + 1;
    f.round = round;
    f.final_frame = final ? 1 : 0;
    f.quanta = d.quantum_len.count();
    f.quantum_instrs = d.quantum_len.sum();
    f.threads = d.ipt.count();
    f.thread_instrs = d.ipt.sum();
    f.inlets = d.inlet_len.count();
    f.inlet_instrs = d.inlet_len.sum();
    for (int l = 0; l < 2; ++l) {
      f.dispatches[l] = d.queue_depth[l].count();
      f.queue_depth_sum[l] = d.queue_depth[l].sum();
      f.queue_bytes_sum[l] = d.queue_bytes[l].sum();
    }

    const mdp::Machine& m = mm.node(n);
    f.instructions = m.instructions_executed();
    f.send_stall_cycles = m.injection_stall_cycles();
    f.queue_depth_now[0] =
        static_cast<std::uint32_t>(m.queue_depth(mdp::Priority::Low));
    f.queue_depth_now[1] =
        static_cast<std::uint32_t>(m.queue_depth(mdp::Priority::High));

    // Interval deltas against the previous frame drive the EWMAs.  A
    // frame's snapshot may close runs the next interval reopens, so a
    // delta can transiently be "negative" in sum terms; clamp at zero —
    // the streaming view tolerates it, the cumulative counters above are
    // the exact ones.
    const SignalFrame& p = pn.prev;
    auto delta = [](std::uint64_t cur, std::uint64_t old) {
      return cur >= old ? cur - old : 0;
    };
    const bool seeded = pn.published;
    f.quantum_len_ewma =
        ewma_step(p.quantum_len_ewma, seeded, opts_.alpha,
                  delta(f.quanta, p.quanta),
                  delta(f.quantum_instrs, p.quantum_instrs));
    f.inlet_run_ewma = ewma_step(p.inlet_run_ewma, seeded, opts_.alpha,
                                 delta(f.inlets, p.inlets),
                                 delta(f.inlet_instrs, p.inlet_instrs));
    for (int l = 0; l < 2; ++l) {
      f.queue_depth_ewma[l] =
          ewma_step(p.queue_depth_ewma[l], seeded, opts_.alpha,
                    delta(f.dispatches[l], p.dispatches[l]),
                    delta(f.queue_depth_sum[l], p.queue_depth_sum[l]));
    }
    f.stall_rate_ewma = ewma_step(
        p.stall_rate_ewma, seeded, opts_.alpha, delta(round, p.round),
        delta(f.send_stall_cycles, p.send_stall_cycles));

    pn.acc->fill_codeblocks(f);
    pn.board.publish(f);
    pn.prev = f;
    pn.published = true;
  }
}

SignalSnapshot SignalHub::finish() {
  SignalSnapshot out;
  out.publish_every = opts_.publish_every;
  out.alpha = opts_.alpha;
  out.nodes.reserve(nodes_.size());
  for (auto& pn : nodes_) {
    pn->buf->flush();
    out.nodes.push_back(SignalSnapshot::Node{pn->prev, pn->acc->distributions()});
  }
  return out;
}

void SignalSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": " << kObsSchemaVersion
     << ",\n  \"publish_every\": " << publish_every
     << ",\n  \"alpha\": " << alpha << ",\n  \"nodes\": [";
  JsonListSep nsep;
  for (const Node& node : nodes) {
    const SignalFrame& f = node.frame;
    const bool ok = f.seq != 0;
    nsep.next(os) << "    {\"published\": " << (ok ? "true" : "false");
    if (ok) {
      os << ", \"seq\": " << f.seq << ", \"round\": " << f.round
         << ", \"final\": " << (f.final_frame != 0 ? "true" : "false")
         << ",\n     \"instructions\": " << f.instructions
         << ", \"quanta\": " << f.quanta << ", \"quantum_instrs\": "
         << f.quantum_instrs << ", \"threads\": " << f.threads
         << ", \"thread_instrs\": " << f.thread_instrs << ", \"inlets\": "
         << f.inlets << ", \"inlet_instrs\": " << f.inlet_instrs
         << ",\n     \"dispatches\": [" << f.dispatches[0] << ", "
         << f.dispatches[1] << "], \"queue_depth_sum\": ["
         << f.queue_depth_sum[0] << ", " << f.queue_depth_sum[1]
         << "], \"queue_bytes_sum\": [" << f.queue_bytes_sum[0] << ", "
         << f.queue_bytes_sum[1] << "], \"queue_depth_now\": ["
         << f.queue_depth_now[0] << ", " << f.queue_depth_now[1]
         << "], \"send_stall_cycles\": " << f.send_stall_cycles
         << ",\n     \"quantum_len_ewma\": " << f.quantum_len_ewma
         << ", \"inlet_run_ewma\": " << f.inlet_run_ewma
         << ", \"queue_depth_ewma\": [" << f.queue_depth_ewma[0] << ", "
         << f.queue_depth_ewma[1] << "], \"stall_rate_ewma\": "
         << f.stall_rate_ewma << ",\n     \"codeblocks\": [";
      JsonListSep csep;
      for (std::uint32_t c = 0; c < f.num_codeblocks; ++c) {
        const CodeblockSignal& s = f.cb[c];
        if (s.instrs == 0 && s.runs == 0) continue;
        csep.next(os) << "      {\"cb\": " << c << ", \"instrs\": "
                      << s.instrs << ", \"runs\": " << s.runs
                      << ", \"run_len_ewma\": " << s.run_len_ewma << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace jtam::obs
