// Causal message tracing across the multi-node ensemble.
//
// obs::FlowTracer sits on three observation seams at once — every node's
// mdp::FlowProbe, the network's net::FlowObserver, and the ensemble's
// mdp::RoundHook — and assembles one FlowMessage per message the run ever
// carried: a trace id, the causal parent (the message whose handler
// executed the SENDE), and the full span ladder send -> inject -> deliver
// -> dispatch -> finish in round timestamps, plus per-hop link records on
// the mesh.  That is a complete latency decomposition for every message:
//
//   inject wait   send_ts    .. inject_ts    (injection backpressure; the
//                                             stalled rounds are exactly
//                                             stall_cycles)
//   net transit   inject_ts  .. deliver_ts   (== net_latency, the value
//                                             the network's own latency
//                                             histogram records)
//   queue wait    deliver_ts .. dispatch_ts  (residency in the hardware
//                                             message queue)
//   handler       dispatch_ts .. finish_ts   (handler_instructions of
//                                             compute, marks attributed)
//
// Everything the tracer records *refines* a counter the machine or the
// network already keeps, and the refinement is bit-exact: per-message hop
// and latency records rebuild NetStats::hops/latency exactly, per-message
// stall cycles (plus the still-pending remainder) sum to each node's
// injection_stall_cycles(), handler instruction counts sum to each node's
// instructions_executed(), and mark counts match the Granularity totals —
// all pinned by tests/flow_test.cpp over {ideal, mesh} x {MD, AM}.
//
// The tracer is observation-only (no measured state is touched; results
// are bit-identical with tracing on) and zero-cost when off (every hook
// site is one null test).  The message-identity scheme leans on a machine
// invariant: hardware queues are FIFO and every message is dispatched
// exactly once, so a per-(node, level) mirror of trace ids, pushed in
// enqueue order, names the dispatched message without touching the
// machine.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mdp/multi.h"
#include "net/network.h"
#include "obs/histogram.h"
#include "obs/options.h"

namespace jtam::tamc {
class SymbolMap;
}

namespace jtam::obs {

/// How a message entered its destination queue.
enum class FlowMsgKind : std::uint8_t {
  Boot = 0,    // host-side inject before the run (causal root)
  Local = 1,   // SENDE into the sender's own queue
  Remote = 2,  // SENDE through the network
};

const char* flow_msg_kind_name(FlowMsgKind k);

/// One link traversal of a message's head flit (mesh only).
struct FlowHop {
  int from = 0;
  int to = 0;
  std::uint64_t ts = 0;  // round the flit crossed the link
};

/// Timestamp value for "this stage never happened".
inline constexpr std::uint64_t kFlowNoTs = ~0ULL;

/// Everything recorded about one message.  Flow ids are dense and start
/// at 1; id 0 means "no message" (e.g. FlowMessage::parent of a root).
struct FlowMessage {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // message whose handler sent this one
  FlowMsgKind kind = FlowMsgKind::Boot;
  mdp::Priority priority = mdp::Priority::Low;  // queue level == handler level
  std::int16_t src_node = 0;
  std::int16_t dest_node = 0;
  std::uint32_t handler = 0;       // word 0: the handler/inlet address
  std::uint32_t length_words = 0;
  std::int32_t name_idx = -1;      // into FlowTrace::names (attach_symbols)

  // Span timestamps, in rounds.  Boot/Local messages have
  // send == inject == deliver (no network transit).  kFlowNoTs marks a
  // stage the run ended before reaching.
  std::uint64_t send_ts = 0;                 // first SENDE attempt
  std::uint64_t inject_ts = 0;               // network accepted the message
  std::uint64_t deliver_ts = kFlowNoTs;      // buffered into the dest queue
  std::uint64_t dispatch_ts = kFlowNoTs;     // dispatch hardware pulled it
  std::uint64_t finish_ts = kFlowNoTs;       // SUSPEND consumed it

  // Decomposition components, each mirroring a machine/network counter.
  std::uint64_t stall_cycles = 0;      // rounds burned on refused injection
  std::uint32_t hops = 0;              // == the value NetStats::hops got
  std::uint64_t net_latency = 0;       // == the value NetStats::latency got
  std::uint64_t handler_instructions = 0;
  std::uint32_t threads_started = 0;   // ThreadStart marks while current
  std::uint32_t inlets_started = 0;    // InletStart marks while current
  std::uint32_t activations = 0;       // Activate marks while current

  std::vector<FlowHop> path;  // per-hop transit (mesh; capped globally)

  bool delivered() const { return deliver_ts != kFlowNoTs; }
  bool dispatched() const { return dispatch_ts != kFlowNoTs; }
  bool finished() const { return finish_ts != kFlowNoTs; }
  std::uint64_t inject_wait() const { return inject_ts - send_ts; }
  std::uint64_t transit() const { return deliver_ts - inject_ts; }
  std::uint64_t queue_wait() const { return dispatch_ts - deliver_ts; }
};

/// One tick of the periodic time-series sampler (FlowOptions::sample_every
/// rounds apart), a consistent start-of-round snapshot.  Per-node vectors
/// are indexed by node id; counters are cumulative since round 0, so
/// consecutive samples difference into rates.
struct FlowSample {
  std::uint64_t round = 0;
  std::vector<std::uint32_t> queue_depth_low;   // records in the low queue
  std::vector<std::uint32_t> queue_depth_high;
  std::vector<std::uint64_t> node_instructions;  // cumulative
  std::vector<std::uint64_t> node_stall_cycles;  // cumulative
  std::vector<std::uint64_t> link_flits;  // cumulative, FlowTrace::links order
  std::uint64_t messages_delivered = 0;   // cumulative (network)
  std::uint64_t net_flits = 0;            // cumulative (mesh)
};

/// The assembled causal trace of one multi-node run.
struct FlowTrace {
  int num_nodes = 0;
  std::uint64_t final_round = 0;   // MultiMachine::rounds() when run stopped
  std::uint64_t halt_msg = 0;      // message whose handler executed HALT
  int halt_node = -1;
  std::uint64_t sample_every = 0;
  std::vector<FlowMessage> messages;      // messages[id - 1]
  std::vector<FlowSample> samples;
  std::vector<net::LinkStats> links;      // geometry for FlowSample::link_flits
  /// Stall cycles burned on sends the network never accepted before the
  /// run ended, per source node (completes the stall tie-out).
  std::vector<std::uint64_t> pending_stall;
  std::uint64_t dropped_hops = 0;     // FlowHop records past max_hop_records
  std::uint64_t dropped_samples = 0;  // samples past the recording cap
  std::vector<std::string> names;     // handler names (attach_symbols)

  const FlowMessage& msg(std::uint64_t id) const { return messages[id - 1]; }
  /// Handler name of a message ("" when unresolved).
  const std::string& name_of(const FlowMessage& m) const;

  // --- tie-out aggregations over the per-message records ----------------
  /// Hop histogram rebuilt from delivered remote messages; `node` filters
  /// on destination (-1 = all).  Bit-equal to NetStats::hops for -1.
  Histogram hop_histogram(int node = -1) const;
  /// Same for inject-to-deliver latency; bit-equal to NetStats::latency.
  Histogram latency_histogram(int node = -1) const;
  /// Attributed + pending stall cycles of `node`'s sends; equals that
  /// node's Machine::injection_stall_cycles().
  std::uint64_t stall_cycles(int node) const;
  /// Handler instructions of messages handled on `node`; equals that
  /// node's Machine::instructions_executed().
  std::uint64_t handler_instructions(int node) const;
  /// Mark totals over messages handled on `node` (-1 = all); equal to the
  /// node's Granularity counters (threads / inlets / activations).
  std::uint64_t threads_started(int node = -1) const;
  std::uint64_t inlets_started(int node = -1) const;
  std::uint64_t activations(int node = -1) const;

  /// Resolve per-message handler addresses to routine names.
  void attach_symbols(const tamc::SymbolMap& map);
};

/// The collector.  Wire it to every seam before boot messages are
/// injected:
///
///   obs::FlowTracer tracer(opts.flow, mm.num_nodes());
///   for (int n = 0; n < mm.num_nodes(); ++n) mm.node(n).set_flow(&tracer);
///   mm.network().set_flow_observer(&tracer);
///   mm.set_round_hook(&tracer);
///   ... inject boot messages, mm.run() ...
///   obs::FlowTrace trace = tracer.finish(mm);
class FlowTracer final : public mdp::FlowProbe,
                         public net::FlowObserver,
                         public mdp::RoundHook {
 public:
  FlowTracer(const FlowOptions& opts, int num_nodes);

  // mdp::FlowProbe
  void on_boot(int node, mdp::Priority p,
               std::span<const std::uint32_t> words) override;
  void on_local_send(int node, mdp::Priority p, mdp::Priority sender_level,
                     std::span<const std::uint32_t> words) override;
  std::uint64_t on_remote_send(int node, int dest_node, mdp::Priority p,
                               mdp::Priority sender_level,
                               std::span<const std::uint32_t> words) override;
  void on_send_stall(int node, mdp::Priority sender_level) override;
  void on_dispatch(int node, mdp::Priority p) override;
  void on_consume(int node, mdp::Priority p) override;
  void on_instruction(int node, mdp::Priority p) override;
  void on_probe_mark(int node, mdp::MarkKind kind, std::uint32_t aux,
                     mdp::Priority p) override;
  void on_halt(int node, mdp::Priority p) override;

  // net::FlowObserver
  void on_hop(std::uint64_t flow_id, int link_src, int link_dst,
              std::uint64_t now) override;
  void on_deliver(std::uint64_t flow_id, int dest, mdp::Priority p,
                  std::uint32_t hops, std::uint64_t latency,
                  std::uint64_t now) override;

  // mdp::RoundHook
  void on_round(const mdp::MultiMachine& mm, std::uint64_t round) override;

  /// Seal the trace (final round, link geometry, pending stalls) and
  /// return it.  Call once, after MultiMachine::run().
  FlowTrace finish(const mdp::MultiMachine& mm);

 private:
  struct LevelState {
    std::deque<std::uint64_t> mirror;  // queued trace ids, FIFO like the HW
    std::uint64_t current = 0;         // dispatched, not yet consumed
    std::uint64_t pending_stall = 0;   // stall rounds of the next send
    std::uint64_t pending_send_ts = 0; // round of its first refused attempt
  };

  FlowMessage& new_message(FlowMsgKind kind, int src, int dest,
                           mdp::Priority p,
                           std::span<const std::uint32_t> words);
  LevelState& at(int node, mdp::Priority p) {
    return levels_[static_cast<std::size_t>(node) * 2 +
                   static_cast<std::size_t>(p)];
  }
  FlowMessage& msg(std::uint64_t id) { return trace_.messages[id - 1]; }

  FlowOptions opts_;
  int num_nodes_;
  std::uint64_t now_ = 0;
  std::uint64_t hop_records_ = 0;
  std::vector<LevelState> levels_;  // [node * 2 + level]
  FlowTrace trace_;
};

}  // namespace jtam::obs
