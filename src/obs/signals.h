// Online signal bus: streaming scheduler telemetry published while a
// multi-node run executes, readable from outside the engine without locks.
//
// Each node gets a SignalAccumulator (fed by the engine through the
// mdp::NodeTelemetry seam, mdp/multi.h) that replays the node's batched
// trace stream through the same DistributionBuilder state machine the
// post-hoc collectors use, plus a per-codeblock attribution walk.  At
// publish points — every SignalOptions::publish_every rounds on the run()
// caller's thread, where every node buffer is quiescent — the hub distills
// the accumulated state into a fixed-size SignalFrame (cumulative counters
// + streaming EWMAs, keyed by codeblock) and writes it to the node's
// SignalBoard.
//
// The board is a seqlock over a word array of std::atomic<uint64_t>: the
// writer bumps the sequence odd (release-fenced), stores the serialized
// frame with relaxed word stores, then publishes the even sequence with a
// release store; readers retry on odd or changed sequences.  Every access
// is an atomic, so concurrent watchers (examples/signal_watch.cpp, any
// RoundHook) are data-race-free by construction — the design TSan
// verifies in tests/hostobs_test.cpp.
//
// Exactness contract: the frame's cumulative counters are count/sum pairs
// of the accumulator's DistributionBuilder histograms, so the *final*
// frame of a run ties out bit-exactly against a post-hoc
// obs::Distributions replay of the same trace (quanta == quantum_len
// count, quantum_instrs == its sum, and so on — asserted by
// tests/hostobs_test.cpp).  Mid-run frames are snapshots in which still-
// open runs/quanta are counted as if they closed at the publish point.
// Attaching the bus changes no measured number: runs with signals on are
// bit-identical to plain runs under both engines.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "mdp/multi.h"
#include "obs/distributions.h"
#include "obs/options.h"
#include "runtime/layout.h"
#include "tamc/lower.h"
#include "tamc/symbols.h"

namespace jtam::obs {

/// Streaming view of one codeblock's scheduling behaviour on one node.
struct CodeblockSignal {
  std::uint64_t instrs = 0;  // fetches inside the codeblock's routines
  std::uint64_t runs = 0;    // thread/inlet runs that started in it
  double run_len_ewma = 0;   // EWMA of those runs' lengths
};

/// One published frame: everything a watcher can know about a node at a
/// publish point.  Trivially copyable and 8-byte granular by layout — the
/// SignalBoard serializes it word-by-word.
struct SignalFrame {
  std::uint64_t seq = 0;    // publish counter, 1-based
  std::uint64_t round = 0;  // every round below this has executed

  // Cumulative counters — count/sum of the builder's histograms, so the
  // final frame equals the post-hoc Distributions tie-out quantities.
  std::uint64_t quanta = 0;
  std::uint64_t quantum_instrs = 0;
  std::uint64_t threads = 0;
  std::uint64_t thread_instrs = 0;
  std::uint64_t inlets = 0;
  std::uint64_t inlet_instrs = 0;
  std::uint64_t dispatches[2] = {0, 0};       // per priority level
  std::uint64_t queue_depth_sum[2] = {0, 0};  // records, at dispatch
  std::uint64_t queue_bytes_sum[2] = {0, 0};

  // Live machine counters at the publish point.
  std::uint64_t instructions = 0;
  std::uint64_t send_stall_cycles = 0;  // cumulative SENDE injection stalls
  std::uint32_t queue_depth_now[2] = {0, 0};

  // Streaming EWMAs over publish intervals (seeded with the first
  // interval's mean; intervals with no new samples keep the old value).
  double quantum_len_ewma = 0;
  double inlet_run_ewma = 0;
  double queue_depth_ewma[2] = {0, 0};  // mean depth seen by dispatches
  double stall_rate_ewma = 0;           // stall cycles per round

  std::uint32_t num_codeblocks = 0;
  std::uint32_t final_frame = 0;  // 1 on the run's last publish
  CodeblockSignal cb[rt::kMaxCodeblocks] = {};
};

static_assert(sizeof(SignalFrame) % 8 == 0);

/// Single-writer / many-reader seqlock holding one SignalFrame.
class SignalBoard {
 public:
  /// Writer side (the hub, on the run() caller's thread only).
  void publish(const SignalFrame& f);

  /// Reader side: copy out the latest consistent frame.  Returns false
  /// when nothing has been published yet; retries internally on writer
  /// overlap (bounded in practice — publishes are µs apart at worst).
  bool read(SignalFrame& out) const;

 private:
  static constexpr std::size_t kWords = sizeof(SignalFrame) / 8;
  std::atomic<std::uint64_t> seq_{0};
  std::array<std::atomic<std::uint64_t>, kWords> words_{};
};

/// Per-node stream processor: the drain of the node's telemetry trace
/// buffer.  Owns the DistributionBuilder replica plus the codeblock
/// attribution state.  Touched only by the node's owning worker between
/// publishes and by the hub at publish points (the NodeTelemetry
/// quiescence contract), so it needs no synchronization of its own.
class SignalAccumulator final : public mdp::TraceDrain {
 public:
  SignalAccumulator(rt::BackendKind backend, const tamc::SymbolMap* map,
                    double alpha);

  void on_block(const mdp::TraceBuffer& buf) override;

  /// The Distributions a post-hoc finish() would produce right now.
  Distributions distributions() const { return builder_.snapshot(); }
  /// Copy the per-codeblock signals into `f` (cb table + count).
  void fill_codeblocks(SignalFrame& f) const;

 private:
  void close_run(int level);

  DistributionBuilder builder_;
  const tamc::SymbolMap* map_;
  double alpha_;
  // Codeblock attribution: the run open at each level and its owner.
  bool pending_[2] = {false, false};  // Start seen, first fetch not yet
  int run_cb_[2] = {-1, -1};
  std::uint64_t run_len_[2] = {0, 0};
  const tamc::SymbolSpan* last_span_ = nullptr;  // find() cache
  CodeblockSignal cb_[rt::kMaxCodeblocks] = {};
  int num_cb_ = 0;
};

/// End-of-run state of the bus: one final frame per node plus the
/// accumulator's closed Distributions — the tie-out artifact (the frame's
/// cumulative counters equal the Distributions' count/sum pairs exactly).
struct SignalSnapshot {
  std::uint64_t publish_every = 0;
  double alpha = 0;
  struct Node {
    SignalFrame frame;
    Distributions dist;
  };
  std::vector<Node> nodes;

  /// schema_version + per-node counters/EWMAs and the non-empty codeblock
  /// signals.
  void write_json(std::ostream& os) const;
};

/// The bus: implements the engine's NodeTelemetry seam, owns one buffer +
/// accumulator + board per node.  Query path: board(n).read(...) from any
/// thread, including a RoundHook (hooks run on the coordinator, where the
/// frame read is trivially consistent) or an external watcher thread.
class SignalHub final : public mdp::NodeTelemetry {
 public:
  SignalHub(const SignalOptions& opts, rt::BackendKind backend,
            const tamc::CompiledProgram& compiled, int num_nodes);
  ~SignalHub() override;

  mdp::TraceBuffer* node_buffer(int n) override;
  std::uint64_t publish_interval() const override {
    return opts_.publish_every;
  }
  void publish(const mdp::MultiMachine& mm, std::uint64_t round,
               bool final) override;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const SignalBoard& board(int n) const;

  /// Close the accumulators and return the end-of-run state (call once,
  /// after the run).
  SignalSnapshot finish();

 private:
  struct PerNode;

  SignalOptions opts_;
  tamc::SymbolMap symbols_;
  std::vector<std::unique_ptr<PerNode>> nodes_;
};

}  // namespace jtam::obs
