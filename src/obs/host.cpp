#include "obs/host.h"

#include <algorithm>
#include <ostream>

#include "obs/export.h"
#include "obs/timeline.h"
#include "support/json.h"

namespace jtam::obs {

namespace {

const char* const kPhaseNames[HostReport::kNumPhases] = {
    "setup",        "hook",   "plan",     "node_phase", "barrier_wait",
    "staging_merge", "commit", "net_step", "node_step",  "publish",
};

/// Render steady-clock nanoseconds as fractional trace microseconds
/// (Perfetto `ts`/`dur` are microseconds; windows resolve in hundreds of
/// nanoseconds on small runs, so integer microseconds would collapse
/// them).
void put_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000;
  const unsigned frac = static_cast<unsigned>(ns % 1000);
  os << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::uint64_t HostReport::phase_total_ns() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : phase_ns) total += v;
  return total;
}

double HostReport::coverage() const {
  return engine_wall_ns == 0 ? 0.0
                             : static_cast<double>(phase_total_ns()) /
                                   static_cast<double>(engine_wall_ns);
}

double HostReport::imbalance() const {
  if (shard_busy_ns.empty()) return 0.0;
  std::uint64_t max = 0, sum = 0;
  for (std::uint64_t v : shard_busy_ns) {
    max = std::max(max, v);
    sum += v;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(shard_busy_ns.size());
  return static_cast<double>(max) / mean;
}

const char* HostReport::phase_name(int p) {
  return p >= 0 && p < kNumPhases ? kPhaseNames[p] : "?";
}

void HostReport::add_pool_stats(
    const std::vector<support::ThreadPool::WorkerStats>& before,
    const std::vector<support::ThreadPool::WorkerStats>& after) {
  pool_workers.clear();
  pool_workers.reserve(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    Worker w;
    w.busy_ns = after[i].busy_ns - (i < before.size() ? before[i].busy_ns : 0);
    w.tasks = after[i].tasks - (i < before.size() ? before[i].tasks : 0);
    pool_workers.push_back(w);
  }
}

void HostReport::add_stage_times(
    const std::vector<driver::TracePipeline::StageTime>& st) {
  stages.clear();
  stages.reserve(st.size());
  for (const auto& s : st) {
    stages.push_back(Stage{s.name, s.ns, s.blocks});
  }
}

void HostReport::write_text(std::ostream& os) const {
  os << "host observatory (" << (parallel ? "parallel" : "serial")
     << " engine, " << shards << " shard" << (shards == 1 ? "" : "s");
  if (parallel) os << ", window limit " << window_limit;
  os << ")\n";
  os << "  engine wall " << ms(engine_wall_ns) << " ms over " << rounds
     << " rounds";
  if (parallel) os << ", " << windows << " windows";
  os << "; phase coverage " << coverage() * 100.0 << "%\n";
  const std::uint64_t total = phase_total_ns();
  for (int p = 0; p < kNumPhases; ++p) {
    if (phase_ns[static_cast<std::size_t>(p)] == 0) continue;
    const std::uint64_t v = phase_ns[static_cast<std::size_t>(p)];
    os << "    " << phase_name(p) << " " << ms(v) << " ms ("
       << (total == 0 ? 0.0
                      : static_cast<double>(v) * 100.0 /
                            static_cast<double>(total))
       << "%)\n";
  }
  if (!shard_busy_ns.empty()) {
    os << "  shard busy (node phase):";
    for (std::size_t s = 0; s < shard_busy_ns.size(); ++s) {
      os << " s" << s << "=" << ms(shard_busy_ns[s]) << "ms";
    }
    os << "  imbalance " << imbalance() << "\n";
  }
  if (windows_dropped != 0) {
    os << "  window samples: " << sampled.size() << " kept, "
       << windows_dropped << " past the cap (totals include them)\n";
  }
  for (const Worker& w : pool_workers) {
    os << "  pool worker: busy " << ms(w.busy_ns) << " ms over " << w.tasks
       << " tasks\n";
  }
  for (const Stage& s : stages) {
    os << "  pipeline stage " << s.name << ": " << ms(s.ns) << " ms over "
       << s.blocks << " blocks\n";
  }
}

void HostReport::write_csv(std::ostream& os) const {
  os << "kind,name,ns,count\n";
  os << "engine,wall," << engine_wall_ns << "," << rounds << "\n";
  for (int p = 0; p < kNumPhases; ++p) {
    os << "phase," << phase_name(p) << ","
       << phase_ns[static_cast<std::size_t>(p)] << "," << windows << "\n";
  }
  for (std::size_t s = 0; s < shard_busy_ns.size(); ++s) {
    os << "shard,s" << s << "," << shard_busy_ns[s] << "," << windows << "\n";
  }
  for (std::size_t i = 0; i < pool_workers.size(); ++i) {
    os << "pool_worker,w" << i << "," << pool_workers[i].busy_ns << ","
       << pool_workers[i].tasks << "\n";
  }
  for (const Stage& s : stages) {
    os << "stage," << csv_escape(s.name) << "," << s.ns << "," << s.blocks
       << "\n";
  }
}

void HostReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": " << kObsSchemaVersion
     << ",\n  \"engine\": {\"parallel\": " << (parallel ? "true" : "false")
     << ", \"shards\": " << shards << ", \"window_limit\": " << window_limit
     << ", \"rounds\": " << rounds << ", \"windows\": " << windows
     << "},\n  \"wall_ns\": " << engine_wall_ns << ",\n  \"coverage\": "
     << coverage() << ",\n  \"phases_ns\": {";
  JsonListSep psep;
  for (int p = 0; p < kNumPhases; ++p) {
    psep.next(os) << "    \"" << phase_name(p) << "\": "
                  << phase_ns[static_cast<std::size_t>(p)];
  }
  os << "\n  },\n  \"shard_busy_ns\": [";
  JsonListSep ssep;
  for (std::uint64_t v : shard_busy_ns) ssep.next(os) << "    " << v;
  os << "\n  ],\n  \"imbalance\": " << imbalance()
     << ",\n  \"windows_sampled\": " << sampled.size()
     << ",\n  \"windows_dropped\": " << windows_dropped
     << ",\n  \"pool_workers\": [";
  JsonListSep wsep;
  for (const Worker& w : pool_workers) {
    wsep.next(os) << "    {\"busy_ns\": " << w.busy_ns << ", \"tasks\": "
                  << w.tasks << "}";
  }
  os << "\n  ],\n  \"stages\": [";
  JsonListSep tsep;
  for (const Stage& s : stages) {
    tsep.next(os) << "    {\"name\": \"" << json::escape(s.name)
                  << "\", \"ns\": " << s.ns << ", \"blocks\": " << s.blocks
                  << "}";
  }
  os << "\n  ]\n}\n";
}

HostProfiler::HostProfiler(std::size_t max_window_samples)
    : max_samples_(max_window_samples) {}

void HostProfiler::on_run_begin(bool parallel, unsigned shards,
                                std::uint64_t window_limit) {
  r_ = HostReport{};
  r_.parallel = parallel;
  r_.shards = shards;
  r_.window_limit = window_limit;
  r_.shard_busy_ns.assign(shards, 0);
  window_mark_.fill(0);
  t0_ = std::chrono::steady_clock::now();
}

void HostProfiler::on_phase(Phase p, std::uint64_t ns) {
  r_.phase_ns[static_cast<std::size_t>(p)] += ns;
}

void HostProfiler::on_window(std::uint64_t round_from, std::uint64_t rounds,
                             const std::uint64_t* shard_busy_ns,
                             unsigned shards) {
  for (unsigned s = 0; s < shards && s < r_.shard_busy_ns.size(); ++s) {
    r_.shard_busy_ns[s] += shard_busy_ns[s];
  }
  if (r_.sampled.size() >= max_samples_) {
    ++r_.windows_dropped;
    // Keep the delta chain honest: totals since the last sample still
    // belong to the dropped window, not the next kept one.
    window_mark_ = r_.phase_ns;
    return;
  }
  HostReport::WindowSample w;
  w.round_from = round_from;
  w.rounds = rounds;
  w.t_end_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
  for (int p = 0; p < HostReport::kNumPhases; ++p) {
    w.phase_ns[static_cast<std::size_t>(p)] =
        r_.phase_ns[static_cast<std::size_t>(p)] -
        window_mark_[static_cast<std::size_t>(p)];
  }
  window_mark_ = r_.phase_ns;
  w.shard_busy_ns.assign(shard_busy_ns, shard_busy_ns + shards);
  r_.sampled.push_back(std::move(w));
}

void HostProfiler::on_run_end(std::uint64_t rounds, std::uint64_t windows) {
  r_.rounds = rounds;
  r_.windows = windows;
  r_.engine_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

void write_host_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const FlowTrace*>>& flow_runs,
    const std::vector<std::pair<std::string, const HostReport*>>& host_runs) {
  os << "{\"traceEvents\": [";
  JsonListSep lsep;
  auto sep = [&]() -> std::ostream& { return lsep.next(os); };
  int next_pid = 1;
  emit_flow_runs(os, lsep, next_pid, flow_runs);
  for (const auto& [label, hr] : host_runs) {
    const int pid = next_pid++;
    sep() << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"args\": {\"name\": \"" << json::escape(label)
          << " host\"}}";
    static const char* kTracks[] = {"engine phases", "windows", "shard busy"};
    for (int t = 0; t < 3; ++t) {
      sep() << " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
            << ", \"tid\": " << t << ", \"args\": {\"name\": \""
            << kTracks[t] << "\"}}";
    }
    auto phase_slice = [&](int p, std::uint64_t ts_ns, std::uint64_t dur_ns) {
      sep() << " {\"name\": \"" << HostReport::phase_name(p)
            << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": 0, "
            << "\"ts\": ";
      put_us(os, ts_ns);
      os << ", \"dur\": ";
      put_us(os, dur_ns);
      os << "}";
    };
    if (hr->sampled.empty()) {
      // Serial run (or an unsampled parallel one): the per-phase totals
      // laid end-to-end — proportions, not a real schedule.
      std::uint64_t at = 0;
      for (int p = 0; p < HostReport::kNumPhases; ++p) {
        const std::uint64_t v = hr->phase_ns[static_cast<std::size_t>(p)];
        if (v == 0) continue;
        phase_slice(p, at, v);
        at += v;
      }
    } else {
      for (const auto& w : hr->sampled) {
        std::uint64_t span = 0;
        for (std::uint64_t v : w.phase_ns) span += v;
        const std::uint64_t start = w.t_end_ns > span ? w.t_end_ns - span : 0;
        sep() << " {\"name\": \"window @" << w.round_from << " +" << w.rounds
              << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": 1, "
              << "\"ts\": ";
        put_us(os, start);
        os << ", \"dur\": ";
        put_us(os, span);
        os << ", \"args\": {\"round_from\": " << w.round_from
           << ", \"rounds\": " << w.rounds << "}}";
        std::uint64_t at = start;
        for (int p = 0; p < HostReport::kNumPhases; ++p) {
          const std::uint64_t v = w.phase_ns[static_cast<std::size_t>(p)];
          if (v == 0) continue;
          phase_slice(p, at, v);
          at += v;
        }
        sep() << " {\"name\": \"shard busy\", \"ph\": \"C\", \"pid\": " << pid
              << ", \"tid\": 2, \"ts\": ";
        put_us(os, w.t_end_ns);
        os << ", \"args\": {";
        for (std::size_t s = 0; s < w.shard_busy_ns.size(); ++s) {
          if (s != 0) os << ", ";
          os << "\"s" << s << "\": " << w.shard_busy_ns[s];
        }
        os << "}}";
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace jtam::obs
