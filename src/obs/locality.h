// Locality observatory: per-symbol, per-access-class miss-ratio curves.
//
// The paper reports aggregate MD/AM miss rates; this module answers the
// follow-up question — *which* codeblocks, frames, and access classes gain
// or lose locality when the scheduling regime changes.  A
// LocalityCollector rides the batched trace pipeline as one more
// zero-cost-when-off consumer: it replays the fetch/data streams through a
// keyed Mattson engine (cache::AttrStackStream) whose attribution key is
//
//   I-stream: the symbol row of the fetched instruction
//   D-stream: row * kNumAccessClasses + access class of the address
//
// where the row is the mark-delimited execution context reconstructed by
// obs::ContextReplayer (the same attribution the profiler uses) and the
// access class splits data addresses into frame / heap / queue / global.
// One machine pass therefore yields a full miss-ratio curve per symbol
// across every configuration of the paper ladder, per-key bounded
// reuse-distance histograms, and per-class write-back counts — all of
// which sum bit-exactly to the measured engine totals
// (tests/locality_test.cpp pins this for all 24 configs, both back-ends).
//
// The MD↔AM diff (LocalityReport::diff) matches symbols by name across two
// reports and ranks them by miss delta at a chosen configuration — the
// per-codeblock locality signal the ROADMAP's adaptive hybrid back-end
// needs.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/attr_stack.h"
#include "cache/cache.h"
#include "driver/trace_buffer.h"
#include "mem/memory_map.h"
#include "obs/context.h"
#include "obs/timeline.h"
#include "tamc/symbols.h"

namespace jtam::obs {

/// Data-access classes for locality attribution.  `Frame` is the runtime
/// frame heap (activation frames and runtime allocations above the
/// frame-heap base), `Heap` the user arrays and defer pool below it,
/// `Queue` the two hardware message queues, `Global` everything else
/// (OS globals, LCV, system tables).
enum class AccessClass : std::uint32_t {
  Frame = 0,
  Heap = 1,
  Queue = 2,
  Global = 3,
};

inline constexpr std::uint32_t kNumAccessClasses = 4;

const char* access_class_name(AccessClass c);

/// Classify a data address.  `frame_heap_base` is the frame heap's start
/// (the initial runtime heap-bump value, read from the machine after
/// program setup).
inline AccessClass classify_access(mem::Addr a, mem::Addr frame_heap_base) {
  if (a >= mem::kUserDataBase) {
    return a >= frame_heap_base ? AccessClass::Frame : AccessClass::Heap;
  }
  if (mem::in_queue(a)) return AccessClass::Queue;
  return AccessClass::Global;
}

/// MD↔AM locality comparison at one configuration: symbols matched by
/// name, ranked by |misses(MD) - misses(AM)| descending.
struct LocalityDiff {
  struct Entry {
    std::string name;
    tamc::SymbolKind kind = tamc::SymbolKind::Other;
    std::uint64_t md_accesses = 0;  // I + D, config-independent
    std::uint64_t am_accesses = 0;
    std::uint64_t md_misses = 0;  // I + D at `config`
    std::uint64_t am_misses = 0;

    std::int64_t delta() const {
      return static_cast<std::int64_t>(md_misses) -
             static_cast<std::int64_t>(am_misses);
    }
    double md_miss_rate() const {
      return md_accesses == 0 ? 0.0
                              : static_cast<double>(md_misses) /
                                    static_cast<double>(md_accesses);
    }
    double am_miss_rate() const {
      return am_accesses == 0 ? 0.0
                              : static_cast<double>(am_misses) /
                                    static_cast<double>(am_accesses);
    }
  };

  cache::CacheConfig config;
  std::vector<Entry> entries;

  void write_text(std::ostream& os, int top_n = 12) const;
};

/// Everything the collector accumulated for one run, with query helpers.
/// Flattened counter layout (all indices documented at the fields):
/// I-stream keys are symbol rows, D-stream keys are
/// row * kNumAccessClasses + class.
struct LocalityReport {
  static constexpr std::uint32_t kRdBuckets =
      cache::AttrStackStream::kRdBuckets;

  struct Row {
    std::string name;
    tamc::SymbolKind kind = tamc::SymbolKind::Other;
    int cb = -1;
    int idx = -1;
  };

  /// One cumulative-miss sample at the headline config, taken per trace
  /// block (ts = instructions executed so far).
  struct Sample {
    std::uint64_t ts = 0;
    std::uint64_t imiss = 0;
    std::array<std::uint64_t, kNumAccessClasses> dmiss{};
  };

  std::vector<cache::CacheConfig> configs;  // the ladder, one block size
  std::vector<Row> rows;                    // symbol spans + 2 pseudo rows
  std::size_t headline = 0;  // config index for series and scorecards
  std::uint32_t rd_window = 0;

  std::vector<std::uint64_t> iacc;   // [row]
  std::vector<std::uint64_t> imiss;  // [cfg * rows + row]
  std::vector<std::uint64_t> ird;    // [row * kRdBuckets + bucket]
  std::vector<std::uint64_t> dacc;   // [dkey]
  std::vector<std::uint64_t> dmiss;  // [cfg * rows * kNumAccessClasses + dkey]
  std::vector<std::uint64_t> dwb;    // same shape as dmiss
  std::vector<std::uint64_t> drd;    // [dkey * kRdBuckets + bucket]
  std::vector<Sample> series;

  std::size_t num_rows() const { return rows.size(); }
  std::uint32_t dkey(std::uint32_t row, AccessClass c) const {
    return row * kNumAccessClasses + static_cast<std::uint32_t>(c);
  }

  /// Total references attributed to a symbol row (I + all D classes).
  std::uint64_t symbol_accesses(std::uint32_t row) const;
  /// Total misses of a symbol row at configuration `cfg` (I + all D).
  std::uint64_t symbol_misses(std::uint32_t row, std::size_t cfg) const;
  /// Per-symbol miss-ratio curve: miss rate at every configuration.
  std::vector<double> symbol_mrc(std::uint32_t row) const;

  /// D-stream counts of one access class summed over rows.
  std::uint64_t class_accesses(AccessClass c) const;
  std::uint64_t class_misses(AccessClass c, std::size_t cfg) const;
  std::uint64_t class_writebacks(AccessClass c, std::size_t cfg) const;
  /// Reuse-distance histogram of one class summed over rows (kRdBuckets).
  std::vector<std::uint64_t> class_rd_hist(AccessClass c) const;

  /// Attributed totals at `cfg`, summed over every key — bit-identical to
  /// the measured engine's CacheStats for the same run (the conservation
  /// property).
  cache::CacheStats itotal(std::size_t cfg) const;
  cache::CacheStats dtotal(std::size_t cfg) const;

  /// Approximate percentile of a kRdBuckets log2 histogram: the floor
  /// distance of the bucket containing quantile `q` in [0, 1]; the
  /// overflow bucket reports `rd_window` (read as "at least").
  double rd_percentile(const std::vector<std::uint64_t>& hist,
                       double q) const;
  /// Frame-class reuse-distance percentile (the headline locality signal).
  double frame_rd_percentile(double q) const;

  void write_text(std::ostream& os, int top_n = 12) const;
  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;

  /// Build the MD↔AM diff at configuration index `cfg` (of md.configs);
  /// symbols are matched by name, so the two reports may come from runs
  /// with different span layouts.
  static LocalityDiff diff(const LocalityReport& md,
                           const LocalityReport& am, std::size_t cfg);
};

/// One run of a merged timeline+locality Chrome trace: `timeline` and
/// `locality` may each be null (the present parts are emitted).
struct LocalityTimelineRun {
  std::string label;
  const Timeline* timeline = nullptr;
  const LocalityReport* locality = nullptr;
};

/// Write timelines with the locality counter tracks (cumulative I misses
/// and per-class D misses at the headline config) merged into each run's
/// process — one file loads in Perfetto with slices and counters aligned.
void write_locality_chrome_trace(std::ostream& os,
                                 const std::vector<LocalityTimelineRun>& runs);

class LocalityCollector final : public driver::TraceConsumer {
 public:
  /// `map` must outlive the collector.  `ladder` must share one block size
  /// (cache::paper_ladder(block_bytes) in the driver).
  LocalityCollector(const tamc::SymbolMap* map,
                    const std::vector<cache::CacheConfig>& ladder,
                    mem::Addr frame_heap_base);

  void on_block(const mdp::TraceBuffer& buf) override;

  /// Assemble the report (call once, after the final flush).
  LocalityReport finish();

 private:
  ContextReplayer ctx_;
  mem::Addr frame_base_;
  std::size_t headline_;
  cache::AttrStackStream istream_;
  cache::AttrStackStream dstream_;
  std::uint64_t fetch_cum_ = 0;
  std::vector<LocalityReport::Sample> series_;
};

}  // namespace jtam::obs
