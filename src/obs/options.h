// Observability configuration carried inside driver::RunOptions.
//
// Every collector is zero-cost when off: run_workload attaches the
// corresponding TraceConsumer to the batched pipeline only for the
// features requested here, and none of them writes to any measured state —
// RunResult numbers are bit-identical with observability on or off
// (enforced by tests/obs_test.cpp).  Deliberately dependency-light so
// driver/experiment.h can include it without pulling the collectors in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jtam::obs {

/// A cache geometry the profiler attributes misses for (it simulates its
/// own private caches; the measured CacheBank is never touched).
struct ProfileCacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t assoc = 4;
};

/// Causal flow tracing for multi-node runs (obs::FlowTracer), carried in
/// driver::MultiOptions.  Like every collector it is zero-cost when off —
/// the machine/network hooks are single null-pointer tests — and never
/// writes to measured state: MultiRunResult numbers are bit-identical with
/// tracing on or off (enforced by tests/flow_test.cpp).
struct FlowOptions {
  /// Master switch: record one FlowMessage per message (trace id, causal
  /// parent, span timestamps, per-message latency decomposition).
  bool enabled = false;
  /// Time-series sampler cadence in rounds (0 = no samples): per-node
  /// queue depths, cumulative instructions/stalls, per-link flit counts.
  std::uint64_t sample_every = 0;
  /// Cap on recorded per-hop path records across all messages; past it the
  /// tracer keeps every counter and timestamp exact (tie-outs still hold)
  /// but stops appending FlowHop entries, counting the overflow in
  /// FlowTrace::dropped_hops.
  std::uint64_t max_hop_records = 1u << 20;

  bool any() const { return enabled; }
};

/// Online signal bus for multi-node runs (obs::SignalHub), carried in
/// driver::MultiOptions.  Observation only: per-node streaming aggregates
/// are published to lock-free boards at round boundaries, and every
/// measured MultiRunResult field is bit-identical with the bus on or off
/// (tests/hostobs_test.cpp).
struct SignalOptions {
  bool enabled = false;
  /// Rounds between board publishes (the NodeTelemetry publish interval).
  std::uint64_t publish_every = 64;
  /// EWMA smoothing factor for the streaming rates (0 < alpha <= 1).
  double alpha = 0.25;
};

struct Options {
  /// Flat per-routine profile: instructions, reads/writes, and per-config
  /// cache misses attributed to TAM codeblocks/inlets/threads and kernel
  /// routines via the tamc symbol map.
  bool profile = false;
  /// Distribution histograms: quantum length, threads per quantum, inlet
  /// run length, and queue depth sampled at dispatch.
  bool histograms = false;
  /// Scheduling timeline (frame activations, quanta, handlers, queue
  /// occupancy) exportable as Chrome/Perfetto trace-event JSON.
  bool timeline = false;
  /// Self-metrics of the batched trace pipeline (events/sec, block drain
  /// latency) — wall-clock measurements, never part of RunResult numbers.
  bool pipeline_metrics = false;
  /// Locality attribution: per-symbol miss-ratio curves over the whole
  /// paper cache ladder, frame/heap/queue/global access-class breakdowns,
  /// and bounded reuse-distance histograms (obs::LocalityReport), computed
  /// by a keyed stack engine over the same trace streams the measured
  /// caches consume.
  bool locality = false;
  /// Host-time observatory (obs::HostReport): wall-clock self-profiling of
  /// the run — per-stage trace-pipeline drain times and worker-pool
  /// utilization for single-node runs (multi-node runs carry the engine
  /// phase clock too, via driver::MultiOptions::host_profile).  Measures
  /// the simulator, never the simulated program.
  bool host_profile = false;

  /// Cache geometries the profiler simulates for miss attribution.  Empty
  /// means the paper's headline 8K 4-way config.
  std::vector<ProfileCacheConfig> profile_caches;
  /// Cap on recorded timeline slices/samples; past it the timeline keeps
  /// counting (for the truncation note) but stops recording.
  std::size_t timeline_max_events = 1u << 20;

  bool any() const {
    return profile || histograms || timeline || pipeline_metrics ||
           locality || host_profile;
  }
  static Options all() {
    Options o;
    o.profile = o.histograms = o.timeline = o.pipeline_metrics = true;
    o.locality = true;
    o.host_profile = true;
    return o;
  }
};

}  // namespace jtam::obs
