#include "obs/histogram.h"

#include <bit>
#include <cstring>
#include <sstream>

namespace jtam::obs {

namespace {

/// Bucket index: 0 -> 0, 1 -> 1, [2^(b-1), 2^b) -> b.
inline int bucket_of(std::uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

}  // namespace

void Histogram::add(std::uint64_t v, std::uint64_t weight) {
  if (weight == 0) return;
  const int b = bucket_of(v);
  buckets_[b] += weight;
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  count_ += weight;
  sum_ += v * weight;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  if (o.count_ == 0) return *this;
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  return *this;
}

void Histogram::bucket_range(int b, std::uint64_t* lo, std::uint64_t* hi) {
  if (b <= 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  *lo = b == 1 ? 1 : (1ULL << (b - 1));
  *hi = (b >= 64 ? ~0ULL : (1ULL << b)) - 1;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ != 0) {
    os.precision(3);
    os << std::fixed << " mean=" << mean() << " p50=" << p50()
       << " p95=" << p95() << " max=" << max_;
  }
  return os.str();
}

bool Histogram::operator==(const Histogram& o) const {
  return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
         max_ == o.max_ &&
         std::memcmp(buckets_, o.buckets_, sizeof(buckets_)) == 0;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 1.0) return static_cast<double>(max_);
  const double target = p * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = cum + buckets_[b];
    if (static_cast<double>(next) >= target) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      bucket_range(b, &lo, &hi);
      // Clamp to the observed extremes so interpolation never reports a
      // value outside [min, max].
      const double blo = static_cast<double>(lo < min_ ? min_ : lo);
      const double bhi = static_cast<double>(hi > max_ ? max_ : hi);
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(buckets_[b]);
      return blo + (bhi - blo) * frac;
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

}  // namespace jtam::obs
