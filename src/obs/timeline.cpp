#include "obs/timeline.h"

#include <ostream>

#include "obs/export.h"
#include "obs/flow.h"
#include "obs/replay.h"
#include "support/json.h"

namespace jtam::obs {

TimelineBuilder::TimelineBuilder(rt::BackendKind backend,
                                 const tamc::SymbolMap* map,
                                 std::size_t max_events)
    : backend_(backend), map_(map), max_events_(max_events) {}

void TimelineBuilder::emit_slice(Timeline::Slice s) {
  if (tl_.recorded_events() < max_events_) {
    tl_.slices.push_back(std::move(s));
  } else {
    ++tl_.dropped;
  }
}

void TimelineBuilder::open_slice(int level, std::uint64_t ts,
                                 const char* fallback, std::uint32_t frame) {
  Open& o = open_[level];
  o.active = true;
  o.named = map_ == nullptr;  // with a map, the first fetch names the slice
  o.ts = ts;
  o.name = fallback;
  o.frame = frame;
}

void TimelineBuilder::close_slice(int level, std::uint64_t ts) {
  Open& o = open_[level];
  if (!o.active) return;
  o.active = false;
  emit_slice(Timeline::Slice{o.ts, ts - o.ts, std::move(o.name), level,
                             o.frame});
}

void TimelineBuilder::on_block(const mdp::TraceBuffer& buf) {
  walk_fetches(
      buf,
      [&](const mdp::TraceBuffer::Mark& m) {
        const int l = m.level;
        const std::uint64_t ts = fetch_base_ + m.fetch_pos;
        const auto kind = static_cast<mdp::MarkKind>(m.kind);
        switch (kind) {
          case mdp::MarkKind::ThreadStart:
          case mdp::MarkKind::InletStart:
          case mdp::MarkKind::SysStart: {
            close_slice(l, ts);
            const char* fallback = kind == mdp::MarkKind::ThreadStart
                                       ? "thread"
                                       : kind == mdp::MarkKind::InletStart
                                             ? "inlet"
                                             : "sys";
            open_slice(l, ts, fallback, m.aux);
            const bool boundary =
                kind == mdp::MarkKind::ThreadStart
                    ? m.aux != quantum_frame_
                    : kind == mdp::MarkKind::InletStart &&
                          backend_ == rt::BackendKind::MessageDriven &&
                          l == static_cast<int>(mdp::Priority::Low) &&
                          m.aux != quantum_frame_;
            if (boundary) {
              if (quantum_.active) {
                emit_slice(Timeline::Slice{quantum_.ts, ts - quantum_.ts,
                                           std::move(quantum_.name),
                                           kTimelineQuantumTrack,
                                           quantum_.frame});
              }
              quantum_.active = true;
              quantum_.ts = ts;
              quantum_.name =
                  "quantum f=" + std::to_string(m.aux);
              quantum_.frame = m.aux;
              quantum_frame_ = m.aux;
            }
            break;
          }
          case mdp::MarkKind::Activate:
            if (tl_.recorded_events() < max_events_) {
              tl_.instants.push_back(
                  Timeline::Instant{ts, "activate", l, m.aux});
            } else {
              ++tl_.dropped;
            }
            break;
          case mdp::MarkKind::Dispatch:
          case mdp::MarkKind::Suspend:
            if (kind == mdp::MarkKind::Suspend) close_slice(l, ts);
            if (tl_.recorded_events() < max_events_) {
              tl_.queue.push_back(Timeline::QueueSample{
                  ts, l, mdp::queue_sample_depth(m.aux),
                  mdp::queue_sample_bytes(m.aux)});
            } else {
              ++tl_.dropped;
            }
            break;
          case mdp::MarkKind::FpCall:
            break;  // stays inside the calling slice
        }
      },
      [&](std::size_t i, mem::Addr addr, mdp::Priority p) {
        Open& o = open_[static_cast<int>(p)];
        if (o.active && !o.named) {
          if (const tamc::SymbolSpan* s = map_->find(addr)) {
            o.name = s->name;
          }
          o.named = true;
        }
        (void)i;
      });
  fetch_base_ += buf.fetch().size();
}

Timeline TimelineBuilder::finish() {
  close_slice(0, fetch_base_);
  close_slice(1, fetch_base_);
  if (quantum_.active) {
    quantum_.active = false;
    emit_slice(Timeline::Slice{quantum_.ts, fetch_base_ - quantum_.ts,
                               std::move(quantum_.name),
                               kTimelineQuantumTrack, quantum_.frame});
  }
  tl_.total_instructions = fetch_base_;
  return tl_;
}

void emit_timeline_process(std::ostream& os, JsonListSep& sep, int pid,
                           const std::string& label, const Timeline& tl) {
  sep.next(os) << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
               << pid << ", \"args\": {\"name\": \"" << json::escape(label)
               << "\"}}";
  static const char* kTracks[] = {"low priority", "high priority", "quanta"};
  for (int t = 0; t < 3; ++t) {
    sep.next(os) << " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
                 << pid << ", \"tid\": " << t << ", \"args\": {\"name\": \""
                 << kTracks[t] << "\"}}";
  }
  for (const auto& s : tl.slices) {
    sep.next(os) << " {\"name\": \"" << json::escape(s.name)
                 << "\", \"ph\": \"X\", \"pid\": " << pid
                 << ", \"tid\": " << s.tid << ", \"ts\": " << s.ts
                 << ", \"dur\": " << s.dur << ", \"args\": {\"frame\": "
                 << s.frame << "}}";
  }
  for (const auto& in : tl.instants) {
    sep.next(os) << " {\"name\": \"" << json::escape(in.name)
                 << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                 << ", \"tid\": " << in.tid << ", \"ts\": " << in.ts
                 << ", \"args\": {\"frame\": " << in.frame << "}}";
  }
  for (const auto& q : tl.queue) {
    sep.next(os) << " {\"name\": \"queue L" << q.level
                 << "\", \"ph\": \"C\", \"pid\": " << pid
                 << ", \"ts\": " << q.ts << ", \"args\": {\"records\": "
                 << q.depth << ", \"bytes\": " << q.bytes << "}}";
  }
}

void write_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const Timeline*>>& runs) {
  os << "{\"traceEvents\": [";
  JsonListSep sep;
  int pid = 0;
  for (const auto& [label, tl] : runs) {
    ++pid;
    emit_timeline_process(os, sep, pid, label, *tl);
  }
  os << "\n]}\n";
}

void write_flow_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const FlowTrace*>>& runs) {
  os << "{\"traceEvents\": [";
  JsonListSep sep;
  int next_pid = 1;
  emit_flow_runs(os, sep, next_pid, runs);
  os << "\n]}\n";
}

void emit_flow_runs(
    std::ostream& os, JsonListSep& lsep, int& next_pid,
    const std::vector<std::pair<std::string, const FlowTrace*>>& runs) {
  auto sep = [&]() -> std::ostream& { return lsep.next(os); };
  std::uint64_t flow_base = 0;  // makes s/f ids unique across runs
  for (const auto& [label, tr] : runs) {
    const int node_pid = next_pid;               // node n -> node_pid + n
    const int net_pid = node_pid + tr->num_nodes;  // the sampler process
    next_pid = net_pid + 1;
    for (int n = 0; n < tr->num_nodes; ++n) {
      sep() << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
            << (node_pid + n) << ", \"args\": {\"name\": \""
            << json::escape(label) << " node " << n << "\"}}";
      for (int t = 0; t < 2; ++t) {
        sep() << " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
              << (node_pid + n) << ", \"tid\": " << t
              << ", \"args\": {\"name\": \""
              << (t == 0 ? "low priority" : "high priority") << "\"}}";
      }
    }
    sep() << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
          << net_pid << ", \"args\": {\"name\": \"" << json::escape(label)
          << " network\"}}";
    for (const FlowMessage& m : tr->messages) {
      if (!m.dispatched()) continue;
      const int pid = node_pid + m.dest_node;
      const int tid = static_cast<int>(m.priority);
      // The handling slice; a handler cut short by the run's end (the
      // HALT closes its own) is drawn to the final round.
      const std::uint64_t end =
          m.finished() ? m.finish_ts : tr->final_round;
      const std::string& name = tr->name_of(m);
      sep() << " {\"name\": \"";
      if (!name.empty()) {
        os << json::escape(name);
      } else {
        os << "msg " << m.id;
      }
      os << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
         << ", \"ts\": " << m.dispatch_ts
         << ", \"dur\": " << (end - m.dispatch_ts)
         << ", \"args\": {\"msg\": " << m.id << ", \"parent\": " << m.parent
         << ", \"kind\": \"" << flow_msg_kind_name(m.kind)
         << "\", \"hops\": " << m.hops
         << ", \"stall\": " << m.stall_cycles << "}}";
      // Send -> receive arrow for network-crossing messages: `s` anchors
      // in the sending handler's slice at injection, `f` (bp "e") in this
      // slice at dispatch.
      if (m.kind == FlowMsgKind::Remote) {
        const std::uint64_t fid = flow_base + m.id;
        const int src_tid =
            m.parent != 0 ? static_cast<int>(tr->msg(m.parent).priority) : 0;
        sep() << " {\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"s\", "
              << "\"id\": " << fid << ", \"pid\": "
              << (node_pid + m.src_node) << ", \"tid\": " << src_tid
              << ", \"ts\": " << m.inject_ts << "}";
        sep() << " {\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"f\", "
              << "\"bp\": \"e\", \"id\": " << fid << ", \"pid\": " << pid
              << ", \"tid\": " << tid << ", \"ts\": " << m.dispatch_ts
              << "}";
      }
    }
    for (const FlowSample& s : tr->samples) {
      for (int n = 0; n < tr->num_nodes; ++n) {
        sep() << " {\"name\": \"queue node " << n
              << "\", \"ph\": \"C\", \"pid\": " << (node_pid + n)
              << ", \"ts\": " << s.round << ", \"args\": {\"low\": "
              << s.queue_depth_low[static_cast<std::size_t>(n)]
              << ", \"high\": "
              << s.queue_depth_high[static_cast<std::size_t>(n)] << "}}";
      }
      sep() << " {\"name\": \"delivered\", \"ph\": \"C\", \"pid\": "
            << net_pid << ", \"ts\": " << s.round
            << ", \"args\": {\"messages\": " << s.messages_delivered << "}}";
      sep() << " {\"name\": \"flits\", \"ph\": \"C\", \"pid\": " << net_pid
            << ", \"ts\": " << s.round << ", \"args\": {\"flits\": "
            << s.net_flits << "}}";
    }
    flow_base += tr->messages.size();
  }
}

}  // namespace jtam::obs
