#include "obs/timeline.h"

#include <ostream>

#include "obs/replay.h"
#include "support/json.h"

namespace jtam::obs {

TimelineBuilder::TimelineBuilder(rt::BackendKind backend,
                                 const tamc::SymbolMap* map,
                                 std::size_t max_events)
    : backend_(backend), map_(map), max_events_(max_events) {}

void TimelineBuilder::emit_slice(Timeline::Slice s) {
  if (tl_.recorded_events() < max_events_) {
    tl_.slices.push_back(std::move(s));
  } else {
    ++tl_.dropped;
  }
}

void TimelineBuilder::open_slice(int level, std::uint64_t ts,
                                 const char* fallback, std::uint32_t frame) {
  Open& o = open_[level];
  o.active = true;
  o.named = map_ == nullptr;  // with a map, the first fetch names the slice
  o.ts = ts;
  o.name = fallback;
  o.frame = frame;
}

void TimelineBuilder::close_slice(int level, std::uint64_t ts) {
  Open& o = open_[level];
  if (!o.active) return;
  o.active = false;
  emit_slice(Timeline::Slice{o.ts, ts - o.ts, std::move(o.name), level,
                             o.frame});
}

void TimelineBuilder::on_block(const mdp::TraceBuffer& buf) {
  walk_fetches(
      buf,
      [&](const mdp::TraceBuffer::Mark& m) {
        const int l = m.level;
        const std::uint64_t ts = fetch_base_ + m.fetch_pos;
        const auto kind = static_cast<mdp::MarkKind>(m.kind);
        switch (kind) {
          case mdp::MarkKind::ThreadStart:
          case mdp::MarkKind::InletStart:
          case mdp::MarkKind::SysStart: {
            close_slice(l, ts);
            const char* fallback = kind == mdp::MarkKind::ThreadStart
                                       ? "thread"
                                       : kind == mdp::MarkKind::InletStart
                                             ? "inlet"
                                             : "sys";
            open_slice(l, ts, fallback, m.aux);
            const bool boundary =
                kind == mdp::MarkKind::ThreadStart
                    ? m.aux != quantum_frame_
                    : kind == mdp::MarkKind::InletStart &&
                          backend_ == rt::BackendKind::MessageDriven &&
                          l == static_cast<int>(mdp::Priority::Low) &&
                          m.aux != quantum_frame_;
            if (boundary) {
              if (quantum_.active) {
                emit_slice(Timeline::Slice{quantum_.ts, ts - quantum_.ts,
                                           std::move(quantum_.name),
                                           kTimelineQuantumTrack,
                                           quantum_.frame});
              }
              quantum_.active = true;
              quantum_.ts = ts;
              quantum_.name =
                  "quantum f=" + std::to_string(m.aux);
              quantum_.frame = m.aux;
              quantum_frame_ = m.aux;
            }
            break;
          }
          case mdp::MarkKind::Activate:
            if (tl_.recorded_events() < max_events_) {
              tl_.instants.push_back(
                  Timeline::Instant{ts, "activate", l, m.aux});
            } else {
              ++tl_.dropped;
            }
            break;
          case mdp::MarkKind::Dispatch:
          case mdp::MarkKind::Suspend:
            if (kind == mdp::MarkKind::Suspend) close_slice(l, ts);
            if (tl_.recorded_events() < max_events_) {
              tl_.queue.push_back(Timeline::QueueSample{
                  ts, l, mdp::queue_sample_depth(m.aux),
                  mdp::queue_sample_bytes(m.aux)});
            } else {
              ++tl_.dropped;
            }
            break;
          case mdp::MarkKind::FpCall:
            break;  // stays inside the calling slice
        }
      },
      [&](std::size_t i, mem::Addr addr, mdp::Priority p) {
        Open& o = open_[static_cast<int>(p)];
        if (o.active && !o.named) {
          if (const tamc::SymbolSpan* s = map_->find(addr)) {
            o.name = s->name;
          }
          o.named = true;
        }
        (void)i;
      });
  fetch_base_ += buf.fetch().size();
}

Timeline TimelineBuilder::finish() {
  close_slice(0, fetch_base_);
  close_slice(1, fetch_base_);
  if (quantum_.active) {
    quantum_.active = false;
    emit_slice(Timeline::Slice{quantum_.ts, fetch_base_ - quantum_.ts,
                               std::move(quantum_.name),
                               kTimelineQuantumTrack, quantum_.frame});
  }
  tl_.total_instructions = fetch_base_;
  return tl_;
}

void write_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, const Timeline*>>& runs) {
  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  int pid = 0;
  for (const auto& [label, tl] : runs) {
    ++pid;
    sep() << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"args\": {\"name\": \"" << json::escape(label) << "\"}}";
    static const char* kTracks[] = {"low priority", "high priority",
                                    "quanta"};
    for (int t = 0; t < 3; ++t) {
      sep() << " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
            << ", \"tid\": " << t << ", \"args\": {\"name\": \"" << kTracks[t]
            << "\"}}";
    }
    for (const auto& s : tl->slices) {
      sep() << " {\"name\": \"" << json::escape(s.name)
            << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << s.tid
            << ", \"ts\": " << s.ts << ", \"dur\": " << s.dur
            << ", \"args\": {\"frame\": " << s.frame << "}}";
    }
    for (const auto& in : tl->instants) {
      sep() << " {\"name\": \"" << json::escape(in.name)
            << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
            << ", \"tid\": " << in.tid << ", \"ts\": " << in.ts
            << ", \"args\": {\"frame\": " << in.frame << "}}";
    }
    for (const auto& q : tl->queue) {
      sep() << " {\"name\": \"queue L" << q.level
            << "\", \"ph\": \"C\", \"pid\": " << pid << ", \"ts\": " << q.ts
            << ", \"args\": {\"records\": " << q.depth
            << ", \"bytes\": " << q.bytes << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace jtam::obs
