#include "obs/profiler.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/export.h"
#include "support/json.h"

namespace jtam::obs {

Profiler::Profiler(const tamc::SymbolMap* map,
                   std::vector<cache::CacheConfig> caches)
    : ctx_(map), cache_cfgs_(std::move(caches)) {
  for (const auto& cfg : cache_cfgs_) {
    icaches_.emplace_back(cfg);
    dcaches_.emplace_back(cfg);
  }
  cells_.resize(ctx_.num_rows());
  imiss_.assign(cache_cfgs_.size() * ctx_.num_rows(), 0);
  dmiss_.assign(cache_cfgs_.size() * ctx_.num_rows(), 0);
}

void Profiler::on_block(const mdp::TraceBuffer& buf) {
  const std::size_t ncfg = cache_cfgs_.size();
  const std::size_t nrows = ctx_.num_rows();
  ctx_.walk(
      buf,
      [&](std::uint32_t row, mem::Addr addr) {
        ++cells_[row].fetch;
        for (std::size_t c = 0; c < ncfg; ++c) {
          if (!icaches_[c].read(addr)) ++imiss_[c * nrows + row];
        }
      },
      [&](std::uint32_t row, mem::Addr addr, bool is_write) {
        if (is_write) {
          ++cells_[row].write;
        } else {
          ++cells_[row].read;
        }
        for (std::size_t c = 0; c < ncfg; ++c) {
          if (!dcaches_[c].access(addr, is_write)) {
            ++dmiss_[c * nrows + row];
          }
        }
      });
}

Profile Profiler::finish() {
  Profile p;
  p.caches = cache_cfgs_;
  const std::size_t ncfg = cache_cfgs_.size();
  const std::size_t nrows = ctx_.num_rows();
  const tamc::SymbolMap& map = ctx_.map();
  for (std::size_t r = 0; r < nrows; ++r) {
    const Cell& c = cells_[r];
    if (c.fetch == 0 && c.read == 0 && c.write == 0) continue;
    ProfileRow row;
    if (r < map.spans().size()) {
      const tamc::SymbolSpan& s = map.spans()[r];
      row.name = s.name;
      row.kind = s.kind;
      row.cb = s.cb;
      row.idx = s.idx;
    } else {
      row.name = r == ctx_.row_unmapped() ? "(unmapped)" : "(dispatch)";
      row.kind = tamc::SymbolKind::Other;
    }
    row.fetches = c.fetch;
    row.reads = c.read;
    row.writes = c.write;
    row.imisses.resize(ncfg);
    row.dmisses.resize(ncfg);
    for (std::size_t cf = 0; cf < ncfg; ++cf) {
      row.imisses[cf] = imiss_[cf * nrows + r];
      row.dmisses[cf] = dmiss_[cf * nrows + r];
    }
    p.total_fetches += row.fetches;
    p.total_reads += row.reads;
    p.total_writes += row.writes;
    p.rows.push_back(std::move(row));
  }
  return p;
}

std::vector<const ProfileRow*> Profile::top(int n) const {
  std::vector<const ProfileRow*> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileRow* a, const ProfileRow* b) {
                     return a->fetches > b->fetches;
                   });
  if (n > 0 && static_cast<std::size_t>(n) < out.size()) out.resize(n);
  return out;
}

std::vector<ProfileRow> Profile::by_codeblock() const {
  std::map<int, ProfileRow> acc;
  for (const auto& r : rows) {
    if (r.cb < 0) continue;
    auto [it, fresh] = acc.try_emplace(r.cb);
    ProfileRow& g = it->second;
    if (fresh) {
      g.name = "codeblock " + std::to_string(r.cb);
      g.kind = tamc::SymbolKind::Thread;
      g.cb = r.cb;
      g.imisses.resize(caches.size());
      g.dmisses.resize(caches.size());
    }
    g.fetches += r.fetches;
    g.reads += r.reads;
    g.writes += r.writes;
    for (std::size_t c = 0; c < caches.size(); ++c) {
      g.imisses[c] += r.imisses[c];
      g.dmisses[c] += r.dmisses[c];
    }
  }
  std::vector<ProfileRow> out;
  out.reserve(acc.size());
  for (auto& [cb, row] : acc) out.push_back(std::move(row));
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileRow& a, const ProfileRow& b) {
                     return a.fetches > b.fetches;
                   });
  return out;
}

void Profile::write_csv(std::ostream& os) const {
  os << "name,kind,cb,idx,fetches,reads,writes";
  for (const auto& c : caches) os << ",imiss_" << c.name();
  for (const auto& c : caches) os << ",dmiss_" << c.name();
  os << "\n";
  for (const auto& r : rows) {
    os << csv_escape(r.name) << ',' << tamc::symbol_kind_name(r.kind) << ','
       << r.cb << ',' << r.idx << ',' << r.fetches << ',' << r.reads << ','
       << r.writes;
    for (std::uint64_t m : r.imisses) os << ',' << m;
    for (std::uint64_t m : r.dmisses) os << ',' << m;
    os << "\n";
  }
}

void Profile::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": " << kObsSchemaVersion
     << ",\n  \"caches\": [";
  for (std::size_t i = 0; i < caches.size(); ++i) {
    const auto& c = caches[i];
    os << (i == 0 ? "" : ", ") << "{\"name\": \"" << json::escape(c.name())
       << "\", \"size_bytes\": " << c.size_bytes
       << ", \"block_bytes\": " << c.block_bytes
       << ", \"assoc\": " << c.assoc << "}";
  }
  os << "],\n  \"totals\": {\"fetches\": " << total_fetches
     << ", \"reads\": " << total_reads << ", \"writes\": " << total_writes
     << "},\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json::escape(r.name) << "\", \"kind\": \""
       << tamc::symbol_kind_name(r.kind) << "\", \"cb\": " << r.cb
       << ", \"idx\": " << r.idx << ", \"fetches\": " << r.fetches
       << ", \"reads\": " << r.reads << ", \"writes\": " << r.writes
       << ", \"imisses\": [";
    for (std::size_t c = 0; c < r.imisses.size(); ++c) {
      os << (c == 0 ? "" : ", ") << r.imisses[c];
    }
    os << "], \"dmisses\": [";
    for (std::size_t c = 0; c < r.dmisses.size(); ++c) {
      os << (c == 0 ? "" : ", ") << r.dmisses[c];
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace jtam::obs
