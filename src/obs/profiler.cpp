#include "obs/profiler.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/replay.h"
#include "support/json.h"

namespace jtam::obs {

namespace {

constexpr std::uint32_t kNoPending = 0xFFFFFFFFu;

}  // namespace

Profiler::Profiler(const tamc::SymbolMap* map,
                   std::vector<cache::CacheConfig> caches)
    : map_(map), cache_cfgs_(std::move(caches)) {
  for (const auto& cfg : cache_cfgs_) {
    icaches_.emplace_back(cfg);
    dcaches_.emplace_back(cfg);
  }
  nrows_ = map_->spans().size() + 2;
  row_unmapped_ = static_cast<std::uint32_t>(map_->spans().size());
  row_dispatch_ = row_unmapped_ + 1;
  cells_.resize(nrows_);
  imiss_.assign(cache_cfgs_.size() * nrows_, 0);
  dmiss_.assign(cache_cfgs_.size() * nrows_, 0);
  // Before the first mark a level's data accesses belong to whatever
  // routine its first fetch lands in (kernel boot code): model run start
  // as a pending switch carried into the first block.
  cur_data_row_[0] = cur_data_row_[1] = row_unmapped_;
  pending_carried_[0] = pending_carried_[1] = true;
}

std::uint32_t Profiler::row_of(mem::Addr code_addr) {
  if (last_span_ != nullptr && code_addr >= last_span_->begin &&
      code_addr < last_span_->end) {
    return last_row_;
  }
  const tamc::SymbolSpan* s = map_->find(code_addr);
  if (s == nullptr) return row_unmapped_;
  last_span_ = s;
  last_row_ = static_cast<std::uint32_t>(s - map_->spans().data());
  return last_row_;
}

void Profiler::on_block(const mdp::TraceBuffer& buf) {
  const std::size_t ncfg = cache_cfgs_.size();

  // Pass 1: the fetch/mark walk.  Fetches attribute by address; marks
  // become data-context switches — Dispatch/Suspend immediately (to the
  // "(dispatch)" row, covering the machine's inter-handler queue
  // accesses), context starts at the next same-level fetch.
  switches_.clear();
  std::uint32_t pending_pos[2] = {kNoPending, kNoPending};
  for (int lv = 0; lv < 2; ++lv) {
    if (pending_carried_[lv]) pending_pos[lv] = 0;
  }
  walk_fetches(
      buf,
      [&](const mdp::TraceBuffer::Mark& m) {
        const auto kind = static_cast<mdp::MarkKind>(m.kind);
        switch (kind) {
          case mdp::MarkKind::ThreadStart:
          case mdp::MarkKind::InletStart:
          case mdp::MarkKind::SysStart:
            if (pending_pos[m.level] == kNoPending) {
              pending_pos[m.level] = m.data_pos;
            }
            break;
          case mdp::MarkKind::Dispatch:
          case mdp::MarkKind::Suspend:
            switches_.push_back(Switch{m.data_pos, m.level, row_dispatch_});
            break;
          case mdp::MarkKind::Activate:
          case mdp::MarkKind::FpCall:
            break;
        }
      },
      [&](std::size_t, mem::Addr addr, mdp::Priority p) {
        const std::uint32_t row = row_of(addr);
        ++cells_[row].fetch;
        for (std::size_t c = 0; c < ncfg; ++c) {
          if (!icaches_[c].read(addr)) ++imiss_[c * nrows_ + row];
        }
        const auto lv = static_cast<std::uint8_t>(p);
        if (pending_pos[lv] != kNoPending) {
          switches_.push_back(Switch{pending_pos[lv], lv, row});
          pending_pos[lv] = kNoPending;
        }
      });
  for (int lv = 0; lv < 2; ++lv) {
    // A pending switch with no resolving fetch in this block carries over;
    // the invariant (no same-level data between a mark and its resolving
    // fetch) means applying it at position 0 of the next block is exact.
    pending_carried_[lv] = pending_pos[lv] != kNoPending;
  }

  // Pass 2: the data walk, applying switches at their recorded positions.
  std::stable_sort(switches_.begin(), switches_.end(),
                   [](const Switch& a, const Switch& b) {
                     return a.data_pos < b.data_pos;
                   });
  const auto& data = buf.data();
  std::size_t si = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    while (si < switches_.size() && switches_[si].data_pos <= i) {
      cur_data_row_[switches_[si].level] = switches_[si].row;
      ++si;
    }
    const std::uint32_t w = data[i];
    const std::uint32_t addr = w & ~3u;
    const bool is_write = (w & 1u) != 0;
    const std::uint32_t row = cur_data_row_[(w >> 1) & 1u];
    if (is_write) {
      ++cells_[row].write;
    } else {
      ++cells_[row].read;
    }
    for (std::size_t c = 0; c < ncfg; ++c) {
      if (!dcaches_[c].access(addr, is_write)) ++dmiss_[c * nrows_ + row];
    }
  }
  for (; si < switches_.size(); ++si) {
    cur_data_row_[switches_[si].level] = switches_[si].row;
  }
}

Profile Profiler::finish() {
  Profile p;
  p.caches = cache_cfgs_;
  const std::size_t ncfg = cache_cfgs_.size();
  for (std::size_t r = 0; r < nrows_; ++r) {
    const Cell& c = cells_[r];
    if (c.fetch == 0 && c.read == 0 && c.write == 0) continue;
    ProfileRow row;
    if (r < map_->spans().size()) {
      const tamc::SymbolSpan& s = map_->spans()[r];
      row.name = s.name;
      row.kind = s.kind;
      row.cb = s.cb;
      row.idx = s.idx;
    } else {
      row.name = r == row_unmapped_ ? "(unmapped)" : "(dispatch)";
      row.kind = tamc::SymbolKind::Other;
    }
    row.fetches = c.fetch;
    row.reads = c.read;
    row.writes = c.write;
    row.imisses.resize(ncfg);
    row.dmisses.resize(ncfg);
    for (std::size_t cf = 0; cf < ncfg; ++cf) {
      row.imisses[cf] = imiss_[cf * nrows_ + r];
      row.dmisses[cf] = dmiss_[cf * nrows_ + r];
    }
    p.total_fetches += row.fetches;
    p.total_reads += row.reads;
    p.total_writes += row.writes;
    p.rows.push_back(std::move(row));
  }
  return p;
}

std::vector<const ProfileRow*> Profile::top(int n) const {
  std::vector<const ProfileRow*> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileRow* a, const ProfileRow* b) {
                     return a->fetches > b->fetches;
                   });
  if (n > 0 && static_cast<std::size_t>(n) < out.size()) out.resize(n);
  return out;
}

std::vector<ProfileRow> Profile::by_codeblock() const {
  std::map<int, ProfileRow> acc;
  for (const auto& r : rows) {
    if (r.cb < 0) continue;
    auto [it, fresh] = acc.try_emplace(r.cb);
    ProfileRow& g = it->second;
    if (fresh) {
      g.name = "codeblock " + std::to_string(r.cb);
      g.kind = tamc::SymbolKind::Thread;
      g.cb = r.cb;
      g.imisses.resize(caches.size());
      g.dmisses.resize(caches.size());
    }
    g.fetches += r.fetches;
    g.reads += r.reads;
    g.writes += r.writes;
    for (std::size_t c = 0; c < caches.size(); ++c) {
      g.imisses[c] += r.imisses[c];
      g.dmisses[c] += r.dmisses[c];
    }
  }
  std::vector<ProfileRow> out;
  out.reserve(acc.size());
  for (auto& [cb, row] : acc) out.push_back(std::move(row));
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileRow& a, const ProfileRow& b) {
                     return a.fetches > b.fetches;
                   });
  return out;
}

void Profile::write_csv(std::ostream& os) const {
  os << "name,kind,cb,idx,fetches,reads,writes";
  for (const auto& c : caches) os << ",imiss_" << c.name();
  for (const auto& c : caches) os << ",dmiss_" << c.name();
  os << "\n";
  for (const auto& r : rows) {
    os << r.name << ',' << tamc::symbol_kind_name(r.kind) << ',' << r.cb
       << ',' << r.idx << ',' << r.fetches << ',' << r.reads << ','
       << r.writes;
    for (std::uint64_t m : r.imisses) os << ',' << m;
    for (std::uint64_t m : r.dmisses) os << ',' << m;
    os << "\n";
  }
}

void Profile::write_json(std::ostream& os) const {
  os << "{\n  \"caches\": [";
  for (std::size_t i = 0; i < caches.size(); ++i) {
    const auto& c = caches[i];
    os << (i == 0 ? "" : ", ") << "{\"name\": \"" << json::escape(c.name())
       << "\", \"size_bytes\": " << c.size_bytes
       << ", \"block_bytes\": " << c.block_bytes
       << ", \"assoc\": " << c.assoc << "}";
  }
  os << "],\n  \"totals\": {\"fetches\": " << total_fetches
     << ", \"reads\": " << total_reads << ", \"writes\": " << total_writes
     << "},\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json::escape(r.name) << "\", \"kind\": \""
       << tamc::symbol_kind_name(r.kind) << "\", \"cb\": " << r.cb
       << ", \"idx\": " << r.idx << ", \"fetches\": " << r.fetches
       << ", \"reads\": " << r.reads << ", \"writes\": " << r.writes
       << ", \"imisses\": [";
    for (std::size_t c = 0; c < r.imisses.size(); ++c) {
      os << (c == 0 ? "" : ", ") << r.imisses[c];
    }
    os << "], \"dmisses\": [";
    for (std::size_t c = 0; c < r.dmisses.size(); ++c) {
      os << (c == 0 ? "" : ", ") << r.dmisses[c];
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace jtam::obs
