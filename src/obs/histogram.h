// Fixed-footprint distribution accumulator for simulated quantities.
//
// The paper's Table 2 reports only *means* (TPQ, IPT, IPQ); the point of
// the observability layer is to keep the whole distribution.  Values are
// binned into power-of-two buckets (bucket b holds [2^(b-1), 2^b), with
// dedicated buckets for 0 and 1), which bounds memory at 64 counters no
// matter how many samples arrive while keeping exact count/sum/min/max.
// Percentiles are reported from the buckets with linear interpolation
// inside the crossing bucket — deterministic, and tight enough for the
// "is the tail 10x the median?" questions the histograms exist to answer.
#pragma once

#include <cstdint>
#include <string>

namespace jtam::obs {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t v, std::uint64_t weight = 1);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value below which a `p` fraction of samples fall (0 < p <= 1),
  /// interpolated within the crossing bucket; 0 when empty.
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }

  std::uint64_t bucket_count(int b) const { return buckets_[b]; }
  /// Inclusive value range [lo, hi] covered by bucket `b`.
  static void bucket_range(int b, std::uint64_t* lo, std::uint64_t* hi);

  /// One-line rendering ("n=.. mean=.. p50=.. p95=.. max=..") for bench
  /// tables and log output; "n=0" when empty.
  std::string summary() const;

  /// Exact state equality (every bucket, count/sum/min/max) — what the
  /// multi-node determinism tests compare run-to-run.
  bool operator==(const Histogram& o) const;

  /// Merge another histogram into this one (cross-node aggregation).  The
  /// result is exactly the histogram that adding both sample multisets
  /// into one accumulator would have produced — add() is order-independent
  /// — so merged per-node histograms tie out bit-exactly against a
  /// machine-level one (tests/flow_test.cpp).
  Histogram& operator+=(const Histogram& o);
  Histogram& merge(const Histogram& o) { return *this += o; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace jtam::obs
