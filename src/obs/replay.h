// Shared walk over one batched trace block: fetches in order with marks
// applied at their recorded fetch positions — the same merge the stats
// replay performs, exposed as a header-only helper so every observability
// consumer reproduces the exact fetch/mark interleaving without copying
// the loop.  Data events are not part of this walk; consumers that need
// them attribute via TraceBuffer::Mark::data_pos (see profiler.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "mdp/machine.h"

namespace jtam::obs {

/// Calls `on_mark(const TraceBuffer::Mark&)` and
/// `on_fetch(std::size_t index, mem::Addr addr, mdp::Priority level)` in
/// the exact order the machine produced them.
template <typename MarkFn, typename FetchFn>
inline void walk_fetches(const mdp::TraceBuffer& buf, MarkFn&& on_mark,
                         FetchFn&& on_fetch) {
  const auto& fetch = buf.fetch();
  const auto& marks = buf.marks();
  std::size_t mi = 0;
  for (std::size_t i = 0; i < fetch.size(); ++i) {
    while (mi < marks.size() && marks[mi].fetch_pos == i) {
      on_mark(marks[mi++]);
    }
    const std::uint32_t w = fetch[i];
    on_fetch(i, w & ~3u,
             (w & 1u) != 0 ? mdp::Priority::High : mdp::Priority::Low);
  }
  while (mi < marks.size()) on_mark(marks[mi++]);
}

}  // namespace jtam::obs
