#include "obs/export.h"

#include <fstream>
#include <iostream>
#include <ostream>

namespace jtam::obs {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

bool write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& writer,
                const std::string& note) {
  std::ofstream out(path);
  if (out) writer(out);
  if (!out) {
    std::cerr << "warning: could not write " << what << " to " << path << "\n";
    return false;
  }
  std::cerr << "  wrote " << path;
  if (!note.empty()) std::cerr << " " << note;
  std::cerr << "\n";
  return true;
}

std::ostream& JsonListSep::next(std::ostream& os) {
  os << (first_ ? "\n" : ",\n");
  first_ = false;
  return os;
}

}  // namespace jtam::obs
