#include "driver/trace_buffer.h"

#include <algorithm>
#include <chrono>

namespace jtam::driver {

void TracePipeline::on_block(const mdp::TraceBuffer& buf) {
  if (!timed_) {
    for (TraceConsumer* c : consumers_) c->on_block(buf);
    return;
  }
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    consumers_[i]->on_block(buf);
    times_[i].ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++times_[i].blocks;
  }
}

namespace {

inline mdp::Priority level_of(std::uint32_t bit) {
  return bit != 0 ? mdp::Priority::High : mdp::Priority::Low;
}

/// Replay a block's fetches with marks applied at their recorded
/// positions, then its data stream.  Sink must be a concrete (final) type
/// for the calls to devirtualize; the template keeps one copy of the walk.
template <typename Sink>
void replay_block(const mdp::TraceBuffer& buf, Sink* sink) {
  const auto& fetch = buf.fetch();
  const auto& marks = buf.marks();
  std::size_t mi = 0;
  for (std::size_t i = 0; i < fetch.size(); ++i) {
    while (mi < marks.size() && marks[mi].fetch_pos == i) {
      const auto& m = marks[mi++];
      sink->on_mark(static_cast<mdp::MarkKind>(m.kind), m.aux,
                    static_cast<mdp::Priority>(m.level));
    }
    const std::uint32_t w = fetch[i];
    sink->on_fetch(w & ~3u, level_of(w & 1u));
  }
  while (mi < marks.size()) {
    const auto& m = marks[mi++];
    sink->on_mark(static_cast<mdp::MarkKind>(m.kind), m.aux,
                  static_cast<mdp::Priority>(m.level));
  }
  for (const std::uint32_t w : buf.data()) {
    if ((w & 1u) != 0) {
      sink->on_write(w & ~3u, level_of(w & 2u));
    } else {
      sink->on_read(w & ~3u, level_of(w & 2u));
    }
  }
}

}  // namespace

void StatsReplay::on_block(const mdp::TraceBuffer& buf) {
  // Same fetch/mark interleaving as replay_block, but the fetches between
  // consecutive marks go to the sink as one span: contexts change only at
  // marks, so StatsSink can attribute each span in bulk (bit-identical —
  // every stats counter is an order-independent sum).
  const auto& fetch = buf.fetch();
  const auto& marks = buf.marks();
  const std::size_t nf = fetch.size();
  std::size_t mi = 0;
  std::size_t i = 0;
  while (i < nf || mi < marks.size()) {
    while (mi < marks.size() && marks[mi].fetch_pos == i) {
      const auto& m = marks[mi++];
      sink_->on_mark(static_cast<mdp::MarkKind>(m.kind), m.aux,
                     static_cast<mdp::Priority>(m.level));
    }
    if (i >= nf) break;  // only trailing marks were left, now drained
    const std::size_t end =
        mi < marks.size() ? std::min<std::size_t>(marks[mi].fetch_pos, nf)
                          : nf;
    sink_->on_fetch_span(fetch.data() + i, end - i);
    i = end;
  }
  sink_->on_data_span(buf.data().data(), buf.data().size());
}

void SinkReplay::on_block(const mdp::TraceBuffer& buf) {
  replay_block(buf, sink_);
}

CacheBankConsumer::CacheBankConsumer(cache::CacheBank* bank,
                                     support::ThreadPool* pool,
                                     std::size_t shards)
    : bank_(bank),
      pool_(pool),
      shards_(std::max<std::size_t>(1, std::min(shards, bank->size()))) {}

void CacheBankConsumer::on_block(const mdp::TraceBuffer& buf) {
  const std::uint32_t* fw = buf.fetch().data();
  const std::size_t nf = buf.fetch().size();
  const std::uint32_t* dw = buf.data().data();
  const std::size_t nd = buf.data().size();
  if (pool_ == nullptr || shards_ <= 1) {
    bank_->consume_block_range(0, bank_->size(), fw, nf, dw, nd);
    return;
  }
  const std::size_t n = bank_->size();
  const std::size_t per = (n + shards_ - 1) / shards_;
  pool_->parallel_for(shards_, [&](std::size_t s) {
    const std::size_t begin = s * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin < end) bank_->consume_block_range(begin, end, fw, nf, dw, nd);
  });
}

void StackBankConsumer::on_block(const mdp::TraceBuffer& buf) {
  const std::uint32_t* fw = buf.fetch().data();
  const std::size_t nf = buf.fetch().size();
  const std::uint32_t* dw = buf.data().data();
  const std::size_t nd = buf.data().size();
  const std::size_t n = bank_->num_tasks();
  if (pool_ == nullptr || n <= 1) {
    for (std::size_t t = 0; t < n; ++t) bank_->run_task(t, fw, nf, dw, nd);
    return;
  }
  pool_->parallel_for(n, [&](std::size_t t) {
    bank_->run_task(t, fw, nf, dw, nd);
  });
}

}  // namespace jtam::driver
