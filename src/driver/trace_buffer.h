// Consumers for the batched trace pipeline (mdp::TraceBuffer).
//
// The machine appends packed SoA events; when a block fills, the attached
// TracePipeline fans it out to consumers: granularity/count accounting
// (StatsReplay), the cache ladder (CacheBankConsumer, optionally sharded
// across a worker pool), and a compatibility adapter (SinkReplay) for
// legacy per-event TraceSink implementations.
//
// Determinism: every consumer below produces results bit-identical to the
// seed per-event path.  Stats accounting needs only the fetch/mark
// interleaving (reads and writes are pure region counters), which the
// buffer preserves exactly; each cache configuration is a deterministic
// automaton over its own I- or D-stream, and configurations share no
// state, so splitting them across threads cannot change any per-config
// count.  tests/pipeline_test.cpp enforces this equivalence on real
// workload runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/cache_bank.h"
#include "cache/stack_sim.h"
#include "mdp/machine.h"
#include "metrics/granularity.h"
#include "support/thread_pool.h"

namespace jtam::driver {

/// One stage of the batched pipeline: receives each full block once.
class TraceConsumer {
 public:
  virtual ~TraceConsumer() = default;
  virtual void on_block(const mdp::TraceBuffer& buf) = 0;
};

/// The drain a TraceBuffer flushes into: forwards each block to an ordered
/// list of consumers (the batched analogue of Machine::set_sink).
///
/// Stage timing (obs::HostReport): enable_stage_timing() wraps every
/// consumer call in a steady-clock pair, accumulating per-stage wall time
/// under the name passed to add().  Off by default and zero-cost when off
/// (one branch per block, not per event); it measures the simulator, never
/// the simulated program, so it cannot perturb any result.
class TracePipeline final : public mdp::TraceDrain {
 public:
  /// Cumulative wall time one consumer spent draining blocks.
  struct StageTime {
    const char* name = "stage";
    std::uint64_t ns = 0;
    std::uint64_t blocks = 0;
  };

  void add(TraceConsumer* c, const char* name = "stage") {
    consumers_.push_back(c);
    times_.push_back(StageTime{name, 0, 0});
  }
  void enable_stage_timing() { timed_ = true; }
  const std::vector<StageTime>& stage_times() const { return times_; }

  void on_block(const mdp::TraceBuffer& buf) override;

 private:
  std::vector<TraceConsumer*> consumers_;
  std::vector<StageTime> times_;
  bool timed_ = false;
};

/// Replays blocks into the granularity/count accumulator.  Marks are
/// applied at their recorded fetch positions, reproducing the exact
/// context attribution of the per-event path; StatsSink is final, so the
/// calls devirtualize.
class StatsReplay final : public TraceConsumer {
 public:
  explicit StatsReplay(metrics::StatsSink* sink) : sink_(sink) {}
  void on_block(const mdp::TraceBuffer& buf) override;

 private:
  metrics::StatsSink* sink_;
};

/// Compatibility adapter: replays blocks into any legacy TraceSink.  The
/// fetch/mark interleaving and the read/write order are exact; the
/// interleaving of data accesses with fetches is not (data events replay
/// after the block's fetches).  Sinks that need the full order — e.g. the
/// scheduling-trace example — should stay on Machine::set_sink.
class SinkReplay final : public TraceConsumer {
 public:
  explicit SinkReplay(mdp::TraceSink* sink) : sink_(sink) {}
  void on_block(const mdp::TraceBuffer& buf) override;

 private:
  mdp::TraceSink* sink_;
};

/// Drains blocks into a CacheBank, splitting the configurations into
/// contiguous shards executed on a worker pool (serially when `pool` is
/// null or `shards` <= 1).
class CacheBankConsumer final : public TraceConsumer {
 public:
  CacheBankConsumer(cache::CacheBank* bank, support::ThreadPool* pool,
                    std::size_t shards);
  void on_block(const mdp::TraceBuffer& buf) override;

 private:
  cache::CacheBank* bank_;
  support::ThreadPool* pool_;
  std::size_t shards_;
};

/// Drains blocks into a StackSimBank.  The bank splits its work into
/// independent (block-size group, stream, set shard) tasks; they share no
/// state, so running them on a worker pool (serially when `pool` is null)
/// is bit-identical to any other schedule.  Where CacheBankConsumer shards
/// by configuration, the stack engine has only one simulator per stream —
/// parallelism comes from partitioning the *sets* instead.
class StackBankConsumer final : public TraceConsumer {
 public:
  StackBankConsumer(cache::StackSimBank* bank, support::ThreadPool* pool)
      : bank_(bank), pool_(pool) {}
  void on_block(const mdp::TraceBuffer& buf) override;

 private:
  cache::StackSimBank* bank_;
  support::ThreadPool* pool_;
};

}  // namespace jtam::driver
