#include "driver/report.h"

#include <ostream>

#include "support/error.h"
#include "support/text.h"

namespace jtam::driver {

void print_run_summary(std::ostream& os, const RunResult& r) {
  os << r.workload << " [" << rt::backend_name(r.backend) << "] "
     << mdp::run_status_name(r.status) << ", "
     << text::with_commas(r.instructions) << " instructions, TPQ "
     << text::fixed(r.gran.tpq(), 1) << ", IPT "
     << text::fixed(r.gran.ipt(), 1) << ", IPQ "
     << text::fixed(r.gran.ipq(), 0);
  if (!r.check_error.empty()) os << "  ORACLE-FAILED: " << r.check_error;
  os << "\n";
}

void print_ratio_table(std::ostream& os, const std::string& title,
                       const std::vector<std::string>& xs,
                       const std::vector<Series>& series) {
  os << title << "\n";
  text::Table t;
  std::vector<std::string> head{"x"};
  for (const Series& s : series) head.push_back(s.name);
  t.header(head);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{xs[i]};
    for (const Series& s : series) {
      row.push_back(i < s.values.size() ? text::fixed(s.values[i], 3) : "-");
    }
    t.row(row);
  }
  t.print(os);
  os << "\n";
}

void require_ok(const std::vector<const RunResult*>& runs) {
  for (const RunResult* r : runs) {
    JTAM_CHECK(r->ok(), "run '" + r->workload + "' [" +
                            rt::backend_name(r->backend) +
                            "] failed: " + r->check_error);
  }
}

}  // namespace jtam::driver
