// Experiment driver: compile a workload for one back-end, load it onto a
// fresh machine, run it while streaming every memory reference into the
// granularity metrics and (optionally) the full cache ladder, and validate
// the final state against the workload's oracle.
//
// This is the code path every bench binary uses; one simulation per
// (workload, back-end) feeds all cache configurations simultaneously.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_bank.h"
#include "mdp/multi.h"
#include "mdp/placement.h"
#include "metrics/cycles.h"
#include "metrics/granularity.h"
#include "net/aggregate.h"
#include "net/network.h"
#include "obs/options.h"
#include "programs/registry.h"
#include "tamc/lower.h"

namespace jtam::obs {
struct Report;
struct FlowTrace;
struct HostReport;
struct SignalSnapshot;
class SignalHub;
}

namespace jtam::driver {

/// Which simulator computes the cache ladder's counts (see
/// RunOptions::engine).
enum class CacheEngine { Stack, Classic };

struct RunOptions {
  rt::BackendKind backend = rt::BackendKind::ActiveMessages;
  bool am_enabled_variant = false;       // §2.4 ablation
  /// §2.3 describes the MD inlet/thread optimizations as *possible* ("a
  /// subset of these optimizations can be performed"), not as part of the
  /// measured system — so the paper-faithful default is off; bench_mdopt
  /// quantifies what they would have bought.
  tamc::MdOptions md = tamc::MdOptions::none();
  bool with_cache = true;
  std::uint32_t block_bytes = 64;        // §3.3: 64-byte blocks by default
  std::uint32_t queue_bytes = mem::kQueueBytes;
  std::uint64_t max_instructions = 600'000'000ULL;

  // Performance knobs.  These select *how* the reference stream is
  // consumed, never what is measured: every combination produces
  // bit-identical RunResults (enforced by tests/pipeline_test.cpp and
  // tests/stacksim_test.cpp), so they are excluded from the
  // run-memoization key.
  /// Cache engine.  `Stack` (default) computes the whole ladder in one
  /// stack-distance pass per reference stream (cache::StackSimBank);
  /// `Classic` fans every reference out to ~24 SetAssocCache instances.
  /// Both produce bit-identical counts; Classic remains the equivalence
  /// baseline and the only engine of the seed per-event path.
  CacheEngine engine = CacheEngine::Stack;
  /// Interpreter engine.  `Decoded` (default) runs the pre-decoded micro-op
  /// engine with token-threaded dispatch and superblock chaining
  /// (src/mdp/dispatch.cpp); `Classic` is the seed per-step
  /// fetch/decode/switch loop, kept as the equivalence baseline.  Both
  /// produce bit-identical results (tests/interp_test.cpp).
  mdp::DispatchKind dispatch = mdp::DispatchKind::Decoded;
  /// Batched SoA trace blocks (default) vs the seed's per-event TraceSink
  /// path, kept as the equivalence baseline.
  bool batched_trace = true;
  /// Cache-bank shard workers: 0 = auto (shared pool when the host has
  /// more than one CPU), 1 = serial in-line, N > 1 = shard the ~24
  /// configurations N ways across the shared pool.
  unsigned cache_workers = 0;

  /// Observability collectors (src/obs) to attach to the run.  Like the
  /// pipeline knobs above, these never change a measured number — the
  /// collectors only observe the trace stream (tests/obs_test.cpp asserts
  /// bit-identical RunResults) — so they too are excluded from the
  /// run-memoization key.  Requires the batched pipeline; on the seed
  /// per-event path no report is produced.
  obs::Options obs;
};

struct ConfigResult {
  cache::CacheConfig config;
  cache::CacheStats icache;
  cache::CacheStats dcache;
};

struct RunResult {
  std::string workload;
  rt::BackendKind backend{};
  mdp::RunStatus status{};
  std::uint32_t halt_value = 0;
  std::string check_error;  // empty == oracle passed
  std::uint64_t instructions = 0;
  metrics::Granularity gran;
  metrics::AccessCounts counts;
  std::vector<ConfigResult> cache;
  std::uint32_t queue_high_water[2] = {0, 0};  // [low, high]
  /// Observability report, present when RunOptions::obs requested any
  /// collector (and the batched pipeline ran).  Not a measured number:
  /// memoized results and equivalence comparisons ignore it.
  std::shared_ptr<const obs::Report> obs;

  bool ok() const {
    return status == mdp::RunStatus::Halted && check_error.empty();
  }
  /// Cycles at a given cache geometry and miss penalty.
  std::uint64_t cycles(std::uint32_t size_bytes, std::uint32_t assoc,
                       std::uint32_t penalty) const;
  const ConfigResult& config(std::uint32_t size_bytes,
                             std::uint32_t assoc) const;
};

/// Run one workload under one back-end.  Throws jtam::Error on simulator
/// faults; scheduling deadlock and oracle mismatches are reported in the
/// result instead so benches can flag them.
RunResult run_workload(const programs::Workload& w, const RunOptions& opts);

/// A compiled workload loaded onto a fresh machine, boot messages queued,
/// ready to run — for callers that want to attach their own TraceSink or
/// single-step (see examples/scheduling_trace.cpp).
struct PreparedRun {
  tamc::CompiledProgram compiled;
  std::unique_ptr<mdp::Machine> machine;
};
PreparedRun prepare_run(const programs::Workload& w, const RunOptions& opts);

/// Multi-node run (the paper's stated future work): the workload executes
/// on `num_nodes` MDP nodes joined by a network model from src/net, frames
/// placed round-robin.  Cache simulation is omitted (the paper's cache
/// study is uniprocessor); the oracle still validates the results and the
/// round clock gives a parallel-time estimate.
struct MultiOptions {
  int num_nodes = 4;
  net::NetKind net = net::NetKind::Ideal;
  std::uint32_t latency = 16;               // ideal wire delivery delay
  std::uint32_t max_inflight_messages = 0;  // ideal wire bound (0 = none)
  std::uint32_t link_buffer_flits = 4;      // mesh per-link VN FIFO depth
  /// Software message aggregation (net::AggregateNetwork) in front of the
  /// network model.  Off (the default) is bit-identical to the bare model
  /// (tests/aggregate_test.cpp).  Unlike `flow` below, aggregation and
  /// placement DO change measured numbers — if memoization is ever
  /// extended to multi-node runs these four fields (and `placement`) must
  /// join the memo key.
  net::AggMode agg = net::AggMode::Off;
  std::uint32_t agg_bytes = 256;    // aggregation seal threshold
  std::uint32_t agg_timeout = 64;   // max cycles a partial buffer waits
  /// SENDDR frame-placement policy (mdp::PlacementPolicy).  The default
  /// round-robin is bit-identical to the seed's hard-wired counter.
  mdp::PlacementConfig placement;
  /// Causal message tracing (obs::FlowTracer).  Observation only: every
  /// measured field of MultiRunResult is bit-identical with tracing on
  /// (tests/flow_test.cpp).  Multi-node runs are never memoized, so —
  /// like RunOptions::obs — this needs no memo-key entry; keep it that
  /// way if memoization is ever extended to them.
  obs::FlowOptions flow;
  /// Worker threads for the conservatively-synchronized parallel engine
  /// (mdp/parmulti.cpp).  0 (default) runs the classic serial round loop;
  /// >= 1 runs the windowed engine with that many shard workers, with
  /// results bit-identical to serial (tests/parmulti_test.cpp).  The
  /// engine falls back to serial when flow tracing is on (per-instruction
  /// probes may not fire from worker threads) or the network has no
  /// lookahead (bounded ideal wire); MultiRunResult::parallel reports
  /// what actually ran.
  unsigned threads = 0;
  /// Host-time observatory (obs::HostProfiler): wall-clock phase and
  /// shard-busy attribution of whichever engine ran.  Observation only —
  /// every measured field is bit-identical with it on
  /// (tests/hostobs_test.cpp) — and, measuring only the host, exempt from
  /// any future memo key the same way `flow` is.
  bool host_profile = false;
  /// Online signal bus (obs::SignalHub): per-node streaming scheduler
  /// telemetry published to lock-free boards during the run.  Observation
  /// only, same contract as `host_profile`.  Works under both engines —
  /// the hub's buffers attach after the engine choice, so signals never
  /// force the serial loop.
  obs::SignalOptions signals;
  /// Live-query seam: invoked once the signal hub exists (signals.enabled
  /// only), before the run starts.  Watcher threads and dashboards
  /// (examples/signal_watch.cpp) hold the shared_ptr and read
  /// hub->board(n) concurrently with the run — the seqlock makes that
  /// race-free — and must drop it when done; the driver keeps its own
  /// reference until the final snapshot is taken.
  std::function<void(std::shared_ptr<const obs::SignalHub>)> on_signals_ready;
};

struct MultiRunResult {
  std::string workload;
  rt::BackendKind backend{};
  int num_nodes = 0;
  net::NetKind net{};
  mdp::RunStatus status{};
  std::uint32_t halt_value = 0;
  std::string check_error;
  std::uint64_t rounds = 0;          // parallel steps (all nodes advance 1/round)
  std::uint64_t total_instructions = 0;
  std::uint64_t messages = 0;        // network messages (remote sends)
  std::vector<std::uint64_t> per_node_instructions;
  /// Injection backpressure: rounds each node spent stalled on a SENDE the
  /// network refused, and how many distinct sends were refused-then-retried.
  std::vector<std::uint64_t> per_node_injection_stalls;
  std::uint64_t injection_stall_cycles = 0;  // sum over nodes
  std::uint64_t stalled_sends = 0;
  /// Network-carried metrics: per-message link hops and inject-to-deliver
  /// latency (cycles), plus per-link flit counters (mesh only).
  obs::Histogram hops;
  obs::Histogram msg_latency;
  std::vector<net::LinkStats> links;
  std::uint64_t net_cycles = 0;
  /// The complete network-stats block (supersets hops/msg_latency/links/
  /// net_cycles, which stay for existing callers) including the
  /// aggregation counters; net_stats.agg is all-zero when aggregation is
  /// off.  Compare whole runs with net::NetStats::operator==.
  net::NetStats net_stats;
  /// Per-node idle/queue state when status == Deadlock; empty otherwise.
  std::string deadlock_report;
  /// Causal flow trace, present when MultiOptions::flow asked for one
  /// (symbols already attached).  Not a measured number: equivalence
  /// comparisons ignore it.
  std::shared_ptr<const obs::FlowTrace> flow;
  /// Per-node granularity counters (threads, inlets, activations, ...),
  /// collected only when flow tracing is on — the tie-out target for the
  /// trace's per-message mark attribution.
  std::vector<metrics::Granularity> per_node_gran;
  /// What the parallel engine actually did (all-zero / engaged == false
  /// for serial runs).  Not a measured number: equivalence comparisons
  /// ignore it.
  mdp::MultiMachine::ParallelStats parallel;
  /// Host-time observatory report, present when MultiOptions::host_profile
  /// was set.  Wall-clock only: equivalence comparisons ignore it.
  std::shared_ptr<const obs::HostReport> host;
  /// Final signal-bus snapshot (per-node frames + tie-out Distributions),
  /// present when MultiOptions::signals.enabled.  Equivalence comparisons
  /// ignore it.
  std::shared_ptr<const obs::SignalSnapshot> signals;
  bool ok() const {
    return status == mdp::RunStatus::Halted && check_error.empty();
  }
};
MultiRunResult run_workload_multi(const programs::Workload& w,
                                  const RunOptions& opts,
                                  const MultiOptions& mopts);
/// Convenience overload: `num_nodes` on the default ideal wire.
MultiRunResult run_workload_multi(const programs::Workload& w,
                                  const RunOptions& opts, int num_nodes,
                                  std::uint32_t latency = 16);

/// Run under both back-ends with otherwise identical options.  Routed
/// through run_many, so the two simulations execute concurrently on
/// multi-CPU hosts and repeated calls hit the memo.
struct BackendPair {
  RunResult md;
  RunResult am;
  /// The paper's headline metric: MD cycles / AM cycles.
  double ratio(std::uint32_t size_bytes, std::uint32_t assoc,
               std::uint32_t penalty) const;
};
BackendPair run_both(const programs::Workload& w, RunOptions opts);

/// One (workload, options) simulation request for run_many.
struct RunRequest {
  programs::Workload workload;
  RunOptions opts;
};

/// Execute a batch of independent simulations, in parallel when the host
/// has multiple CPUs, and return results in request order.
///
/// Completed runs are memoized process-wide, keyed by the workload's
/// identity key and the result-relevant options — the figure benches
/// (fig3/4/5/6 share identical runs) therefore simulate each (workload,
/// back-end) pair at most once per process.  Workloads with an empty
/// `key` are never memoized.  `workers` caps the concurrency (0 = one per
/// hardware thread).  Concurrent runs disable per-run cache sharding —
/// outer parallelism already saturates the machine.
std::vector<RunResult> run_many(const std::vector<RunRequest>& reqs,
                                unsigned workers = 0);

/// Simulate one workload at several block sizes from a single machine pass.
///
/// The reference stream a workload emits does not depend on the cache
/// block size — the cache is a passive observer — so a block-size sweep
/// needs one simulation feeding a StackSimBank whose ladder spans every
/// requested block size, not one machine run per size.  Returns one
/// RunResult per entry of `blocks`, each bit-identical to
/// `run_workload(w, opts with block_bytes = blocks[i])`, and memoizes them
/// under the same keys run_many uses (already-memoized sizes are served
/// without touching the machine; the memo counts one miss per machine pass
/// actually executed).
///
/// Requires the stack engine and the batched pipeline (the classic engine
/// falls back to one run_workload per block size); obs collectors are not
/// attached on the shared pass.
std::vector<RunResult> run_blocksize_sweep(
    const programs::Workload& w, const RunOptions& opts,
    std::span<const std::uint32_t> blocks);

/// Observability/test hooks for the run memo.
struct RunMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  // simulations actually executed
};
RunMemoStats run_memo_stats();
void clear_run_memo();

}  // namespace jtam::driver
