#include "driver/experiment.h"

#include "mdp/multi.h"

#include <memory>
#include <utility>

#include "runtime/kernel.h"
#include "runtime/layout.h"
#include "support/error.h"

namespace jtam::driver {

namespace {

/// Write the codeblock descriptor table and entry-count templates into the
/// system-table region, and initialize the OS globals — what the J-Machine
/// boot loader established before user code ran.
void install_runtime_state(mdp::Machine& m,
                           const tamc::CompiledProgram& cp) {
  using mem::Addr;
  const auto& layouts = cp.layouts;
  Addr tmpl_cursor = mem::kSysTableBase +
                     static_cast<Addr>(rt::kMaxCodeblocks * rt::kCbDescBytes);
  for (std::size_t cb = 0; cb < layouts.size(); ++cb) {
    const rt::FrameLayout& fl = layouts[cb];
    const Addr desc = mem::kSysTableBase +
                      static_cast<Addr>(cb) * rt::kCbDescBytes;
    m.store_word(desc + 0, static_cast<std::uint32_t>(fl.frame_bytes));
    m.store_word(desc + 4, static_cast<std::uint32_t>(fl.ec_off));
    m.store_word(desc + 8, static_cast<std::uint32_t>(fl.num_ec));
    m.store_word(desc + 12, tmpl_cursor);
    for (int e = 0; e < fl.num_ec; ++e) {
      m.store_word(tmpl_cursor, static_cast<std::uint32_t>(fl.ec_init[e]));
      tmpl_cursor += 4;
    }
    JTAM_CHECK(tmpl_cursor <= mem::kSysTableLimit,
               "entry-count templates overflow the system table region");
  }

  // OS globals and the LCV stop sentinel.
  m.store_word(rt::kGlLcvTop, rt::kLcvEmptyTop);
  m.store_word(mem::kLcvBase, cp.lcv_sentinel());
  m.store_word(rt::kGlCurFrame, 0);
  m.store_word(rt::kGlSchedActive, 0);
  m.store_word(rt::kGlFqHead, 0);
  m.store_word(rt::kGlFqTail, 0);
  for (int cb = 0; cb < rt::kMaxCodeblocks; ++cb) {
    m.store_word(rt::kGlFreeHeads + static_cast<Addr>(4 * cb), 0);
  }
}

}  // namespace

std::uint64_t RunResult::cycles(std::uint32_t size_bytes, std::uint32_t assoc,
                                std::uint32_t penalty) const {
  const ConfigResult& c = config(size_bytes, assoc);
  return metrics::total_cycles(instructions, c.icache, c.dcache, penalty);
}

const ConfigResult& RunResult::config(std::uint32_t size_bytes,
                                      std::uint32_t assoc) const {
  for (const ConfigResult& c : cache) {
    if (c.config.size_bytes == size_bytes && c.config.assoc == assoc) {
      return c;
    }
  }
  throw Error("run has no cache configuration " + std::to_string(size_bytes) +
              "B/" + std::to_string(assoc) + "-way");
}

PreparedRun prepare_run(const programs::Workload& w, const RunOptions& opts) {
  tamc::CompileOptions copts;
  copts.backend = opts.backend;
  copts.am_enabled_variant = opts.am_enabled_variant;
  copts.md = opts.md;
  PreparedRun out{tamc::compile(w.program, copts), nullptr};

  mdp::Machine::Config mcfg;
  mcfg.queue_bytes = opts.queue_bytes;
  mcfg.max_instructions = opts.max_instructions;
  out.machine = std::make_unique<mdp::Machine>(out.compiled.image, mcfg);
  mdp::Machine& m = *out.machine;
  install_runtime_state(m, out.compiled);

  // Host-side workload setup: heap arrays, root frame, boot messages.
  programs::SetupCtx setup(m, out.compiled);
  w.setup(setup);

  // Reserve the deferred-read pool after the host heap, then start the
  // runtime frame heap behind it.
  const mem::Addr defer_base = setup.cursor();
  const mem::Addr defer_limit = defer_base + (1u << 20);
  JTAM_CHECK(defer_limit < mem::kUserDataLimit,
             "no room for the deferred-read pool");
  m.set_defer_pool(defer_base, defer_limit);
  m.store_word(rt::kGlHeapBump, defer_limit);
  return out;
}

RunResult run_workload(const programs::Workload& w, const RunOptions& opts) {
  PreparedRun prep = prepare_run(w, opts);
  mdp::Machine& m = *prep.machine;

  std::optional<cache::CacheBank> bank;
  if (opts.with_cache) bank.emplace(cache::CacheBank::paper_bank(opts.block_bytes));
  metrics::StatsSink sink(opts.backend, bank ? &*bank : nullptr);
  m.set_sink(&sink);

  RunResult r;
  r.workload = w.name;
  r.backend = opts.backend;
  r.status = m.run();
  r.halt_value = m.halt_value();
  r.instructions = m.instructions_executed();
  r.gran = sink.granularity();
  r.counts = sink.counts();
  r.queue_high_water[0] = m.queue_high_water(mdp::Priority::Low);
  r.queue_high_water[1] = m.queue_high_water(mdp::Priority::High);
  if (bank) {
    for (std::size_t i = 0; i < bank->size(); ++i) {
      r.cache.push_back(ConfigResult{bank->configs()[i],
                                     bank->at(i).icache.stats(),
                                     bank->at(i).dcache.stats()});
    }
  }

  if (r.status == mdp::RunStatus::Halted) {
    programs::CheckCtx check{m, r.status, r.halt_value};
    r.check_error = w.check(check);
  } else {
    r.check_error = std::string("machine did not halt: ") +
                    mdp::run_status_name(r.status);
  }
  return r;
}

MultiRunResult run_workload_multi(const programs::Workload& w,
                                  const RunOptions& opts, int num_nodes,
                                  std::uint32_t latency) {
  tamc::CompileOptions copts;
  copts.backend = opts.backend;
  copts.am_enabled_variant = opts.am_enabled_variant;
  copts.md = opts.md;
  copts.multi_node = true;
  tamc::CompiledProgram cp = tamc::compile(w.program, copts);

  mdp::MultiMachine::Config mc;
  mc.num_nodes = num_nodes;
  mc.latency = latency;
  mc.queue_bytes = opts.queue_bytes;
  mc.max_rounds = opts.max_instructions;
  mdp::MultiMachine mm(cp.image, mc);

  for (int n = 0; n < num_nodes; ++n) {
    install_runtime_state(mm.node(n), cp);
    mm.node(n).store_word(rt::kGlNodeId, static_cast<std::uint32_t>(n));
  }

  // Host-side setup lives on node 0 (initial arrays, the root frame).
  programs::SetupCtx setup(mm.node(0), cp);
  w.setup(setup);

  for (int n = 0; n < num_nodes; ++n) {
    const mem::Addr local_base =
        n == 0 ? setup.cursor() : mem::kUserDataBase;
    const mem::Addr global_base =
        (static_cast<mem::Addr>(n) << 24) | local_base;
    const mem::Addr defer_limit = global_base + (1u << 20);
    mm.node(n).set_defer_pool(global_base, defer_limit);
    mm.node(n).store_word(rt::kGlHeapBump, defer_limit);
  }

  MultiRunResult r;
  r.workload = w.name;
  r.backend = opts.backend;
  r.num_nodes = num_nodes;
  r.status = mm.run();
  r.halt_value = mm.halt_value();
  r.rounds = mm.rounds();
  r.total_instructions = mm.total_instructions();
  r.messages = mm.messages_sent();
  for (int n = 0; n < num_nodes; ++n) {
    r.per_node_instructions.push_back(mm.node(n).instructions_executed());
  }
  if (r.status == mdp::RunStatus::Halted) {
    programs::CheckCtx check{mm.node(0), r.status, r.halt_value};
    r.check_error = w.check(check);
  } else {
    r.check_error = std::string("ensemble did not halt: ") +
                    mdp::run_status_name(r.status);
  }
  return r;
}

double BackendPair::ratio(std::uint32_t size_bytes, std::uint32_t assoc,
                          std::uint32_t penalty) const {
  return static_cast<double>(md.cycles(size_bytes, assoc, penalty)) /
         static_cast<double>(am.cycles(size_bytes, assoc, penalty));
}

BackendPair run_both(const programs::Workload& w, RunOptions opts) {
  BackendPair p;
  opts.backend = rt::BackendKind::MessageDriven;
  p.md = run_workload(w, opts);
  opts.backend = rt::BackendKind::ActiveMessages;
  p.am = run_workload(w, opts);
  return p;
}

}  // namespace jtam::driver
