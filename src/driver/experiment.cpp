#include "driver/experiment.h"

#include "mdp/multi.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cache/stack_sim.h"
#include "driver/trace_buffer.h"
#include "obs/flow.h"
#include "obs/obs.h"
#include "obs/signals.h"
#include "tamc/symbols.h"
#include "runtime/kernel.h"
#include "runtime/layout.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace jtam::driver {

namespace {

/// Write the codeblock descriptor table and entry-count templates into the
/// system-table region, and initialize the OS globals — what the J-Machine
/// boot loader established before user code ran.
void install_runtime_state(mdp::Machine& m,
                           const tamc::CompiledProgram& cp) {
  using mem::Addr;
  const auto& layouts = cp.layouts;
  Addr tmpl_cursor = mem::kSysTableBase +
                     static_cast<Addr>(rt::kMaxCodeblocks * rt::kCbDescBytes);
  for (std::size_t cb = 0; cb < layouts.size(); ++cb) {
    const rt::FrameLayout& fl = layouts[cb];
    const Addr desc = mem::kSysTableBase +
                      static_cast<Addr>(cb) * rt::kCbDescBytes;
    m.store_word(desc + 0, static_cast<std::uint32_t>(fl.frame_bytes));
    m.store_word(desc + 4, static_cast<std::uint32_t>(fl.ec_off));
    m.store_word(desc + 8, static_cast<std::uint32_t>(fl.num_ec));
    m.store_word(desc + 12, tmpl_cursor);
    for (int e = 0; e < fl.num_ec; ++e) {
      m.store_word(tmpl_cursor, static_cast<std::uint32_t>(fl.ec_init[e]));
      tmpl_cursor += 4;
    }
    JTAM_CHECK(tmpl_cursor <= mem::kSysTableLimit,
               "entry-count templates overflow the system table region");
  }

  // OS globals and the LCV stop sentinel.
  m.store_word(rt::kGlLcvTop, rt::kLcvEmptyTop);
  m.store_word(mem::kLcvBase, cp.lcv_sentinel());
  m.store_word(rt::kGlCurFrame, 0);
  m.store_word(rt::kGlSchedActive, 0);
  m.store_word(rt::kGlFqHead, 0);
  m.store_word(rt::kGlFqTail, 0);
  for (int cb = 0; cb < rt::kMaxCodeblocks; ++cb) {
    m.store_word(rt::kGlFreeHeads + static_cast<Addr>(4 * cb), 0);
  }
}

}  // namespace

std::uint64_t RunResult::cycles(std::uint32_t size_bytes, std::uint32_t assoc,
                                std::uint32_t penalty) const {
  const ConfigResult& c = config(size_bytes, assoc);
  return metrics::total_cycles(instructions, c.icache, c.dcache, penalty);
}

const ConfigResult& RunResult::config(std::uint32_t size_bytes,
                                      std::uint32_t assoc) const {
  for (const ConfigResult& c : cache) {
    if (c.config.size_bytes == size_bytes && c.config.assoc == assoc) {
      return c;
    }
  }
  throw Error("run has no cache configuration " + std::to_string(size_bytes) +
              "B/" + std::to_string(assoc) + "-way");
}

PreparedRun prepare_run(const programs::Workload& w, const RunOptions& opts) {
  tamc::CompileOptions copts;
  copts.backend = opts.backend;
  copts.am_enabled_variant = opts.am_enabled_variant;
  copts.md = opts.md;
  PreparedRun out{tamc::compile(w.program, copts), nullptr};

  mdp::Machine::Config mcfg;
  mcfg.queue_bytes = opts.queue_bytes;
  mcfg.max_instructions = opts.max_instructions;
  out.machine = std::make_unique<mdp::Machine>(out.compiled.image, mcfg);
  out.machine->set_dispatch(opts.dispatch);
  mdp::Machine& m = *out.machine;
  install_runtime_state(m, out.compiled);

  // Host-side workload setup: heap arrays, root frame, boot messages.
  programs::SetupCtx setup(m, out.compiled);
  w.setup(setup);

  // Reserve the deferred-read pool after the host heap, then start the
  // runtime frame heap behind it.
  const mem::Addr defer_base = setup.cursor();
  const mem::Addr defer_limit = defer_base + (1u << 20);
  JTAM_CHECK(defer_limit < mem::kUserDataLimit,
             "no room for the deferred-read pool");
  m.set_defer_pool(defer_base, defer_limit);
  m.store_word(rt::kGlHeapBump, defer_limit);
  return out;
}

namespace {

/// The body of run_workload.  `ladder_override`, when non-null, replaces
/// the paper ladder at opts.block_bytes with an arbitrary configuration
/// list (run_blocksize_sweep passes a multi-block-size ladder); it
/// requires the stack engine on the batched pipeline.
RunResult run_workload_impl(
    const programs::Workload& w, const RunOptions& opts,
    const std::vector<cache::CacheConfig>* ladder_override) {
  PreparedRun prep = prepare_run(w, opts);
  mdp::Machine& m = *prep.machine;

  // The stack engine lives on the batched pipeline only; the seed per-event
  // path keeps the classic fan-out (StatsSink drives a CacheBank directly).
  const bool use_stack = opts.with_cache && opts.batched_trace &&
                         opts.engine == CacheEngine::Stack;
  JTAM_CHECK(ladder_override == nullptr || use_stack,
             "a ladder override requires the stack engine on the batched "
             "pipeline");

  std::optional<cache::CacheBank> bank;
  std::optional<cache::StackSimBank> stack;
  if (opts.with_cache && !use_stack) {
    bank.emplace(cache::CacheBank::paper_bank(opts.block_bytes));
  }

  RunResult r;
  r.workload = w.name;
  r.backend = opts.backend;

  metrics::StatsSink sink(opts.backend,
                          opts.batched_trace ? nullptr : (bank ? &*bank : nullptr));
  if (opts.batched_trace) {
    // Batched pipeline: the machine appends packed events; each full block
    // replays into the stats accumulator and fans out to the cache engine,
    // sharded across the worker pool when the host has CPUs to spare.
    unsigned workers = opts.cache_workers;
    if (workers == 0) {
      workers = std::max(1u, std::thread::hardware_concurrency());
    }
    if (use_stack) {
      stack.emplace(ladder_override != nullptr
                        ? *ladder_override
                        : cache::paper_ladder(opts.block_bytes),
                    workers > 1 ? workers : 1);
    }
    TracePipeline pipe;
    StatsReplay stats_replay(&sink);
    pipe.add(&stats_replay, "stats");
    std::optional<CacheBankConsumer> cache_consumer;
    std::optional<StackBankConsumer> stack_consumer;
    if (bank) {
      support::ThreadPool* pool =
          workers > 1 ? &support::ThreadPool::shared() : nullptr;
      cache_consumer.emplace(&*bank, pool, workers);
      pipe.add(&*cache_consumer, "cache");
    } else if (stack) {
      support::ThreadPool* pool =
          workers > 1 ? &support::ThreadPool::shared() : nullptr;
      stack_consumer.emplace(&*stack, pool);
      pipe.add(&*stack_consumer, "stack");
    }
    // Observability collectors ride the same pipeline, after the
    // measurement consumers.  The metered drain (wall-clock self-metrics)
    // wraps the whole pipeline when asked for.
    std::optional<obs::Collectors> coll;
    if (opts.obs.any()) {
      // prepare_run left the frame heap's base in the runtime bump cell;
      // the locality collector splits user data on it (frame vs heap).
      coll.emplace(opts.obs, opts.backend, prep.compiled, opts.block_bytes,
                   m.load_word(rt::kGlHeapBump));
      coll->attach(pipe);
      // Only observers consume the synthetic queue-occupancy marks; skip
      // emitting them (and their per-dispatch cost) on measurement-only
      // runs.  They change no measured number either way.
      m.set_queue_marks(true);
    }
    mdp::TraceDrain* drain = &pipe;
    std::optional<obs::MeteredPipeline> metered;
    if (coll && opts.obs.pipeline_metrics) {
      metered.emplace(&pipe);
      drain = &*metered;
    }
    // Host-time observatory: stage timers on the pipeline, meters on the
    // shared pool the cache consumers shard over.  Wall-clock only — no
    // measured number can change (the timers never touch the event data).
    const bool host_prof = opts.obs.host_profile;
    support::ThreadPool* metered_pool = nullptr;
    std::vector<support::ThreadPool::WorkerStats> pool_before;
    if (host_prof) {
      pipe.enable_stage_timing();
      if (workers > 1) {
        metered_pool = &support::ThreadPool::shared();
        metered_pool->set_metering(true);
        pool_before = metered_pool->worker_stats();
      }
    }
    const auto host_t0 = std::chrono::steady_clock::now();
    mdp::TraceBuffer buf(drain);
    m.set_trace_buffer(&buf);
    r.status = m.run();
    buf.flush();  // final partial block
    m.set_trace_buffer(nullptr);
    if (coll) {
      obs::Report rep = coll->finish(metered ? &metered->metrics() : nullptr);
      if (host_prof) {
        obs::HostReport hr;
        hr.engine_wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - host_t0)
                .count());
        hr.shards = 1;
        hr.add_stage_times(pipe.stage_times());
        if (metered_pool != nullptr) {
          hr.add_pool_stats(pool_before, metered_pool->worker_stats());
          metered_pool->set_metering(false);
        }
        rep.host = std::move(hr);
      }
      r.obs = std::make_shared<obs::Report>(std::move(rep));
    }
  } else {
    // Seed path: one virtual TraceSink callback per event, fanned into
    // every cache configuration in turn.  Kept as the equivalence baseline
    // (tests/pipeline_test.cpp) and for exact-interleaving consumers.
    m.set_sink(&sink);
    r.status = m.run();
    m.set_sink(nullptr);
  }
  r.halt_value = m.halt_value();
  r.instructions = m.instructions_executed();
  r.gran = sink.granularity();
  r.counts = sink.counts();
  r.queue_high_water[0] = m.queue_high_water(mdp::Priority::Low);
  r.queue_high_water[1] = m.queue_high_water(mdp::Priority::High);
  if (bank) {
    for (std::size_t i = 0; i < bank->size(); ++i) {
      r.cache.push_back(ConfigResult{bank->configs()[i],
                                     bank->at(i).icache.stats(),
                                     bank->at(i).dcache.stats()});
    }
  } else if (stack) {
    for (std::size_t i = 0; i < stack->size(); ++i) {
      r.cache.push_back(ConfigResult{stack->configs()[i], stack->istats(i),
                                     stack->dstats(i)});
    }
  }

  if (r.status == mdp::RunStatus::Halted) {
    programs::CheckCtx check{m, r.status, r.halt_value};
    r.check_error = w.check(check);
  } else {
    r.check_error = std::string("machine did not halt: ") +
                    mdp::run_status_name(r.status);
  }
  return r;
}

}  // namespace

RunResult run_workload(const programs::Workload& w, const RunOptions& opts) {
  return run_workload_impl(w, opts, nullptr);
}

MultiRunResult run_workload_multi(const programs::Workload& w,
                                  const RunOptions& opts,
                                  const MultiOptions& mopts) {
  const int num_nodes = mopts.num_nodes;
  // The node-field shift of global addresses must agree between the
  // compiled kernels (node-extraction shifts) and the machines (address
  // checks), so it is resolved here and passed to both.  <= 256 nodes uses
  // the seed layout (shift 24, bit-identical code and addresses).
  const std::uint32_t node_shift = mem::node_shift_for_nodes(num_nodes);
  JTAM_CHECK(node_shift != 0, "node count exceeds every node-field shift");
  tamc::CompileOptions copts;
  copts.backend = opts.backend;
  copts.am_enabled_variant = opts.am_enabled_variant;
  copts.md = opts.md;
  copts.multi_node = true;
  copts.node_shift = node_shift;
  tamc::CompiledProgram cp = tamc::compile(w.program, copts);

  mdp::MultiMachine::Config mc;
  mc.num_nodes = num_nodes;
  mc.net = mopts.net;
  mc.latency = mopts.latency;
  mc.max_inflight_messages = mopts.max_inflight_messages;
  mc.link_buffer_flits = mopts.link_buffer_flits;
  mc.agg = mopts.agg;
  mc.agg_bytes = mopts.agg_bytes;
  mc.agg_timeout = mopts.agg_timeout;
  mc.placement = mopts.placement;
  mc.queue_bytes = opts.queue_bytes;
  mc.max_rounds = opts.max_instructions;
  mc.dispatch = opts.dispatch;
  mc.node_shift = node_shift;
  mc.threads = mopts.threads;
  mdp::MultiMachine mm(cp.image, mc);

  // Attach the causal tracer before any boot message is injected, so the
  // roots of the causal DAG are captured.  Per-node StatsSinks ride along
  // for the granularity tie-out; neither touches measured state.
  std::unique_ptr<obs::FlowTracer> tracer;
  std::vector<std::unique_ptr<metrics::StatsSink>> flow_sinks;
  if (mopts.flow.any()) {
    tracer = std::make_unique<obs::FlowTracer>(mopts.flow, num_nodes);
    for (int n = 0; n < num_nodes; ++n) {
      mm.node(n).set_flow(tracer.get());
      flow_sinks.push_back(
          std::make_unique<metrics::StatsSink>(opts.backend, nullptr));
      mm.node(n).set_sink(flow_sinks.back().get());
    }
    mm.network().set_flow_observer(tracer.get());
    mm.set_round_hook(tracer.get());
  }

  // Host observatory + signal bus, both pure observers of the run.  The
  // hub's buffers are attached by MultiMachine::run() itself, after the
  // engine choice.
  std::unique_ptr<obs::HostProfiler> host_prof;
  if (mopts.host_profile) {
    host_prof = std::make_unique<obs::HostProfiler>();
    mm.set_host_profiler(host_prof.get());
  }
  std::shared_ptr<obs::SignalHub> signal_hub;
  if (mopts.signals.enabled) {
    signal_hub = std::make_shared<obs::SignalHub>(mopts.signals, opts.backend,
                                                  cp, num_nodes);
    mm.set_telemetry(signal_hub.get());
    if (mopts.on_signals_ready) mopts.on_signals_ready(signal_hub);
  }

  for (int n = 0; n < num_nodes; ++n) {
    install_runtime_state(mm.node(n), cp);
    mm.node(n).store_word(rt::kGlNodeId, static_cast<std::uint32_t>(n));
  }

  // Host-side setup lives on node 0 (initial arrays, the root frame).
  programs::SetupCtx setup(mm.node(0), cp);
  w.setup(setup);

  // Each node's heap starts with a defer-record pool: 1 MB under the seed
  // layout, a quarter of the (smaller) per-node user window under the
  // narrow shifts — at shift 22 those coincide, so <= 256-node runs keep
  // the seed's exact addresses.
  const mem::NodeCodec codec(node_shift);
  const mem::Addr window_bytes = codec.user_limit - mem::kUserDataBase;
  const mem::Addr defer_bytes =
      std::min<mem::Addr>(mem::Addr{1} << 20, window_bytes / 4);
  for (int n = 0; n < num_nodes; ++n) {
    const mem::Addr local_base =
        n == 0 ? setup.cursor() : mem::kUserDataBase;
    const mem::Addr global_base = codec.global_of(
        static_cast<mem::Addr>(n), local_base);
    const mem::Addr defer_limit = global_base + defer_bytes;
    mm.node(n).set_defer_pool(global_base, defer_limit);
    mm.node(n).store_word(rt::kGlHeapBump, defer_limit);
  }

  MultiRunResult r;
  r.workload = w.name;
  r.backend = opts.backend;
  r.num_nodes = num_nodes;
  r.net = mopts.net;
  r.status = mm.run();
  r.halt_value = mm.halt_value();
  r.rounds = mm.rounds();
  r.total_instructions = mm.total_instructions();
  r.messages = mm.messages_sent();
  for (int n = 0; n < num_nodes; ++n) {
    r.per_node_instructions.push_back(mm.node(n).instructions_executed());
    r.per_node_injection_stalls.push_back(
        mm.node(n).injection_stall_cycles());
    r.injection_stall_cycles += mm.node(n).injection_stall_cycles();
    r.stalled_sends += mm.node(n).stalled_sends();
  }
  const net::NetStats& ns = mm.network().stats();
  r.hops = ns.hops;
  r.msg_latency = ns.latency;
  r.links = ns.links;
  r.net_cycles = ns.cycles;
  r.net_stats = ns;
  r.parallel = mm.parallel_stats();
  if (host_prof != nullptr) {
    r.host = std::make_shared<const obs::HostReport>(
        std::move(host_prof->report()));
  }
  if (signal_hub != nullptr) {
    r.signals =
        std::make_shared<const obs::SignalSnapshot>(signal_hub->finish());
  }
  if (tracer != nullptr) {
    auto trace = std::make_shared<obs::FlowTrace>(tracer->finish(mm));
    trace->attach_symbols(tamc::SymbolMap::from(cp));
    r.flow = std::move(trace);
    for (int n = 0; n < num_nodes; ++n) {
      r.per_node_gran.push_back(flow_sinks[static_cast<std::size_t>(n)]
                                    ->granularity());
    }
  }
  if (r.status == mdp::RunStatus::Halted) {
    programs::CheckCtx check{mm.node(0), r.status, r.halt_value};
    r.check_error = w.check(check);
  } else if (r.status == mdp::RunStatus::Deadlock) {
    r.deadlock_report = mm.deadlock_report();
    r.check_error = std::string("ensemble did not halt: ") +
                    mdp::run_status_name(r.status) + "\n" +
                    r.deadlock_report;
  } else {
    r.check_error = std::string("ensemble did not halt: ") +
                    mdp::run_status_name(r.status);
  }
  return r;
}

MultiRunResult run_workload_multi(const programs::Workload& w,
                                  const RunOptions& opts, int num_nodes,
                                  std::uint32_t latency) {
  MultiOptions mopts;
  mopts.num_nodes = num_nodes;
  mopts.latency = latency;
  return run_workload_multi(w, opts, mopts);
}

double BackendPair::ratio(std::uint32_t size_bytes, std::uint32_t assoc,
                          std::uint32_t penalty) const {
  return static_cast<double>(md.cycles(size_bytes, assoc, penalty)) /
         static_cast<double>(am.cycles(size_bytes, assoc, penalty));
}

namespace {

// Process-wide memo of completed runs.  Keys combine the workload's
// identity key with every result-relevant option; the pipeline knobs
// (engine, batched_trace, cache_workers) are deliberately excluded — they
// cannot change any measured number (tests/pipeline_test.cpp,
// tests/stacksim_test.cpp).
std::mutex g_memo_mu;
std::unordered_map<std::string, RunResult> g_memo;           // NOLINT
RunMemoStats g_memo_stats;                                   // NOLINT

std::string options_key(const RunOptions& o) {
  std::ostringstream os;
  os << static_cast<int>(o.backend) << '/' << o.am_enabled_variant << '/'
     << o.md.inline_post_threads << o.md.elide_frame_traffic
     << o.md.stop_to_suspend << '/' << o.with_cache << '/' << o.block_bytes
     << '/' << o.queue_bytes << '/' << o.max_instructions;
  return os.str();
}

std::string memo_key(const RunRequest& req) {
  if (req.workload.key.empty()) return {};
  return req.workload.key + '|' + options_key(req.opts);
}

}  // namespace

RunMemoStats run_memo_stats() {
  std::lock_guard<std::mutex> lk(g_memo_mu);
  return g_memo_stats;
}

void clear_run_memo() {
  std::lock_guard<std::mutex> lk(g_memo_mu);
  g_memo.clear();
  g_memo_stats = RunMemoStats{};
}

std::vector<RunResult> run_many(const std::vector<RunRequest>& reqs,
                                unsigned workers) {
  std::vector<std::string> keys(reqs.size());
  std::vector<std::size_t> job_of(reqs.size(), SIZE_MAX);  // index into jobs
  std::vector<const RunRequest*> jobs;
  std::vector<std::string> job_keys;
  {
    std::lock_guard<std::mutex> lk(g_memo_mu);
    std::unordered_map<std::string, std::size_t> scheduled;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      keys[i] = memo_key(reqs[i]);
      if (!keys[i].empty()) {
        if (g_memo.count(keys[i]) != 0) {
          ++g_memo_stats.hits;
          continue;  // served from the memo during assembly below
        }
        auto it = scheduled.find(keys[i]);
        if (it != scheduled.end()) {
          ++g_memo_stats.hits;  // duplicate within this batch
          job_of[i] = it->second;
          continue;
        }
        scheduled.emplace(keys[i], jobs.size());
      }
      ++g_memo_stats.misses;
      job_of[i] = jobs.size();
      jobs.push_back(&reqs[i]);
      job_keys.push_back(keys[i]);
    }
  }

  std::vector<RunResult> job_results(jobs.size());
  const bool concurrent = jobs.size() > 1;
  auto run_one = [&](std::size_t j) {
    RunOptions o = jobs[j]->opts;
    // Outer parallelism over whole simulations already fills the machine;
    // per-run cache sharding on top would only add contention.
    if (concurrent) o.cache_workers = 1;
    job_results[j] = run_workload(jobs[j]->workload, o);
  };
  unsigned w = workers != 0 ? workers
                            : std::max(1u, std::thread::hardware_concurrency());
  w = static_cast<unsigned>(
      std::min<std::size_t>(w, jobs.empty() ? 1 : jobs.size()));
  if (!concurrent || w <= 1) {
    for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
  } else {
    support::ThreadPool pool(w - 1);  // the caller participates
    pool.parallel_for(jobs.size(), run_one);
  }

  std::vector<RunResult> out(reqs.size());
  {
    std::lock_guard<std::mutex> lk(g_memo_mu);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!job_keys[j].empty()) {
        // The memo serves *measured* results; a possibly large obs report
        // belongs to the request that asked for it, not the cache.
        RunResult stored = job_results[j];
        stored.obs.reset();
        g_memo[job_keys[j]] = std::move(stored);
      }
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (job_of[i] != SIZE_MAX) {
        out[i] = job_results[job_of[i]];
      } else {
        out[i] = g_memo.at(keys[i]);
      }
    }
  }
  return out;
}

std::vector<RunResult> run_blocksize_sweep(
    const programs::Workload& w, const RunOptions& opts,
    std::span<const std::uint32_t> blocks) {
  JTAM_CHECK(!blocks.empty(), "block-size sweep needs at least one size");

  // The classic engine probes concrete cache geometries, so it cannot host
  // a mixed-block-size ladder — fall back to one (memoized, concurrent)
  // run per size.  Same for cache-less or per-event runs.
  if (opts.engine == CacheEngine::Classic || !opts.batched_trace ||
      !opts.with_cache) {
    std::vector<RunRequest> reqs;
    reqs.reserve(blocks.size());
    for (std::uint32_t b : blocks) {
      RunRequest req{w, opts};
      req.opts.block_bytes = b;
      reqs.push_back(std::move(req));
    }
    return run_many(reqs);
  }

  RunOptions base = opts;
  // Collectors attach to one run's trace at one block size; the shared
  // pass serves several, so it runs measurement-only.
  base.obs = obs::Options{};

  auto key_for = [&](std::uint32_t b) {
    if (w.key.empty()) return std::string{};
    RunOptions bo = base;
    bo.block_bytes = b;
    return w.key + '|' + options_key(bo);
  };

  std::vector<std::uint32_t> missing;
  {
    std::lock_guard<std::mutex> lk(g_memo_mu);
    for (std::uint32_t b : blocks) {
      const std::string key = key_for(b);
      if (!key.empty() && g_memo.count(key) != 0) {
        ++g_memo_stats.hits;
        continue;
      }
      if (std::find(missing.begin(), missing.end(), b) == missing.end()) {
        missing.push_back(b);
      }
    }
    if (!missing.empty()) ++g_memo_stats.misses;  // one machine pass
  }

  std::unordered_map<std::uint32_t, RunResult> fresh;
  if (!missing.empty()) {
    // One machine pass over a ladder spanning every missing block size;
    // paper_ladder order within each size keeps the per-size slices
    // bit-identical to a plain run_workload at that size.
    std::vector<cache::CacheConfig> ladder;
    for (std::uint32_t b : missing) {
      const std::vector<cache::CacheConfig> part = cache::paper_ladder(b);
      ladder.insert(ladder.end(), part.begin(), part.end());
    }
    RunResult all = run_workload_impl(w, base, &ladder);
    std::size_t off = 0;
    for (std::uint32_t b : missing) {
      const std::size_t n = cache::paper_ladder(b).size();
      RunResult rb = all;
      rb.cache.assign(all.cache.begin() + static_cast<std::ptrdiff_t>(off),
                      all.cache.begin() + static_cast<std::ptrdiff_t>(off + n));
      off += n;
      fresh.emplace(b, std::move(rb));
    }
    if (!w.key.empty()) {
      std::lock_guard<std::mutex> lk(g_memo_mu);
      for (const auto& [b, rb] : fresh) g_memo[key_for(b)] = rb;
    }
  }

  std::vector<RunResult> out;
  out.reserve(blocks.size());
  {
    std::lock_guard<std::mutex> lk(g_memo_mu);
    for (std::uint32_t b : blocks) {
      const auto it = fresh.find(b);
      out.push_back(it != fresh.end() ? it->second : g_memo.at(key_for(b)));
    }
  }
  return out;
}

BackendPair run_both(const programs::Workload& w, RunOptions opts) {
  RunRequest md{w, opts};
  md.opts.backend = rt::BackendKind::MessageDriven;
  RunRequest am{w, opts};
  am.opts.backend = rt::BackendKind::ActiveMessages;
  std::vector<RunResult> rs = run_many({std::move(md), std::move(am)});
  BackendPair p;
  p.md = std::move(rs[0]);
  p.am = std::move(rs[1]);
  return p;
}

}  // namespace jtam::driver
