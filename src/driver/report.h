// Table/figure rendering helpers shared by the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace jtam::driver {

/// Print the standard run header (workload, status, instructions, oracle).
void print_run_summary(std::ostream& os, const RunResult& r);

/// Print an ASCII "figure": one line per x value with series columns —
/// the textual equivalent of the paper's ratio-vs-cache-size plots.
struct Series {
  std::string name;
  std::vector<double> values;  // one per x
};
void print_ratio_table(std::ostream& os, const std::string& title,
                       const std::vector<std::string>& xs,
                       const std::vector<Series>& series);

/// Fail loudly (exit code) if any run in a set did not pass its oracle.
void require_ok(const std::vector<const RunResult*>& runs);

}  // namespace jtam::driver
