#include "support/text.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace jtam::text {

std::string fixed(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (widths.size() < r.size()) widths.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << r[i];
    }
    os << '\n';
  };
  bool first = true;
  for (const auto& r : rows_) {
    emit(r);
    if (first && has_header_) {
      std::vector<std::string> dashes;
      for (std::size_t i = 0; i < r.size(); ++i) {
        dashes.push_back(std::string(widths[i], '-'));
      }
      emit(dashes);
    }
    first = false;
  }
}

}  // namespace jtam::text
