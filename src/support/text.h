// Small text-formatting helpers shared by the bench harnesses and reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace jtam::text {

/// Fixed-point formatting of `v` with `prec` digits after the decimal point.
std::string fixed(double v, int prec);

/// Format `v` with thousands separators ("1,234,567").
std::string with_commas(std::uint64_t v);

/// Column-aligned plain-text table.  Rows are added as vectors of cell
/// strings; `print` pads every column to its widest cell.  The first row
/// added via `header` is underlined with dashes.
class Table {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

}  // namespace jtam::text
