// Minimal JSON reader for validating machine-readable artifacts.
//
// The observability layer emits Chrome trace-event files and profile
// exports; tests and tools need to confirm those parse and have the right
// shape without taking an external dependency.  This is a strict
// recursive-descent parser over the JSON grammar (RFC 8259) — no comments,
// no trailing commas — returning a simple tree of values.  It is meant for
// validation and small documents, not for bulk data processing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jtam::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double n) : type_(Type::Number), num_(n) {}
  explicit Value(std::string s)
      : type_(Type::String), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::Array), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors; each throws jtam::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws if not an object or the key is absent.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool has(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document.  Throws jtam::Error with a byte offset
/// on malformed input or trailing garbage.
Value parse(const std::string& text);

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).  Control characters become \u00XX.
std::string escape(const std::string& s);

}  // namespace jtam::json
