#include "support/error.h"

#include <sstream>

namespace jtam::detail {

void raise(const char* kind, const char* expr, const char* file, int line,
           const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << " at " << file << ":" << line
     << "]";
  throw Error(os.str());
}

}  // namespace jtam::detail
