// A small fixed-size worker pool for sharding independent simulation work:
// cache-bank configurations split across workers (driver::CacheBankConsumer)
// and concurrent (workload, back-end) runs (driver::run_many).
//
// parallel_for is the primary primitive.  The calling thread participates in
// the loop, claiming chunks from the same atomic counter as the workers, so
// a parallel_for issued from inside a pool task can always make progress by
// itself — nesting degrades to inline execution instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jtam::support {

class ThreadPool {
 public:
  /// Spawn exactly `workers` threads.  A pool of 0 workers is valid: every
  /// operation then runs inline on the calling thread.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueue `fn` for asynchronous execution (inline when the pool has no
  /// threads).  Exceptions must not escape `fn`.
  void submit(std::function<void()> fn);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(0) .. fn(n-1) cooperatively across the workers and the calling
  /// thread; returns when all iterations are done.  Iterations must be
  /// independent.  The first exception thrown by any iteration is rethrown
  /// on the caller after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count matched to the host: hardware_concurrency() - 1 (the
  /// caller participates in parallel_for), at least 0.
  static unsigned default_workers();

  /// Process-wide pool used by the experiment pipeline.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // queued + running tasks
  bool stop_ = false;
};

}  // namespace jtam::support
