// A small fixed-size worker pool for sharding independent simulation work:
// cache-bank configurations split across workers (driver::CacheBankConsumer)
// and concurrent (workload, back-end) runs (driver::run_many).
//
// parallel_for is the primary primitive.  The calling thread participates in
// the loop, claiming chunks from the same atomic counter as the workers, so
// a parallel_for issued from inside a pool task can always make progress by
// itself — nesting degrades to inline execution instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jtam::support {

class ThreadPool {
 public:
  /// Spawn exactly `workers` threads.  A pool of 0 workers is valid: every
  /// operation then runs inline on the calling thread.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueue `fn` for asynchronous execution (inline when the pool has no
  /// threads).  Exceptions must not escape `fn`.
  void submit(std::function<void()> fn);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(0) .. fn(n-1) cooperatively across the workers and the calling
  /// thread; returns when all iterations are done.  Iterations must be
  /// independent.  The first exception thrown by any iteration is rethrown
  /// on the caller after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count matched to the host: hardware_concurrency() - 1 (the
  /// caller participates in parallel_for), at least 0.
  static unsigned default_workers();

  /// Process-wide pool used by the experiment pipeline.
  static ThreadPool& shared();

  /// Per-worker wall-clock utilization (obs::HostReport).  Metering is off
  /// by default and costs one relaxed load per task when off; when on,
  /// each worker accumulates the wall time spent inside task bodies and a
  /// task count into its own cache-line-padded slot.  Only pool workers
  /// are metered — work a parallel_for caller claims for itself is the
  /// caller's time, not the pool's.  Counters are cumulative across the
  /// pool's lifetime; callers diff snapshots around the region they care
  /// about.
  struct WorkerStats {
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks = 0;
  };
  void set_metering(bool on) {
    metering_.store(on, std::memory_order_relaxed);
  }
  /// Snapshot of every worker's counters (size() entries).  Safe to call
  /// while tasks run: slots are written only by their owning worker with
  /// relaxed atomics, so a concurrent snapshot is merely slightly stale.
  std::vector<WorkerStats> worker_stats() const;

 private:
  void worker_loop(unsigned index);

  /// One worker's meter, padded so neighbours never share a cache line.
  struct alignas(64) MeterSlot {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  std::vector<std::thread> threads_;
  std::unique_ptr<MeterSlot[]> meters_;
  std::atomic<bool> metering_{false};
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // queued + running tasks
  bool stop_ = false;
};

}  // namespace jtam::support
