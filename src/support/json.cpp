#include "support/json.h"

#include <cctype>
#include <cstdlib>

#include "support/error.h"

namespace jtam::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* kw) {
    std::size_t n = 0;
    while (kw[n] != '\0') ++n;
    if (s_.compare(pos_, n, kw) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        return Value(true);
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        return Value(false);
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences — good enough for
          // validation; our own writers never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      fail("expected a number");
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    return Value(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* want) {
  throw Error(std::string("JSON value is not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) type_error("number");
  return num_;
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return str_;
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return *arr_;
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return *obj_;
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw Error("JSON object has no member '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const {
  return is_object() && obj_->count(key) != 0;
}

Value parse(const std::string& text) { return Parser(text).document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace jtam::json
