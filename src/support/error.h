// Error handling primitives for the jtam library.
//
// The library throws jtam::Error for all user-facing failure conditions
// (invalid IR, simulator faults, configuration mistakes).  JTAM_CHECK is the
// preferred way to raise one: it captures the failing expression and a
// formatted message.  Internal invariants use JTAM_ASSERT, which also throws
// (never aborts) so tests can assert on misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace jtam {

/// Exception type for every failure the library reports.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise(const char* kind, const char* expr, const char* file,
                        int line, const std::string& msg);
}  // namespace detail

}  // namespace jtam

/// Raise jtam::Error with context if `cond` is false.  `msg` is a
/// std::string (or convertible) describing the failure.
#define JTAM_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::jtam::detail::raise("check failed", #cond, __FILE__, __LINE__,     \
                            (msg));                                        \
    }                                                                      \
  } while (0)

/// Internal invariant; failure indicates a bug in jtam itself.
#define JTAM_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::jtam::detail::raise("internal invariant violated", #cond,          \
                            __FILE__, __LINE__, (msg));                    \
    }                                                                      \
  } while (0)
