#include "support/thread_pool.h"

#include <chrono>
#include <exception>
#include <memory>
#include <utility>

namespace jtam::support {

namespace {
std::uint64_t meter_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  if (workers > 0) meters_ = std::make_unique<MeterSlot[]>(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  MeterSlot& meter = meters_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (metering_.load(std::memory_order_relaxed)) {
      const std::uint64_t t0 = meter_now_ns();
      task();
      meter.busy_ns.fetch_add(meter_now_ns() - t0,
                              std::memory_order_relaxed);
      meter.tasks.fetch_add(1, std::memory_order_relaxed);
    } else {
      task();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    out[i].busy_ns = meters_[i].busy_ns.load(std::memory_order_relaxed);
    out[i].tasks = meters_[i].tasks.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::submit(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Loop {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto loop = std::make_shared<Loop>();
  loop->n = n;
  loop->fn = &fn;

  // Workers and the caller claim iterations from the same counter; whoever
  // finishes the last iteration wakes the caller.  A helper that arrives
  // after the counter is exhausted exits without touching `fn`, which is
  // what keeps the borrowed pointer safe: the caller only returns once
  // done == n, and only claimed iterations dereference fn.
  auto body = [loop] {
    for (;;) {
      const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= loop->n) return;
      try {
        (*loop->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(loop->mu);
        if (!loop->error) loop->error = std::current_exception();
      }
      if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 == loop->n) {
        std::lock_guard<std::mutex> lk(loop->mu);
        loop->cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(threads_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) submit(body);
  body();  // caller participates — guarantees progress even under nesting

  std::unique_lock<std::mutex> lk(loop->mu);
  loop->cv.wait(lk, [&] { return loop->done.load() == loop->n; });
  if (loop->error) std::rethrow_exception(loop->error);
}

unsigned ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_workers());
  return pool;
}

}  // namespace jtam::support
