#include <string>
#include <vector>

#include "support/error.h"
#include "tam/ir.h"

namespace jtam::tam {

namespace {

struct Ctx {
  const Program& prog;
  const Codeblock& cb;
  std::string where;
};

void fail(const Ctx& ctx, const std::string& msg) {
  throw Error("invalid TAM IR in " + ctx.prog.name + "/" + ctx.cb.name +
              "/" + ctx.where + ": " + msg);
}

void check_body(const Ctx& ctx, const std::vector<VOp>& body, bool is_inlet,
                int payload_words) {
  int defined = 0;  // vregs are allocated densely by the builder
  auto use = [&](VReg v, const char* role) {
    if (v < 0 || v >= defined) {
      fail(ctx, std::string("use of undefined virtual register as ") + role);
    }
  };
  for (const VOp& op : body) {
    switch (op.kind) {
      case VOpKind::Const:
        break;
      case VOpKind::Copy:
      case VOpKind::SpillStore:
        use(op.a, "copied value");
        break;
      case VOpKind::SpillLoad:
        break;
      case VOpKind::Bin:
        use(op.a, "lhs");
        use(op.b, "rhs");
        break;
      case VOpKind::BinI:
        use(op.a, "lhs");
        if (is_float_op(op.bop)) fail(ctx, "float op with immediate");
        break;
      case VOpKind::Select:
        use(op.c, "cond");
        use(op.a, "true-value");
        use(op.b, "false-value");
        break;
      case VOpKind::FrameLoad:
      case VOpKind::FrameStore:
        if (op.imm < 0 || op.imm >= ctx.cb.num_data_slots) {
          fail(ctx, "frame slot " + std::to_string(op.imm) +
                        " out of range (codeblock has " +
                        std::to_string(ctx.cb.num_data_slots) + ")");
        }
        if (op.kind == VOpKind::FrameStore) use(op.a, "stored value");
        break;
      case VOpKind::MsgLoad:
        if (!is_inlet) fail(ctx, "MsgLoad outside an inlet");
        if (op.imm < 0 || op.imm >= payload_words) {
          fail(ctx, "message payload word " + std::to_string(op.imm) +
                        " out of range");
        }
        break;
      case VOpKind::SelfFrame:
        break;
      case VOpKind::InletAddr:
        if (op.inlet < 0 ||
            op.inlet >= static_cast<int>(ctx.cb.inlets.size())) {
          fail(ctx, "InletAddr references unknown inlet");
        }
        break;
      case VOpKind::IFetch:
      case VOpKind::GFetch:
        use(op.a, "address");
        if (op.inlet < 0 ||
            op.inlet >= static_cast<int>(ctx.cb.inlets.size())) {
          fail(ctx, "fetch reply inlet out of range");
        }
        if (ctx.cb.inlets[op.inlet].payload_words < 1) {
          fail(ctx, "fetch reply inlet must accept at least one word");
        }
        break;
      case VOpKind::IStore:
      case VOpKind::GStore:
        use(op.a, "address");
        use(op.b, "value");
        break;
      case VOpKind::FAlloc:
        if (op.cb < 0 || op.cb >= static_cast<int>(ctx.prog.codeblocks.size())) {
          fail(ctx, "FAlloc of unknown codeblock");
        }
        if (op.inlet < 0 ||
            op.inlet >= static_cast<int>(ctx.cb.inlets.size())) {
          fail(ctx, "FAlloc reply inlet out of range");
        }
        break;
      case VOpKind::HAlloc:
        use(op.a, "allocation size");
        if (op.inlet < 0 ||
            op.inlet >= static_cast<int>(ctx.cb.inlets.size())) {
          fail(ctx, "HAlloc reply inlet out of range");
        }
        break;
      case VOpKind::Release:
        break;
      case VOpKind::SendMsg: {
        use(op.a, "target frame");
        if (op.cb < 0 || op.cb >= static_cast<int>(ctx.prog.codeblocks.size())) {
          fail(ctx, "SendMsg to unknown codeblock");
        }
        const Codeblock& target = ctx.prog.codeblocks[op.cb];
        if (op.inlet < 0 ||
            op.inlet >= static_cast<int>(target.inlets.size())) {
          fail(ctx, "SendMsg to unknown inlet of " + target.name);
        }
        if (static_cast<int>(op.args.size()) !=
            target.inlets[op.inlet].payload_words) {
          fail(ctx, "SendMsg argument count does not match inlet '" +
                        target.inlets[op.inlet].name + "' payload size");
        }
        for (VReg v : op.args) use(v, "message argument");
        break;
      }
      case VOpKind::SendDyn:
        use(op.a, "continuation inlet");
        use(op.b, "continuation frame");
        for (VReg v : op.args) use(v, "message argument");
        break;
      case VOpKind::SendHalt:
        use(op.a, "halt value");
        break;
    }
    if (op.dst >= 0) {
      if (op.dst != defined) fail(ctx, "non-dense virtual register numbering");
      ++defined;
    }
  }
}

void check_thread_ref(const Ctx& ctx, ThreadId t, const char* role) {
  if (t < 0 || t >= static_cast<int>(ctx.cb.threads.size())) {
    fail(ctx, std::string("unknown thread referenced by ") + role);
  }
}

}  // namespace

void validate(const Program& prog) {
  JTAM_CHECK(!prog.codeblocks.empty(), "program has no codeblocks");
  for (const Codeblock& cb : prog.codeblocks) {
    JTAM_CHECK(!cb.threads.empty(),
               "codeblock '" + cb.name + "' has no threads");
    for (std::size_t ti = 0; ti < cb.threads.size(); ++ti) {
      const Thread& t = cb.threads[ti];
      Ctx ctx{prog, cb, "thread " + t.name};
      if (t.entry_count < 1) fail(ctx, "entry count must be >= 1");
      check_body(ctx, t.body, /*is_inlet=*/false, 0);
      if (t.term.cond >= 0) {
        // The condition must be a vreg defined in the body.
        int defined = 0;
        for (const VOp& op : t.body) {
          if (op.dst >= 0) ++defined;
        }
        if (t.term.cond >= defined) fail(ctx, "terminator cond undefined");
      } else if (!t.term.else_forks.empty()) {
        fail(ctx, "else-forks without a condition");
      }
      for (ThreadId f : t.term.then_forks) check_thread_ref(ctx, f, "fork");
      for (ThreadId f : t.term.else_forks) check_thread_ref(ctx, f, "fork");
    }
    for (std::size_t ii = 0; ii < cb.inlets.size(); ++ii) {
      const Inlet& in = cb.inlets[ii];
      Ctx ctx{prog, cb, "inlet " + in.name};
      check_body(ctx, in.body, /*is_inlet=*/true, in.payload_words);
      if (in.post.has_value()) check_thread_ref(ctx, *in.post, "post");
    }
  }
}

}  // namespace jtam::tam
