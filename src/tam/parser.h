// Textual TAM assembly front-end.
//
// A small, line-oriented TL0-flavoured syntax for writing TAM programs as
// text instead of through the C++ builder API.  Example:
//
//   program sumsq
//
//   codeblock main slots(n i sum)
//     inlet start(x) posts init
//       store n = x
//
//     thread init
//       z = const 1
//       store i = z
//       zz = const 0
//       store sum = zz
//       fork loop
//
//     thread loop
//       a = load i
//       b = load n
//       c = le a b
//       cfork c ? body : done
//
//     thread body
//       a = load i
//       sq = mul a a
//       s = load sum
//       s2 = add s sq
//       store sum = s2
//       a1 = addi a 1
//       store i = a1
//       fork loop
//
//     thread done
//       r = load sum
//       halt r
//       stop
//
// Statements (one per line; `#` starts a comment):
//
//   x = const N            x = constf F          x = msg K
//   x = load SLOT          store SLOT = x        x = frame
//   x = inlet_addr INLET   x = select c a b
//   x = OP a b             x = OPi a N           (OP: add sub mul div mod
//                                                 and or xor shl shr lt le
//                                                 eq ne fadd fsub fmul fdiv
//                                                 flt)
//   ifetch a -> INLET      gfetch a -> INLET
//   istore a b             gstore a b
//   falloc CB -> INLET     halloc a -> INLET
//   send CB.INLET f (a b ...)        senddyn i f (a b ...)
//   halt x                 release
//
// Thread terminators:  stop | fork T1 T2 ... | cfork c ? T... : T...
// Inlet headers:       inlet NAME(p1 p2 ...) [posts THREAD]
// Thread headers:      thread NAME [entry N]
#pragma once

#include <string>

#include "tam/ir.h"

namespace jtam::tam {

/// Parse a textual TAM program.  Throws jtam::Error with a line-numbered
/// message on any syntax or semantic problem; the result is validate()d.
Program parse_program(const std::string& source);

/// Convenience: read `path` and parse it.
Program parse_program_file(const std::string& path);

}  // namespace jtam::tam
