// TAM intermediate representation.
//
// A TAM program is a set of *codeblocks*; invoking a codeblock allocates a
// *frame* for its arguments, locals and synchronization counters.  Each
// codeblock is compiled into *inlets* (short message handlers that receive
// arguments from outside the codeblock) and *threads* (straight-line
// sequences forming the codeblock body).  Operations of unbounded latency
// (I-structure reads, frame allocation) are split-phased: a thread issues
// the request and the reply arrives at an inlet, which posts the dependent
// thread.  Threads carry an entry count; a thread with entry count 1 is
// non-synchronizing.  (§1.1.3 of the paper.)
//
// Bodies are straight-line three-address code over per-thread virtual
// registers; control flow between threads is expressed by fork lists on
// thread terminators (the compiler turns the final fork into a branch when
// possible, as TAM's compiler did) and by posts on inlets.  Loops are
// threads that conditionally re-fork themselves, re-reading their loop
// state from frame slots each iteration — exactly the frame traffic the
// paper's two back-ends trade off differently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace jtam::tam {

using VReg = int;       // virtual register, local to one thread/inlet body
using SlotId = int;     // frame data slot index
using ThreadId = int;   // index into Codeblock::threads
using InletId = int;    // index into Codeblock::inlets
using CbId = int;       // index into Program::codeblocks

/// Arithmetic/logic operators available to thread and inlet bodies.
/// Floating-point operators compile to calls into the software FP library
/// in system code, as on the FPU-less MDP.
enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
  Lt, Le, Eq, Ne,
  FAdd, FSub, FMul, FDiv, FLt,
};

bool is_float_op(BinOp op);
const char* binop_name(BinOp op);

enum class VOpKind : std::uint8_t {
  Const,       // dst = imm (int or float bit pattern)
  Copy,        // dst = a (internal; created by the MD optimizer when it
               // forwards an inlet value to an inlined thread in a register)
  SpillStore,  // frame.spill[imm] = a (internal; inserted by the register
               // allocator when body pressure exceeds the MDP register file)
  SpillLoad,   // dst = frame.spill[imm] (internal)
  Bin,         // dst = a BOP b
  BinI,        // dst = a BOP imm
  Select,      // dst = c ? a : b
  FrameLoad,   // dst = frame[slot(imm)]
  FrameStore,  // frame[slot(imm)] = a
  MsgLoad,     // dst = payload word imm of the current message (inlets only)
  SelfFrame,   // dst = pointer to own frame
  InletAddr,   // dst = code address of own codeblock's inlet `inlet`
               // (continuations are (inlet, frame) pairs passed as values)
  IFetch,      // split-phase I-structure read of address `a`; value is
               // delivered to inlet `inlet` as payload word 0
  IStore,      // I-structure write [a] = b (wakes deferred readers)
  GFetch,      // imperative global read of address `a`, reply to `inlet`
  GStore,      // imperative global write [a] = b (no reply; ordering via
               // the FIFO system queue)
  FAlloc,      // request a frame for codeblock `cb`; pointer delivered to
               // inlet `inlet` as payload word 0
  HAlloc,      // request `a` bytes of global heap (I-structure storage);
               // base address delivered to inlet `inlet` as payload word 0
  Release,     // return own frame to the free list (codeblock epilogue)
  SendMsg,     // send `args` to inlet `inlet` of codeblock `cb` whose frame
               // pointer is in `a` (static target codeblock)
  SendDyn,     // send `args` to the continuation (inlet addr `a`, frame `b`)
  SendHalt,    // deliver `a` to the host and stop the machine
};

/// One IR operation.  Fields are used according to `kind` (see VOpKind).
struct VOp {
  VOpKind kind{};
  BinOp bop{};
  VReg dst = -1;
  VReg a = -1;
  VReg b = -1;
  VReg c = -1;
  std::int32_t imm = 0;
  InletId inlet = -1;
  CbId cb = -1;
  std::vector<VReg> args;
};

/// Thread terminator: an optional condition selecting between two fork
/// lists.  With cond < 0, `then_forks` fires unconditionally.  After the
/// forks the thread stops (pops the LCV / suspends, per back-end).
struct Terminator {
  VReg cond = -1;
  std::vector<ThreadId> then_forks;
  std::vector<ThreadId> else_forks;
};

struct Thread {
  std::string name;
  int entry_count = 1;  // 1 == non-synchronizing (implicit count of one)
  std::vector<VOp> body;
  Terminator term;
  bool is_synchronizing() const { return entry_count > 1; }
};

struct Inlet {
  std::string name;
  int payload_words = 1;
  std::vector<VOp> body;
  std::optional<ThreadId> post;  // TAM inlets end with "post t"
};

struct Codeblock {
  std::string name;
  int num_data_slots = 0;
  std::vector<Thread> threads;
  std::vector<Inlet> inlets;
};

struct Program {
  std::string name;
  std::vector<Codeblock> codeblocks;
};

// --------------------------------------------------------------------------
// Builder API.  Typical use:
//
//   Program prog{"example"};
//   CodeblockBuilder cb(prog, "main", /*data_slots=*/4);
//   ThreadId t_go = cb.declare_thread("go", /*entry_count=*/2);
//   InletId in_x = cb.declare_inlet("x", 1);
//   { BodyBuilder b = cb.define_inlet(in_x);
//     b.frame_store(kSlotX, b.msg_load(0));
//     b.post(t_go); }
//   { BodyBuilder b = cb.define_thread(t_go);
//     VReg x = b.frame_load(kSlotX);
//     ...
//     b.stop(); }
//   CbId id = cb.finish();
// --------------------------------------------------------------------------

class CodeblockBuilder;

/// Builds one thread or inlet body.  Methods append ops and return the
/// destination virtual register.
class BodyBuilder {
 public:
  VReg konst(std::int32_t v);
  VReg konst_f(float v);
  VReg bin(BinOp op, VReg a, VReg b);
  VReg bini(BinOp op, VReg a, std::int32_t imm);
  VReg select(VReg cond, VReg if_true, VReg if_false);
  VReg frame_load(SlotId slot);
  void frame_store(SlotId slot, VReg v);
  VReg msg_load(int payload_word);  // inlets only
  VReg self_frame();
  VReg inlet_addr(InletId inlet);
  void ifetch(VReg addr, InletId reply_inlet);
  void istore(VReg addr, VReg value);
  void gfetch(VReg addr, InletId reply_inlet);
  void gstore(VReg addr, VReg value);
  void falloc(CbId cb, InletId reply_inlet);
  void halloc(VReg size_bytes, InletId reply_inlet);
  void release();
  void send_msg(CbId cb, InletId inlet, VReg frame,
                const std::vector<VReg>& args);
  void send_dyn(VReg inlet_addr, VReg frame, const std::vector<VReg>& args);
  void send_halt(VReg value);

  // Terminators (threads only).
  void stop();                                 // no forks
  void forks(std::vector<ThreadId> targets);   // unconditional fork list
  void cond_forks(VReg cond, std::vector<ThreadId> then_targets,
                  std::vector<ThreadId> else_targets);
  // Terminator (inlets only).
  void post(ThreadId t);
  void no_post();

 private:
  friend class CodeblockBuilder;
  BodyBuilder(CodeblockBuilder* owner, bool is_inlet, int index)
      : owner_(owner), is_inlet_(is_inlet), index_(index) {}
  VReg fresh();
  void push(VOp op);
  std::vector<VOp>& body();

  CodeblockBuilder* owner_;
  bool is_inlet_;
  int index_;
  int next_vreg_ = 0;
  bool terminated_ = false;
};

class CodeblockBuilder {
 public:
  /// Creates the codeblock in `prog` (finish() returns its id).
  CodeblockBuilder(Program& prog, std::string name, int num_data_slots);

  ThreadId declare_thread(std::string name, int entry_count = 1);
  InletId declare_inlet(std::string name, int payload_words = 1);

  /// Start defining a declared thread/inlet.  Each may be defined once;
  /// the returned builder must be terminated before finish().
  BodyBuilder define_thread(ThreadId t);
  BodyBuilder define_inlet(InletId i);

  /// Validate and commit; returns the codeblock id within the program.
  CbId finish();

  Codeblock& codeblock() { return cb_; }

 private:
  friend class BodyBuilder;
  Program& prog_;
  Codeblock cb_;
  std::vector<bool> thread_defined_;
  std::vector<bool> inlet_defined_;
  bool finished_ = false;
};

/// Structural validation of a whole program: all thread/inlet/codeblock
/// references in range, exactly one terminator per body, MsgLoad only in
/// inlets and within payload bounds, entry counts >= 1, virtual registers
/// defined before use.  Throws jtam::Error with a precise message.
void validate(const Program& prog);

}  // namespace jtam::tam
