#include "tam/parser.h"

#include <bit>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/error.h"

namespace jtam::tam {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      flush();
    } else if (c == '(' || c == ')' || c == '=' || c == '?' || c == ':' ||
               c == ',') {
      flush();
      if (c != ',') out.push_back(std::string(1, c));
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

std::optional<BinOp> binop_by_name(const std::string& s) {
  static const std::map<std::string, BinOp> kOps = {
      {"add", BinOp::Add},   {"sub", BinOp::Sub},   {"mul", BinOp::Mul},
      {"div", BinOp::Div},   {"mod", BinOp::Mod},   {"and", BinOp::And},
      {"or", BinOp::Or},     {"xor", BinOp::Xor},   {"shl", BinOp::Shl},
      {"shr", BinOp::Shr},   {"lt", BinOp::Lt},     {"le", BinOp::Le},
      {"eq", BinOp::Eq},     {"ne", BinOp::Ne},     {"fadd", BinOp::FAdd},
      {"fsub", BinOp::FSub}, {"fmul", BinOp::FMul}, {"fdiv", BinOp::FDiv},
      {"flt", BinOp::FLt}};
  auto it = kOps.find(s);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

/// Names declared inside one codeblock.
struct CbNames {
  std::string name;
  std::map<std::string, SlotId> slots;
  std::map<std::string, ThreadId> threads;
  std::map<std::string, InletId> inlets;
};

struct Line {
  int number;
  std::vector<std::string> toks;
};

class Parser {
 public:
  explicit Parser(const std::string& source) {
    std::istringstream is(source);
    std::string raw;
    int no = 0;
    while (std::getline(is, raw)) {
      ++no;
      std::vector<std::string> toks = tokenize(raw);
      if (!toks.empty()) lines_.push_back(Line{no, std::move(toks)});
    }
  }

  Program run() {
    scan_declarations();
    build();
    validate(prog_);
    return prog_;
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw Error("TAM parse error at line " + std::to_string(line) + ": " +
                msg);
  }

  static bool is_decl(const std::vector<std::string>& t) {
    return t[0] == "program" || t[0] == "codeblock" || t[0] == "thread" ||
           t[0] == "inlet";
  }

  /// Pass 1: collect every codeblock/thread/inlet/slot name so bodies can
  /// reference them in any order.
  void scan_declarations() {
    int cur_cb = -1;
    for (const Line& ln : lines_) {
      const auto& t = ln.toks;
      if (t[0] == "program") {
        if (t.size() != 2) fail(ln.number, "expected: program NAME");
        prog_.name = t[1];
      } else if (t[0] == "codeblock") {
        // codeblock NAME slots ( a b c )
        if (t.size() < 2) fail(ln.number, "expected: codeblock NAME ...");
        CbNames names;
        names.name = t[1];
        std::size_t i = 2;
        if (i < t.size()) {
          if (t[i] != "slots") fail(ln.number, "expected 'slots(...)'");
          ++i;
          if (i >= t.size() || t[i] != "(") fail(ln.number, "expected '('");
          ++i;
          while (i < t.size() && t[i] != ")") {
            SlotId id = static_cast<SlotId>(names.slots.size());
            if (!names.slots.emplace(t[i], id).second) {
              fail(ln.number, "duplicate slot '" + t[i] + "'");
            }
            ++i;
          }
          if (i >= t.size()) fail(ln.number, "missing ')'");
        }
        if (by_name_.count(names.name) != 0) {
          fail(ln.number, "duplicate codeblock '" + names.name + "'");
        }
        by_name_[names.name] = static_cast<CbId>(cbs_.size());
        cbs_.push_back(std::move(names));
        cur_cb = static_cast<int>(cbs_.size()) - 1;
      } else if (t[0] == "thread") {
        if (cur_cb < 0) fail(ln.number, "thread outside a codeblock");
        if (t.size() < 2) fail(ln.number, "expected: thread NAME");
        CbNames& cb = cbs_[static_cast<std::size_t>(cur_cb)];
        ThreadId id = static_cast<ThreadId>(cb.threads.size());
        if (!cb.threads.emplace(t[1], id).second) {
          fail(ln.number, "duplicate thread '" + t[1] + "'");
        }
      } else if (t[0] == "inlet") {
        if (cur_cb < 0) fail(ln.number, "inlet outside a codeblock");
        if (t.size() < 2) fail(ln.number, "expected: inlet NAME(...)");
        CbNames& cb = cbs_[static_cast<std::size_t>(cur_cb)];
        InletId id = static_cast<InletId>(cb.inlets.size());
        if (!cb.inlets.emplace(t[1], id).second) {
          fail(ln.number, "duplicate inlet '" + t[1] + "'");
        }
      }
    }
    if (prog_.name.empty()) {
      throw Error("TAM parse error: missing 'program NAME' header");
    }
    if (cbs_.empty()) {
      throw Error("TAM parse error: no codeblocks");
    }
  }

  // --- pass 2 helpers ------------------------------------------------------

  struct BodyCtx {
    CodeblockBuilder* builder = nullptr;
    std::optional<BodyBuilder> body;
    const CbNames* names = nullptr;
    std::map<std::string, VReg> vregs;
    std::map<std::string, VReg> msg_params;  // inlet parameter names
    bool is_inlet = false;
    std::optional<ThreadId> inlet_post;
    bool terminated = false;
    int header_line = 0;
  };

  VReg use(BodyCtx& ctx, const std::string& name, int line) {
    if (ctx.is_inlet) {
      auto mp = ctx.msg_params.find(name);
      if (mp != ctx.msg_params.end()) return mp->second;
    }
    auto it = ctx.vregs.find(name);
    if (it == ctx.vregs.end()) fail(line, "unknown value '" + name + "'");
    return it->second;
  }

  void def(BodyCtx& ctx, const std::string& name, VReg v, int line) {
    if (!ctx.vregs.emplace(name, v).second) {
      fail(line, "value '" + name + "' defined twice (values are SSA)");
    }
  }

  SlotId slot_of(const BodyCtx& ctx, const std::string& name,
                 int line) const {
    auto it = ctx.names->slots.find(name);
    if (it == ctx.names->slots.end()) fail(line, "unknown slot '" + name + "'");
    return it->second;
  }

  ThreadId thread_of(const CbNames& cb, const std::string& name,
                     int line) const {
    auto it = cb.threads.find(name);
    if (it == cb.threads.end()) fail(line, "unknown thread '" + name + "'");
    return it->second;
  }

  InletId inlet_of(const CbNames& cb, const std::string& name,
                   int line) const {
    auto it = cb.inlets.find(name);
    if (it == cb.inlets.end()) fail(line, "unknown inlet '" + name + "'");
    return it->second;
  }

  std::int32_t to_int(const std::string& s, int line) const {
    try {
      std::size_t pos = 0;
      long v = std::stol(s, &pos, 0);
      if (pos != s.size()) throw std::invalid_argument(s);
      return static_cast<std::int32_t>(v);
    } catch (const std::exception&) {
      fail(line, "expected an integer, got '" + s + "'");
    }
  }

  float to_float(const std::string& s, int line) const {
    try {
      std::size_t pos = 0;
      float v = std::stof(s, &pos);
      if (pos != s.size()) throw std::invalid_argument(s);
      return v;
    } catch (const std::exception&) {
      fail(line, "expected a float, got '" + s + "'");
    }
  }

  void finish_body(BodyCtx& ctx) {
    if (!ctx.body.has_value()) return;
    if (ctx.is_inlet) {
      if (ctx.inlet_post.has_value()) {
        ctx.body->post(*ctx.inlet_post);
      } else {
        ctx.body->no_post();
      }
    } else if (!ctx.terminated) {
      fail(ctx.header_line,
           "thread body has no terminator (stop / fork / cfork)");
    }
    ctx.body.reset();
  }

  /// Parse `( a b c )` starting at t[i]; returns vreg list, advances i.
  std::vector<VReg> parse_args(BodyCtx& ctx, const std::vector<std::string>& t,
                               std::size_t& i, int line) {
    std::vector<VReg> args;
    if (i >= t.size() || t[i] != "(") fail(line, "expected '('");
    ++i;
    while (i < t.size() && t[i] != ")") {
      args.push_back(use(ctx, t[i], line));
      ++i;
    }
    if (i >= t.size()) fail(line, "missing ')'");
    ++i;
    return args;
  }

  void parse_statement(BodyCtx& ctx, const Line& ln) {
    const auto& t = ln.toks;
    const int no = ln.number;
    BodyBuilder& b = *ctx.body;
    const CbNames& cb = *ctx.names;

    if (ctx.terminated) fail(no, "statement after terminator");

    // Terminators (threads only).
    if (t[0] == "stop") {
      if (ctx.is_inlet) fail(no, "'stop' is a thread terminator");
      b.stop();
      ctx.terminated = true;
      return;
    }
    if (t[0] == "fork") {
      if (ctx.is_inlet) fail(no, "'fork' is a thread terminator");
      std::vector<ThreadId> targets;
      for (std::size_t i = 1; i < t.size(); ++i) {
        targets.push_back(thread_of(cb, t[i], no));
      }
      if (targets.empty()) fail(no, "fork needs at least one target");
      b.forks(std::move(targets));
      ctx.terminated = true;
      return;
    }
    if (t[0] == "cfork") {
      if (ctx.is_inlet) fail(no, "'cfork' is a thread terminator");
      // cfork c ? t1 t2 : t3 t4
      if (t.size() < 4 || t[2] != "?") {
        fail(no, "expected: cfork COND ? THEN... : ELSE...");
      }
      VReg c = use(ctx, t[1], no);
      std::vector<ThreadId> then_t, else_t;
      std::size_t i = 3;
      for (; i < t.size() && t[i] != ":"; ++i) {
        then_t.push_back(thread_of(cb, t[i], no));
      }
      if (i < t.size()) {
        for (++i; i < t.size(); ++i) {
          else_t.push_back(thread_of(cb, t[i], no));
        }
      }
      b.cond_forks(c, std::move(then_t), std::move(else_t));
      ctx.terminated = true;
      return;
    }

    // Non-assignment statements.
    if (t[0] == "store") {
      // store SLOT = x
      if (t.size() != 4 || t[2] != "=") fail(no, "expected: store SLOT = x");
      b.frame_store(slot_of(ctx, t[1], no), use(ctx, t[3], no));
      return;
    }
    if (t[0] == "ifetch" || t[0] == "gfetch") {
      // ifetch a -> INLET
      if (t.size() != 4 || t[2] != "->") fail(no, "expected: " + t[0] +
                                                      " a -> INLET");
      VReg a = use(ctx, t[1], no);
      InletId in = inlet_of(cb, t[3], no);
      if (t[0] == "ifetch") {
        b.ifetch(a, in);
      } else {
        b.gfetch(a, in);
      }
      return;
    }
    if (t[0] == "istore" || t[0] == "gstore") {
      if (t.size() != 3) fail(no, "expected: " + t[0] + " addr value");
      VReg a = use(ctx, t[1], no);
      VReg v = use(ctx, t[2], no);
      if (t[0] == "istore") {
        b.istore(a, v);
      } else {
        b.gstore(a, v);
      }
      return;
    }
    if (t[0] == "falloc") {
      // falloc CB -> INLET
      if (t.size() != 4 || t[2] != "->") fail(no, "expected: falloc CB -> INLET");
      auto it = by_name_.find(t[1]);
      if (it == by_name_.end()) fail(no, "unknown codeblock '" + t[1] + "'");
      b.falloc(it->second, inlet_of(cb, t[3], no));
      return;
    }
    if (t[0] == "halloc") {
      if (t.size() != 4 || t[2] != "->") {
        fail(no, "expected: halloc size -> INLET");
      }
      b.halloc(use(ctx, t[1], no), inlet_of(cb, t[3], no));
      return;
    }
    if (t[0] == "send") {
      // send CB.INLET f ( a b )
      if (t.size() < 3) fail(no, "expected: send CB.INLET frame (args)");
      const std::string& target = t[1];
      auto dot = target.find('.');
      if (dot == std::string::npos) fail(no, "expected CB.INLET");
      auto it = by_name_.find(target.substr(0, dot));
      if (it == by_name_.end()) {
        fail(no, "unknown codeblock '" + target.substr(0, dot) + "'");
      }
      const CbNames& tcb = cbs_[static_cast<std::size_t>(it->second)];
      InletId in = inlet_of(tcb, target.substr(dot + 1), no);
      VReg frame = use(ctx, t[2], no);
      std::size_t i = 3;
      std::vector<VReg> args = parse_args(ctx, t, i, no);
      b.send_msg(it->second, in, frame, args);
      return;
    }
    if (t[0] == "senddyn") {
      if (t.size() < 4) fail(no, "expected: senddyn inlet frame (args)");
      VReg ia = use(ctx, t[1], no);
      VReg fr = use(ctx, t[2], no);
      std::size_t i = 3;
      std::vector<VReg> args = parse_args(ctx, t, i, no);
      b.send_dyn(ia, fr, args);
      return;
    }
    if (t[0] == "halt") {
      if (t.size() != 2) fail(no, "expected: halt x");
      b.send_halt(use(ctx, t[1], no));
      return;
    }
    if (t[0] == "release") {
      b.release();
      return;
    }

    // Assignments: x = OP ...
    if (t.size() >= 3 && t[1] == "=") {
      const std::string& dst = t[0];
      const std::string& op = t[2];
      VReg v = -1;
      if (op == "const") {
        if (t.size() != 4) fail(no, "expected: x = const N");
        v = b.konst(to_int(t[3], no));
      } else if (op == "constf") {
        if (t.size() != 4) fail(no, "expected: x = constf F");
        v = b.konst_f(to_float(t[3], no));
      } else if (op == "msg") {
        if (t.size() != 4) fail(no, "expected: x = msg K");
        v = b.msg_load(to_int(t[3], no));
      } else if (op == "load") {
        if (t.size() != 4) fail(no, "expected: x = load SLOT");
        v = b.frame_load(slot_of(ctx, t[3], no));
      } else if (op == "frame") {
        v = b.self_frame();
      } else if (op == "inlet_addr") {
        if (t.size() != 4) fail(no, "expected: x = inlet_addr INLET");
        v = b.inlet_addr(inlet_of(cb, t[3], no));
      } else if (op == "select") {
        if (t.size() != 6) fail(no, "expected: x = select c a b");
        v = b.select(use(ctx, t[3], no), use(ctx, t[4], no),
                     use(ctx, t[5], no));
      } else if (auto bop = binop_by_name(op)) {
        if (t.size() != 5) fail(no, "expected: x = " + op + " a b");
        v = b.bin(*bop, use(ctx, t[3], no), use(ctx, t[4], no));
      } else if (op.size() > 1 && op.back() == 'i' &&
                 binop_by_name(op.substr(0, op.size() - 1))) {
        if (t.size() != 5) fail(no, "expected: x = " + op + " a N");
        v = b.bini(*binop_by_name(op.substr(0, op.size() - 1)),
                   use(ctx, t[3], no), to_int(t[4], no));
      } else {
        fail(no, "unknown operation '" + op + "'");
      }
      def(ctx, dst, v, no);
      return;
    }

    fail(no, "unrecognized statement '" + t[0] + "'");
  }

  void build() {
    std::optional<CodeblockBuilder> builder;
    int cur_cb = -1;
    BodyCtx ctx;
    // Pre-declare all threads/inlets of a codeblock when entering it, so
    // forward references resolve.  The *order* of declarations must match
    // pass 1's name->id assignment, so re-scan headers per codeblock.
    auto open_codeblock = [&](int cb_index) {
      const CbNames& names = cbs_[static_cast<std::size_t>(cb_index)];
      builder.emplace(prog_, names.name,
                      static_cast<int>(names.slots.size()));
      // Declare in id order.
      std::vector<std::pair<ThreadId, const Line*>> tdecl(
          names.threads.size(), {0, nullptr});
      std::vector<std::pair<InletId, const Line*>> idecl(names.inlets.size(),
                                                         {0, nullptr});
      int seen_cb = -1;
      for (const Line& ln : lines_) {
        if (ln.toks[0] == "codeblock") ++seen_cb;
        if (seen_cb != cb_index) continue;
        if (ln.toks[0] == "thread") {
          ThreadId id = names.threads.at(ln.toks[1]);
          tdecl[static_cast<std::size_t>(id)] = {id, &ln};
        } else if (ln.toks[0] == "inlet") {
          InletId id = names.inlets.at(ln.toks[1]);
          idecl[static_cast<std::size_t>(id)] = {id, &ln};
        }
      }
      for (const auto& [id, ln] : tdecl) {
        int ec = 1;
        for (std::size_t i = 2; i + 1 < ln->toks.size(); ++i) {
          if (ln->toks[i] == "entry") ec = to_int(ln->toks[i + 1], ln->number);
        }
        builder->declare_thread(ln->toks[1], ec);
      }
      for (const auto& [id, ln] : idecl) {
        // inlet NAME ( p1 p2 ) [posts T]
        int params = 0;
        for (std::size_t i = 2; i < ln->toks.size(); ++i) {
          if (ln->toks[i] == "(") {
            for (std::size_t j = i + 1;
                 j < ln->toks.size() && ln->toks[j] != ")"; ++j) {
              ++params;
            }
            break;
          }
        }
        builder->declare_inlet(ln->toks[1], params);
      }
    };

    for (const Line& ln : lines_) {
      const auto& t = ln.toks;
      if (t[0] == "program") continue;
      if (t[0] == "codeblock") {
        finish_body(ctx);
        if (builder.has_value()) builder->finish();
        ++cur_cb;
        open_codeblock(cur_cb);
        ctx = BodyCtx{};
        continue;
      }
      if (t[0] == "thread") {
        finish_body(ctx);
        const CbNames& names = cbs_[static_cast<std::size_t>(cur_cb)];
        ctx = BodyCtx{};
        ctx.builder = &*builder;
        ctx.names = &names;
        ctx.is_inlet = false;
        ctx.header_line = ln.number;
        ctx.body.emplace(builder->define_thread(names.threads.at(t[1])));
        continue;
      }
      if (t[0] == "inlet") {
        finish_body(ctx);
        const CbNames& names = cbs_[static_cast<std::size_t>(cur_cb)];
        ctx = BodyCtx{};
        ctx.builder = &*builder;
        ctx.names = &names;
        ctx.is_inlet = true;
        ctx.header_line = ln.number;
        ctx.body.emplace(builder->define_inlet(names.inlets.at(t[1])));
        // Parameter names map to message words (materialized eagerly, as
        // TAM inlets read their operands up front); `posts T` records the
        // inlet's post target.
        int word = 0;
        for (std::size_t i = 2; i < t.size(); ++i) {
          if (t[i] == "(") {
            for (std::size_t j = i + 1; j < t.size() && t[j] != ")";
                 ++j, ++word) {
              ctx.msg_params[t[j]] = ctx.body->msg_load(word);
            }
          } else if (t[i] == "posts") {
            if (i + 1 >= t.size()) fail(ln.number, "posts needs a thread");
            ctx.inlet_post = names.threads.count(t[i + 1]) != 0
                                 ? names.threads.at(t[i + 1])
                                 : throw Error("TAM parse error at line " +
                                               std::to_string(ln.number) +
                                               ": unknown thread '" +
                                               t[i + 1] + "'");
          }
        }
        continue;
      }
      if (!ctx.body.has_value()) fail(ln.number, "statement outside a body");
      parse_statement(ctx, ln);
    }
    finish_body(ctx);
    if (builder.has_value()) builder->finish();
  }

  std::vector<Line> lines_;
  Program prog_;
  std::vector<CbNames> cbs_;
  std::map<std::string, CbId> by_name_;
};

}  // namespace

Program parse_program(const std::string& source) {
  return Parser(source).run();
}

Program parse_program_file(const std::string& path) {
  std::ifstream f(path);
  JTAM_CHECK(f.good(), "cannot open TAM source file '" + path + "'");
  std::ostringstream os;
  os << f.rdbuf();
  return parse_program(os.str());
}

}  // namespace jtam::tam
