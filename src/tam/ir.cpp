#include "tam/ir.h"

#include <bit>

#include "support/error.h"

namespace jtam::tam {

bool is_float_op(BinOp op) {
  switch (op) {
    case BinOp::FAdd:
    case BinOp::FSub:
    case BinOp::FMul:
    case BinOp::FDiv:
    case BinOp::FLt:
      return true;
    default:
      return false;
  }
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "add";
    case BinOp::Sub: return "sub";
    case BinOp::Mul: return "mul";
    case BinOp::Div: return "div";
    case BinOp::Mod: return "mod";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
    case BinOp::Xor: return "xor";
    case BinOp::Shl: return "shl";
    case BinOp::Shr: return "shr";
    case BinOp::Lt: return "lt";
    case BinOp::Le: return "le";
    case BinOp::Eq: return "eq";
    case BinOp::Ne: return "ne";
    case BinOp::FAdd: return "fadd";
    case BinOp::FSub: return "fsub";
    case BinOp::FMul: return "fmul";
    case BinOp::FDiv: return "fdiv";
    case BinOp::FLt: return "flt";
  }
  return "?";
}

// --- BodyBuilder -----------------------------------------------------------

VReg BodyBuilder::fresh() { return next_vreg_++; }

std::vector<VOp>& BodyBuilder::body() {
  return is_inlet_ ? owner_->cb_.inlets[index_].body
                   : owner_->cb_.threads[index_].body;
}

void BodyBuilder::push(VOp op) {
  JTAM_CHECK(!terminated_, "op appended after terminator in '" +
                               owner_->cb_.name + "'");
  body().push_back(std::move(op));
}

VReg BodyBuilder::konst(std::int32_t v) {
  VOp op;
  op.kind = VOpKind::Const;
  op.dst = fresh();
  op.imm = v;
  push(op);
  return op.dst;
}

VReg BodyBuilder::konst_f(float v) {
  return konst(static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(v)));
}

VReg BodyBuilder::bin(BinOp bop, VReg a, VReg b) {
  VOp op;
  op.kind = VOpKind::Bin;
  op.bop = bop;
  op.dst = fresh();
  op.a = a;
  op.b = b;
  push(op);
  return op.dst;
}

VReg BodyBuilder::bini(BinOp bop, VReg a, std::int32_t imm) {
  JTAM_CHECK(!is_float_op(bop), "float ops take register operands only");
  VOp op;
  op.kind = VOpKind::BinI;
  op.bop = bop;
  op.dst = fresh();
  op.a = a;
  op.imm = imm;
  push(op);
  return op.dst;
}

VReg BodyBuilder::select(VReg cond, VReg if_true, VReg if_false) {
  VOp op;
  op.kind = VOpKind::Select;
  op.dst = fresh();
  op.c = cond;
  op.a = if_true;
  op.b = if_false;
  push(op);
  return op.dst;
}

VReg BodyBuilder::frame_load(SlotId slot) {
  VOp op;
  op.kind = VOpKind::FrameLoad;
  op.dst = fresh();
  op.imm = slot;
  push(op);
  return op.dst;
}

void BodyBuilder::frame_store(SlotId slot, VReg v) {
  VOp op;
  op.kind = VOpKind::FrameStore;
  op.a = v;
  op.imm = slot;
  push(op);
}

VReg BodyBuilder::msg_load(int payload_word) {
  JTAM_CHECK(is_inlet_, "MsgLoad is only available in inlets");
  VOp op;
  op.kind = VOpKind::MsgLoad;
  op.dst = fresh();
  op.imm = payload_word;
  push(op);
  return op.dst;
}

VReg BodyBuilder::self_frame() {
  VOp op;
  op.kind = VOpKind::SelfFrame;
  op.dst = fresh();
  push(op);
  return op.dst;
}

VReg BodyBuilder::inlet_addr(InletId inlet) {
  VOp op;
  op.kind = VOpKind::InletAddr;
  op.dst = fresh();
  op.inlet = inlet;
  push(op);
  return op.dst;
}

void BodyBuilder::ifetch(VReg addr, InletId reply_inlet) {
  VOp op;
  op.kind = VOpKind::IFetch;
  op.a = addr;
  op.inlet = reply_inlet;
  push(op);
}

void BodyBuilder::istore(VReg addr, VReg value) {
  VOp op;
  op.kind = VOpKind::IStore;
  op.a = addr;
  op.b = value;
  push(op);
}

void BodyBuilder::gfetch(VReg addr, InletId reply_inlet) {
  VOp op;
  op.kind = VOpKind::GFetch;
  op.a = addr;
  op.inlet = reply_inlet;
  push(op);
}

void BodyBuilder::gstore(VReg addr, VReg value) {
  VOp op;
  op.kind = VOpKind::GStore;
  op.a = addr;
  op.b = value;
  push(op);
}

void BodyBuilder::falloc(CbId cb, InletId reply_inlet) {
  VOp op;
  op.kind = VOpKind::FAlloc;
  op.cb = cb;
  op.inlet = reply_inlet;
  push(op);
}

void BodyBuilder::halloc(VReg size_bytes, InletId reply_inlet) {
  VOp op;
  op.kind = VOpKind::HAlloc;
  op.a = size_bytes;
  op.inlet = reply_inlet;
  push(op);
}

void BodyBuilder::release() {
  VOp op;
  op.kind = VOpKind::Release;
  push(op);
}

void BodyBuilder::send_msg(CbId cb, InletId inlet, VReg frame,
                           const std::vector<VReg>& args) {
  VOp op;
  op.kind = VOpKind::SendMsg;
  op.cb = cb;
  op.inlet = inlet;
  op.a = frame;
  op.args = args;
  push(op);
}

void BodyBuilder::send_dyn(VReg inlet_addr, VReg frame,
                           const std::vector<VReg>& args) {
  VOp op;
  op.kind = VOpKind::SendDyn;
  op.a = inlet_addr;
  op.b = frame;
  op.args = args;
  push(op);
}

void BodyBuilder::send_halt(VReg value) {
  VOp op;
  op.kind = VOpKind::SendHalt;
  op.a = value;
  push(op);
}

void BodyBuilder::stop() {
  JTAM_CHECK(!is_inlet_, "stop() is a thread terminator");
  JTAM_CHECK(!terminated_, "double terminator");
  terminated_ = true;
}

void BodyBuilder::forks(std::vector<ThreadId> targets) {
  JTAM_CHECK(!is_inlet_, "forks() is a thread terminator");
  JTAM_CHECK(!terminated_, "double terminator");
  owner_->cb_.threads[index_].term.then_forks = std::move(targets);
  terminated_ = true;
}

void BodyBuilder::cond_forks(VReg cond, std::vector<ThreadId> then_targets,
                             std::vector<ThreadId> else_targets) {
  JTAM_CHECK(!is_inlet_, "cond_forks() is a thread terminator");
  JTAM_CHECK(!terminated_, "double terminator");
  Terminator& t = owner_->cb_.threads[index_].term;
  t.cond = cond;
  t.then_forks = std::move(then_targets);
  t.else_forks = std::move(else_targets);
  terminated_ = true;
}

void BodyBuilder::post(ThreadId t) {
  JTAM_CHECK(is_inlet_, "post() is an inlet terminator");
  JTAM_CHECK(!terminated_, "double terminator");
  owner_->cb_.inlets[index_].post = t;
  terminated_ = true;
}

void BodyBuilder::no_post() {
  JTAM_CHECK(is_inlet_, "no_post() is an inlet terminator");
  JTAM_CHECK(!terminated_, "double terminator");
  owner_->cb_.inlets[index_].post.reset();
  terminated_ = true;
}

// --- CodeblockBuilder --------------------------------------------------------

CodeblockBuilder::CodeblockBuilder(Program& prog, std::string name,
                                   int num_data_slots)
    : prog_(prog) {
  cb_.name = std::move(name);
  cb_.num_data_slots = num_data_slots;
}

ThreadId CodeblockBuilder::declare_thread(std::string name, int entry_count) {
  JTAM_CHECK(entry_count >= 1, "entry count must be >= 1");
  cb_.threads.push_back(Thread{std::move(name), entry_count, {}, {}});
  thread_defined_.push_back(false);
  return static_cast<ThreadId>(cb_.threads.size() - 1);
}

InletId CodeblockBuilder::declare_inlet(std::string name, int payload_words) {
  JTAM_CHECK(payload_words >= 0, "negative payload size");
  cb_.inlets.push_back(Inlet{std::move(name), payload_words, {}, {}});
  inlet_defined_.push_back(false);
  return static_cast<InletId>(cb_.inlets.size() - 1);
}

BodyBuilder CodeblockBuilder::define_thread(ThreadId t) {
  JTAM_CHECK(t >= 0 && t < static_cast<int>(cb_.threads.size()),
             "define of undeclared thread");
  JTAM_CHECK(!thread_defined_[t],
             "thread '" + cb_.threads[t].name + "' defined twice");
  thread_defined_[t] = true;
  return BodyBuilder(this, /*is_inlet=*/false, t);
}

BodyBuilder CodeblockBuilder::define_inlet(InletId i) {
  JTAM_CHECK(i >= 0 && i < static_cast<int>(cb_.inlets.size()),
             "define of undeclared inlet");
  JTAM_CHECK(!inlet_defined_[i],
             "inlet '" + cb_.inlets[i].name + "' defined twice");
  inlet_defined_[i] = true;
  return BodyBuilder(this, /*is_inlet=*/true, i);
}

CbId CodeblockBuilder::finish() {
  JTAM_CHECK(!finished_, "codeblock finished twice");
  for (std::size_t i = 0; i < thread_defined_.size(); ++i) {
    JTAM_CHECK(thread_defined_[i], "thread '" + cb_.threads[i].name +
                                       "' declared but never defined");
  }
  for (std::size_t i = 0; i < inlet_defined_.size(); ++i) {
    JTAM_CHECK(inlet_defined_[i], "inlet '" + cb_.inlets[i].name +
                                      "' declared but never defined");
  }
  finished_ = true;
  prog_.codeblocks.push_back(std::move(cb_));
  return static_cast<CbId>(prog_.codeblocks.size() - 1);
}

}  // namespace jtam::tam
