#include "net/aggregate.h"

#include <utility>

#include "support/error.h"

namespace jtam::net {

const char* agg_mode_name(AggMode m) {
  switch (m) {
    case AggMode::Off: return "off";
    case AggMode::Dest: return "dest";
    case AggMode::Relay: return "relay";
  }
  return "?";
}

AggregateNetwork::AggregateNetwork(Config cfg,
                                   std::unique_ptr<NetworkModel> inner)
    : cfg_(cfg), inner_(std::move(inner)) {
  JTAM_CHECK(cfg_.mode != AggMode::Off,
             "AggMode::Off means no aggregation layer; construct the "
             "inner model directly");
  JTAM_CHECK(cfg_.shape.nodes() >= 1, "aggregation needs at least one node");
  flush_words_ = cfg_.flush_bytes / 4;
  if (flush_words_ < 2) flush_words_ = 2;  // count word + one message
  const int n = cfg_.shape.nodes();
  src_.resize(static_cast<std::size_t>(n));
  for (SrcState& s : src_) {
    s.by_dest.resize(static_cast<std::size_t>(n));
  }
  // The layer always observes the inner model: stats and flow fan-out
  // need the per-packet hop/latency values only the inner model knows.
  inner_->set_flow_observer(this);
}

int AggregateNetwork::bundle_dest(int at, int final_dest) const {
  if (cfg_.mode == AggMode::Dest) return final_dest;
  // Relay: gather along X first — messages from `at` whose destinations
  // share a column meet at (final.x, at.y, at.z).  At that relay the same
  // function maps (relay, final) back to the relay itself, which resolves
  // to a direct phase-2 bundle, so every message forwards at most once.
  const Coord a = cfg_.shape.coord_of(at);
  const Coord f = cfg_.shape.coord_of(final_dest);
  const int relay = cfg_.shape.id_of(Coord{f.x, a.y, a.z});
  return relay == at ? final_dest : relay;
}

bool AggregateNetwork::can_accept(int src, int dest, mdp::Priority p) const {
  if (p == mdp::Priority::High) {
    // Priority bypass: high traffic goes straight to the inner model's
    // high virtual network, so its backpressure is the inner model's.
    return inner_->can_accept(src, dest, p);
  }
  const Buffer& b = src_[static_cast<std::size_t>(src)]
                        .by_dest[static_cast<std::size_t>(
                            bundle_dest(src, dest))];
  // Double buffering: refuse only when the sealed half is still waiting
  // on the inner network AND the filling half is already at the
  // threshold — both halves full, the dart_amsgq writer-blocks case.
  return !(b.sealed_outstanding && b.fill_words >= flush_words_);
}

void AggregateNetwork::mark_active(int src, int dest) {
  Buffer& b = src_[static_cast<std::size_t>(src)]
                  .by_dest[static_cast<std::size_t>(dest)];
  if (!b.in_active) {
    b.in_active = true;
    src_[static_cast<std::size_t>(src)].active.push_back(dest);
  }
}

void AggregateNetwork::enqueue_msg(int at, int final_dest, Pending&& msg,
                                   std::uint64_t now) {
  const int bd = bundle_dest(at, final_dest);
  Buffer& b = src_[static_cast<std::size_t>(at)]
                  .by_dest[static_cast<std::size_t>(bd)];
  if (b.fill.empty()) {
    b.oldest = now;
    b.fill_words = 1;  // the bundle's count word
  }
  b.fill_words += 1 + static_cast<std::uint32_t>(msg.words.size());
  b.fill.push_back(std::move(msg));
  ++buffered_;
  mark_active(at, bd);
  if (!b.sealed_outstanding && b.fill_words >= flush_words_) {
    seal(at, bd, /*by_size=*/true);
  }
}

void AggregateNetwork::seal(int src, int dest, bool by_size) {
  Buffer& b = src_[static_cast<std::size_t>(src)]
                  .by_dest[static_cast<std::size_t>(dest)];
  Sealed s;
  s.dest = dest;
  s.words = b.fill_words;
  s.msgs = std::move(b.fill);
  b.fill.clear();
  b.fill_words = 0;
  b.sealed_outstanding = true;
  ++stats_.agg.bundles;
  if (by_size) {
    ++stats_.agg.flush_size;
  } else {
    ++stats_.agg.flush_timeout;
  }
  stats_.agg.bundle_messages.add(s.msgs.size());
  stats_.agg.bundle_words.add(s.words);
  src_[static_cast<std::size_t>(src)].ready.push_back(std::move(s));
}

std::uint64_t AggregateNetwork::alloc_record() {
  if (!free_records_.empty()) {
    const std::uint64_t rid = free_records_.back();
    free_records_.pop_back();
    return rid;
  }
  records_.emplace_back();
  return static_cast<std::uint64_t>(records_.size()) | kRecordBit;
}

void AggregateNetwork::release_record(std::uint64_t rid) {
  record(rid).msgs.clear();
  free_records_.push_back(rid);
}

void AggregateNetwork::inject_bundle(int src, Sealed&& s, std::uint64_t now) {
  // Frame the bundle as the inner network's payload: its flit/latency
  // cost models real framing overhead (one header word per constituent
  // plus the count word).
  std::vector<std::uint32_t> words;
  words.reserve(s.words);
  words.push_back(static_cast<std::uint32_t>(s.msgs.size()));
  for (const Pending& m : s.msgs) {
    words.push_back((static_cast<std::uint32_t>(m.final_dest) << 16) |
                    static_cast<std::uint32_t>(m.words.size()));
    words.insert(words.end(), m.words.begin(), m.words.end());
  }
  for (const Pending& m : s.msgs) {
    stats_.agg.buffer_wait.add(now - m.buffer_round);
  }
  buffered_ -= s.msgs.size();
  const std::uint64_t rid = alloc_record();
  record(rid).msgs = std::move(s.msgs);
  src_[static_cast<std::size_t>(src)]
      .by_dest[static_cast<std::size_t>(s.dest)]
      .sealed_outstanding = false;
  inner_->inject(src, s.dest, mdp::Priority::Low, words, now, rid);
}

void AggregateNetwork::inject(int src, int dest, mdp::Priority p,
                              std::span<const std::uint32_t> words,
                              std::uint64_t now, std::uint64_t flow_id) {
  JTAM_CHECK(src != dest, "local send routed onto the network");
  JTAM_CHECK(can_accept(src, dest, p), "inject past aggregation capacity");
  if (p == mdp::Priority::High) {
    ++stats_.agg.bypass_messages;
    JTAM_CHECK((flow_id & kRecordBit) == 0, "flow id collides with records");
    inner_->inject(src, dest, p, words, now, flow_id);
    return;
  }
  ++stats_.agg.bundled_messages;
  Pending m;
  m.final_dest = dest;
  m.words.assign(words.begin(), words.end());
  m.flow_id = flow_id;
  m.enqueue_round = now;
  m.buffer_round = now;
  m.hops_before = 0;
  enqueue_msg(src, dest, std::move(m), now);
}

void AggregateNetwork::step(std::uint64_t now, DeliverySink& sink) {
  ++stats_.cycles;
  sink_ = &sink;
  now_ = now;
  const int n = cfg_.shape.nodes();
  for (int src = 0; src < n; ++src) {
    SrcState& ss = src_[static_cast<std::size_t>(src)];
    // Seal due buffers, scanning in insertion order and compacting the
    // active list in place (deterministic; buffers whose work is gone
    // leave the list).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ss.active.size(); ++i) {
      const int dest = ss.active[i];
      Buffer& b = ss.by_dest[static_cast<std::size_t>(dest)];
      if (!b.sealed_outstanding && !b.fill.empty() &&
          (b.fill_words >= flush_words_ ||
           now - b.oldest >= cfg_.flush_timeout)) {
        seal(src, dest, b.fill_words >= flush_words_);
      }
      if (b.sealed_outstanding || !b.fill.empty()) {
        ss.active[keep++] = dest;
      } else {
        b.in_active = false;
      }
    }
    ss.active.resize(keep);
    // Drain sealed bundles into the inner network, FIFO, for as long as
    // it grants credit.
    while (!ss.ready.empty() &&
           inner_->can_accept(src, ss.ready.front().dest,
                              mdp::Priority::Low)) {
      Sealed s = std::move(ss.ready.front());
      ss.ready.pop_front();
      inject_bundle(src, std::move(s), now);
    }
  }
  inner_->step(now, *this);
  sink_ = nullptr;
}

void AggregateNetwork::on_hop(std::uint64_t flow_id, int link_src,
                              int link_dst, std::uint64_t now) {
  if ((flow_id & kRecordBit) == 0) {
    // Bypassing high-priority packet: forward its own trace id.
    if (flow_ != nullptr && flow_id != 0) {
      flow_->on_hop(flow_id, link_src, link_dst, now);
    }
    return;
  }
  // A bundle's head flit crossed a link: every constituent did.
  if (flow_ == nullptr) return;
  for (const Pending& m : record(flow_id).msgs) {
    if (m.flow_id != 0) flow_->on_hop(m.flow_id, link_src, link_dst, now);
  }
}

void AggregateNetwork::on_deliver(std::uint64_t flow_id, int dest,
                                  mdp::Priority p, std::uint32_t hops,
                                  std::uint64_t latency, std::uint64_t now) {
  if ((flow_id & kRecordBit) == 0) {
    // Bypass delivery: constituent-level stats, verbatim flow event.  The
    // adapter's deliver() below forwards the message itself.
    ++stats_.messages;
    stats_.hops.add(hops);
    stats_.latency.add(latency);
    if (flow_ != nullptr && flow_id != 0) {
      flow_->on_deliver(flow_id, dest, p, hops, latency, now);
    }
    return;
  }
  // A bundle finished transit; deliver() fires next with its payload.
  pending_rid_ = flow_id;
  pending_hops_ = hops;
}

void AggregateNetwork::deliver(int dest, mdp::Priority p,
                               std::span<const std::uint32_t> words) {
  if (p == mdp::Priority::High) {
    sink_->deliver(dest, p, words);
    return;
  }
  JTAM_CHECK(pending_rid_ != 0, "bundle delivery without its record");
  const std::uint64_t rid = pending_rid_;
  pending_rid_ = 0;
  JTAM_CHECK(!words.empty() && words[0] == record(rid).msgs.size(),
             "bundle framing does not match its record");
  for (Pending& m : record(rid).msgs) {
    const std::uint32_t total_hops = m.hops_before + pending_hops_;
    if (m.final_dest == dest) {
      // Home: constituent-level stats and flow event, immediately before
      // the constituent's own delivery — the order obs::FlowTracer's
      // queue mirror depends on.
      const std::uint64_t lat = now_ - m.enqueue_round;
      ++stats_.messages;
      stats_.hops.add(total_hops);
      stats_.latency.add(lat);
      if (flow_ != nullptr && m.flow_id != 0) {
        flow_->on_deliver(m.flow_id, dest, mdp::Priority::Low, total_hops,
                          lat, now_);
      }
      sink_->deliver(dest, mdp::Priority::Low, m.words);
    } else {
      // Relay: not home yet — re-bundle toward the final destination.
      // Hops and the end-to-end clock carry over; the relay's buffers
      // never refuse (the message already left its source; NI buffering
      // absorbs it).
      ++stats_.agg.relay_forwards;
      m.hops_before = total_hops;
      m.buffer_round = now_;
      enqueue_msg(dest, m.final_dest, std::move(m), now_);
    }
  }
  release_record(rid);
}

bool AggregateNetwork::idle() const {
  return buffered_ == 0 && inner_->idle();
}

const NetStats& AggregateNetwork::stats() const {
  const NetStats& in = inner_->stats();
  stats_.flits = in.flits;
  stats_.links = in.links;
  return stats_;
}

}  // namespace jtam::net
