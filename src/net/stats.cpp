#include <sstream>

#include "net/network.h"
#include "support/error.h"
#include "support/text.h"

namespace jtam::net {

void NetworkModel::plan_window(std::uint64_t /*from*/,
                               std::uint64_t /*rounds*/,
                               std::vector<PlannedDelivery>& /*out*/) {
  throw Error("plan_window is only defined for models with lookahead > 1");
}

void NetworkModel::commit_window(
    std::uint64_t /*from*/, std::uint64_t /*stop*/,
    const std::vector<PlannedDelivery>& /*planned*/) {
  throw Error("commit_window is only defined for models with lookahead > 1");
}

bool LinkStats::operator==(const LinkStats& o) const {
  return src == o.src && dst == o.dst && dim == o.dim && dir == o.dir &&
         flits == o.flits && packets == o.packets &&
         peak_occupancy == o.peak_occupancy;
}

bool AggStats::operator==(const AggStats& o) const {
  return bundles == o.bundles && bundled_messages == o.bundled_messages &&
         bypass_messages == o.bypass_messages &&
         relay_forwards == o.relay_forwards && flush_size == o.flush_size &&
         flush_timeout == o.flush_timeout &&
         bundle_messages == o.bundle_messages &&
         bundle_words == o.bundle_words && buffer_wait == o.buffer_wait;
}

std::string AggStats::summary() const {
  if (bundles == 0 && bundled_messages == 0 && bypass_messages == 0) {
    return "off";
  }
  std::ostringstream os;
  os << "bundles=" << bundles << " msgs=" << bundled_messages << " (mean "
     << text::fixed(bundle_messages.mean(), 1) << "/bundle) bypass="
     << bypass_messages << " relay=" << relay_forwards
     << " flush[size=" << flush_size << " timeout=" << flush_timeout
     << "] wait{" << buffer_wait.summary() << "}";
  return os.str();
}

bool NetStats::operator==(const NetStats& o) const {
  return messages == o.messages && flits == o.flits && cycles == o.cycles &&
         hops == o.hops && latency == o.latency && links == o.links &&
         agg == o.agg;
}

std::string NetStats::summary() const {
  std::ostringstream os;
  os << "msgs=" << messages << " flits=" << flits << " cycles=" << cycles
     << " hops{" << hops.summary() << "} lat{" << latency.summary() << "}";
  if (!links.empty()) os << " links=" << links.size();
  const std::string a = agg.summary();
  if (a != "off") os << " agg{" << a << "}";
  return os.str();
}

}  // namespace jtam::net
