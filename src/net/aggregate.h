// Software message aggregation at the network interface.
//
// The paper's network charges every remote SENDE full per-message cost;
// real machines at J-Machine scale coalesce small messages before they
// touch the wires.  AggregateNetwork interposes behind the NetworkModel
// seam, in front of the wire or mesh it wraps:
//
//   machine SENDE -> coalescing buffers -> bundle packet -> inner model
//                                                        -> deliver fan-out
//
// Low-priority messages are gathered into per-(source, bundle-destination)
// buffers and travel as ONE inner-network message — on the mesh, one
// wormhole packet — framed as [count, (dest<<16|len) per message,
// payload words...]; arrival unpacks the bundle and delivers each
// constituent separately, so machines see exactly the messages that were
// sent.  High-priority traffic always bypasses aggregation straight into
// the inner model's high virtual network: runtime replies stay latency-
// critical and must never queue behind a filling buffer.
//
// Flush policy: a buffer seals when its occupancy reaches
// Config::flush_bytes (cause: size) or when its oldest message has waited
// Config::flush_timeout network cycles (cause: timeout).  The timeout is
// in cycles because the network model has no other clock — one cycle per
// MultiMachine round — and a finite timeout doubles as the liveness
// guarantee: a lone message can wait at most `timeout` cycles, so
// aggregation can never deadlock an idle ensemble.  Buffers are
// double-buffered (the dart_amsgq shape): sealing moves the contents to a
// per-source injection FIFO and leaves an empty filling buffer behind, so
// a sealed bundle awaiting the inner network never blocks new enqueues.
// Only when a buffer has BOTH a sealed bundle outstanding and a filling
// half at the threshold does can_accept backpressure the SENDE.
//
// Relay mode (the MPIX_Alltoall shape on the 3D net::Shape): a message
// from s to d is first bundled toward the relay node (d.x, s.y, s.z) —
// gathering along the first mesh dimension — where arriving constituents
// not yet home are re-bundled toward their final destination.  Hops and
// end-to-end latency accumulate across both phases; re-application of the
// relay function at the relay is the identity, so every message forwards
// at most once.
//
// Observability: the layer keeps constituent-level NetStats (messages,
// hops, latency are per original message; flits/links mirror the inner
// model) plus an AggStats block, and fans inner-network FlowObserver
// events out per constituent — a bundle delivery produces one on_deliver
// per constituent immediately before that constituent's sink.deliver, in
// order, so obs::FlowTracer's queue mirror and its NetStats tie-outs hold
// unchanged and critical-path spans still partition the run's rounds.
//
// Determinism: buffers are scanned per source in insertion order, sealed
// bundles inject FIFO per source, and bundle bookkeeping reuses record
// ids from a LIFO free list — same run, same delivery order, same stats.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/network.h"
#include "net/topology.h"

namespace jtam::net {

/// Aggregation mode knob (off = no AggregateNetwork is constructed).
enum class AggMode : std::uint8_t { Off = 0, Dest = 1, Relay = 2 };

const char* agg_mode_name(AggMode m);

class AggregateNetwork final : public NetworkModel,
                               private DeliverySink,
                               private FlowObserver {
 public:
  struct Config {
    AggMode mode = AggMode::Dest;  // Dest or Relay (Off never constructs)
    Shape shape;                   // node grid; relay routing + node count
    std::uint32_t flush_bytes = 256;   // seal threshold (bundle bytes)
    std::uint32_t flush_timeout = 64;  // max cycles a partial buffer waits
  };

  AggregateNetwork(Config cfg, std::unique_ptr<NetworkModel> inner);

  bool can_accept(int src, int dest, mdp::Priority p) const override;
  void inject(int src, int dest, mdp::Priority p,
              std::span<const std::uint32_t> words, std::uint64_t now,
              std::uint64_t flow_id) override;
  void step(std::uint64_t now, DeliverySink& sink) override;
  bool idle() const override;
  const NetStats& stats() const override;

  /// Windowed execution: one round of lookahead when the inner model has
  /// any (our can_accept reads per-source buffer state plus the inner
  /// model's per-source answer), none when the inner model opts out.
  std::uint64_t lookahead() const override {
    return inner_->lookahead() == 0 ? 0 : 1;
  }

  const NetworkModel& inner() const { return *inner_; }

 private:
  /// Record ids carried as the inner network's flow_id are tagged with
  /// this bit so they can never collide with real (small, dense) trace
  /// ids of bypassing high-priority messages.
  static constexpr std::uint64_t kRecordBit = 1ULL << 63;

  /// One buffered constituent message.
  struct Pending {
    int final_dest = 0;
    std::vector<std::uint32_t> words;
    std::uint64_t flow_id = 0;
    std::uint64_t enqueue_round = 0;  // original SENDE-accept round
    std::uint64_t buffer_round = 0;   // entry round of the current buffer
    std::uint32_t hops_before = 0;    // hops from earlier relay phases
  };

  /// A sealed bundle waiting for the inner network to accept it.
  struct Sealed {
    int dest = 0;        // bundle destination (buffer key)
    std::uint32_t words = 0;  // framing-inclusive size at seal
    std::vector<Pending> msgs;
  };

  /// Per-(source, bundle-destination) coalescing slot: an elastic filling
  /// half plus at most one sealed bundle outstanding (double buffering).
  struct Buffer {
    std::vector<Pending> fill;
    std::uint32_t fill_words = 0;  // framing-inclusive occupancy
    std::uint64_t oldest = 0;      // buffer-entry round of fill.front()
    bool sealed_outstanding = false;
    bool in_active = false;        // member of SrcState::active
  };

  struct SrcState {
    std::vector<Buffer> by_dest;   // indexed by bundle destination
    std::vector<int> active;       // dests with work, insertion order
    std::deque<Sealed> ready;      // sealed bundles, FIFO to the inner net
  };

  /// In-flight bundle bookkeeping, keyed by the record id the inner model
  /// carries as flow_id.  Constituents keep their payload and span data
  /// here; the simulated packet carries only the framed words.
  struct Record {
    std::vector<Pending> msgs;
  };

  /// Where a Low message enqueued at `at` toward `final` gathers next:
  /// `final` in Dest mode; in Relay mode the first-dimension relay
  /// (final.x, at.y, at.z), or `final` directly when that relay is `at`.
  int bundle_dest(int at, int final_dest) const;

  /// Append one message to its coalescing buffer at node `at` (a machine
  /// inject, or a relay forward) and seal on the size threshold.
  void enqueue_msg(int at, int final_dest, Pending&& msg, std::uint64_t now);
  void seal(int src, int dest, bool by_size);
  void inject_bundle(int src, Sealed&& b, std::uint64_t now);
  void mark_active(int src, int dest);

  std::uint64_t alloc_record();
  void release_record(std::uint64_t rid);
  Record& record(std::uint64_t rid) {
    return records_[static_cast<std::size_t>(rid & ~kRecordBit) - 1];
  }

  // DeliverySink (adapter around the inner model's deliveries): unpacks
  // bundles, forwards bypass traffic, re-enqueues relay constituents.
  void deliver(int dest, mdp::Priority p,
               std::span<const std::uint32_t> words) override;

  // FlowObserver (always attached to the inner model): fans hop/deliver
  // events out per constituent and accounts bypass stats.
  void on_hop(std::uint64_t flow_id, int link_src, int link_dst,
              std::uint64_t now) override;
  void on_deliver(std::uint64_t flow_id, int dest, mdp::Priority p,
                  std::uint32_t hops, std::uint64_t latency,
                  std::uint64_t now) override;

  Config cfg_;
  std::uint32_t flush_words_;  // cfg_.flush_bytes in words
  std::unique_ptr<NetworkModel> inner_;
  std::vector<SrcState> src_;
  std::vector<Record> records_;
  std::vector<std::uint64_t> free_records_;  // LIFO reuse, deterministic
  std::uint64_t buffered_ = 0;  // constituents in buffers or ready FIFOs

  // Live only while inner_->step runs inside our step.
  DeliverySink* sink_ = nullptr;
  std::uint64_t now_ = 0;
  std::uint64_t pending_rid_ = 0;    // record id of the delivering bundle
  std::uint32_t pending_hops_ = 0;   // its inner-network hop count

  mutable NetStats stats_;  // stats() refreshes the inner-model mirror
};

}  // namespace jtam::net
