#include "net/topology.h"

#include <cstdlib>
#include <utility>

#include "support/error.h"

namespace jtam::net {

namespace {

int floor_root(int n, int k) {  // largest r with r^k <= n
  int r = 1;
  while (true) {
    long long p = 1;
    for (int i = 0; i < k; ++i) p *= r + 1;
    if (p > n) return r;
    ++r;
  }
}

}  // namespace

Shape Shape::for_nodes(int n) {
  JTAM_CHECK(n >= 1, "mesh needs at least one node");
  // Largest z <= cbrt(n) dividing n, then largest y <= sqrt(n/z) dividing
  // n/z; x takes the rest.  Sorted so x >= y >= z; x*y*z == n exactly.
  int z = 1;
  for (int c = floor_root(n, 3); c >= 1; --c) {
    if (n % c == 0) {
      z = c;
      break;
    }
  }
  const int rest = n / z;
  int y = 1;
  for (int c = floor_root(rest, 2); c >= 1; --c) {
    if (rest % c == 0) {
      y = c;
      break;
    }
  }
  int d[3] = {rest / y, y, z};
  if (d[0] < d[1]) std::swap(d[0], d[1]);
  if (d[1] < d[2]) std::swap(d[1], d[2]);
  if (d[0] < d[1]) std::swap(d[0], d[1]);
  Shape s;
  s.x = d[0];
  s.y = d[1];
  s.z = d[2];
  return s;
}

Route ecube_route(const Shape& s, int here, int dest) {
  const Coord h = s.coord_of(here);
  const Coord d = s.coord_of(dest);
  Route r;
  if (h.x != d.x) {
    r.dim = 0;
    r.dir = d.x > h.x ? 1 : -1;
  } else if (h.y != d.y) {
    r.dim = 1;
    r.dir = d.y > h.y ? 1 : -1;
  } else if (h.z != d.z) {
    r.dim = 2;
    r.dir = d.z > h.z ? 1 : -1;
  } else {
    r.arrived = true;
  }
  return r;
}

int hop_distance(const Shape& s, int a, int b) {
  const Coord ca = s.coord_of(a);
  const Coord cb = s.coord_of(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y) +
         std::abs(ca.z - cb.z);
}

}  // namespace jtam::net
