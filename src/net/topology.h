// 3D mesh topology for the J-Machine interconnect: node-id <-> coordinate
// mapping on an X x Y x Z grid and the dimension-order (e-cube) routing
// function.  The J-Machine was a 3D mesh of MDP nodes; e-cube routing
// corrects the X offset first, then Y, then Z, which is provably
// deadlock-free on a mesh (no cyclic channel dependencies within a
// virtual network).
#pragma once

#include <cstdint>

namespace jtam::net {

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
};

/// Grid dimensions.  Node ids are x-major: id = x + X*(y + Y*z).
struct Shape {
  int x = 1;
  int y = 1;
  int z = 1;

  int nodes() const { return x * y * z; }

  /// The most-cubic factorization of `n` into x >= y >= z — the shape a
  /// J-Machine of n nodes would be wired as (512 nodes = 8x8x8).  Exact:
  /// x*y*z == n for every n >= 1.
  static Shape for_nodes(int n);

  Coord coord_of(int id) const {
    Coord c;
    c.x = id % x;
    c.y = (id / x) % y;
    c.z = id / (x * y);
    return c;
  }
  int id_of(Coord c) const { return c.x + x * (c.y + y * c.z); }

  bool operator==(const Shape& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// One e-cube routing step at `here` toward `dest`: the dimension (0=X,
/// 1=Y, 2=Z) and direction (+1/-1) of the next link, or `arrived` when
/// here == dest and the packet ejects.
struct Route {
  bool arrived = false;
  int dim = 0;
  int dir = 0;
};

Route ecube_route(const Shape& s, int here, int dest);

/// Links an e-cube packet traverses from a to b: the Manhattan distance.
int hop_distance(const Shape& s, int a, int b);

}  // namespace jtam::net
