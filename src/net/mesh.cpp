#include "net/mesh.h"

#include "support/error.h"

namespace jtam::net {

MeshNetwork::MeshNetwork(Config cfg) : cfg_(cfg) {
  const int n = cfg_.shape.nodes();
  JTAM_CHECK(n >= 1, "mesh needs at least one node");
  JTAM_CHECK(cfg_.link_buffer_flits >= 1, "links need at least one flit slot");
  nodes_.resize(static_cast<std::size_t>(n));
  out_link_.assign(static_cast<std::size_t>(n) * 6, -1);
  in_links_.resize(static_cast<std::size_t>(n));
  // Enumerate directed links in node-major, dimension-major order; this
  // order is also the per-cycle scan order, so it is part of the model.
  const int dims[3] = {cfg_.shape.x, cfg_.shape.y, cfg_.shape.z};
  for (int id = 0; id < n; ++id) {
    const Coord c = cfg_.shape.coord_of(id);
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, 1}) {
        Coord t = c;
        (dim == 0 ? t.x : dim == 1 ? t.y : t.z) += dir;
        const int coord = dim == 0 ? t.x : dim == 1 ? t.y : t.z;
        if (coord < 0 || coord >= dims[dim]) continue;
        const int dst = cfg_.shape.id_of(t);
        out_link_[static_cast<std::size_t>(id) * 6 + dim * 2 +
                  (dir > 0 ? 1 : 0)] = static_cast<int>(links_.size());
        in_links_[static_cast<std::size_t>(dst)].push_back(
            static_cast<int>(links_.size()));
        links_.push_back(Link{id, dst, dim, dir, {}, 0, 0, 0, false});
      }
    }
  }
}

std::uint32_t MeshNetwork::alloc_packet() {
  if (!free_ids_.empty()) {
    const std::uint32_t id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  packets_.emplace_back();
  return static_cast<std::uint32_t>(packets_.size());
}

void MeshNetwork::release_packet(std::uint32_t id) {
  pkt(id).words.clear();
  free_ids_.push_back(id);
  --live_packets_;
}

void MeshNetwork::inject(int src, int dest, mdp::Priority p,
                         std::span<const std::uint32_t> words,
                         std::uint64_t now, std::uint64_t flow_id) {
  JTAM_CHECK(src != dest, "local send routed onto the network");
  JTAM_CHECK(can_accept(src, dest, p),
             "inject into a busy injection channel");
  const std::uint32_t id = alloc_packet();
  Packet& pk = pkt(id);
  pk.src = src;
  pk.dest = dest;
  pk.p = p;
  pk.words.assign(words.begin(), words.end());
  pk.inject_cycle = now;
  pk.hops = 0;
  pk.flow_id = flow_id;
  ++live_packets_;
  // One head flit (routing header) plus one flit per payload word.
  FlitQ& inj = nodes_[static_cast<std::size_t>(src)].inj[static_cast<int>(p)];
  inj.inflow_pkt = 0;
  inj.q.push_back(Flit{id, now, true, words.empty()});
  for (std::size_t i = 0; i < words.size(); ++i) {
    inj.q.push_back(Flit{id, now, false, i + 1 == words.size()});
  }
}

void MeshNetwork::advance(FlitQ& f, int vn, int node, std::uint64_t now,
                          DeliverySink& sink) {
  if (f.q.empty()) return;
  const Flit fl = f.q.front();
  if (fl.entered >= now) return;  // moved into this FIFO this cycle
  Packet& pk = pkt(fl.pkt);
  const Route r = ecube_route(cfg_.shape, node, pk.dest);
  if (r.arrived) {
    NodeState& ns = nodes_[static_cast<std::size_t>(node)];
    if (ns.eject_used) return;  // one flit per ejection port per cycle
    std::uint32_t& owner = ns.eject_owner[vn];
    if (owner != 0 && owner != fl.pkt) return;  // port held mid-packet
    ns.eject_used = true;
    owner = fl.tail ? 0 : fl.pkt;
    f.q.pop_front();
    if (fl.tail) {
      if (flow_ != nullptr) {
        flow_->on_deliver(pk.flow_id, pk.dest, pk.p, pk.hops,
                          now - pk.inject_cycle, now);
      }
      sink.deliver(pk.dest, pk.p, pk.words);
      ++stats_.messages;
      stats_.hops.add(pk.hops);
      stats_.latency.add(now - pk.inject_cycle);
      release_packet(fl.pkt);
    }
    return;
  }
  Link& l = links_[static_cast<std::size_t>(
      out_link_[static_cast<std::size_t>(node) * 6 + r.dim * 2 +
                (r.dir > 0 ? 1 : 0)])];
  if (l.used_this_cycle) return;  // physical link: one flit per cycle
  FlitQ& t = l.vc[vn];
  if (t.inflow_pkt != 0 && t.inflow_pkt != fl.pkt) return;  // wormhole
  if (t.q.size() >= cfg_.link_buffer_flits) return;  // no credit: stalled
  l.used_this_cycle = true;
  t.inflow_pkt = fl.tail ? 0 : fl.pkt;
  f.q.pop_front();
  t.q.push_back(Flit{fl.pkt, now, fl.head, fl.tail});
  ++l.flits;
  ++stats_.flits;
  if (fl.head) {
    ++pk.hops;
    ++l.packets;
    if (flow_ != nullptr) flow_->on_hop(pk.flow_id, l.src, l.dst, now);
  }
  const std::uint32_t occ =
      static_cast<std::uint32_t>(l.vc[0].q.size() + l.vc[1].q.size());
  if (occ > l.peak) l.peak = occ;
}

void MeshNetwork::step(std::uint64_t now, DeliverySink& sink) {
  ++stats_.cycles;
  for (Link& l : links_) l.used_this_cycle = false;
  for (NodeState& ns : nodes_) ns.eject_used = false;
  // High-priority virtual network first: it takes physical-link bandwidth
  // ahead of low, so high traffic is never blocked behind it.  Within a
  // VN, scan nodes in id order; at each node the injection channel is
  // served first, then the incoming links in construction order.
  for (int vn = kVns - 1; vn >= 0; --vn) {
    for (int node = 0; node < cfg_.shape.nodes(); ++node) {
      advance(nodes_[static_cast<std::size_t>(node)].inj[vn], vn, node, now,
              sink);
      for (int li : in_links_[static_cast<std::size_t>(node)]) {
        advance(links_[static_cast<std::size_t>(li)].vc[vn], vn, node, now,
                sink);
      }
    }
  }
}

const NetStats& MeshNetwork::stats() const {
  stats_.links.clear();
  stats_.links.reserve(links_.size());
  for (const Link& l : links_) {
    stats_.links.push_back(LinkStats{l.src, l.dst, l.dim, l.dir, l.flits,
                                     l.packets, l.peak});
  }
  return stats_;
}

}  // namespace jtam::net
