// The network seam of the multi-node J-Machine: mdp::MultiMachine drives
// one NetworkModel per ensemble.  Two implementations exist —
//
//   net::IdealNetwork  the seed's constant-latency FIFO wire (default;
//                      bit-identical to the pre-seam MultiMachine, pinned
//                      by tests/net_test.cpp), optionally bounded to a
//                      maximum number of in-flight messages;
//   net::MeshNetwork   a deterministic cycle-level 3D-mesh simulator with
//                      dimension-order wormhole routing, finite per-link
//                      flit buffers and two virtual networks (net/mesh.h).
//
// The model is advanced one network cycle per MultiMachine round (step),
// accepts whole messages from SENDE (inject) and exerts injection
// backpressure through can_accept: while it returns false the sending
// node's SENDE stalls and the machine counts the round as an
// injection-stall cycle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mdp/isa.h"
#include "obs/histogram.h"

namespace jtam::net {

enum class NetKind : std::uint8_t { Ideal = 0, Mesh = 1 };

const char* net_kind_name(NetKind k);

/// Per-directed-link counters (mesh only).  `flits` is the total number of
/// flit traversals the link carried; utilization = flits / network cycles.
/// `packets` counts head-flit traversals — whole wormhole packets, so with
/// aggregation on it is the number of bundles the link carried.
struct LinkStats {
  int src = 0;   // node ids of the link's endpoints
  int dst = 0;
  int dim = 0;   // 0=X, 1=Y, 2=Z
  int dir = 0;   // +1 / -1
  std::uint64_t flits = 0;
  std::uint64_t packets = 0;
  std::uint32_t peak_occupancy = 0;  // flits buffered at once (both VNs)

  /// Exact equality of geometry and counters, for run-to-run tie-outs.
  bool operator==(const LinkStats& o) const;
};

/// What the aggregation layer (net/aggregate.h) measured about itself.
/// All zero when no AggregateNetwork is interposed.
struct AggStats {
  std::uint64_t bundles = 0;           // sealed buffers injected as packets
  std::uint64_t bundled_messages = 0;  // low-priority messages coalesced
  std::uint64_t bypass_messages = 0;   // high-priority direct injections
  std::uint64_t relay_forwards = 0;    // constituents re-bundled at a relay
  std::uint64_t flush_size = 0;        // seals caused by the size threshold
  std::uint64_t flush_timeout = 0;     // seals caused by the cycle timeout
  obs::Histogram bundle_messages;      // constituent messages per bundle
  obs::Histogram bundle_words;         // buffer occupancy (words) at seal
  obs::Histogram buffer_wait;          // per-constituent enqueue->inject

  bool operator==(const AggStats& o) const;
  /// One-line rendering for bench tables and log output.
  std::string summary() const;
};

/// What a network model measured about itself over one run.
struct NetStats {
  std::uint64_t messages = 0;       // messages fully delivered
  std::uint64_t flits = 0;          // flit-link traversals (mesh only)
  std::uint64_t cycles = 0;         // network cycles advanced
  obs::Histogram hops;              // per-message link traversals
  obs::Histogram latency;           // per-message inject->deliver cycles
  std::vector<LinkStats> links;     // empty for the ideal wire
  AggStats agg;                     // aggregation layer (zero when off)

  /// Exact equality of every counter, histogram and link record — what
  /// multi-run equivalence tests compare instead of field-by-field checks.
  bool operator==(const NetStats& o) const;
  /// One-line rendering ("msgs=.. flits=.. hops{..} lat{..}").
  std::string summary() const;
};

/// Sink for messages leaving the network: MultiMachine buffers them into
/// the destination node's hardware queue exactly like a local SENDE.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void deliver(int dest_node, mdp::Priority p,
                       std::span<const std::uint32_t> words) = 0;
};

/// Causal-flow observer over network transit (obs::FlowTracer).  Attached
/// with NetworkModel::set_flow_observer; both callbacks receive the flow
/// id the sender's FlowProbe stamped on the message at injection (0 =
/// untracked).  Zero-cost when absent, and never touches NetStats — runs
/// are bit-identical with an observer attached (tests/flow_test.cpp).
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;
  /// A packet's head flit traversed the directed link src->dst (mesh
  /// only; the ideal wire has no links).
  virtual void on_hop(std::uint64_t flow_id, int link_src, int link_dst,
                      std::uint64_t now) = 0;
  /// A message finished transit and is about to be buffered at `dest`.
  /// `hops` and `latency` are the exact values the model adds to
  /// NetStats::hops / NetStats::latency for this delivery (0 and the
  /// constant wire latency for IdealNetwork), so per-message records
  /// rebuild those histograms bit-exactly.
  virtual void on_deliver(std::uint64_t flow_id, int dest, mdp::Priority p,
                          std::uint32_t hops, std::uint64_t latency,
                          std::uint64_t now) = 0;
};

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// True when node `src` may inject a priority-`p` message toward `dest`
  /// this cycle.  A false return is backpressure: the SENDE retries next
  /// round.  Only an aggregating model reads `dest` (its coalescing
  /// buffers are per-destination); the wire and mesh ignore it, so their
  /// answer is destination-independent.
  virtual bool can_accept(int src, int dest, mdp::Priority p) const = 0;

  /// Hand a whole message to the network at cycle `now`.  Only legal
  /// directly after can_accept(src, dest, p) returned true, and only for
  /// src != dest (local sends never reach the network).  `flow_id` is the
  /// causal-trace id carried with the message (0 when tracing is off).
  virtual void inject(int src, int dest, mdp::Priority p,
                      std::span<const std::uint32_t> words,
                      std::uint64_t now, std::uint64_t flow_id) = 0;

  /// Advance one network cycle; messages that complete arrival are handed
  /// to `sink` in a deterministic order.
  virtual void step(std::uint64_t now, DeliverySink& sink) = 0;

  /// True when nothing is in flight (used for global-deadlock detection).
  virtual bool idle() const = 0;

  virtual const NetStats& stats() const = 0;

  // --- windowed execution (the parallel MultiMachine engine) -------------
  /// Conservative lookahead L: given every injection before round T, all
  /// deliveries in rounds [T, T+L) are already fully determined, so the
  /// engine may execute L rounds of node work between barriers.  A model
  /// advertising L >= 1 additionally guarantees that can_accept(src, ...)
  /// depends only on per-`src` state — one source's injection at round T
  /// never changes another source's answer at round T — which is what
  /// lets workers query backpressure concurrently while injections are
  /// staged (mdp::MultiMachine::send).  Return 0 to opt out: the engine
  /// falls back to the serial loop (e.g. the bounded ideal wire, whose
  /// can_accept reads the global in-flight count).  The default 1 is
  /// correct for any model that honors the per-source can_accept rule:
  /// the engine then steps the model once per round on the coordinator,
  /// exactly like the serial loop.
  virtual std::uint64_t lookahead() const { return 1; }

  /// One delivery popped by plan_window: due at round `round`, carrying
  /// the hop/latency values its stats commit will add to the histograms.
  struct PlannedDelivery {
    std::uint64_t round = 0;
    int dest = 0;
    mdp::Priority p = mdp::Priority::Low;
    std::vector<std::uint32_t> words;
    std::uint64_t flow_id = 0;
    std::uint32_t hops = 0;
    std::uint64_t latency = 0;
  };

  /// Models with lookahead() > 1 split step() into a plan/commit pair so a
  /// mid-window halt still yields exact serial NetStats.  plan_window pops
  /// every delivery due in rounds [T, T+W) into `out` in the serial
  /// delivery order WITHOUT touching stats(); the engine applies them to
  /// the destination queues as their rounds execute, then calls
  /// commit_window(T, stop) with the last round that actually ran —
  /// charging cycles for rounds [T, stop] and message/hop/latency stats
  /// for exactly the deliveries with round <= stop, bit-identical to
  /// stepping the serial loop through `stop`.  Unreachable for models that
  /// keep the default lookahead of 0 or 1 (the engine uses plain step()).
  virtual void plan_window(std::uint64_t from, std::uint64_t rounds,
                           std::vector<PlannedDelivery>& out);
  virtual void commit_window(std::uint64_t from, std::uint64_t stop,
                             const std::vector<PlannedDelivery>& planned);

  /// Attach a causal-flow observer (null detaches).
  void set_flow_observer(FlowObserver* o) { flow_ = o; }
  /// True when a flow observer is attached (the parallel engine falls
  /// back to the serial loop so observer callbacks stay coordinator-only
  /// and in serial order).
  bool has_flow_observer() const { return flow_ != nullptr; }

 protected:
  FlowObserver* flow_ = nullptr;
};

}  // namespace jtam::net
