// The seed's network model, extracted behind the NetworkModel seam: an
// in-order wire delivering every message a fixed number of rounds after
// injection, with no contention and (by default) unbounded buffering.
// With the default config this is bit-identical to the pre-seam
// MultiMachine — same delivery rounds, same per-node interleaving —
// which tests/net_test.cpp pins against golden numbers.
//
// `max_inflight_messages` bounds the wire: once that many messages are in
// flight further injections are refused (can_accept == false) and the
// sender stalls, making even the "ideal" wire admit that network buffering
// is finite.  Refused-then-retried sends are counted by the machines
// (Machine::stalled_sends); delivery order is unchanged.
#pragma once

#include <deque>

#include "net/network.h"

namespace jtam::net {

class IdealNetwork final : public NetworkModel {
 public:
  struct Config {
    std::uint32_t latency = 16;            // cycles from inject to deliver
    std::uint32_t max_inflight_messages = 0;  // 0 = unbounded (seed model)
  };

  explicit IdealNetwork(Config cfg) : cfg_(cfg) {}

  bool can_accept(int src, int dest, mdp::Priority p) const override {
    (void)src;
    (void)dest;
    (void)p;
    return cfg_.max_inflight_messages == 0 ||
           wire_.size() < cfg_.max_inflight_messages;
  }

  void inject(int src, int dest, mdp::Priority p,
              std::span<const std::uint32_t> words, std::uint64_t now,
              std::uint64_t flow_id) override;

  void step(std::uint64_t now, DeliverySink& sink) override;

  bool idle() const override { return wire_.empty(); }
  const NetStats& stats() const override { return stats_; }

  // Windowed execution: the unbounded wire has max(latency, 1) rounds of
  // lookahead and splits step() into plan/commit so a mid-window halt
  // still produces exact serial NetStats; the bounded wire opts out
  // (can_accept reads the global in-flight count).
  std::uint64_t lookahead() const override;
  void plan_window(std::uint64_t from, std::uint64_t rounds,
                   std::vector<PlannedDelivery>& out) override;
  void commit_window(std::uint64_t from, std::uint64_t stop,
                     const std::vector<PlannedDelivery>& planned) override;

 private:
  struct InFlight {
    std::uint64_t deliver_cycle;
    int dest;
    mdp::Priority p;
    std::vector<std::uint32_t> words;
    std::uint64_t flow_id;
  };

  Config cfg_;
  std::deque<InFlight> wire_;
  NetStats stats_;
};

}  // namespace jtam::net
