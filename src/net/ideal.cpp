#include "net/ideal.h"

#include "support/error.h"

namespace jtam::net {

const char* net_kind_name(NetKind k) {
  switch (k) {
    case NetKind::Ideal: return "ideal";
    case NetKind::Mesh: return "mesh";
  }
  return "?";
}

void IdealNetwork::inject(int src, int dest, mdp::Priority p,
                          std::span<const std::uint32_t> words,
                          std::uint64_t now, std::uint64_t flow_id) {
  JTAM_CHECK(src != dest, "local send routed onto the network");
  JTAM_CHECK(can_accept(src, dest, p), "inject past the in-flight bound");
  wire_.push_back(InFlight{now + cfg_.latency, dest, p,
                           {words.begin(), words.end()}, flow_id});
}

void IdealNetwork::step(std::uint64_t now, DeliverySink& sink) {
  ++stats_.cycles;
  // The wire is FIFO and the latency constant, so everything due has
  // gathered at the front; deliver in injection order.
  while (!wire_.empty() && wire_.front().deliver_cycle <= now) {
    const InFlight& m = wire_.front();
    if (flow_ != nullptr) {
      flow_->on_deliver(m.flow_id, m.dest, m.p, 0, cfg_.latency, now);
    }
    sink.deliver(m.dest, m.p, m.words);
    ++stats_.messages;
    stats_.hops.add(0);
    stats_.latency.add(cfg_.latency);
    wire_.pop_front();
  }
}

std::uint64_t IdealNetwork::lookahead() const {
  // Bounded wire: can_accept reads the global in-flight count, which any
  // node's injection changes — no per-source guarantee, no lookahead.
  if (cfg_.max_inflight_messages != 0) return 0;
  // Unbounded wire: a message injected at round T is delivered at the
  // step of round >= T + max(latency, 1) (inject happens after the
  // round's step even at latency 0), so every delivery in the next
  // max(latency, 1) rounds is determined by injections before T.
  return cfg_.latency > 1 ? cfg_.latency : 1;
}

void IdealNetwork::plan_window(std::uint64_t from, std::uint64_t rounds,
                               std::vector<PlannedDelivery>& out) {
  // Pop everything due in rounds [from, from + rounds) in wire order —
  // deliver_cycle is nondecreasing (FIFO + constant latency), so one
  // front-to-back sweep yields (round ascending, serial delivery order
  // within each round), exactly the order step() would deliver them.
  const std::uint64_t end = from + rounds;
  while (!wire_.empty() && wire_.front().deliver_cycle < end) {
    InFlight& m = wire_.front();
    const std::uint64_t due =
        m.deliver_cycle < from ? from : m.deliver_cycle;
    out.push_back(PlannedDelivery{due, m.dest, m.p, std::move(m.words),
                                  m.flow_id, 0, cfg_.latency});
    wire_.pop_front();
  }
}

void IdealNetwork::commit_window(std::uint64_t from, std::uint64_t stop,
                                 const std::vector<PlannedDelivery>& planned) {
  // The serial loop stepped the wire once per round through `stop`
  // inclusive, and counted exactly the deliveries due by then.
  stats_.cycles += stop - from + 1;
  for (const PlannedDelivery& d : planned) {
    if (d.round > stop) break;  // planned is round-ascending
    ++stats_.messages;
    stats_.hops.add(d.hops);
    stats_.latency.add(d.latency);
  }
}

}  // namespace jtam::net
