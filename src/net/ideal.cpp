#include "net/ideal.h"

#include "support/error.h"

namespace jtam::net {

const char* net_kind_name(NetKind k) {
  switch (k) {
    case NetKind::Ideal: return "ideal";
    case NetKind::Mesh: return "mesh";
  }
  return "?";
}

void IdealNetwork::inject(int src, int dest, mdp::Priority p,
                          std::span<const std::uint32_t> words,
                          std::uint64_t now, std::uint64_t flow_id) {
  JTAM_CHECK(src != dest, "local send routed onto the network");
  JTAM_CHECK(can_accept(src, dest, p), "inject past the in-flight bound");
  wire_.push_back(InFlight{now + cfg_.latency, dest, p,
                           {words.begin(), words.end()}, flow_id});
}

void IdealNetwork::step(std::uint64_t now, DeliverySink& sink) {
  ++stats_.cycles;
  // The wire is FIFO and the latency constant, so everything due has
  // gathered at the front; deliver in injection order.
  while (!wire_.empty() && wire_.front().deliver_cycle <= now) {
    const InFlight& m = wire_.front();
    if (flow_ != nullptr) {
      flow_->on_deliver(m.flow_id, m.dest, m.p, 0, cfg_.latency, now);
    }
    sink.deliver(m.dest, m.p, m.words);
    ++stats_.messages;
    stats_.hops.add(0);
    stats_.latency.add(cfg_.latency);
    wire_.pop_front();
  }
}

}  // namespace jtam::net
