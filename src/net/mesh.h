// Cycle-level simulator of the J-Machine's 3D-mesh interconnect.
//
// Nodes sit on an X x Y x Z grid (Shape::for_nodes picks the most-cubic
// factorization).  A message becomes a wormhole packet of one head flit
// plus one flit per payload word; flits advance at most one link per
// cycle.  Routing is dimension-order (e-cube: correct X, then Y, then Z),
// which is deadlock-free on a mesh.  Each directed link carries two
// virtual networks — one per MDP message priority — with a private flit
// FIFO each, so a high-priority packet is never queued behind a blocked
// low-priority one; the physical link moves one flit per cycle and the
// high VN is served first.  Finite FIFOs (Config::link_buffer_flits) give
// credit-style backpressure: a flit advances only into free space, and
// when the pressure reaches the injection FIFO the sending node's SENDE
// stalls (can_accept == false), which the machine counts as
// injection-stall cycles.
//
// Everything is deterministic: links, nodes and virtual networks are
// scanned in a fixed order each cycle, and packet bookkeeping reuses ids
// from a LIFO free list — the same run always produces the same delivery
// order and the same NetStats.
#pragma once

#include <deque>

#include "net/network.h"
#include "net/topology.h"

namespace jtam::net {

class MeshNetwork final : public NetworkModel {
 public:
  struct Config {
    Shape shape;
    std::uint32_t link_buffer_flits = 4;  // per-VN FIFO capacity per link
  };

  explicit MeshNetwork(Config cfg);

  bool can_accept(int src, int dest, mdp::Priority p) const override {
    (void)dest;  // injection-channel pressure is destination-independent
    return nodes_[static_cast<std::size_t>(src)]
        .inj[static_cast<int>(p)]
        .q.empty();
  }
  void inject(int src, int dest, mdp::Priority p,
              std::span<const std::uint32_t> words, std::uint64_t now,
              std::uint64_t flow_id) override;
  void step(std::uint64_t now, DeliverySink& sink) override;
  bool idle() const override { return live_packets_ == 0; }
  const NetStats& stats() const override;

  const Shape& shape() const { return cfg_.shape; }

 private:
  static constexpr int kVns = 2;  // one virtual network per priority

  struct Flit {
    std::uint32_t pkt;      // packet id (index into packets_ + 1)
    std::uint64_t entered;  // cycle this flit entered its current FIFO
    bool head;
    bool tail;
  };

  /// One virtual-channel FIFO.  `inflow_pkt` is the packet whose flits may
  /// currently append (wormhole: packets never interleave in a channel) —
  /// set when a head flit enters, cleared when the tail does.
  struct FlitQ {
    std::deque<Flit> q;
    std::uint32_t inflow_pkt = 0;
  };

  struct Link {
    int src;
    int dst;
    int dim;
    int dir;
    FlitQ vc[kVns];
    std::uint64_t flits = 0;     // total flit traversals
    std::uint64_t packets = 0;   // head-flit traversals (whole packets)
    std::uint32_t peak = 0;      // peak buffered flits (both VNs)
    bool used_this_cycle = false;
  };

  struct NodeState {
    FlitQ inj[kVns];                       // injection channel per VN
    std::uint32_t eject_owner[kVns] = {};  // wormhole owner of the port
    bool eject_used = false;               // one flit ejects per cycle
  };

  struct Packet {
    int src = 0;
    int dest = 0;
    mdp::Priority p = mdp::Priority::Low;
    std::vector<std::uint32_t> words;
    std::uint64_t inject_cycle = 0;
    std::uint32_t hops = 0;
    std::uint64_t flow_id = 0;
  };

  Packet& pkt(std::uint32_t id) { return packets_[id - 1]; }
  std::uint32_t alloc_packet();
  void release_packet(std::uint32_t id);

  /// Move (at most) the front flit of `f`, which sits at `node`, one step
  /// onward: into the next e-cube link or out of the ejection port.
  void advance(FlitQ& f, int vn, int node, std::uint64_t now,
               DeliverySink& sink);

  Config cfg_;
  std::vector<Link> links_;
  std::vector<int> out_link_;            // [node*6 + dim*2 + (dir>0)] or -1
  std::vector<std::vector<int>> in_links_;  // per node, fixed order
  std::vector<NodeState> nodes_;
  std::vector<Packet> packets_;
  std::vector<std::uint32_t> free_ids_;  // LIFO reuse, deterministic
  std::uint64_t live_packets_ = 0;
  mutable NetStats stats_;  // stats() refreshes the per-link snapshot
};

}  // namespace jtam::net
