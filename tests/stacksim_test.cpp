// Bit-identical equivalence of the stack-distance cache engine with the
// classic per-configuration simulator on real workload runs.
//
// The stack engine (cache::StackSimBank) exists purely to make the paper's
// cache sweep cheaper; it must never change a measured number.  This file
// pins that on full simulations: for every paper workload under both
// back-ends, access/miss/writeback counts of all 24 ladder configurations
// must equal the classic CacheBank's exactly — serial and sharded — and
// the single-pass block-size sweep must reproduce per-block runs while
// touching the machine only once.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace {

using namespace jtam;  // NOLINT(build/namespaces)

programs::Scale quick_scale() {
  return programs::Scale{12, 60, 10, 10, 12, 2, 40};
}

programs::Workload workload_by_name(const std::string& name) {
  for (programs::Workload& w : programs::paper_workloads(quick_scale())) {
    if (w.name == name) return w;
  }
  ADD_FAILURE() << "no workload named " << name;
  return {};
}

void expect_same_measurement(const driver::RunResult& a,
                             const driver::RunResult& b,
                             const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.check_error, b.check_error);
  EXPECT_EQ(a.instructions, b.instructions);
  ASSERT_EQ(a.cache.size(), b.cache.size());
  for (std::size_t i = 0; i < a.cache.size(); ++i) {
    SCOPED_TRACE(a.cache[i].config.name());
    EXPECT_EQ(a.cache[i].config.size_bytes, b.cache[i].config.size_bytes);
    EXPECT_EQ(a.cache[i].config.block_bytes, b.cache[i].config.block_bytes);
    EXPECT_EQ(a.cache[i].config.assoc, b.cache[i].config.assoc);
    EXPECT_EQ(a.cache[i].icache.accesses, b.cache[i].icache.accesses);
    EXPECT_EQ(a.cache[i].icache.misses, b.cache[i].icache.misses);
    EXPECT_EQ(a.cache[i].icache.writebacks, b.cache[i].icache.writebacks);
    EXPECT_EQ(a.cache[i].dcache.accesses, b.cache[i].dcache.accesses);
    EXPECT_EQ(a.cache[i].dcache.misses, b.cache[i].dcache.misses);
    EXPECT_EQ(a.cache[i].dcache.writebacks, b.cache[i].dcache.writebacks);
  }
}

class StackEngineEquivalence
    : public ::testing::TestWithParam<rt::BackendKind> {};

TEST_P(StackEngineEquivalence, MatchesClassicOnEveryWorkload) {
  for (const programs::Workload& w : programs::paper_workloads(quick_scale())) {
    driver::RunOptions classic;
    classic.backend = GetParam();
    classic.engine = driver::CacheEngine::Classic;
    classic.cache_workers = 1;
    const driver::RunResult base = driver::run_workload(w, classic);
    ASSERT_TRUE(base.ok()) << w.name << ": " << base.check_error;
    ASSERT_EQ(base.cache.size(), 24u);

    driver::RunOptions stack = classic;
    stack.engine = driver::CacheEngine::Stack;
    expect_same_measurement(base, driver::run_workload(w, stack),
                            w.name + " stack-serial");

    stack.cache_workers = 4;  // shard by set index across the worker pool
    expect_same_measurement(base, driver::run_workload(w, stack),
                            w.name + " stack-sharded");
  }
}

TEST_P(StackEngineEquivalence, MatchesClassicAtSmallBlocks) {
  const programs::Workload w = workload_by_name("qs");
  driver::RunOptions classic;
  classic.backend = GetParam();
  classic.engine = driver::CacheEngine::Classic;
  classic.cache_workers = 1;
  classic.block_bytes = 8;  // deepest ladder: up to 2 KB sets per mapping
  const driver::RunResult base = driver::run_workload(w, classic);
  ASSERT_TRUE(base.ok()) << base.check_error;

  driver::RunOptions stack = classic;
  stack.engine = driver::CacheEngine::Stack;
  expect_same_measurement(base, driver::run_workload(w, stack), "8B blocks");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StackEngineEquivalence,
    ::testing::Values(rt::BackendKind::MessageDriven,
                      rt::BackendKind::ActiveMessages),
    [](const auto& info) {
      return info.param == rt::BackendKind::MessageDriven ? "MD" : "AM";
    });

TEST(BlocksizeSweep, MatchesPerBlockRunsFromOneMachinePass) {
  driver::clear_run_memo();
  const programs::Workload w = workload_by_name("qs");
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  const std::vector<std::uint32_t> blocks = {8, 16, 32, 64};

  const std::vector<driver::RunResult> sweep =
      driver::run_blocksize_sweep(w, opts, blocks);
  ASSERT_EQ(sweep.size(), blocks.size());
  EXPECT_EQ(driver::run_memo_stats().misses, 1u);  // one machine pass

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    // The reference stream does not depend on the observing cache.
    EXPECT_EQ(sweep[i].instructions, sweep[0].instructions);

    driver::RunOptions per = opts;
    per.engine = driver::CacheEngine::Classic;
    per.cache_workers = 1;
    per.block_bytes = blocks[i];
    expect_same_measurement(driver::run_workload(w, per), sweep[i],
                            "block " + std::to_string(blocks[i]));
  }

  // A second sweep is served entirely from the memo.
  const std::vector<driver::RunResult> again =
      driver::run_blocksize_sweep(w, opts, blocks);
  EXPECT_EQ(driver::run_memo_stats().misses, 1u);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    expect_same_measurement(sweep[i], again[i],
                            "memoized block " + std::to_string(blocks[i]));
  }
  driver::clear_run_memo();
}

}  // namespace
