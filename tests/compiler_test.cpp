// Unit tests for the TAM -> MDP compiler: symbol generation, the back-end
// mapping of Table 1, and the §2.3 optimization analyses.

#include <gtest/gtest.h>

#include "mdp/disasm.h"
#include "runtime/kernel.h"
#include "support/error.h"
#include "tam/ir.h"
#include "tamc/lower.h"
#include "tamc/mdopt.h"

namespace jtam::tamc {
namespace {

using tam::BinOp;
using tam::BodyBuilder;
using tam::CbId;
using tam::CodeblockBuilder;
using tam::InletId;
using tam::Program;
using tam::ThreadId;
using tam::VReg;

/// A codeblock with one inlet posting a non-synchronizing thread — the
/// §2.3 poster child.
Program simple_program() {
  Program p;
  p.name = "simple";
  CodeblockBuilder cb(p, "cb", 2);
  ThreadId t = cb.declare_thread("t");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg v = b.frame_load(0);
    VReg w = b.bini(BinOp::Mul, v, 3);
    b.send_halt(w);
    b.stop();
  }
  cb.finish();
  return p;
}

TEST(Compiler, SymbolsForEveryThreadAndInlet) {
  CompileOptions opts;
  CompiledProgram cp = compile(simple_program(), opts);
  EXPECT_NO_THROW(cp.thread_addr(0, 0));
  EXPECT_NO_THROW(cp.inlet_addr(0, 0));
  EXPECT_THROW(cp.image.symbol("u0_t7"), Error);
}

TEST(Compiler, Table1Mapping) {
  // Table 1: inlets are high-priority handlers under AM, low-priority
  // under MD; post goes through the library under AM and branches
  // directly under MD; system routines are high priority in both.
  CompileOptions am;
  am.backend = rt::BackendKind::ActiveMessages;
  CompiledProgram cpa = compile(simple_program(), am);
  EXPECT_EQ(rt::inlet_queue(cpa.options.backend), mdp::Priority::High);
  EXPECT_NO_THROW(cpa.kernel_addr("rt_post"));
  EXPECT_NO_THROW(cpa.kernel_addr("am_sched_entry"));
  EXPECT_EQ(cpa.lcv_sentinel(), cpa.kernel_addr("am_swap"));

  CompileOptions md;
  md.backend = rt::BackendKind::MessageDriven;
  CompiledProgram cpm = compile(simple_program(), md);
  EXPECT_EQ(rt::inlet_queue(cpm.options.backend), mdp::Priority::Low);
  EXPECT_THROW(cpm.kernel_addr("rt_post"), Error);
  EXPECT_EQ(cpm.lcv_sentinel(), cpm.kernel_addr("md_stub"));

  // System handlers exist under both.
  for (const char* sym : {"rt_falloc", "rt_ffree", "rt_halloc", "rt_ifetch",
                          "rt_istore", "rt_gfetch", "rt_gstore", "rt_halt",
                          "fp_add", "fp_mul", "fp_div"}) {
    EXPECT_NO_THROW(cpa.kernel_addr(sym)) << sym;
    EXPECT_NO_THROW(cpm.kernel_addr(sym)) << sym;
  }
}

TEST(Compiler, AmThreadPrologHasInterruptWindow) {
  CompileOptions am;
  am.backend = rt::BackendKind::ActiveMessages;
  CompiledProgram cp = compile(simple_program(), am);
  // The unenabled AM thread opens with EINT; DINT right after its mark.
  const mem::Addr t0 = cp.thread_addr(0, 0);
  const std::size_t idx = (t0 - mem::kUserCodeBase) / 4;
  // instruction 0 is the Mark, 1 = EINT, 2 = DINT.
  EXPECT_EQ(cp.image.user_code[idx].op, mdp::Op::Mark);
  EXPECT_EQ(cp.image.user_code[idx + 1].op, mdp::Op::Eint);
  EXPECT_EQ(cp.image.user_code[idx + 2].op, mdp::Op::Dint);
}

TEST(Compiler, EnabledVariantLeavesInterruptsOn) {
  CompileOptions am;
  am.backend = rt::BackendKind::ActiveMessages;
  am.am_enabled_variant = true;
  CompiledProgram cp = compile(simple_program(), am);
  const mem::Addr t0 = cp.thread_addr(0, 0);
  const std::size_t idx = (t0 - mem::kUserCodeBase) / 4;
  EXPECT_EQ(cp.image.user_code[idx + 1].op, mdp::Op::Eint);
  EXPECT_NE(cp.image.user_code[idx + 2].op, mdp::Op::Dint);
}

TEST(Compiler, MdThreadsHaveNoInterruptManagement) {
  CompileOptions md;
  md.backend = rt::BackendKind::MessageDriven;
  md.md = MdOptions::none();
  CompiledProgram cp = compile(simple_program(), md);
  for (const mdp::Instr& in : cp.image.user_code) {
    EXPECT_NE(in.op, mdp::Op::Eint);
    EXPECT_NE(in.op, mdp::Op::Dint);
  }
}

TEST(Compiler, MdOptimizationsShrinkUserCode) {
  CompileOptions plain;
  plain.backend = rt::BackendKind::MessageDriven;
  plain.md = MdOptions::none();
  CompileOptions optd = plain;
  optd.md = MdOptions::all();
  const std::size_t before =
      compile(simple_program(), plain).image.user_code.size();
  const std::size_t after =
      compile(simple_program(), optd).image.user_code.size();
  EXPECT_LT(after, before);
}

TEST(Compiler, AmIgnoresMdOptions) {
  CompileOptions a1;
  a1.backend = rt::BackendKind::ActiveMessages;
  a1.md = MdOptions::none();
  CompileOptions a2 = a1;
  a2.md = MdOptions::all();
  EXPECT_EQ(compile(simple_program(), a1).image.user_code.size(),
            compile(simple_program(), a2).image.user_code.size());
}

TEST(Compiler, MdFrameIsSmallerThanAmFrame) {
  // "Eliminating the remote continuation vector": the MD frame drops the
  // RCV header and list.
  CompileOptions am;
  am.backend = rt::BackendKind::ActiveMessages;
  CompileOptions md;
  md.backend = rt::BackendKind::MessageDriven;
  const auto fa = compile(simple_program(), am).layouts[0];
  const auto fm = compile(simple_program(), md).layouts[0];
  EXPECT_LT(fm.frame_bytes, fa.frame_bytes);
  EXPECT_EQ(fm.rcv_cap, 0);
  EXPECT_GT(fa.rcv_cap, 0);
}

TEST(MdOpt, InlinePlanRequiresUniquePoster) {
  Program p;
  p.name = "two_posters";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  InletId i1 = cb.declare_inlet("i1", 1);
  InletId i2 = cb.declare_inlet("i2", 1);
  {
    BodyBuilder b = cb.define_inlet(i1);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_inlet(i2);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    b.stop();
  }
  cb.finish();
  MdOptPlan plan = analyze_md_opts(p, MdOptions::all());
  EXPECT_EQ(plan.cbs[0].inline_thread[i1], -1);
  EXPECT_EQ(plan.cbs[0].inline_thread[i2], -1);
}

TEST(MdOpt, ForkTargetsAreNeverInlinedOrSuspended) {
  Program p;
  p.name = "forked";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t1 = cb.declare_thread("t1");
  ThreadId t2 = cb.declare_thread("t2");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t2);  // also a fork target below
  }
  {
    BodyBuilder b = cb.define_thread(t1);
    b.forks({t2});
  }
  {
    BodyBuilder b = cb.define_thread(t2);
    b.stop();
  }
  cb.finish();
  MdOptPlan plan = analyze_md_opts(p, MdOptions::all());
  EXPECT_EQ(plan.cbs[0].inline_thread[in], -1);
  EXPECT_FALSE(plan.cbs[0].suspend_stop[t2]);
  // t1 is not a fork target and pushes nothing: its stop may suspend.
  EXPECT_TRUE(plan.cbs[0].suspend_stop[t1]);
}

TEST(MdOpt, ElisionRequiresExclusiveSlotUse) {
  Program p;
  p.name = "shared_slot";
  CodeblockBuilder cb(p, "cb", 2);
  ThreadId t = cb.declare_thread("t");
  ThreadId other = cb.declare_thread("other");
  InletId in = cb.declare_inlet("in", 1);
  InletId in2 = cb.declare_inlet("in2", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));  // slot 0: also read by `other`
    b.frame_store(1, b.msg_load(0));  // slot 1: exclusive to (in, t)
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_inlet(in2);
    b.frame_store(0, b.msg_load(0));  // hmm: second store to slot 0
    b.post(other);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg a = b.frame_load(0);
    VReg c = b.frame_load(1);
    VReg s = b.bin(BinOp::Add, a, c);
    b.send_halt(s);
    b.stop();
  }
  {
    BodyBuilder b = cb.define_thread(other);
    VReg a = b.frame_load(0);
    b.send_halt(a);
    b.stop();
  }
  cb.finish();
  MdOptPlan plan = analyze_md_opts(p, MdOptions::all());
  ASSERT_EQ(plan.cbs[0].inline_thread[in], t);
  // Slot 0 is stored twice and read by two threads: not elidable.
  // Slot 1 is exclusive: elidable.
  ASSERT_EQ(plan.cbs[0].elided_slots[in].size(), 1u);
  EXPECT_EQ(plan.cbs[0].elided_slots[in][0], 1);
}

TEST(MdOpt, SynchronizingInlineTargetsAreNotElided) {
  Program p;
  p.name = "sync_target";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t", /*entry_count=*/2);
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  cb.finish();
  MdOptPlan plan = analyze_md_opts(p, MdOptions::all());
  // Inlining is fine (unique poster), elision is not (the first post's
  // value must survive in the frame until the entry count fires).
  EXPECT_EQ(plan.cbs[0].inline_thread[in], t);
  EXPECT_TRUE(plan.cbs[0].elided_slots[in].empty());
}

TEST(Compiler, TooManyCodeblocksRejected) {
  Program p;
  p.name = "big";
  for (int i = 0; i < rt::kMaxCodeblocks + 1; ++i) {
    CodeblockBuilder cb(p, "cb" + std::to_string(i), 1);
    ThreadId t = cb.declare_thread("t");
    BodyBuilder b = cb.define_thread(t);
    b.stop();
    cb.finish();
  }
  EXPECT_THROW(compile(p, CompileOptions{}), Error);
}

}  // namespace
}  // namespace jtam::tamc
