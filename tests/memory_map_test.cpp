// Unit tests for the memory map and region accounting.

#include <gtest/gtest.h>

#include "mem/memory_map.h"
#include "metrics/granularity.h"
#include "support/error.h"

namespace jtam::mem {
namespace {

TEST(MemoryMap, RegionClassification) {
  EXPECT_EQ(classify(kSysCodeBase), Region::SysCode);
  EXPECT_EQ(classify(kUserCodeBase), Region::UserCode);
  EXPECT_EQ(classify(kLowQueueBase), Region::SysData);
  EXPECT_EQ(classify(kHighQueueBase), Region::SysData);
  EXPECT_EQ(classify(kOsGlobalsBase), Region::SysData);
  EXPECT_EQ(classify(kLcvBase), Region::SysData);
  EXPECT_EQ(classify(kSysTableBase), Region::SysData);
  EXPECT_EQ(classify(kUserDataBase), Region::UserData);
  EXPECT_EQ(classify(kUserDataLimit - 4), Region::UserData);
}

TEST(MemoryMap, OutOfRangeThrows) {
  EXPECT_THROW(classify(0), Error);
  EXPECT_THROW(classify(kUserDataLimit), Error);
}

TEST(MemoryMap, RegionsDoNotOverlap) {
  EXPECT_LE(kSysCodeLimit, kUserCodeBase);
  EXPECT_LE(kUserCodeLimit, kSysDataBase);
  EXPECT_LE(kSysDataLimit, kUserDataBase);
  EXPECT_LT(kHighQueueBase + kQueueBytes, kOsGlobalsBase + 1);
  EXPECT_LE(kOsGlobalsBase + kOsGlobalsBytes, kLcvBase);
  EXPECT_LE(kLcvBase + kLcvBytes, kSysTableBase);
}

TEST(MemoryMap, QueueMembership) {
  EXPECT_TRUE(in_queue(kLowQueueBase));
  EXPECT_TRUE(in_queue(kHighQueueBase + kQueueBytes - 4));
  EXPECT_FALSE(in_queue(kOsGlobalsBase));
  EXPECT_FALSE(in_queue(kUserDataBase));
}

TEST(MemoryMap, RegionNames) {
  EXPECT_STREQ(region_name(Region::SysCode), "sys-code");
  EXPECT_STREQ(region_name(Region::UserData), "user-data");
}

TEST(MemoryMap, FastClassifierAgreesWithExactOne) {
  // The branch-free classifier on the metrics hot path must agree with
  // the exact (throwing) one for every mapped address family.
  for (Addr a : {kSysCodeBase, kSysCodeBase + 400, kUserCodeBase,
                 kUserCodeBase + 0x1000, kLowQueueBase, kHighQueueBase,
                 kOsGlobalsBase, kLcvBase, kSysTableBase, kUserDataBase,
                 kUserDataLimit - 4}) {
    EXPECT_EQ(metrics::region_index(a), static_cast<int>(classify(a)))
        << "addr 0x" << std::hex << a;
  }
}

}  // namespace
}  // namespace jtam::mem
