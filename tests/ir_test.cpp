// Unit tests for the TAM IR builder and validator.

#include <gtest/gtest.h>

#include "support/error.h"
#include "tam/ir.h"

namespace jtam::tam {
namespace {

Program minimal_program() {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 2);
  ThreadId t = cb.declare_thread("t");
  InletId in = cb.declare_inlet("in", 1);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg v = b.frame_load(0);
    b.send_halt(v);
    b.stop();
  }
  cb.finish();
  return p;
}

TEST(IrBuilder, MinimalProgramValidates) {
  EXPECT_NO_THROW(validate(minimal_program()));
}

TEST(IrBuilder, UndefinedThreadRejected) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  cb.declare_thread("never_defined");
  EXPECT_THROW(cb.finish(), Error);
}

TEST(IrBuilder, DoubleDefineRejected) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  {
    BodyBuilder b = cb.define_thread(t);
    b.stop();
  }
  EXPECT_THROW(cb.define_thread(t), Error);
}

TEST(IrBuilder, OpsAfterTerminatorRejected) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  BodyBuilder b = cb.define_thread(t);
  b.stop();
  EXPECT_THROW(b.konst(1), Error);
}

TEST(IrBuilder, MsgLoadOutsideInletRejected) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  BodyBuilder b = cb.define_thread(t);
  EXPECT_THROW(b.msg_load(0), Error);
}

TEST(IrBuilder, FloatImmediatesRejected) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  BodyBuilder b = cb.define_thread(t);
  VReg v = b.konst_f(1.0f);
  EXPECT_THROW(b.bini(BinOp::FAdd, v, 3), Error);
  b.stop();
}

TEST(IrBuilder, EntryCountMustBePositive) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  EXPECT_THROW(cb.declare_thread("bad", 0), Error);
}

TEST(IrValidate, SlotOutOfRange) {
  Program p = minimal_program();
  p.codeblocks[0].threads[0].body[0].imm = 99;  // FrameLoad slot 99
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, MsgWordOutOfRange) {
  Program p = minimal_program();
  p.codeblocks[0].inlets[0].body[0].imm = 5;  // inlet has 1 payload word
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, ForkTargetOutOfRange) {
  Program p = minimal_program();
  p.codeblocks[0].threads[0].term.then_forks.push_back(42);
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, PostTargetOutOfRange) {
  Program p = minimal_program();
  p.codeblocks[0].inlets[0].post = 42;
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, ElseForksWithoutCondition) {
  Program p = minimal_program();
  p.codeblocks[0].threads[0].term.else_forks.push_back(0);
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, SendMsgArityMismatch) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  InletId in = cb.declare_inlet("in", /*payload_words=*/2);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.frame_store(0, b.msg_load(0));
    b.post(t);
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg f = b.self_frame();
    VReg v = b.konst(1);
    b.send_msg(0, in, f, {v});  // inlet wants 2 words
    b.stop();
  }
  cb.finish();
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, FetchReplyInletMustTakeAPayload) {
  Program p;
  p.name = "t";
  CodeblockBuilder cb(p, "cb", 1);
  ThreadId t = cb.declare_thread("t");
  InletId in = cb.declare_inlet("in", /*payload_words=*/0);
  {
    BodyBuilder b = cb.define_inlet(in);
    b.no_post();
  }
  {
    BodyBuilder b = cb.define_thread(t);
    VReg a = b.konst(0x400000);
    b.ifetch(a, in);
    b.stop();
  }
  cb.finish();
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, EmptyProgramRejected) {
  Program p;
  p.name = "empty";
  EXPECT_THROW(validate(p), Error);
}

TEST(IrValidate, CodeblockWithoutThreadsRejected) {
  Program p;
  p.name = "t";
  Codeblock cb;
  cb.name = "empty";
  p.codeblocks.push_back(cb);
  EXPECT_THROW(validate(p), Error);
}

TEST(Ir, BinOpClassification) {
  EXPECT_TRUE(is_float_op(BinOp::FAdd));
  EXPECT_TRUE(is_float_op(BinOp::FLt));
  EXPECT_FALSE(is_float_op(BinOp::Add));
  EXPECT_FALSE(is_float_op(BinOp::Lt));
  EXPECT_STREQ(binop_name(BinOp::FMul), "fmul");
  EXPECT_STREQ(binop_name(BinOp::Mod), "mod");
}

}  // namespace
}  // namespace jtam::tam
