// Tests for the textual TAM assembly front-end.

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "programs/registry.h"
#include "support/error.h"
#include "tam/parser.h"

namespace jtam::tam {
namespace {

const char* kSumSq = R"(
# sum of squares 1..n, one codeblock
program sumsq

codeblock main slots(n i sum)
  inlet start(x) posts init
    store n = x

  thread init
    one = const 1
    store i = one
    zero = const 0
    store sum = zero
    fork loop

  thread loop
    a = load i
    b = load n
    c = le a b
    cfork c ? body : done

  thread body
    a = load i
    sq = mul a a
    s = load sum
    s2 = add s sq
    store sum = s2
    a1 = addi a 1
    store i = a1
    fork loop

  thread done
    r = load sum
    halt r
    stop
)";

TEST(Parser, ParsesAndValidates) {
  Program p = parse_program(kSumSq);
  EXPECT_EQ(p.name, "sumsq");
  ASSERT_EQ(p.codeblocks.size(), 1u);
  EXPECT_EQ(p.codeblocks[0].threads.size(), 4u);
  EXPECT_EQ(p.codeblocks[0].inlets.size(), 1u);
  EXPECT_EQ(p.codeblocks[0].num_data_slots, 3);
  EXPECT_EQ(p.codeblocks[0].inlets[0].post, 0);  // init is thread 0
}

TEST(Parser, ParsedProgramRunsCorrectlyUnderAllBackends) {
  programs::Workload w;
  w.name = "sumsq";
  w.program = parse_program(kSumSq);
  w.setup = [](programs::SetupCtx& ctx) {
    mem::Addr frame = ctx.alloc_frame(0);
    ctx.send_to_inlet(0, 0, frame, {20});
  };
  w.check = [](const programs::CheckCtx& ctx) -> std::string {
    return ctx.halt_value == 2870u ? "" : "bad sum";  // sum i^2, i=1..20
  };
  for (rt::BackendKind b : {rt::BackendKind::MessageDriven,
                            rt::BackendKind::ActiveMessages,
                            rt::BackendKind::Hybrid}) {
    driver::RunOptions opts;
    opts.backend = b;
    opts.with_cache = false;
    driver::RunResult r = driver::run_workload(w, opts);
    EXPECT_TRUE(r.ok()) << rt::backend_name(b) << ": " << r.check_error;
  }
}

TEST(Parser, EntryCountsAndMultiCodeblock) {
  Program p = parse_program(R"(
program two
codeblock a slots(x)
  inlet go(v) posts t
    store x = v
  thread t entry 2
    y = load x
    halt y
    stop
codeblock b slots(z)
  inlet go2(v)
    store z = v
  thread u
    w = load z
    f = frame
    ia = inlet_addr go2
    senddyn ia f (w)
    stop
)");
  ASSERT_EQ(p.codeblocks.size(), 2u);
  EXPECT_EQ(p.codeblocks[0].threads[0].entry_count, 2);
  EXPECT_FALSE(p.codeblocks[1].inlets[0].post.has_value());
}

TEST(Parser, CrossCodeblockSendAndFalloc) {
  Program p = parse_program(R"(
program xc
codeblock main slots(cf)
  inlet fr(f) posts snd
    store cf = f
  thread go
    falloc child -> fr
    stop
  thread snd
    f = load cf
    one = const 1
    send child.boot f (one)
    stop
codeblock child slots(v)
  inlet boot(x) posts fin
    store v = x
  thread fin
    r = load v
    halt r
    release
    stop
)");
  EXPECT_EQ(p.codeblocks.size(), 2u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_program("program p\ncodeblock c slots(a)\n  thread t\n    x = bogus 1 2\n    stop\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Parser, RejectsCommonMistakes) {
  // unknown slot
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    x = load nope\n    stop\n"),
               Error);
  // duplicate SSA name
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    x = const 1\n    x = const 2\n    stop\n"),
               Error);
  // missing terminator
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    x = const 1\n"),
               Error);
  // statement after terminator
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    stop\n    x = const 1\n"),
               Error);
  // unknown fork target
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    fork nowhere\n"),
               Error);
  // missing program header
  EXPECT_THROW(parse_program("codeblock c slots(a)\n  thread t\n    stop\n"),
               Error);
  // use before definition
  EXPECT_THROW(parse_program("program p\ncodeblock c slots(a)\n  thread t\n"
                             "    halt ghost\n    stop\n"),
               Error);
}

TEST(Parser, ImmediateFormsAndFloats) {
  Program p = parse_program(R"(
program imm
codeblock c slots(a)
  thread t
    x = const 0x10
    y = shli x 2
    z = constf 1.5
    w = fadd z z
    q = select y w z
    store a = q
    stop
)");
  // 0x10 parsed as hex; ops landed in the body.
  EXPECT_EQ(p.codeblocks[0].threads[0].body.size(), 6u);
  EXPECT_EQ(p.codeblocks[0].threads[0].body[0].imm, 16);
}

TEST(Parser, MissingFileIsReported) {
  EXPECT_THROW(parse_program_file("/nonexistent/prog.tam"), Error);
}

}  // namespace
}  // namespace jtam::tam
