// Tests for the conservatively-synchronized windowed parallel engine
// (mdp/parmulti.cpp) and the widened node addressing behind it
// (mem::NodeCodec):
//
//   - serial/parallel bit-identical equivalence across every workload,
//     back-end, network model, aggregation mode and thread count;
//   - halt resolution: mid-window halts roll overrun nodes back, the
//     winner is the serial sweep's (round, node) minimum;
//   - deadlock and budget-expiry equivalence, including the report text;
//   - the RoundHook cadence contract: hook rounds are window boundaries,
//     fire in increasing order from the run() caller's thread, and see
//     exact serial start-of-round ensemble state;
//   - the node-field codec: seed identity at shift 24, round trips and
//     capacity at the narrow shifts, machine-level accept/fault behavior,
//     and 512..4096-node ensembles end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "driver/experiment.h"
#include "mdp/assembler.h"
#include "mdp/multi.h"
#include "mem/memory_map.h"
#include "net/topology.h"
#include "programs/registry.h"
#include "support/error.h"

namespace jtam {
namespace {

programs::Workload small_workload(const std::string& name) {
  if (name == "mmt") return programs::make_mmt(6);
  if (name == "qs") return programs::make_quicksort(24);
  if (name == "dtw") return programs::make_dtw(7);
  if (name == "paraffins") return programs::make_paraffins(8);
  if (name == "wavefront") return programs::make_wavefront(8, 2);
  return programs::make_selection_sort(16);
}

/// Every measured field must agree exactly; ParallelStats and the flow
/// trace are execution reports and deliberately excluded.
void expect_identical(const driver::MultiRunResult& a,
                      const driver::MultiRunResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.injection_stall_cycles, b.injection_stall_cycles);
  EXPECT_EQ(a.stalled_sends, b.stalled_sends);
  EXPECT_EQ(a.per_node_instructions, b.per_node_instructions);
  EXPECT_EQ(a.per_node_injection_stalls, b.per_node_injection_stalls);
  EXPECT_EQ(a.deadlock_report, b.deadlock_report);
  EXPECT_TRUE(a.net_stats == b.net_stats)
      << a.net_stats.summary() << "\n  vs\n" << b.net_stats.summary();
}

// ---------------------------------------------------------------------------
// Serial/parallel equivalence matrix

using ParCombo =
    std::tuple<const char*, rt::BackendKind, net::NetKind, net::AggMode>;

class ParallelEquivalence : public ::testing::TestWithParam<ParCombo> {};

TEST_P(ParallelEquivalence, BitIdenticalAtEveryThreadCount) {
  const std::string name = std::get<0>(GetParam());
  driver::RunOptions opts;
  opts.backend = std::get<1>(GetParam());
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.net = std::get<2>(GetParam());
  mo.agg = std::get<3>(GetParam());
  const programs::Workload w = small_workload(name);

  mo.threads = 0;
  const driver::MultiRunResult serial = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(serial.ok()) << name << ": " << serial.check_error;
  EXPECT_FALSE(serial.parallel.engaged);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    mo.threads = threads;
    const driver::MultiRunResult par = driver::run_workload_multi(w, opts, mo);
    ASSERT_TRUE(par.ok()) << name << " T=" << threads << ": "
                          << par.check_error;
    EXPECT_TRUE(par.parallel.engaged) << name << " T=" << threads;
    // Shards never exceed nodes; barriers come two per window once real
    // workers exist.
    EXPECT_EQ(par.parallel.threads, std::min(threads, 4u));
    EXPECT_GE(par.parallel.windows, 1u);
    if (par.parallel.threads > 1) {
      EXPECT_EQ(par.parallel.barriers, 2 * par.parallel.windows);
    } else {
      EXPECT_EQ(par.parallel.barriers, 0u);
    }
    expect_identical(serial, par);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelEquivalence,
    ::testing::Combine(
        ::testing::Values("mmt", "qs", "dtw", "paraffins", "wavefront", "ss"),
        ::testing::Values(rt::BackendKind::MessageDriven,
                          rt::BackendKind::ActiveMessages),
        ::testing::Values(net::NetKind::Ideal, net::NetKind::Mesh),
        ::testing::Values(net::AggMode::Off, net::AggMode::Dest)),
    [](const ::testing::TestParamInfo<ParCombo>& info) {
      std::string s = std::get<0>(info.param);
      s += std::get<1>(info.param) == rt::BackendKind::MessageDriven ? "_MD"
                                                                     : "_AM";
      s += std::get<2>(info.param) == net::NetKind::Ideal ? "_ideal" : "_mesh";
      s += std::get<3>(info.param) == net::AggMode::Off ? "_aggoff" : "_aggon";
      return s;
    });

TEST(ParallelEngine, WindowLimitTracksNetworkLookahead) {
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.threads = 4;

  mo.net = net::NetKind::Ideal;  // unbounded wire: latency rounds of slack
  driver::MultiRunResult ideal = driver::run_workload_multi(w, opts, mo);
  EXPECT_EQ(ideal.parallel.window_limit, 16u);
  EXPECT_LT(ideal.parallel.windows, ideal.rounds);

  mo.net = net::NetKind::Mesh;  // cycle-level model: one round per window
  driver::MultiRunResult mesh = driver::run_workload_multi(w, opts, mo);
  EXPECT_EQ(mesh.parallel.window_limit, 1u);
}

TEST(ParallelEngine, FallsBackWhenNetworkHasNoLookahead) {
  // The bounded ideal wire answers can_accept from the global in-flight
  // count, so it opts out of windowed execution entirely.
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.max_inflight_messages = 4;
  mo.threads = 0;
  const driver::MultiRunResult serial = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(serial.ok()) << serial.check_error;
  mo.threads = 4;
  const driver::MultiRunResult par = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(par.ok()) << par.check_error;
  EXPECT_FALSE(par.parallel.engaged);
  expect_identical(serial, par);
}

TEST(ParallelEngine, FallsBackWhenFlowTracingIsOn) {
  // Per-instruction flow probes must fire from the coordinator in serial
  // order, so tracing runs stay on the classic loop.
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.net = net::NetKind::Mesh;
  mo.flow.enabled = true;
  mo.threads = 8;
  const driver::MultiRunResult r = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(r.ok()) << r.check_error;
  EXPECT_FALSE(r.parallel.engaged);
  ASSERT_NE(r.flow, nullptr);
}

// ---------------------------------------------------------------------------
// Halt resolution: custom images that stop mid-window

/// One straight-line handler per node: `lengths[n]` ADDIs, then HALT with
/// a per-node value (100 + node).  Returns the linked image; entry symbol
/// for node n is "entry<n>".
mdp::CodeImage staircase_image(const std::vector<int>& lengths) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  for (std::size_t n = 0; n < lengths.size(); ++n) {
    a.here("entry" + std::to_string(n));
    a.movi(mdp::R1, 100 + static_cast<int>(n));
    for (int i = 0; i < lengths[n]; ++i) {
      a.alui(mdp::Op::Addi, mdp::R2, mdp::R2, 1);
    }
    a.halt(mdp::R1);
  }
  return a.link();
}

struct StairRun {
  mdp::RunStatus status;
  std::uint64_t rounds;
  std::uint32_t halt_value;
  int halted_node;
  std::vector<std::uint64_t> per_node_instr;
};

StairRun run_staircase(const std::vector<int>& lengths, unsigned threads) {
  const mdp::CodeImage img = staircase_image(lengths);
  mdp::MultiMachine::Config mc;
  mc.num_nodes = static_cast<int>(lengths.size());
  mc.threads = threads;
  mdp::MultiMachine mm(img, mc);
  for (std::size_t n = 0; n < lengths.size(); ++n) {
    std::uint32_t boot[] = {img.symbol("entry" + std::to_string(n))};
    mm.node(static_cast<int>(n)).inject(mdp::Priority::Low, boot);
  }
  StairRun r;
  r.status = mm.run();
  r.rounds = mm.rounds();
  r.halt_value = mm.halt_value();
  r.halted_node = mm.halted_node();
  if (threads >= 1) {
    EXPECT_TRUE(mm.parallel_stats().engaged);
  }
  for (int n = 0; n < mc.num_nodes; ++n) {
    r.per_node_instr.push_back(mm.node(n).instructions_executed());
  }
  return r;
}

void expect_same_stair(const StairRun& a, const StairRun& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.halt_value, b.halt_value);
  EXPECT_EQ(a.halted_node, b.halted_node);
  EXPECT_EQ(a.per_node_instr, b.per_node_instr);
}

TEST(ParallelHalt, MidWindowHaltRollsBackOverrunNodes) {
  // Node 0 halts a few rounds into a 16-round window while node 1 still
  // has work: node 1's extra steps must be rewound to the serial stopping
  // point (the serial sweep ends mid-round at the halt).
  const std::vector<int> lengths{4, 40};
  const StairRun serial = run_staircase(lengths, 0);
  ASSERT_EQ(serial.status, mdp::RunStatus::Halted);
  EXPECT_EQ(serial.halted_node, 0);
  EXPECT_EQ(serial.halt_value, 100u);
  for (unsigned threads : {1u, 2u}) {
    expect_same_stair(serial, run_staircase(lengths, threads));
  }
}

TEST(ParallelHalt, EarliestRoundWinsAcrossShards) {
  // Node 2 halts first; shards owning nodes 0 and 1 keep running until
  // the barrier, then everything past node 2's round is discarded.
  const std::vector<int> lengths{40, 40, 3, 40};
  const StairRun serial = run_staircase(lengths, 0);
  ASSERT_EQ(serial.status, mdp::RunStatus::Halted);
  EXPECT_EQ(serial.halted_node, 2);
  EXPECT_EQ(serial.halt_value, 102u);
  for (unsigned threads : {2u, 4u}) {
    expect_same_stair(serial, run_staircase(lengths, threads));
  }
}

TEST(ParallelHalt, SameRoundTieBreaksToLowestNode) {
  // Two nodes reach HALT at the same round; the serial sweep sees the
  // lower-numbered node first, and so must the parallel engine.
  const std::vector<int> lengths{7, 7};
  const StairRun serial = run_staircase(lengths, 0);
  ASSERT_EQ(serial.status, mdp::RunStatus::Halted);
  EXPECT_EQ(serial.halted_node, 0);
  EXPECT_EQ(serial.halt_value, 100u);
  for (unsigned threads : {1u, 2u}) {
    expect_same_stair(serial, run_staircase(lengths, threads));
  }
}

// ---------------------------------------------------------------------------
// Deadlock and budget equivalence

TEST(ParallelDeadlock, MatchesSerialReportOnBothNetworks) {
  // One boot message whose handler consumes it and suspends: after round
  // 0 every node is idle with nothing in flight.
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.suspend();
  const mdp::CodeImage img = a.link();

  for (net::NetKind kind : {net::NetKind::Ideal, net::NetKind::Mesh}) {
    auto run_once = [&](unsigned threads) {
      mdp::MultiMachine::Config mc;
      mc.num_nodes = 4;
      mc.net = kind;
      mc.threads = threads;
      mdp::MultiMachine mm(img, mc);
      std::uint32_t boot[] = {img.symbol("entry")};
      mm.node(0).inject(mdp::Priority::Low, boot);
      const mdp::RunStatus status = mm.run();
      if (threads >= 1) {
        EXPECT_TRUE(mm.parallel_stats().engaged);
      }
      return std::make_tuple(status, mm.rounds(), mm.messages_sent(),
                             mm.deadlock_report());
    };
    const auto serial = run_once(0);
    EXPECT_EQ(std::get<0>(serial), mdp::RunStatus::Deadlock);
    EXPECT_NE(std::get<3>(serial).find("idle"), std::string::npos);
    for (unsigned threads : {1u, 4u}) {
      EXPECT_EQ(serial, run_once(threads))
          << net::net_kind_name(kind) << " T=" << threads;
    }
  }
}

TEST(ParallelBudget, ExpiryMatchesSerialEvenMidWindow) {
  // 2005 is not a multiple of the 16-round lookahead window, so the last
  // window is truncated by the budget — rounds must still come out equal.
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.max_instructions = 2005;  // multi-node: the rounds budget
  driver::MultiOptions mo;
  mo.num_nodes = 4;
  mo.threads = 0;
  const driver::MultiRunResult serial = driver::run_workload_multi(w, opts, mo);
  EXPECT_EQ(serial.status, mdp::RunStatus::Budget);
  EXPECT_EQ(serial.rounds, 2005u);
  for (unsigned threads : {1u, 4u}) {
    mo.threads = threads;
    const driver::MultiRunResult par = driver::run_workload_multi(w, opts, mo);
    EXPECT_TRUE(par.parallel.engaged);
    expect_identical(serial, par);
  }
}

// ---------------------------------------------------------------------------
// RoundHook cadence contract

struct RecordingHook final : mdp::RoundHook {
  explicit RecordingHook(std::uint64_t iv)
      : interval(iv), caller(std::this_thread::get_id()) {}
  void on_round(const mdp::MultiMachine& mm, std::uint64_t round) override {
    if (std::this_thread::get_id() != caller) from_worker = true;
    // total_instructions() is a start-of-round ensemble snapshot: under
    // the windowed engine it must equal the serial value because every
    // hook round opens a window with all earlier rounds committed.
    seen.emplace_back(round, mm.total_instructions());
  }
  std::uint64_t round_interval() const override { return interval; }

  std::uint64_t interval;
  std::thread::id caller;
  bool from_worker = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
};

TEST(RoundHookCadence, WindowBoundariesSerialOrderCallerThread) {
  const std::vector<int> lengths{60, 45, 30, 75};
  const mdp::CodeImage img = staircase_image(lengths);
  for (std::uint64_t interval : {std::uint64_t{1}, std::uint64_t{5},
                                 std::uint64_t{7}}) {
    auto run_once = [&](unsigned threads, RecordingHook& hook) {
      mdp::MultiMachine::Config mc;
      mc.num_nodes = static_cast<int>(lengths.size());
      mc.threads = threads;
      mdp::MultiMachine mm(img, mc);
      for (std::size_t n = 0; n < lengths.size(); ++n) {
        std::uint32_t boot[] = {img.symbol("entry" + std::to_string(n))};
        mm.node(static_cast<int>(n)).inject(mdp::Priority::Low, boot);
      }
      mm.set_round_hook(&hook);
      EXPECT_EQ(mm.run(), mdp::RunStatus::Halted);
      if (threads >= 1) {
        EXPECT_TRUE(mm.parallel_stats().engaged);
        // Hook boundaries shrink the windows: an interval below the
        // 16-round lookahead caps every window at the interval.
        if (interval < 16) {
          EXPECT_GE(mm.parallel_stats().windows,
                    mm.rounds() / std::max<std::uint64_t>(interval, 1));
        }
      }
      return mm.rounds();
    };
    RecordingHook serial_hook(interval);
    const std::uint64_t serial_rounds = run_once(0, serial_hook);
    ASSERT_FALSE(serial_hook.seen.empty());
    for (std::size_t i = 0; i < serial_hook.seen.size(); ++i) {
      EXPECT_EQ(serial_hook.seen[i].first, i * interval);
    }
    EXPECT_LE(serial_hook.seen.back().first, serial_rounds);

    for (unsigned threads : {1u, 4u}) {
      RecordingHook par_hook(interval);
      const std::uint64_t par_rounds = run_once(threads, par_hook);
      EXPECT_EQ(par_rounds, serial_rounds);
      EXPECT_FALSE(par_hook.from_worker)
          << "hook fired from a shard worker (interval " << interval << ")";
      EXPECT_EQ(par_hook.seen, serial_hook.seen)
          << "hook observation diverged at interval " << interval
          << ", threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Node-field codec: seed identity, round trips, capacity

TEST(NodeCodec, SeedShiftIsBitIdentical) {
  const mem::NodeCodec codec(24);
  for (mem::Addr g : {0x00400000u, 0x03412345u, 0xFF400000u, 0x80FFFFFCu}) {
    EXPECT_EQ(codec.node_of(g), g >> 24);
    EXPECT_EQ(codec.local_of(g), g & 0xFFFFFFu);
  }
  EXPECT_EQ(codec.global_of(3, 0x412345u), (3u << 24) | 0x412345u);
  EXPECT_EQ(codec.user_limit, mem::kUserDataLimit);
}

TEST(NodeCodec, RoundTripsAtEveryShift) {
  for (std::uint32_t shift : {24u, 22u, 21u, 20u, 19u}) {
    const mem::NodeCodec codec(shift);
    const std::uint64_t max_nodes = mem::max_nodes_for_shift(shift);
    for (mem::Addr node :
         {mem::Addr{0}, mem::Addr{1},
          static_cast<mem::Addr>(max_nodes - 1)}) {
      for (mem::Addr local :
           {mem::kUserDataBase, mem::kUserDataBase + 4,
            codec.user_limit - 4}) {
        const mem::Addr g = codec.global_of(node, local);
        EXPECT_EQ(codec.node_of(g), node) << "shift " << shift;
        EXPECT_EQ(codec.local_of(g), local) << "shift " << shift;
        EXPECT_GE(codec.local_of(g), mem::kUserDataBase);
        EXPECT_LT(codec.local_of(g), codec.user_limit);
      }
    }
    // At the narrow shifts sys-data addresses must never decode to a
    // legal node id (the sub-base underflow wraps past max_nodes); the
    // seed shift instead excludes sys ranges before the codec runs.
    if (shift != 24) {
      EXPECT_GE(codec.node_of(mem::kSysDataBase),
                static_cast<mem::Addr>(max_nodes));
    }
  }
}

TEST(NodeCodec, CapacityLadder) {
  EXPECT_EQ(mem::max_nodes_for_shift(24), 256u);
  EXPECT_EQ(mem::max_nodes_for_shift(22), 1023u);
  EXPECT_EQ(mem::max_nodes_for_shift(21), 2046u);
  EXPECT_EQ(mem::max_nodes_for_shift(20), 4092u);
  EXPECT_EQ(mem::max_nodes_for_shift(19), 8184u);

  EXPECT_EQ(mem::node_shift_for_nodes(1), 24u);
  EXPECT_EQ(mem::node_shift_for_nodes(256), 24u);
  EXPECT_EQ(mem::node_shift_for_nodes(257), 22u);
  EXPECT_EQ(mem::node_shift_for_nodes(512), 22u);
  EXPECT_EQ(mem::node_shift_for_nodes(1024), 21u);
  EXPECT_EQ(mem::node_shift_for_nodes(2048), 20u);
  EXPECT_EQ(mem::node_shift_for_nodes(4092), 20u);
  EXPECT_EQ(mem::node_shift_for_nodes(4096), 19u);
  EXPECT_EQ(mem::node_shift_for_nodes(8184), 19u);
  EXPECT_EQ(mem::node_shift_for_nodes(8185), 0u);  // unrepresentable
}

TEST(NodeCodec, ShapesForLargeEnsembles) {
  for (int n : {512, 1024, 4096}) {
    const net::Shape s = net::Shape::for_nodes(n);
    EXPECT_EQ(s.x * s.y * s.z, n);
    EXPECT_GE(s.x, s.y);
    EXPECT_GE(s.y, s.z);
  }
  EXPECT_EQ(net::Shape::for_nodes(512).z, 8);
  EXPECT_EQ(net::Shape::for_nodes(4096).z, 16);
}

TEST(NodeCodec, MachineEnforcesNarrowShiftAddressing) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.suspend();
  const mdp::CodeImage img = a.link();

  mdp::Machine::Config mc;
  mc.node_id = 3;
  mc.num_nodes = 512;
  mc.node_shift = 22;
  mdp::Machine m(img, mc);
  const mem::NodeCodec codec(22);

  // Own-node user data and node-private sys data are accessible...
  const mem::Addr own = codec.global_of(3, mem::kUserDataBase + 64);
  m.store_word(own, 0xBEEF);
  EXPECT_EQ(m.load_word(own), 0xBEEFu);
  m.store_word(mem::kSysDataBase + 8, 7);
  EXPECT_EQ(m.load_word(mem::kSysDataBase + 8), 7u);

  // ... another node's window and out-of-window locals fault.
  EXPECT_THROW(m.load_word(codec.global_of(4, mem::kUserDataBase + 64)),
               Error);
  EXPECT_THROW(m.load_word(codec.global_of(3, codec.user_limit)), Error);
}

TEST(NodeCodec, MultiMachineLiftsTheSeedNodeCap) {
  mdp::Assembler a;
  a.section(mdp::Section::SysCode);
  a.here("entry");
  a.movi(mdp::R1, 9);
  a.halt(mdp::R1);
  const mdp::CodeImage img = a.link();

  mdp::MultiMachine::Config mc;
  mc.num_nodes = 512;
  mdp::MultiMachine mm(img, mc);
  EXPECT_EQ(mm.node_shift(), 22u);
  std::uint32_t boot[] = {img.symbol("entry")};
  mm.node(511).inject(mdp::Priority::Low, boot);
  EXPECT_EQ(mm.run(), mdp::RunStatus::Halted);
  EXPECT_EQ(mm.halted_node(), 511);
  EXPECT_EQ(mm.halt_value(), 9u);

  // Explicit shifts must admit the node count; > 8184 fits no shift.
  mc.node_shift = 24;
  EXPECT_THROW(mdp::MultiMachine(img, mc), Error);
  mc.node_shift = 0;
  mc.num_nodes = 8185;
  EXPECT_THROW(mdp::MultiMachine(img, mc), Error);
}

TEST(LargeEnsemble, FiveTwelveNodesSerialAndParallelAgree) {
  // The headline configuration: a 512-node J-Machine sweep, serial vs the
  // windowed engine, bit-identical.
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::MultiOptions mo;
  mo.num_nodes = 512;
  mo.threads = 0;
  const driver::MultiRunResult serial = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(serial.ok()) << serial.check_error;
  EXPECT_EQ(serial.per_node_instructions.size(), 512u);
  mo.threads = 8;
  const driver::MultiRunResult par = driver::run_workload_multi(w, opts, mo);
  ASSERT_TRUE(par.ok()) << par.check_error;
  EXPECT_TRUE(par.parallel.engaged);
  EXPECT_EQ(par.parallel.threads, 8u);
  expect_identical(serial, par);
}

}  // namespace
}  // namespace jtam
