// Causal flow tracing (obs::FlowTracer): tie-outs against the machine's
// and network's own counters, bit-identical measured results with tracing
// on, the critical-path partition invariant, the merged multi-node
// Perfetto export, histogram merging, and the time-series sampler.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "driver/experiment.h"
#include "obs/critical_path.h"
#include "obs/flow.h"
#include "obs/timeline.h"
#include "programs/registry.h"
#include "support/json.h"

namespace jtam {
namespace {

driver::MultiRunResult traced_run(rt::BackendKind backend, net::NetKind kind,
                                  int nodes = 4,
                                  std::uint64_t sample_every = 0) {
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = backend;
  driver::MultiOptions mopts;
  mopts.num_nodes = nodes;
  mopts.net = kind;
  mopts.flow.enabled = true;
  mopts.flow.sample_every = sample_every;
  driver::MultiRunResult r = driver::run_workload_multi(w, opts, mopts);
  EXPECT_TRUE(r.ok()) << r.check_error;
  return r;
}

class FlowMatrix
    : public testing::TestWithParam<std::tuple<rt::BackendKind,
                                               net::NetKind>> {};

// The decomposition tie-out: every per-message record the tracer keeps
// re-sums, bit-exactly, to a counter the machine or network already
// reported.  If any hook site drifted (missed event, double count, wrong
// attribution), one of these equalities breaks.
TEST_P(FlowMatrix, DecompositionTiesOutAgainstMachineCounters) {
  const auto [backend, kind] = GetParam();
  const driver::MultiRunResult r = traced_run(backend, kind);
  ASSERT_NE(r.flow, nullptr);
  const obs::FlowTrace& tr = *r.flow;

  EXPECT_EQ(tr.num_nodes, r.num_nodes);
  EXPECT_EQ(tr.final_round, r.rounds);

  // Network tie-out: the per-message hop/latency records rebuild the
  // model's own NetStats histograms exactly.
  EXPECT_TRUE(tr.hop_histogram() == r.hops);
  EXPECT_TRUE(tr.latency_histogram() == r.msg_latency);

  // Every remote send became exactly one traced Remote message.
  std::uint64_t remote = 0;
  for (const obs::FlowMessage& m : tr.messages) {
    if (m.kind == obs::FlowMsgKind::Remote) ++remote;
  }
  EXPECT_EQ(remote, r.messages);

  ASSERT_EQ(r.per_node_gran.size(), static_cast<std::size_t>(r.num_nodes));
  for (int n = 0; n < r.num_nodes; ++n) {
    // Stall attribution: per-message stall cycles (plus any still-pending
    // stall) sum to the node's injection-stall counter.
    EXPECT_EQ(tr.stall_cycles(n), r.per_node_injection_stalls[
                                      static_cast<std::size_t>(n)]);
    // Instruction attribution: every instruction a node executed was
    // charged to the message whose handler ran it.
    EXPECT_EQ(tr.handler_instructions(n),
              r.per_node_instructions[static_cast<std::size_t>(n)]);
    // Mark attribution vs the node's granularity counters.
    const metrics::Granularity& g =
        r.per_node_gran[static_cast<std::size_t>(n)];
    EXPECT_EQ(tr.threads_started(n), g.threads);
    EXPECT_EQ(tr.inlets_started(n), g.inlets);
    EXPECT_EQ(tr.activations(n), g.activations);
  }
}

// Histogram::merge tie-out (cross-node aggregation): summing the per-node
// destination-filtered histograms reproduces the machine-level histogram
// bit-exactly.
TEST_P(FlowMatrix, MergedPerNodeHistogramsEqualEnsembleHistograms) {
  const auto [backend, kind] = GetParam();
  const driver::MultiRunResult r = traced_run(backend, kind);
  ASSERT_NE(r.flow, nullptr);
  obs::Histogram hops, latency;
  for (int n = 0; n < r.num_nodes; ++n) {
    hops += r.flow->hop_histogram(n);
    latency.merge(r.flow->latency_histogram(n));
  }
  EXPECT_TRUE(hops == r.hops);
  EXPECT_TRUE(latency == r.msg_latency);
}

// The zero-cost-when-off contract's other half: with tracing ON, every
// measured number is bit-identical to the untraced run.
TEST_P(FlowMatrix, TracingLeavesMeasuredResultsBitIdentical) {
  const auto [backend, kind] = GetParam();
  programs::Workload w = programs::make_mmt(6);
  driver::RunOptions opts;
  opts.backend = backend;
  driver::MultiOptions mopts;
  mopts.num_nodes = 4;
  mopts.net = kind;
  const driver::MultiRunResult off = driver::run_workload_multi(w, opts,
                                                                mopts);
  mopts.flow.enabled = true;
  mopts.flow.sample_every = 128;
  const driver::MultiRunResult on = driver::run_workload_multi(w, opts,
                                                               mopts);
  ASSERT_TRUE(off.ok() && on.ok());
  EXPECT_EQ(on.status, off.status);
  EXPECT_EQ(on.halt_value, off.halt_value);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.total_instructions, off.total_instructions);
  EXPECT_EQ(on.messages, off.messages);
  EXPECT_EQ(on.per_node_instructions, off.per_node_instructions);
  EXPECT_EQ(on.per_node_injection_stalls, off.per_node_injection_stalls);
  EXPECT_EQ(on.injection_stall_cycles, off.injection_stall_cycles);
  EXPECT_EQ(on.stalled_sends, off.stalled_sends);
  EXPECT_EQ(on.net_cycles, off.net_cycles);
  EXPECT_TRUE(on.hops == off.hops);
  EXPECT_TRUE(on.msg_latency == off.msg_latency);
  ASSERT_EQ(on.links.size(), off.links.size());
  for (std::size_t i = 0; i < on.links.size(); ++i) {
    EXPECT_EQ(on.links[i].flits, off.links[i].flits);
    EXPECT_EQ(on.links[i].peak_occupancy, off.links[i].peak_occupancy);
  }
  EXPECT_EQ(off.flow, nullptr);
  EXPECT_NE(on.flow, nullptr);
}

// The causal DAG is well-formed: parents precede children, span stages
// are ordered, and the transit component is exactly the network latency.
TEST_P(FlowMatrix, SpansAreCausallyOrdered) {
  const auto [backend, kind] = GetParam();
  const driver::MultiRunResult r = traced_run(backend, kind);
  ASSERT_NE(r.flow, nullptr);
  for (const obs::FlowMessage& m : r.flow->messages) {
    EXPECT_LT(m.parent, m.id);  // parents are created first (or 0)
    if (m.kind == obs::FlowMsgKind::Boot) {
      EXPECT_EQ(m.parent, 0u);
      EXPECT_EQ(m.deliver_ts, 0u);
    }
    EXPECT_LE(m.send_ts, m.inject_ts);
    if (!m.delivered()) continue;
    EXPECT_LE(m.inject_ts, m.deliver_ts);
    EXPECT_EQ(m.transit(), m.net_latency);
    EXPECT_GE(m.inject_wait(), m.stall_cycles);
    if (!m.dispatched()) continue;
    EXPECT_LE(m.deliver_ts, m.dispatch_ts);
    if (m.finished()) EXPECT_LE(m.dispatch_ts, m.finish_ts);
  }
}

// The headline invariant: the critical path's four components partition
// [0, final_round] exactly — nothing double-counted, nothing missing.
TEST_P(FlowMatrix, CriticalPathPartitionsTheRun) {
  const auto [backend, kind] = GetParam();
  const driver::MultiRunResult r = traced_run(backend, kind);
  ASSERT_NE(r.flow, nullptr);
  const obs::CriticalPath path = obs::analyze_critical_path(*r.flow);
  ASSERT_FALSE(path.steps.empty());
  EXPECT_TRUE(path.complete);
  EXPECT_EQ(path.total(), r.flow->final_round);
  EXPECT_EQ(path.handler + path.inject_wait + path.transit + path.queue_wait,
            r.rounds);
  EXPECT_EQ(r.flow->msg(path.steps.front().msg).kind,
            obs::FlowMsgKind::Boot);
  EXPECT_EQ(path.steps.back().msg, r.flow->halt_msg);
  std::ostringstream os;
  obs::write_critical_path(os, *r.flow, path);
  EXPECT_NE(os.str().find("critical path:"), std::string::npos);
  EXPECT_EQ(os.str().find("incomplete"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FlowMatrix,
    testing::Combine(testing::Values(rt::BackendKind::MessageDriven,
                                     rt::BackendKind::ActiveMessages),
                     testing::Values(net::NetKind::Ideal,
                                     net::NetKind::Mesh)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 rt::BackendKind::MessageDriven
                             ? "Md"
                             : "Am") +
             (std::get<1>(info.param) == net::NetKind::Ideal ? "Ideal"
                                                             : "Mesh");
    });

TEST(FlowTrace, HandlerNamesResolveThroughSymbols) {
  const driver::MultiRunResult r =
      traced_run(rt::BackendKind::MessageDriven, net::NetKind::Mesh);
  ASSERT_NE(r.flow, nullptr);
  // The driver attaches symbols; at least some messages must name a real
  // routine (the boot inlet at minimum).
  std::uint64_t named = 0;
  for (const obs::FlowMessage& m : r.flow->messages) {
    if (!r.flow->name_of(m).empty()) ++named;
  }
  EXPECT_GT(named, 0u);
  EXPECT_FALSE(r.flow->names.empty());
}

TEST(FlowSampler, CadenceAndMonotonicity) {
  const driver::MultiRunResult r = traced_run(
      rt::BackendKind::MessageDriven, net::NetKind::Mesh, 4, 64);
  ASSERT_NE(r.flow, nullptr);
  const obs::FlowTrace& tr = *r.flow;
  ASSERT_GT(tr.samples.size(), 1u);
  EXPECT_EQ(tr.sample_every, 64u);
  std::uint64_t prev_round = 0;
  std::uint64_t prev_instr = 0, prev_msgs = 0, prev_flits = 0;
  bool first = true;
  for (const obs::FlowSample& s : tr.samples) {
    EXPECT_EQ(s.round % 64, 0u);
    if (!first) EXPECT_GT(s.round, prev_round);
    ASSERT_EQ(s.queue_depth_low.size(), 4u);
    ASSERT_EQ(s.queue_depth_high.size(), 4u);
    ASSERT_EQ(s.node_instructions.size(), 4u);
    ASSERT_EQ(s.node_stall_cycles.size(), 4u);
    ASSERT_EQ(s.link_flits.size(), tr.links.size());
    std::uint64_t instr = 0;
    for (std::uint64_t v : s.node_instructions) instr += v;
    std::uint64_t flits = 0;
    for (std::uint64_t v : s.link_flits) flits += v;
    // Cumulative counters never move backwards.
    EXPECT_GE(instr, prev_instr);
    EXPECT_GE(s.messages_delivered, prev_msgs);
    EXPECT_GE(flits, prev_flits);
    EXPECT_EQ(s.net_flits, flits);  // link counters sum to the total
    prev_round = s.round;
    prev_instr = instr;
    prev_msgs = s.messages_delivered;
    prev_flits = flits;
    first = false;
  }
  // Final cumulative values are bounded by the end-of-run totals.
  EXPECT_LE(prev_instr, r.total_instructions);
  EXPECT_LE(prev_msgs, r.messages);
}

TEST(FlowSampler, OffByDefault) {
  const driver::MultiRunResult r =
      traced_run(rt::BackendKind::MessageDriven, net::NetKind::Mesh);
  ASSERT_NE(r.flow, nullptr);
  EXPECT_TRUE(r.flow->samples.empty());
}

// ---- Perfetto export ----------------------------------------------------

TEST(FlowChromeTrace, ParsesAndPairsFlowEventsAcrossDisjointNodeTracks) {
  const driver::MultiRunResult md = traced_run(
      rt::BackendKind::MessageDriven, net::NetKind::Mesh, 4, 256);
  const driver::MultiRunResult am = traced_run(
      rt::BackendKind::ActiveMessages, net::NetKind::Mesh, 4, 256);
  ASSERT_NE(md.flow, nullptr);
  ASSERT_NE(am.flow, nullptr);
  std::ostringstream os;
  obs::write_flow_chrome_trace(
      os, {{"mmt / MD", md.flow.get()}, {"mmt / AM", am.flow.get()}});

  const json::Value doc = json::parse(os.str());
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::set<int> declared_pids;
  std::map<double, int> flow_begins, flow_ends;
  std::size_t slices = 0;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const int pid = static_cast<int>(e.at("pid").as_number());
    if (ph == "M" && e.at("name").as_string() == "process_name") {
      EXPECT_TRUE(declared_pids.insert(pid).second)
          << "pid " << pid << " declared twice: node tracks must be "
          << "disjoint across runs and nodes";
      continue;
    }
    EXPECT_TRUE(declared_pids.count(pid))
        << ph << " event on undeclared pid " << pid;
    if (ph == "X") {
      ++slices;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_TRUE(e.at("args").has("msg"));
    } else if (ph == "s") {
      ++flow_begins[e.at("id").as_number()];
    } else if (ph == "f") {
      ++flow_ends[e.at("id").as_number()];
      EXPECT_EQ(e.at("bp").as_string(), "e");
    }
  }
  // Two runs x (4 nodes + 1 network process) declared.
  EXPECT_EQ(declared_pids.size(), 10u);
  EXPECT_GT(slices, 0u);
  // Flow arrows pair up exactly: one begin and one end per id.
  EXPECT_FALSE(flow_begins.empty());
  EXPECT_EQ(flow_begins.size(), flow_ends.size());
  for (const auto& [id, n] : flow_begins) {
    EXPECT_EQ(n, 1) << "flow id " << id;
    EXPECT_EQ(flow_ends[id], 1) << "flow id " << id;
  }
  // Both runs traced the same program on the same mesh, but the ids must
  // not collide: the per-run offset keeps every arrow distinct.
  EXPECT_EQ(flow_begins.size(),
            static_cast<std::size_t>(md.messages + am.messages));
}

// ---- Histogram::merge unit tests ----------------------------------------

TEST(HistogramMerge, EqualsSingleAccumulator) {
  obs::Histogram a, b, all;
  for (std::uint64_t v : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL}) {
    a.add(v);
    all.add(v);
  }
  for (std::uint64_t v : {2ULL, 2ULL, 500000ULL}) {
    b.add(v);
    all.add(v);
  }
  a += b;
  EXPECT_TRUE(a == all);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 500000u);
}

TEST(HistogramMerge, EmptyOperandsAreIdentity) {
  obs::Histogram empty1, empty2, h;
  h.add(42);
  h.add(3);
  const obs::Histogram before = h;
  h += empty1;  // merging empty changes nothing
  EXPECT_TRUE(h == before);
  empty1 += h;  // merging into empty copies, including min/max
  EXPECT_TRUE(empty1 == before);
  EXPECT_EQ(empty1.min(), 3u);
  empty2 += obs::Histogram{};
  EXPECT_EQ(empty2.count(), 0u);
  EXPECT_TRUE(empty2 == obs::Histogram{});
}

TEST(HistogramMerge, MinMaxTightenCorrectly) {
  obs::Histogram lo, hi;
  lo.add(5);
  hi.add(100);
  hi.add(2);
  lo.merge(hi);
  EXPECT_EQ(lo.min(), 2u);
  EXPECT_EQ(lo.max(), 100u);
  EXPECT_EQ(lo.count(), 3u);
  EXPECT_EQ(lo.sum(), 107u);
}

}  // namespace
}  // namespace jtam
