// Unit tests for the MDP machine: opcode semantics, message queues,
// dispatch-on-suspend, preemption, interrupt gating, tagged memory.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "mdp/assembler.h"
#include "mdp/machine.h"
#include "support/error.h"

namespace jtam::mdp {
namespace {

using mem::Addr;

/// Assemble a low-priority handler, boot it with a message, run to halt.
/// The body ends with `halt rX` supplied by the caller.
class MachineFixture : public ::testing::Test {
 protected:
  /// Runs `emit` inside a low-priority handler context and returns the
  /// halted machine.
  template <typename Fn>
  Machine run_handler(Fn&& emit,
                      std::vector<std::uint32_t> extra_payload = {}) {
    Assembler a;
    a.section(Section::SysCode);
    LabelRef entry = a.label("entry");
    a.bind(entry);
    emit(a);
    Machine m(a.link());
    m.set_defer_pool(mem::kUserDataBase + 0x10000,
                     mem::kUserDataBase + 0x20000);
    std::vector<std::uint32_t> msg{mem::kSysCodeBase};
    for (auto w : extra_payload) msg.push_back(w);
    m.inject(Priority::Low, msg);
    EXPECT_EQ(m.run(), RunStatus::Halted);
    return m;
  }
};

TEST_F(MachineFixture, AluBasics) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, 21);
    a.movi(R1, 2);
    a.alu(Op::Mul, R2, R0, R1);
    a.alui(Op::Addi, R2, R2, 8);
    a.halt(R2);
  });
  EXPECT_EQ(m.halt_value(), 50u);
}

TEST_F(MachineFixture, SignedDivisionAndModulo) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, -17);
    a.movi(R1, 5);
    a.alu(Op::Divs, R2, R0, R1);  // -3 (C++ truncation)
    a.alu(Op::Mods, R3, R0, R1);  // -2
    a.alu(Op::Mul, R4, R2, R3);   // 6
    a.halt(R4);
  });
  EXPECT_EQ(m.halt_value(), 6u);
}

TEST_F(MachineFixture, DivisionByZeroFaults) {
  EXPECT_THROW(run_handler([](Assembler& a) {
                 a.movi(R0, 1);
                 a.movi(R1, 0);
                 a.alu(Op::Divs, R2, R0, R1);
                 a.halt(R2);
               }),
               Error);
}

TEST_F(MachineFixture, Comparisons) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, -1);
    a.movi(R1, 1);
    a.alu(Op::Slt, R2, R0, R1);   // 1 (signed)
    a.alu(Op::Sle, R3, R1, R1);   // 1
    a.alu(Op::Seq, R4, R0, R1);   // 0
    a.alu(Op::Sne, R5, R0, R1);   // 1
    a.alu(Op::Add, R2, R2, R3);
    a.alu(Op::Add, R2, R2, R4);
    a.alu(Op::Add, R2, R2, R5);
    a.halt(R2);
  });
  EXPECT_EQ(m.halt_value(), 3u);
}

TEST_F(MachineFixture, FloatAssistOps) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(1.5f)));
    a.movi(R1, static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(2.25f)));
    a.alu(Op::Fadd, R2, R0, R1);
    a.alu(Op::Fmul, R3, R0, R1);
    a.alu(Op::Fsub, R3, R3, R2);  // 3.375 - 3.75 = -0.375
    a.alu(Op::Flt, R4, R3, R0);   // -0.375 < 1.5 -> 1
    a.halt(R4);
  });
  EXPECT_EQ(m.halt_value(), 1u);
}

TEST_F(MachineFixture, LoadStoreRoundTrip) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase));
    a.movi(R1, 0xBEEF);
    a.st(R0, 12, R1);
    a.ld(R2, R0, 12);
    a.halt(R2);
  });
  EXPECT_EQ(m.halt_value(), 0xBEEFu);
}

TEST_F(MachineFixture, StoreImmediateAndAbsolute) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase));
    a.sti(R0, 4, 77);
    a.ld(R1, R0, 4);
    a.stg(R1, static_cast<std::int32_t>(mem::kOsGlobalsBase + 40));
    a.ldg(R2, static_cast<std::int32_t>(mem::kOsGlobalsBase + 40));
    a.halt(R2);
  });
  EXPECT_EQ(m.halt_value(), 77u);
}

TEST_F(MachineFixture, UnalignedAccessFaults) {
  EXPECT_THROW(run_handler([](Assembler& a) {
                 a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase + 2));
                 a.ld(R1, R0, 0);
                 a.halt(R1);
               }),
               Error);
}

TEST_F(MachineFixture, CodeRegionIsNotData) {
  EXPECT_THROW(run_handler([](Assembler& a) {
                 a.movi(R0, static_cast<std::int32_t>(mem::kSysCodeBase));
                 a.ld(R1, R0, 0);
                 a.halt(R1);
               }),
               Error);
}

TEST_F(MachineFixture, MessageOperandsReadFromQueueMemory) {
  Machine m = run_handler(
      [](Assembler& a) {
        a.ldm(R0, 4, "first payload word");
        a.ldm(R1, 8, "second payload word");
        a.alu(Op::Add, R0, R0, R1);
        a.halt(R0);
      },
      {30, 12});
  EXPECT_EQ(m.halt_value(), 42u);
}

TEST_F(MachineFixture, CallAndReturn) {
  Machine m = run_handler([](Assembler& a) {
    LabelRef fn = a.label("fn");
    LabelRef over = a.label();
    a.movi(R0, 5);
    a.call(fn);
    a.halt(R0);
    a.br(over);  // unreachable
    a.bind(fn);
    a.alui(Op::Muli, R0, R0, 9);
    a.ret();
    a.bind(over);
    a.nop();
  });
  EXPECT_EQ(m.halt_value(), 45u);
}

TEST_F(MachineFixture, IndirectJump) {
  Machine m = run_handler([](Assembler& a) {
    LabelRef tgt = a.label("tgt");
    a.movi(R1, tgt);
    a.jmp(R1);
    a.movi(R0, 1);  // skipped
    a.bind(tgt);
    a.movi(R0, 9);
    a.halt(R0);
  });
  EXPECT_EQ(m.halt_value(), 9u);
}

// --- messaging & scheduling ---------------------------------------------------

TEST_F(MachineFixture, SendToSelfDispatchesAfterSuspend) {
  // Handler A sends a message invoking handler B with payload, suspends.
  Machine m = run_handler([](Assembler& a) {
    LabelRef b = a.label("b");
    a.sendl();
    a.sendwi(b);
    a.movi(R0, 1234);
    a.sendw(R0);
    a.sende();
    a.suspend();
    a.bind(b);
    a.ldm(R0, 4);
    a.halt(R0);
  });
  EXPECT_EQ(m.halt_value(), 1234u);
}

TEST_F(MachineFixture, HighPriorityPreemptsLowWhenEnabled) {
  // Low-priority code with interrupts ON sends itself a high message and
  // keeps computing; the high handler must run before low finishes.
  Machine m = run_handler([](Assembler& a) {
    LabelRef high = a.label("high");
    a.eint();
    a.sendh();
    a.sendwi(high);
    a.sende();
    // R0 := whatever the high handler left in memory; the handler stores
    // 7 at a known global before this load executes.
    a.ldg(R0, static_cast<std::int32_t>(mem::kOsGlobalsBase + 60));
    a.halt(R0);
    a.bind(high);
    a.movi(R1, 7);
    a.stg(R1, static_cast<std::int32_t>(mem::kOsGlobalsBase + 60));
    a.suspend();
  });
  EXPECT_EQ(m.halt_value(), 7u);
}

TEST_F(MachineFixture, DintBlocksPreemption) {
  Machine m = run_handler([](Assembler& a) {
    LabelRef high = a.label("high2");
    a.dint();
    a.sendh();
    a.sendwi(high);
    a.sende();
    // With interrupts disabled the high handler has NOT run yet.
    a.ldg(R0, static_cast<std::int32_t>(mem::kOsGlobalsBase + 64));
    a.halt(R0);
    a.bind(high);
    a.movi(R1, 7);
    a.stg(R1, static_cast<std::int32_t>(mem::kOsGlobalsBase + 64));
    a.suspend();
  });
  EXPECT_EQ(m.halt_value(), 0u);
}

TEST_F(MachineFixture, EintServicesPendingHighMessage) {
  Machine m = run_handler([](Assembler& a) {
    LabelRef high = a.label("high3");
    a.dint();
    a.sendh();
    a.sendwi(high);
    a.sende();
    a.eint();
    a.dint();  // the brief thread-top window of the AM implementation
    a.ldg(R0, static_cast<std::int32_t>(mem::kOsGlobalsBase + 68));
    a.halt(R0);
    a.bind(high);
    a.movi(R1, 7);
    a.stg(R1, static_cast<std::int32_t>(mem::kOsGlobalsBase + 68));
    a.suspend();
  });
  EXPECT_EQ(m.halt_value(), 7u);
}

TEST_F(MachineFixture, FifoOrderWithinAQueue) {
  // Two low messages carrying different values; the first dispatched
  // handler records, the second halts with both combined.
  Assembler a;
  a.section(Section::SysCode);
  LabelRef rec = a.label("rec");
  LabelRef fin = a.label("fin");
  a.bind(rec);
  a.ldm(R0, 4);
  a.stg(R0, static_cast<std::int32_t>(mem::kOsGlobalsBase + 72));
  a.suspend();
  a.bind(fin);
  a.ldg(R0, static_cast<std::int32_t>(mem::kOsGlobalsBase + 72));
  a.ldm(R1, 4);
  a.alui(Op::Muli, R0, R0, 100);
  a.alu(Op::Add, R0, R0, R1);
  a.halt(R0);
  CodeImage img = a.link();
  Machine m(img);
  std::uint32_t m1[] = {img.symbol("rec"), 3};
  std::uint32_t m2[] = {img.symbol("fin"), 4};
  m.inject(Priority::Low, m1);
  m.inject(Priority::Low, m2);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 304u);
}

TEST_F(MachineFixture, DeadlockWhenNoWorkRemains) {
  Assembler a;
  a.section(Section::SysCode);
  a.here("quiet");
  a.suspend();
  CodeImage img = a.link();
  Machine m(img);
  std::uint32_t msg[] = {img.symbol("quiet")};
  m.inject(Priority::Low, msg);
  EXPECT_EQ(m.run(), RunStatus::Deadlock);
}

TEST_F(MachineFixture, BudgetStopsRunawayLoops) {
  Assembler a;
  a.section(Section::SysCode);
  LabelRef spin = a.label("spin");
  a.bind(spin);
  a.br(spin);
  CodeImage img = a.link();
  Machine m(img, Machine::Config{mem::kQueueBytes, 1000});
  std::uint32_t msg[] = {img.symbol("spin")};
  m.inject(Priority::Low, msg);
  EXPECT_EQ(m.run(), RunStatus::Budget);
  EXPECT_EQ(m.instructions_executed(), 1000u);
}

TEST_F(MachineFixture, QueueOverflowIsReported) {
  Assembler a;
  a.section(Section::SysCode);
  a.here("noop");
  a.suspend();
  CodeImage img = a.link();
  Machine m(img, Machine::Config{256, 1000000});
  std::vector<std::uint32_t> msg(17, img.symbol("noop"));  // 68 bytes
  m.inject(Priority::Low, msg);
  m.inject(Priority::Low, msg);
  m.inject(Priority::Low, msg);
  EXPECT_THROW(m.inject(Priority::Low, msg), Error);  // 4 x 68 > 256
}

TEST_F(MachineFixture, QueueWrapsAroundTheRing) {
  // Fill-and-drain the queue repeatedly so messages wrap the ring buffer.
  Assembler a;
  a.section(Section::SysCode);
  LabelRef again = a.label("again");
  LabelRef fin = a.label("fin2");
  a.bind(again);
  a.ldm(R0, 4);
  a.alui(Op::Subi, R0, R0, 1);
  LabelRef done = a.label();
  a.brz(R0, done);
  a.sendl();
  a.sendwi(again);
  a.sendw(R0);
  a.sende();
  a.suspend();
  a.bind(done);
  a.sendl();
  a.sendwi(fin);
  a.sendw(R0);
  a.sende();
  a.suspend();
  a.bind(fin);
  a.movi(R0, 99);
  a.halt(R0);
  CodeImage img = a.link();
  Machine m(img, Machine::Config{128, 1000000});  // tiny ring: forces wraps
  std::uint32_t msg[] = {img.symbol("again"), 50};
  m.inject(Priority::Low, msg);
  EXPECT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), 99u);
}

TEST_F(MachineFixture, BankedRegistersSurvivePreemption) {
  Machine m = run_handler([](Assembler& a) {
    LabelRef high = a.label("clobber");
    a.eint();
    a.movi(R3, 31337);
    a.sendh();
    a.sendwi(high);
    a.sende();
    // After preemption the low bank's R3 must be intact.
    a.halt(R3);
    a.bind(high);
    a.movi(R3, 0);  // high bank's R3 — must not touch low's
    a.suspend();
  });
  EXPECT_EQ(m.halt_value(), 31337u);
}

// --- tagged memory -----------------------------------------------------------

TEST_F(MachineFixture, PresenceTagsTrackStores) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase + 0x100));
    a.itagld(R1, R0, R2);  // empty: tag 0
    a.movi(R3, 55);
    a.itagst(R0, R3);
    a.itagld(R1, R0, R4);  // now present
    a.alui(Op::Shli, R4, R4, 1);
    a.alu(Op::Add, R2, R2, R4);  // 0 + 2
    a.alu(Op::Add, R2, R2, R1);  // + 55
    a.halt(R2);
  });
  EXPECT_EQ(m.halt_value(), 57u);
}

TEST_F(MachineFixture, DeferredReadListRoundTrip) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase + 0x200));
    a.movi(R1, 0x111);  // "inlet"
    a.movi(R2, 0x222);  // "frame"
    a.idefer(R0, R1, R2);
    a.movi(R1, 0x333);
    a.movi(R2, 0x444);
    a.idefer(R0, R1, R2);
    a.idhead(R3, R0);  // most recent node first
    a.ld(R4, R3, 0);   // inlet of the second defer
    a.ld(R5, R3, 8);   // next -> first node
    a.ld(R5, R5, 4);   // frame of the first defer
    a.alu(Op::Add, R4, R4, R5);  // 0x333 + 0x222
    a.halt(R4);
  });
  EXPECT_EQ(m.halt_value(), 0x555u);
}

TEST_F(MachineFixture, IdheadDetachesTheList) {
  Machine m = run_handler([](Assembler& a) {
    a.movi(R0, static_cast<std::int32_t>(mem::kUserDataBase + 0x300));
    a.movi(R1, 1);
    a.movi(R2, 2);
    a.idefer(R0, R1, R2);
    a.idhead(R3, R0);
    a.idhead(R4, R0);  // second detach: empty
    a.halt(R4);
  });
  EXPECT_EQ(m.halt_value(), 0u);
}

TEST_F(MachineFixture, SendEWithoutComposeFaults) {
  EXPECT_THROW(run_handler([](Assembler& a) {
                 a.sende();
                 a.halt(R0);
               }),
               Error);
}

TEST_F(MachineFixture, NestedComposeFaults) {
  EXPECT_THROW(run_handler([](Assembler& a) {
                 a.sendl();
                 a.sendh();
                 a.halt(R0);
               }),
               Error);
}

}  // namespace
}  // namespace jtam::mdp
