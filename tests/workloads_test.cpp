// End-to-end workload tests: every program must halt, pass its oracle, and
// produce identical results under both back-ends ("while both
// implementations yield the same results, their dynamic behaviors differ",
// §2.3).  Problem sizes here are small for test speed; the bench harness
// runs the paper-scale defaults.

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "programs/registry.h"

namespace jtam {
namespace {

void expect_both_ok(const programs::Workload& w) {
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.backend = rt::BackendKind::MessageDriven;
  driver::RunResult md = driver::run_workload(w, opts);
  EXPECT_TRUE(md.ok()) << w.name << " [MD] " << md.check_error;

  opts.backend = rt::BackendKind::ActiveMessages;
  driver::RunResult am = driver::run_workload(w, opts);
  EXPECT_TRUE(am.ok()) << w.name << " [AM] " << am.check_error;

  // Thread and inlet counts are schedule-independent dataflow quantities;
  // they may differ only by the handful of in-flight completions that HALT
  // truncates (the machine stops the instant the result is delivered).
  auto close = [](std::uint64_t x, std::uint64_t y) {
    const std::uint64_t hi = std::max(x, y);
    const std::uint64_t lo = std::min(x, y);
    return hi - lo <= 2 + hi / 50;
  };
  EXPECT_TRUE(close(md.gran.threads, am.gran.threads))
      << w.name << " threads: MD " << md.gran.threads << " vs AM "
      << am.gran.threads;
  EXPECT_TRUE(close(md.gran.inlets, am.gran.inlets))
      << w.name << " inlets: MD " << md.gran.inlets << " vs AM "
      << am.gran.inlets;
}

TEST(Workloads, SelectionSort) {
  expect_both_ok(programs::make_selection_sort(24));
}

TEST(Workloads, Mmt) { expect_both_ok(programs::make_mmt(6)); }

TEST(Workloads, Wavefront) { expect_both_ok(programs::make_wavefront(8, 2)); }

TEST(Workloads, Dtw) { expect_both_ok(programs::make_dtw(8)); }

TEST(Workloads, QuicksortSmall) {
  expect_both_ok(programs::make_quicksort(20));
}

TEST(Workloads, QuicksortDegenerate) {
  expect_both_ok(programs::make_quicksort(1));
  expect_both_ok(programs::make_quicksort(2));
  expect_both_ok(programs::make_quicksort(3));
}

TEST(Workloads, MdOptimizationsPreserveResults) {
  // §2.3 optimizations must not change program results.
  programs::Workload w = programs::make_quicksort(16);
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.backend = rt::BackendKind::MessageDriven;
  opts.md = tamc::MdOptions::none();
  driver::RunResult plain = driver::run_workload(w, opts);
  EXPECT_TRUE(plain.ok()) << plain.check_error;
  opts.md = tamc::MdOptions::all();
  driver::RunResult optd = driver::run_workload(w, opts);
  EXPECT_TRUE(optd.ok()) << optd.check_error;
  // The optimizations eliminate instructions, never add them.
  EXPECT_LT(optd.instructions, plain.instructions);
}

TEST(Workloads, EnabledAmVariantPreservesResults) {
  // §2.4: the enabled variant services local fetches sooner but computes
  // the same thing.
  programs::Workload w = programs::make_dtw(6);
  driver::RunOptions opts;
  opts.with_cache = false;
  opts.backend = rt::BackendKind::ActiveMessages;
  opts.am_enabled_variant = true;
  driver::RunResult r = driver::run_workload(w, opts);
  EXPECT_TRUE(r.ok()) << r.check_error;
}

}  // namespace
}  // namespace jtam

namespace jtam {
namespace {

TEST(Paraffins, OracleMatchesPublishedIsomerCounts) {
  // OEIS A000602 / [AHN88]: number of alkane isomers C_n H_2n+2.
  const std::int64_t known[] = {0, 1, 1, 1, 2, 3, 5, 9, 18, 35, 75, 159,
                                355, 802};
  std::vector<std::int64_t> p = programs::paraffins_oracle(13);
  for (int m = 1; m <= 13; ++m) {
    EXPECT_EQ(p[static_cast<std::size_t>(m)], known[m]) << "n=" << m;
  }
}

TEST(Paraffins, RunsUnderBothBackends) {
  driver::RunOptions opts;
  opts.with_cache = false;
  programs::Workload w = programs::make_paraffins(9);
  opts.backend = rt::BackendKind::MessageDriven;
  driver::RunResult md = driver::run_workload(w, opts);
  EXPECT_TRUE(md.ok()) << md.check_error;
  opts.backend = rt::BackendKind::ActiveMessages;
  driver::RunResult am = driver::run_workload(w, opts);
  EXPECT_TRUE(am.ok()) << am.check_error;
}

}  // namespace
}  // namespace jtam
