// Differential fuzz tests: random straight-line ALU programs executed on
// the MDP machine and on a tiny C++ reference interpreter must agree.
// Catches semantic drift in the ISA implementation.

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "mdp/assembler.h"
#include "mdp/machine.h"

namespace jtam::mdp {
namespace {

struct Rng {
  std::uint32_t s;
  std::uint32_t next() {
    s = s * 1664525u + 1013904223u;
    return s >> 1;
  }
  std::uint32_t pick(std::uint32_t n) { return next() % n; }
};

/// Ops eligible for fuzzing (deterministic, no memory, no control).
const Op kAluOps[] = {Op::Add, Op::Sub, Op::Mul,  Op::And, Op::Or,
                      Op::Xor, Op::Shl, Op::Shr,  Op::Slt, Op::Sle,
                      Op::Seq, Op::Sne, Op::Fadd, Op::Fsub, Op::Fmul};
const Op kImmOps[] = {Op::Addi, Op::Subi, Op::Muli, Op::Andi,
                      Op::Ori,  Op::Shli, Op::Shri, Op::Slti};

std::uint32_t ref_alu(Op op, std::uint32_t a, std::uint32_t b) {
  auto f = [](std::uint32_t v) { return std::bit_cast<float>(v); };
  auto u = [](float v) { return std::bit_cast<std::uint32_t>(v); };
  auto i = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
  switch (op) {
    case Op::Add: case Op::Addi: return a + b;
    case Op::Sub: case Op::Subi: return a - b;
    case Op::Mul: case Op::Muli: return a * b;
    case Op::And: case Op::Andi: return a & b;
    case Op::Or: case Op::Ori: return a | b;
    case Op::Xor: return a ^ b;
    case Op::Shl: case Op::Shli: return a << (b & 31);
    case Op::Shr: case Op::Shri: return a >> (b & 31);
    case Op::Slt: case Op::Slti: return i(a) < i(b) ? 1 : 0;
    case Op::Sle: return i(a) <= i(b) ? 1 : 0;
    case Op::Seq: return a == b ? 1 : 0;
    case Op::Sne: return a != b ? 1 : 0;
    case Op::Fadd: return u(f(a) + f(b));
    case Op::Fsub: return u(f(a) - f(b));
    case Op::Fmul: return u(f(a) * f(b));
    default: ADD_FAILURE() << "unexpected op"; return 0;
  }
}

class AluFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AluFuzz, MachineMatchesReferenceInterpreter) {
  Rng rng{GetParam() * 2654435761u + 1};
  Assembler a;
  a.section(Section::SysCode);
  a.here("entry");

  std::array<std::uint32_t, 6> ref{};  // reference register file R0..R5
  // Seed registers with random constants.
  for (int r = 0; r < 6; ++r) {
    std::uint32_t v = rng.next();
    ref[static_cast<std::size_t>(r)] = v;
    a.movi(static_cast<Reg>(r), static_cast<std::int32_t>(v));
  }
  // 200 random ALU ops.
  for (int n = 0; n < 200; ++n) {
    const auto rd = static_cast<std::size_t>(rng.pick(6));
    const auto rs = static_cast<std::size_t>(rng.pick(6));
    const auto rt = static_cast<std::size_t>(rng.pick(6));
    if (rng.pick(3) == 0) {
      Op op = kImmOps[rng.pick(std::size(kImmOps))];
      auto imm = static_cast<std::int32_t>(rng.next() & 0xFFFF);
      a.alui(op, static_cast<Reg>(rd), static_cast<Reg>(rs), imm);
      ref[rd] = ref_alu(op, ref[rs], static_cast<std::uint32_t>(imm));
    } else {
      Op op = kAluOps[rng.pick(std::size(kAluOps))];
      a.alu(op, static_cast<Reg>(rd), static_cast<Reg>(rs),
            static_cast<Reg>(rt));
      ref[rd] = ref_alu(op, ref[rs], ref[rt]);
    }
  }
  // Fold all registers into one checksum and halt with it.
  for (int r = 1; r < 6; ++r) {
    a.alu(Op::Xor, R0, R0, static_cast<Reg>(r));
  }
  a.halt(R0);
  std::uint32_t want = ref[0];
  for (int r = 1; r < 6; ++r) want ^= ref[static_cast<std::size_t>(r)];

  CodeImage img = a.link();
  Machine m(img);
  std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(Priority::Low, boot);
  ASSERT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), want) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluFuzz, ::testing::Range(0u, 24u));

class MemoryFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MemoryFuzz, LoadsObserveProgramOrderStores) {
  // Random store/load sequence over a small word array; the machine must
  // behave like a flat memory.
  Rng rng{GetParam() * 40503u + 7};
  constexpr int kWords = 16;
  std::array<std::uint32_t, kWords> ref{};
  Assembler a;
  a.section(Section::SysCode);
  a.here("entry");
  a.movi(R4, static_cast<std::int32_t>(mem::kUserDataBase));
  a.movi(R0, 0);  // running checksum
  for (int n = 0; n < 120; ++n) {
    const int idx = static_cast<int>(rng.pick(kWords));
    if (rng.pick(2) == 0) {
      const auto v = rng.next();
      ref[static_cast<std::size_t>(idx)] = v;
      a.movi(R1, static_cast<std::int32_t>(v));
      a.st(R4, 4 * idx, R1);
    } else {
      a.ld(R2, R4, 4 * idx);
      a.alu(Op::Add, R0, R0, R2);
    }
  }
  a.halt(R0);
  // Reference checksum replay.
  std::uint32_t want = 0;
  {
    Rng r2{GetParam() * 40503u + 7};
    std::array<std::uint32_t, kWords> mem{};
    for (int n = 0; n < 120; ++n) {
      const int idx = static_cast<int>(r2.pick(kWords));
      if (r2.pick(2) == 0) {
        mem[static_cast<std::size_t>(idx)] = r2.next();
      } else {
        want += mem[static_cast<std::size_t>(idx)];
      }
    }
  }
  CodeImage img = a.link();
  Machine m(img);
  std::uint32_t boot[] = {img.symbol("entry")};
  m.inject(Priority::Low, boot);
  ASSERT_EQ(m.run(), RunStatus::Halted);
  EXPECT_EQ(m.halt_value(), want) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace jtam::mdp
