// Unit tests for the experiment driver plumbing and report helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "programs/registry.h"
#include "support/error.h"
#include "support/text.h"

namespace jtam::driver {
namespace {

TEST(Driver, ResultCarriesCacheLadder) {
  RunOptions opts;
  opts.backend = rt::BackendKind::MessageDriven;
  RunResult r = run_workload(programs::make_selection_sort(10), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cache.size(), 24u);  // 8 sizes x 3 associativities
  EXPECT_NO_THROW(r.config(8192, 4));
  EXPECT_THROW(r.config(8192, 8), Error);
  EXPECT_THROW(r.config(3000, 1), Error);
}

TEST(Driver, CyclesAreMonotoneInPenalty) {
  RunOptions opts;
  opts.backend = rt::BackendKind::ActiveMessages;
  RunResult r = run_workload(programs::make_selection_sort(10), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.cycles(8192, 4, 12), r.cycles(8192, 4, 24));
  EXPECT_LT(r.cycles(8192, 4, 24), r.cycles(8192, 4, 48));
  // Zero penalty degenerates to the instruction count.
  EXPECT_EQ(r.cycles(8192, 4, 0), r.instructions);
}

TEST(Driver, WithCacheFalseSkipsTheLadder) {
  RunOptions opts;
  opts.with_cache = false;
  RunResult r = run_workload(programs::make_selection_sort(10), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.cache.empty());
  EXPECT_THROW(r.config(8192, 4), Error);
}

TEST(Driver, CustomBlockSizeChangesMissCounts) {
  RunOptions o8;
  o8.block_bytes = 8;
  RunOptions o64;
  o64.block_bytes = 64;
  programs::Workload w = programs::make_selection_sort(40);
  RunResult r8 = run_workload(w, o8);
  RunResult r64 = run_workload(w, o64);
  ASSERT_TRUE(r8.ok() && r64.ok());
  // Small blocks take more compulsory/spatial misses on scans.
  EXPECT_GT(r8.config(8192, 4).dcache.misses,
            r64.config(8192, 4).dcache.misses);
}

TEST(Driver, RunBothUsesIdenticalWorkload) {
  BackendPair p = run_both(programs::make_selection_sort(10), RunOptions{});
  EXPECT_TRUE(p.md.ok());
  EXPECT_TRUE(p.am.ok());
  EXPECT_EQ(p.md.backend, rt::BackendKind::MessageDriven);
  EXPECT_EQ(p.am.backend, rt::BackendKind::ActiveMessages);
  EXPECT_GT(p.ratio(8192, 4, 24), 0.0);
  EXPECT_LT(p.ratio(8192, 4, 24), 1.0);  // MD wins this workload
}

TEST(Driver, InstructionBudgetSurfacesAsFailure) {
  RunOptions opts;
  opts.max_instructions = 100;  // far too few
  opts.with_cache = false;
  RunResult r = run_workload(programs::make_selection_sort(10), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, mdp::RunStatus::Budget);
  EXPECT_NE(r.check_error.find("did not halt"), std::string::npos);
}

TEST(Driver, PreparedRunExposesTheMachine) {
  PreparedRun prep =
      prepare_run(programs::make_selection_sort(8), RunOptions{});
  EXPECT_NE(prep.machine, nullptr);
  EXPECT_EQ(prep.machine->run(), mdp::RunStatus::Halted);
  EXPECT_EQ(prep.machine->halt_value(), 8u);
}

TEST(Report, RequireOkThrowsOnFailure) {
  RunResult bad;
  bad.workload = "x";
  bad.status = mdp::RunStatus::Deadlock;
  bad.check_error = "boom";
  EXPECT_THROW(require_ok({&bad}), Error);
}

TEST(Report, RatioTableRendersAllSeries) {
  std::ostringstream os;
  print_ratio_table(os, "T", {"1K", "2K"},
                    {Series{"a", {0.5, 0.75}}, Series{"b", {1.25, 2.0}}});
  const std::string out = os.str();
  EXPECT_NE(out.find("T"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);
}

TEST(Text, FormattingHelpers) {
  EXPECT_EQ(text::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(text::with_commas(0), "0");
  EXPECT_EQ(text::with_commas(999), "999");
  EXPECT_EQ(text::with_commas(1000), "1,000");
  EXPECT_EQ(text::with_commas(1234567890ULL), "1,234,567,890");
}

TEST(Text, TableAlignsColumns) {
  text::Table t;
  t.header({"a", "bbbb"});
  t.row({"cccc", "d"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a     bbbb"), std::string::npos);
  EXPECT_NE(out.find("----  ----"), std::string::npos);
  EXPECT_NE(out.find("cccc  d"), std::string::npos);
}

}  // namespace
}  // namespace jtam::driver
